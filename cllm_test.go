package cllm

import (
	"strings"
	"testing"
)

func TestOpenPlatforms(t *testing.T) {
	protected := map[string]bool{"tdx": true, "sgx": true, "cgpu": true, "sev-snp": true, "cb100": true}
	for _, p := range []string{"baremetal", "vm", "vm-th", "vm-nb", "tdx", "sgx", "sev-snp", "gpu", "cgpu", "b100", "cb100", ""} {
		s, err := Open(Config{Platform: p, Seed: 1})
		if err != nil {
			t.Fatalf("Open(%q): %v", p, err)
		}
		if protected[p] != s.Protected() {
			t.Errorf("Open(%q).Protected() = %v", p, s.Protected())
		}
		if s.Protected() && !s.Attested() {
			t.Errorf("Open(%q) protected but not attested", p)
		}
	}
	if _, err := Open(Config{Platform: "sev"}); err == nil {
		t.Error("unknown platform opened")
	}
	if _, err := Open(Config{Platform: "tdx", System: "XYZ"}); err == nil {
		t.Error("unknown system opened")
	}
}

func TestSkipAttestation(t *testing.T) {
	s, err := Open(Config{Platform: "tdx", SkipAttestation: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Attested() {
		t.Error("attested despite SkipAttestation")
	}
}

func TestLoadAndGenerate(t *testing.T) {
	s, err := Open(Config{Platform: "sgx", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.LoadModel("llama2-7b", "bf16", 128)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(m.ConfigName(), "llama2-7b/") {
		t.Errorf("ConfigName = %q", m.ConfigName())
	}
	gen, err := m.Generate("patient presents with chest pain and arrhythmia", GenerateOptions{MaxNewTokens: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Tokens) == 0 || gen.Text == "" || gen.PromptTokens == 0 {
		t.Fatalf("empty generation: %+v", gen)
	}
	if _, err := m.Generate("   ", GenerateOptions{}); err == nil {
		t.Error("empty prompt accepted")
	}
	emb, err := m.Embed("confidential inference")
	if err != nil || len(emb) == 0 {
		t.Errorf("Embed: %v (%d dims)", err, len(emb))
	}
}

func TestGenerationIdenticalAcrossPlatforms(t *testing.T) {
	// The paper's TEEs protect execution without changing results: the same
	// model and prompt must generate identical tokens on every platform.
	var tokens [][]int
	for _, p := range []string{"baremetal", "tdx", "sgx"} {
		s, err := Open(Config{Platform: p, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.LoadModel("llama2-7b", "bf16", 256)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := m.Generate("the quick brown fox", GenerateOptions{MaxNewTokens: 6})
		if err != nil {
			t.Fatal(err)
		}
		tokens = append(tokens, gen.Tokens)
	}
	for i := 1; i < len(tokens); i++ {
		if len(tokens[i]) != len(tokens[0]) {
			t.Fatal("platforms generated different lengths")
		}
		for j := range tokens[i] {
			if tokens[i][j] != tokens[0][j] {
				t.Fatalf("platform %d diverged at token %d", i, j)
			}
		}
	}
}

func TestLoadModelErrors(t *testing.T) {
	s, _ := Open(Config{Platform: "baremetal", Seed: 1})
	if _, err := s.LoadModel("gpt5", "bf16", 64); err == nil {
		t.Error("unknown model loaded")
	}
	if _, err := s.LoadModel("llama2-7b", "fp64", 64); err == nil {
		t.Error("unknown dtype loaded")
	}
	g, _ := Open(Config{Platform: "gpu", Seed: 1})
	if _, err := g.LoadModel("llama2-7b", "bf16", 64); err == nil {
		t.Error("GPU functional inference should be unsupported")
	}
}

func TestMeasureCPUAndGPU(t *testing.T) {
	cpu, err := Open(Config{Platform: "tdx", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m, err := cpu.Measure(Workload{Model: "llama2-7b", DType: "bf16", OutputLen: 16}, MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.TokensPerSec <= 0 || m.MeanTokenLatency <= 0 || m.PrefillSeconds <= 0 {
		t.Fatalf("bad measurement: %+v", m)
	}
	if m.DecodeTokensPerSec <= m.TokensPerSec {
		t.Error("decode throughput should exceed generation throughput")
	}

	gpu, err := Open(Config{Platform: "cgpu", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	g, err := gpu.Measure(Workload{Model: "llama2-7b", OutputLen: 16, InputLen: 128}, MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.TokensPerSec <= m.TokensPerSec {
		t.Error("H100 should beat a CPU socket on raw throughput")
	}
}

func TestMeasureBackends(t *testing.T) {
	s, _ := Open(Config{Platform: "baremetal", Seed: 6})
	ipex, err := s.Measure(Workload{OutputLen: 16}, MeasureOptions{Backend: "IPEX"})
	if err != nil {
		t.Fatal(err)
	}
	hf, err := s.Measure(Workload{OutputLen: 16}, MeasureOptions{Backend: "HF"})
	if err != nil {
		t.Fatal(err)
	}
	if hf.TokensPerSec >= ipex.TokensPerSec {
		t.Error("HF should be slower than IPEX")
	}
	if _, err := s.Measure(Workload{OutputLen: 8}, MeasureOptions{Backend: "TensorRT"}); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, err := s.Measure(Workload{DType: "int8", OutputLen: 8}, MeasureOptions{Backend: "vLLM"}); err == nil {
		t.Error("vLLM int8 should be rejected")
	}
}

func TestEstimateCost(t *testing.T) {
	s, _ := Open(Config{Platform: "tdx", System: "EMR2", Seed: 7})
	c, err := s.EstimateCost(Workload{OutputLen: 32, InputLen: 128}, MeasureOptions{}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if c.HourlyUSD <= 0 || c.USDPerMTok <= 0 {
		t.Fatalf("bad cost: %+v", c)
	}
	g, _ := Open(Config{Platform: "cgpu", Seed: 7})
	gc, err := g.EstimateCost(Workload{OutputLen: 32, InputLen: 128}, MeasureOptions{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gc.HourlyUSD <= c.HourlyUSD {
		t.Error("H100 instance should cost more per hour than a CPU VM")
	}
}

func TestRAGFacade(t *testing.T) {
	s, err := Open(Config{Platform: "tdx", System: "EMR2", Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.NewRAG(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() == 0 {
		t.Fatal("benchmark corpus empty")
	}
	hits, lat, err := r.Query("bm25", "heart rhythm pressure", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || lat <= 0 {
		t.Fatalf("bad query result: %d hits, %gs", len(hits), lat)
	}
	nd, mean, err := r.Benchmark("sbert")
	if err != nil {
		t.Fatal(err)
	}
	if nd < 0 || nd > 1 || mean <= 0 {
		t.Fatalf("bad benchmark: ndcg %g mean %g", nd, mean)
	}
	if _, _, err := r.Query("vector", "q", 5); err == nil {
		t.Error("unknown method accepted")
	}
	// Custom documents work too.
	custom, err := s.NewRAG([]RAGDocument{
		{ID: "a", Title: "insulin dosing", Body: "insulin dosing schedule for diabetes patients"},
		{ID: "b", Title: "hedge funds", Body: "quarterly returns of hedge funds"},
	})
	if err != nil {
		t.Fatal(err)
	}
	hits, _, err = custom.Query("bm25", "insulin diabetes", 1)
	if err != nil {
		t.Fatal(err)
	}
	if hits[0].ID != "a" {
		t.Errorf("custom RAG top hit = %s", hits[0].ID)
	}
	if _, _, err := custom.Benchmark("bm25"); err == nil {
		t.Error("benchmark without queries accepted")
	}
	// RAG is CPU-only, as in the paper.
	gpu, _ := Open(Config{Platform: "cgpu", Seed: 8})
	if _, err := gpu.NewRAG(nil); err == nil {
		t.Error("GPU RAG accepted")
	}
}

func TestExperimentsAPI(t *testing.T) {
	infos := Experiments()
	if len(infos) < 16 {
		t.Fatalf("only %d experiments registered", len(infos))
	}
	rep, err := RunExperiment("fig1", true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed || len(rep.FailedChecks) != 0 {
		t.Errorf("fig1 failed checks: %v", rep.FailedChecks)
	}
	if !strings.Contains(rep.Table, "fig1") {
		t.Error("report table missing ID")
	}
	if _, err := RunExperiment("fig99", true, 1); err == nil {
		t.Error("unknown experiment ran")
	}
}

func TestModelNames(t *testing.T) {
	names := ModelNames()
	found := false
	for _, n := range names {
		if n == "llama2-70b" {
			found = true
		}
	}
	if !found {
		t.Error("llama2-70b missing from ModelNames")
	}
}

func TestMeasureDistribution(t *testing.T) {
	s, err := Open(Config{Platform: "tdx", Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.MeasureDistribution(Workload{Model: "llama2-7b", OutputLen: 200, InputLen: 128}, MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Samples) != 200 {
		t.Fatalf("samples = %d, want 200", len(d.Samples))
	}
	if !(d.P25 <= d.P50 && d.P50 <= d.P75) {
		t.Errorf("quartiles out of order: %g %g %g", d.P25, d.P50, d.P75)
	}
	if d.Mean <= 0 {
		t.Error("non-positive mean")
	}
	// Every reported outlier must exceed the filtered P75 (they are the
	// heavy upper tail of TEE memory-encryption stalls).
	for _, o := range d.Outliers {
		if o <= d.P75 {
			t.Errorf("outlier %g not in the upper tail (P75 %g)", o, d.P75)
		}
	}
	// Sample count conservation.
	if len(d.Outliers) > len(d.Samples) {
		t.Error("more outliers than samples")
	}
	// The GPU path works too and is quieter (no outlier injection).
	g, err := Open(Config{Platform: "cgpu", Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	gd, err := g.MeasureDistribution(Workload{Model: "llama2-7b", OutputLen: 100, InputLen: 128}, MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(gd.Outliers) > len(d.Outliers) {
		t.Error("GPU shows more outliers than the CPU TEE")
	}
}

func TestParseClasses(t *testing.T) {
	cs, err := ParseClasses("tdx:4,cgpu:2:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || cs[0] != (AutoscaleClass{Platform: "tdx", Min: 1, Max: 4}) ||
		cs[1] != (AutoscaleClass{Platform: "cgpu", Min: 1, Max: 2}) {
		t.Fatalf("ParseClasses = %+v", cs)
	}
	for _, bad := range []string{"", ":2", "tdx:x", "tdx:2:3", "tdx:1:1:1"} {
		if _, err := ParseClasses(bad); err == nil {
			t.Errorf("ParseClasses(%q) accepted", bad)
		}
	}
}

func TestAutoscalePublicAPI(t *testing.T) {
	rep, err := Autoscale(AutoscaleConfig{
		Scenario:   "bursty",
		RatePerSec: 2,
		Requests:   48,
		Classes:    []AutoscaleClass{{Platform: "tdx", Min: 1, Max: 2}},
		MaxBatch:   8,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Completed + rep.Dropped + rep.Unfinished; got != 48 {
		t.Fatalf("conservation: %d of 48 accounted", got)
	}
	if len(rep.Classes) != 1 || rep.Classes[0].Name != "tdx" {
		t.Fatalf("classes = %+v", rep.Classes)
	}
	if rep.Classes[0].ColdStartSec <= 0 {
		t.Error("TDX class has no cold start")
	}
	if rep.Classes[0].CapacityReqPerSec <= 0 {
		t.Error("class capacity not probed")
	}
	if rep.ReplicaHours <= 0 || rep.CostUSD <= 0 {
		t.Errorf("billing empty: %+v", rep)
	}
	if len(rep.Windows) == 0 {
		t.Error("no control windows")
	}
	if _, err := Autoscale(AutoscaleConfig{}); err == nil {
		t.Error("missing classes accepted")
	}
	if _, err := Autoscale(AutoscaleConfig{
		Classes: []AutoscaleClass{{Platform: "nope", Min: 1, Max: 1}},
	}); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestServeScenarioPublicAPI(t *testing.T) {
	sess, err := Open(Config{Platform: "tdx", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Serve(ServeConfig{
		Scenario:   "bursty+rag",
		RatePerSec: 1,
		Requests:   12,
		MaxBatch:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed+rep.Dropped+rep.Unfinished != 12 {
		t.Fatalf("conservation failed: %+v", rep)
	}
	if _, err := sess.Serve(ServeConfig{Scenario: "nope", RatePerSec: 1}); err == nil {
		t.Error("unknown scenario accepted")
	}
}
