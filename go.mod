module cllm

go 1.22
