package cllm

import (
	"cllm/internal/obs"
	"cllm/internal/serve"
)

// ServeObservation carries a run's rendered observability artifacts,
// attached to a report when observation is enabled. All three artifacts
// are timestamped from the deterministic sim clock — identical runs (any
// worker count) serialize byte-identically.
type ServeObservation struct {
	// Events is the number of lifecycle events recorded; Windows the
	// number of merged fleet-wide time-series windows.
	Events, Windows int
	// TraceJSON is a Chrome trace-event timeline (load in Perfetto or
	// chrome://tracing): one process per replica, one track per request,
	// spans for the queued/preempted/prefill/decode phases and instants
	// for preemptions, swap transfers and drops.
	TraceJSON []byte
	// PrometheusText is a Prometheus text-exposition (0.0.4) snapshot of
	// the run's aggregate counters, gauges and latency summaries.
	PrometheusText []byte
	// TimeseriesCSV is the merged windowed time series (queue depth,
	// running batch, KV/swap occupancy, prefix hit rate, token rates).
	TimeseriesCSV []byte
	// PhaseCSV is the latency-attribution phase breakdown (one row per
	// phase, plus TEE-tax rows). Nil unless attribution was enabled
	// alongside observation.
	PhaseCSV []byte
}

// buildObservation renders the recorder's stream against the run's
// aggregate report. With an attribution engine attached, the trace gains
// the phase/tax counter tracks, the Prometheus snapshot the per-phase
// histogram families, and PhaseCSV the phase breakdown.
func buildObservation(rec *obs.Recorder, attrib *obs.Attribution, rep *serve.Report) *ServeObservation {
	o := &ServeObservation{
		Events:         len(rec.Events()),
		Windows:        len(rec.Series().Merged()),
		TraceJSON:      rec.PerfettoTrace(),
		PrometheusText: obs.PrometheusText(rep),
		TimeseriesCSV:  rec.TimeseriesCSV(),
	}
	if attrib != nil {
		o.TraceJSON = rec.PerfettoTraceWithCounters(attrib)
		o.PrometheusText = append(o.PrometheusText, attrib.PrometheusText(rep.Platform)...)
		o.PhaseCSV = attrib.Report(rep.Platform).PhaseCSV()
	}
	return o
}
