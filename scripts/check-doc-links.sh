#!/bin/sh
# check-doc-links.sh — fail if README/docs markdown references local files
# that don't exist. Scans every tracked .md file for inline links and for
# backtick-quoted repo paths, skipping URLs and pure anchors. Run from the
# repository root (CI does).
set -eu

fail=0
for md in $(git ls-files '*.md' 2>/dev/null || find . -name '*.md' -not -path './.git/*'); do
    dir=$(dirname "$md")
    # Inline markdown links: [text](target)
    for target in $(grep -o '](\([^)]*\))' "$md" 2>/dev/null | sed 's/^](//; s/)$//'); do
        case "$target" in
        http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path=${target%%#*}
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
            echo "$md: broken link: $target" >&2
            fail=1
        fi
    done
    # Backtick-quoted repo paths that look like files we ship, e.g.
    # `.github/workflows/ci.yml` or `scripts/check-doc-links.sh`.
    for target in $(grep -o '`[A-Za-z0-9_.-]*/[A-Za-z0-9_./-]*\.\(go\|md\|sh\|yml\)`' "$md" 2>/dev/null | tr -d '\`'); do
        if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
            echo "$md: broken path reference: $target" >&2
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "check-doc-links: broken references found" >&2
    exit 1
fi
echo "check-doc-links: all documentation references resolve"
