#!/bin/sh
# bench.sh — serving-simulator performance trajectory.
#
# Runs the serving-path benchmarks (scheduler hot loop — disabled and
# observed — plus the serving / fleet / autoscale / observability
# experiment sweeps) and distills them into BENCH_9.json so future PRs
# have a perf baseline to compare against (the CI gate,
# scripts/bench_compare.sh, diffs new runs against the newest BENCH_*.json):
#
#   sh scripts/bench.sh            # writes BENCH_9.json in the repo root
#   sh scripts/bench.sh out.json   # custom output path
#
# Schema: {"benchmarks": [{"name", "runs", "ns_per_op", "allocs_per_op",
# "bytes_per_op", "metrics": {"simreq/s": ...}}]} — one entry per
# benchmark, each field the mean over -count=3 runs.
set -eu

out=${1:-BENCH_9.json}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'ServeScheduler|ServingCurves|FleetPolicies|Autoscaling|Observability|Attribution' \
	-benchmem -count=3 . | tee "$raw"

awk -v out="$out" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (!(name in n)) names[++nn] = name
	n[name]++
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op")          ns[name] += $(i - 1)
		else if ($(i) == "allocs/op") allocs[name] += $(i - 1)
		else if ($(i) == "B/op")      bytes[name] += $(i - 1)
		else if ($(i) ~ /\//) {
			custom[name, $(i)] += $(i - 1)
			if (!((name, $(i)) in mseen)) {
				mseen[name, $(i)] = 1
				mcount[name]++
				mname[name, mcount[name]] = $(i)
			}
		}
	}
}
END {
	printf "{\n  \"benchmarks\": [\n" > out
	for (k = 1; k <= nn; k++) {
		name = names[k]
		printf "    {\"name\": \"%s\", \"runs\": %d, \"ns_per_op\": %.1f, \"allocs_per_op\": %.1f, \"bytes_per_op\": %.1f", \
			name, n[name], ns[name] / n[name], allocs[name] / n[name], bytes[name] / n[name] >> out
		if (name in mcount) {
			printf ", \"metrics\": {" >> out
			for (j = 1; j <= mcount[name]; j++) {
				m = mname[name, j]
				printf "%s\"%s\": %.1f", (j > 1 ? ", " : ""), m, custom[name, m] / n[name] >> out
			}
			printf "}" >> out
		}
		printf "}%s\n", (k < nn ? "," : "") >> out
	}
	printf "  ]\n}\n" >> out
}' "$raw"

echo "wrote $out:"
cat "$out"
