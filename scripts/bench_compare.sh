#!/bin/sh
# bench_compare.sh — serving-simulator bench-regression gate.
#
# Re-runs BenchmarkServeScheduler and compares its simreq/s (simulated
# requests completed per wall-clock second, mean over -count=3) against the
# newest BENCH_*.json baseline in the repo root. Fails when throughput
# regresses by more than the threshold (default 25%); getting faster never
# fails. Usage:
#
#   sh scripts/bench_compare.sh             # gate against newest BENCH_*.json
#   sh scripts/bench_compare.sh 10          # custom threshold (percent)
set -eu

threshold=${1:-25}

baseline_file=$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1)
if [ -z "$baseline_file" ]; then
    echo "bench_compare: no BENCH_*.json baseline found in repo root" >&2
    exit 1
fi
# Extract BenchmarkServeScheduler's simreq/s from the baseline JSON without
# depending on jq: isolate the benchmark's object, then the metric value.
baseline=$(tr -d '\n' <"$baseline_file" |
    sed 's/.*"name": "BenchmarkServeScheduler"//' |
    sed 's/.*"simreq\/s": \([0-9.]*\).*/\1/')
case "$baseline" in
'' | *[!0-9.]*)
    echo "bench_compare: no simreq/s for BenchmarkServeScheduler in $baseline_file" >&2
    exit 1
    ;;
esac

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench 'ServeScheduler' -benchmem -count=3 . | tee "$raw"

current=$(awk '/^BenchmarkServeScheduler/ {
    for (i = 2; i <= NF; i++) if ($(i) == "simreq/s") { sum += $(i - 1); n++ }
} END { if (n > 0) printf "%.1f", sum / n }' "$raw")
if [ -z "$current" ]; then
    echo "bench_compare: benchmark produced no simreq/s metric" >&2
    exit 1
fi

awk -v cur="$current" -v base="$baseline" -v thr="$threshold" -v file="$baseline_file" 'BEGIN {
    change = (cur - base) / base * 100
    printf "bench_compare: simreq/s %.1f vs baseline %.1f (%s) → %+.1f%% (threshold -%s%%)\n",
        cur, base, file, change, thr
    if (change < -thr) {
        print "bench_compare: FAIL — serving-scheduler throughput regressed past the threshold" > "/dev/stderr"
        exit 1
    }
    print "bench_compare: OK"
}'
