#!/bin/sh
# bench_compare.sh — serving-simulator bench-regression gate.
#
# Re-runs BenchmarkServeScheduler (observability disabled) and
# BenchmarkServeSchedulerObserved (observer + exporters on) and compares
# each leg's simreq/s (simulated requests completed per wall-clock second,
# mean over -count=3) and allocs/op against the newest BENCH_*.json
# baseline in the repo root. Fails when throughput regresses by more than
# the threshold (default 25%) or allocations grow by more than the same
# threshold — the disabled-leg allocs gate keeps the nil-observer path
# allocation-free, the observed-leg gate keeps the observation tax from
# regressing silently. Getting faster or leaner never fails. Usage:
#
#   sh scripts/bench_compare.sh             # gate against newest BENCH_*.json
#   sh scripts/bench_compare.sh 10          # custom threshold (percent)
set -eu

threshold=${1:-25}

baseline_file=$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1)
if [ -z "$baseline_file" ]; then
    echo "bench_compare: no BENCH_*.json baseline found in repo root" >&2
    exit 1
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench '^BenchmarkServeScheduler(Observed)?$' -benchmem -count=3 . | tee "$raw"

fail=0
for name in BenchmarkServeScheduler BenchmarkServeSchedulerObserved; do
    # Extract the baseline figures without depending on jq: isolate the
    # benchmark's object (exact name match — the closing quote keeps
    # longer names out), cut at the next object's "name" so greedy matches
    # cannot leak into later entries, then pull each field.
    chunk=$(tr -d '\n' <"$baseline_file" |
        sed "s/.*\"name\": \"$name\"//" |
        sed 's/"name":.*//')
    baseline=$(printf '%s' "$chunk" | sed 's/.*"simreq\/s": \([0-9.]*\).*/\1/')
    base_allocs=$(printf '%s' "$chunk" | sed 's/.*"allocs_per_op": \([0-9.]*\).*/\1/')
    for v in "$baseline" "$base_allocs"; do
        case "$v" in
        '' | *[!0-9.]*)
            echo "bench_compare: missing simreq/s or allocs_per_op for $name in $baseline_file" >&2
            exit 1
            ;;
        esac
    done

    # Exact name match (with or without the -GOMAXPROCS suffix, which Go
    # omits when GOMAXPROCS=1).
    current=$(awk -v n="$name" '$1 ~ ("^" n "(-[0-9]+)?$") {
        for (i = 2; i <= NF; i++) if ($(i) == "simreq/s") { sum += $(i - 1); cnt++ }
    } END { if (cnt > 0) printf "%.1f", sum / cnt }' "$raw")
    cur_allocs=$(awk -v n="$name" '$1 ~ ("^" n "(-[0-9]+)?$") {
        for (i = 2; i <= NF; i++) if ($(i) == "allocs/op") { sum += $(i - 1); cnt++ }
    } END { if (cnt > 0) printf "%.1f", sum / cnt }' "$raw")
    if [ -z "$current" ] || [ -z "$cur_allocs" ]; then
        echo "bench_compare: $name produced no simreq/s or allocs/op metric" >&2
        exit 1
    fi

    awk -v name="$name" -v cur="$current" -v base="$baseline" \
        -v curA="$cur_allocs" -v baseA="$base_allocs" \
        -v thr="$threshold" -v file="$baseline_file" 'BEGIN {
        change = (cur - base) / base * 100
        printf "bench_compare: %s simreq/s %.1f vs baseline %.1f (%s) → %+.1f%% (threshold -%s%%)\n",
            name, cur, base, file, change, thr
        achange = (curA - baseA) / baseA * 100
        printf "bench_compare: %s allocs/op %.1f vs baseline %.1f → %+.1f%% (threshold +%s%%)\n",
            name, curA, baseA, achange, thr
        bad = 0
        if (change < -thr) {
            print "bench_compare: FAIL — " name " throughput regressed past the threshold" > "/dev/stderr"
            bad = 1
        }
        if (achange > thr) {
            print "bench_compare: FAIL — " name " allocations grew past the threshold" > "/dev/stderr"
            bad = 1
        }
        exit bad
    }' || fail=1
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "bench_compare: OK"
