#!/bin/sh
# bench_compare.sh — serving-simulator bench-regression gate.
#
# Re-runs BenchmarkServeScheduler and compares its simreq/s (simulated
# requests completed per wall-clock second, mean over -count=3) and its
# allocs/op against the newest BENCH_*.json baseline in the repo root.
# Fails when throughput regresses by more than the threshold (default 25%)
# or allocations grow by more than the same threshold — the allocs gate is
# what keeps the disabled observability path allocation-free. Getting
# faster or leaner never fails. Usage:
#
#   sh scripts/bench_compare.sh             # gate against newest BENCH_*.json
#   sh scripts/bench_compare.sh 10          # custom threshold (percent)
set -eu

threshold=${1:-25}

baseline_file=$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1)
if [ -z "$baseline_file" ]; then
    echo "bench_compare: no BENCH_*.json baseline found in repo root" >&2
    exit 1
fi
# Extract BenchmarkServeScheduler's baseline figures without depending on
# jq: isolate its object (the exact name match — the closing quote keeps
# BenchmarkServeSchedulerObserved out), cut at the next object's "name" so
# greedy matches cannot leak into later entries, then pull each field.
chunk=$(tr -d '\n' <"$baseline_file" |
    sed 's/.*"name": "BenchmarkServeScheduler"//' |
    sed 's/"name":.*//')
baseline=$(printf '%s' "$chunk" | sed 's/.*"simreq\/s": \([0-9.]*\).*/\1/')
base_allocs=$(printf '%s' "$chunk" | sed 's/.*"allocs_per_op": \([0-9.]*\).*/\1/')
for v in "$baseline" "$base_allocs"; do
    case "$v" in
    '' | *[!0-9.]*)
        echo "bench_compare: missing simreq/s or allocs_per_op for BenchmarkServeScheduler in $baseline_file" >&2
        exit 1
        ;;
    esac
done

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench '^BenchmarkServeScheduler$' -benchmem -count=3 . | tee "$raw"

# Exact name match (with or without the -GOMAXPROCS suffix, which Go
# omits when GOMAXPROCS=1): never the Observed variant.
current=$(awk '$1 ~ /^BenchmarkServeScheduler(-[0-9]+)?$/ {
    for (i = 2; i <= NF; i++) if ($(i) == "simreq/s") { sum += $(i - 1); n++ }
} END { if (n > 0) printf "%.1f", sum / n }' "$raw")
cur_allocs=$(awk '$1 ~ /^BenchmarkServeScheduler(-[0-9]+)?$/ {
    for (i = 2; i <= NF; i++) if ($(i) == "allocs/op") { sum += $(i - 1); n++ }
} END { if (n > 0) printf "%.1f", sum / n }' "$raw")
if [ -z "$current" ] || [ -z "$cur_allocs" ]; then
    echo "bench_compare: benchmark produced no simreq/s or allocs/op metric" >&2
    exit 1
fi

awk -v cur="$current" -v base="$baseline" \
    -v curA="$cur_allocs" -v baseA="$base_allocs" \
    -v thr="$threshold" -v file="$baseline_file" 'BEGIN {
    change = (cur - base) / base * 100
    printf "bench_compare: simreq/s %.1f vs baseline %.1f (%s) → %+.1f%% (threshold -%s%%)\n",
        cur, base, file, change, thr
    achange = (curA - baseA) / baseA * 100
    printf "bench_compare: allocs/op %.1f vs baseline %.1f → %+.1f%% (threshold +%s%%)\n",
        curA, baseA, achange, thr
    fail = 0
    if (change < -thr) {
        print "bench_compare: FAIL — serving-scheduler throughput regressed past the threshold" > "/dev/stderr"
        fail = 1
    }
    if (achange > thr) {
        print "bench_compare: FAIL — serving-scheduler allocations grew past the threshold" > "/dev/stderr"
        fail = 1
    }
    if (fail) exit 1
    print "bench_compare: OK"
}'
