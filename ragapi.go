package cllm

import (
	"fmt"

	"cllm/internal/rag"
)

// RAG is a retrieval-augmented-generation stack (document store + BM25 +
// cross-encoder reranker + dense retriever) whose query latency is modeled
// on the session's platform, reproducing the paper's §VI deployment of a
// full Elasticsearch pipeline inside TDX.
type RAG struct {
	session *Session
	store   *rag.Store
	pipe    *rag.Pipeline
	corpus  *rag.Corpus
}

// RAGDocument is one item to index.
type RAGDocument struct {
	ID    string
	Title string
	Body  string
}

// RAGResult is one ranked hit.
type RAGResult struct {
	ID    string
	Score float64
}

// NewRAG indexes the documents into a fresh pipeline on this session.
// Passing nil documents builds the synthetic BEIR-like benchmark corpus.
func (s *Session) NewRAG(docs []RAGDocument) (*RAG, error) {
	if s.isGPU {
		return nil, fmt.Errorf("cllm: the RAG pipeline runs on CPU platforms, as in the paper")
	}
	r := &RAG{session: s}
	if docs == nil {
		corpus, err := rag.GenerateCorpus(50, 3, s.cfg.Seed)
		if err != nil {
			return nil, err
		}
		pipe, err := rag.NewPipeline(corpus, s.cfg.Seed)
		if err != nil {
			return nil, err
		}
		r.corpus, r.pipe, r.store = corpus, pipe, pipe.Store
		return r, nil
	}
	corpus := &rag.Corpus{}
	for _, d := range docs {
		corpus.Docs = append(corpus.Docs, rag.Document{ID: d.ID, Title: d.Title, Body: d.Body})
	}
	pipe, err := rag.NewPipeline(corpus, s.cfg.Seed)
	if err != nil {
		return nil, err
	}
	r.corpus, r.pipe, r.store = corpus, pipe, pipe.Store
	return r, nil
}

// ragMethod parses a method name.
func ragMethod(m string) (rag.Method, error) {
	switch m {
	case "bm25", "BM25", "":
		return rag.MethodBM25, nil
	case "reranked", "bm25-reranked", "BM25 reranked":
		return rag.MethodBM25Reranked, nil
	case "sbert", "dense":
		return rag.MethodSBERT, nil
	}
	return 0, fmt.Errorf("cllm: unknown RAG method %q (want bm25|reranked|sbert)", m)
}

// Query runs one retrieval with the chosen method ("bm25", "reranked" or
// "sbert") and returns the top-k hits plus the modeled per-query latency on
// this session's platform.
func (r *RAG) Query(method, query string, k int) ([]RAGResult, float64, error) {
	m, err := ragMethod(method)
	if err != nil {
		return nil, 0, err
	}
	hits, qstats, err := r.pipe.Run(m, query, k)
	if err != nil {
		return nil, 0, err
	}
	tm := rag.Timing{CPU: r.session.cpu, Platform: r.session.platform, Cores: 32, Seed: r.session.cfg.Seed}
	lat, err := tm.QueryTime(m, qstats)
	if err != nil {
		return nil, 0, err
	}
	out := make([]RAGResult, len(hits))
	for i, h := range hits {
		out[i] = RAGResult{ID: h.ID, Score: h.Score}
	}
	return out, lat, nil
}

// Benchmark evaluates the built-in benchmark corpus with the method,
// returning mean nDCG@10 and the mean modeled per-query latency — the
// quantities behind Fig 14.
func (r *RAG) Benchmark(method string) (ndcg, meanLatencySec float64, err error) {
	if r.corpus == nil || len(r.corpus.Queries) == 0 {
		return 0, 0, fmt.Errorf("cllm: this RAG instance has no benchmark queries (index custom docs and use Query)")
	}
	m, err := ragMethod(method)
	if err != nil {
		return 0, 0, err
	}
	tm := rag.Timing{CPU: r.session.cpu, Platform: r.session.platform, Cores: 32, Seed: r.session.cfg.Seed}
	meanLatencySec, ndcg, err = tm.MeanQueryTime(r.pipe, r.corpus, m)
	return ndcg, meanLatencySec, err
}

// Len returns the number of indexed documents.
func (r *RAG) Len() int { return r.store.Len() }
