package cllm

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"cllm/internal/gramine"
	"cllm/internal/model"
)

// Model is a loaded, runnable transformer bound to a session. Functional
// inference runs real arithmetic at a reduced scale; the architecture
// (layer structure, head layout, datatype behaviour) matches the named
// full-size model.
type Model struct {
	session *Session
	t       *model.Transformer
	tok     *model.Tokenizer
	name    string
}

// LoadModel instantiates the named model (see ModelNames) at 1/scale of its
// full dimensions with deterministic weights. On SGX sessions the weights
// travel through the sealed-file store, exercising the encrypted-weights
// path of the paper's deployment.
func (s *Session) LoadModel(name, dt string, scale int) (*Model, error) {
	if s.isGPU {
		return nil, fmt.Errorf("cllm: functional inference on the GPU model is not implemented; use Measure for GPU performance")
	}
	if s.platform.Protected && !s.attested && !s.cfg.SkipAttestation {
		return nil, fmt.Errorf("cllm: refusing to load weights into an unattested enclave")
	}
	kind, err := parseDType(dt)
	if err != nil {
		return nil, err
	}
	cfg, err := model.Lookup(name)
	if err != nil {
		return nil, err
	}
	if scale > 1 {
		cfg = cfg.Scaled(scale)
	}
	t, err := model.Build(cfg, kind, s.cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	if s.manifest != nil {
		if err := exerciseSealedWeights(s.manifest, cfg); err != nil {
			return nil, err
		}
	}
	return &Model{session: s, t: t, tok: model.NewTokenizer(cfg.VocabSize), name: name}, nil
}

// exerciseSealedWeights round-trips a weight header through the Gramine
// sealed store, verifying confidentiality and integrity the way the real
// deployment protects model files at rest.
func exerciseSealedWeights(m *gramine.Manifest, cfg model.Config) error {
	key := gramine.DeriveKey([]byte("enclave-measurement"), m.KeyName)
	store := gramine.NewStore(key)
	header := make([]byte, 16)
	binary.BigEndian.PutUint64(header[:8], uint64(cfg.ParamCount()))
	binary.BigEndian.PutUint64(header[8:], uint64(cfg.HiddenDim))
	path := m.EncryptedFiles[0]
	if err := store.Put(path, header); err != nil {
		return err
	}
	back, err := store.Get(path)
	if err != nil {
		return err
	}
	if binary.BigEndian.Uint64(back[:8]) != uint64(cfg.ParamCount()) {
		return fmt.Errorf("cllm: sealed weight header corrupted")
	}
	return nil
}

// ModelNames lists the models available to LoadModel and Measure, sorted
// for stable CLI output.
func ModelNames() []string {
	names := make([]string, 0)
	for n := range model.Zoo() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GenerateOptions controls Generate.
type GenerateOptions struct {
	// MaxNewTokens bounds the generation length (default 32).
	MaxNewTokens int
	// BeamSize > 1 enables beam search.
	BeamSize int
}

// Generation is the result of a Generate call.
type Generation struct {
	// Tokens are the generated token IDs.
	Tokens []int
	// Text is a deterministic pseudo-text rendering of the tokens (the
	// hashed tokenizer is not invertible; IDs render as "⟨t1234⟩" words).
	Text string
	// PromptTokens is the encoded prompt length.
	PromptTokens int
}

// Generate encodes the prompt, runs real decoding through the KV cache, and
// returns the generated tokens. Results are identical on every platform —
// TEEs change timing, never outputs.
func (m *Model) Generate(prompt string, opts GenerateOptions) (*Generation, error) {
	if strings.TrimSpace(prompt) == "" {
		return nil, fmt.Errorf("cllm: empty prompt")
	}
	if opts.MaxNewTokens <= 0 {
		opts.MaxNewTokens = 32
	}
	tokens := m.tok.Encode(prompt)
	res, err := m.t.Generate(tokens, model.GenOptions{
		MaxNewTokens: opts.MaxNewTokens,
		BeamSize:     opts.BeamSize,
		StopToken:    model.TokenEOS,
	})
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	for i, tok := range res.Tokens {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "⟨t%d⟩", tok)
	}
	return &Generation{Tokens: res.Tokens, Text: b.String(), PromptTokens: len(tokens)}, nil
}

// Embed returns the mean-pooled dense embedding of the text (the SBERT-style
// encoding used by the RAG pipeline).
func (m *Model) Embed(text string) ([]float32, error) {
	tokens := m.tok.Encode(text)
	if len(tokens) > 64 {
		tokens = tokens[:64]
	}
	return m.t.Embed(tokens)
}

// ConfigName returns the underlying (possibly scaled) model configuration
// name, e.g. "llama2-7b/x64".
func (m *Model) ConfigName() string { return m.t.Config.Name }
