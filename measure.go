package cllm

import (
	"fmt"

	"cllm/internal/backend"
	"cllm/internal/cloud"
	"cllm/internal/model"
	"cllm/internal/perf"
	"cllm/internal/stats"
	"cllm/internal/trace"
)

// Workload describes an inference configuration to measure, mirroring the
// paper's experiment axes.
type Workload struct {
	// Model is a zoo name, e.g. "llama2-7b".
	Model string
	// DType is "bf16" (default), "int8" or "f32".
	DType string
	// Batch is the number of concurrent sequences (default 1).
	Batch int
	// Beam is the beam width (default 1).
	Beam int
	// InputLen and OutputLen are prompt/generation lengths in tokens
	// (defaults 1024 / 128).
	InputLen, OutputLen int
}

func (w Workload) normalize() Workload {
	if w.Model == "" {
		w.Model = "llama2-7b"
	}
	if w.Batch <= 0 {
		w.Batch = 1
	}
	if w.Beam <= 0 {
		w.Beam = 1
	}
	if w.InputLen <= 0 {
		w.InputLen = 1024
	}
	if w.OutputLen <= 0 {
		w.OutputLen = 128
	}
	return w
}

// MeasureOptions tunes the measured deployment.
type MeasureOptions struct {
	// Sockets used (CPU platforms; default 1).
	Sockets int
	// Cores per socket (0 = all).
	Cores int
	// DisableAMX turns the tile units off (Fig 8's ablation).
	DisableAMX bool
	// Backend is the framework profile: IPEX (default), vLLM, HF, Llama.cpp.
	Backend string
}

// Measurement reports modeled performance, following the paper's metrics.
type Measurement struct {
	// TokensPerSec is generation throughput including first-token latency.
	TokensPerSec float64
	// DecodeTokensPerSec is steady-state decode throughput.
	DecodeTokensPerSec float64
	// MeanTokenLatency is the Z>3-filtered mean next-token latency (s).
	MeanTokenLatency float64
	// P50TokenLatency is the median next-token latency (s).
	P50TokenLatency float64
	// PrefillSeconds is the prompt-processing (first token) time.
	PrefillSeconds float64
	// OutliersRemoved is the count of Z>3 samples excluded from the mean.
	OutliersRemoved int
}

// LatencyDistribution is the per-token latency distribution of a run — the
// data behind the paper's violin plots, with the Z>3 outliers reported
// separately as the paper does (§III-D).
type LatencyDistribution struct {
	// Samples are all per-token latencies in seconds, in generation order.
	Samples []float64
	// Mean/P25/P50/P75 are computed on the outlier-filtered samples.
	Mean, P25, P50, P75 float64
	// Outliers are the Z>3 samples excluded from the summary statistics.
	Outliers []float64
}

// MeasureDistribution runs the workload and returns the full latency
// distribution instead of summary scalars.
func (s *Session) MeasureDistribution(w Workload, opts MeasureOptions) (*LatencyDistribution, error) {
	w = w.normalize()
	kind, err := parseDType(w.DType)
	if err != nil {
		return nil, err
	}
	cfg, err := model.Lookup(w.Model)
	if err != nil {
		return nil, err
	}
	wl := trace.Workload{Model: cfg, Kind: kind, Batch: w.Batch, Beam: w.Beam, InputLen: w.InputLen, OutputLen: w.OutputLen}
	var res *perf.Result
	if s.isGPU {
		res, err = perf.RunGPU(perf.GPURun{GPU: s.gpu, Platform: s.platform, Workload: wl, Seed: s.cfg.Seed})
	} else {
		res, err = perf.RunCPU(perf.CPURun{
			CPU: s.cpu, Platform: s.platform, Workload: wl,
			Sockets: opts.Sockets, CoresPerSocket: opts.Cores,
			AMX: !opts.DisableAMX, Seed: s.cfg.Seed,
		})
	}
	if err != nil {
		return nil, err
	}
	kept, _ := stats.FilterZScore(res.TokenLatencies, 3)
	dist := &LatencyDistribution{
		Samples: append([]float64(nil), res.TokenLatencies...),
		Mean:    stats.Mean(kept),
		P25:     stats.Percentile(kept, 25),
		P50:     stats.Percentile(kept, 50),
		P75:     stats.Percentile(kept, 75),
	}
	keptSet := make(map[float64]int)
	for _, k := range kept {
		keptSet[k]++
	}
	for _, v := range res.TokenLatencies {
		if keptSet[v] > 0 {
			keptSet[v]--
			continue
		}
		dist.Outliers = append(dist.Outliers, v)
	}
	return dist, nil
}

// Measure runs the mechanistic performance model for the workload on the
// session's platform.
func (s *Session) Measure(w Workload, opts MeasureOptions) (*Measurement, error) {
	w = w.normalize()
	kind, err := parseDType(w.DType)
	if err != nil {
		return nil, err
	}
	cfg, err := model.Lookup(w.Model)
	if err != nil {
		return nil, err
	}
	wl := trace.Workload{Model: cfg, Kind: kind, Batch: w.Batch, Beam: w.Beam, InputLen: w.InputLen, OutputLen: w.OutputLen}

	var res *perf.Result
	if s.isGPU {
		res, err = perf.RunGPU(perf.GPURun{GPU: s.gpu, Platform: s.platform, Workload: wl, Seed: s.cfg.Seed})
	} else {
		eff := 1.0
		amx := !opts.DisableAMX
		if opts.Backend != "" {
			b, berr := backend.Lookup(opts.Backend)
			if berr != nil {
				return nil, berr
			}
			if !b.Supports(kind) {
				return nil, fmt.Errorf("cllm: backend %s does not support %s", b.Name, kind)
			}
			eff = b.Efficiency
			amx = amx && b.UsesAMX
		}
		res, err = perf.RunCPU(perf.CPURun{
			CPU: s.cpu, Platform: s.platform, Workload: wl,
			Sockets: opts.Sockets, CoresPerSocket: opts.Cores,
			AMX: amx, BackendEfficiency: eff, Seed: s.cfg.Seed,
		})
	}
	if err != nil {
		return nil, err
	}
	kept, removed := stats.FilterZScore(res.TokenLatencies, 3)
	return &Measurement{
		TokensPerSec:       res.Throughput(),
		DecodeTokensPerSec: res.DecodeThroughput(),
		MeanTokenLatency:   stats.Mean(kept),
		P50TokenLatency:    stats.Percentile(res.TokenLatencies, 50),
		PrefillSeconds:     res.PrefillSec,
		OutliersRemoved:    removed,
	}, nil
}

// CostEstimate prices a measured workload.
type CostEstimate struct {
	// HourlyUSD is the instance rental price.
	HourlyUSD float64
	// USDPerMTok is dollars per million generated tokens.
	USDPerMTok float64
}

// EstimateCost prices the workload on this session's platform: CPU sessions
// rent vcpus + 128 GiB at GCP-style spot prices; GPU sessions rent the
// confidential H100 instance (Figs 12-13).
func (s *Session) EstimateCost(w Workload, opts MeasureOptions, vcpus int) (*CostEstimate, error) {
	m, err := s.Measure(w, MeasureOptions{Sockets: opts.Sockets, Cores: vcpus, DisableAMX: opts.DisableAMX, Backend: opts.Backend})
	if err != nil {
		return nil, err
	}
	prices := cloud.DefaultPrices()
	if s.isGPU {
		c, err := prices.CGPUCostPerMTokens(m.TokensPerSec)
		if err != nil {
			return nil, err
		}
		return &CostEstimate{HourlyUSD: prices.CGPUHour, USDPerMTok: c}, nil
	}
	if vcpus <= 0 {
		vcpus = s.cpu.CoresPerSocket
	}
	hourly, err := prices.HourlyCost(cloud.CPUInstance{VCPUs: vcpus, MemGiB: 128})
	if err != nil {
		return nil, err
	}
	c, err := prices.CPUCostPerMTokens(vcpus, m.TokensPerSec)
	if err != nil {
		return nil, err
	}
	return &CostEstimate{HourlyUSD: hourly, USDPerMTok: c}, nil
}
