package cllm

import (
	"fmt"

	"cllm/internal/cloud"
	"cllm/internal/model"
	"cllm/internal/obs"
	"cllm/internal/perf"
	"cllm/internal/serve"
	"cllm/internal/trace"
	"cllm/internal/workload"
)

// ServeConfig describes an open-loop serving run: a Poisson stream of
// requests against a continuous-batching server on the session's platform.
type ServeConfig struct {
	// Model is a zoo name (default "llama2-7b"); DType as in Workload.
	Model string
	DType string
	// InputLen / OutputLen are mean request lengths (defaults 128 / 32);
	// individual requests jitter ±25% around them.
	InputLen, OutputLen int
	// RatePerSec is the Poisson arrival rate (required), or the scenario's
	// mean rate when Scenario is set.
	RatePerSec float64
	// Scenario synthesizes arrivals from a workload traffic scenario
	// instead of the plain Poisson process: an arrival process ("poisson",
	// "bursty", "diurnal", "ramp"), a request-shape mix ("chat", "rag",
	// "agentic"), or "arrivals+mix" (e.g. "diurnal+rag"). The scenario's
	// shapes replace InputLen/OutputLen and the Prefix* knobs.
	Scenario string
	// Requests is the number of arrivals to simulate (default 64).
	Requests int
	// MaxBatch caps concurrent sequences (default 32).
	MaxBatch int
	// BlockTokens is the paged KV-cache block size (default 16 tokens).
	BlockTokens int
	// ChunkTokens caps prompt tokens prefilled per scheduler iteration
	// (chunked prefill): bounds the decode stall long prompts impose on
	// in-flight requests at the cost of higher TTFT. 0 keeps monolithic
	// prefills.
	ChunkTokens int
	// PrefixSharing enables block-level prefix-cache sharing: requests
	// with a common prompt prefix reuse its KV blocks (refcounted, LRU
	// eviction) instead of recomputing and re-storing them.
	PrefixSharing bool
	// PrefixGroups makes synthetic arrivals share prompt prefixes across
	// this many groups (RAG-style traffic); 0 disables. PrefixFrac is the
	// shared fraction of the mean prompt (default 0.5 when groups are set).
	PrefixGroups int
	PrefixFrac   float64
	// Replicas simulates a load-balanced fleet of this size instead of a
	// single replica (default 1). The offered rate is the fleet rate.
	Replicas int
	// LBPolicy picks the fleet dispatch policy:
	// round-robin|least-loaded|prefix-affinity (default round-robin).
	LBPolicy string
	// Topology simulates a role-aware fleet instead of Replicas identical
	// copies of the session platform: comma-separated
	// "platform:replicas=role" groups, e.g. "cgpu:2=prefill,tdx:4=decode"
	// splits prefill and decode across the TEE boundary with an explicitly
	// priced KV handoff between the stages (source drain at the prefill
	// side's swap bandwidth, a NIC transfer, ingest at the decode side).
	// Each group's platform opens as a sub-session of this one (same
	// testbed, seed and attestation policy); LBPolicy applies to both
	// stages. Mutually exclusive with Replicas > 1.
	Topology string
	// Sockets / Cores select the CPU deployment as in MeasureOptions.
	Sockets, Cores int
	// TTFTSLOSec / TPOTSLOSec are SLO targets (defaults 5s / 0.5s).
	TTFTSLOSec, TPOTSLOSec float64
	// CostBucket quantizes the scheduler's memoized step costing (tokens):
	// contexts are costed at their bucket midpoint, raising table hit rates
	// in large sweeps at a bounded modeled-time error. Default 1 = exact
	// (bit-identical to the unmemoized cost model).
	CostBucket int
	// PreemptPolicy selects what a KV-pool preemption does with the
	// victim's cache: "recompute" (default, vLLM-style full re-prefill),
	// "swap" (park the computed entries in a bounded host swap pool at the
	// backend's swap bandwidth — cGPU pays the encrypted bounce buffer,
	// CPU TEEs a near-native memcpy — and restore them on resume), or
	// "auto" (per preemption, whichever the memoized transfer-vs-recompute
	// estimate prices cheaper).
	PreemptPolicy string
	// SwapPoolFrac sizes the host swap pool as a fraction of the device KV
	// pool (0 = default 1.0; negative disables). Ignored under "recompute".
	SwapPoolFrac float64
	// QuantileMode selects how latency quantiles are computed: "exact"
	// (default — per-request samples retained and sorted, byte-identical to
	// prior releases) or "sketch" (streaming DDSketch summaries with a
	// documented relative error bound and O(1) memory in the request
	// count — the mode that makes 10⁸-request runs fit in a flat heap).
	QuantileMode string
	// SketchAlpha is the sketch's relative error bound (0 = default 0.01).
	// Only meaningful with QuantileMode "sketch".
	SketchAlpha float64
	// EpochRequests shards the simulation horizon: arrivals are scheduled
	// in epochs of this many requests, with scheduler/KV/prefix-cache state
	// handed warm across the boundary (0 = 65536 in sketch mode, unsharded
	// in exact mode; setting it explicitly in exact mode forces the sharded
	// scheduler path, which stays byte-identical to the monolithic one).
	EpochRequests int
	// Observe records the run's per-request lifecycle event stream and
	// windowed time series and attaches the rendered artifacts (Perfetto
	// trace, Prometheus snapshot, CSV time series) to the report as
	// Observation. Off by default: the disabled path costs nothing.
	Observe bool
	// ObserveWindowSec is the time-series sampling window in simulated
	// seconds (0 = default 1 s). Memory stays bounded regardless: when a
	// run outgrows the window budget, windows coalesce and the width
	// doubles.
	ObserveWindowSec float64
	// Faults groups the fault-injection, admission-control and retry knobs
	// (see FaultConfig). The six flat fields below are the deprecated
	// pre-grouping spelling, still honored for one release: Serve folds
	// them into Faults wherever the sub-struct leaves the knob zero.
	Faults FaultConfig
	// FailMTBFSec is deprecated: set Faults.MTBFSec.
	FailMTBFSec float64
	// FailPlan is deprecated: set Faults.Plan.
	FailPlan string
	// FailPolicy is deprecated: set Faults.Policy.
	FailPolicy string
	// Admission is deprecated: set Faults.Admission.
	Admission string
	// RetryMax is deprecated: set Faults.RetryMax.
	RetryMax int
	// RetryBackoffSec is deprecated: set Faults.RetryBackoffSec.
	RetryBackoffSec float64
	// Attribution folds the run's event stream into per-request phase
	// vectors (queue wait, prefill, decode, preemption stall, swap
	// transfer — summing exactly to each request's latency) and prices a
	// clear-hardware counterfactual alongside the real run to attribute
	// the per-phase TEE tax. The result is attached as Attrib; with
	// Observe also set, the observation artifacts gain the phase CSV,
	// phase histogram families and Perfetto counter tracks. Memory stays
	// bounded by in-flight requests, so it composes with sketch mode on
	// 10⁸-request runs. Off by default.
	Attribution bool
}

// FaultConfig groups a serving run's resilience knobs — fault injection,
// queue admission and retries — mirroring serve.FaultConfig with the CLI's
// string spellings.
type FaultConfig struct {
	// MTBFSec injects Poisson replica failures with this mean time
	// between failures (seconds, per replica; 0 disables). A failed
	// replica loses all in-flight KV state and pays the platform's full
	// TEE cold start (reboot, weight provisioning, enclave/TD rebuild,
	// attestation) before serving again.
	MTBFSec float64
	// Plan injects scripted failures instead: comma-separated
	// "replica@seconds" points (bare "seconds" means replica 0).
	Plan string
	// Policy says what a crash does to the victims' requests: "requeue"
	// (default — they restart from scratch on recovery) or "lost" (they
	// consume retry budget or drop).
	Policy string
	// Admission selects the queue-admission policy: "fifo" (default),
	// "deadline" (EDF order, expired requests dropped) or "shed" (EDF
	// plus early rejection of requests that cannot start before their
	// deadline).
	Admission string
	// RetryMax is the per-request retry budget for shed and failure-lost
	// requests (0 = no retries).
	RetryMax int
	// RetryBackoffSec is the base of the exponential retry backoff with
	// deterministic jitter (0 = default 1 s when RetryMax > 0).
	RetryBackoffSec float64
}

// ServeReport summarizes a serving run: load-level throughput and tail
// latency, SLO attainment, and the cost of SLO-compliant serving.
type ServeReport struct {
	Platform    string
	OfferedRate float64
	// Completed/Dropped/Unfinished partition the offered requests.
	Completed, Dropped, Unfinished int
	Preemptions                    int
	// DroppedByReason splits Dropped by cause, indexed by serve.DropReason
	// (kv-exhausted, admission-shed, deadline-expired, failure-lost).
	DroppedByReason [serve.NumDropReasons]int
	// Sheds counts admission-control rejections (a shed request may still
	// retry and complete); Retries counts backoff re-entries.
	Sheds, Retries int
	// Crashes counts injected replica failures; DowntimeSec sums the TEE
	// cold-start recovery they paid.
	Crashes     int
	DowntimeSec float64
	// TokensPerSec is aggregate generation throughput; goodput counts only
	// tokens of requests that met the SLO.
	TokensPerSec        float64
	GoodputTokensPerSec float64
	// SLOAttainment is the fraction of offered requests served within SLO.
	SLOAttainment float64
	// Tail latency (seconds).
	TTFTp50, TTFTp95, TTFTp99 float64
	TPOTMean, TPOTp99         float64
	LatencyP50, LatencyP99    float64
	// Paged KV-cache pressure.
	KVBlocksTotal, PeakKVBlocksInUse int
	// Prefix-cache effectiveness (zero unless PrefixSharing is on):
	// prompt tokens served from shared KV blocks, shareable tokens that
	// had to be computed, and cached blocks reclaimed under pressure.
	PrefixCacheHitTokens  int
	PrefixCacheMissTokens int
	EvictedKVBlocks       int
	// Swap-to-host preemption activity (zero under the default "recompute"
	// policy): victims parked in the host swap pool and restores from it.
	SwapOuts, SwapIns int
	// Replicas and LBPolicy echo the simulated deployment (1 replica uses
	// no load balancer). Topology echoes the role-group layout of a
	// disaggregated run ("" otherwise).
	Replicas int
	LBPolicy string
	Topology string
	// KV handoff activity across the prefill→decode edge of a
	// disaggregated topology (zero for unified fleets): transfers
	// launched by prefill replicas, transfers ingested by decode
	// replicas, ingests that fell back to recompute because the decode
	// side's staging pool was full, and the bytes drained across the
	// interconnect.
	Handoffs         int
	HandoffsIngested int
	HandoffFallbacks int
	HandoffBytes     float64
	// SLO-aware cost. With Replicas == 1 the fleet is *extrapolated*: sized
	// so the offered rate fits the measured per-replica SLO-compliant rate.
	// With Replicas > 1 the fleet is *simulated*: ReplicasAtSLO echoes the
	// configured size and USDPerMTokAtSLO prices the whole rented fleet
	// over its simulated SLO-compliant token rate. SLOFeasible is false
	// when no request was served within SLO.
	SLOFeasible     bool
	ReplicasAtSLO   int
	FleetHourlyUSD  float64
	USDPerMTokAtSLO float64
	// Observation holds the rendered observability artifacts (nil unless
	// ServeConfig.Observe was set).
	Observation *ServeObservation
	// Attrib holds the latency attribution and TEE-tax decomposition (nil
	// unless ServeConfig.Attribution was set).
	Attrib *obs.AttribReport
	// Sketched reports that quantiles came from streaming sketches with
	// relative error bound SketchAlpha rather than exact order statistics.
	Sketched    bool
	SketchAlpha float64
}

// Serve runs the continuous-batching serving simulator on the session's
// platform and reports throughput, tail latency and SLO-aware cost. TEE
// mechanisms (memory encryption, enclave paging, bounce buffers) flow into
// every scheduler iteration through the same roofline the single-request
// Measure path uses.
func (s *Session) Serve(cfg ServeConfig) (*ServeReport, error) {
	if cfg.RatePerSec <= 0 {
		return nil, fmt.Errorf("cllm: serving needs a positive arrival rate, got %g", cfg.RatePerSec)
	}
	if cfg.Model == "" {
		cfg.Model = "llama2-7b"
	}
	kind, err := parseDType(cfg.DType)
	if err != nil {
		return nil, err
	}
	mcfg, err := model.Lookup(cfg.Model)
	if err != nil {
		return nil, err
	}

	var be serve.Backend
	if s.isGPU {
		be = serve.Backend{IsGPU: true, GPU: perf.GPURun{GPU: s.gpu, Platform: s.platform, Seed: s.cfg.Seed}}
	} else {
		be = serve.Backend{CPU: perf.CPURun{
			CPU: s.cpu, Platform: s.platform,
			Sockets: cfg.Sockets, CoresPerSocket: cfg.Cores,
			AMX: true, Seed: s.cfg.Seed,
		}}
	}

	var scenario *workload.Scenario
	if cfg.Scenario != "" {
		sc, err := workload.ParseScenario(cfg.Scenario, cfg.RatePerSec)
		if err != nil {
			return nil, err
		}
		scenario = &sc
	}
	preempt, err := serve.ParsePreemptPolicy(cfg.PreemptPolicy)
	if err != nil {
		return nil, err
	}
	qmode, err := serve.ParseQuantileMode(cfg.QuantileMode)
	if err != nil {
		return nil, err
	}
	// One-release migration: the deprecated flat fault fields fill their
	// Faults counterparts wherever the sub-struct leaves the knob zero.
	if cfg.Faults.MTBFSec == 0 {
		cfg.Faults.MTBFSec = cfg.FailMTBFSec
	}
	if cfg.Faults.Plan == "" {
		cfg.Faults.Plan = cfg.FailPlan
	}
	if cfg.Faults.Policy == "" {
		cfg.Faults.Policy = cfg.FailPolicy
	}
	if cfg.Faults.Admission == "" {
		cfg.Faults.Admission = cfg.Admission
	}
	if cfg.Faults.RetryMax == 0 {
		cfg.Faults.RetryMax = cfg.RetryMax
	}
	if cfg.Faults.RetryBackoffSec == 0 {
		cfg.Faults.RetryBackoffSec = cfg.RetryBackoffSec
	}
	failPolicy, err := serve.ParseFailurePolicy(cfg.Faults.Policy)
	if err != nil {
		return nil, err
	}
	failPlan, err := serve.ParseFailPlan(cfg.Faults.Plan)
	if err != nil {
		return nil, err
	}
	admission, err := serve.ParseAdmissionPolicy(cfg.Faults.Admission)
	if err != nil {
		return nil, err
	}
	scfg := serve.Config{
		Workload:      trace.Workload{Model: mcfg, Kind: kind, InputLen: cfg.InputLen, OutputLen: cfg.OutputLen},
		Rate:          cfg.RatePerSec,
		Scenario:      scenario,
		Requests:      cfg.Requests,
		Seed:          s.cfg.Seed,
		MaxBatch:      cfg.MaxBatch,
		BlockTokens:   cfg.BlockTokens,
		ChunkTokens:   cfg.ChunkTokens,
		PrefixSharing: cfg.PrefixSharing,
		PrefixGroups:  cfg.PrefixGroups,
		PrefixFrac:    cfg.PrefixFrac,
		CostBucket:    cfg.CostBucket,
		PreemptPolicy: preempt,
		SwapPoolFrac:  cfg.SwapPoolFrac,
		TTFTSLOSec:    cfg.TTFTSLOSec,
		TPOTSLOSec:    cfg.TPOTSLOSec,
		QuantileMode:  qmode,
		SketchAlpha:   cfg.SketchAlpha,
		EpochRequests: cfg.EpochRequests,
		Faults: serve.FaultConfig{
			MTBFSec:         cfg.Faults.MTBFSec,
			Plan:            failPlan,
			Policy:          failPolicy,
			Admission:       admission,
			RetryMax:        cfg.Faults.RetryMax,
			RetryBackoffSec: cfg.Faults.RetryBackoffSec,
		},
	}
	policy, err := serve.ParseLBPolicy(cfg.LBPolicy)
	if err != nil {
		return nil, err
	}
	var rec *obs.Recorder
	if cfg.Observe {
		rec = obs.NewRecorderWindow(cfg.ObserveWindowSec, 512)
	}
	var attrib *obs.Attribution
	if cfg.Attribution {
		attrib, err = obs.NewAttributionWindow(cfg.SketchAlpha, true, cfg.ObserveWindowSec, 512)
		if err != nil {
			return nil, err
		}
	}
	scfg.Observer = obs.Multi(rec, attrib)
	if cfg.Topology == "" {
		// Reuse the session's memoized costing table for this deployment
		// shape: sweeps calling Serve repeatedly re-cost identical iteration
		// shapes from the table (bit-identical floats; see
		// serve.Backend.Coster). Topology runs skip the memo — each role
		// group's backend gets its own table inside Fleet.Run, keyed by
		// nothing the session cache distinguishes (two CPU TEEs share a
		// deployment shape but not a cost model).
		be.Coster, err = s.costerFor(be, scfg)
		if err != nil {
			return nil, err
		}
		if attrib != nil {
			// The clear-twin coster shares the session memo too: sweeps
			// re-price the counterfactual from the same table. A topology
			// run has no single clear twin (each group would need its own),
			// so its attribution reports zero TEE tax.
			scfg.ClearCoster, err = s.clearCosterFor(be, scfg)
			if err != nil {
				return nil, err
			}
		}
	}

	var rep *serve.Report
	var fleet *serve.FleetReport
	var topoHourly float64
	switch {
	case cfg.Topology != "":
		if cfg.Replicas > 1 {
			return nil, fmt.Errorf("cllm: set Replicas or Topology, not both (the topology fixes the fleet size)")
		}
		fleet, topoHourly, err = s.runTopology(cfg, scfg, policy)
		if err != nil {
			return nil, err
		}
		rep = fleet.Aggregate
	case cfg.Replicas > 1:
		fleet, err = serve.RunFleet(be, scfg, serve.FleetConfig{Replicas: cfg.Replicas, Policy: policy})
		if err != nil {
			return nil, err
		}
		rep = fleet.Aggregate
	default:
		rep, err = serve.Run(be, scfg)
		if err != nil {
			return nil, err
		}
	}

	out := &ServeReport{
		Platform:            rep.Platform,
		OfferedRate:         rep.OfferedRate,
		Completed:           rep.Completed,
		Dropped:             rep.Dropped,
		Unfinished:          rep.Unfinished,
		Preemptions:         rep.Preemptions,
		DroppedByReason:     rep.DroppedByReason,
		Sheds:               rep.Sheds,
		Retries:             rep.Retries,
		Crashes:             rep.Crashes,
		DowntimeSec:         rep.DowntimeSec,
		TokensPerSec:        rep.TokensPerSec,
		GoodputTokensPerSec: rep.GoodputTokensPerSec,
		SLOAttainment:       rep.SLOAttainment(),
		TTFTp50:             rep.TTFT.P50,
		TTFTp95:             rep.TTFT.P95,
		TTFTp99:             rep.TTFT.P99,
		TPOTMean:            rep.TPOT.Mean,
		TPOTp99:             rep.TPOT.P99,
		LatencyP50:          rep.Latency.P50,
		LatencyP99:          rep.Latency.P99,
		KVBlocksTotal:       rep.KVBlocksTotal,
		PeakKVBlocksInUse:   rep.PeakKVBlocksInUse,

		PrefixCacheHitTokens:  rep.PrefixCacheHitTokens,
		PrefixCacheMissTokens: rep.PrefixCacheMissTokens,
		EvictedKVBlocks:       rep.EvictedBlocks,
		SwapOuts:              rep.SwapOuts,
		SwapIns:               rep.SwapIns,
		Handoffs:              rep.HandoffsOut,
		HandoffsIngested:      rep.HandoffsIn,
		HandoffFallbacks:      rep.HandoffFallbacks,
		HandoffBytes:          rep.HandoffBytes,
		Replicas:              1,
		Sketched:              rep.Sketched,
		SketchAlpha:           rep.SketchAlpha,
	}
	if attrib != nil {
		out.Attrib = attrib.Report(rep.Platform)
	}
	if rec != nil {
		out.Observation = buildObservation(rec, attrib, rep)
		rec.Recycle()
	}

	if cfg.Topology != "" {
		// A topology fleet mixes rental rates: price the whole fleet from
		// the per-group sum runTopology computed.
		out.Replicas = len(fleet.PerReplica)
		out.LBPolicy = fleet.Policy
		out.Topology = fleet.Topology
		out.ReplicasAtSLO = len(fleet.PerReplica)
		out.FleetHourlyUSD = topoHourly
		if usd, err := fleet.CostPerMTokTotal(topoHourly); err == nil {
			out.SLOFeasible = true
			out.USDPerMTokAtSLO = usd
		}
		return out, nil
	}
	hourly, err := s.serveHourlyUSD(cfg)
	if err != nil {
		return nil, err
	}
	if fleet != nil {
		out.Replicas = cfg.Replicas
		out.LBPolicy = fleet.Policy
		out.ReplicasAtSLO = cfg.Replicas
		out.FleetHourlyUSD = hourly * float64(cfg.Replicas)
		if usd, err := fleet.CostPerMTok(hourly); err == nil {
			out.SLOFeasible = true
			out.USDPerMTokAtSLO = usd
		}
		return out, nil
	}
	if cost, err := rep.CostAtSLO(hourly); err == nil {
		out.SLOFeasible = true
		out.ReplicasAtSLO = cost.Replicas
		out.FleetHourlyUSD = cost.FleetHourlyUSD
		out.USDPerMTokAtSLO = cost.USDPerMTok
	}
	return out, nil
}

// runTopology builds and runs a role-aware fleet from the -topology
// syntax. Each group's platform opens as a sub-session of this one (same
// testbed, enclave size, seed and attestation policy) and contributes
// Replicas backends at that platform's rental rate; the returned hourly
// figure is the whole fleet's rent. Backends carry no pre-built coster —
// Fleet.Run builds one per group, shared by the group's replicas.
func (s *Session) runTopology(cfg ServeConfig, scfg serve.Config, policy serve.LBPolicy) (*serve.FleetReport, float64, error) {
	groups, err := ParseTopology(cfg.Topology)
	if err != nil {
		return nil, 0, err
	}
	var topo serve.Topology
	totalHourly := 0.0
	for _, g := range groups {
		role, err := serve.ParseRole(g.Role)
		if err != nil {
			return nil, 0, err
		}
		sub, err := Open(Config{
			Platform:        g.Platform,
			System:          s.cfg.System,
			EnclaveSize:     s.cfg.EnclaveSize,
			SkipAttestation: s.cfg.SkipAttestation,
			Seed:            s.cfg.Seed,
		})
		if err != nil {
			return nil, 0, fmt.Errorf("cllm: topology group %q: %w", g.Platform, err)
		}
		var be serve.Backend
		if sub.isGPU {
			be = serve.Backend{IsGPU: true, GPU: perf.GPURun{GPU: sub.gpu, Platform: sub.platform, Seed: s.cfg.Seed}}
		} else {
			be = serve.Backend{CPU: perf.CPURun{
				CPU: sub.cpu, Platform: sub.platform,
				Sockets: cfg.Sockets, CoresPerSocket: cfg.Cores,
				AMX: true, Seed: s.cfg.Seed,
			}}
		}
		hourly, err := sub.serveHourlyUSD(cfg)
		if err != nil {
			return nil, 0, err
		}
		totalHourly += hourly * float64(g.Replicas)
		topo.Groups = append(topo.Groups, serve.RoleGroup{Role: role, Backend: be, Replicas: g.Replicas, Policy: policy})
	}
	f, err := serve.NewFleet(topo)
	if err != nil {
		return nil, 0, err
	}
	rep, err := f.Run(scfg)
	return rep, totalHourly, err
}

// costerFor returns the session's shared step coster for one serving
// deployment shape, building it on first use.
func (s *Session) costerFor(be serve.Backend, scfg serve.Config) (*perf.StepCoster, error) {
	bucket := scfg.CostBucket
	if bucket < 1 {
		bucket = 1
	}
	key := fmt.Sprintf("%s|%s|%d|%d|%d|%v",
		scfg.Workload.Model.Name, scfg.Workload.Kind, be.CPU.Sockets, be.CPU.CoresPerSocket, bucket, be.IsGPU)
	s.costerMu.Lock()
	defer s.costerMu.Unlock()
	if c, ok := s.costers[key]; ok {
		return c, nil
	}
	c, err := serve.NewStepCoster(be, scfg)
	if err != nil {
		return nil, err
	}
	if s.costers == nil {
		s.costers = make(map[string]*perf.StepCoster)
	}
	s.costers[key] = c
	return c, nil
}

// clearCosterFor returns the session's shared clear-hardware twin coster
// for one deployment shape (the counterfactual side of TEE-tax
// attribution), building it on first use under a key disjoint from the
// real costers'.
func (s *Session) clearCosterFor(be serve.Backend, scfg serve.Config) (*perf.StepCoster, error) {
	bucket := scfg.CostBucket
	if bucket < 1 {
		bucket = 1
	}
	key := fmt.Sprintf("%s|%s|%d|%d|%d|%v|clear",
		scfg.Workload.Model.Name, scfg.Workload.Kind, be.CPU.Sockets, be.CPU.CoresPerSocket, bucket, be.IsGPU)
	s.costerMu.Lock()
	defer s.costerMu.Unlock()
	if c, ok := s.costers[key]; ok {
		return c, nil
	}
	c, err := serve.NewClearStepCoster(be, scfg)
	if err != nil {
		return nil, err
	}
	if s.costers == nil {
		s.costers = make(map[string]*perf.StepCoster)
	}
	s.costers[key] = c
	return c, nil
}

// serveHourlyUSD prices one replica of the session's deployment.
func (s *Session) serveHourlyUSD(cfg ServeConfig) (float64, error) {
	prices := cloud.DefaultPrices()
	if s.isGPU {
		return prices.CGPUHour, nil
	}
	sockets := cfg.Sockets
	if sockets <= 0 {
		sockets = 1
	}
	cores := cfg.Cores
	if cores <= 0 {
		cores = s.cpu.CoresPerSocket
	}
	return prices.HourlyCost(cloud.CPUInstance{VCPUs: cores * sockets, MemGiB: 128})
}
