// Cost planner: given a confidential-inference workload, find the cheapest
// compliant deployment — TDX CPU instances across vCPU counts versus the
// confidential H100 — reproducing the paper's Fig 12/13 decision procedure
// (Insight 11: small batches and inputs favor CPU TEEs; large ones favor
// the cGPU).
package main

import (
	"fmt"
	"log"

	"cllm"
)

func main() {
	scenarios := []struct {
		name     string
		workload cllm.Workload
	}{
		{"interactive chat (batch 1, short prompts)", cllm.Workload{Model: "llama2-7b", Batch: 1, InputLen: 128, OutputLen: 128}},
		{"batch summarization (batch 16)", cllm.Workload{Model: "llama2-7b", Batch: 16, InputLen: 128, OutputLen: 128}},
		{"bulk serving (batch 64)", cllm.Workload{Model: "llama2-7b", Batch: 64, InputLen: 128, OutputLen: 128}},
		{"long-document QA (batch 4, 2048-token prompts)", cllm.Workload{Model: "llama2-7b", Batch: 4, InputLen: 2048, OutputLen: 128}},
	}

	tdx, err := cllm.Open(cllm.Config{Platform: "tdx", System: "EMR2", Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	cgpu, err := cllm.Open(cllm.Config{Platform: "cgpu", Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	for _, sc := range scenarios {
		fmt.Printf("\n%s\n", sc.name)
		bestCost := 0.0
		bestV := 0
		for _, vcpus := range []int{8, 16, 32, 48, 60} {
			est, err := tdx.EstimateCost(sc.workload, cllm.MeasureOptions{}, vcpus)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  TDX %2d vCPUs: $%6.2f/Mtok ($%.2f/h)\n", vcpus, est.USDPerMTok, est.HourlyUSD)
			if bestV == 0 || est.USDPerMTok < bestCost {
				bestCost, bestV = est.USDPerMTok, vcpus
			}
		}
		gpuEst, err := cgpu.EstimateCost(sc.workload, cllm.MeasureOptions{}, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  cGPU (H100):  $%6.2f/Mtok ($%.2f/h)\n", gpuEst.USDPerMTok, gpuEst.HourlyUSD)

		if bestCost < gpuEst.USDPerMTok {
			fmt.Printf("  → recommend TDX @ %d vCPUs (cGPU is %.0f%% more expensive)\n",
				bestV, (gpuEst.USDPerMTok-bestCost)/bestCost*100)
		} else {
			fmt.Printf("  → recommend confidential H100 (TDX is %.0f%% more expensive)\n",
				(bestCost-gpuEst.USDPerMTok)/gpuEst.USDPerMTok*100)
		}
		fmt.Println("  note: CPU TEEs also encrypt DRAM and the socket interconnect;")
		fmt.Println("        the H100 leaves HBM unencrypted (Table I) — for the strictest")
		fmt.Println("        threat models the CPU deployment wins regardless of cost.")
	}

	// Single-request $/Mtok assumes the instance is always busy. Under real
	// load, SLOs decide how much of the rented fleet is actually useful —
	// simulate a served fleet instead of extrapolating (see
	// examples/fleetsizing for the full comparison).
	fmt.Println("\nserved fleet check (TDX, 8 req/s, chat workload):")
	served, err := tdx.Serve(cllm.ServeConfig{
		Model: "llama2-7b", RatePerSec: 8, Requests: 64,
		Replicas: 2, LBPolicy: "least-loaded", ChunkTokens: 512,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  2 replicas: %.0f%% of requests within SLO, $%.2f/Mtok served\n",
		served.SLOAttainment*100, served.USDPerMTokAtSLO)
}
