// Healthcare: the paper's motivating scenario — an insurer processes
// confidential health records with an LLM in the cloud. This example
// compares every deployment option on the same summarization workload and
// checks each against the 200 ms/word human-reading-speed service level the
// paper uses (§III-D), then shows why the records are safe at rest (sealed
// weights, attested enclave) and in use (memory encryption).
package main

import (
	"fmt"
	"log"

	"cllm"
)

const patientNote = `Patient presents with intermittent chest pain radiating
to the left arm, elevated troponin, and irregular ECG rhythm. History of
hypertension and type 2 diabetes. Recommend cardiology consult.`

func main() {
	fmt.Println("Confidential clinical-note summarization: platform comparison")
	fmt.Printf("%-10s %-10s %-12s %-12s %-10s %s\n",
		"platform", "protected", "ms/token", "tok/s", "TTFT(s)", "meets 200ms/word")

	workload := cllm.Workload{
		Model: "llama2-7b", DType: "bf16", Batch: 1, InputLen: 1024, OutputLen: 128,
	}

	var baseline float64
	for _, platform := range []string{"baremetal", "vm", "sgx", "tdx"} {
		session, err := cllm.Open(cllm.Config{Platform: platform, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		m, err := session.Measure(workload, cllm.MeasureOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if platform == "baremetal" {
			baseline = m.MeanTokenLatency
		}
		meets := "yes"
		if m.MeanTokenLatency > 0.2 {
			meets = "NO"
		}
		fmt.Printf("%-10s %-10v %-12.1f %-12.1f %-10.2f %s\n",
			session.PlatformName(), session.Protected(),
			m.MeanTokenLatency*1e3, m.DecodeTokensPerSec, m.PrefillSeconds, meets)
	}

	// The paper's Insight 4: protection costs stay under ~20% latency.
	tdxSession, err := cllm.Open(cllm.Config{Platform: "tdx", Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	tdxM, err := tdxSession.Measure(workload, cllm.MeasureOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprotection overhead (TDX vs bare metal): %.1f%%\n",
		(tdxM.MeanTokenLatency-baseline)/baseline*100)

	// Run the actual summarization inside the attested TEE. The weights
	// reach the enclave through the encrypted store; prompts and outputs
	// never exist in host-readable memory.
	model, err := tdxSession.LoadModel("llama2-7b", "bf16", 128)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := model.Generate("summarize: "+patientNote, cllm.GenerateOptions{MaxNewTokens: 24})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsummary tokens (inside TEE): %s\n", gen.Text)

	// Quantized serving for the latency-sensitive path: int8 roughly halves
	// next-token latency at similar throughput (Fig 4).
	int8M, err := tdxSession.Measure(cllm.Workload{
		Model: "llama2-7b", DType: "int8", Batch: 1, InputLen: 1024, OutputLen: 128,
	}, cllm.MeasureOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nint8 latency: %.1f ms/token (%.1fx faster than bf16)\n",
		int8M.MeanTokenLatency*1e3, tdxM.MeanTokenLatency/int8M.MeanTokenLatency)
}
