// Fleet sizing: how many confidential replicas does a RAG-style workload
// need to hold its SLO, and which load-balancing policy makes the fleet
// cheapest? The fleet is simulated end to end (dispatch skew, per-replica
// queueing and prefix-cache locality included) rather than extrapolated
// from one replica's throughput — see docs/serving-model.md §6.
package main

import (
	"fmt"
	"log"

	"cllm"
)

func main() {
	sess, err := cllm.Open(cllm.Config{Platform: "tdx", Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// RAG-style traffic: 16 document-set prefixes, each request sharing the
	// leading 75% of a 1024-token prompt with its group, at a fleet rate of
	// 3 req/s. Chunked prefill keeps decode cadence steady.
	base := cllm.ServeConfig{
		Model:         "llama2-7b",
		InputLen:      1024,
		OutputLen:     32,
		RatePerSec:    3,
		Requests:      48,
		MaxBatch:      16,
		ChunkTokens:   256,
		PrefixSharing: true,
		PrefixGroups:  16,
		PrefixFrac:    0.75,
		TTFTSLOSec:    4,
	}

	fmt.Println("policy comparison at 4 replicas:")
	for _, policy := range []string{"round-robin", "least-loaded", "prefix-affinity"} {
		cfg := base
		cfg.Replicas = 4
		cfg.LBPolicy = policy
		rep, err := sess.Serve(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cost := "-"
		if rep.SLOFeasible {
			cost = fmt.Sprintf("$%.2f/Mtok", rep.USDPerMTokAtSLO)
		}
		fmt.Printf("  %-16s goodput %6.1f tok/s  SLO %3.0f%%  TTFT p50 %.2fs  prefix hits %6d tok  %s\n",
			policy, rep.GoodputTokensPerSec, rep.SLOAttainment*100,
			rep.TTFTp50, rep.PrefixCacheHitTokens, cost)
	}

	// First the PR-1 way: extrapolate the fleet from one replica's
	// SLO-compliant rate (cloud.ReplicasForRate under the hood).
	single := base
	rep, err := sess.Serve(single)
	if err != nil {
		log.Fatal(err)
	}
	if rep.SLOFeasible {
		fmt.Printf("\nextrapolated from one replica: %d replicas ($%.2f/h)\n",
			rep.ReplicasAtSLO, rep.FleetHourlyUSD)
	} else {
		fmt.Println("\nextrapolated from one replica: infeasible (no request met SLO)")
	}

	// Then by simulation: smallest replica count whose *simulated* SLO
	// attainment reaches 95% under prefix-affinity dispatch — dispatch
	// skew, queueing and cache locality included.
	fmt.Println("sizing by fleet simulation (prefix-affinity):")
	for n := 2; n <= 6; n++ {
		cfg := base
		cfg.Replicas = n
		cfg.LBPolicy = "prefix-affinity"
		rep, err := sess.Serve(cfg)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if rep.SLOAttainment >= 0.95 {
			marker = "  ← smallest SLO-compliant fleet"
		}
		fmt.Printf("  %d replica(s): SLO %3.0f%%, $%.2f/h fleet%s\n",
			n, rep.SLOAttainment*100, rep.FleetHourlyUSD, marker)
		if marker != "" {
			break
		}
	}
}
