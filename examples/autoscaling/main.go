// Autoscaling under bursty load: what does TEE elasticity cost? A
// confidential replica is not servable when its VM boots — the TD must
// accept its memory, the weights must stream in, and the attestation
// round-trip must complete before secrets are provisioned. This example
// runs the same bursty scenario against a TDX fleet twice — once paying
// the real cold start, once with free (counterfactual) elasticity — and
// then shows the cold-start-aware remedy: provisioning headroom before the
// burst instead of reacting into it. See docs/serving-model.md §10.
package main

import (
	"fmt"
	"log"

	"cllm"
)

func run(label string, cfg cllm.AutoscaleConfig) *cllm.AutoscaleReport {
	rep, err := cllm.Autoscale(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s SLO %5.1f%%  replica-hrs %.4f  cost $%.4f  $/Mtok %6.2f  coldstarts %d  TTFT p99 %.2fs\n",
		label, rep.SLOAttainment*100, rep.ReplicaHours, rep.CostUSD, rep.USDPerMTok,
		rep.ColdStarts, rep.TTFTp99)
	return rep
}

func main() {
	// Bursty MMPP chat traffic: lulls a single TDX replica holds at ease,
	// bursts of ~20 s that need most of the 4-replica ceiling.
	base := cllm.AutoscaleConfig{
		Scenario:   "bursty",
		RatePerSec: 0.5,
		Requests:   160,
		Classes:    []cllm.AutoscaleClass{{Platform: "tdx", Min: 1, Max: 4}},
		MaxBatch:   8,
		TTFTSLOSec: 6,
		Seed:       7,
	}

	fmt.Println("naive reactive scaling (target util 0.7):")
	naiveWarm := base
	naiveWarm.NoColdStart = true
	warm := run("  free elasticity", naiveWarm)
	cold := run("  TEE cold start", base)

	// The cold-start-aware policy buys headroom: scale earlier (lower
	// target utilization) and keep a higher standing floor, so bursts land
	// on capacity that already attested instead of queueing behind a TD
	// build.
	fmt.Println("\ncold-start-aware scaling (floor 2, target util 0.4):")
	aware := base
	aware.TargetUtil = 0.4
	aware.Classes = []cllm.AutoscaleClass{{Platform: "tdx", Min: 2, Max: 4}}
	awareRep := run("  TEE cold start", aware)

	fmt.Printf("\nelasticity tax: free elasticity holds %.1f%% of requests in SLO at %.4f replica-hrs;\n",
		warm.SLOAttainment*100, warm.ReplicaHours)
	fmt.Printf("the same policy with real cold starts holds %.1f%%, and buying the SLO back\n",
		cold.SLOAttainment*100)
	fmt.Printf("via headroom costs %.4f replica-hrs (%.0f%% more hardware-hours than free elasticity).\n",
		awareRep.ReplicaHours, (awareRep.ReplicaHours/warm.ReplicaHours-1)*100)
}
