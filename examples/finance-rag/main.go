// Finance RAG: a bank runs retrieval-augmented generation over confidential
// research notes, entirely inside a TEE — the paper's §VI deployment
// (Elasticsearch-style store + BM25 + reranker + dense retrieval in TDX).
// The example indexes proprietary documents, answers analyst queries with
// all three retrieval methods, and quantifies the TEE's latency cost.
package main

import (
	"fmt"
	"log"

	"cllm"
)

var researchNotes = []cllm.RAGDocument{
	{ID: "note-1", Title: "Q3 equity outlook", Body: "equity portfolio rotation toward defensive dividend stocks amid rising volatility and tightening liquidity"},
	{ID: "note-2", Title: "rates desk memo", Body: "yield curve steepening trade with duration hedge via futures; carry remains attractive"},
	{ID: "note-3", Title: "credit risk review", Body: "leveraged loan covenants weakening; private credit spreads compress despite default risk"},
	{ID: "note-4", Title: "derivatives strategy", Body: "volatility surface skew favors collar strategies on concentrated equity positions; hedge cost declines"},
	{ID: "note-5", Title: "liquidity stress test", Body: "money market liquidity stress scenario shows funding gap under redemption shock; repo capacity adequate"},
	{ID: "note-6", Title: "merger arbitrage", Body: "announced deal spread wide on regulatory risk; arbitrage position sized at conservative leverage"},
}

func main() {
	// Baseline (unprotected) vs TDX: same pipeline, same results — only the
	// timing differs (Fig 14, Insight 12).
	latencies := map[string]map[string]float64{}
	for _, platform := range []string{"baremetal", "tdx"} {
		session, err := cllm.Open(cllm.Config{Platform: platform, System: "EMR2", Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		ragPipe, err := session.NewRAG(researchNotes)
		if err != nil {
			log.Fatal(err)
		}
		latencies[platform] = map[string]float64{}
		for _, method := range []string{"bm25", "reranked", "sbert"} {
			hits, lat, err := ragPipe.Query(method, "hedge equity volatility", 3)
			if err != nil {
				log.Fatal(err)
			}
			latencies[platform][method] = lat
			if platform == "tdx" {
				fmt.Printf("%s top hits (%.2f ms inside TDX):\n", method, lat*1e3)
				for _, h := range hits {
					fmt.Printf("  %-8s %.4f\n", h.ID, h.Score)
				}
			}
		}
	}

	fmt.Println("\nTEE cost of the retrieval path (TDX vs bare metal):")
	for _, method := range []string{"bm25", "reranked", "sbert"} {
		base := latencies["baremetal"][method]
		tdx := latencies["tdx"][method]
		fmt.Printf("  %-9s %.2f ms → %.2f ms (+%.1f%%)\n", method, base*1e3, tdx*1e3, (tdx-base)/base*100)
	}

	// Quality check on the built-in benchmark corpus: protection does not
	// change retrieval quality, only adds ~6-7% latency.
	session, err := cllm.Open(cllm.Config{Platform: "tdx", System: "EMR2", Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	bench, err := session.NewRAG(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBEIR-like benchmark inside TDX (%d docs):\n", bench.Len())
	for _, method := range []string{"bm25", "reranked", "sbert"} {
		nd, mean, err := bench.Benchmark(method)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s nDCG@10 %.3f, mean query %.2f ms\n", method, nd, mean*1e3)
	}
}
