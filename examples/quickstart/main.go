// Quickstart: open a confidential platform, attest it, load a model through
// the sealed-weights path, generate text, and measure the full-size
// workload's performance — the minimal end-to-end cLLM flow.
package main

import (
	"fmt"
	"log"

	"cllm"
)

func main() {
	// 1. Open Intel TDX. Open() runs the measure→quote→verify attestation
	//    handshake before returning; refusing unattested enclaves is the
	//    paper's baseline security hygiene.
	session, err := cllm.Open(cllm.Config{Platform: "tdx", Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened %s (attested: %v)\n", session.PlatformName(), session.Attested())

	// 2. Load Llama2-7B at 1/128 scale for functional inference. The
	//    architecture (32 layers, GQA layout, SiLU MLP) matches the real
	//    model; only the dimensions shrink.
	model, err := session.LoadModel("llama2-7b", "bf16", 128)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Generate. TEEs never change outputs — this produces the same
	//    tokens on baremetal, TDX or SGX.
	gen, err := model.Generate("confidential inference for healthcare records", cllm.GenerateOptions{MaxNewTokens: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d tokens: %s\n", len(gen.Tokens), gen.Text)

	// 4. Measure the same workload at full size with the mechanistic
	//    performance model (Fig 4's configuration).
	m, err := session.Measure(cllm.Workload{
		Model: "llama2-7b", DType: "bf16", Batch: 1, InputLen: 1024, OutputLen: 128,
	}, cllm.MeasureOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full-size Llama2-7B on TDX: %.1f ms/token, %.1f tok/s, TTFT %.2f s\n",
		m.MeanTokenLatency*1e3, m.DecodeTokensPerSec, m.PrefillSeconds)

	// 5. And the cost of serving it (Fig 12's arithmetic).
	cost, err := session.EstimateCost(cllm.Workload{Model: "llama2-7b", InputLen: 128, OutputLen: 128}, cllm.MeasureOptions{}, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at 32 vCPUs: $%.2f/hour, $%.2f per million tokens\n", cost.HourlyUSD, cost.USDPerMTok)
}
