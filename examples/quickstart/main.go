// Quickstart: open a confidential platform, attest it, load a model through
// the sealed-weights path, generate text, and measure the full-size
// workload's performance — the minimal end-to-end cLLM flow.
package main

import (
	"fmt"
	"log"

	"cllm"
)

func main() {
	// 1. Open Intel TDX. Open() runs the measure→quote→verify attestation
	//    handshake before returning; refusing unattested enclaves is the
	//    paper's baseline security hygiene.
	session, err := cllm.Open(cllm.Config{Platform: "tdx", Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened %s (attested: %v)\n", session.PlatformName(), session.Attested())

	// 2. Load Llama2-7B at 1/128 scale for functional inference. The
	//    architecture (32 layers, GQA layout, SiLU MLP) matches the real
	//    model; only the dimensions shrink.
	model, err := session.LoadModel("llama2-7b", "bf16", 128)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Generate. TEEs never change outputs — this produces the same
	//    tokens on baremetal, TDX or SGX.
	gen, err := model.Generate("confidential inference for healthcare records", cllm.GenerateOptions{MaxNewTokens: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d tokens: %s\n", len(gen.Tokens), gen.Text)

	// 4. Measure the same workload at full size with the mechanistic
	//    performance model (Fig 4's configuration).
	m, err := session.Measure(cllm.Workload{
		Model: "llama2-7b", DType: "bf16", Batch: 1, InputLen: 1024, OutputLen: 128,
	}, cllm.MeasureOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full-size Llama2-7B on TDX: %.1f ms/token, %.1f tok/s, TTFT %.2f s\n",
		m.MeanTokenLatency*1e3, m.DecodeTokensPerSec, m.PrefillSeconds)

	// 5. And the cost of serving it (Fig 12's arithmetic).
	cost, err := session.EstimateCost(cllm.Workload{Model: "llama2-7b", InputLen: 128, OutputLen: 128}, cllm.MeasureOptions{}, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at 32 vCPUs: $%.2f/hour, $%.2f per million tokens\n", cost.HourlyUSD, cost.USDPerMTok)

	// 6. The same question under production load: a Poisson request stream
	//    into the continuous-batching scheduler, with chunked prefill
	//    bounding decode stalls. Throughput, tail latency and SLO-aware
	//    cost all emerge from the same modeled TEE mechanisms.
	served, err := session.Serve(cllm.ServeConfig{
		Model: "llama2-7b", RatePerSec: 8, Requests: 64, ChunkTokens: 512,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving at 8 req/s: %.1f tok/s goodput, TTFT p99 %.2fs, %.0f%% within SLO\n",
		served.GoodputTokensPerSec, served.TTFTp99, served.SLOAttainment*100)
	if served.SLOFeasible {
		fmt.Printf("SLO fleet: %d replica(s), $%.2f per million served tokens\n",
			served.ReplicasAtSLO, served.USDPerMTokAtSLO)
	}
}
