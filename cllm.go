// Package cllm is the public API of the confidential-LLM-inference
// reproduction: open a TEE platform (bare metal, VM, Intel TDX, Gramine-SGX,
// H100 GPU or confidential GPU), attest it, load a model, run real token
// generation, measure throughput/latency with the mechanistic performance
// model, estimate cloud cost, and run the paper's RAG pipelines.
//
// The package wraps the internal substrates (tensor engine, transformer,
// TEE mechanism models, roofline execution engine, cost model, retrieval
// stack) behind a small surface; the full experiment harness regenerating
// every table and figure of the paper is reachable through Experiments and
// RunExperiment.
package cllm

import (
	"crypto/rand"
	"fmt"
	"sync"
	"time"

	"cllm/internal/dtype"
	"cllm/internal/gramine"
	"cllm/internal/hw"
	"cllm/internal/perf"
	"cllm/internal/tee"
)

// Config selects the platform a Session runs on.
type Config struct {
	// Platform is one of: baremetal, vm, vm-th, vm-nb, tdx, sgx, gpu, cgpu,
	// or the projected extensions sev-snp, b100, cb100 (see DESIGN.md).
	Platform string
	// System is the CPU testbed: EMR1 (2×32-core Gold 6530, default) or
	// EMR2 (2×60-core Platinum 8580). Ignored for gpu/cgpu.
	System string
	// EnclaveSize is the SGX enclave size in bytes (default 192 GiB).
	EnclaveSize int64
	// SkipAttestation opens protected platforms without the attestation
	// handshake (not recommended; mirrors trusting an unverified enclave).
	SkipAttestation bool
	// Seed drives every deterministic noise source.
	Seed int64
}

// Session is an opened (and, for protected platforms, attested) TEE context.
type Session struct {
	cfg      Config
	platform tee.Platform
	cpu      hw.CPU
	gpu      hw.GPU
	isGPU    bool
	attested bool
	manifest *gramine.Manifest

	// costers caches one memoized step-costing table per serving
	// deployment shape (model × dtype × sockets/cores × cost bucket), so
	// repeated Serve calls — rate sweeps, benchmark loops — re-cost
	// identical scheduler iterations from a table instead of re-walking the
	// roofline. Purely a cache: memoized keys return bit-identical floats,
	// so results never depend on it.
	costerMu sync.Mutex
	costers  map[string]*perf.StepCoster
}

// Open validates the configuration, constructs the platform and — for
// protected platforms — runs the measure→quote→verify attestation flow
// before returning a usable session.
func Open(cfg Config) (*Session, error) {
	s := &Session{cfg: cfg}
	if cfg.System == "" {
		cfg.System = "EMR1"
	}
	switch cfg.Platform {
	case "gpu", "cgpu", "b100", "cb100":
		s.isGPU = true
		s.gpu = hw.H100NVL()
	default:
		cpu, err := hw.Lookup(cfg.System)
		if err != nil {
			return nil, err
		}
		s.cpu = cpu
	}

	switch cfg.Platform {
	case "baremetal", "":
		s.platform = tee.Baremetal()
	case "vm":
		s.platform = tee.VM(tee.VMFullHuge)
	case "vm-th":
		s.platform = tee.VM(tee.VMTransparentHuge)
	case "vm-nb":
		s.platform = tee.VM(tee.VMNoBinding)
	case "tdx":
		s.platform = tee.TDX()
	case "sgx":
		size := cfg.EnclaveSize
		if size == 0 {
			size = 192 << 30
		}
		s.manifest = gramine.DefaultManifest("/models/model.bin", size, 64)
		p, err := tee.SGX(s.manifest)
		if err != nil {
			return nil, err
		}
		s.platform = p
	case "sev-snp", "sevsnp":
		s.platform = tee.SEVSNP()
	case "gpu":
		s.platform = tee.GPU()
	case "cgpu":
		s.platform = tee.CGPU()
	case "b100":
		s.platform = tee.B100()
	case "cb100":
		s.platform = tee.B100CC()
	default:
		return nil, fmt.Errorf("cllm: unknown platform %q (want baremetal|vm|vm-th|vm-nb|tdx|sgx|sev-snp|gpu|cgpu|b100|cb100)", cfg.Platform)
	}

	if s.platform.Protected && !cfg.SkipAttestation {
		if err := s.attest(); err != nil {
			return nil, fmt.Errorf("cllm: attestation failed: %w", err)
		}
	}
	return s, nil
}

// attest runs the software attestation protocol: the platform measures the
// runtime, signs a quote over a fresh nonce, and the session verifies it
// against the expected measurement before any secret is provisioned.
func (s *Session) attest() error {
	code := []byte("cllm-runtime-v1:" + s.platform.Name)
	config := []byte(s.cfg.Platform)
	measurement := tee.Measure(code, config)

	var key tee.PlatformKey
	copy(key[:], "simulated-platform-signing-key--")
	var nonce [16]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return err
	}
	now := time.Now()
	quote := tee.GenerateQuote(key, measurement, 3, nonce, false, now)
	err := tee.VerifyQuote(key, quote, tee.VerifyPolicy{
		Expected: measurement,
		MinSVN:   2,
		Nonce:    nonce,
		MaxAge:   time.Hour,
		Now:      now,
	})
	if err != nil {
		return err
	}
	s.attested = true
	return nil
}

// Attested reports whether the session passed attestation.
func (s *Session) Attested() bool { return s.attested }

// Protected reports whether the platform provides TEE guarantees.
func (s *Session) Protected() bool { return s.platform.Protected }

// PlatformName returns the platform label as used in the paper's plots.
func (s *Session) PlatformName() string { return s.platform.Name }

// parseDType maps a user datatype string.
func parseDType(d string) (dtype.Kind, error) {
	if d == "" {
		return dtype.BF16, nil
	}
	return dtype.Parse(d)
}
