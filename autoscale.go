package cllm

import (
	"fmt"
	"strconv"
	"strings"

	"cllm/internal/autoscale"
	"cllm/internal/model"
	"cllm/internal/obs"
	"cllm/internal/perf"
	"cllm/internal/serve"
	"cllm/internal/trace"
	"cllm/internal/workload"
)

// AutoscaleClass selects one replica class of an elastic heterogeneous
// fleet: a platform plus the replica-count bounds the operator allows.
type AutoscaleClass struct {
	// Platform is a Config.Platform name (baremetal, tdx, sgx, cgpu, ...).
	Platform string
	// Min replicas start warm at t=0 (the standing fleet, default 1);
	// the scaler may activate up to Max (default 2).
	Min, Max int
}

// ParseClasses parses a CLI class list: comma-separated "platform:max" or
// "platform:max:min" entries, e.g. "tdx:4,cgpu:2" or "tdx:4:2". Min
// defaults to 1.
func ParseClasses(s string) ([]AutoscaleClass, error) {
	var out []AutoscaleClass
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, ":")
		c := AutoscaleClass{Platform: strings.TrimSpace(parts[0]), Min: 1, Max: 2}
		if c.Platform == "" {
			return nil, fmt.Errorf("cllm: empty platform in class %q", item)
		}
		if len(parts) > 3 {
			return nil, fmt.Errorf("cllm: class %q is not platform:max[:min]", item)
		}
		for i, dst := range []*int{&c.Max, &c.Min} {
			if len(parts) > i+1 {
				n, err := strconv.Atoi(strings.TrimSpace(parts[i+1]))
				if err != nil {
					return nil, fmt.Errorf("cllm: class %q: %w", item, err)
				}
				*dst = n
			}
		}
		if c.Min > c.Max {
			return nil, fmt.Errorf("cllm: class %q has min %d > max %d", item, c.Min, c.Max)
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cllm: empty class list %q", s)
	}
	return out, nil
}

// AutoscaleConfig describes an elastic serving run: a traffic scenario
// against a heterogeneous fleet of TEE replica classes behind a reactive
// target-tracking scaler.
type AutoscaleConfig struct {
	// Model is a zoo name (default "llama2-7b"); DType as in Workload.
	Model, DType string
	// System is the CPU testbed for CPU classes (default EMR1).
	System string
	// Scenario names the traffic scenario (default "bursty"); RatePerSec
	// is its mean arrival rate (default 4).
	Scenario   string
	RatePerSec float64
	// Requests is the number of arrivals to simulate (default 256).
	Requests int
	// Classes are the fleet's replica classes (required).
	Classes []AutoscaleClass
	// Dispatch is "uniform" or "cost-aware" (default "cost-aware").
	Dispatch string
	// IntervalSec / TargetUtil tune the control loop (defaults 15 s / 0.7).
	IntervalSec float64
	TargetUtil  float64
	// DemandAlpha smooths the scaler's demand estimate with an EWMA over
	// control windows: demand = alpha*instant + (1-alpha)*previous. 1 (or
	// the 0 default) keeps the raw one-window estimator bit-identically;
	// smaller values trade reaction speed for fewer cold starts under
	// bursty traffic.
	DemandAlpha float64
	// NoColdStart zeroes every class's cold start — the counterfactual
	// baseline quantifying what enclave build + attestation cost at scale.
	NoColdStart bool
	// MaxBatch caps concurrent sequences per replica (default 32).
	MaxBatch int
	// ChunkTokens enables chunked prefill per replica (0 = monolithic).
	ChunkTokens int
	// PrefixSharing enables each replica's block-level prefix cache; the
	// scenario's shape mixes define the shared-prefix groups.
	PrefixSharing bool
	// PreemptPolicy selects each replica's preemption policy:
	// "recompute" (default), "swap", or "auto" (see ServeConfig).
	PreemptPolicy string
	// Sockets selects the CPU deployment for CPU classes (default 1).
	Sockets int
	// CostBucket quantizes the memoized step costing (tokens; default 1 =
	// exact, bit-identical to the unmemoized cost model). See
	// serve.Config.CostBucket.
	CostBucket int
	// TTFTSLOSec / TPOTSLOSec are SLO targets (defaults 5 s / 0.5 s).
	TTFTSLOSec, TPOTSLOSec float64
	// Seed drives arrivals and every noise stream.
	Seed int64
	// Observe / ObserveWindowSec record the elastic run's lifecycle event
	// stream and time series, as in ServeConfig.
	Observe          bool
	ObserveWindowSec float64
}

// AutoscaleClassReport is one class's consumption over the run.
type AutoscaleClassReport struct {
	Name              string
	HourlyUSD         float64
	ColdStartSec      float64
	CapacityReqPerSec float64
	ReplicaHours      float64
	CostUSD           float64
	PeakActive        int
	Dispatched        int
	ColdStarts        int
}

// AutoscaleWindow is one control-loop interval of the time series.
type AutoscaleWindow struct {
	StartSec        float64
	Arrivals        int
	Backlog         int
	DemandReqPerSec float64
	// Active / Available are per-class replica counts (billed / servable),
	// in Classes order.
	Active, Available []int
}

// AutoscaleReport summarizes an elastic serving run.
type AutoscaleReport struct {
	Scenario    string
	Dispatch    string
	OfferedRate float64
	// Completed / Dropped / Unfinished partition the offered requests.
	Completed, Dropped, Unfinished int
	// Preemptions and swap transfers across the whole elastic fleet.
	Preemptions       int
	SwapOuts, SwapIns int
	SLOAttainment     float64
	// TotalTokens is the fleet's output-token production.
	TotalTokens               int
	GoodputTokensPerSec       float64
	TTFTp50, TTFTp99, TPOTp99 float64
	// ReplicaHours / CostUSD total the rented fleet over the run;
	// USDPerMTok prices SLO-compliant served tokens (Inf when none).
	ReplicaHours, CostUSD, USDPerMTok float64
	ColdStarts                        int
	Classes                           []AutoscaleClassReport
	Windows                           []AutoscaleWindow
	// Observation holds the rendered observability artifacts (nil unless
	// AutoscaleConfig.Observe was set).
	Observation *ServeObservation
}

// Autoscale simulates cost-aware elastic serving across heterogeneous TEE
// replica classes: each class's backend is opened (and attested) like a
// Session, its cold start is derived from the platform's provisioning
// mechanisms (TD page acceptance, enclave EADD+EEXTEND, bounce-buffered
// weight upload, attestation round-trip), and a reactive target-tracking
// scaler activates and drains replicas as the scenario's arrival process
// moves.
func Autoscale(cfg AutoscaleConfig) (*AutoscaleReport, error) {
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("cllm: autoscaling needs at least one replica class")
	}
	if cfg.Model == "" {
		cfg.Model = "llama2-7b"
	}
	if cfg.Scenario == "" {
		cfg.Scenario = "bursty"
	}
	if cfg.RatePerSec <= 0 {
		cfg.RatePerSec = 4
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 256
	}
	kind, err := parseDType(cfg.DType)
	if err != nil {
		return nil, err
	}
	mcfg, err := model.Lookup(cfg.Model)
	if err != nil {
		return nil, err
	}
	scenario, err := workload.ParseScenario(cfg.Scenario, cfg.RatePerSec)
	if err != nil {
		return nil, err
	}
	dispatch := autoscale.CostAware
	if cfg.Dispatch != "" {
		dispatch, err = autoscale.ParseDispatch(cfg.Dispatch)
		if err != nil {
			return nil, err
		}
	}

	preempt, err := serve.ParsePreemptPolicy(cfg.PreemptPolicy)
	if err != nil {
		return nil, err
	}

	wl := trace.Workload{Model: mcfg, Kind: kind}
	scfg := serve.Config{
		Workload:      wl,
		Scenario:      &scenario,
		Requests:      cfg.Requests,
		Seed:          cfg.Seed,
		MaxBatch:      cfg.MaxBatch,
		ChunkTokens:   cfg.ChunkTokens,
		PrefixSharing: cfg.PrefixSharing,
		CostBucket:    cfg.CostBucket,
		PreemptPolicy: preempt,
		TTFTSLOSec:    cfg.TTFTSLOSec, TPOTSLOSec: cfg.TPOTSLOSec,
	}
	var rec *obs.Recorder
	if cfg.Observe {
		rec = obs.NewRecorderWindow(cfg.ObserveWindowSec, 512)
		scfg.Observer = rec
	}
	classes := make([]autoscale.Class, len(cfg.Classes))
	for i, ac := range cfg.Classes {
		sess, err := Open(Config{Platform: ac.Platform, System: cfg.System, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		var be serve.Backend
		if sess.isGPU {
			be = serve.Backend{IsGPU: true, GPU: perf.GPURun{GPU: sess.gpu, Platform: sess.platform, Seed: cfg.Seed}}
		} else {
			be = serve.Backend{CPU: perf.CPURun{
				CPU: sess.cpu, Platform: sess.platform,
				Sockets: cfg.Sockets, AMX: true, Seed: cfg.Seed,
			}}
		}
		hourly, err := sess.serveHourlyUSD(ServeConfig{Sockets: cfg.Sockets})
		if err != nil {
			return nil, err
		}
		coldStart := 0.0
		if !cfg.NoColdStart {
			coldStart = autoscale.ColdStartSec(be, wl)
		}
		capacity, err := autoscale.ProbeCapacity(be, scfg)
		if err != nil {
			return nil, err
		}
		classes[i] = autoscale.Class{
			Name: ac.Platform, Backend: be, HourlyUSD: hourly,
			ColdStartSec: coldStart, Min: ac.Min, Max: ac.Max,
			CapacityReqPerSec: capacity,
		}
	}

	rep, err := autoscale.Run(classes, autoscale.Config{
		Serve:       scfg,
		Dispatch:    dispatch,
		IntervalSec: cfg.IntervalSec,
		TargetUtil:  cfg.TargetUtil,
		DemandAlpha: cfg.DemandAlpha,
	})
	if err != nil {
		return nil, err
	}

	out := &AutoscaleReport{
		Scenario:            cfg.Scenario,
		Dispatch:            rep.Dispatch,
		OfferedRate:         rep.Aggregate.OfferedRate,
		Completed:           rep.Aggregate.Completed,
		Dropped:             rep.Aggregate.Dropped,
		Unfinished:          rep.Aggregate.Unfinished,
		Preemptions:         rep.Aggregate.Preemptions,
		SwapOuts:            rep.Aggregate.SwapOuts,
		SwapIns:             rep.Aggregate.SwapIns,
		TotalTokens:         rep.Aggregate.TotalTokens,
		SLOAttainment:       rep.SLOAttainment(),
		GoodputTokensPerSec: rep.Aggregate.GoodputTokensPerSec,
		TTFTp50:             rep.Aggregate.TTFT.P50,
		TTFTp99:             rep.Aggregate.TTFT.P99,
		TPOTp99:             rep.Aggregate.TPOT.P99,
		ReplicaHours:        rep.ReplicaHours,
		CostUSD:             rep.CostUSD,
		USDPerMTok:          rep.USDPerMTok,
		ColdStarts:          rep.ColdStarts,
	}
	for i, u := range rep.Usage {
		out.Classes = append(out.Classes, AutoscaleClassReport{
			Name:              u.Name,
			HourlyUSD:         classes[i].HourlyUSD,
			ColdStartSec:      u.ColdStartSec,
			CapacityReqPerSec: classes[i].CapacityReqPerSec,
			ReplicaHours:      u.ReplicaHours,
			CostUSD:           u.CostUSD,
			PeakActive:        u.PeakActive,
			Dispatched:        u.Dispatched,
			ColdStarts:        u.ColdStarts,
		})
	}
	for _, w := range rep.Windows {
		out.Windows = append(out.Windows, AutoscaleWindow{
			StartSec: w.StartSec, Arrivals: w.Arrivals, Backlog: w.Backlog,
			DemandReqPerSec: w.DemandReqPerSec,
			Active:          w.Active, Available: w.Available,
		})
	}
	if rec != nil {
		out.Observation = buildObservation(rec, nil, rep.Aggregate)
		rec.Recycle()
	}
	return out, nil
}
