package cllm

import (
	"fmt"
	"strconv"
	"strings"

	"cllm/internal/serve"
)

// TopologyGroup is one role group of a serving fleet topology: Replicas
// instances of Platform serving Role. Platform names are the ones Open
// accepts (tdx, sgx, cgpu, ...); Role is "prefill", "decode" or "unified".
type TopologyGroup struct {
	Platform string
	Replicas int
	Role     string
}

// ParseTopology parses the CLI fleet-topology syntax: comma-separated
// "platform:replicas=role" groups, e.g. "cgpu:2=prefill,tdx:4=decode".
// The replica count defaults to 1 ("tdx=decode") and the role to unified
// ("tdx:4"), so a plain "tdx:4" is the classic homogeneous fleet.
func ParseTopology(s string) ([]TopologyGroup, error) {
	var out []TopologyGroup
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		g := TopologyGroup{Replicas: 1}
		spec := item
		if eq := strings.IndexByte(spec, '='); eq >= 0 {
			g.Role = strings.TrimSpace(spec[eq+1:])
			spec = spec[:eq]
			if g.Role == "" {
				return nil, fmt.Errorf("cllm: topology group %q has an empty role", item)
			}
		}
		if colon := strings.IndexByte(spec, ':'); colon >= 0 {
			n, err := strconv.Atoi(strings.TrimSpace(spec[colon+1:]))
			if err != nil {
				return nil, fmt.Errorf("cllm: topology group %q: %w", item, err)
			}
			if n < 1 {
				return nil, fmt.Errorf("cllm: topology group %q needs at least one replica", item)
			}
			g.Replicas = n
			spec = spec[:colon]
		}
		g.Platform = strings.TrimSpace(spec)
		if g.Platform == "" {
			return nil, fmt.Errorf("cllm: topology group %q has an empty platform", item)
		}
		if _, err := serve.ParseRole(g.Role); err != nil {
			return nil, fmt.Errorf("cllm: topology group %q: %w", item, err)
		}
		out = append(out, g)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cllm: empty topology %q", s)
	}
	return out, nil
}
