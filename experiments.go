package cllm

import (
	"runtime"

	"cllm/internal/harness"
)

// ExperimentInfo describes one reproducible paper artifact.
type ExperimentInfo struct {
	// ID is the handle passed to RunExperiment (e.g. "fig4", "table1").
	ID string
	// Title describes the experiment configuration.
	Title string
	// Paper summarizes what the paper reports for this artifact.
	Paper string
}

// Experiments lists every registered paper table/figure reproduction.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range harness.All() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title, Paper: e.Paper})
	}
	return out
}

// ExperimentReport is a rendered experiment result.
type ExperimentReport struct {
	ID string
	// Table is the rendered text table with measured and paper values.
	Table string
	// Passed reports whether all shape checks against the paper held.
	Passed bool
	// FailedChecks lists the names of failed shape checks, if any.
	FailedChecks []string
}

// RunExperiment executes one paper artifact reproduction. Quick mode
// shortens generations for fast runs; seeds are fixed for reproducibility.
// Experiments whose sweeps contain independent simulation runs spread them
// over the CPUs; results are merged deterministically, so the report is
// identical to a serial run (the harness tests assert it).
func RunExperiment(id string, quick bool, seed int64) (*ExperimentReport, error) {
	e, err := harness.Lookup(id)
	if err != nil {
		return nil, err
	}
	res, err := e.Run(harness.Options{Seed: seed, Quick: quick, Workers: runtime.NumCPU()})
	if err != nil {
		return nil, err
	}
	rep := &ExperimentReport{ID: id, Table: res.Render(), Passed: res.Passed()}
	for _, c := range res.Checks {
		if !c.Pass {
			rep.FailedChecks = append(rep.FailedChecks, c.Name)
		}
	}
	return rep, nil
}
