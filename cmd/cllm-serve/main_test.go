package main

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"testing"
)

// parseAndCheck binds a fresh flag table, parses args, and runs the
// validators — the exact path main takes before any simulation runs.
func parseAndCheck(args []string) error {
	var o options
	table := flagTable(&o)
	fs := flag.NewFlagSet("cllm-serve", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	registerFlags(fs, table)
	if err := fs.Parse(args); err != nil {
		return err
	}
	return checkFlags(table)
}

func TestFlagTableNamesUnique(t *testing.T) {
	var o options
	seen := map[string]bool{}
	for _, s := range flagTable(&o) {
		if s.name == "" || s.add == nil {
			t.Fatalf("flag spec %+v missing name or registration", s.name)
		}
		if seen[s.name] {
			t.Fatalf("flag -%s declared twice in the table", s.name)
		}
		seen[s.name] = true
	}
}

func TestFlagDefaultsAccepted(t *testing.T) {
	if err := parseAndCheck(nil); err != nil {
		t.Fatalf("default flag values rejected: %v", err)
	}
}

func TestFlagAccepts(t *testing.T) {
	cases := [][]string{
		{"-format", "csv", "-obs-window", "0.5", "-sketch-alpha", "0.05"},
		{"-format", "json", "-attrib", "-attrib-out", "a.json", "-attrib-csv", "a.csv", "-compare", "base.json"},
		{"-attrib"},
		{"-autoscale"},
		{"-fail-mtbf", "120", "-fail-policy", "requeue", "-admission", "shed", "-retry-max", "3", "-retry-backoff", "0.5"},
		{"-fail-plan", "0@30,1@45.5", "-fail-policy", "lost"},
		{"-fail-plan", "30"},
		{"-admission", "deadline"},
		{"-retry-max", "2"},
		{"-autoscale", "-admission", "fifo"},
		{"-topology", "cgpu:2=prefill,tdx:4=decode"},
		{"-topology", "tdx:4"},
		{"-topology", "tdx=decode,cgpu=prefill", "-lb-policy", "least-loaded"},
		{"-preempt", "auto", "-quantile-mode", "sketch", "-rate-mults", "1,2"},
	}
	for _, args := range cases {
		if err := parseAndCheck(args); err != nil {
			t.Errorf("flags %v rejected: %v", args, err)
		}
	}
}

// TestFlagRejections regenerates its cases from the flag table: every
// spec's rejection examples must fail parse-or-check with an error that
// names the offending flag.
func TestFlagRejections(t *testing.T) {
	var o options
	for _, spec := range flagTable(&o) {
		for i, rej := range spec.rejects {
			t.Run(fmt.Sprintf("%s/%d", spec.name, i), func(t *testing.T) {
				err := parseAndCheck(rej.args)
				if err == nil {
					t.Fatalf("args %v accepted; want rejection mentioning %q", rej.args, rej.want)
				}
				if rej.want != "" && !strings.Contains(err.Error(), rej.want) {
					t.Fatalf("args %v rejected with %q; want it to mention %q", rej.args, err, rej.want)
				}
			})
		}
	}
}

// TestFlagValidatorsHaveRejections keeps the table honest: a spec that
// installs a validator must ship at least one rejection example, so the
// rejection test exercises every validated flag.
func TestFlagValidatorsHaveRejections(t *testing.T) {
	var o options
	for _, spec := range flagTable(&o) {
		if spec.check != nil && len(spec.rejects) == 0 {
			t.Errorf("flag -%s has a validator but no rejection examples", spec.name)
		}
	}
}
