package main

import (
	"strings"
	"testing"
)

func okOpts() flagOpts {
	return flagOpts{format: "table"}
}

func TestValidateFlagsAccepts(t *testing.T) {
	cases := []flagOpts{
		okOpts(),
		{format: "csv", obsWindow: 0.5, sketchAlpha: 0.05},
		{format: "json", attrib: true, attribOut: "a.json", attribCSV: "a.csv", compare: "base.json"},
		{format: "table", attrib: true},
		{format: "table", autoscale: true},
	}
	for _, o := range cases {
		if err := validateFlags(o); err != nil {
			t.Errorf("validateFlags(%+v) rejected valid flags: %v", o, err)
		}
	}
}

func TestValidateFlagsRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*flagOpts)
		want string
	}{
		{"bad format", func(o *flagOpts) { o.format = "xml" }, "-format"},
		{"negative obs window", func(o *flagOpts) { o.obsWindow = -1 }, "-obs-window"},
		{"negative sketch alpha", func(o *flagOpts) { o.sketchAlpha = -0.1 }, "-sketch-alpha"},
		{"sketch alpha one", func(o *flagOpts) { o.sketchAlpha = 1 }, "-sketch-alpha"},
		{"sketch alpha above one", func(o *flagOpts) { o.sketchAlpha = 1.5 }, "-sketch-alpha"},
		{"attrib-out without attrib", func(o *flagOpts) { o.attribOut = "a.json" }, "-attrib-out"},
		{"attrib-csv without attrib", func(o *flagOpts) { o.attribCSV = "a.csv" }, "-attrib-csv"},
		{"compare without attrib", func(o *flagOpts) { o.compare = "base.json" }, "-compare"},
		{"attrib with autoscale", func(o *flagOpts) { o.attrib = true; o.autoscale = true }, "-autoscale"},
	}
	for _, tc := range cases {
		o := okOpts()
		tc.mut(&o)
		err := validateFlags(o)
		if err == nil {
			t.Errorf("%s: validateFlags(%+v) accepted invalid flags", tc.name, o)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the offending flag %q", tc.name, err, tc.want)
		}
	}
}
