package main

import (
	"strings"
	"testing"
)

func okOpts() flagOpts {
	return flagOpts{format: "table"}
}

func TestValidateFlagsAccepts(t *testing.T) {
	cases := []flagOpts{
		okOpts(),
		{format: "csv", obsWindow: 0.5, sketchAlpha: 0.05},
		{format: "json", attrib: true, attribOut: "a.json", attribCSV: "a.csv", compare: "base.json"},
		{format: "table", attrib: true},
		{format: "table", autoscale: true},
		{format: "table", failMTBF: 120, failPolicy: "requeue", admission: "shed", retryMax: 3, retryBackoff: 0.5},
		{format: "table", failPlan: "0@30,1@45.5", failPolicy: "lost"},
		{format: "table", failPlan: "30"},
		{format: "table", admission: "deadline"},
		{format: "table", retryMax: 2},
		{format: "table", autoscale: true, admission: "fifo"},
	}
	for _, o := range cases {
		if err := validateFlags(o); err != nil {
			t.Errorf("validateFlags(%+v) rejected valid flags: %v", o, err)
		}
	}
}

func TestValidateFlagsRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*flagOpts)
		want string
	}{
		{"bad format", func(o *flagOpts) { o.format = "xml" }, "-format"},
		{"negative obs window", func(o *flagOpts) { o.obsWindow = -1 }, "-obs-window"},
		{"negative sketch alpha", func(o *flagOpts) { o.sketchAlpha = -0.1 }, "-sketch-alpha"},
		{"sketch alpha one", func(o *flagOpts) { o.sketchAlpha = 1 }, "-sketch-alpha"},
		{"sketch alpha above one", func(o *flagOpts) { o.sketchAlpha = 1.5 }, "-sketch-alpha"},
		{"attrib-out without attrib", func(o *flagOpts) { o.attribOut = "a.json" }, "-attrib-out"},
		{"attrib-csv without attrib", func(o *flagOpts) { o.attribCSV = "a.csv" }, "-attrib-csv"},
		{"compare without attrib", func(o *flagOpts) { o.compare = "base.json" }, "-compare"},
		{"attrib with autoscale", func(o *flagOpts) { o.attrib = true; o.autoscale = true }, "-autoscale"},
		{"negative fail mtbf", func(o *flagOpts) { o.failMTBF = -1 }, "-fail-mtbf"},
		{"malformed fail plan", func(o *flagOpts) { o.failPlan = "a@30" }, "-fail-plan"},
		{"fail plan negative time", func(o *flagOpts) { o.failPlan = "0@-5" }, "-fail-plan"},
		{"mtbf and plan together", func(o *flagOpts) { o.failMTBF = 60; o.failPlan = "30" }, "-fail-mtbf"},
		{"unknown fail policy", func(o *flagOpts) { o.failPolicy = "explode" }, "-fail-policy"},
		{"unknown admission", func(o *flagOpts) { o.admission = "lottery" }, "-admission"},
		{"negative retry max", func(o *flagOpts) { o.retryMax = -1 }, "-retry-max"},
		{"negative retry backoff", func(o *flagOpts) { o.retryMax = 1; o.retryBackoff = -0.5 }, "-retry-backoff"},
		{"backoff without budget", func(o *flagOpts) { o.retryBackoff = 2 }, "-retry-backoff"},
		{"fail mtbf with autoscale", func(o *flagOpts) { o.autoscale = true; o.failMTBF = 60 }, "-autoscale"},
		{"admission with autoscale", func(o *flagOpts) { o.autoscale = true; o.admission = "shed" }, "-autoscale"},
	}
	for _, tc := range cases {
		o := okOpts()
		tc.mut(&o)
		err := validateFlags(o)
		if err == nil {
			t.Errorf("%s: validateFlags(%+v) accepted invalid flags", tc.name, o)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name the offending flag %q", tc.name, err, tc.want)
		}
	}
}
