// cllm-serve simulates production serving on a confidential platform:
// Poisson arrivals into a continuous-batching scheduler with a paged
// KV-cache — optionally with chunked prefill, prefix-cache sharing and a
// load-balanced multi-replica fleet — reported as throughput–latency
// curves with SLO-aware cost.
//
// Usage:
//
//	cllm-serve -platform tdx -rate 8
//	cllm-serve -platform baremetal,tdx,sgx -rate 8 -model llama2-7b
//	cllm-serve -platform cgpu -rate 24 -slo-ttft 2 -slo-tpot 0.2
//	cllm-serve -platform sgx -rate 2 -prefix-share -prefix-groups 4 -chunk-size 512
//	cllm-serve -replicas 4 -lb-policy prefix-affinity -prefix-share -chunk-size 512 -format json
//
// For each platform the offered rate is swept around -rate, tracing how
// tail latency and cost-per-million-tokens move as load approaches and
// passes saturation. -format csv|json emits the same rows machine-readably
// for plotting (schema in docs/serving-model.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cllm"
	"cllm/internal/harness"
)

func main() {
	platforms := flag.String("platform", "baremetal,tdx,sgx", "comma-separated platform list (baremetal|vm|tdx|sgx|gpu|cgpu|...)")
	system := flag.String("system", "EMR1", "CPU testbed: EMR1 or EMR2")
	modelName := flag.String("model", "llama2-7b", "model name (see cllm-infer -models)")
	dt := flag.String("dtype", "bf16", "datatype: bf16|int8|f32")
	rate := flag.Float64("rate", 8, "base Poisson arrival rate (requests/s)")
	requests := flag.Int("requests", 48, "arrivals per run")
	inLen := flag.Int("in", 128, "mean prompt tokens")
	outLen := flag.Int("out", 32, "mean generated tokens")
	batch := flag.Int("batch", 32, "max concurrent sequences")
	chunkSize := flag.Int("chunk-size", 0, "chunked-prefill budget in prompt tokens per iteration (0 = monolithic prefill)")
	prefixShare := flag.Bool("prefix-share", false, "enable prefix-cache sharing of common prompt prefixes")
	prefixGroups := flag.Int("prefix-groups", 0, "synthetic shared-prefix groups (0 = independent prompts; defaults to 4 with -prefix-share)")
	prefixFrac := flag.Float64("prefix-frac", 0.5, "shared fraction of the mean prompt per prefix group")
	replicas := flag.Int("replicas", 1, "simulated fleet size behind the load balancer")
	lbPolicy := flag.String("lb-policy", "round-robin", "fleet dispatch policy: round-robin|least-loaded|prefix-affinity")
	format := flag.String("format", "table", "output format: table|csv|json")
	sloTTFT := flag.Float64("slo-ttft", 5, "TTFT SLO (seconds)")
	sloTPOT := flag.Float64("slo-tpot", 0.5, "TPOT SLO (seconds/token)")
	sockets := flag.Int("sockets", 1, "CPU sockets")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()

	if *format != "table" && *format != "csv" && *format != "json" {
		fmt.Fprintf(os.Stderr, "cllm-serve: unknown -format %q (table|csv|json)\n", *format)
		os.Exit(1)
	}
	if *prefixShare && *prefixGroups <= 0 {
		*prefixGroups = 4 // sharing without declared groups would never hit
	}

	mults := []float64{0.25, 0.5, 1, 1.5, 2}
	table := &harness.Result{
		ID: "serve",
		Title: fmt.Sprintf("%s (%s), %d requests per point, in/out %d/%d tokens, chunk %d, share %v, %d replica(s) %s, SLO TTFT %.2gs TPOT %.2gs",
			*modelName, *dt, *requests, *inLen, *outLen, *chunkSize, *prefixShare, *replicas, *lbPolicy, *sloTTFT, *sloTPOT),
		Header: []string{"platform", "rate(req/s)", "tput(tok/s)", "goodput", "SLO%", "TTFT p50(s)", "TTFT p99(s)", "TPOT(s)", "TPOT p99(s)", "p99 lat(s)", "prefix-hit(tok)", "preempt", "replicas", "$/Mtok@SLO"},
	}
	for _, plat := range strings.Split(*platforms, ",") {
		plat = strings.TrimSpace(plat)
		if plat == "" {
			continue
		}
		sess, err := cllm.Open(cllm.Config{Platform: plat, System: *system, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
			os.Exit(1)
		}
		for _, m := range mults {
			rep, err := sess.Serve(cllm.ServeConfig{
				Model: *modelName, DType: *dt,
				InputLen: *inLen, OutputLen: *outLen,
				RatePerSec: *rate * m, Requests: *requests,
				MaxBatch: *batch, Sockets: *sockets,
				ChunkTokens:   *chunkSize,
				PrefixSharing: *prefixShare,
				PrefixGroups:  *prefixGroups,
				PrefixFrac:    *prefixFrac,
				Replicas:      *replicas,
				LBPolicy:      *lbPolicy,
				TTFTSLOSec:    *sloTTFT, TPOTSLOSec: *sloTPOT,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "cllm-serve: %s at rate %.2f: %v\n", plat, *rate*m, err)
				os.Exit(1)
			}
			nRepl, cost := "-", "-"
			if rep.SLOFeasible {
				nRepl = fmt.Sprintf("%d", rep.ReplicasAtSLO)
				cost = fmt.Sprintf("%.2f", rep.USDPerMTokAtSLO)
			}
			table.Rows = append(table.Rows, []string{
				rep.Platform,
				fmt.Sprintf("%.2f", rep.OfferedRate),
				fmt.Sprintf("%.1f", rep.TokensPerSec),
				fmt.Sprintf("%.1f", rep.GoodputTokensPerSec),
				fmt.Sprintf("%.0f%%", rep.SLOAttainment*100),
				fmt.Sprintf("%.3f", rep.TTFTp50),
				fmt.Sprintf("%.3f", rep.TTFTp99),
				fmt.Sprintf("%.3f", rep.TPOTMean),
				fmt.Sprintf("%.3f", rep.TPOTp99),
				fmt.Sprintf("%.2f", rep.LatencyP99),
				fmt.Sprintf("%d", rep.PrefixCacheHitTokens),
				fmt.Sprintf("%d", rep.Preemptions),
				nRepl,
				cost,
			})
		}
	}

	switch *format {
	case "csv":
		fmt.Print(table.CSV())
	case "json":
		out, err := table.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(out)
	default:
		fmt.Print(table.Render())
	}
}
