// cllm-serve simulates production serving on a confidential platform:
// Poisson arrivals — or a workload scenario (bursty MMPP, diurnal, ramp ×
// chat/RAG/agentic mixes) — into a continuous-batching scheduler with a
// paged KV-cache, optionally with chunked prefill, prefix-cache sharing, a
// load-balanced multi-replica fleet, or an elastic autoscaled
// heterogeneous fleet — reported as throughput–latency curves with
// SLO-aware cost.
//
// Usage:
//
//	cllm-serve -platform tdx -rate 8
//	cllm-serve -platform baremetal,tdx,sgx -rate 8 -model llama2-7b
//	cllm-serve -platform cgpu -rate 24 -slo-ttft 2 -slo-tpot 0.2
//	cllm-serve -platform sgx -rate 2 -prefix-share -prefix-groups 4 -chunk-size 512
//	cllm-serve -replicas 4 -lb-policy prefix-affinity -prefix-share -chunk-size 512 -format json
//	cllm-serve -platform tdx -scenario diurnal+rag -rate 6
//	cllm-serve -topology cgpu:1=prefill,tdx:3=decode -rate 12 -in 2048 -out 128
//	cllm-serve -scenario diurnal -autoscale -classes tdx:2,cgpu:2
//	cllm-serve -scenario bursty -autoscale -classes tdx:4 -no-cold-start
//
// For each platform the offered rate is swept around -rate, tracing how
// tail latency and cost-per-million-tokens move as load approaches and
// passes saturation. With -autoscale, one elastic run is simulated
// instead: replica classes from -classes scale reactively with the
// scenario, paying per-TEE cold starts (enclave/TD build + attestation).
// -format csv|json emits the same rows machine-readably for plotting
// (schema in docs/serving-model.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cllm"
	"cllm/internal/harness"
	"cllm/internal/obs"
	"cllm/internal/serve"
)

func main() {
	var o options
	specs := flagTable(&o)
	registerFlags(flag.CommandLine, specs)
	flag.Parse()

	if err := checkFlags(specs); err != nil {
		fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
		os.Exit(1)
	}
	if o.prefixShare && o.prefixGroups <= 0 {
		o.prefixGroups = 4 // sharing without declared groups would never hit
	}

	if o.autoscale {
		// The sweep default of 48 arrivals spans seconds; an elastic run
		// needs enough stream for the control loop to act. Unless the user
		// set -requests, defer to the API default.
		nReq := 0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "requests" {
				nReq = o.requests
			}
		})
		runAutoscale(autoscaleArgs{
			modelName: o.modelName, dt: o.dt, system: o.system,
			scenario: o.scenario, rate: o.rate, requests: nReq,
			classes: o.classes, dispatch: o.dispatch, noColdStart: o.noColdStart,
			targetUtil: o.targetUtil, interval: o.interval, batch: o.batch,
			chunkSize: o.chunkSize, prefixShare: o.prefixShare,
			costBucket: o.costBucket, preempt: o.preempt,
			sloTTFT: o.sloTTFT, sloTPOT: o.sloTPOT, sockets: o.sockets,
			seed: o.seed, format: o.format,
			demandAlpha: o.demandAlpha, obsWindow: o.obsWindow,
			traceOut: o.traceOut, metricsOut: o.metricsOut, timeseriesOut: o.timesOut,
		})
		return
	}

	load := fmt.Sprintf("in/out %d/%d tokens", o.inLen, o.outLen)
	if o.scenario != "" {
		load = "scenario " + o.scenario
	}
	// The default recompute policy keeps the historical table schema (and
	// byte-identical output); swap/auto runs add the policy to the title and
	// a swaps column (out/in transfer counts). Decide off the parsed policy
	// so spelling variants of recompute keep the historical schema too.
	swapMode := o.preemptPol != serve.PreemptRecompute
	// A role-aware topology replaces the replicas+policy fleet description
	// (and the -platform list: the groups name their own platforms).
	fleetDesc := fmt.Sprintf("%d replica(s) %s", o.replicas, o.lbPolicy)
	platList := strings.Split(o.platforms, ",")
	if o.topology != "" {
		fleetDesc = "topology " + o.topology
		groups, err := cllm.ParseTopology(o.topology)
		if err != nil { // unreachable: checkFlags parsed it already
			fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
			os.Exit(1)
		}
		platList = []string{groups[0].Platform}
	}
	title := fmt.Sprintf("%s (%s), %d requests per point, %s, chunk %d, share %v, %s, SLO TTFT %.2gs TPOT %.2gs",
		o.modelName, o.dt, o.requests, load, o.chunkSize, o.prefixShare, fleetDesc, o.sloTTFT, o.sloTPOT)
	header := []string{"platform", "rate(req/s)", "tput(tok/s)", "goodput", "SLO%", "TTFT p50(s)", "TTFT p99(s)", "TPOT(s)", "TPOT p99(s)", "p99 lat(s)", "prefix-hit(tok)", "preempt", "replicas", "$/Mtok@SLO"}
	if swapMode {
		title += ", preempt " + o.preemptPol.String()
		header = append(header, "swaps(out/in)")
	}
	// The machine formats carry the full report: the text table keeps its
	// historical (byte-identical) schema, csv|json append every remaining
	// counter so plots never need a second run.
	machine := o.format != "table"
	if machine {
		header = append(header, "completed", "dropped", "unfinished",
			"kv-blocks", "kv-peak", "prefix-miss(tok)", "evicted-blocks", "swap-out", "swap-in",
			"shed", "dropped-kv", "dropped-shed", "dropped-deadline", "dropped-lost",
			"retries", "crashes", "downtime(s)",
			"handoffs", "handoffs-in", "handoff-fallbacks", "handoff-bytes")
	}
	// The export artifacts come from one observed run: the first platform's
	// base-rate (×1) sweep point. Attribution follows the same rule.
	wantObserve := o.traceOut != "" || o.metricsOut != "" || o.timesOut != ""
	wantAttrib := o.attrib
	var attribRep *obs.AttribReport
	table := &harness.Result{
		ID:     "serve",
		Title:  title,
		Header: header,
	}
	for _, plat := range platList {
		plat = strings.TrimSpace(plat)
		if plat == "" {
			continue
		}
		sess, err := cllm.Open(cllm.Config{Platform: plat, System: o.system, Seed: o.seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
			os.Exit(1)
		}
		for _, m := range o.mults {
			observe := wantObserve && m == 1
			attribute := wantAttrib && m == 1
			rep, err := sess.Serve(cllm.ServeConfig{
				Observe: observe, ObserveWindowSec: o.obsWindow,
				Attribution: attribute,
				Model:       o.modelName, DType: o.dt,
				InputLen: o.inLen, OutputLen: o.outLen,
				Scenario:   o.scenario,
				RatePerSec: o.rate * m, Requests: o.requests,
				MaxBatch: o.batch, Sockets: o.sockets,
				ChunkTokens:   o.chunkSize,
				PrefixSharing: o.prefixShare,
				PrefixGroups:  o.prefixGroups,
				PrefixFrac:    o.prefixFrac,
				Replicas:      o.replicas,
				LBPolicy:      o.lbPolicy,
				Topology:      o.topology,
				CostBucket:    o.costBucket,
				PreemptPolicy: o.preemptPol.String(),
				QuantileMode:  o.quantileMode,
				SketchAlpha:   o.sketchAlpha,
				EpochRequests: o.epochReqs,
				Faults: cllm.FaultConfig{
					MTBFSec:         o.failMTBF,
					Plan:            o.failPlan,
					Policy:          o.failPolicy,
					Admission:       o.admission,
					RetryMax:        o.retryMax,
					RetryBackoffSec: o.retryBackoff,
				},
				TTFTSLOSec: o.sloTTFT, TPOTSLOSec: o.sloTPOT,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "cllm-serve: %s at rate %.2f: %v\n", plat, o.rate*m, err)
				os.Exit(1)
			}
			nRepl, cost := "-", "-"
			if rep.SLOFeasible {
				nRepl = fmt.Sprintf("%d", rep.ReplicasAtSLO)
				cost = fmt.Sprintf("%.2f", rep.USDPerMTokAtSLO)
			}
			row := []string{
				rep.Platform,
				fmt.Sprintf("%.2f", rep.OfferedRate),
				fmt.Sprintf("%.1f", rep.TokensPerSec),
				fmt.Sprintf("%.1f", rep.GoodputTokensPerSec),
				fmt.Sprintf("%.0f%%", rep.SLOAttainment*100),
				fmt.Sprintf("%.3f", rep.TTFTp50),
				fmt.Sprintf("%.3f", rep.TTFTp99),
				fmt.Sprintf("%.3f", rep.TPOTMean),
				fmt.Sprintf("%.3f", rep.TPOTp99),
				fmt.Sprintf("%.2f", rep.LatencyP99),
				fmt.Sprintf("%d", rep.PrefixCacheHitTokens),
				fmt.Sprintf("%d", rep.Preemptions),
				nRepl,
				cost,
			}
			if swapMode {
				row = append(row, fmt.Sprintf("%d/%d", rep.SwapOuts, rep.SwapIns))
			}
			if machine {
				row = append(row,
					fmt.Sprintf("%d", rep.Completed),
					fmt.Sprintf("%d", rep.Dropped),
					fmt.Sprintf("%d", rep.Unfinished),
					fmt.Sprintf("%d", rep.KVBlocksTotal),
					fmt.Sprintf("%d", rep.PeakKVBlocksInUse),
					fmt.Sprintf("%d", rep.PrefixCacheMissTokens),
					fmt.Sprintf("%d", rep.EvictedKVBlocks),
					fmt.Sprintf("%d", rep.SwapOuts),
					fmt.Sprintf("%d", rep.SwapIns),
					fmt.Sprintf("%d", rep.Sheds),
					fmt.Sprintf("%d", rep.DroppedByReason[serve.DropKVExhausted]),
					fmt.Sprintf("%d", rep.DroppedByReason[serve.DropAdmissionShed]),
					fmt.Sprintf("%d", rep.DroppedByReason[serve.DropDeadlineExpired]),
					fmt.Sprintf("%d", rep.DroppedByReason[serve.DropFailureLost]),
					fmt.Sprintf("%d", rep.Retries),
					fmt.Sprintf("%d", rep.Crashes),
					fmt.Sprintf("%.3f", rep.DowntimeSec),
					fmt.Sprintf("%d", rep.Handoffs),
					fmt.Sprintf("%d", rep.HandoffsIngested),
					fmt.Sprintf("%d", rep.HandoffFallbacks),
					fmt.Sprintf("%.4g", rep.HandoffBytes))
			}
			table.Rows = append(table.Rows, row)
			if observe {
				writeArtifacts(rep.Observation, o.traceOut, o.metricsOut, o.timesOut)
				wantObserve = false
			}
			if attribute {
				attribRep = rep.Attrib
				writeAttrib(attribRep, o.attribOut, o.attribCSV)
				wantAttrib = false
			}
		}
	}

	emit(table, o.format)
	if o.compare != "" {
		if !compareBaseline(attribRep, o.compare, o.compareSlack, o.format) {
			os.Exit(1)
		}
	}
}

// writeAttrib writes the attribution report JSON and/or phase CSV.
func writeAttrib(rep *obs.AttribReport, jsonPath, csvPath string) {
	if rep == nil {
		return
	}
	if jsonPath != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonPath, append(raw, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
			os.Exit(1)
		}
	}
	if csvPath != "" {
		if err := os.WriteFile(csvPath, rep.PhaseCSV(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
			os.Exit(1)
		}
	}
}

// compareBaseline diffs the attributed run against a baseline attribution
// JSON and prints the movements that exceed the combined sketch error
// bounds plus slack. Returns false when any movement is a regression.
func compareBaseline(cur *obs.AttribReport, baselinePath string, slack float64, format string) bool {
	if cur == nil {
		fmt.Fprintln(os.Stderr, "cllm-serve: -compare got no attributed run")
		os.Exit(1)
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
		os.Exit(1)
	}
	var base obs.AttribReport
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "cllm-serve: baseline %s: %v\n", baselinePath, err)
		os.Exit(1)
	}
	deltas := obs.Diff(&base, cur, slack)
	table := &harness.Result{
		ID: "attrib-diff",
		Title: fmt.Sprintf("attribution diff vs %s (baseline %s, current %s; noise floor α %g+%g, slack %g)",
			baselinePath, base.Platform, cur.Platform, base.Alpha, cur.Alpha, slack),
		Header: []string{"metric", "phase", "base", "current", "delta", "threshold", "regression"},
	}
	regressed := false
	for _, d := range deltas {
		unit := ""
		if d.Relative {
			unit = "%"
		}
		delta := d.Delta
		if d.Relative {
			delta *= 100
		}
		if d.Regression {
			regressed = true
		}
		table.Rows = append(table.Rows, []string{
			d.Metric, d.Phase,
			fmt.Sprintf("%.6g", d.Base), fmt.Sprintf("%.6g", d.Cur),
			fmt.Sprintf("%+.4g%s", delta, unit), fmt.Sprintf("%.4g", d.Threshold),
			fmt.Sprintf("%v", d.Regression),
		})
	}
	if len(deltas) == 0 {
		table.Notes = append(table.Notes, "no movement beyond the noise floor")
	}
	emit(table, format)
	return !regressed
}

// writeArtifacts writes the observed run's rendered artifacts to the
// requested paths (empty path = artifact not requested).
func writeArtifacts(o *cllm.ServeObservation, traceOut, metricsOut, timeseriesOut string) {
	if o == nil {
		return
	}
	for _, art := range []struct {
		path string
		data []byte
	}{
		{traceOut, o.TraceJSON},
		{metricsOut, o.PrometheusText},
		{timeseriesOut, o.TimeseriesCSV},
	} {
		if art.path == "" {
			continue
		}
		if err := os.WriteFile(art.path, art.data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
			os.Exit(1)
		}
	}
}

// emit prints a result table in the chosen format.
func emit(table *harness.Result, format string) {
	switch format {
	case "csv":
		fmt.Print(table.CSV())
	case "json":
		out, err := table.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(out)
	default:
		fmt.Print(table.Render())
	}
}

type autoscaleArgs struct {
	modelName, dt, system               string
	scenario, classes, dispatch         string
	rate, targetUtil, interval          float64
	sloTTFT, sloTPOT                    float64
	requests, batch, sockets            int
	chunkSize, costBucket               int
	preempt                             string
	prefixShare, noColdStart            bool
	seed                                int64
	format                              string
	demandAlpha, obsWindow              float64
	traceOut, metricsOut, timeseriesOut string
}

// runAutoscale simulates one elastic heterogeneous fleet and prints its
// per-class usage plus the fleet summary row.
func runAutoscale(a autoscaleArgs) {
	classes, err := cllm.ParseClasses(a.classes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
		os.Exit(1)
	}
	scenario := a.scenario
	if scenario == "" {
		scenario = "bursty"
	}
	rep, err := cllm.Autoscale(cllm.AutoscaleConfig{
		Model: a.modelName, DType: a.dt, System: a.system,
		Scenario: scenario, RatePerSec: a.rate, Requests: a.requests,
		Classes: classes, Dispatch: a.dispatch,
		IntervalSec: a.interval, TargetUtil: a.targetUtil,
		DemandAlpha: a.demandAlpha,
		NoColdStart: a.noColdStart, MaxBatch: a.batch,
		ChunkTokens: a.chunkSize, PrefixSharing: a.prefixShare,
		PreemptPolicy: a.preempt,
		Sockets:       a.sockets, CostBucket: a.costBucket,
		TTFTSLOSec: a.sloTTFT, TPOTSLOSec: a.sloTPOT,
		Seed:             a.seed,
		Observe:          a.traceOut != "" || a.metricsOut != "" || a.timeseriesOut != "",
		ObserveWindowSec: a.obsWindow,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
		os.Exit(1)
	}
	writeArtifacts(rep.Observation, a.traceOut, a.metricsOut, a.timeseriesOut)

	offered := rep.Completed + rep.Dropped + rep.Unfinished
	table := &harness.Result{
		ID: "autoscale",
		Title: fmt.Sprintf("%s (%s), scenario %s at %.2g req/s mean, %d requests, %s dispatch, target util %.2g, SLO TTFT %.2gs TPOT %.2gs",
			a.modelName, a.dt, scenario, a.rate, offered, rep.Dispatch, a.targetUtil, a.sloTTFT, a.sloTPOT),
		Header: []string{"class", "$/h", "coldstart(s)", "cap(req/s)", "dispatched", "peak", "coldstarts", "replica-hrs", "cost($)", "SLO%", "goodput", "$/Mtok"},
	}
	// The machine formats carry the fleet-level request partition, latency
	// and preemption/swap counters as columns (the text table keeps them in
	// the note, preserving its historical schema).
	machine := a.format != "table"
	if machine {
		table.Header = append(table.Header, "completed", "dropped", "unfinished",
			"preempt", "swap-out", "swap-in", "tokens", "TTFT p50(s)", "TTFT p99(s)")
	}
	for _, c := range rep.Classes {
		row := []string{
			c.Name,
			fmt.Sprintf("%.2f", c.HourlyUSD),
			fmt.Sprintf("%.1f", c.ColdStartSec),
			fmt.Sprintf("%.2f", c.CapacityReqPerSec),
			fmt.Sprintf("%d", c.Dispatched),
			fmt.Sprintf("%d", c.PeakActive),
			fmt.Sprintf("%d", c.ColdStarts),
			fmt.Sprintf("%.4f", c.ReplicaHours),
			fmt.Sprintf("%.4f", c.CostUSD),
			"-", "-", "-",
		}
		if machine {
			row = append(row, "-", "-", "-", "-", "-", "-", "-", "-", "-")
		}
		table.Rows = append(table.Rows, row)
	}
	fleetRow := []string{
		"fleet", "-", "-", "-",
		fmt.Sprintf("%d", rep.Completed+rep.Dropped+rep.Unfinished),
		"-",
		fmt.Sprintf("%d", rep.ColdStarts),
		fmt.Sprintf("%.4f", rep.ReplicaHours),
		fmt.Sprintf("%.4f", rep.CostUSD),
		fmt.Sprintf("%.0f%%", rep.SLOAttainment*100),
		fmt.Sprintf("%.1f", rep.GoodputTokensPerSec),
		fmt.Sprintf("%.2f", rep.USDPerMTok),
	}
	if machine {
		fleetRow = append(fleetRow,
			fmt.Sprintf("%d", rep.Completed),
			fmt.Sprintf("%d", rep.Dropped),
			fmt.Sprintf("%d", rep.Unfinished),
			fmt.Sprintf("%d", rep.Preemptions),
			fmt.Sprintf("%d", rep.SwapOuts),
			fmt.Sprintf("%d", rep.SwapIns),
			fmt.Sprintf("%d", rep.TotalTokens),
			fmt.Sprintf("%.3f", rep.TTFTp50),
			fmt.Sprintf("%.3f", rep.TTFTp99))
	}
	table.Rows = append(table.Rows, fleetRow)
	table.Notes = append(table.Notes,
		fmt.Sprintf("completed %d, dropped %d, unfinished %d; TTFT p50 %.3fs p99 %.3fs; %d control windows",
			rep.Completed, rep.Dropped, rep.Unfinished, rep.TTFTp50, rep.TTFTp99, len(rep.Windows)))
	emit(table, a.format)
}
