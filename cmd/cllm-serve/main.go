// cllm-serve simulates production serving on a confidential platform:
// Poisson arrivals into a continuous-batching scheduler with a paged
// KV-cache, reported as throughput–latency curves with SLO-aware cost.
//
// Usage:
//
//	cllm-serve -platform tdx -rate 8
//	cllm-serve -platform baremetal,tdx,sgx -rate 8 -model llama2-7b
//	cllm-serve -platform cgpu -rate 24 -slo-ttft 2 -slo-tpot 0.2
//
// For each platform the offered rate is swept around -rate, tracing how
// tail latency and cost-per-million-tokens move as load approaches and
// passes saturation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cllm"
	"cllm/internal/harness"
)

func main() {
	platforms := flag.String("platform", "baremetal,tdx,sgx", "comma-separated platform list (baremetal|vm|tdx|sgx|gpu|cgpu|...)")
	system := flag.String("system", "EMR1", "CPU testbed: EMR1 or EMR2")
	modelName := flag.String("model", "llama2-7b", "model name (see cllm-infer -models)")
	dt := flag.String("dtype", "bf16", "datatype: bf16|int8|f32")
	rate := flag.Float64("rate", 8, "base Poisson arrival rate (requests/s)")
	requests := flag.Int("requests", 48, "arrivals per run")
	inLen := flag.Int("in", 128, "mean prompt tokens")
	outLen := flag.Int("out", 32, "mean generated tokens")
	batch := flag.Int("batch", 32, "max concurrent sequences")
	sloTTFT := flag.Float64("slo-ttft", 5, "TTFT SLO (seconds)")
	sloTPOT := flag.Float64("slo-tpot", 0.5, "TPOT SLO (seconds/token)")
	sockets := flag.Int("sockets", 1, "CPU sockets")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()

	mults := []float64{0.25, 0.5, 1, 1.5, 2}
	table := &harness.Result{
		ID: "serve",
		Title: fmt.Sprintf("%s (%s), %d requests per point, in/out %d/%d tokens, SLO TTFT %.2gs TPOT %.2gs",
			*modelName, *dt, *requests, *inLen, *outLen, *sloTTFT, *sloTPOT),
		Header: []string{"platform", "rate(req/s)", "tput(tok/s)", "goodput", "SLO%", "TTFT p50(s)", "TTFT p99(s)", "TPOT(s)", "p99 lat(s)", "replicas@SLO", "$/Mtok@SLO"},
	}
	for _, plat := range strings.Split(*platforms, ",") {
		plat = strings.TrimSpace(plat)
		if plat == "" {
			continue
		}
		sess, err := cllm.Open(cllm.Config{Platform: plat, System: *system, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
			os.Exit(1)
		}
		for _, m := range mults {
			rep, err := sess.Serve(cllm.ServeConfig{
				Model: *modelName, DType: *dt,
				InputLen: *inLen, OutputLen: *outLen,
				RatePerSec: *rate * m, Requests: *requests,
				MaxBatch: *batch, Sockets: *sockets,
				TTFTSLOSec: *sloTTFT, TPOTSLOSec: *sloTPOT,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "cllm-serve: %s at rate %.2f: %v\n", plat, *rate*m, err)
				os.Exit(1)
			}
			replicas, cost := "-", "-"
			if rep.SLOFeasible {
				replicas = fmt.Sprintf("%d", rep.ReplicasAtSLO)
				cost = fmt.Sprintf("%.2f", rep.USDPerMTokAtSLO)
			}
			table.Rows = append(table.Rows, []string{
				rep.Platform,
				fmt.Sprintf("%.2f", rep.OfferedRate),
				fmt.Sprintf("%.1f", rep.TokensPerSec),
				fmt.Sprintf("%.1f", rep.GoodputTokensPerSec),
				fmt.Sprintf("%.0f%%", rep.SLOAttainment*100),
				fmt.Sprintf("%.3f", rep.TTFTp50),
				fmt.Sprintf("%.3f", rep.TTFTp99),
				fmt.Sprintf("%.3f", rep.TPOTMean),
				fmt.Sprintf("%.2f", rep.LatencyP99),
				replicas,
				cost,
			})
		}
	}

	fmt.Print(table.Render())
}
