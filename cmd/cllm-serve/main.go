// cllm-serve simulates production serving on a confidential platform:
// Poisson arrivals — or a workload scenario (bursty MMPP, diurnal, ramp ×
// chat/RAG/agentic mixes) — into a continuous-batching scheduler with a
// paged KV-cache, optionally with chunked prefill, prefix-cache sharing, a
// load-balanced multi-replica fleet, or an elastic autoscaled
// heterogeneous fleet — reported as throughput–latency curves with
// SLO-aware cost.
//
// Usage:
//
//	cllm-serve -platform tdx -rate 8
//	cllm-serve -platform baremetal,tdx,sgx -rate 8 -model llama2-7b
//	cllm-serve -platform cgpu -rate 24 -slo-ttft 2 -slo-tpot 0.2
//	cllm-serve -platform sgx -rate 2 -prefix-share -prefix-groups 4 -chunk-size 512
//	cllm-serve -replicas 4 -lb-policy prefix-affinity -prefix-share -chunk-size 512 -format json
//	cllm-serve -platform tdx -scenario diurnal+rag -rate 6
//	cllm-serve -scenario diurnal -autoscale -classes tdx:2,cgpu:2
//	cllm-serve -scenario bursty -autoscale -classes tdx:4 -no-cold-start
//
// For each platform the offered rate is swept around -rate, tracing how
// tail latency and cost-per-million-tokens move as load approaches and
// passes saturation. With -autoscale, one elastic run is simulated
// instead: replica classes from -classes scale reactively with the
// scenario, paying per-TEE cold starts (enclave/TD build + attestation).
// -format csv|json emits the same rows machine-readably for plotting
// (schema in docs/serving-model.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cllm"
	"cllm/internal/harness"
	"cllm/internal/obs"
	"cllm/internal/serve"
)

func main() {
	platforms := flag.String("platform", "baremetal,tdx,sgx", "comma-separated platform list (baremetal|vm|tdx|sgx|gpu|cgpu|...)")
	system := flag.String("system", "EMR1", "CPU testbed: EMR1 or EMR2")
	modelName := flag.String("model", "llama2-7b", "model name (see cllm-infer -models)")
	dt := flag.String("dtype", "bf16", "datatype: bf16|int8|f32")
	rate := flag.Float64("rate", 8, "base (mean) arrival rate (requests/s)")
	requests := flag.Int("requests", 48, "arrivals per run")
	scenario := flag.String("scenario", "", "traffic scenario: poisson|bursty|diurnal|ramp, chat|rag|agentic, or arrivals+mix (empty = plain Poisson synthesis)")
	inLen := flag.Int("in", 128, "mean prompt tokens (ignored with -scenario)")
	outLen := flag.Int("out", 32, "mean generated tokens (ignored with -scenario)")
	batch := flag.Int("batch", 32, "max concurrent sequences")
	chunkSize := flag.Int("chunk-size", 0, "chunked-prefill budget in prompt tokens per iteration (0 = monolithic prefill)")
	prefixShare := flag.Bool("prefix-share", false, "enable prefix-cache sharing of common prompt prefixes")
	prefixGroups := flag.Int("prefix-groups", 0, "synthetic shared-prefix groups (0 = independent prompts; defaults to 4 with -prefix-share)")
	prefixFrac := flag.Float64("prefix-frac", 0.5, "shared fraction of the mean prompt per prefix group")
	replicas := flag.Int("replicas", 1, "simulated fleet size behind the load balancer")
	lbPolicy := flag.String("lb-policy", "round-robin", "fleet dispatch policy: round-robin|least-loaded|prefix-affinity")
	autoscaleF := flag.Bool("autoscale", false, "simulate an elastic heterogeneous fleet (uses -classes; ignores -platform, -replicas, -lb-policy, -in, -out, -prefix-groups and -prefix-frac — the scenario's shape mixes own the request shapes)")
	classes := flag.String("classes", "tdx:2", "autoscale replica classes as platform:max[:min], comma-separated (e.g. tdx:4,cgpu:2)")
	dispatch := flag.String("dispatch", "cost-aware", "autoscale dispatch policy: uniform|cost-aware")
	noColdStart := flag.Bool("no-cold-start", false, "zero TEE cold starts (counterfactual elasticity baseline)")
	targetUtil := flag.Float64("target-util", 0.7, "autoscaler target utilization (lower = more headroom)")
	interval := flag.Float64("interval", 15, "autoscaler control period (seconds)")
	costBucket := flag.Int("cost-bucket", 1, "step-costing quantization width in tokens (1 = exact; larger buckets trade bounded modeled-time error for memo hits in big sweeps)")
	quantileMode := flag.String("quantile-mode", "exact", "latency quantile computation: exact (per-request samples, sorted) or sketch (streaming DDSketch + epoch-sharded simulation — flat memory at any request count)")
	sketchAlpha := flag.Float64("sketch-alpha", 0, "sketch relative error bound in (0,1) (0 = 0.01 default; sketch mode only)")
	epochRequests := flag.Int("epoch-requests", 0, "arrivals scheduled per simulation epoch (0 = 65536 in sketch mode, unsharded in exact mode)")
	rateMults := flag.String("rate-mults", "0.25,0.5,1,1.5,2", "comma-separated multipliers of -rate swept per platform")
	preempt := flag.String("preempt", "recompute", "preemption policy: recompute|swap|auto (swap parks KV in a host swap pool at the backend's swap bandwidth; auto picks the cheaper per preemption)")
	format := flag.String("format", "table", "output format: table|csv|json")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON timeline (Perfetto-loadable) of the observed run to this file")
	metricsOut := flag.String("metrics-out", "", "write a Prometheus text-format snapshot of the observed run to this file")
	timeseriesOut := flag.String("timeseries-out", "", "write the windowed CSV time series of the observed run to this file")
	obsWindow := flag.Float64("obs-window", 0, "observation time-series window in simulated seconds (0 = 1s default)")
	attribF := flag.Bool("attrib", false, "attribute the observed run's latency to phases (queue/prefill/decode/stall/swap) and price a clear-hardware counterfactual for the per-phase TEE tax; attributes the first platform's base-rate point")
	attribOut := flag.String("attrib-out", "", "write the attribution report JSON to this file (requires -attrib)")
	attribCSV := flag.String("attrib-csv", "", "write the phase-breakdown CSV to this file (requires -attrib)")
	compare := flag.String("compare", "", "diff the attributed run against a baseline attribution JSON (from -attrib-out); prints movements beyond the sketch error bounds and exits 1 on regression (requires -attrib)")
	compareSlack := flag.Float64("compare-slack", 0.02, "extra tolerance added to the sketch error bounds when diffing with -compare")
	demandAlpha := flag.Float64("demand-alpha", 0, "autoscaler EWMA demand-smoothing factor in (0,1]; 0 or 1 keeps the raw one-window estimator")
	failMTBF := flag.Float64("fail-mtbf", 0, "inject Poisson replica failures with this mean time between failures in seconds (0 = no failures); a crashed replica pays the platform's full TEE cold start before serving again")
	failPlan := flag.String("fail-plan", "", "inject scripted failures instead: comma-separated replica@seconds points (bare seconds = replica 0)")
	failPolicy := flag.String("fail-policy", "requeue", "what a crash does to in-flight requests: requeue (restart on recovery) or lost (consume retry budget or drop)")
	admission := flag.String("admission", "fifo", "queue admission policy: fifo|deadline|shed (deadline = EDF order with expired-request drops; shed also rejects requests that cannot start before their deadline)")
	retryMax := flag.Int("retry-max", 0, "per-request retry budget for shed and failure-lost requests (0 = no retries)")
	retryBackoff := flag.Float64("retry-backoff", 0, "exponential retry backoff base in seconds with deterministic jitter (0 = 1s default; needs -retry-max)")
	sloTTFT := flag.Float64("slo-ttft", 5, "TTFT SLO (seconds)")
	sloTPOT := flag.Float64("slo-tpot", 0.5, "TPOT SLO (seconds/token)")
	sockets := flag.Int("sockets", 1, "CPU sockets")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()

	if err := validateFlags(flagOpts{
		format: *format, obsWindow: *obsWindow, sketchAlpha: *sketchAlpha,
		attrib: *attribF, attribOut: *attribOut, attribCSV: *attribCSV,
		compare: *compare, autoscale: *autoscaleF,
		failMTBF: *failMTBF, failPlan: *failPlan, failPolicy: *failPolicy,
		admission: *admission, retryMax: *retryMax, retryBackoff: *retryBackoff,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
		os.Exit(1)
	}
	if *prefixShare && *prefixGroups <= 0 {
		*prefixGroups = 4 // sharing without declared groups would never hit
	}

	if *autoscaleF {
		// The sweep default of 48 arrivals spans seconds; an elastic run
		// needs enough stream for the control loop to act. Unless the user
		// set -requests, defer to the API default.
		nReq := 0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "requests" {
				nReq = *requests
			}
		})
		runAutoscale(autoscaleArgs{
			modelName: *modelName, dt: *dt, system: *system,
			scenario: *scenario, rate: *rate, requests: nReq,
			classes: *classes, dispatch: *dispatch, noColdStart: *noColdStart,
			targetUtil: *targetUtil, interval: *interval, batch: *batch,
			chunkSize: *chunkSize, prefixShare: *prefixShare,
			costBucket: *costBucket, preempt: *preempt,
			sloTTFT: *sloTTFT, sloTPOT: *sloTPOT, sockets: *sockets,
			seed: *seed, format: *format,
			demandAlpha: *demandAlpha, obsWindow: *obsWindow,
			traceOut: *traceOut, metricsOut: *metricsOut, timeseriesOut: *timeseriesOut,
		})
		return
	}

	load := fmt.Sprintf("in/out %d/%d tokens", *inLen, *outLen)
	if *scenario != "" {
		load = "scenario " + *scenario
	}
	// The default recompute policy keeps the historical table schema (and
	// byte-identical output); swap/auto runs add the policy to the title and
	// a swaps column (out/in transfer counts). Decide off the parsed policy
	// so spelling variants of recompute keep the historical schema too.
	preemptPol, err := serve.ParsePreemptPolicy(*preempt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
		os.Exit(1)
	}
	swapMode := preemptPol != serve.PreemptRecompute
	title := fmt.Sprintf("%s (%s), %d requests per point, %s, chunk %d, share %v, %d replica(s) %s, SLO TTFT %.2gs TPOT %.2gs",
		*modelName, *dt, *requests, load, *chunkSize, *prefixShare, *replicas, *lbPolicy, *sloTTFT, *sloTPOT)
	header := []string{"platform", "rate(req/s)", "tput(tok/s)", "goodput", "SLO%", "TTFT p50(s)", "TTFT p99(s)", "TPOT(s)", "TPOT p99(s)", "p99 lat(s)", "prefix-hit(tok)", "preempt", "replicas", "$/Mtok@SLO"}
	if swapMode {
		title += ", preempt " + preemptPol.String()
		header = append(header, "swaps(out/in)")
	}
	// The machine formats carry the full report: the text table keeps its
	// historical (byte-identical) schema, csv|json append every remaining
	// counter so plots never need a second run.
	machine := *format != "table"
	if machine {
		header = append(header, "completed", "dropped", "unfinished",
			"kv-blocks", "kv-peak", "prefix-miss(tok)", "evicted-blocks", "swap-out", "swap-in",
			"shed", "dropped-kv", "dropped-shed", "dropped-deadline", "dropped-lost",
			"retries", "crashes", "downtime(s)")
	}
	// The export artifacts come from one observed run: the first platform's
	// base-rate (×1) sweep point. Attribution follows the same rule.
	wantObserve := *traceOut != "" || *metricsOut != "" || *timeseriesOut != ""
	wantAttrib := *attribF
	var attribRep *obs.AttribReport
	var mults []float64
	for _, f := range strings.Split(*rateMults, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		m, err := strconv.ParseFloat(f, 64)
		if err != nil || m <= 0 {
			fmt.Fprintf(os.Stderr, "cllm-serve: -rate-mults entry %q is not a positive number\n", f)
			os.Exit(1)
		}
		mults = append(mults, m)
	}
	if len(mults) == 0 {
		fmt.Fprintln(os.Stderr, "cllm-serve: -rate-mults is empty")
		os.Exit(1)
	}
	table := &harness.Result{
		ID:     "serve",
		Title:  title,
		Header: header,
	}
	for _, plat := range strings.Split(*platforms, ",") {
		plat = strings.TrimSpace(plat)
		if plat == "" {
			continue
		}
		sess, err := cllm.Open(cllm.Config{Platform: plat, System: *system, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
			os.Exit(1)
		}
		for _, m := range mults {
			observe := wantObserve && m == 1
			attribute := wantAttrib && m == 1
			rep, err := sess.Serve(cllm.ServeConfig{
				Observe: observe, ObserveWindowSec: *obsWindow,
				Attribution: attribute,
				Model:       *modelName, DType: *dt,
				InputLen: *inLen, OutputLen: *outLen,
				Scenario:   *scenario,
				RatePerSec: *rate * m, Requests: *requests,
				MaxBatch: *batch, Sockets: *sockets,
				ChunkTokens:     *chunkSize,
				PrefixSharing:   *prefixShare,
				PrefixGroups:    *prefixGroups,
				PrefixFrac:      *prefixFrac,
				Replicas:        *replicas,
				LBPolicy:        *lbPolicy,
				CostBucket:      *costBucket,
				PreemptPolicy:   preemptPol.String(),
				QuantileMode:    *quantileMode,
				SketchAlpha:     *sketchAlpha,
				EpochRequests:   *epochRequests,
				FailMTBFSec:     *failMTBF,
				FailPlan:        *failPlan,
				FailPolicy:      *failPolicy,
				Admission:       *admission,
				RetryMax:        *retryMax,
				RetryBackoffSec: *retryBackoff,
				TTFTSLOSec:      *sloTTFT, TPOTSLOSec: *sloTPOT,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "cllm-serve: %s at rate %.2f: %v\n", plat, *rate*m, err)
				os.Exit(1)
			}
			nRepl, cost := "-", "-"
			if rep.SLOFeasible {
				nRepl = fmt.Sprintf("%d", rep.ReplicasAtSLO)
				cost = fmt.Sprintf("%.2f", rep.USDPerMTokAtSLO)
			}
			row := []string{
				rep.Platform,
				fmt.Sprintf("%.2f", rep.OfferedRate),
				fmt.Sprintf("%.1f", rep.TokensPerSec),
				fmt.Sprintf("%.1f", rep.GoodputTokensPerSec),
				fmt.Sprintf("%.0f%%", rep.SLOAttainment*100),
				fmt.Sprintf("%.3f", rep.TTFTp50),
				fmt.Sprintf("%.3f", rep.TTFTp99),
				fmt.Sprintf("%.3f", rep.TPOTMean),
				fmt.Sprintf("%.3f", rep.TPOTp99),
				fmt.Sprintf("%.2f", rep.LatencyP99),
				fmt.Sprintf("%d", rep.PrefixCacheHitTokens),
				fmt.Sprintf("%d", rep.Preemptions),
				nRepl,
				cost,
			}
			if swapMode {
				row = append(row, fmt.Sprintf("%d/%d", rep.SwapOuts, rep.SwapIns))
			}
			if machine {
				row = append(row,
					fmt.Sprintf("%d", rep.Completed),
					fmt.Sprintf("%d", rep.Dropped),
					fmt.Sprintf("%d", rep.Unfinished),
					fmt.Sprintf("%d", rep.KVBlocksTotal),
					fmt.Sprintf("%d", rep.PeakKVBlocksInUse),
					fmt.Sprintf("%d", rep.PrefixCacheMissTokens),
					fmt.Sprintf("%d", rep.EvictedKVBlocks),
					fmt.Sprintf("%d", rep.SwapOuts),
					fmt.Sprintf("%d", rep.SwapIns),
					fmt.Sprintf("%d", rep.Sheds),
					fmt.Sprintf("%d", rep.DroppedByReason[serve.DropKVExhausted]),
					fmt.Sprintf("%d", rep.DroppedByReason[serve.DropAdmissionShed]),
					fmt.Sprintf("%d", rep.DroppedByReason[serve.DropDeadlineExpired]),
					fmt.Sprintf("%d", rep.DroppedByReason[serve.DropFailureLost]),
					fmt.Sprintf("%d", rep.Retries),
					fmt.Sprintf("%d", rep.Crashes),
					fmt.Sprintf("%.3f", rep.DowntimeSec))
			}
			table.Rows = append(table.Rows, row)
			if observe {
				writeArtifacts(rep.Observation, *traceOut, *metricsOut, *timeseriesOut)
				wantObserve = false
			}
			if attribute {
				attribRep = rep.Attrib
				writeAttrib(attribRep, *attribOut, *attribCSV)
				wantAttrib = false
			}
		}
	}

	emit(table, *format)
	if *compare != "" {
		if !compareBaseline(attribRep, *compare, *compareSlack, *format) {
			os.Exit(1)
		}
	}
}

// flagOpts carries the flag values that are cross-validated before any
// simulation runs, so misuse fails fast with a clear message.
type flagOpts struct {
	format       string
	obsWindow    float64
	sketchAlpha  float64
	attrib       bool
	attribOut    string
	attribCSV    string
	compare      string
	autoscale    bool
	failMTBF     float64
	failPlan     string
	failPolicy   string
	admission    string
	retryMax     int
	retryBackoff float64
}

// validateFlags rejects inconsistent flag combinations at parse time.
func validateFlags(o flagOpts) error {
	if o.format != "table" && o.format != "csv" && o.format != "json" {
		return fmt.Errorf("unknown -format %q (table|csv|json)", o.format)
	}
	if o.obsWindow < 0 {
		return fmt.Errorf("-obs-window %g is negative; pass a window in simulated seconds (0 = 1s default)", o.obsWindow)
	}
	if o.sketchAlpha < 0 || o.sketchAlpha >= 1 {
		return fmt.Errorf("-sketch-alpha %g outside [0, 1) (0 = 0.01 default)", o.sketchAlpha)
	}
	if o.failMTBF < 0 {
		return fmt.Errorf("-fail-mtbf %g is negative; pass a mean time between failures in seconds (0 = no failures)", o.failMTBF)
	}
	if _, err := serve.ParseFailPlan(o.failPlan); err != nil {
		return fmt.Errorf("-fail-plan: %w", err)
	}
	if o.failMTBF > 0 && o.failPlan != "" {
		return fmt.Errorf("-fail-mtbf and -fail-plan are mutually exclusive (Poisson vs scripted failures)")
	}
	if _, err := serve.ParseFailurePolicy(o.failPolicy); err != nil {
		return fmt.Errorf("-fail-policy: %w", err)
	}
	if _, err := serve.ParseAdmissionPolicy(o.admission); err != nil {
		return fmt.Errorf("-admission: %w", err)
	}
	if o.retryMax < 0 {
		return fmt.Errorf("-retry-max %d is negative; pass a per-request retry budget (0 = no retries)", o.retryMax)
	}
	if o.retryBackoff < 0 {
		return fmt.Errorf("-retry-backoff %g is negative; pass a backoff base in seconds (0 = 1s default)", o.retryBackoff)
	}
	if o.retryBackoff > 0 && o.retryMax == 0 {
		return fmt.Errorf("-retry-backoff requires -retry-max > 0 (there is nothing to back off without a retry budget)")
	}
	if o.autoscale && (o.failMTBF > 0 || o.failPlan != "" || o.retryMax > 0) {
		return fmt.Errorf("fault injection and retries are not supported with -autoscale yet (run a fixed fleet)")
	}
	if o.autoscale && o.admission != "fifo" && o.admission != "" {
		return fmt.Errorf("-admission is not supported with -autoscale yet (run a fixed fleet)")
	}
	for name, v := range map[string]string{
		"-attrib-out": o.attribOut, "-attrib-csv": o.attribCSV, "-compare": o.compare,
	} {
		if v != "" && !o.attrib {
			return fmt.Errorf("%s requires -attrib (it consumes the attributed run)", name)
		}
	}
	if o.attrib && o.autoscale {
		return fmt.Errorf("-attrib is not supported with -autoscale (attribute a fixed fleet run instead)")
	}
	return nil
}

// writeAttrib writes the attribution report JSON and/or phase CSV.
func writeAttrib(rep *obs.AttribReport, jsonPath, csvPath string) {
	if rep == nil {
		return
	}
	if jsonPath != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonPath, append(raw, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
			os.Exit(1)
		}
	}
	if csvPath != "" {
		if err := os.WriteFile(csvPath, rep.PhaseCSV(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
			os.Exit(1)
		}
	}
}

// compareBaseline diffs the attributed run against a baseline attribution
// JSON and prints the movements that exceed the combined sketch error
// bounds plus slack. Returns false when any movement is a regression.
func compareBaseline(cur *obs.AttribReport, baselinePath string, slack float64, format string) bool {
	if cur == nil {
		fmt.Fprintln(os.Stderr, "cllm-serve: -compare got no attributed run")
		os.Exit(1)
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
		os.Exit(1)
	}
	var base obs.AttribReport
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "cllm-serve: baseline %s: %v\n", baselinePath, err)
		os.Exit(1)
	}
	deltas := obs.Diff(&base, cur, slack)
	table := &harness.Result{
		ID: "attrib-diff",
		Title: fmt.Sprintf("attribution diff vs %s (baseline %s, current %s; noise floor α %g+%g, slack %g)",
			baselinePath, base.Platform, cur.Platform, base.Alpha, cur.Alpha, slack),
		Header: []string{"metric", "phase", "base", "current", "delta", "threshold", "regression"},
	}
	regressed := false
	for _, d := range deltas {
		unit := ""
		if d.Relative {
			unit = "%"
		}
		delta := d.Delta
		if d.Relative {
			delta *= 100
		}
		if d.Regression {
			regressed = true
		}
		table.Rows = append(table.Rows, []string{
			d.Metric, d.Phase,
			fmt.Sprintf("%.6g", d.Base), fmt.Sprintf("%.6g", d.Cur),
			fmt.Sprintf("%+.4g%s", delta, unit), fmt.Sprintf("%.4g", d.Threshold),
			fmt.Sprintf("%v", d.Regression),
		})
	}
	if len(deltas) == 0 {
		table.Notes = append(table.Notes, "no movement beyond the noise floor")
	}
	emit(table, format)
	return !regressed
}

// writeArtifacts writes the observed run's rendered artifacts to the
// requested paths (empty path = artifact not requested).
func writeArtifacts(o *cllm.ServeObservation, traceOut, metricsOut, timeseriesOut string) {
	if o == nil {
		return
	}
	for _, art := range []struct {
		path string
		data []byte
	}{
		{traceOut, o.TraceJSON},
		{metricsOut, o.PrometheusText},
		{timeseriesOut, o.TimeseriesCSV},
	} {
		if art.path == "" {
			continue
		}
		if err := os.WriteFile(art.path, art.data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
			os.Exit(1)
		}
	}
}

// emit prints a result table in the chosen format.
func emit(table *harness.Result, format string) {
	switch format {
	case "csv":
		fmt.Print(table.CSV())
	case "json":
		out, err := table.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(out)
	default:
		fmt.Print(table.Render())
	}
}

type autoscaleArgs struct {
	modelName, dt, system               string
	scenario, classes, dispatch         string
	rate, targetUtil, interval          float64
	sloTTFT, sloTPOT                    float64
	requests, batch, sockets            int
	chunkSize, costBucket               int
	preempt                             string
	prefixShare, noColdStart            bool
	seed                                int64
	format                              string
	demandAlpha, obsWindow              float64
	traceOut, metricsOut, timeseriesOut string
}

// runAutoscale simulates one elastic heterogeneous fleet and prints its
// per-class usage plus the fleet summary row.
func runAutoscale(a autoscaleArgs) {
	classes, err := cllm.ParseClasses(a.classes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
		os.Exit(1)
	}
	scenario := a.scenario
	if scenario == "" {
		scenario = "bursty"
	}
	rep, err := cllm.Autoscale(cllm.AutoscaleConfig{
		Model: a.modelName, DType: a.dt, System: a.system,
		Scenario: scenario, RatePerSec: a.rate, Requests: a.requests,
		Classes: classes, Dispatch: a.dispatch,
		IntervalSec: a.interval, TargetUtil: a.targetUtil,
		DemandAlpha: a.demandAlpha,
		NoColdStart: a.noColdStart, MaxBatch: a.batch,
		ChunkTokens: a.chunkSize, PrefixSharing: a.prefixShare,
		PreemptPolicy: a.preempt,
		Sockets:       a.sockets, CostBucket: a.costBucket,
		TTFTSLOSec: a.sloTTFT, TPOTSLOSec: a.sloTPOT,
		Seed:             a.seed,
		Observe:          a.traceOut != "" || a.metricsOut != "" || a.timeseriesOut != "",
		ObserveWindowSec: a.obsWindow,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cllm-serve: %v\n", err)
		os.Exit(1)
	}
	writeArtifacts(rep.Observation, a.traceOut, a.metricsOut, a.timeseriesOut)

	offered := rep.Completed + rep.Dropped + rep.Unfinished
	table := &harness.Result{
		ID: "autoscale",
		Title: fmt.Sprintf("%s (%s), scenario %s at %.2g req/s mean, %d requests, %s dispatch, target util %.2g, SLO TTFT %.2gs TPOT %.2gs",
			a.modelName, a.dt, scenario, a.rate, offered, rep.Dispatch, a.targetUtil, a.sloTTFT, a.sloTPOT),
		Header: []string{"class", "$/h", "coldstart(s)", "cap(req/s)", "dispatched", "peak", "coldstarts", "replica-hrs", "cost($)", "SLO%", "goodput", "$/Mtok"},
	}
	// The machine formats carry the fleet-level request partition, latency
	// and preemption/swap counters as columns (the text table keeps them in
	// the note, preserving its historical schema).
	machine := a.format != "table"
	if machine {
		table.Header = append(table.Header, "completed", "dropped", "unfinished",
			"preempt", "swap-out", "swap-in", "tokens", "TTFT p50(s)", "TTFT p99(s)")
	}
	for _, c := range rep.Classes {
		row := []string{
			c.Name,
			fmt.Sprintf("%.2f", c.HourlyUSD),
			fmt.Sprintf("%.1f", c.ColdStartSec),
			fmt.Sprintf("%.2f", c.CapacityReqPerSec),
			fmt.Sprintf("%d", c.Dispatched),
			fmt.Sprintf("%d", c.PeakActive),
			fmt.Sprintf("%d", c.ColdStarts),
			fmt.Sprintf("%.4f", c.ReplicaHours),
			fmt.Sprintf("%.4f", c.CostUSD),
			"-", "-", "-",
		}
		if machine {
			row = append(row, "-", "-", "-", "-", "-", "-", "-", "-", "-")
		}
		table.Rows = append(table.Rows, row)
	}
	fleetRow := []string{
		"fleet", "-", "-", "-",
		fmt.Sprintf("%d", rep.Completed+rep.Dropped+rep.Unfinished),
		"-",
		fmt.Sprintf("%d", rep.ColdStarts),
		fmt.Sprintf("%.4f", rep.ReplicaHours),
		fmt.Sprintf("%.4f", rep.CostUSD),
		fmt.Sprintf("%.0f%%", rep.SLOAttainment*100),
		fmt.Sprintf("%.1f", rep.GoodputTokensPerSec),
		fmt.Sprintf("%.2f", rep.USDPerMTok),
	}
	if machine {
		fleetRow = append(fleetRow,
			fmt.Sprintf("%d", rep.Completed),
			fmt.Sprintf("%d", rep.Dropped),
			fmt.Sprintf("%d", rep.Unfinished),
			fmt.Sprintf("%d", rep.Preemptions),
			fmt.Sprintf("%d", rep.SwapOuts),
			fmt.Sprintf("%d", rep.SwapIns),
			fmt.Sprintf("%d", rep.TotalTokens),
			fmt.Sprintf("%.3f", rep.TTFTp50),
			fmt.Sprintf("%.3f", rep.TTFTp99))
	}
	table.Rows = append(table.Rows, fleetRow)
	table.Notes = append(table.Notes,
		fmt.Sprintf("completed %d, dropped %d, unfinished %d; TTFT p50 %.3fs p99 %.3fs; %d control windows",
			rep.Completed, rep.Dropped, rep.Unfinished, rep.TTFTp50, rep.TTFTp99, len(rep.Windows)))
	emit(table, a.format)
}
