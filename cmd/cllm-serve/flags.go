package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"cllm"
	"cllm/internal/serve"
)

// options is the parsed CLI state: every flag binds into exactly one
// field here, and main reads only this struct after flag parsing.
type options struct {
	platforms    string
	system       string
	modelName    string
	dt           string
	rate         float64
	requests     int
	scenario     string
	inLen        int
	outLen       int
	batch        int
	chunkSize    int
	prefixShare  bool
	prefixGroups int
	prefixFrac   float64
	replicas     int
	lbPolicy     string
	topology     string
	autoscale    bool
	classes      string
	dispatch     string
	noColdStart  bool
	targetUtil   float64
	interval     float64
	costBucket   int
	quantileMode string
	sketchAlpha  float64
	epochReqs    int
	rateMults    string
	preempt      string
	format       string
	traceOut     string
	metricsOut   string
	timesOut     string
	obsWindow    float64
	attrib       bool
	attribOut    string
	attribCSV    string
	compare      string
	compareSlack float64
	demandAlpha  float64
	failMTBF     float64
	failPlan     string
	failPolicy   string
	admission    string
	retryMax     int
	retryBackoff float64
	sloTTFT      float64
	sloTPOT      float64
	sockets      int
	seed         int64

	// Derived by the checks (valid after checkFlags returns nil).
	mults      []float64
	preemptPol serve.PreemptPolicy
}

// rejection is one argv the flag binder must refuse, with a substring the
// error message must carry so misuse names the offending flag.
type rejection struct {
	args []string
	want string
}

// flagSpec binds one CLI flag: name and usage are single-sourced here,
// add installs the flag on a FlagSet against its options destination,
// check validates the parsed value (including its interactions with
// other flags), and rejects lists example argument vectors the binding
// must refuse. TestFlagRejections regenerates its cases from rejects, so
// a new validated flag ships its rejection examples in the same entry.
type flagSpec struct {
	name    string
	usage   string
	add     func(fs *flag.FlagSet, name, usage string)
	check   func() error
	rejects []rejection
}

// flagTable is the single source of truth for the CLI surface: every
// flag's name, default, destination and validator in one place.
func flagTable(o *options) []flagSpec {
	return []flagSpec{
		{
			name:  "platform",
			usage: "comma-separated platform list (baremetal|vm|tdx|sgx|gpu|cgpu|...)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.StringVar(&o.platforms, n, "baremetal,tdx,sgx", u) },
		},
		{
			name:  "system",
			usage: "CPU testbed: EMR1 or EMR2",
			add:   func(fs *flag.FlagSet, n, u string) { fs.StringVar(&o.system, n, "EMR1", u) },
		},
		{
			name:  "model",
			usage: "model name (see cllm-infer -models)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.StringVar(&o.modelName, n, "llama2-7b", u) },
		},
		{
			name:  "dtype",
			usage: "datatype: bf16|int8|f32",
			add:   func(fs *flag.FlagSet, n, u string) { fs.StringVar(&o.dt, n, "bf16", u) },
		},
		{
			name:  "rate",
			usage: "base (mean) arrival rate (requests/s)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.Float64Var(&o.rate, n, 8, u) },
			check: func() error {
				if o.rate <= 0 {
					return fmt.Errorf("-rate %g is not positive; pass a mean arrival rate in requests/s", o.rate)
				}
				return nil
			},
			rejects: []rejection{{args: []string{"-rate", "0"}, want: "-rate"}},
		},
		{
			name:  "requests",
			usage: "arrivals per run",
			add:   func(fs *flag.FlagSet, n, u string) { fs.IntVar(&o.requests, n, 48, u) },
		},
		{
			name:  "scenario",
			usage: "traffic scenario: poisson|bursty|diurnal|ramp, chat|rag|agentic, or arrivals+mix (empty = plain Poisson synthesis)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.StringVar(&o.scenario, n, "", u) },
		},
		{
			name:  "in",
			usage: "mean prompt tokens (ignored with -scenario)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.IntVar(&o.inLen, n, 128, u) },
		},
		{
			name:  "out",
			usage: "mean generated tokens (ignored with -scenario)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.IntVar(&o.outLen, n, 32, u) },
		},
		{
			name:  "batch",
			usage: "max concurrent sequences",
			add:   func(fs *flag.FlagSet, n, u string) { fs.IntVar(&o.batch, n, 32, u) },
		},
		{
			name:  "chunk-size",
			usage: "chunked-prefill budget in prompt tokens per iteration (0 = monolithic prefill)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.IntVar(&o.chunkSize, n, 0, u) },
		},
		{
			name:  "prefix-share",
			usage: "enable prefix-cache sharing of common prompt prefixes",
			add:   func(fs *flag.FlagSet, n, u string) { fs.BoolVar(&o.prefixShare, n, false, u) },
		},
		{
			name:  "prefix-groups",
			usage: "synthetic shared-prefix groups (0 = independent prompts; defaults to 4 with -prefix-share)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.IntVar(&o.prefixGroups, n, 0, u) },
		},
		{
			name:  "prefix-frac",
			usage: "shared fraction of the mean prompt per prefix group",
			add:   func(fs *flag.FlagSet, n, u string) { fs.Float64Var(&o.prefixFrac, n, 0.5, u) },
		},
		{
			name:  "replicas",
			usage: "simulated fleet size behind the load balancer",
			add:   func(fs *flag.FlagSet, n, u string) { fs.IntVar(&o.replicas, n, 1, u) },
		},
		{
			name:  "lb-policy",
			usage: "fleet dispatch policy: round-robin|least-loaded|prefix-affinity",
			add:   func(fs *flag.FlagSet, n, u string) { fs.StringVar(&o.lbPolicy, n, "round-robin", u) },
			check: func() error {
				if _, err := serve.ParseLBPolicy(o.lbPolicy); err != nil {
					return fmt.Errorf("-lb-policy: %w", err)
				}
				return nil
			},
			rejects: []rejection{{args: []string{"-lb-policy", "random"}, want: "-lb-policy"}},
		},
		{
			name: "topology",
			usage: "role-aware fleet topology as comma-separated platform:replicas=role groups " +
				"(e.g. cgpu:2=prefill,tdx:4=decode splits prefill and decode across the TEE boundary " +
				"with a priced KV handoff between the stages); replaces -platform and -replicas",
			add: func(fs *flag.FlagSet, n, u string) { fs.StringVar(&o.topology, n, "", u) },
			check: func() error {
				if o.topology == "" {
					return nil
				}
				groups, err := cllm.ParseTopology(o.topology)
				if err != nil {
					return fmt.Errorf("-topology: %w", err)
				}
				// Role structure (all-unified vs prefill+decode) validates
				// backend-free, so a lopsided topology fails here rather
				// than after the first group's session opens.
				var topo serve.Topology
				for _, g := range groups {
					role, err := serve.ParseRole(g.Role)
					if err != nil {
						return fmt.Errorf("-topology: %w", err)
					}
					topo.Groups = append(topo.Groups, serve.RoleGroup{Role: role, Replicas: g.Replicas})
				}
				if _, err := serve.NewFleet(topo); err != nil {
					return fmt.Errorf("-topology: %w", err)
				}
				if o.replicas > 1 {
					return fmt.Errorf("-topology and -replicas are mutually exclusive (the topology fixes the fleet size)")
				}
				if o.autoscale {
					return fmt.Errorf("-topology is not supported with -autoscale yet (run a fixed role-aware fleet)")
				}
				return nil
			},
			rejects: []rejection{
				{args: []string{"-topology", "cgpu:0=prefill"}, want: "-topology"},
				{args: []string{"-topology", "tdx=writer"}, want: "-topology"},
				{args: []string{"-topology", "cgpu:1=prefill"}, want: "-topology"},
				{args: []string{"-topology", "cgpu:1=prefill,tdx:2=decode", "-replicas", "2"}, want: "mutually exclusive"},
				{args: []string{"-topology", "tdx:2", "-autoscale"}, want: "-autoscale"},
			},
		},
		{
			name:  "autoscale",
			usage: "simulate an elastic heterogeneous fleet (uses -classes; ignores -platform, -replicas, -lb-policy, -in, -out, -prefix-groups and -prefix-frac — the scenario's shape mixes own the request shapes)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.BoolVar(&o.autoscale, n, false, u) },
			check: func() error {
				if o.autoscale && (o.failMTBF > 0 || o.failPlan != "" || o.retryMax > 0) {
					return fmt.Errorf("fault injection and retries are not supported with -autoscale yet (run a fixed fleet)")
				}
				return nil
			},
			rejects: []rejection{
				{args: []string{"-autoscale", "-fail-mtbf", "60"}, want: "-autoscale"},
				{args: []string{"-autoscale", "-fail-plan", "30"}, want: "-autoscale"},
				{args: []string{"-autoscale", "-retry-max", "2"}, want: "-autoscale"},
			},
		},
		{
			name:  "classes",
			usage: "autoscale replica classes as platform:max[:min], comma-separated (e.g. tdx:4,cgpu:2)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.StringVar(&o.classes, n, "tdx:2", u) },
		},
		{
			name:  "dispatch",
			usage: "autoscale dispatch policy: uniform|cost-aware",
			add:   func(fs *flag.FlagSet, n, u string) { fs.StringVar(&o.dispatch, n, "cost-aware", u) },
		},
		{
			name:  "no-cold-start",
			usage: "zero TEE cold starts (counterfactual elasticity baseline)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.BoolVar(&o.noColdStart, n, false, u) },
		},
		{
			name:  "target-util",
			usage: "autoscaler target utilization (lower = more headroom)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.Float64Var(&o.targetUtil, n, 0.7, u) },
		},
		{
			name:  "interval",
			usage: "autoscaler control period (seconds)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.Float64Var(&o.interval, n, 15, u) },
		},
		{
			name:  "cost-bucket",
			usage: "step-costing quantization width in tokens (1 = exact; larger buckets trade bounded modeled-time error for memo hits in big sweeps)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.IntVar(&o.costBucket, n, 1, u) },
		},
		{
			name:  "quantile-mode",
			usage: "latency quantile computation: exact (per-request samples, sorted) or sketch (streaming DDSketch + epoch-sharded simulation — flat memory at any request count)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.StringVar(&o.quantileMode, n, "exact", u) },
			check: func() error {
				if _, err := serve.ParseQuantileMode(o.quantileMode); err != nil {
					return fmt.Errorf("-quantile-mode: %w", err)
				}
				return nil
			},
			rejects: []rejection{{args: []string{"-quantile-mode", "approx"}, want: "-quantile-mode"}},
		},
		{
			name:  "sketch-alpha",
			usage: "sketch relative error bound in (0,1) (0 = 0.01 default; sketch mode only)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.Float64Var(&o.sketchAlpha, n, 0, u) },
			check: func() error {
				if o.sketchAlpha < 0 || o.sketchAlpha >= 1 {
					return fmt.Errorf("-sketch-alpha %g outside [0, 1) (0 = 0.01 default)", o.sketchAlpha)
				}
				return nil
			},
			rejects: []rejection{
				{args: []string{"-sketch-alpha", "-0.1"}, want: "-sketch-alpha"},
				{args: []string{"-sketch-alpha", "1"}, want: "-sketch-alpha"},
				{args: []string{"-sketch-alpha", "1.5"}, want: "-sketch-alpha"},
			},
		},
		{
			name:  "epoch-requests",
			usage: "arrivals scheduled per simulation epoch (0 = 65536 in sketch mode, unsharded in exact mode)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.IntVar(&o.epochReqs, n, 0, u) },
		},
		{
			name:  "rate-mults",
			usage: "comma-separated multipliers of -rate swept per platform",
			add:   func(fs *flag.FlagSet, n, u string) { fs.StringVar(&o.rateMults, n, "0.25,0.5,1,1.5,2", u) },
			check: func() error {
				o.mults = o.mults[:0]
				for _, f := range strings.Split(o.rateMults, ",") {
					f = strings.TrimSpace(f)
					if f == "" {
						continue
					}
					m, err := strconv.ParseFloat(f, 64)
					if err != nil || m <= 0 {
						return fmt.Errorf("-rate-mults entry %q is not a positive number", f)
					}
					o.mults = append(o.mults, m)
				}
				if len(o.mults) == 0 {
					return fmt.Errorf("-rate-mults is empty")
				}
				return nil
			},
			rejects: []rejection{
				{args: []string{"-rate-mults", "0.5,-1"}, want: "-rate-mults"},
				{args: []string{"-rate-mults", "0.5,zero"}, want: "-rate-mults"},
				{args: []string{"-rate-mults", ","}, want: "-rate-mults"},
			},
		},
		{
			name:  "preempt",
			usage: "preemption policy: recompute|swap|auto (swap parks KV in a host swap pool at the backend's swap bandwidth; auto picks the cheaper per preemption)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.StringVar(&o.preempt, n, "recompute", u) },
			check: func() error {
				pol, err := serve.ParsePreemptPolicy(o.preempt)
				if err != nil {
					return fmt.Errorf("-preempt: %w", err)
				}
				o.preemptPol = pol
				return nil
			},
			rejects: []rejection{{args: []string{"-preempt", "drop"}, want: "-preempt"}},
		},
		{
			name:  "format",
			usage: "output format: table|csv|json",
			add:   func(fs *flag.FlagSet, n, u string) { fs.StringVar(&o.format, n, "table", u) },
			check: func() error {
				if o.format != "table" && o.format != "csv" && o.format != "json" {
					return fmt.Errorf("unknown -format %q (table|csv|json)", o.format)
				}
				return nil
			},
			rejects: []rejection{{args: []string{"-format", "xml"}, want: "-format"}},
		},
		{
			name:  "trace-out",
			usage: "write a Chrome trace-event JSON timeline (Perfetto-loadable) of the observed run to this file",
			add:   func(fs *flag.FlagSet, n, u string) { fs.StringVar(&o.traceOut, n, "", u) },
		},
		{
			name:  "metrics-out",
			usage: "write a Prometheus text-format snapshot of the observed run to this file",
			add:   func(fs *flag.FlagSet, n, u string) { fs.StringVar(&o.metricsOut, n, "", u) },
		},
		{
			name:  "timeseries-out",
			usage: "write the windowed CSV time series of the observed run to this file",
			add:   func(fs *flag.FlagSet, n, u string) { fs.StringVar(&o.timesOut, n, "", u) },
		},
		{
			name:  "obs-window",
			usage: "observation time-series window in simulated seconds (0 = 1s default)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.Float64Var(&o.obsWindow, n, 0, u) },
			check: func() error {
				if o.obsWindow < 0 {
					return fmt.Errorf("-obs-window %g is negative; pass a window in simulated seconds (0 = 1s default)", o.obsWindow)
				}
				return nil
			},
			rejects: []rejection{{args: []string{"-obs-window", "-1"}, want: "-obs-window"}},
		},
		{
			name:  "attrib",
			usage: "attribute the observed run's latency to phases (queue/prefill/decode/stall/swap/handoff) and price a clear-hardware counterfactual for the per-phase TEE tax; attributes the first platform's base-rate point",
			add:   func(fs *flag.FlagSet, n, u string) { fs.BoolVar(&o.attrib, n, false, u) },
			check: func() error {
				if o.attrib && o.autoscale {
					return fmt.Errorf("-attrib is not supported with -autoscale (attribute a fixed fleet run instead)")
				}
				return nil
			},
			rejects: []rejection{{args: []string{"-attrib", "-autoscale"}, want: "-autoscale"}},
		},
		{
			name:  "attrib-out",
			usage: "write the attribution report JSON to this file (requires -attrib)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.StringVar(&o.attribOut, n, "", u) },
			check: func() error { return requiresAttrib(o, "-attrib-out", o.attribOut) },
			rejects: []rejection{
				{args: []string{"-attrib-out", "a.json"}, want: "-attrib-out"},
			},
		},
		{
			name:  "attrib-csv",
			usage: "write the phase-breakdown CSV to this file (requires -attrib)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.StringVar(&o.attribCSV, n, "", u) },
			check: func() error { return requiresAttrib(o, "-attrib-csv", o.attribCSV) },
			rejects: []rejection{
				{args: []string{"-attrib-csv", "a.csv"}, want: "-attrib-csv"},
			},
		},
		{
			name:  "compare",
			usage: "diff the attributed run against a baseline attribution JSON (from -attrib-out); prints movements beyond the sketch error bounds and exits 1 on regression (requires -attrib)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.StringVar(&o.compare, n, "", u) },
			check: func() error { return requiresAttrib(o, "-compare", o.compare) },
			rejects: []rejection{
				{args: []string{"-compare", "base.json"}, want: "-compare"},
			},
		},
		{
			name:  "compare-slack",
			usage: "extra tolerance added to the sketch error bounds when diffing with -compare",
			add:   func(fs *flag.FlagSet, n, u string) { fs.Float64Var(&o.compareSlack, n, 0.02, u) },
		},
		{
			name:  "demand-alpha",
			usage: "autoscaler EWMA demand-smoothing factor in (0,1]; 0 or 1 keeps the raw one-window estimator",
			add:   func(fs *flag.FlagSet, n, u string) { fs.Float64Var(&o.demandAlpha, n, 0, u) },
		},
		{
			name:  "fail-mtbf",
			usage: "inject Poisson replica failures with this mean time between failures in seconds (0 = no failures); a crashed replica pays the platform's full TEE cold start before serving again",
			add:   func(fs *flag.FlagSet, n, u string) { fs.Float64Var(&o.failMTBF, n, 0, u) },
			check: func() error {
				if o.failMTBF < 0 {
					return fmt.Errorf("-fail-mtbf %g is negative; pass a mean time between failures in seconds (0 = no failures)", o.failMTBF)
				}
				if o.failMTBF > 0 && o.failPlan != "" {
					return fmt.Errorf("-fail-mtbf and -fail-plan are mutually exclusive (Poisson vs scripted failures)")
				}
				return nil
			},
			rejects: []rejection{
				{args: []string{"-fail-mtbf", "-1"}, want: "-fail-mtbf"},
				{args: []string{"-fail-mtbf", "60", "-fail-plan", "30"}, want: "-fail-mtbf"},
			},
		},
		{
			name:  "fail-plan",
			usage: "inject scripted failures instead: comma-separated replica@seconds points (bare seconds = replica 0)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.StringVar(&o.failPlan, n, "", u) },
			check: func() error {
				if _, err := serve.ParseFailPlan(o.failPlan); err != nil {
					return fmt.Errorf("-fail-plan: %w", err)
				}
				return nil
			},
			rejects: []rejection{
				{args: []string{"-fail-plan", "a@30"}, want: "-fail-plan"},
				{args: []string{"-fail-plan", "0@-5"}, want: "-fail-plan"},
			},
		},
		{
			name:  "fail-policy",
			usage: "what a crash does to in-flight requests: requeue (restart on recovery) or lost (consume retry budget or drop)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.StringVar(&o.failPolicy, n, "requeue", u) },
			check: func() error {
				if _, err := serve.ParseFailurePolicy(o.failPolicy); err != nil {
					return fmt.Errorf("-fail-policy: %w", err)
				}
				return nil
			},
			rejects: []rejection{{args: []string{"-fail-policy", "explode"}, want: "-fail-policy"}},
		},
		{
			name:  "admission",
			usage: "queue admission policy: fifo|deadline|shed (deadline = EDF order with expired-request drops; shed also rejects requests that cannot start before their deadline)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.StringVar(&o.admission, n, "fifo", u) },
			check: func() error {
				if _, err := serve.ParseAdmissionPolicy(o.admission); err != nil {
					return fmt.Errorf("-admission: %w", err)
				}
				if o.autoscale && o.admission != "fifo" && o.admission != "" {
					return fmt.Errorf("-admission is not supported with -autoscale yet (run a fixed fleet)")
				}
				return nil
			},
			rejects: []rejection{
				{args: []string{"-admission", "lottery"}, want: "-admission"},
				{args: []string{"-admission", "shed", "-autoscale"}, want: "-autoscale"},
			},
		},
		{
			name:  "retry-max",
			usage: "per-request retry budget for shed and failure-lost requests (0 = no retries)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.IntVar(&o.retryMax, n, 0, u) },
			check: func() error {
				if o.retryMax < 0 {
					return fmt.Errorf("-retry-max %d is negative; pass a per-request retry budget (0 = no retries)", o.retryMax)
				}
				return nil
			},
			rejects: []rejection{{args: []string{"-retry-max", "-1"}, want: "-retry-max"}},
		},
		{
			name:  "retry-backoff",
			usage: "exponential retry backoff base in seconds with deterministic jitter (0 = 1s default; needs -retry-max)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.Float64Var(&o.retryBackoff, n, 0, u) },
			check: func() error {
				if o.retryBackoff < 0 {
					return fmt.Errorf("-retry-backoff %g is negative; pass a backoff base in seconds (0 = 1s default)", o.retryBackoff)
				}
				if o.retryBackoff > 0 && o.retryMax == 0 {
					return fmt.Errorf("-retry-backoff requires -retry-max > 0 (there is nothing to back off without a retry budget)")
				}
				return nil
			},
			rejects: []rejection{
				{args: []string{"-retry-max", "1", "-retry-backoff", "-0.5"}, want: "-retry-backoff"},
				{args: []string{"-retry-backoff", "2"}, want: "-retry-backoff"},
			},
		},
		{
			name:  "slo-ttft",
			usage: "TTFT SLO (seconds)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.Float64Var(&o.sloTTFT, n, 5, u) },
		},
		{
			name:  "slo-tpot",
			usage: "TPOT SLO (seconds/token)",
			add:   func(fs *flag.FlagSet, n, u string) { fs.Float64Var(&o.sloTPOT, n, 0.5, u) },
		},
		{
			name:  "sockets",
			usage: "CPU sockets",
			add:   func(fs *flag.FlagSet, n, u string) { fs.IntVar(&o.sockets, n, 1, u) },
		},
		{
			name:  "seed",
			usage: "deterministic seed",
			add:   func(fs *flag.FlagSet, n, u string) { fs.Int64Var(&o.seed, n, 1, u) },
		},
	}
}

// requiresAttrib rejects an attribution-consuming flag set without -attrib.
func requiresAttrib(o *options, name, value string) error {
	if value != "" && !o.attrib {
		return fmt.Errorf("%s requires -attrib (it consumes the attributed run)", name)
	}
	return nil
}

// registerFlags installs every table entry on the FlagSet.
func registerFlags(fs *flag.FlagSet, table []flagSpec) {
	for _, s := range table {
		s.add(fs, s.name, s.usage)
	}
}

// checkFlags runs every table entry's validator in declaration order and
// returns the first failure, so misuse fails fast with a clear message
// before any simulation runs.
func checkFlags(table []flagSpec) error {
	for _, s := range table {
		if s.check == nil {
			continue
		}
		if err := s.check(); err != nil {
			return err
		}
	}
	return nil
}
