// cllm-trace prints the operator-level workload trace of an inference
// configuration: per-layer FLOPs, weight/activation/KV traffic and
// arithmetic intensity — the quantities the performance model consumes and
// the paper's Fig 7 visualizes.
//
// Usage:
//
//	cllm-trace -model llama2-7b -dtype bf16 -batch 4 -input 128 -phase decode
package main

import (
	"flag"
	"fmt"
	"os"

	"cllm/internal/dtype"
	"cllm/internal/model"
	"cllm/internal/trace"
)

func main() {
	modelName := flag.String("model", "llama2-7b", "model name")
	dtypeName := flag.String("dtype", "bf16", "bf16|int8|f32")
	batch := flag.Int("batch", 1, "batch size")
	beam := flag.Int("beam", 1, "beam width")
	input := flag.Int("input", 1024, "input length (tokens)")
	output := flag.Int("output", 128, "output length (tokens)")
	phase := flag.String("phase", "decode", "decode|prefill")
	flag.Parse()

	cfg, err := model.Lookup(*modelName)
	if err != nil {
		fail(err)
	}
	kind, err := dtype.Parse(*dtypeName)
	if err != nil {
		fail(err)
	}
	wl := trace.Workload{Model: cfg, Kind: kind, Batch: *batch, Beam: *beam, InputLen: *input, OutputLen: *output}

	var st trace.StepTrace
	if *phase == "prefill" {
		st, err = trace.PrefillStep(wl)
	} else {
		st, err = trace.DecodeStep(wl, *input)
	}
	if err != nil {
		fail(err)
	}

	fmt.Printf("%s %s %s: batch=%d beam=%d ctx=%d (%d new tokens)\n",
		cfg.Name, kind, st.Phase, *batch, *beam, *input, st.NewTokens)
	fmt.Printf("weights: %.2f GB resident | KV/token: %.2f MB/seq | params: %.2fB\n\n",
		trace.WeightFootprint(wl)/1e9,
		float64(cfg.KVCacheBytesPerToken(kind.Size()))/1e6,
		float64(cfg.ParamCount())/1e9)

	// Aggregate per operator kind (one decoder block) plus embedding/head.
	type agg struct {
		flops, weights, act, kv float64
		n                       int
	}
	sums := map[trace.OpKind]*agg{}
	order := []trace.OpKind{
		trace.OpEmbedding, trace.OpInputNorm, trace.OpSelfAttn, trace.OpMHALinearAdd,
		trace.OpPostNorm, trace.OpLinearSiluMul, trace.OpMLPLinearAdd, trace.OpFinalNormHead,
	}
	for _, op := range st.Ops {
		a, ok := sums[op.Kind]
		if !ok {
			a = &agg{}
			sums[op.Kind] = a
		}
		a.flops += op.FLOPs
		a.weights += op.WeightBytes
		a.act += op.ActBytes
		a.kv += op.KVBytes
		a.n++
	}
	fmt.Printf("%-26s %6s %12s %12s %12s %12s %8s\n",
		"operator", "count", "GFLOPs", "weights(MB)", "acts(MB)", "KV(MB)", "AI")
	for _, k := range order {
		a, ok := sums[k]
		if !ok {
			continue
		}
		bytes := a.weights + a.act + a.kv
		ai := 0.0
		if bytes > 0 {
			ai = a.flops / bytes
		}
		fmt.Printf("%-26s %6d %12.2f %12.1f %12.1f %12.1f %8.1f\n",
			k, a.n, a.flops/1e9, a.weights/1e6, a.act/1e6, a.kv/1e6, ai)
	}
	fmt.Printf("\nstep totals: %.2f GFLOPs, %.2f GB moved, AI %.1f flops/byte\n",
		st.TotalFLOPs()/1e9, st.TotalBytes()/1e9, st.TotalFLOPs()/st.TotalBytes())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cllm-trace:", err)
	os.Exit(1)
}
