// cllm-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	cllm-bench -list
//	cllm-bench -exp fig4
//	cllm-bench -exp all [-quick] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"cllm"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	exp := flag.String("exp", "", "experiment id (e.g. fig4) or 'all'")
	quick := flag.Bool("quick", false, "shorter generations for a fast pass")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("Available experiments (paper artifact reproductions):")
		for _, e := range cllm.Experiments() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
			fmt.Printf("  %-12s paper: %s\n", "", e.Paper)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for _, e := range cllm.Experiments() {
			ids = append(ids, e.ID)
		}
	}

	failed := 0
	for _, id := range ids {
		rep, err := cllm.RunExperiment(id, *quick, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(rep.Table)
		if !rep.Passed {
			failed++
			fmt.Fprintf(os.Stderr, "experiment %s failed shape checks: %v\n", id, rep.FailedChecks)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
