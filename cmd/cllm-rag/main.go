// cllm-rag runs the paper's §VI RAG pipelines (BM25, reranked BM25, SBERT)
// inside a simulated TEE and reports retrieval quality plus modeled
// per-query latency per platform — the Fig 14 measurement as a CLI.
//
// Usage:
//
//	cllm-rag -query "enclave attestation integrity"
//	cllm-rag -benchmark
package main

import (
	"flag"
	"fmt"
	"os"

	"cllm"
)

func main() {
	platform := flag.String("platform", "tdx", "baremetal|vm|tdx|sgx")
	query := flag.String("query", "", "run a single query across all three methods")
	benchmark := flag.Bool("benchmark", false, "evaluate the built-in BEIR-like benchmark")
	k := flag.Int("k", 5, "hits to return")
	flag.Parse()

	s, err := cllm.Open(cllm.Config{Platform: *platform, System: "EMR2", Seed: 1})
	if err != nil {
		fail(err)
	}
	r, err := s.NewRAG(nil)
	if err != nil {
		fail(err)
	}
	fmt.Printf("indexed %d documents on %s\n\n", r.Len(), s.PlatformName())

	methods := []string{"bm25", "reranked", "sbert"}
	if *benchmark || *query == "" {
		fmt.Printf("%-10s  %-8s  %s\n", "method", "nDCG@10", "mean query time")
		for _, m := range methods {
			nd, mean, err := r.Benchmark(m)
			if err != nil {
				fail(err)
			}
			fmt.Printf("%-10s  %-8.3f  %.2f ms\n", m, nd, mean*1e3)
		}
		return
	}

	for _, m := range methods {
		hits, lat, err := r.Query(m, *query, *k)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s (%.2f ms):\n", m, lat*1e3)
		for _, h := range hits {
			fmt.Printf("  %-10s %.4f\n", h.ID, h.Score)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cllm-rag:", err)
	os.Exit(1)
}
