// cllm-infer runs end-to-end confidential text generation: it opens a TEE
// platform, attests it, loads a (scaled) model through the sealed-weights
// path, generates tokens, and reports both the functional output and the
// modeled performance of the same workload at full model scale.
//
// Usage:
//
//	cllm-infer -platform tdx -model llama2-7b -dtype bf16 -prompt "..."
package main

import (
	"flag"
	"fmt"
	"os"

	"cllm"
)

func main() {
	platform := flag.String("platform", "tdx", "baremetal|vm|tdx|sgx")
	modelName := flag.String("model", "llama2-7b", "model name (see -models)")
	dtypeName := flag.String("dtype", "bf16", "bf16|int8|f32")
	prompt := flag.String("prompt", "Summarize the patient's cardiac history", "prompt text")
	maxTokens := flag.Int("max-tokens", 24, "tokens to generate")
	beam := flag.Int("beam", 1, "beam width")
	scale := flag.Int("scale", 128, "model down-scale factor for functional inference")
	models := flag.Bool("models", false, "list model names")
	flag.Parse()

	if *models {
		for _, n := range cllm.ModelNames() {
			fmt.Println(n)
		}
		return
	}

	s, err := cllm.Open(cllm.Config{Platform: *platform, Seed: 1})
	if err != nil {
		fail(err)
	}
	fmt.Printf("platform %s opened (protected=%v attested=%v)\n", s.PlatformName(), s.Protected(), s.Attested())

	m, err := s.LoadModel(*modelName, *dtypeName, *scale)
	if err != nil {
		fail(err)
	}
	fmt.Printf("loaded %s (functional scale 1/%d)\n", m.ConfigName(), *scale)

	gen, err := m.Generate(*prompt, cllm.GenerateOptions{MaxNewTokens: *maxTokens, BeamSize: *beam})
	if err != nil {
		fail(err)
	}
	fmt.Printf("prompt tokens: %d\ngenerated %d tokens: %s\n", gen.PromptTokens, len(gen.Tokens), gen.Text)

	meas, err := s.Measure(cllm.Workload{
		Model: *modelName, DType: *dtypeName, InputLen: gen.PromptTokens + 1, OutputLen: *maxTokens,
	}, cllm.MeasureOptions{})
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nmodeled full-size performance on %s:\n", s.PlatformName())
	fmt.Printf("  next-token latency: %.1f ms (p50 %.1f ms, %d outliers filtered)\n",
		meas.MeanTokenLatency*1e3, meas.P50TokenLatency*1e3, meas.OutliersRemoved)
	fmt.Printf("  decode throughput:  %.1f tok/s\n", meas.DecodeTokensPerSec)
	fmt.Printf("  time to first token: %.2f s\n", meas.PrefillSeconds)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cllm-infer:", err)
	os.Exit(1)
}
