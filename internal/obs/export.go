package obs

import (
	"bytes"
	"fmt"
	"strconv"

	"cllm/internal/serve"
)

// usec renders a sim-clock time as trace-event microseconds.
func usec(sec float64) string { return fmt.Sprintf("%.3f", sec*1e6) }

// PerfettoTrace renders the recorded event stream as Chrome trace-event
// JSON, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing: one
// process per replica, one track (thread) per request, complete ("X")
// spans for the queued / preempted / prefill / decode phases and instant
// ("i") events for preemptions, swap transfers and drops. Timestamps are
// the deterministic sim clock converted to microseconds — identical runs
// serialize byte-identically.
//
// Span endpoints come from the closing lifecycle event: a request still
// queued or running at the horizon has no closing event and contributes
// only its instants and already-closed spans.
func (r *Recorder) PerfettoTrace() []byte { return r.perfettoTrace(nil) }

// PerfettoTraceWithCounters is PerfettoTrace plus counter ("C") tracks from
// the attribution's windowed series: a phase_seconds track carrying the
// fleet-wide prefill / decode / swap seconds accrued per window, and — when
// the run was clear-costed — a tee_tax_seconds track with the window's tax.
// Counter events attach to pid 0 and inherit the series' coalescing, so the
// tracks stay bounded on arbitrarily long runs.
func (r *Recorder) PerfettoTraceWithCounters(a *Attribution) []byte { return r.perfettoTrace(a) }

func (r *Recorder) perfettoTrace(a *Attribution) []byte {
	var buf bytes.Buffer
	buf.WriteString("{\"traceEvents\":[")
	first := true
	sep := func() {
		if !first {
			buf.WriteByte(',')
		}
		first = false
		buf.WriteByte('\n')
	}
	emit := func(format string, args ...any) {
		sep()
		fmt.Fprintf(&buf, format, args...)
	}
	// The per-event emitters below format with append-based strconv into a
	// reused scratch buffer: fmt's interface boxing and verb parsing
	// dominated the observed path's allocation profile. Every name, policy
	// and reason string is a fixed identifier, so plain quoting matches %q.
	scratch := make([]byte, 0, 256)
	num := func(prefix string, v int) {
		scratch = append(scratch, prefix...)
		scratch = strconv.AppendInt(scratch, int64(v), 10)
	}
	ts := func(prefix string, sec float64) {
		scratch = append(scratch, prefix...)
		scratch = strconv.AppendFloat(scratch, sec*1e6, 'f', 3, 64)
	}
	str := func(prefix, v string) {
		scratch = append(scratch, prefix...)
		scratch = append(scratch, '"')
		scratch = append(scratch, v...)
		scratch = append(scratch, '"')
	}
	flush := func() {
		sep()
		buf.Write(scratch)
		scratch = scratch[:0]
	}

	// Process metadata first: one named track group per replica seen.
	seen := map[int]bool{}
	var replicas []int
	for _, ev := range r.events {
		if !seen[ev.Replica] {
			seen[ev.Replica] = true
			replicas = append(replicas, ev.Replica)
		}
	}
	for _, id := range replicas {
		emit(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":"replica %d"}}`, id, id)
		emit(`{"name":"process_sort_index","ph":"M","pid":%d,"args":{"sort_index":%d}}`, id, id)
	}

	span := func(name string, ev serve.Event, from, to float64) {
		str(`{"name":`, name)
		scratch = append(scratch, `,"cat":"request","ph":"X"`...)
		num(`,"pid":`, ev.Replica)
		num(`,"tid":`, ev.ReqID)
		ts(`,"ts":`, from)
		ts(`,"dur":`, to-from)
		scratch = append(scratch, '}')
		flush()
	}
	type track struct {
		arrive, admit, firstTok, preempt, handoff float64
		hasAdmit, hasPreempt, hasHandoff          bool
	}
	tracks := map[int]*track{}
	for _, ev := range r.events {
		switch ev.Kind {
		case serve.EvCrash, serve.EvRecover:
			// Per-replica fault events (ReqID -1): process-scoped instants so
			// the outage brackets every request track of the replica.
			str(`{"name":`, ev.Kind.String())
			scratch = append(scratch, `,"cat":"fault","ph":"i","s":"p"`...)
			num(`,"pid":`, ev.Replica)
			ts(`,"ts":`, ev.TimeSec)
			num(`,"args":{"inflight":`, ev.Tokens)
			scratch = append(scratch, `,"recovery_s":`...)
			scratch = strconv.AppendFloat(scratch, ev.XferSec, 'g', 6, 64)
			scratch = append(scratch, "}}"...)
			flush()
			continue
		}
		t := tracks[ev.ReqID]
		if t == nil && ev.Kind != serve.EvDecodeRound {
			t = &track{}
			tracks[ev.ReqID] = t
		}
		switch ev.Kind {
		case serve.EvArrive:
			t.arrive = ev.TimeSec
		case serve.EvAdmit:
			if !t.hasAdmit {
				t.hasAdmit = true
				t.admit = ev.TimeSec
				span("queued", ev, t.arrive, ev.TimeSec)
			} else if t.hasHandoff {
				// Decode-side admission closes the handoff: a span on the
				// destination track plus the flow arrow's binding end, so
				// Perfetto draws the transfer between the two replica
				// tracks. The decode span then starts here.
				t.hasHandoff = false
				span("handoff", ev, t.handoff, ev.TimeSec)
				scratch = append(scratch, `{"name":"kv-handoff","cat":"handoff","ph":"f","bp":"e"`...)
				num(`,"id":`, ev.ReqID)
				num(`,"pid":`, ev.Replica)
				num(`,"tid":`, ev.ReqID)
				ts(`,"ts":`, ev.TimeSec)
				scratch = append(scratch, '}')
				flush()
				t.firstTok = ev.TimeSec
			} else if t.hasPreempt {
				t.hasPreempt = false
				span("preempted", ev, t.preempt, ev.TimeSec)
			}
		case serve.EvFirstToken:
			span("prefill", ev, t.admit, ev.TimeSec)
			t.firstTok = ev.TimeSec
		case serve.EvFinish:
			span("decode", ev, t.firstTok, ev.TimeSec)
		case serve.EvDrop:
			span("queued", ev, t.arrive, ev.TimeSec)
			scratch = append(scratch, `{"name":"drop","cat":"sched","ph":"i","s":"t"`...)
			num(`,"pid":`, ev.Replica)
			num(`,"tid":`, ev.ReqID)
			ts(`,"ts":`, ev.TimeSec)
			str(`,"args":{"reason":`, ev.Drop.String())
			num(`,"tokens":`, ev.Tokens)
			scratch = append(scratch, "}}"...)
			flush()
		case serve.EvShed:
			scratch = append(scratch, `{"name":"shed","cat":"sched","ph":"i","s":"t"`...)
			num(`,"pid":`, ev.Replica)
			num(`,"tid":`, ev.ReqID)
			ts(`,"ts":`, ev.TimeSec)
			num(`,"args":{"tokens":`, ev.Tokens)
			scratch = append(scratch, "}}"...)
			flush()
		case serve.EvRetry:
			scratch = append(scratch, `{"name":"retry","cat":"sched","ph":"i","s":"t"`...)
			num(`,"pid":`, ev.Replica)
			num(`,"tid":`, ev.ReqID)
			ts(`,"ts":`, ev.TimeSec)
			num(`,"args":{"attempt":`, ev.Hist)
			scratch = append(scratch, "}}"...)
			flush()
		case serve.EvPreempt:
			t.preempt = ev.TimeSec
			t.hasPreempt = true
			scratch = append(scratch, `{"name":"preempt","cat":"sched","ph":"i","s":"t"`...)
			num(`,"pid":`, ev.Replica)
			num(`,"tid":`, ev.ReqID)
			ts(`,"ts":`, ev.TimeSec)
			str(`,"args":{"policy":`, ev.Policy.String())
			str(`,"reason":`, ev.Reason.String())
			num(`,"tokens":`, ev.Tokens)
			scratch = append(scratch, "}}"...)
			flush()
		case serve.EvSwapOut, serve.EvSwapIn:
			str(`{"name":`, ev.Kind.String())
			scratch = append(scratch, `,"cat":"swap","ph":"i","s":"t"`...)
			num(`,"pid":`, ev.Replica)
			num(`,"tid":`, ev.ReqID)
			ts(`,"ts":`, ev.TimeSec)
			num(`,"args":{"tokens":`, ev.Tokens)
			scratch = append(scratch, `,"bytes":`...)
			scratch = strconv.AppendFloat(scratch, ev.Bytes, 'f', 0, 64)
			scratch = append(scratch, `,"xfer_ms":`...)
			scratch = strconv.AppendFloat(scratch, ev.XferSec*1e3, 'g', 6, 64)
			scratch = append(scratch, "}}"...)
			flush()
		case serve.EvHandoff:
			// Launch instant on the prefill replica's track with the priced
			// transfer, then the flow arrow's start; the matching binding
			// end is emitted at the destination's EvAdmit above.
			t.handoff = ev.TimeSec
			t.hasHandoff = true
			scratch = append(scratch, `{"name":"handoff","cat":"handoff","ph":"i","s":"t"`...)
			num(`,"pid":`, ev.Replica)
			num(`,"tid":`, ev.ReqID)
			ts(`,"ts":`, ev.TimeSec)
			num(`,"args":{"tokens":`, ev.Tokens)
			scratch = append(scratch, `,"bytes":`...)
			scratch = strconv.AppendFloat(scratch, ev.Bytes, 'f', 0, 64)
			scratch = append(scratch, `,"xfer_ms":`...)
			scratch = strconv.AppendFloat(scratch, ev.XferSec*1e3, 'g', 6, 64)
			scratch = append(scratch, "}}"...)
			flush()
			scratch = append(scratch, `{"name":"kv-handoff","cat":"handoff","ph":"s"`...)
			num(`,"id":`, ev.ReqID)
			num(`,"pid":`, ev.Replica)
			num(`,"tid":`, ev.ReqID)
			ts(`,"ts":`, ev.TimeSec)
			scratch = append(scratch, '}')
			flush()
		}
	}
	if a != nil {
		for _, w := range a.counters.wins {
			emit(`{"name":"phase_seconds","cat":"attrib","ph":"C","pid":0,"ts":%s,"args":{"prefill":%.6g,"decode":%.6g,"swap":%.6g}}`,
				usec(w.startSec), float64(w.prefN)/1e9, float64(w.decN)/1e9, float64(w.swapN)/1e9)
		}
		if a.clearCosted {
			for _, w := range a.counters.wins {
				emit(`{"name":"tee_tax_seconds","cat":"attrib","ph":"C","pid":0,"ts":%s,"args":{"tax":%.6g}}`,
					usec(w.startSec), float64(w.taxN)/1e9)
			}
		}
	}
	buf.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	return buf.Bytes()
}

// PrometheusText renders a Prometheus text-exposition (0.0.4) snapshot of
// a run's aggregate report: end-of-run counter and gauge values plus the
// latency quantile summaries, labeled with the platform. Metrics are
// written in a fixed order, so identical reports serialize
// byte-identically.
func PrometheusText(rep *serve.Report) []byte {
	var buf bytes.Buffer
	lbl := fmt.Sprintf(`platform=%q`, rep.Platform)
	counter := func(name, help string, v int) {
		fmt.Fprintf(&buf, "# HELP cllm_%s %s\n# TYPE cllm_%s counter\ncllm_%s{%s} %d\n", name, help, name, name, lbl, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&buf, "# HELP cllm_%s %s\n# TYPE cllm_%s gauge\ncllm_%s{%s} %g\n", name, help, name, name, lbl, v)
	}
	summary := func(name, help string, q serve.Quantiles, n int) {
		fmt.Fprintf(&buf, "# HELP cllm_%s %s\n# TYPE cllm_%s summary\n", name, help, name)
		fmt.Fprintf(&buf, "cllm_%s{%s,quantile=\"0.5\"} %g\n", name, lbl, q.P50)
		fmt.Fprintf(&buf, "cllm_%s{%s,quantile=\"0.95\"} %g\n", name, lbl, q.P95)
		fmt.Fprintf(&buf, "cllm_%s{%s,quantile=\"0.99\"} %g\n", name, lbl, q.P99)
		fmt.Fprintf(&buf, "cllm_%s_sum{%s} %g\n", name, lbl, q.Mean*float64(n))
		fmt.Fprintf(&buf, "cllm_%s_count{%s} %d\n", name, lbl, n)
	}
	counter("requests_completed_total", "Requests completed within the run.", rep.Completed)
	counter("requests_dropped_total", "Requests that left the run unserved (all reasons).", rep.Dropped)
	buf.WriteString("# HELP cllm_requests_dropped_reason_total Requests dropped, by reason; sums to cllm_requests_dropped_total.\n" +
		"# TYPE cllm_requests_dropped_reason_total counter\n")
	for i, n := range rep.DroppedByReason {
		fmt.Fprintf(&buf, "cllm_requests_dropped_reason_total{%s,reason=%q} %d\n", lbl, serve.DropReason(i).String(), n)
	}
	counter("requests_shed_total", "Requests declined by deadline-aware admission control.", rep.Sheds)
	counter("request_retries_total", "Shed or failure-lost requests re-entering after backoff.", rep.Retries)
	counter("replica_crashes_total", "Injected replica failures.", rep.Crashes)
	counter("requests_unfinished_total", "Requests still queued or running at the horizon.", rep.Unfinished)
	counter("preemptions_total", "Sequences evicted from the running batch.", rep.Preemptions)
	counter("swap_outs_total", "Preemption victims parked in the host swap pool.", rep.SwapOuts)
	counter("swap_ins_total", "Parked requests restored from the host swap pool.", rep.SwapIns)
	counter("kv_handoffs_total", "KV handoffs launched from prefill-role replicas (disaggregated topologies).", rep.HandoffsOut)
	counter("kv_handoffs_ingested_total", "Handed-off requests admitted by decode-role replicas.", rep.HandoffsIn)
	counter("kv_handoff_fallbacks_total", "Handoffs recomputed on arrival because the decode staging pool was full.", rep.HandoffFallbacks)
	counter("kv_handoff_tokens_total", "KV entries transferred across the prefill-to-decode edge.", rep.HandoffTokens)
	fmt.Fprintf(&buf, "# HELP cllm_kv_handoff_bytes_total KV bytes drained across the interconnect by handoffs.\n"+
		"# TYPE cllm_kv_handoff_bytes_total counter\ncllm_kv_handoff_bytes_total{%s} %g\n", lbl, rep.HandoffBytes)
	counter("tokens_generated_total", "Output tokens produced.", rep.TotalTokens)
	counter("prefix_cache_hit_tokens_total", "Prompt tokens served from shared prefix blocks.", rep.PrefixCacheHitTokens)
	counter("prefix_cache_miss_tokens_total", "Shareable prefix tokens that had to be computed.", rep.PrefixCacheMissTokens)
	counter("kv_blocks_evicted_total", "Cached prefix blocks reclaimed under memory pressure.", rep.EvictedBlocks)
	gauge("kv_blocks_total", "Device KV pool capacity in blocks.", float64(rep.KVBlocksTotal))
	gauge("kv_blocks_peak", "Device KV pool occupancy high-water mark.", float64(rep.PeakKVBlocksInUse))
	gauge("swap_pool_blocks", "Host swap pool capacity in blocks.", float64(rep.SwapPoolBlocks))
	gauge("swap_blocks_peak", "Host swap pool occupancy high-water mark.", float64(rep.PeakSwapBlocksInUse))
	gauge("offered_rate_req_per_sec", "Offered arrival rate.", rep.OfferedRate)
	gauge("makespan_seconds", "Simulated time from first arrival to last event.", rep.MakespanSec)
	gauge("replica_downtime_seconds", "Simulated seconds replicas spent in TEE cold-start recovery.", rep.DowntimeSec)
	gauge("throughput_tokens_per_sec", "Aggregate generation throughput.", rep.TokensPerSec)
	gauge("goodput_tokens_per_sec", "Throughput counting only SLO-compliant requests' tokens.", rep.GoodputTokensPerSec)
	gauge("slo_attainment", "Fraction of offered requests served within SLO.", rep.SLOAttainment())
	n := len(rep.Requests)
	summary("ttft_seconds", "Time to first token of completed requests.", rep.TTFT, n)
	summary("tpot_seconds", "Mean time per output token of completed multi-token requests.", rep.TPOT, n)
	summary("request_latency_seconds", "Arrival-to-completion latency of completed requests.", rep.Latency, n)
	return buf.Bytes()
}

// TimeseriesCSV renders the merged fleet-wide windowed series as CSV: one
// row per aligned window, gauges as last-value and in-window peak columns,
// token counters differenced into per-second rates over the elapsed time
// since the previous row. The header names the clock explicitly — all
// times are simulated seconds.
func (r *Recorder) TimeseriesCSV() []byte {
	var buf bytes.Buffer
	buf.WriteString("window_start_sec,window_sec,samples,queue_depth,queue_peak,running,running_peak," +
		"kv_blocks_in_use,kv_blocks_peak,kv_blocks_cached,swap_blocks_in_use,swap_blocks_peak," +
		"prefix_hit_rate,tokens_per_sec,goodput_tokens_per_sec\n")
	merged := r.series.Merged()
	w := r.series.WindowSec
	prevEnd := 0.0
	prevTok, prevGood, prevHit, prevMiss := 0, 0, 0, 0
	for _, win := range merged {
		end := win.StartSec + w
		elapsed := end - prevEnd
		rate := func(delta int) float64 {
			if elapsed <= 0 {
				return 0
			}
			return float64(delta) / elapsed
		}
		hitRate := 0.0
		if dh, dm := win.HitTokens-prevHit, win.MissTokens-prevMiss; dh+dm > 0 {
			hitRate = float64(dh) / float64(dh+dm)
		}
		fmt.Fprintf(&buf, "%.6g,%.6g,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.6g,%.6g,%.6g\n",
			win.StartSec, w, win.Samples, win.Queue, win.QueuePeak, win.Running, win.RunningPeak,
			win.KVInUse, win.KVInUsePeak, win.KVCached, win.Swap, win.SwapPeak,
			hitRate, rate(win.TotalTokens-prevTok), rate(win.GoodTokens-prevGood))
		prevEnd = end
		prevTok, prevGood, prevHit, prevMiss = win.TotalTokens, win.GoodTokens, win.HitTokens, win.MissTokens
	}
	return buf.Bytes()
}
