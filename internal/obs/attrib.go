package obs

import (
	"fmt"
	"math"

	"cllm/internal/serve"
	"cllm/internal/stats"
)

// Phase indexes the six disjoint components latency attribution splits a
// completed request's end-to-end latency into. The six phase times of a
// request sum to its arrival-to-completion latency exactly — an integer
// identity on the nanosecond-quantized sim clock, not a float
// approximation (see nanos).
type Phase int

const (
	// PhaseQueue is arrival to first admission.
	PhaseQueue Phase = iota
	// PhasePrefill is the request's wall-clock share of scheduling rounds
	// attributed to prefill-chunk compute.
	PhasePrefill
	// PhaseDecode is the share attributed to decode-step compute.
	PhaseDecode
	// PhaseStall is preemption to re-admission, summed over episodes.
	PhaseStall
	// PhaseSwap is the share attributed to KV swap transfers (the host
	// swap pool's coalesced copies — cGPU's encrypted bounce buffer).
	PhaseSwap
	// PhaseHandoff is handoff launch to decode-side admission on
	// disaggregated topologies: the source KV drain, the cross-replica NIC
	// transfer, and any queueing at the decode replica before it admits
	// the request. Always zero on unified fleets.
	PhaseHandoff
	// NumPhases sizes per-phase arrays.
	NumPhases
)

// String names the phase as the exporters spell it.
func (p Phase) String() string {
	switch p {
	case PhaseQueue:
		return "queue"
	case PhasePrefill:
		return "prefill"
	case PhaseDecode:
		return "decode"
	case PhaseStall:
		return "preempt-stall"
	case PhaseSwap:
		return "swap-transfer"
	case PhaseHandoff:
		return "handoff"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// taxPhases maps the three tax components (prefill, decode, swap — the
// costed round components; queue and stall are emergent waiting with no
// per-step counterfactual) onto their Phase for labeling.
var taxPhases = [3]Phase{PhasePrefill, PhaseDecode, PhaseSwap}

// nanos quantizes a sim-clock timestamp to integer nanoseconds — the unit
// every phase accumulator uses. Each timestamp is quantized exactly once,
// so interval sums telescope exactly in int64 arithmetic and the
// conservation invariant (queue + prefill + decode + stall + swap +
// handoff == finish − arrive) holds bit-for-bit per request. float64 still resolves
// ~4 ns at 10⁷-second horizons, well inside the quantum.
func nanos(sec float64) int64 { return int64(math.Round(sec * 1e9)) }

// splitRound splits a round's measured duration d (nanos) across prefill /
// decode / swap proportionally to the raw costed components, by sequential
// remainder rounding: each share rounds against the remaining duration and
// the last nonzero component absorbs the remainder, so the three parts are
// each in [0, d] and sum to d exactly. The noise scaling between the raw
// components and the measured duration cancels in the proportions.
func splitRound(d int64, prefSec, decSec, swapSec float64) (prefN, decN, swapN int64) {
	rem := d
	remFrac := prefSec + decSec + swapSec
	if remFrac <= 0 {
		// No modeled work (defensive: such a round is never scheduled).
		return 0, rem, 0
	}
	prefN = int64(math.Round(float64(rem) * (prefSec / remFrac)))
	rem -= prefN
	remFrac -= prefSec
	if remFrac <= 0 {
		return prefN + rem, 0, 0
	}
	decN = int64(math.Round(float64(rem) * (decSec / remFrac)))
	rem -= decN
	return prefN, decN, rem
}

// attribReq is the live per-request fold state: constant-size, recycled
// through a freelist on completion, so Attribution's memory is bounded by
// the number of in-flight requests — not the run length — and 10⁸-request
// epoch-sharded runs stream through it flat.
type attribReq struct {
	id       int
	arriveN  int64
	admitted bool  // first admission seen (queue phase closed)
	preemptN int64 // last preemption instant while waiting to re-admit
	handoffN int64 // pending handoff launch instant (disaggregated fleets)
	finished bool  // EvFinish seen; finalized by the same round's event

	phaseN [NumPhases]int64
	taxN   [3]int64
}

// replicaAttrib tracks one replica's current scheduling-round span and
// batch membership. Rounds are contiguous while the batch is non-empty, so
// the next round's start is the previous round's end; admissions into an
// empty batch restart the span.
type replicaAttrib struct {
	startN  int64
	members []*attribReq
}

// Attribution is a streaming serve.Observer that folds the lifecycle event
// stream into per-request phase vectors — queue wait, prefill compute,
// decode compute, preemption stall, swap transfer, KV handoff — and aggregates each
// phase into a DDSketch. With a clear-hardware counterfactual coster
// attached to the run (serve.Config.ClearCoster), it additionally
// accumulates the per-phase TEE tax: the delta between the real and
// clear-twin cost of every round the request sat in.
//
// Memory is bounded by in-flight requests plus the sketches' bucket
// counts; it works unchanged on fleet, autoscaled and epoch-sharded runs
// because it consumes only the observer stream. Like every observer it
// must not be shared across concurrent runs.
type Attribution struct {
	alpha       float64
	clearCosted bool

	reqs map[int]*attribReq
	reps map[int]*replicaAttrib
	free []*attribReq

	phase    [NumPhases]*stats.Sketch
	phaseSec [NumPhases]float64
	tax      [3]*stats.Sketch
	taxSec   [3]float64
	latency  *stats.Sketch
	taxShare *stats.Sketch

	completed  int64
	dropped    int64
	latSec     float64
	violations []string

	counters *counterSeries

	// onFinalize, when set (ReconcilePhases), receives every completed
	// request's exact phase vector before it is folded into the sketches.
	onFinalize func(id, replica int, phaseN [NumPhases]int64, latN int64)
}

// NewAttribution builds an attribution engine whose phase sketches carry
// the given relative-error bound (0 means stats.DefaultSketchAlpha), with
// the default 1-second / 512-window Perfetto counter series. clearCosted
// declares that the run carries a clear-hardware coster
// (serve.Config.ClearCoster), enabling TEE-tax accumulation — without it
// the Clear* event fields are zero and a tax would be meaningless.
func NewAttribution(alpha float64, clearCosted bool) (*Attribution, error) {
	return NewAttributionWindow(alpha, clearCosted, 1, 512)
}

// NewAttributionWindow is NewAttribution with an explicit counter-series
// window width and memory bound (clamped like NewRecorderWindow).
func NewAttributionWindow(alpha float64, clearCosted bool, windowSec float64, maxWindows int) (*Attribution, error) {
	if alpha == 0 {
		alpha = stats.DefaultSketchAlpha
	}
	if windowSec <= 0 {
		windowSec = 1
	}
	if maxWindows < 2 {
		maxWindows = 2
	}
	a := &Attribution{
		alpha:       alpha,
		clearCosted: clearCosted,
		reqs:        map[int]*attribReq{},
		reps:        map[int]*replicaAttrib{},
		counters:    &counterSeries{windowSec: windowSec, maxWindows: maxWindows},
	}
	var err error
	for i := range a.phase {
		if a.phase[i], err = stats.NewSketch(alpha); err != nil {
			return nil, err
		}
	}
	for i := range a.tax {
		if a.tax[i], err = stats.NewSketch(alpha); err != nil {
			return nil, err
		}
	}
	if a.latency, err = stats.NewSketch(alpha); err != nil {
		return nil, err
	}
	if a.taxShare, err = stats.NewSketch(alpha); err != nil {
		return nil, err
	}
	return a, nil
}

// Alpha returns the phase sketches' relative-error bound.
func (a *Attribution) Alpha() float64 { return a.alpha }

// Sample implements serve.Observer; attribution consumes events only.
func (a *Attribution) Sample(serve.Sample) {}

// Event folds one lifecycle event.
func (a *Attribution) Event(ev serve.Event) {
	switch ev.Kind {
	case serve.EvArrive:
		r := a.newReq()
		r.id = ev.ReqID
		r.arriveN = nanos(ev.TimeSec)
		a.reqs[ev.ReqID] = r
	case serve.EvAdmit:
		r := a.reqs[ev.ReqID]
		if r == nil {
			return
		}
		evN := nanos(ev.TimeSec)
		switch {
		case !r.admitted:
			r.admitted = true
			r.phaseN[PhaseQueue] = evN - r.arriveN
		case r.handoffN != 0:
			// First admission on the decode side: the span since the
			// handoff launched — source drain, NIC transfer, decode-side
			// queueing — is the handoff phase.
			r.phaseN[PhaseHandoff] += evN - r.handoffN
			r.handoffN = 0
		default:
			r.phaseN[PhaseStall] += evN - r.preemptN
		}
		rep := a.replica(ev.Replica)
		if len(rep.members) == 0 {
			rep.startN = evN
		}
		rep.members = append(rep.members, r)
	case serve.EvPreempt:
		r := a.reqs[ev.ReqID]
		if r == nil {
			return
		}
		r.preemptN = nanos(ev.TimeSec)
		a.leave(ev.Replica, r)
	case serve.EvHandoff:
		// The request leaves the prefill replica's batch; emitted after the
		// same-timestamp round event (the scheduler defers the handoff), so
		// the round that produced the first token attributed its span first.
		r := a.reqs[ev.ReqID]
		if r == nil {
			return
		}
		r.handoffN = nanos(ev.TimeSec)
		a.leave(ev.Replica, r)
	case serve.EvDrop:
		if r := a.reqs[ev.ReqID]; r != nil {
			delete(a.reqs, ev.ReqID)
			a.recycle(r)
			a.dropped++
		}
	case serve.EvFinish:
		if r := a.reqs[ev.ReqID]; r != nil {
			// The finish instant is the producing round's end; the round
			// event that follows at the same timestamp closes the last
			// round and finalizes the request.
			r.finished = true
		}
	case serve.EvDecodeRound:
		a.round(ev)
	}
}

// round closes one scheduling round: splits its measured duration across
// the costed components, accrues the split (and the clear-twin tax delta)
// to every batch member, and finalizes members that finished at this
// round's end.
func (a *Attribution) round(ev serve.Event) {
	endN := nanos(ev.TimeSec)
	rep := a.replica(ev.Replica)
	d := endN - rep.startN
	if d < 0 {
		d = 0
	}
	prefN, decN, swapN := splitRound(d, ev.PrefillSec, ev.DecodeSec, ev.SwapSec)
	var taxN [3]int64
	if a.clearCosted {
		// The tax is the raw mechanism delta between the real and
		// clear-twin costings of the same step shapes — deterministic,
		// exactly zero on unprotected platforms, and excluding the
		// stochastic noise tail (which the real phase quantiles carry).
		taxN[0] = nanos(ev.PrefillSec) - nanos(ev.ClearPrefillSec)
		taxN[1] = nanos(ev.DecodeSec) - nanos(ev.ClearDecodeSec)
		taxN[2] = nanos(ev.SwapSec) - nanos(ev.ClearSwapSec)
		for i, t := range taxN {
			if t < 0 {
				taxN[i] = 0
			}
		}
	}
	for i := 0; i < len(rep.members); {
		r := rep.members[i]
		r.phaseN[PhasePrefill] += prefN
		r.phaseN[PhaseDecode] += decN
		r.phaseN[PhaseSwap] += swapN
		r.taxN[0] += taxN[0]
		r.taxN[1] += taxN[1]
		r.taxN[2] += taxN[2]
		if r.finished {
			n := len(rep.members)
			rep.members[i] = rep.members[n-1]
			rep.members[n-1] = nil
			rep.members = rep.members[:n-1]
			a.finalize(r, ev.Replica, endN)
			continue
		}
		i++
	}
	rep.startN = endN
	a.counters.add(ev.TimeSec, prefN, decN, swapN, taxN[0]+taxN[1]+taxN[2])
}

// finalize checks conservation and folds one completed request's phase
// vector into the aggregates.
func (a *Attribution) finalize(r *attribReq, replica int, finishN int64) {
	latN := finishN - r.arriveN
	var sumN int64
	for _, p := range r.phaseN {
		sumN += p
	}
	if sumN != latN && len(a.violations) < 8 {
		a.violations = append(a.violations,
			fmt.Sprintf("request %d: phase sum %d ns != latency %d ns (drift %d ns)", r.id, sumN, latN, sumN-latN))
	}
	if a.onFinalize != nil {
		a.onFinalize(r.id, replica, r.phaseN, latN)
	}
	var taxTotN int64
	for i, sk := range a.tax {
		sec := float64(r.taxN[i]) / 1e9
		a.taxSec[i] += sec
		taxTotN += r.taxN[i]
		_ = sk.Add(sec)
	}
	for i, sk := range a.phase {
		sec := float64(r.phaseN[i]) / 1e9
		a.phaseSec[i] += sec
		_ = sk.Add(sec)
	}
	latSec := float64(latN) / 1e9
	a.latSec += latSec
	_ = a.latency.Add(latSec)
	share := 0.0
	if latN > 0 {
		share = float64(taxTotN) / float64(latN)
	}
	_ = a.taxShare.Add(share)
	a.completed++
	delete(a.reqs, r.id)
	a.recycle(r)
}

// leave removes a request from a replica's batch membership (preemption
// or handoff departure) via swap-delete.
func (a *Attribution) leave(replica int, r *attribReq) {
	rep := a.replica(replica)
	for i, m := range rep.members {
		if m == r {
			n := len(rep.members)
			rep.members[i] = rep.members[n-1]
			rep.members[n-1] = nil
			rep.members = rep.members[:n-1]
			break
		}
	}
}

// replica returns (creating if needed) one replica's round state.
func (a *Attribution) replica(id int) *replicaAttrib {
	rep := a.reps[id]
	if rep == nil {
		rep = &replicaAttrib{}
		a.reps[id] = rep
	}
	return rep
}

// newReq takes a recycled fold state or allocates one.
func (a *Attribution) newReq() *attribReq {
	if n := len(a.free); n > 0 {
		r := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		*r = attribReq{}
		return r
	}
	return &attribReq{}
}

// recycle returns a fold state to the freelist.
func (a *Attribution) recycle(r *attribReq) { a.free = append(a.free, r) }

// Merge folds another attribution's aggregates into a — the exact sketch
// merge (integer bucket counts), so attributing shards separately and
// merging yields the same quantiles as one engine seeing the union
// stream. Both engines must share one alpha; in-flight request state is
// not merged (merge completed engines).
func (a *Attribution) Merge(o *Attribution) error {
	if o == nil {
		return fmt.Errorf("obs: cannot merge nil attribution")
	}
	for i := range a.phase {
		if err := a.phase[i].Merge(o.phase[i]); err != nil {
			return err
		}
		a.phaseSec[i] += o.phaseSec[i]
	}
	for i := range a.tax {
		if err := a.tax[i].Merge(o.tax[i]); err != nil {
			return err
		}
		a.taxSec[i] += o.taxSec[i]
	}
	if err := a.latency.Merge(o.latency); err != nil {
		return err
	}
	if err := a.taxShare.Merge(o.taxShare); err != nil {
		return err
	}
	a.completed += o.completed
	a.dropped += o.dropped
	a.latSec += o.latSec
	a.clearCosted = a.clearCosted || o.clearCosted
	for _, v := range o.violations {
		if len(a.violations) < 8 {
			a.violations = append(a.violations, v)
		}
	}
	return nil
}

// PhaseStat summarizes one phase (or tax component) across completed
// requests. Quantiles come from the phase's sketch and carry its alpha
// relative-error bound; Share is the phase's fraction of total completed
// latency (phases partition latency, so the six phase shares sum to 1).
type PhaseStat struct {
	Phase    string  `json:"phase"`
	Count    int64   `json:"count"`
	TotalSec float64 `json:"total_sec"`
	Share    float64 `json:"share"`
	MeanSec  float64 `json:"mean_sec"`
	P50Sec   float64 `json:"p50_sec"`
	P95Sec   float64 `json:"p95_sec"`
	P99Sec   float64 `json:"p99_sec"`
}

// AttribReport is the serializable summary of an attribution run: the
// six-phase latency breakdown, and — when the run was clear-costed — the
// per-phase TEE tax. It round-trips through JSON (cllm-serve -attrib-out)
// and is what Diff compares.
type AttribReport struct {
	Platform string `json:"platform"`
	// Alpha is the sketches' relative-error bound: every quantile below is
	// within ±Alpha (relative) of the exact order statistic.
	Alpha      float64 `json:"alpha"`
	Completed  int64   `json:"completed"`
	Dropped    int64   `json:"dropped"`
	Unfinished int64   `json:"unfinished"`
	// LatencyTotalSec is the summed end-to-end latency of completed
	// requests — exactly the sum of the six phase totals.
	LatencyTotalSec float64 `json:"latency_total_sec"`
	LatencyP50Sec   float64 `json:"latency_p50_sec"`
	// Phases holds the six phase rows in fixed order: queue, prefill,
	// decode, preempt-stall, swap-transfer, handoff.
	Phases []PhaseStat `json:"phases"`
	// ClearCosted reports whether the run carried the clear-hardware
	// counterfactual coster; the tax fields are meaningful only when true.
	ClearCosted bool `json:"clear_costed"`
	// Tax holds the three tax rows (prefill, decode, swap-transfer): the
	// per-request delta between real and clear-twin step costs. Share is
	// relative to total completed latency.
	Tax         []PhaseStat `json:"tax,omitempty"`
	TaxTotalSec float64     `json:"tax_total_sec"`
	// TaxShareP50 is the median per-request tax share of latency;
	// TaxShareMean the aggregate TaxTotalSec/LatencyTotalSec.
	TaxShareP50  float64 `json:"tax_share_p50"`
	TaxShareMean float64 `json:"tax_share_mean"`
	// Violations lists conservation failures (first 8); always empty —
	// the invariant is exact — unless the event stream was truncated or
	// corrupted.
	Violations []string `json:"violations,omitempty"`
}

// Report summarizes the attribution so far. platform labels the report
// (exporters and Diff carry it through).
func (a *Attribution) Report(platform string) *AttribReport {
	rep := &AttribReport{
		Platform:        platform,
		Alpha:           a.alpha,
		Completed:       a.completed,
		Dropped:         a.dropped,
		Unfinished:      int64(len(a.reqs)),
		LatencyTotalSec: a.latSec,
		LatencyP50Sec:   a.latency.Quantile(0.5),
		ClearCosted:     a.clearCosted,
		Violations:      a.violations,
	}
	stat := func(name string, sk *stats.Sketch, total float64) PhaseStat {
		mean := 0.0
		if n := sk.Count(); n > 0 {
			mean = total / float64(n)
		}
		share := 0.0
		if a.latSec > 0 {
			share = total / a.latSec
		}
		return PhaseStat{
			Phase: name, Count: sk.Count(), TotalSec: total, Share: share, MeanSec: mean,
			P50Sec: sk.Quantile(0.5), P95Sec: sk.Quantile(0.95), P99Sec: sk.Quantile(0.99),
		}
	}
	for p := Phase(0); p < NumPhases; p++ {
		rep.Phases = append(rep.Phases, stat(p.String(), a.phase[p], a.phaseSec[p]))
	}
	if a.clearCosted {
		for i, ph := range taxPhases {
			rep.Tax = append(rep.Tax, stat(ph.String(), a.tax[i], a.taxSec[i]))
			rep.TaxTotalSec += a.taxSec[i]
		}
		rep.TaxShareP50 = a.taxShare.Quantile(0.5)
		if a.latSec > 0 {
			rep.TaxShareMean = rep.TaxTotalSec / a.latSec
		}
	}
	return rep
}

// counterSeries accumulates per-round phase seconds into aligned windows
// for the Perfetto counter tracks, with TimeSeries-style bounded memory:
// exceeding maxWindows coalesces pairs and doubles the width.
type counterSeries struct {
	windowSec  float64
	maxWindows int
	wins       []counterWindow
}

// counterWindow is one aligned window's accumulated phase nanoseconds.
type counterWindow struct {
	startSec                 float64
	prefN, decN, swapN, taxN int64
}

// add accrues one round's split into the window containing its end time.
// Sim time is monotone, so insertion is append-only.
func (cs *counterSeries) add(tSec float64, prefN, decN, swapN, taxN int64) {
	start := math.Floor(tSec/cs.windowSec) * cs.windowSec
	if n := len(cs.wins); n == 0 || cs.wins[n-1].startSec < start {
		cs.wins = append(cs.wins, counterWindow{startSec: start})
	}
	w := &cs.wins[len(cs.wins)-1]
	w.prefN += prefN
	w.decN += decN
	w.swapN += swapN
	w.taxN += taxN
	if len(cs.wins) > cs.maxWindows {
		cs.coalesce()
	}
}

// coalesce halves resolution: width doubles, windows merge pairwise.
func (cs *counterSeries) coalesce() {
	cs.windowSec *= 2
	out := cs.wins[:0]
	for _, w := range cs.wins {
		start := math.Floor(w.startSec/cs.windowSec) * cs.windowSec
		if n := len(out); n > 0 && out[n-1].startSec == start {
			out[n-1].prefN += w.prefN
			out[n-1].decN += w.decN
			out[n-1].swapN += w.swapN
			out[n-1].taxN += w.taxN
		} else {
			w.startSec = start
			out = append(out, w)
		}
	}
	cs.wins = out
}
