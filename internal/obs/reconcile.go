package obs

import (
	"fmt"
	"math"
	"sort"

	"cllm/internal/serve"
	"cllm/internal/stats"
)

// reqTrack is one request's reconstructed lifecycle.
type reqTrack struct {
	replica                         int
	arrive, admit, firstTok, finish float64
	hasAdmit, finished, dropped     bool
	generated, preempts             int
	slo                             bool
}

// ReconcileReport replays a run's recorded event stream and checks that it
// reconstructs the aggregate serve.Report exactly: request partition
// counters, preemption and swap counters, total tokens (summed from the
// per-round production events), every completed request's metrics, the
// latency quantiles and the goodput figures — all compared with exact
// (bit-level) float equality, since events carry the same sim-clock
// timestamps the report was computed from. It returns one message per
// mismatch; an empty slice is proof of events ↔ aggregate conservation.
//
// The per-request comparison assumes requests were dispatched in
// arrival-time order (true for every built-in generator; explicit traces
// must be sorted by ArrivalSec), because the report lists requests in
// dispatch order per replica.
func ReconcileReport(events []serve.Event, rep *serve.Report) []string {
	var bad []string
	mismatch := func(format string, args ...any) { bad = append(bad, fmt.Sprintf(format, args...)) }

	tracks := map[int]*reqTrack{}
	order := map[int][]int{} // replica -> request IDs in arrival order
	var arrivals, drops, finishes, preempts, swapOuts, swapIns, roundTokens int
	var handoffs, handoffTokens int
	var handoffBytes float64
	var crashes, recovers, sheds, retries int
	var downtime float64
	var dropsByReason [serve.NumDropReasons]int
	for _, ev := range events {
		switch ev.Kind {
		case serve.EvCrash:
			// Per-replica (ReqID -1): no request track. XferSec is the
			// recovery ahead; summing it in event order reproduces the
			// report's accumulator bit for bit.
			crashes++
			downtime += ev.XferSec
			continue
		case serve.EvRecover:
			recovers++
			continue
		}
		t := tracks[ev.ReqID]
		if t == nil && ev.Kind != serve.EvDecodeRound {
			t = &reqTrack{}
			tracks[ev.ReqID] = t
		}
		switch ev.Kind {
		case serve.EvArrive:
			arrivals++
			t.replica = ev.Replica
			t.arrive = ev.TimeSec
			order[ev.Replica] = append(order[ev.Replica], ev.ReqID)
		case serve.EvAdmit:
			if !t.hasAdmit {
				t.hasAdmit = true
				t.admit = ev.TimeSec
			}
		case serve.EvFirstToken:
			t.firstTok = ev.TimeSec
		case serve.EvPreempt:
			preempts++
			t.preempts++
		case serve.EvSwapOut:
			swapOuts++
		case serve.EvSwapIn:
			swapIns++
		case serve.EvDrop:
			drops++
			dropsByReason[ev.Drop]++
			t.dropped = true
		case serve.EvShed:
			sheds++
		case serve.EvRetry:
			retries++
		case serve.EvFinish:
			finishes++
			t.finished = true
			t.finish = ev.TimeSec
			t.generated = ev.Tokens
			t.slo = ev.SLOMet
		case serve.EvDecodeRound:
			roundTokens += ev.Tokens
		case serve.EvHandoff:
			handoffs++
			handoffTokens += ev.Tokens
			handoffBytes += ev.Bytes
		}
	}

	check := func(name string, fromEvents, reported int) {
		if fromEvents != reported {
			mismatch("%s: events say %d, report says %d", name, fromEvents, reported)
		}
	}
	check("completed", finishes, rep.Completed)
	check("dropped", drops, rep.Dropped)
	check("unfinished", arrivals-finishes-drops, rep.Unfinished)
	check("preemptions", preempts, rep.Preemptions)
	check("swap-outs", swapOuts, rep.SwapOuts)
	check("swap-ins", swapIns, rep.SwapIns)
	check("total tokens (per-round sum)", roundTokens, rep.TotalTokens)
	check("crashes", crashes, rep.Crashes)
	check("handoffs launched", handoffs, rep.HandoffsOut)
	check("handoff tokens", handoffTokens, rep.HandoffTokens)
	if handoffBytes != rep.HandoffBytes {
		mismatch("handoff bytes: events sum %g, report says %g", handoffBytes, rep.HandoffBytes)
	}
	check("sheds", sheds, rep.Sheds)
	check("retries", retries, rep.Retries)
	for i, n := range dropsByReason {
		check(fmt.Sprintf("dropped[%s]", serve.DropReason(i)), n, rep.DroppedByReason[i])
	}
	if recovers > crashes {
		// A run may end mid-recovery, never the other way around.
		mismatch("recoveries: events say %d recoveries for %d crashes", recovers, crashes)
	}
	if downtime != rep.DowntimeSec {
		mismatch("downtime: events sum %g s, report says %g s", downtime, rep.DowntimeSec)
	}

	if rep.Sketched {
		// Sketched reports carry no per-request ledger: rebuild the three
		// latency sketches from the event stream at the report's alpha.
		// Bucket counts are integers and insertion order is immaterial, so
		// the rebuilt quantiles must match the report's bit for bit; only
		// the means get a tiny relative tolerance, because the report folds
		// its sums in completion order while this rebuild folds in map
		// order, and float addition is not associative.
		reconcileSketched(tracks, rep, mismatch)
		return bad
	}
	if finishes != len(rep.Requests) {
		mismatch("completed requests: events say %d, report lists %d", finishes, len(rep.Requests))
		return bad // element-wise comparison below would misalign
	}

	// Rebuild every completed request's metrics in the report's own order —
	// replicas ascending, dispatch order within each — with the report's
	// arithmetic, then compare element-wise and re-derive the quantiles.
	replicas := make([]int, 0, len(order))
	for id := range order {
		replicas = append(replicas, id)
	}
	sort.Ints(replicas)
	var ttfts, tpots, lats []float64
	goodTokens, goodReqs := 0, 0
	i := 0
	for _, rid := range replicas {
		for _, reqID := range order[rid] {
			t := tracks[reqID]
			if !t.finished {
				continue
			}
			m := serve.RequestMetrics{
				ID:           reqID,
				TTFT:         t.firstTok - t.arrive,
				Latency:      t.finish - t.arrive,
				QueueDelay:   t.admit - t.arrive,
				OutputTokens: t.generated,
				Preemptions:  t.preempts,
				SLOMet:       t.slo,
			}
			if t.generated > 1 {
				m.TPOT = (t.finish - t.firstTok) / float64(t.generated-1)
				tpots = append(tpots, m.TPOT)
			}
			ttfts = append(ttfts, m.TTFT)
			lats = append(lats, m.Latency)
			if m.SLOMet {
				goodReqs++
				goodTokens += m.OutputTokens
			}
			if got := rep.Requests[i]; m != got {
				mismatch("request %d: events reconstruct %+v, report has %+v", reqID, m, got)
			}
			i++
		}
	}
	checkQ := func(name string, xs []float64, got serve.Quantiles) {
		want := serve.Quantiles{}
		if len(xs) > 0 {
			want = serve.Quantiles{
				Mean: stats.Mean(xs),
				P50:  stats.Percentile(xs, 50),
				P95:  stats.Percentile(xs, 95),
				P99:  stats.Percentile(xs, 99),
			}
		}
		if want != got {
			mismatch("%s quantiles: events reconstruct %+v, report has %+v", name, want, got)
		}
	}
	checkQ("TTFT", ttfts, rep.TTFT)
	checkQ("TPOT", tpots, rep.TPOT)
	checkQ("latency", lats, rep.Latency)
	if rep.MakespanSec > 0 {
		if g := float64(goodTokens) / rep.MakespanSec; g != rep.GoodputTokensPerSec {
			mismatch("goodput: events reconstruct %g tok/s, report has %g", g, rep.GoodputTokensPerSec)
		}
		if g := float64(goodReqs) / rep.MakespanSec; g != rep.GoodRequestsPerSec {
			mismatch("good requests: events reconstruct %g req/s, report has %g", g, rep.GoodRequestsPerSec)
		}
	}
	return bad
}

// ReconcilePhases refolds a run's recorded event stream through a fresh
// Attribution and audits the phase-conservation invariant against the
// aggregate report: every completed request's five phases must sum to its
// latency exactly (the engine's own integer-nanosecond check), the refold
// must finalize exactly the requests the report completed, and the
// attributed latencies must match the report's — per request within the
// nanosecond quantization on exact reports, and within the combined sketch
// error bound on sketched ones. It returns one message per failure; an
// empty slice is proof the phase decomposition partitions measured latency.
func ReconcilePhases(events []serve.Event, rep *serve.Report) []string {
	var bad []string
	mismatch := func(format string, args ...any) { bad = append(bad, fmt.Sprintf(format, args...)) }

	alpha := stats.DefaultSketchAlpha
	if rep.Sketched {
		alpha = rep.SketchAlpha
	}
	a, err := NewAttribution(alpha, false)
	if err != nil {
		return []string{fmt.Sprintf("cannot rebuild attribution: %v", err)}
	}
	var latByID map[int]float64
	var repLatSum float64
	if !rep.Sketched {
		latByID = make(map[int]float64, len(rep.Requests))
		for _, m := range rep.Requests {
			latByID[m.ID] = m.Latency
			repLatSum += m.Latency
		}
	}
	a.onFinalize = func(id, replica int, phaseN [NumPhases]int64, latN int64) {
		if latByID == nil {
			return
		}
		want, ok := latByID[id]
		if !ok {
			mismatch("request %d finalized by events but absent from report", id)
			return
		}
		delete(latByID, id)
		// Each endpoint rounds to its nanosecond once, so the attributed
		// latency sits within the quantization of the report's float value.
		if d := math.Abs(float64(latN)/1e9 - want); d > 1e-8+1e-9*math.Abs(want) {
			mismatch("request %d: attributed latency %g s vs report %g s (drift %g s)", id, float64(latN)/1e9, want, d)
		}
	}
	for _, ev := range events {
		a.Event(ev)
	}
	arep := a.Report(rep.Platform)
	for _, v := range arep.Violations {
		mismatch("phase conservation: %s", v)
	}
	if int(arep.Completed) != rep.Completed {
		mismatch("completed: attribution finalized %d, report says %d", arep.Completed, rep.Completed)
	}
	if int(arep.Dropped) != rep.Dropped {
		mismatch("dropped: attribution saw %d, report says %d", arep.Dropped, rep.Dropped)
	}
	var phaseTot float64
	for _, p := range arep.Phases {
		phaseTot += p.TotalSec
	}
	if !relClose(phaseTot, arep.LatencyTotalSec) {
		mismatch("phase totals sum to %g s, attributed latency total is %g s", phaseTot, arep.LatencyTotalSec)
	}
	if rep.Sketched {
		// Both sketches share one alpha but bin nanosecond-quantized vs raw
		// float values, so bucket boundaries can split them: the medians
		// agree within the combined relative error, not bit-exactly.
		b, c := rep.Latency.P50, arep.LatencyP50Sec
		if tol := 2.1*alpha*math.Max(math.Abs(b), math.Abs(c)) + 1e-8; math.Abs(b-c) > tol {
			mismatch("latency p50: attribution %g s vs sketched report %g s (tolerance %g)", c, b, tol)
		}
	} else {
		for id := range latByID {
			mismatch("request %d completed in report but never finalized by events", id)
		}
		quantTol := 1e-8 + 2e-9*float64(rep.Completed) + 1e-9*math.Abs(repLatSum)
		if d := math.Abs(arep.LatencyTotalSec - repLatSum); d > quantTol {
			mismatch("total latency: attribution %g s vs report %g s (drift %g > %g)", arep.LatencyTotalSec, repLatSum, d, quantTol)
		}
	}
	return bad
}

// relClose reports whether a and b agree within a 1e-9 relative tolerance,
// the slack fold-order differences in float summation can introduce.
func relClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// reconcileSketched checks a sketched report against the event stream:
// exact counter and quantile equality, tolerance only on the means.
func reconcileSketched(tracks map[int]*reqTrack, rep *serve.Report, mismatch func(string, ...any)) {
	mk := func() *stats.Sketch {
		sk, err := stats.NewSketch(rep.SketchAlpha)
		if err != nil {
			return nil
		}
		return sk
	}
	ttftSk, tpotSk, latSk := mk(), mk(), mk()
	if ttftSk == nil {
		mismatch("sketched report has unusable alpha %g", rep.SketchAlpha)
		return
	}
	goodTokens, goodReqs, completedTokens := 0, 0, 0
	var ttftSum, tpotSum, latSum float64
	for _, t := range tracks {
		if !t.finished {
			continue
		}
		ttft := t.firstTok - t.arrive
		lat := t.finish - t.arrive
		_ = ttftSk.Add(ttft)
		_ = latSk.Add(lat)
		ttftSum += ttft
		latSum += lat
		if t.generated > 1 {
			tpot := (t.finish - t.firstTok) / float64(t.generated-1)
			_ = tpotSk.Add(tpot)
			tpotSum += tpot
		}
		completedTokens += t.generated
		if t.slo {
			goodReqs++
			goodTokens += t.generated
		}
	}
	checkInt := func(name string, fromEvents, reported int) {
		if fromEvents != reported {
			mismatch("%s: events say %d, report says %d", name, fromEvents, reported)
		}
	}
	checkInt("good requests", goodReqs, rep.GoodRequests)
	checkInt("good output tokens", goodTokens, rep.GoodOutputTokens)
	checkInt("completed output tokens", completedTokens, rep.CompletedOutputTokens)
	checkSk := func(name string, sk *stats.Sketch, sum float64, got serve.Quantiles) {
		for _, p := range [...]struct {
			q         float64
			rep, want float64
		}{
			{0.50, got.P50, sk.Quantile(0.50)},
			{0.95, got.P95, sk.Quantile(0.95)},
			{0.99, got.P99, sk.Quantile(0.99)},
		} {
			if p.rep != p.want {
				mismatch("%s p%g: events rebuild %g, report has %g", name, 100*p.q, p.want, p.rep)
			}
		}
		mean := 0.0
		if sk.Count() > 0 {
			mean = sum / float64(sk.Count())
		}
		if !relClose(mean, got.Mean) {
			mismatch("%s mean: events rebuild %g, report has %g", name, mean, got.Mean)
		}
	}
	checkSk("TTFT", ttftSk, ttftSum, rep.TTFT)
	checkSk("TPOT", tpotSk, tpotSum, rep.TPOT)
	checkSk("latency", latSk, latSum, rep.Latency)
	if rep.MakespanSec > 0 {
		if g := float64(goodTokens) / rep.MakespanSec; g != rep.GoodputTokensPerSec {
			mismatch("goodput: events reconstruct %g tok/s, report has %g", g, rep.GoodputTokensPerSec)
		}
		if g := float64(goodReqs) / rep.MakespanSec; g != rep.GoodRequestsPerSec {
			mismatch("good requests rate: events reconstruct %g req/s, report has %g", g, rep.GoodRequestsPerSec)
		}
	}
}
