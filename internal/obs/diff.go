package obs

import (
	"math"
	"sort"
)

// PhaseDelta is one metric movement between two attribution reports that
// exceeds the comparison's noise floor.
type PhaseDelta struct {
	// Metric names what moved: "latency_p50_sec", "phase_p50_sec",
	// "phase_p95_sec", "phase_share", "tax_share", or "tax_share_mean".
	Metric string `json:"metric"`
	// Phase qualifies per-phase metrics (empty for run-level ones).
	Phase string  `json:"phase,omitempty"`
	Base  float64 `json:"base"`
	Cur   float64 `json:"cur"`
	// Delta is cur−base; for Relative metrics it is normalized by base.
	Delta    float64 `json:"delta"`
	Relative bool    `json:"relative"`
	// Threshold is the noise floor the delta exceeded.
	Threshold float64 `json:"threshold"`
	// Regression reports whether cur moved the bad way (larger time or
	// tax share).
	Regression bool `json:"regression"`
}

// Diff compares two attribution reports with sketch-aware thresholds.
// Quantile metrics are sketch estimates: each can sit anywhere within its
// report's alpha relative error of the true order statistic, so two runs
// of identical workloads can disagree by base.Alpha+cur.Alpha with no
// underlying change — relative movements below that bound plus slack are
// suppressed as noise. Share metrics are ratios of exact totals (no sketch
// error) and use slack directly as an absolute threshold. Returned deltas
// are sorted largest movement first (deterministic tie-break on metric
// then phase); an empty slice means the runs agree within noise.
func Diff(base, cur *AttribReport, slack float64) []PhaseDelta {
	var out []PhaseDelta
	qThresh := base.Alpha + cur.Alpha + slack
	sThresh := math.Max(slack, 1e-9)
	quant := func(metric, phase string, b, c float64) {
		if b == c {
			return
		}
		// A phase absent from one run (base 0) has no meaningful relative
		// scale; a 1ns floor keeps the ratio finite while still flagging
		// any real appearance.
		d := (c - b) / math.Max(b, 1e-9)
		if math.Abs(d) <= qThresh {
			return
		}
		out = append(out, PhaseDelta{Metric: metric, Phase: phase, Base: b, Cur: c,
			Delta: d, Relative: true, Threshold: qThresh, Regression: c > b})
	}
	share := func(metric, phase string, b, c float64) {
		d := c - b
		if math.Abs(d) <= sThresh {
			return
		}
		out = append(out, PhaseDelta{Metric: metric, Phase: phase, Base: b, Cur: c,
			Delta: d, Threshold: sThresh, Regression: c > b})
	}
	quant("latency_p50_sec", "", base.LatencyP50Sec, cur.LatencyP50Sec)
	byPhase := func(stats []PhaseStat) map[string]PhaseStat {
		m := make(map[string]PhaseStat, len(stats))
		for _, s := range stats {
			m[s.Phase] = s
		}
		return m
	}
	curPhases := byPhase(cur.Phases)
	for _, b := range base.Phases {
		c, ok := curPhases[b.Phase]
		if !ok {
			continue
		}
		quant("phase_p50_sec", b.Phase, b.P50Sec, c.P50Sec)
		quant("phase_p95_sec", b.Phase, b.P95Sec, c.P95Sec)
		share("phase_share", b.Phase, b.Share, c.Share)
	}
	if base.ClearCosted && cur.ClearCosted {
		curTax := byPhase(cur.Tax)
		for _, b := range base.Tax {
			if c, ok := curTax[b.Phase]; ok {
				share("tax_share", b.Phase, b.Share, c.Share)
			}
		}
		share("tax_share_mean", "", base.TaxShareMean, cur.TaxShareMean)
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := math.Abs(out[i].Delta), math.Abs(out[j].Delta)
		if di != dj {
			return di > dj
		}
		if out[i].Metric != out[j].Metric {
			return out[i].Metric < out[j].Metric
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}
