// Package obs is the simulator's observability layer: it records the
// scheduler's per-request lifecycle event stream (serve.Observer) and
// aggregates gauge samples into bounded windowed time series, then renders
// both as a Chrome trace-event timeline (Perfetto-loadable), a Prometheus
// text-format snapshot, and a CSV time series. Everything is timestamped
// from the deterministic sim clock — no wall clock anywhere — so identical
// seeds produce byte-identical exports across runs and worker counts. The
// event stream is lossless: ReconcileReport proves a run's timeline
// reconstructs its aggregate serve.Report counters exactly.
package obs

import (
	"math"
	"sort"
	"sync"

	"cllm/internal/serve"
)

// Recorders are created per run and discarded; the underlying event and
// window buffers are the only observation-path allocations that scale with
// run length, so recycled recorders hand them back to package pools for
// the next run to reuse (sync.Pool sheds them under GC pressure).
var (
	eventBufPool = sync.Pool{New: func() any {
		s := make([]serve.Event, 0, 1024)
		return &s
	}}
	windowBufPool = sync.Pool{New: func() any {
		s := make([]Window, 0, 64)
		return &s
	}}
)

// Recorder implements serve.Observer: it keeps the full lifecycle event
// stream and folds gauge samples into a bounded windowed time series.
// Attach one recorder per run (serve.Config.Observer); the scheduler calls
// it synchronously on the simulation goroutine, so no locking is needed —
// and none is done, which is why a recorder must never be shared across
// concurrent runs.
type Recorder struct {
	events []serve.Event
	// good accumulates output tokens of SLO-met finishes per replica;
	// samples fold the running value into the series so windowed goodput
	// differences cleanly (and merges across replicas sum correctly).
	good   []int
	series *TimeSeries
}

// NewRecorder builds a recorder with the default 1-second sampling window
// and a 512-window memory bound.
func NewRecorder() *Recorder { return NewRecorderWindow(1, 512) }

// NewRecorderWindow builds a recorder whose time series starts at
// windowSec-wide windows and holds at most maxWindows of them per replica:
// exceeding the bound coalesces adjacent window pairs and doubles the
// width, so memory stays bounded for arbitrarily long runs while the
// series keeps covering the whole run (deterministic downsampling).
func NewRecorderWindow(windowSec float64, maxWindows int) *Recorder {
	if windowSec <= 0 {
		windowSec = 1
	}
	if maxWindows < 2 {
		maxWindows = 2
	}
	r := &Recorder{series: &TimeSeries{WindowSec: windowSec, maxWindows: maxWindows, reps: map[int][]Window{}}}
	r.events = (*eventBufPool.Get().(*[]serve.Event))[:0]
	return r
}

// Recycle returns the recorder's event and window buffers to the package
// pools. Call it once, after the last read of Events(), Series() or an
// export — slices previously returned by those accessors alias the pooled
// memory and must not be retained. The recorder itself must not be used
// again.
func (r *Recorder) Recycle() {
	ev := r.events[:0]
	r.events = nil
	eventBufPool.Put(&ev)
	for id, ws := range r.series.reps {
		ws = ws[:0]
		windowBufPool.Put(&ws)
		delete(r.series.reps, id)
	}
}

// Event records one lifecycle event.
func (r *Recorder) Event(ev serve.Event) {
	if ev.Kind == serve.EvFinish && ev.SLOMet {
		for len(r.good) <= ev.Replica {
			r.good = append(r.good, 0)
		}
		r.good[ev.Replica] += ev.Tokens
	}
	r.events = append(r.events, ev)
}

// Sample folds one gauge snapshot into the windowed series.
func (r *Recorder) Sample(s serve.Sample) {
	good := 0
	if s.Replica < len(r.good) {
		good = r.good[s.Replica]
	}
	r.series.add(s, good)
}

// Events returns the recorded stream in emission order (shared slice; do
// not mutate).
func (r *Recorder) Events() []serve.Event { return r.events }

// Series returns the windowed time series.
func (r *Recorder) Series() *TimeSeries { return r.series }

// CountKind counts recorded events of one kind.
func (r *Recorder) CountKind(k serve.EventKind) int {
	n := 0
	for _, ev := range r.events {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

// Window aggregates the gauge samples of one aligned time window
// [StartSec, StartSec+width): instantaneous gauges keep their last value
// and in-window peak; token counters keep the cumulative value at the
// window's last sample, so consumers difference adjacent windows for
// rates.
type Window struct {
	StartSec float64
	Samples  int
	// Last value / in-window peak of the instantaneous gauges.
	Queue, QueuePeak     int
	Running, RunningPeak int
	KVInUse, KVInUsePeak int
	KVCached             int
	Swap, SwapPeak       int
	// Cumulative counters at the window's last sample.
	TotalTokens int
	HitTokens   int
	MissTokens  int
	GoodTokens  int
}

// TimeSeries holds per-replica windowed gauge series with bounded memory.
// Windows are aligned to multiples of WindowSec on the sim clock and
// stored sparsely (idle stretches occupy nothing).
type TimeSeries struct {
	// WindowSec is the current window width; it starts at the configured
	// width and doubles whenever the memory bound forces a coalesce.
	WindowSec  float64
	maxWindows int
	reps       map[int][]Window
}

// add folds one sample (and the recorder's running good-token counter)
// into its replica's current window.
func (ts *TimeSeries) add(s serve.Sample, goodTokens int) {
	start := math.Floor(s.TimeSec/ts.WindowSec) * ts.WindowSec
	ws, ok := ts.reps[s.Replica]
	if !ok {
		ws = (*windowBufPool.Get().(*[]Window))[:0]
	}
	if n := len(ws); n == 0 || ws[n-1].StartSec < start {
		ws = append(ws, Window{StartSec: start})
	}
	w := &ws[len(ws)-1]
	w.Samples++
	w.Queue, w.QueuePeak = s.QueueDepth, maxInt(w.QueuePeak, s.QueueDepth)
	w.Running, w.RunningPeak = s.Running, maxInt(w.RunningPeak, s.Running)
	w.KVInUse, w.KVInUsePeak = s.KVBlocksInUse, maxInt(w.KVInUsePeak, s.KVBlocksInUse)
	w.KVCached = s.KVBlocksCached
	w.Swap, w.SwapPeak = s.SwapBlocksInUse, maxInt(w.SwapPeak, s.SwapBlocksInUse)
	w.TotalTokens, w.HitTokens, w.MissTokens = s.TotalTokens, s.HitTokens, s.MissTokens
	w.GoodTokens = goodTokens
	ts.reps[s.Replica] = ws
	if len(ws) > ts.maxWindows {
		ts.coalesce()
	}
	// Sim time is monotone, so samples never land before the last window —
	// the append-only fast path above is the whole insertion logic.
}

// coalesce halves the series' resolution: the window width doubles and
// every replica's windows merge pairwise onto the new alignment. Memory is
// bounded by maxWindows per replica no matter how long the run is.
func (ts *TimeSeries) coalesce() {
	ts.WindowSec *= 2
	for id, ws := range ts.reps {
		out := ws[:0]
		for _, w := range ws {
			start := math.Floor(w.StartSec/ts.WindowSec) * ts.WindowSec
			if n := len(out); n > 0 && out[n-1].StartSec == start {
				out[n-1] = mergeWindows(out[n-1], w)
			} else {
				w.StartSec = start
				out = append(out, w)
			}
		}
		ts.reps[id] = out
	}
}

// mergeWindows folds the later window b into a: peaks take the max, last
// values and cumulative counters come from b.
func mergeWindows(a, b Window) Window {
	a.Samples += b.Samples
	a.Queue, a.QueuePeak = b.Queue, maxInt(a.QueuePeak, b.QueuePeak)
	a.Running, a.RunningPeak = b.Running, maxInt(a.RunningPeak, b.RunningPeak)
	a.KVInUse, a.KVInUsePeak = b.KVInUse, maxInt(a.KVInUsePeak, b.KVInUsePeak)
	a.KVCached = b.KVCached
	a.Swap, a.SwapPeak = b.Swap, maxInt(a.SwapPeak, b.SwapPeak)
	a.TotalTokens, a.HitTokens, a.MissTokens = b.TotalTokens, b.HitTokens, b.MissTokens
	a.GoodTokens = b.GoodTokens
	return a
}

// Replicas returns the replica indices with recorded samples, ascending.
func (ts *TimeSeries) Replicas() []int {
	ids := make([]int, 0, len(ts.reps))
	for id := range ts.reps {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Replica returns one replica's windows in time order (shared slice).
func (ts *TimeSeries) Replica(id int) []Window { return ts.reps[id] }

// Merged returns the fleet-wide series, the windowed analogue of
// serve.MergeReports: for every aligned window any replica sampled,
// per-replica values are summed. A replica without a sample in some
// window contributes its previous window's gauge values and cumulative
// counters (a gauge holds its level between samples) — and nothing before
// its first sample. Like MergeReports' peak handling, summed peaks may
// combine maxima from different instants: an upper bound, not a joint
// snapshot.
func (ts *TimeSeries) Merged() []Window {
	ids := ts.Replicas()
	if len(ids) == 0 {
		return nil
	}
	if len(ids) == 1 {
		return append([]Window(nil), ts.reps[ids[0]]...)
	}
	startSet := map[float64]bool{}
	for _, id := range ids {
		for _, w := range ts.reps[id] {
			startSet[w.StartSec] = true
		}
	}
	starts := make([]float64, 0, len(startSet))
	for s := range startSet {
		starts = append(starts, s)
	}
	sort.Float64s(starts)
	pos := make([]int, len(ids)) // next unconsumed window per replica
	carry := make([]*Window, len(ids))
	out := make([]Window, 0, len(starts))
	for _, start := range starts {
		m := Window{StartSec: start}
		for i, id := range ids {
			ws := ts.reps[id]
			if pos[i] < len(ws) && ws[pos[i]].StartSec == start {
				w := ws[pos[i]]
				pos[i]++
				carry[i] = &ws[pos[i]-1]
				m.Samples += w.Samples
				m.Queue += w.Queue
				m.QueuePeak += w.QueuePeak
				m.Running += w.Running
				m.RunningPeak += w.RunningPeak
				m.KVInUse += w.KVInUse
				m.KVInUsePeak += w.KVInUsePeak
				m.KVCached += w.KVCached
				m.Swap += w.Swap
				m.SwapPeak += w.SwapPeak
				m.TotalTokens += w.TotalTokens
				m.HitTokens += w.HitTokens
				m.MissTokens += w.MissTokens
				m.GoodTokens += w.GoodTokens
			} else if c := carry[i]; c != nil {
				m.Queue += c.Queue
				m.QueuePeak += c.Queue
				m.Running += c.Running
				m.RunningPeak += c.Running
				m.KVInUse += c.KVInUse
				m.KVInUsePeak += c.KVInUse
				m.KVCached += c.KVCached
				m.Swap += c.Swap
				m.SwapPeak += c.Swap
				m.TotalTokens += c.TotalTokens
				m.HitTokens += c.HitTokens
				m.MissTokens += c.MissTokens
				m.GoodTokens += c.GoodTokens
			}
		}
		out = append(out, m)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
