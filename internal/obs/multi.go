package obs

import (
	"reflect"

	"cllm/internal/serve"
)

// multiObserver fans the stream out to each observer in order.
type multiObserver []serve.Observer

// Event implements serve.Observer.
func (m multiObserver) Event(ev serve.Event) {
	for _, o := range m {
		o.Event(ev)
	}
}

// Sample implements serve.Observer.
func (m multiObserver) Sample(s serve.Sample) {
	for _, o := range m {
		o.Sample(s)
	}
}

// Multi combines observers into one serve.Observer that forwards every
// event and sample to each, in argument order. Nil entries — including
// typed nils like a nil *Recorder, the usual footgun of optional observer
// wiring — are dropped; with none left Multi returns nil (observation
// disabled — the scheduler's nil check keeps the fast path), and a single
// survivor is returned unwrapped. This is how a Recorder and an
// Attribution co-attach to one run's serve.Config.Observer.
func Multi(obs ...serve.Observer) serve.Observer {
	out := make([]serve.Observer, 0, len(obs))
	for _, o := range obs {
		if o == nil {
			continue
		}
		if v := reflect.ValueOf(o); v.Kind() == reflect.Pointer && v.IsNil() {
			continue
		}
		out = append(out, o)
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return multiObserver(out)
}
