package obs

import (
	"bytes"
	"fmt"

	"cllm/internal/stats"
)

// PhaseCSV renders the report as CSV: one row per latency phase and — when
// the run was clear-costed — one per TEE-tax component. Rows are written in
// fixed phase order, so identical reports serialize byte-identically.
func (r *AttribReport) PhaseCSV() []byte {
	var buf bytes.Buffer
	buf.WriteString("platform,metric,phase,count,total_sec,share,mean_sec,p50_sec,p95_sec,p99_sec\n")
	row := func(metric string, s PhaseStat) {
		fmt.Fprintf(&buf, "%s,%s,%s,%d,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g\n",
			r.Platform, metric, s.Phase, s.Count, s.TotalSec, s.Share, s.MeanSec, s.P50Sec, s.P95Sec, s.P99Sec)
	}
	for _, s := range r.Phases {
		row("phase", s)
	}
	for _, s := range r.Tax {
		row("tee-tax", s)
	}
	return buf.Bytes()
}

// phaseBuckets is the fixed le ladder of the phase histograms — wide enough
// to cover millisecond decode rounds through multi-minute queue waits, and
// identical across runs so exported families always align for diffing.
var phaseBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 25, 50, 100, 250, 1000,
}

// PrometheusText renders the attribution as Prometheus text-exposition
// histogram families: cllm_phase_latency_seconds with one series per phase,
// and — when the run was clear-costed — cllm_phase_tee_tax_seconds per tax
// component plus the aggregate tax-share gauges. Cumulative bucket counts
// come from the sketches' CountLE, so each count is within the sketch's
// alpha relative error at the bucket boundary while _sum and _count are
// exact. Fixed emission order: identical attributions serialize
// byte-identically, and the output concatenates cleanly after
// PrometheusText(report).
func (a *Attribution) PrometheusText(platform string) []byte {
	var buf bytes.Buffer
	series := func(name, phase string, sk *stats.Sketch, totalSec float64) {
		lbl := fmt.Sprintf("platform=%q,phase=%q", platform, phase)
		for _, le := range phaseBuckets {
			fmt.Fprintf(&buf, "cllm_%s_bucket{%s,le=\"%g\"} %d\n", name, lbl, le, sk.CountLE(le))
		}
		fmt.Fprintf(&buf, "cllm_%s_bucket{%s,le=\"+Inf\"} %d\n", name, lbl, sk.Count())
		fmt.Fprintf(&buf, "cllm_%s_sum{%s} %g\n", name, lbl, totalSec)
		fmt.Fprintf(&buf, "cllm_%s_count{%s} %d\n", name, lbl, sk.Count())
	}
	head := func(name, help string) {
		fmt.Fprintf(&buf, "# HELP cllm_%s %s\n# TYPE cllm_%s histogram\n", name, help, name)
	}
	head("phase_latency_seconds", "Per-request time spent in each latency phase.")
	for p := Phase(0); p < NumPhases; p++ {
		series("phase_latency_seconds", p.String(), a.phase[p], a.phaseSec[p])
	}
	if a.clearCosted {
		head("phase_tee_tax_seconds", "Per-request confidential-vs-clear cost delta per phase.")
		for i, ph := range taxPhases {
			series("phase_tee_tax_seconds", ph.String(), a.tax[i], a.taxSec[i])
		}
		lbl := fmt.Sprintf("platform=%q", platform)
		taxTot := 0.0
		for _, t := range a.taxSec {
			taxTot += t
		}
		share := 0.0
		if a.latSec > 0 {
			share = taxTot / a.latSec
		}
		fmt.Fprintf(&buf, "# HELP cllm_tee_tax_share Aggregate TEE tax as a fraction of completed latency.\n# TYPE cllm_tee_tax_share gauge\ncllm_tee_tax_share{%s} %g\n", lbl, share)
		fmt.Fprintf(&buf, "# HELP cllm_tee_tax_share_p50 Median per-request TEE tax share of latency.\n# TYPE cllm_tee_tax_share_p50 gauge\ncllm_tee_tax_share_p50{%s} %g\n", lbl, a.taxShare.Quantile(0.5))
	}
	return buf.Bytes()
}
