package obs

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"cllm/internal/serve"
	"cllm/internal/tee"
)

func TestSplitRoundExact(t *testing.T) {
	cases := []struct {
		d               int64
		pref, dec, swap float64
	}{
		{1_000_000, 0.2, 0.7, 0.1},
		{1_000_000, 0, 1, 0},
		{1_000_000, 1, 0, 0},
		{1_000_000, 0, 0, 1},
		{1, 0.3, 0.3, 0.4},
		{0, 0.5, 0.5, 0},
		{999_999_999_999, 1e-12, 0.9, 0.1},
		{7, 0.33, 0.33, 0.34},
		{123_456_789, 5e-3, 1.2, 0.04},
		{1_000_000, 0, 0, 0}, // defensive: no modeled work
	}
	for _, c := range cases {
		p, d, s := splitRound(c.d, c.pref, c.dec, c.swap)
		if p < 0 || d < 0 || s < 0 {
			t.Fatalf("splitRound(%d, %g, %g, %g) produced a negative part: %d %d %d",
				c.d, c.pref, c.dec, c.swap, p, d, s)
		}
		if p+d+s != c.d {
			t.Fatalf("splitRound(%d, %g, %g, %g) = %d+%d+%d != %d",
				c.d, c.pref, c.dec, c.swap, p, d, s, c.d)
		}
	}
}

// attribRun runs the pressure scenario with a recorder and an attribution
// engine co-attached (and a clear-hardware coster so tax fields are live).
func attribRun(t *testing.T) (*serve.Report, *Recorder, *Attribution) {
	t.Helper()
	be, cfg := pressureSetup()
	rec := NewRecorderWindow(0.05, 512)
	a, err := NewAttribution(0, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observer = Multi(rec, a)
	if cfg.ClearCoster, err = serve.NewClearStepCoster(be, cfg); err != nil {
		t.Fatal(err)
	}
	rep, err := serve.Run(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep, rec, a
}

func TestAttributionConservation(t *testing.T) {
	be, cfg := pressureSetup()
	base, err := serve.Run(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, rec, a := attribRun(t)
	// Attribution and the clear coster must not perturb the run.
	if !reflect.DeepEqual(base, rep) {
		t.Fatal("attaching attribution + clear coster changed the report")
	}
	arep := a.Report(rep.Platform)
	if len(arep.Violations) != 0 {
		t.Fatalf("conservation violations:\n%s", strings.Join(arep.Violations, "\n"))
	}
	if int(arep.Completed) != rep.Completed || int(arep.Dropped) != rep.Dropped ||
		int(arep.Unfinished) != rep.Unfinished {
		t.Fatalf("partition: attribution %d/%d/%d, report %d/%d/%d",
			arep.Completed, arep.Dropped, arep.Unfinished, rep.Completed, rep.Dropped, rep.Unfinished)
	}
	var phaseTot, shareTot float64
	for _, p := range arep.Phases {
		phaseTot += p.TotalSec
		shareTot += p.Share
	}
	if !relClose(phaseTot, arep.LatencyTotalSec) {
		t.Fatalf("phases sum to %g s, latency total is %g s", phaseTot, arep.LatencyTotalSec)
	}
	if math.Abs(shareTot-1) > 1e-9 {
		t.Fatalf("phase shares sum to %g, want 1", shareTot)
	}
	if bad := ReconcilePhases(rec.Events(), rep); len(bad) != 0 {
		t.Fatalf("phase reconciliation failed:\n%s", strings.Join(bad, "\n"))
	}
	// A truncated stream must not reconcile: dropping the tail loses
	// finalizations the report counts.
	events := rec.Events()
	if bad := ReconcilePhases(events[:len(events)/2], rep); len(bad) == 0 {
		t.Fatal("truncated event stream reconciled cleanly")
	}
	// The memory-starved enclave pays EPC paging on every phase: prefill
	// and decode must both carry attributed time, and the swap-preemption
	// pressure must surface as stall and swap-transfer time.
	byName := map[string]PhaseStat{}
	for _, p := range arep.Phases {
		byName[p.Phase] = p
	}
	for _, name := range []string{"prefill", "decode", "preempt-stall", "swap-transfer"} {
		if byName[name].TotalSec <= 0 {
			t.Fatalf("phase %s attributed no time: %+v", name, byName[name])
		}
	}
}

func TestAttributionFleetConservation(t *testing.T) {
	be, cfg := pressureSetup()
	rec := NewRecorderWindow(0.05, 512)
	a, err := NewAttribution(0, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observer = Multi(rec, a)
	fr, err := serve.RunFleet(be, cfg, serve.FleetConfig{Replicas: 2, Policy: serve.RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	if bad := ReconcilePhases(rec.Events(), fr.Aggregate); len(bad) != 0 {
		t.Fatalf("fleet phase reconciliation failed:\n%s", strings.Join(bad, "\n"))
	}
	if arep := a.Report("fleet"); len(arep.Violations) != 0 {
		t.Fatalf("fleet conservation violations:\n%s", strings.Join(arep.Violations, "\n"))
	}
}

func TestAttributionSketchedEpochs(t *testing.T) {
	be, cfg := pressureSetup()
	cfg.QuantileMode = serve.QuantileSketch
	cfg.EpochRequests = 4
	rec := NewRecorder()
	a, err := NewAttribution(0, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observer = Multi(rec, a)
	rep, err := serve.Run(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sketched {
		t.Fatal("expected a sketched report")
	}
	if bad := ReconcilePhases(rec.Events(), rep); len(bad) != 0 {
		t.Fatalf("sketched phase reconciliation failed:\n%s", strings.Join(bad, "\n"))
	}
	if arep := a.Report(rep.Platform); len(arep.Violations) != 0 {
		t.Fatalf("epoch-sharded conservation violations:\n%s", strings.Join(arep.Violations, "\n"))
	}
}

// TestAttributionMergeExact: merging two attributions yields the same
// quantiles as one engine folding both event streams — sketch merges are
// exact integer-bucket additions.
func TestAttributionMergeExact(t *testing.T) {
	rep, rec, _ := attribRun(t)
	if rep.Unfinished != 0 {
		t.Fatalf("scenario left %d unfinished requests; stream replay needs a drained run", rep.Unfinished)
	}
	events := rec.Events()
	mk := func() *Attribution {
		a, err := NewAttribution(0, false)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a1, a2, seq := mk(), mk(), mk()
	for _, ev := range events {
		a1.Event(ev)
		seq.Event(ev)
	}
	for _, ev := range events {
		a2.Event(ev)
		seq.Event(ev)
	}
	if err := a1.Merge(a2); err != nil {
		t.Fatal(err)
	}
	got, want := a1.Report("x"), seq.Report("x")
	if got.Completed != want.Completed || got.Completed != 2*int64(rep.Completed) {
		t.Fatalf("merged completed %d, sequential %d, run completed %d", got.Completed, want.Completed, rep.Completed)
	}
	// Quantiles and counts are bit-exact (integer bucket merges); totals
	// are float sums and only reorder-tolerant.
	for i := range got.Phases {
		g, w := got.Phases[i], want.Phases[i]
		if g.Count != w.Count || g.P50Sec != w.P50Sec || g.P95Sec != w.P95Sec || g.P99Sec != w.P99Sec {
			t.Fatalf("merged phase %s differs from sequential fold:\n%+v\n%+v", g.Phase, g, w)
		}
		if !relClose(g.TotalSec, w.TotalSec) {
			t.Fatalf("merged phase %s total %g vs sequential %g", g.Phase, g.TotalSec, w.TotalSec)
		}
	}
	if got.LatencyP50Sec != want.LatencyP50Sec {
		t.Fatalf("merged latency p50 %g != sequential %g", got.LatencyP50Sec, want.LatencyP50Sec)
	}
}

// tdxSetup prices the pressure workload on TDX (protected, no EPC) so the
// clear-hardware delta is strictly positive.
func tdxSetup() (serve.Backend, serve.Config) {
	be, cfg := pressureSetup()
	be.CPU.Platform = tee.TDX()
	return be, cfg
}

func TestAttributionTax(t *testing.T) {
	be, cfg := tdxSetup()
	a, err := NewAttribution(0, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observer = a
	if cfg.ClearCoster, err = serve.NewClearStepCoster(be, cfg); err != nil {
		t.Fatal(err)
	}
	rep, err := serve.Run(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	arep := a.Report(rep.Platform)
	if len(arep.Violations) != 0 {
		t.Fatalf("conservation violations:\n%s", strings.Join(arep.Violations, "\n"))
	}
	if !arep.ClearCosted || len(arep.Tax) != 3 {
		t.Fatalf("expected a clear-costed report with 3 tax rows, got %+v", arep)
	}
	if arep.TaxTotalSec <= 0 {
		t.Fatal("TDX run attributed no TEE tax")
	}
	byName := map[string]PhaseStat{}
	for _, s := range arep.Tax {
		byName[s.Phase] = s
		if s.TotalSec < 0 {
			t.Fatalf("negative tax component %+v", s)
		}
	}
	if byName["decode"].TotalSec <= 0 || byName["prefill"].TotalSec <= 0 {
		t.Fatalf("TDX compute tax missing: %+v", arep.Tax)
	}
	if arep.TaxShareMean <= 0 || arep.TaxShareMean >= 1 {
		t.Fatalf("tax share mean %g outside (0, 1)", arep.TaxShareMean)
	}
	if arep.TaxShareP50 <= 0 || arep.TaxShareP50 >= 1 {
		t.Fatalf("tax share p50 %g outside (0, 1)", arep.TaxShareP50)
	}
	// The tax can never exceed the phase it came from.
	phases := map[string]PhaseStat{}
	for _, p := range arep.Phases {
		phases[p.Phase] = p
	}
	for _, s := range arep.Tax {
		if s.TotalSec > phases[s.Phase].TotalSec*(1+1e-9) {
			t.Fatalf("tax %s %g s exceeds its phase total %g s", s.Phase, s.TotalSec, phases[s.Phase].TotalSec)
		}
	}
}

// TestAttributionTaxZeroOnClearHardware: an unprotected platform is its own
// clear twin, so the counterfactual components coincide and the tax is
// exactly zero — not merely small.
func TestAttributionTaxZeroOnClearHardware(t *testing.T) {
	rep, _, a := attribRun(t) // pressure scenario runs on an unprotected CPU
	_ = rep
	arep := a.Report("clear")
	if !arep.ClearCosted {
		t.Fatal("expected a clear-costed report")
	}
	if arep.TaxTotalSec != 0 || arep.TaxShareMean != 0 || arep.TaxShareP50 != 0 {
		t.Fatalf("unprotected platform attributed nonzero tax: total %g share %g p50 %g",
			arep.TaxTotalSec, arep.TaxShareMean, arep.TaxShareP50)
	}
	for _, s := range arep.Tax {
		if s.TotalSec != 0 || s.P99Sec != 0 {
			t.Fatalf("unprotected platform has nonzero tax row %+v", s)
		}
	}
}

func TestPhaseCSVShape(t *testing.T) {
	rep, _, a := attribRun(t)
	arep := a.Report(rep.Platform)
	rows, err := csv.NewReader(bytes.NewReader(arep.PhaseCSV())).ReadAll()
	if err != nil {
		t.Fatalf("phase breakdown is not valid CSV: %v", err)
	}
	if rows[0][0] != "platform" || rows[0][2] != "phase" || len(rows[0]) != 10 {
		t.Fatalf("unexpected header %v", rows[0])
	}
	// 6 phase rows, then 3 tax rows on a clear-costed run.
	if len(rows) != 1+int(NumPhases)+3 {
		t.Fatalf("expected %d rows, got %d", 1+int(NumPhases)+3, len(rows))
	}
	for i, row := range rows[1:] {
		if len(row) != len(rows[0]) {
			t.Fatalf("row %d has %d fields, header has %d", i+1, len(row), len(rows[0]))
		}
	}
	if rows[1][1] != "phase" || rows[1][2] != "queue" || rows[7][1] != "tee-tax" {
		t.Fatalf("unexpected row layout: %v / %v", rows[1], rows[7])
	}
}

func TestAttributionPrometheusText(t *testing.T) {
	rep, _, a := attribRun(t)
	text := string(a.PrometheusText(rep.Platform))
	for _, want := range []string{
		"# TYPE cllm_phase_latency_seconds histogram",
		`cllm_phase_latency_seconds_bucket{platform="tiny-enclave",phase="queue",le="+Inf"}`,
		"# TYPE cllm_phase_tee_tax_seconds histogram",
		"cllm_tee_tax_share{",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition is missing %q", want)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "cllm_") || len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
	// Bucket counts are cumulative: nondecreasing in le, +Inf equals _count.
	for p := Phase(0); p < NumPhases; p++ {
		prefix := `cllm_phase_latency_seconds_bucket{platform="tiny-enclave",phase="` + p.String() + `",le=`
		prev := int64(-1)
		var last int64
		for _, line := range strings.Split(text, "\n") {
			if !strings.HasPrefix(line, prefix) {
				continue
			}
			v, err := strconv.ParseInt(strings.Fields(line)[1], 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			if v < prev {
				t.Fatalf("bucket counts not cumulative for %v: %q", p, line)
			}
			prev, last = v, v
		}
		if last != a.phase[p].Count() {
			t.Fatalf("+Inf bucket %d != count %d for %v", last, a.phase[p].Count(), p)
		}
	}
	// Determinism: an identical run serializes byte-identically.
	rep2, _, a2 := attribRun(t)
	if !bytes.Equal(a.PrometheusText(rep.Platform), a2.PrometheusText(rep2.Platform)) {
		t.Fatal("identical runs produced different phase expositions")
	}
}

func TestPerfettoCounterTracks(t *testing.T) {
	_, rec, a := attribRun(t)
	raw := rec.PerfettoTraceWithCounters(a)
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace with counters is not valid JSON: %v", err)
	}
	counters := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "C" {
			counters[ev["name"].(string)]++
			args, ok := ev["args"].(map[string]any)
			if !ok || len(args) == 0 {
				t.Fatalf("counter event without args: %v", ev)
			}
		}
	}
	if counters["phase_seconds"] == 0 {
		t.Fatal("trace has no phase_seconds counter track")
	}
	if counters["tee_tax_seconds"] == 0 {
		t.Fatal("clear-costed trace has no tee_tax_seconds counter track")
	}
	// Without an attribution the trace is unchanged from PerfettoTrace.
	if !bytes.Equal(rec.PerfettoTrace(), rec.perfettoTrace(nil)) {
		t.Fatal("PerfettoTrace changed under refactor")
	}
}

func TestAttributionBoundedCounters(t *testing.T) {
	be, cfg := pressureSetup()
	a, err := NewAttributionWindow(0, false, 1e-4, 8) // tiny windows force coalescing
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observer = a
	if _, err := serve.Run(be, cfg); err != nil {
		t.Fatal(err)
	}
	if n := len(a.counters.wins); n > 8 {
		t.Fatalf("counter series holds %d windows, bound is 8", n)
	}
	if a.counters.windowSec <= 1e-4 {
		t.Fatalf("counter window width never doubled: %g", a.counters.windowSec)
	}
	// All in-flight state drained back to the freelist.
	if len(a.reqs) != 0 {
		t.Fatalf("%d requests still in flight after a drained run", len(a.reqs))
	}
}

func TestMultiObserver(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of no observers should be nil")
	}
	rec := NewRecorder()
	if Multi(nil, rec) != serve.Observer(rec) {
		t.Fatal("Multi of one observer should return it unwrapped")
	}
	m := Multi(rec, NewRecorder())
	ev := serve.Event{Kind: serve.EvArrive, ReqID: 1}
	m.Event(ev)
	m.Sample(serve.Sample{TimeSec: 0.5})
	if len(rec.Events()) != 1 {
		t.Fatal("Multi did not forward the event")
	}
}

func TestDiff(t *testing.T) {
	rep, _, a := attribRun(t)
	base := a.Report(rep.Platform)
	if deltas := Diff(base, base, 0); len(deltas) != 0 {
		t.Fatalf("identical reports diffed: %+v", deltas)
	}
	clone := func() *AttribReport {
		raw, err := json.Marshal(base)
		if err != nil {
			t.Fatal(err)
		}
		var c AttribReport
		if err := json.Unmarshal(raw, &c); err != nil {
			t.Fatal(err)
		}
		return &c
	}
	// A 50% decode-p50 regression far exceeds the sketch noise floor.
	cur := clone()
	for i := range cur.Phases {
		if cur.Phases[i].Phase == "decode" {
			cur.Phases[i].P50Sec *= 1.5
		}
	}
	deltas := Diff(base, cur, 0.01)
	found := false
	for _, d := range deltas {
		if d.Metric == "phase_p50_sec" && d.Phase == "decode" {
			found = true
			if !d.Regression || !d.Relative || math.Abs(d.Delta-0.5) > 1e-9 {
				t.Fatalf("decode regression misreported: %+v", d)
			}
		}
	}
	if !found {
		t.Fatalf("decode p50 regression not flagged: %+v", deltas)
	}
	// Movement inside the combined sketch error is noise and suppressed.
	cur = clone()
	for i := range cur.Phases {
		cur.Phases[i].P50Sec *= 1 + 0.9*(base.Alpha+cur.Alpha)
	}
	for _, d := range Diff(base, cur, 0) {
		if d.Metric == "phase_p50_sec" {
			t.Fatalf("within-noise movement flagged: %+v", d)
		}
	}
	// An improvement is reported but not a regression.
	cur = clone()
	cur.LatencyP50Sec *= 0.5
	for _, d := range Diff(base, cur, 0) {
		if d.Metric == "latency_p50_sec" && d.Regression {
			t.Fatalf("improvement reported as regression: %+v", d)
		}
	}
}

// TestMultiObserverTypedNil: optional observer wiring hands Multi typed
// nil pointers; they must be dropped like untyped nils.
func TestMultiObserverTypedNil(t *testing.T) {
	var rec *Recorder
	var a *Attribution
	if Multi(rec, a) != nil {
		t.Fatal("Multi of typed nils should be nil")
	}
	live := NewRecorder()
	if Multi(rec, live) != serve.Observer(live) {
		t.Fatal("Multi should drop the typed nil and unwrap the survivor")
	}
}
