package obs

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"cllm/internal/dtype"
	"cllm/internal/hw"
	"cllm/internal/mem"
	"cllm/internal/model"
	"cllm/internal/perf"
	"cllm/internal/serve"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

func tinyModel() model.Config {
	return model.Config{
		Name: "tiny", HiddenDim: 256, Layers: 4, Heads: 8, KVHeads: 8,
		FFDim: 512, VocabSize: 1024, ContextLen: 2048, NormEps: 1e-5, RopeTheta: 10000,
	}
}

// pressureSetup builds a memory-starved enclave backend and a config that
// exercises every event kind: chunked prefill, prefix sharing, swap-to-host
// preemption, and one request that can never fit (a drop).
func pressureSetup() (serve.Backend, serve.Config) {
	m := tinyModel()
	wl := trace.Workload{Model: m, Kind: dtype.BF16, InputLen: 64, OutputLen: 16}
	weights := int64(trace.WeightFootprint(wl))
	perToken := m.KVCacheBytesPerToken(2)
	p := tee.Baremetal()
	p.Name = "tiny-enclave"
	p.EPC = mem.EPC{Size: weights + 160*perToken, PageInCostFactor: 1}
	be := serve.Backend{CPU: perf.CPURun{CPU: hw.EMR1(), Platform: p, Sockets: 1, AMX: true}}
	tr := make([]serve.Request, 0, 17)
	for i := 0; i < 16; i++ {
		r := serve.Request{ID: i, ArrivalSec: float64(i) * 0.002, InputLen: 64, OutputLen: 32}
		if i%2 == 0 {
			r.PrefixID, r.PrefixLen = 1, 32
		}
		tr = append(tr, r)
	}
	tr = append(tr, serve.Request{ID: 16, ArrivalSec: 0.033, InputLen: 1024, OutputLen: 4}) // can never fit
	cfg := serve.Config{
		Workload: wl, Trace: tr, Seed: 7,
		ChunkTokens: 32, PrefixSharing: true, PreemptPolicy: serve.PreemptSwap,
	}
	return be, cfg
}

func TestRecorderConservationAndCounts(t *testing.T) {
	be, cfg := pressureSetup()
	rec := NewRecorder()
	cfg.Observer = rec
	rep, err := serve.Run(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The scenario must actually exercise the full event vocabulary.
	for _, k := range []serve.EventKind{
		serve.EvArrive, serve.EvAdmit, serve.EvPrefillChunk, serve.EvFirstToken,
		serve.EvDecodeRound, serve.EvPreempt, serve.EvSwapOut, serve.EvSwapIn,
		serve.EvDrop, serve.EvFinish,
	} {
		if rec.CountKind(k) == 0 {
			t.Errorf("scenario emitted no %v events", k)
		}
	}
	if bad := ReconcileReport(rec.Events(), rep); len(bad) != 0 {
		t.Fatalf("event stream does not reconstruct the report:\n%s", strings.Join(bad, "\n"))
	}
	if got := rec.CountKind(serve.EvFinish); got != rep.Completed {
		t.Fatalf("finish events %d != completed %d", got, rep.Completed)
	}
	if got := rec.CountKind(serve.EvArrive); got != rep.Completed+rep.Dropped+rep.Unfinished {
		t.Fatalf("arrive events %d != offered %d", got, rep.Completed+rep.Dropped+rep.Unfinished)
	}
	// Swap events carry payloads and priced transfer times.
	for _, ev := range rec.Events() {
		if ev.Kind == serve.EvSwapOut && (ev.Bytes <= 0 || ev.XferSec <= 0) {
			t.Fatalf("swap-out without priced payload: %+v", ev)
		}
	}
}

func TestObserverDoesNotPerturbResults(t *testing.T) {
	be, cfg := pressureSetup()
	base, err := serve.Run(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observer = NewRecorder()
	observed, err := serve.Run(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, observed) {
		t.Fatalf("attaching an observer changed the report:\nbase     %+v\nobserved %+v", base, observed)
	}
}

func TestFleetConservationAndByteIdenticalExports(t *testing.T) {
	be, cfg := pressureSetup()
	run := func() (*serve.FleetReport, *Recorder) {
		c := cfg
		rec := NewRecorderWindow(0.05, 512)
		c.Observer = rec
		fr, err := serve.RunFleet(be, c, serve.FleetConfig{Replicas: 2, Policy: serve.RoundRobin})
		if err != nil {
			t.Fatal(err)
		}
		return fr, rec
	}
	fr1, rec1 := run()
	fr2, rec2 := run()
	if bad := ReconcileReport(rec1.Events(), fr1.Aggregate); len(bad) != 0 {
		t.Fatalf("fleet event stream does not reconstruct the aggregate:\n%s", strings.Join(bad, "\n"))
	}
	if !reflect.DeepEqual(rec1.Events(), rec2.Events()) {
		t.Fatal("identical fleet runs recorded different event streams")
	}
	if !reflect.DeepEqual(fr1.Aggregate, fr2.Aggregate) {
		t.Fatal("identical fleet runs produced different aggregates")
	}
	for _, pair := range [][2][]byte{
		{rec1.PerfettoTrace(), rec2.PerfettoTrace()},
		{PrometheusText(fr1.Aggregate), PrometheusText(fr2.Aggregate)},
		{rec1.TimeseriesCSV(), rec2.TimeseriesCSV()},
	} {
		if !bytes.Equal(pair[0], pair[1]) {
			t.Fatal("identical runs produced different export bytes")
		}
	}
	// Both replicas sampled, and the events carry both replica labels.
	if got := rec1.Series().Replicas(); len(got) != 2 {
		t.Fatalf("expected 2 replica series, got %v", got)
	}
}

func TestPerfettoTraceWellFormed(t *testing.T) {
	be, cfg := pressureSetup()
	rec := NewRecorder()
	cfg.Observer = rec
	if _, err := serve.Run(be, cfg); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.PerfettoTrace(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	spans, instants := 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			spans++
			if d, ok := ev["dur"].(float64); !ok || d < 0 {
				t.Fatalf("span with bad duration: %v", ev)
			}
		case "i":
			instants++
		case "M":
		default:
			t.Fatalf("unexpected phase in %v", ev)
		}
	}
	if spans == 0 || instants == 0 {
		t.Fatalf("expected spans and instants, got %d/%d", spans, instants)
	}
}

func TestPrometheusTextShape(t *testing.T) {
	be, cfg := pressureSetup()
	rep, err := serve.Run(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	text := string(PrometheusText(rep))
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "cllm_") || !strings.Contains(line, `platform="tiny-enclave"`) ||
			len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
	for _, want := range []string{
		"cllm_requests_completed_total", "cllm_swap_outs_total",
		"cllm_ttft_seconds{", "cllm_goodput_tokens_per_sec",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition is missing %s", want)
		}
	}
}

func TestTimeSeriesBoundedMemory(t *testing.T) {
	be, cfg := pressureSetup()
	rec := NewRecorderWindow(1e-4, 8) // tiny windows force repeated coalescing
	cfg.Observer = rec
	rep, err := serve.Run(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := rec.Series()
	for _, id := range ts.Replicas() {
		if n := len(ts.Replica(id)); n > 8 {
			t.Fatalf("replica %d holds %d windows, bound is 8", id, n)
		}
	}
	if ts.WindowSec <= 1e-4 {
		t.Fatalf("window width never doubled: %g", ts.WindowSec)
	}
	merged := ts.Merged()
	if len(merged) == 0 {
		t.Fatal("no merged windows")
	}
	// The last window's cumulative counter covers the whole run.
	if got := merged[len(merged)-1].TotalTokens; got != rep.TotalTokens {
		t.Fatalf("final cumulative tokens %d != report total %d", got, rep.TotalTokens)
	}
}

func TestMergedSeriesSumsAndCarries(t *testing.T) {
	rec := NewRecorderWindow(1, 100)
	add := func(t float64, replica, queue, tok int) {
		rec.Sample(serve.Sample{TimeSec: t, Replica: replica, QueueDepth: queue, TotalTokens: tok})
	}
	add(0.5, 0, 3, 10)
	add(0.5, 1, 2, 5)
	add(1.5, 0, 1, 20) // replica 1 idle in window [1,2): its gauges carry
	m := rec.Series().Merged()
	if len(m) != 2 {
		t.Fatalf("expected 2 merged windows, got %d", len(m))
	}
	if m[0].Queue != 5 || m[0].TotalTokens != 15 {
		t.Fatalf("window 0 queue/tokens = %d/%d, want 5/15", m[0].Queue, m[0].TotalTokens)
	}
	if m[1].Queue != 1+2 || m[1].TotalTokens != 20+5 {
		t.Fatalf("window 1 should carry replica 1 forward: queue/tokens = %d/%d, want 3/25",
			m[1].Queue, m[1].TotalTokens)
	}
}

func TestTimeseriesCSVShape(t *testing.T) {
	be, cfg := pressureSetup()
	rec := NewRecorderWindow(0.05, 512)
	cfg.Observer = rec
	if _, err := serve.Run(be, cfg); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(bytes.NewReader(rec.TimeseriesCSV())).ReadAll()
	if err != nil {
		t.Fatalf("time series is not valid CSV: %v", err)
	}
	if len(rows) < 3 {
		t.Fatalf("expected several windows, got %d rows", len(rows))
	}
	for i, row := range rows {
		if len(row) != len(rows[0]) {
			t.Fatalf("row %d has %d fields, header has %d", i, len(row), len(rows[0]))
		}
	}
	if rows[0][0] != "window_start_sec" {
		t.Fatalf("unexpected header %v", rows[0])
	}
}

// TestReconcileSketchedReport: the event stream reconciles against a
// bounded-memory (sketched) report too — counters and goodput exactly,
// quantiles bit-for-bit against sketches rebuilt from the events — and a
// corrupted sketched report is caught. The pressure scenario crosses
// several epoch seams, so the reconciliation also witnesses that epoch
// handoffs lose no events.
func TestReconcileSketchedReport(t *testing.T) {
	be, cfg := pressureSetup()
	cfg.QuantileMode = serve.QuantileSketch
	cfg.EpochRequests = 4
	rec := NewRecorder()
	cfg.Observer = rec
	rep, err := serve.Run(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sketched || rep.Requests != nil {
		t.Fatalf("expected a sketched report without a request ledger, got Sketched=%v len(Requests)=%d",
			rep.Sketched, len(rep.Requests))
	}
	if bad := ReconcileReport(rec.Events(), rep); len(bad) != 0 {
		t.Fatalf("event stream does not reconstruct the sketched report:\n%s", strings.Join(bad, "\n"))
	}
	broken := *rep
	broken.GoodRequests++
	if bad := ReconcileReport(rec.Events(), &broken); len(bad) == 0 {
		t.Fatal("corrupted goodput counter reconciled cleanly")
	}
	broken = *rep
	broken.TTFT.P99 *= 2
	if bad := ReconcileReport(rec.Events(), &broken); len(bad) == 0 {
		t.Fatal("corrupted sketched quantile reconciled cleanly")
	}
}

// TestWindowCoalescingEdges pins the coalescing corner cases: a
// sub-minimum window bound is clamped to 2, a lone sample far past the
// horizon lands in one aligned window without coalescing, and a
// zero-duration (sample-free) run renders an empty series.
func TestWindowCoalescingEdges(t *testing.T) {
	// maxWindows=1 clamps to 2: repeated samples stay bounded and the
	// width doubles instead of thrashing a single window.
	rec := NewRecorderWindow(1, 1)
	for i := 0; i < 16; i++ {
		rec.Sample(serve.Sample{TimeSec: float64(i), TotalTokens: i})
	}
	ts := rec.Series()
	if n := len(ts.Replica(0)); n > 2 {
		t.Fatalf("clamped bound should hold ≤2 windows, got %d", n)
	}
	if ts.WindowSec <= 1 {
		t.Fatalf("window width never doubled under the clamped bound: %g", ts.WindowSec)
	}
	if got := ts.Replica(0)[len(ts.Replica(0))-1].TotalTokens; got != 15 {
		t.Fatalf("coalesced series lost the cumulative counter: %d", got)
	}

	// A single sample far past the horizon: one window, floor-aligned,
	// no coalescing.
	rec = NewRecorderWindow(0.5, 4)
	rec.Sample(serve.Sample{TimeSec: 1e6 + 0.3, QueueDepth: 7})
	ts = rec.Series()
	ws := ts.Replica(0)
	if len(ws) != 1 || ts.WindowSec != 0.5 {
		t.Fatalf("lone sample produced %d windows at width %g", len(ws), ts.WindowSec)
	}
	if want := math.Floor((1e6+0.3)/0.5) * 0.5; ws[0].StartSec != want || ws[0].Queue != 7 {
		t.Fatalf("lone window misaligned: start %g (want %g), queue %d", ws[0].StartSec, want, ws[0].Queue)
	}

	// Zero-duration run: no samples at all — empty merged series, empty
	// replica list, header-only CSV.
	rec = NewRecorderWindow(1, 8)
	if m := rec.Series().Merged(); len(m) != 0 {
		t.Fatalf("sample-free run produced %d merged windows", len(m))
	}
	if ids := rec.Series().Replicas(); len(ids) != 0 {
		t.Fatalf("sample-free run lists replicas %v", ids)
	}
	csv := string(rec.TimeseriesCSV())
	if lines := strings.Split(strings.TrimSpace(csv), "\n"); len(lines) != 1 || !strings.HasPrefix(lines[0], "window_start_sec") {
		t.Fatalf("sample-free CSV should be header-only:\n%s", csv)
	}
}

// TestRecorderRecycle: recycled buffers return to the pool without
// leaking prior state into the next recorder.
func TestRecorderRecycle(t *testing.T) {
	rec := NewRecorder()
	rec.Event(serve.Event{Kind: serve.EvArrive, ReqID: 1})
	rec.Sample(serve.Sample{TimeSec: 0.5, QueueDepth: 3})
	rec.Recycle()
	next := NewRecorder()
	if len(next.Events()) != 0 {
		t.Fatalf("fresh recorder sees %d stale events", len(next.Events()))
	}
	next.Sample(serve.Sample{TimeSec: 0.25, QueueDepth: 1})
	ws := next.Series().Replica(0)
	if len(ws) != 1 || ws[0].Samples != 1 || ws[0].Queue != 1 {
		t.Fatalf("pooled window slice leaked state: %+v", ws)
	}
}

// TestPrometheusLabelEscaping: exotic platform names (quotes,
// backslashes, newlines) must be escaped in label values — both in the
// report snapshot and the attribution exposition.
func TestPrometheusLabelEscaping(t *testing.T) {
	rep := &serve.Report{Platform: "we\"ird\\plat\nform"}
	text := string(PrometheusText(rep))
	want := `platform="we\"ird\\plat\nform"`
	if !strings.Contains(text, want) {
		t.Fatalf("exposition does not escape the platform label; want %s in:\n%s", want, text)
	}
	// The raw newline must never survive into a sample line: every
	// non-comment line still carries the full, escaped label.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, want) {
			t.Fatalf("sample line lost the escaped label: %q", line)
		}
	}

	a, err := NewAttribution(0, true)
	if err != nil {
		t.Fatal(err)
	}
	atext := string(a.PrometheusText("a\"b\\c"))
	if !strings.Contains(atext, `platform="a\"b\\c"`) {
		t.Fatalf("attribution exposition does not escape the platform label:\n%s", atext)
	}
}
