package quant

import (
	"math"
	"math/rand"
	"testing"

	"cllm/internal/dtype"
)

func TestSNRExact(t *testing.T) {
	x := []float32{1, 2, 3}
	snr, err := SNRdB(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(snr, 1) {
		t.Errorf("exact SNR = %g, want +Inf", snr)
	}
	if _, err := SNRdB(x, x[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
	if snr, _ := SNRdB([]float32{0, 0}, []float32{1, 1}); snr != 0 {
		t.Errorf("zero-signal SNR = %g", snr)
	}
}

func TestSNRInt8Range(t *testing.T) {
	// int8 absmax quantization of a uniform distribution should land in the
	// ballpark of 6.02·8 - a few dB ≈ 40-50 dB.
	rng := rand.New(rand.NewSource(1))
	x := make([]float32, 8192)
	for i := range x {
		x[i] = rng.Float32()*2 - 1
	}
	q, s := dtype.QuantizeAbsmax(x)
	snr, err := SNRdB(x, dtype.Dequantize(q, s))
	if err != nil {
		t.Fatal(err)
	}
	if snr < 35 || snr > 60 {
		t.Errorf("int8 SNR = %.1f dB, want 35-60", snr)
	}
}

func TestKLDivergence(t *testing.T) {
	a := []float32{1, 2, 3}
	kl, err := KLDivergence(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if kl > 1e-12 {
		t.Errorf("KL(p,p) = %g, want 0", kl)
	}
	b := []float32{3, 2, 1}
	kl2, err := KLDivergence(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if kl2 <= 0 {
		t.Errorf("KL of different distributions = %g, want > 0", kl2)
	}
	if _, err := KLDivergence(a, a[:1]); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := KLDivergence(nil, nil); err == nil {
		t.Error("empty logits accepted")
	}
}

func TestKLShiftInvariance(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	b := []float32{2, 2, 3, 5}
	kl1, _ := KLDivergence(a, b)
	aShift := []float32{101, 102, 103, 104}
	kl2, _ := KLDivergence(aShift, b)
	if math.Abs(kl1-kl2) > 1e-9 {
		t.Errorf("KL not shift invariant: %g vs %g", kl1, kl2)
	}
}

func TestPercentileQuantizeClipsOutliers(t *testing.T) {
	// 1000 small values plus one huge outlier: percentile clipping must
	// yield much better bulk resolution than absmax.
	x := make([]float32, 1001)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		x[i] = rng.Float32()*0.2 - 0.1
	}
	x[1000] = 100

	qa, sa := dtype.QuantizeAbsmax(x)
	qp, sp, err := PercentileQuantize(x, 99)
	if err != nil {
		t.Fatal(err)
	}
	da := dtype.Dequantize(qa, sa)
	dp := dtype.Dequantize(qp, sp)
	var errA, errP float64
	for i := 0; i < 1000; i++ { // bulk error only
		errA += math.Abs(float64(x[i] - da[i]))
		errP += math.Abs(float64(x[i] - dp[i]))
	}
	if errP >= errA/10 {
		t.Errorf("percentile bulk error %g not ≪ absmax %g", errP, errA)
	}
	// The outlier itself is clipped to the percentile scale.
	if float64(dp[1000]) > float64(sp)*127.5 {
		t.Error("outlier not clipped")
	}
}

func TestPercentileQuantizeEdgeCases(t *testing.T) {
	if _, _, err := PercentileQuantize([]float32{1}, 0); err == nil {
		t.Error("pct 0 accepted")
	}
	if _, _, err := PercentileQuantize([]float32{1}, 101); err == nil {
		t.Error("pct 101 accepted")
	}
	q, s, err := PercentileQuantize(nil, 99)
	if err != nil || len(q) != 0 || s != 1 {
		t.Errorf("empty input: %v %v %v", q, s, err)
	}
	qz, sz, err := PercentileQuantize(make([]float32, 8), 99)
	if err != nil || sz != 1 {
		t.Fatalf("zero vector: scale %v err %v", sz, err)
	}
	for _, v := range qz {
		if v != 0 {
			t.Error("zero vector quantized to non-zero")
		}
	}
}

func TestCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float32, 4096)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	reports, err := Compare(x, 99.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, r := range reports {
		if r.SNRdB < 20 {
			t.Errorf("%s SNR = %.1f dB, implausibly low", r.Scheme, r.SNRdB)
		}
		if r.MeanAbsE <= 0 || r.MaxErr < r.MeanAbsE {
			t.Errorf("%s error stats inconsistent: %+v", r.Scheme, r)
		}
	}
	if _, err := Compare(nil, 99); err == nil {
		t.Error("empty Compare accepted")
	}
}
