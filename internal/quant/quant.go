// Package quant provides the quantization-quality toolkit used when
// preparing int8 models: signal-to-noise measurement, logit-distribution
// divergence, and a percentile-clipping quantizer that trades clipping error
// against resolution (the calibration procedure behind the paper's
// quantized Llama2 runs).
package quant

import (
	"fmt"
	"math"
	"sort"

	"cllm/internal/dtype"
)

// SNRdB returns the quantization signal-to-noise ratio in decibels:
// 10·log10(Σx² / Σ(x-x̂)²). Higher is better; +∞ for exact reconstruction.
func SNRdB(orig, approx []float32) (float64, error) {
	if len(orig) != len(approx) {
		return 0, fmt.Errorf("quant: SNR length mismatch %d vs %d", len(orig), len(approx))
	}
	var sig, noise float64
	for i := range orig {
		sig += float64(orig[i]) * float64(orig[i])
		d := float64(orig[i]) - float64(approx[i])
		noise += d * d
	}
	if noise == 0 {
		return math.Inf(1), nil
	}
	if sig == 0 {
		return 0, nil
	}
	return 10 * math.Log10(sig/noise), nil
}

// KLDivergence computes KL(p‖q) between two softmax distributions derived
// from logit vectors — the standard check that a quantized model's output
// distribution tracks the full-precision one.
func KLDivergence(logitsP, logitsQ []float32) (float64, error) {
	if len(logitsP) != len(logitsQ) || len(logitsP) == 0 {
		return 0, fmt.Errorf("quant: KL needs equal non-empty logits, got %d/%d", len(logitsP), len(logitsQ))
	}
	p := softmax(logitsP)
	q := softmax(logitsQ)
	var kl float64
	for i := range p {
		if p[i] > 0 {
			kl += p[i] * math.Log(p[i]/math.Max(q[i], 1e-12))
		}
	}
	if kl < 0 { // numerical floor
		kl = 0
	}
	return kl, nil
}

func softmax(logits []float32) []float64 {
	maxV := logits[0]
	for _, v := range logits[1:] {
		if v > maxV {
			maxV = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		e := math.Exp(float64(v - maxV))
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// PercentileQuantize clips the tensor at the given magnitude percentile
// (e.g. 99.9) before absmax quantization, sacrificing rare outliers for
// finer resolution on the bulk of the distribution.
func PercentileQuantize(src []float32, pct float64) ([]int8, float32, error) {
	if pct <= 0 || pct > 100 {
		return nil, 0, fmt.Errorf("quant: percentile %g out of (0,100]", pct)
	}
	if len(src) == 0 {
		return nil, 1, nil
	}
	mags := make([]float64, len(src))
	for i, v := range src {
		mags[i] = math.Abs(float64(v))
	}
	sort.Float64s(mags)
	idx := int(math.Ceil(pct/100*float64(len(mags)))) - 1
	if idx < 0 {
		idx = 0
	}
	clip := float32(mags[idx])
	if clip == 0 {
		return make([]int8, len(src)), 1, nil
	}
	scale := clip / 127
	out := make([]int8, len(src))
	for i, v := range src {
		q := math.RoundToEven(float64(v / scale))
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		out[i] = int8(q)
	}
	return out, scale, nil
}

// Report summarizes the quality of one quantization scheme on a tensor.
type Report struct {
	Scheme   string
	SNRdB    float64
	MaxErr   float64
	MeanAbsE float64
}

// Compare evaluates absmax and percentile quantization on the same data.
func Compare(src []float32, pct float64) ([]Report, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("quant: empty input")
	}
	reports := make([]Report, 0, 2)

	qa, sa := dtype.QuantizeAbsmax(src)
	ra, err := report("absmax", src, dtype.Dequantize(qa, sa))
	if err != nil {
		return nil, err
	}
	reports = append(reports, ra)

	qp, sp, err := PercentileQuantize(src, pct)
	if err != nil {
		return nil, err
	}
	rp, err := report(fmt.Sprintf("p%.4g", pct), src, dtype.Dequantize(qp, sp))
	if err != nil {
		return nil, err
	}
	reports = append(reports, rp)
	return reports, nil
}

func report(name string, orig, approx []float32) (Report, error) {
	snr, err := SNRdB(orig, approx)
	if err != nil {
		return Report{}, err
	}
	var maxE, sumE float64
	for i := range orig {
		e := math.Abs(float64(orig[i]) - float64(approx[i]))
		if e > maxE {
			maxE = e
		}
		sumE += e
	}
	return Report{Scheme: name, SNRdB: snr, MaxErr: maxE, MeanAbsE: sumE / float64(len(orig))}, nil
}
