package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %g, want 5", m)
	}
	if sd := StdDev(xs); sd != 2 {
		t.Errorf("StdDev = %g, want 2", sd)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-slice moments not zero")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {-5, 1}, {105, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{1, 2}, 50); got != 1.5 {
		t.Errorf("interpolated median = %g, want 1.5", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
}

func TestPercentileSortedInvariant(t *testing.T) {
	if err := quick.Check(func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		p10 := Percentile(clean, 10)
		p90 := Percentile(clean, 90)
		return p10 <= p90
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFilterZScore(t *testing.T) {
	xs := []float64{10, 10.1, 9.9, 10.05, 9.95, 10, 10.1, 9.9, 10, 10, 1000}
	kept, removed := FilterZScore(xs, 3)
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	if len(kept) != len(xs)-1 {
		t.Fatalf("kept %d", len(kept))
	}
	for _, k := range kept {
		if k == 1000 {
			t.Fatal("outlier survived")
		}
	}
	// Small or constant slices pass through untouched.
	if kept, removed := FilterZScore([]float64{5, 5}, 3); removed != 0 || len(kept) != 2 {
		t.Error("small slice filtered")
	}
	if _, removed := FilterZScore([]float64{3, 3, 3, 3}, 3); removed != 0 {
		t.Error("constant slice filtered")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("bad summary: %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
	if z := Summarize(nil); z.N != 0 {
		t.Error("Summarize(nil) not zero")
	}
}

func TestOverheadConventions(t *testing.T) {
	// Latency: higher is worse, positive overhead.
	if got := OverheadPct(100, 110); got != 10 {
		t.Errorf("OverheadPct = %g, want 10", got)
	}
	// Throughput: lower is worse, positive overhead.
	if got := ThroughputOverheadPct(100, 90); got != 10 {
		t.Errorf("ThroughputOverheadPct = %g, want 10", got)
	}
	if OverheadPct(0, 5) != 0 || ThroughputOverheadPct(0, 5) != 0 {
		t.Error("zero-base overheads not guarded")
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-9 || math.Abs(intercept-1) > 1e-9 {
		t.Errorf("fit = %g x + %g, want 2x+1", slope, intercept)
	}
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("LinearFit with one point succeeded")
	}
	if _, _, err := LinearFit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("LinearFit with constant x succeeded")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean = %g, want 2", g)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("GeoMean with negative input not guarded")
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
}

func TestFilterZScoreProperty(t *testing.T) {
	// Filtering never increases the spread.
	if err := quick.Check(func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		kept, removed := FilterZScore(clean, 3)
		if removed == 0 {
			return true
		}
		return StdDev(kept) <= StdDev(clean)
	}, nil); err != nil {
		t.Error(err)
	}
}
