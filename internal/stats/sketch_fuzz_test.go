package stats

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzSketchQuantiles feeds arbitrary byte streams (decoded as float64s)
// into a sketch and checks the structural invariants that must hold for
// ANY input: non-finite values are rejected without mutating state, the
// quantile function is nondecreasing in q and bounded by [Min, Max], the
// count ledger matches accepted adds, and nothing panics. Run with
// `go test -fuzz=FuzzSketchQuantiles ./internal/stats` to explore; the
// seed corpus below is exercised by every plain `go test` run.
func FuzzSketchQuantiles(f *testing.F) {
	seed := func(vals ...float64) []byte {
		b := make([]byte, 0, 8*len(vals))
		for _, v := range vals {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
		return b
	}
	f.Add(seed(1, 2, 3, 4, 5))
	f.Add(seed(0, 0, 0))
	f.Add(seed(-1, 1, -2, 2, 0))
	f.Add(seed(math.NaN(), 1, math.Inf(1), 2, math.Inf(-1)))
	f.Add(seed(1e-300, 1e300, 5e-324, math.MaxFloat64))
	f.Add(seed(0.001, 0.01, 0.1, 1, 10, 100))
	f.Add([]byte{1, 2, 3}) // trailing partial word is ignored

	f.Fuzz(func(t *testing.T, data []byte) {
		sk, err := NewSketch(DefaultSketchAlpha)
		if err != nil {
			t.Fatal(err)
		}
		accepted := int64(0)
		min, max := math.Inf(1), math.Inf(-1)
		for len(data) >= 8 {
			x := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
			data = data[8:]
			before := sk.Count()
			err := sk.Add(x)
			if math.IsNaN(x) || math.IsInf(x, 0) {
				if err == nil {
					t.Fatalf("non-finite %g accepted", x)
				}
				if sk.Count() != before {
					t.Fatalf("rejected %g changed count %d -> %d", x, before, sk.Count())
				}
				continue
			}
			if err != nil {
				t.Fatalf("finite %g rejected: %v", x, err)
			}
			accepted++
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		if sk.Count() != accepted {
			t.Fatalf("count %d, accepted %d", sk.Count(), accepted)
		}
		if accepted == 0 {
			if sk.Quantile(0.5) != 0 {
				t.Fatalf("empty sketch quantile %g", sk.Quantile(0.5))
			}
			return
		}
		if sk.Min() != min || sk.Max() != max {
			t.Fatalf("min/max %g/%g, want %g/%g", sk.Min(), sk.Max(), min, max)
		}
		prev := math.Inf(-1)
		for _, q := range []float64{-1, 0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1, 2} {
			v := sk.Quantile(q)
			if math.IsNaN(v) {
				t.Fatalf("Quantile(%g) is NaN", q)
			}
			if v < min || v > max {
				t.Fatalf("Quantile(%g)=%g outside [%g, %g]", q, v, min, max)
			}
			if v < prev {
				t.Fatalf("Quantile(%g)=%g below Quantile(prev)=%g", q, v, prev)
			}
			prev = v
		}
	})
}
