package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// sketchDistributions are the sample-path generators the property tests
// sweep: the shapes named by the error-bound contract (uniform,
// exponential, bimodal, Zipf) covering light tails, heavy tails, widely
// separated modes, and discrete power-law values.
var sketchDistributions = []struct {
	name string
	gen  func(rng *rand.Rand, n int) []float64
}{
	{"uniform", func(rng *rand.Rand, n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		return xs
	}},
	{"exponential", func(rng *rand.Rand, n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.ExpFloat64() * 0.25
		}
		return xs
	}},
	{"bimodal", func(rng *rand.Rand, n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			if rng.Float64() < 0.8 {
				xs[i] = 0.01 * (1 + 0.1*rng.NormFloat64())
			} else {
				xs[i] = 10 * (1 + 0.05*rng.NormFloat64())
			}
			if xs[i] <= 0 {
				xs[i] = 1e-6
			}
		}
		return xs
	}},
	{"zipf", func(rng *rand.Rand, n int) []float64 {
		z := rand.NewZipf(rng, 1.3, 1, 1<<20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(z.Uint64() + 1)
		}
		return xs
	}},
}

// exactRank is the order statistic Sketch.Quantile targets: the element
// at rank floor(q·(n−1)) of the sorted sample.
func exactRank(sorted []float64, q float64) float64 {
	return sorted[int(q*float64(len(sorted)-1))]
}

// TestSketchErrorBound is the documented accuracy contract: p50/p90/p99
// within alpha relative error of the exact order statistic, across
// distribution shapes, sample sizes from 10 to 10⁶, and two alphas. The
// 1e-9 slack absorbs float rounding in the log-binning at bucket edges.
func TestSketchErrorBound(t *testing.T) {
	for _, alpha := range []float64{0.01, 0.05} {
		for _, dist := range sketchDistributions {
			for _, n := range []int{10, 100, 10_000, 1_000_000} {
				rng := rand.New(rand.NewSource(42))
				xs := dist.gen(rng, n)
				sk, err := NewSketch(alpha)
				if err != nil {
					t.Fatal(err)
				}
				for _, x := range xs {
					if err := sk.Add(x); err != nil {
						t.Fatal(err)
					}
				}
				sorted := append([]float64(nil), xs...)
				sort.Float64s(sorted)
				for _, q := range []float64{0.5, 0.9, 0.99} {
					want := exactRank(sorted, q)
					got := sk.Quantile(q)
					if relErr := math.Abs(got-want) / math.Abs(want); relErr > alpha+1e-9 {
						t.Errorf("%s n=%d alpha=%g q=%g: sketch %g vs exact %g (rel err %.4g > %g)",
							dist.name, n, alpha, q, got, want, relErr, alpha)
					}
				}
				if sk.Min() != sorted[0] || sk.Max() != sorted[n-1] {
					t.Errorf("%s n=%d: min/max %g/%g, want exact %g/%g",
						dist.name, n, sk.Min(), sk.Max(), sorted[0], sorted[n-1])
				}
			}
		}
	}
}

// TestSketchMergeMatchesUnion: sketch(A ∪ B) and merge(sketch(A),
// sketch(B)) must agree bit-for-bit on every quantile (integer bucket
// counts add exactly); Sum only up to float reassociation.
func TestSketchMergeMatchesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dist := range sketchDistributions {
		a := dist.gen(rng, 3000)
		b := dist.gen(rng, 1700)

		union, _ := NewSketch(DefaultSketchAlpha)
		for _, x := range append(append([]float64(nil), a...), b...) {
			_ = union.Add(x)
		}
		skA, _ := NewSketch(DefaultSketchAlpha)
		for _, x := range a {
			_ = skA.Add(x)
		}
		skB, _ := NewSketch(DefaultSketchAlpha)
		for _, x := range b {
			_ = skB.Add(x)
		}
		if err := skA.Merge(skB); err != nil {
			t.Fatal(err)
		}
		if skA.Count() != union.Count() {
			t.Fatalf("%s: merged count %d, union %d", dist.name, skA.Count(), union.Count())
		}
		for q := 0.0; q <= 1.0; q += 0.05 {
			if got, want := skA.Quantile(q), union.Quantile(q); got != want {
				t.Errorf("%s q=%g: merge %g != union %g", dist.name, q, got, want)
			}
		}
		if math.Abs(skA.Sum()-union.Sum()) > 1e-9*math.Abs(union.Sum()) {
			t.Errorf("%s: merged sum %g far from union %g", dist.name, skA.Sum(), union.Sum())
		}
	}
}

// TestSketchMergeAssociative: (a⋃b)⋃c and a⋃(b⋃c) yield identical
// quantiles — the property epoch- and replica-merging relies on.
func TestSketchMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	parts := make([][]float64, 3)
	for i := range parts {
		parts[i] = sketchDistributions[i%len(sketchDistributions)].gen(rng, 500+200*i)
	}
	build := func(xs []float64) *Sketch {
		sk, _ := NewSketch(0.02)
		for _, x := range xs {
			_ = sk.Add(x)
		}
		return sk
	}
	left := build(parts[0])
	if err := left.Merge(build(parts[1])); err != nil {
		t.Fatal(err)
	}
	if err := left.Merge(build(parts[2])); err != nil {
		t.Fatal(err)
	}
	bc := build(parts[1])
	if err := bc.Merge(build(parts[2])); err != nil {
		t.Fatal(err)
	}
	right := build(parts[0])
	if err := right.Merge(bc); err != nil {
		t.Fatal(err)
	}
	for q := 0.0; q <= 1.0; q += 0.01 {
		if l, r := left.Quantile(q), right.Quantile(q); l != r {
			t.Errorf("q=%g: (a∪b)∪c %g != a∪(b∪c) %g", q, l, r)
		}
	}
	if left.Count() != right.Count() || left.Min() != right.Min() || left.Max() != right.Max() {
		t.Error("merge associativity broke count/min/max")
	}
}

// TestSketchDeterministic: identical streams produce identical sketches;
// quantiles depend on the multiset, not insertion order.
func TestSketchDeterministic(t *testing.T) {
	gen := func() *Sketch {
		rng := rand.New(rand.NewSource(99))
		sk, _ := NewSketch(DefaultSketchAlpha)
		for i := 0; i < 5000; i++ {
			_ = sk.Add(rng.ExpFloat64())
		}
		return sk
	}
	a, b := gen(), gen()
	for q := 0.0; q <= 1.0; q += 0.001 {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("fixed seed diverged at q=%g", q)
		}
	}
	// Insertion order must not matter either.
	rng := rand.New(rand.NewSource(99))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	fwd, _ := NewSketch(DefaultSketchAlpha)
	rev, _ := NewSketch(DefaultSketchAlpha)
	for _, x := range xs {
		_ = fwd.Add(x)
	}
	for i := len(xs) - 1; i >= 0; i-- {
		_ = rev.Add(xs[i])
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		if fwd.Quantile(q) != rev.Quantile(q) {
			t.Fatalf("insertion order changed q=%g", q)
		}
	}
}

// TestSketchNegativeZeroMixed: the mirrored negative store and the zero
// bucket keep the error bound and ordering across sign boundaries.
func TestSketchNegativeZeroMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 0, 9000)
	for i := 0; i < 4000; i++ {
		xs = append(xs, -rng.ExpFloat64())
	}
	for i := 0; i < 1000; i++ {
		xs = append(xs, 0)
	}
	for i := 0; i < 4000; i++ {
		xs = append(xs, rng.ExpFloat64())
	}
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sk, _ := NewSketch(DefaultSketchAlpha)
	for _, x := range xs {
		if err := sk.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := sk.Quantile(q)
		if got < prev {
			t.Fatalf("quantiles not monotone at q=%g: %g < %g", q, got, prev)
		}
		prev = got
		want := exactRank(sorted, q)
		if math.Abs(got-want) > DefaultSketchAlpha*math.Abs(want)+1e-9 {
			t.Errorf("q=%g: %g vs exact %g", q, got, want)
		}
	}
}

func TestSketchRejectsNonFinite(t *testing.T) {
	sk, _ := NewSketch(DefaultSketchAlpha)
	_ = sk.Add(1.5)
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := sk.Add(x); err == nil {
			t.Errorf("Add(%g) accepted", x)
		}
	}
	if sk.Count() != 1 || sk.Sum() != 1.5 {
		t.Errorf("rejected values mutated the sketch: count %d sum %g", sk.Count(), sk.Sum())
	}
	if _, err := NewSketch(0); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := NewSketch(1); err == nil {
		t.Error("alpha 1 accepted")
	}
	a, _ := NewSketch(0.01)
	b, _ := NewSketch(0.02)
	if err := a.Merge(b); err == nil {
		t.Error("alpha-mismatched merge accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge accepted")
	}
}

func TestSketchEmptyAndReset(t *testing.T) {
	sk, _ := NewSketch(DefaultSketchAlpha)
	if sk.Quantile(0.5) != 0 || sk.Mean() != 0 || sk.Min() != 0 || sk.Max() != 0 {
		t.Error("empty sketch should report zeros")
	}
	for i := 0; i < 100; i++ {
		_ = sk.Add(float64(i + 1))
	}
	sk.Reset()
	if sk.Count() != 0 || sk.Buckets() != 0 || sk.Quantile(0.9) != 0 {
		t.Errorf("reset left residue: count %d buckets %d", sk.Count(), sk.Buckets())
	}
	_ = sk.Add(3)
	if sk.Quantile(0.5) != 3 {
		t.Errorf("post-reset quantile %g, want exactly 3 (clamped to min=max)", sk.Quantile(0.5))
	}
}

// TestSketchBoundedBuckets pins the memory model: bucket count grows with
// the data's dynamic range, not with n.
func TestSketchBoundedBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sk, _ := NewSketch(DefaultSketchAlpha)
	for i := 0; i < 200_000; i++ {
		_ = sk.Add(0.001 + rng.Float64()) // 3 decades of range
	}
	// 3 decades at alpha 0.01 is ~ln(1000)/ln(γ) ≈ 350 buckets.
	if sk.Buckets() > 500 {
		t.Errorf("%d buckets for a 3-decade stream of 200k values", sk.Buckets())
	}
}

// TestSketchCountLE is the CDF contract behind the histogram export: for
// any threshold, the reported count is exact over the sample multiset
// re-thresholded at (1±alpha)·x — a boundary bucket can only misplace
// values within the sketch's relative-error bound.
func TestSketchCountLE(t *testing.T) {
	for _, dist := range sketchDistributions {
		rng := rand.New(rand.NewSource(11))
		xs := dist.gen(rng, 50_000)
		sk, _ := NewSketch(DefaultSketchAlpha)
		for _, x := range xs {
			_ = sk.Add(x)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		countLE := func(th float64) int64 {
			n := sort.SearchFloat64s(sorted, math.Nextafter(th, math.Inf(1)))
			return int64(n)
		}
		thresholds := []float64{0, sorted[0], sorted[len(sorted)/2], sorted[len(sorted)-1], sorted[len(sorted)-1] * 2}
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			thresholds = append(thresholds, exactRank(sorted, q))
		}
		prev := int64(-1)
		for _, th := range thresholds {
			got := sk.CountLE(th)
			lo := countLE(th * (1 - 2*DefaultSketchAlpha))
			hi := countLE(th * (1 + 2*DefaultSketchAlpha))
			if got < lo || got > hi {
				t.Errorf("%s: CountLE(%g) = %d outside [%d, %d]", dist.name, th, got, lo, hi)
			}
			if th >= sorted[len(sorted)-1] && got != int64(len(xs)) {
				t.Errorf("%s: CountLE at max = %d, want all %d", dist.name, got, len(xs))
			}
		}
		// Monotone over an ascending ladder.
		for _, th := range []float64{0, 1e-6, 1e-3, 0.1, 1, 10, 1e3, 1e6} {
			got := sk.CountLE(th)
			if got < prev {
				t.Errorf("%s: CountLE not monotone at %g: %d < %d", dist.name, th, got, prev)
			}
			prev = got
		}
		if sk.CountLE(-1) != 0 {
			t.Error("negative threshold should count nothing for a nonnegative stream")
		}
	}
}
