// Package stats provides the summary statistics used throughout the
// benchmark harness: mean/stddev/percentiles, the Z-score outlier filter the
// paper applies to per-token latency samples (§III-D, Z > 3), violin-style
// five-number summaries, and simple linear fits for trend checks.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// FilterZScore removes samples with |x-mean|/stddev > z, replicating the
// paper's outlier exclusion (Z-score > 3, ≈0.64% of samples under TEEs).
// It returns the kept samples and the number removed.
func FilterZScore(xs []float64, z float64) (kept []float64, removed int) {
	if len(xs) < 3 {
		return append([]float64(nil), xs...), 0
	}
	m, sd := Mean(xs), StdDev(xs)
	if sd == 0 {
		return append([]float64(nil), xs...), 0
	}
	kept = make([]float64, 0, len(xs))
	for _, x := range xs {
		if math.Abs(x-m)/sd > z {
			removed++
			continue
		}
		kept = append(kept, x)
	}
	return kept, removed
}

// Summary is a violin-plot style five-number summary plus moments.
type Summary struct {
	N                  int
	Mean, Std          float64
	Min, P25, P50, P75 float64
	Max                float64
}

// Summarize computes a Summary of the samples.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  StdDev(xs),
		Min:  sorted[0],
		P25:  Percentile(xs, 25),
		P50:  Percentile(xs, 50),
		P75:  Percentile(xs, 75),
		Max:  sorted[len(sorted)-1],
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g±%.2g [%.4g %.4g %.4g %.4g %.4g]",
		s.N, s.Mean, s.Std, s.Min, s.P25, s.P50, s.P75, s.Max)
}

// OverheadPct returns (x-base)/base in percent; the sign convention matches
// the paper (positive = slower / lower throughput than baseline).
func OverheadPct(base, x float64) float64 {
	if base == 0 {
		return 0
	}
	return (x - base) / base * 100
}

// ThroughputOverheadPct returns the throughput *reduction* in percent:
// positive when x is slower (fewer tokens/s) than base.
func ThroughputOverheadPct(base, x float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - x) / base * 100
}

// LinearFit returns slope and intercept of the least-squares line y = a*x+b.
func LinearFit(xs, ys []float64) (slope, intercept float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, fmt.Errorf("stats: LinearFit needs >=2 paired points, got %d/%d", len(xs), len(ys))
	}
	mx, my := Mean(xs), Mean(ys)
	var num, den float64
	for i := range xs {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	if den == 0 {
		return 0, 0, fmt.Errorf("stats: LinearFit with constant x")
	}
	slope = num / den
	return slope, my - slope*mx, nil
}

// GeoMean returns the geometric mean of positive samples.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
