package stats

import (
	"fmt"
	"math"
	"sort"
)

// DefaultSketchAlpha is the relative-error bound serving runs use unless
// configured otherwise: quantile estimates land within ±1% of the true
// sample value.
const DefaultSketchAlpha = 0.01

// Sketch is a DDSketch-style streaming quantile summary: values are
// binned into geometrically spaced buckets so that any value in a bucket
// is within a factor (1±alpha) of the bucket's midpoint estimate. It
// replaces exact-sample percentiles where retaining every observation is
// unaffordable (10⁸-request serving runs), with these contracts:
//
//   - Relative error: for any quantile q of n finite observations,
//     |Quantile(q) − exact(q)| ≤ alpha·|exact(q)|, where exact(q) is the
//     rank-floor(q·(n−1)) order statistic. Enforced by property tests in
//     sketch_test.go and documented in docs/serving-model.md §15.
//   - Exact merge: bucket counts are integers, so Merge is associative
//     and commutative — merging per-epoch or per-replica sketches yields
//     bit-identical quantiles to sketching the union stream. (Sum is a
//     float accumulator and only reorder-tolerant, not bit-stable.)
//   - Determinism: quantiles depend only on the bucket multiset, never
//     on insertion order or map iteration order.
//
// Memory is O(buckets): bounded by the dynamic range of the data, not by
// n (float64's full positive range spans ~75k buckets at alpha 0.01; real
// latency streams occupy a few hundred). The zero value is not usable —
// construct with NewSketch.
type Sketch struct {
	alpha   float64
	gamma   float64
	lnGamma float64

	// pos/neg hold counts per geometric bucket for positive and negative
	// observations (neg is keyed by |x|); zero counts exact zeros.
	pos  map[int]int64
	neg  map[int]int64
	zero int64

	count    int64
	sum      float64
	min, max float64
}

// NewSketch builds an empty sketch with the given relative-error bound
// alpha in (0, 1). Use DefaultSketchAlpha unless the caller documents a
// different accuracy contract.
func NewSketch(alpha float64) (*Sketch, error) {
	if !(alpha > 0 && alpha < 1) {
		return nil, fmt.Errorf("stats: sketch alpha %g outside (0, 1)", alpha)
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:   alpha,
		gamma:   gamma,
		lnGamma: math.Log(gamma),
		pos:     map[int]int64{},
		neg:     map[int]int64{},
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}, nil
}

// Alpha returns the sketch's relative-error bound.
func (s *Sketch) Alpha() float64 { return s.alpha }

// Count returns the number of observations added (and merged in).
func (s *Sketch) Count() int64 { return s.count }

// Sum returns the running sum of all observations. Float accumulation
// order follows insertion/merge order, so Sum (and Mean) are exact only
// up to floating-point reassociation.
func (s *Sketch) Sum() float64 { return s.sum }

// Mean returns Sum/Count, or 0 for an empty sketch.
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min returns the smallest observation, exactly (0 if empty).
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, exactly (0 if empty).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Buckets returns the number of occupied buckets — the sketch's memory
// footprint in O(1)-sized cells.
func (s *Sketch) Buckets() int {
	n := len(s.pos) + len(s.neg)
	if s.zero > 0 {
		n++
	}
	return n
}

// key maps a positive magnitude to its geometric bucket: the unique k
// with gamma^(k-1) < x ≤ gamma^k.
func (s *Sketch) key(x float64) int {
	return int(math.Ceil(math.Log(x) / s.lnGamma))
}

// bucketValue is the bucket's midpoint estimate 2·gamma^k/(gamma+1),
// within a factor (1±alpha) of every value the bucket holds.
func (s *Sketch) bucketValue(k int) float64 {
	return 2 * math.Exp(float64(k)*s.lnGamma) / (s.gamma + 1)
}

// Add records one observation. NaN and ±Inf are rejected with an error
// and leave the sketch unchanged — a geometric binning has no bucket for
// them, and silently dropping samples would corrupt Count-based ranks.
func (s *Sketch) Add(x float64) error {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return fmt.Errorf("stats: sketch cannot hold non-finite value %g", x)
	}
	switch {
	case x > 0:
		s.pos[s.key(x)]++
	case x < 0:
		s.neg[s.key(-x)]++
	default:
		s.zero++
	}
	s.count++
	s.sum += x
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	return nil
}

// Merge folds o into s. Both sketches must share one alpha: bucket
// boundaries differ otherwise and the merged counts would be meaningless.
// Merging is exact — integer bucket counts add — so quantiles of the
// merge equal quantiles of sketching the union stream bit for bit.
func (s *Sketch) Merge(o *Sketch) error {
	if o == nil {
		return fmt.Errorf("stats: cannot merge nil sketch")
	}
	if o.alpha != s.alpha {
		return fmt.Errorf("stats: sketch alpha mismatch: %g vs %g", s.alpha, o.alpha)
	}
	for k, c := range o.pos {
		s.pos[k] += c
	}
	for k, c := range o.neg {
		s.neg[k] += c
	}
	s.zero += o.zero
	s.count += o.count
	s.sum += o.sum
	if o.count > 0 {
		if o.min < s.min {
			s.min = o.min
		}
		if o.max > s.max {
			s.max = o.max
		}
	}
	return nil
}

// Reset empties the sketch in place, keeping its bucket maps' capacity —
// epoch rotation reuses one pair of sketches instead of reallocating.
func (s *Sketch) Reset() {
	clear(s.pos)
	clear(s.neg)
	s.zero = 0
	s.count = 0
	s.sum = 0
	s.min = math.Inf(1)
	s.max = math.Inf(-1)
}

// Quantile estimates the q-quantile (q clamped to [0, 1]) as the bucket
// midpoint covering the rank-floor(q·(count−1)) order statistic, clamped
// to the exact [Min, Max] envelope. Results are within alpha relative
// error of that order statistic, nondecreasing in q, and deterministic
// (bucket keys are walked in sorted order). Returns 0 on an empty sketch.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	idx := int64(q * float64(s.count-1))
	rank := int64(0)
	// Ascending value order: most-negative first (descending |x| keys),
	// then zeros, then positives (ascending keys).
	if len(s.neg) > 0 {
		keys := sortedKeys(s.neg)
		for i := len(keys) - 1; i >= 0; i-- {
			rank += s.neg[keys[i]]
			if rank > idx {
				return s.clamp(-s.bucketValue(keys[i]))
			}
		}
	}
	rank += s.zero
	if rank > idx {
		return s.clamp(0)
	}
	for _, k := range sortedKeys(s.pos) {
		rank += s.pos[k]
		if rank > idx {
			return s.clamp(s.bucketValue(k))
		}
	}
	return s.max
}

// CountLE estimates how many observations are ≤ x, for x ≥ 0 — the CDF
// counts a cumulative histogram export needs (Prometheus le-buckets). A
// positive bucket k holds values in (gamma^(k-1), gamma^k], so every
// bucket with k ≤ key(x) counts fully; the boundary bucket can misplace
// values within alpha relative error of x, the same bound Quantile
// carries. Negative x is rejected as 0 matches (latency phases are never
// negative; the negative-bucket side exists for generic merges).
// Monotone nondecreasing in x and deterministic.
func (s *Sketch) CountLE(x float64) int64 {
	if x < 0 || math.IsNaN(x) {
		return 0
	}
	n := s.zero
	for _, c := range s.neg {
		n += c
	}
	if x == 0 {
		return n
	}
	if math.IsInf(x, 1) || x >= s.max {
		return s.count
	}
	kx := s.key(x)
	for k, c := range s.pos {
		if k <= kx {
			n += c
		}
	}
	return n
}

// clamp bounds a bucket midpoint by the exact observed envelope: an
// estimate outside [min, max] can only move closer to the true order
// statistic by clamping, so the error bound survives and Quantile(0)/
// Quantile(1) are exact.
func (s *Sketch) clamp(v float64) float64 {
	if v < s.min {
		return s.min
	}
	if v > s.max {
		return s.max
	}
	return v
}

func sortedKeys(m map[int]int64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
