package scale

import (
	"testing"

	"cllm/internal/dtype"
	"cllm/internal/hw"
	"cllm/internal/model"
	"cllm/internal/perf"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

func wl70(t *testing.T, batch int) trace.Workload {
	t.Helper()
	cfg, err := model.Lookup("llama2-70b")
	if err != nil {
		t.Fatal(err)
	}
	return trace.Workload{Model: cfg, Kind: dtype.BF16, Batch: batch, Beam: 1, InputLen: 512, OutputLen: 16}
}

func TestValidateCapacity(t *testing.T) {
	w := wl70(t, 1)
	one := Cluster{GPU: hw.H100NVL(), Platform: tee.GPU(), NGPUs: 1, Scheme: TensorParallel}
	if err := one.Validate(w); err == nil {
		t.Error("70B fit on one H100")
	}
	two := Cluster{GPU: hw.H100NVL(), Platform: tee.GPU(), NGPUs: 2, Scheme: TensorParallel}
	if err := two.Validate(w); err != nil {
		t.Errorf("70B should fit on two H100s: %v", err)
	}
	if err := (Cluster{GPU: hw.H100NVL(), NGPUs: 0}).Validate(w); err == nil {
		t.Error("zero GPUs accepted")
	}
}

func TestConfidentialScaleUpPenalty(t *testing.T) {
	// §V-D.4: cGPU instances route inter-GPU traffic through the host at
	// ~3 GB/s, so confidential multi-GPU throughput must be far below the
	// unprotected NVLink deployment (bandwidth-bound at larger batches).
	w := wl70(t, 64)
	open := Cluster{GPU: hw.H100NVL(), Platform: tee.GPU(), NGPUs: 2, Scheme: TensorParallel}
	conf := Cluster{GPU: hw.H100NVL(), Platform: tee.CGPU(), NGPUs: 2, Scheme: TensorParallel}
	to, err := open.DecodeThroughput(w)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := conf.DecodeThroughput(w)
	if err != nil {
		t.Fatal(err)
	}
	if tc >= to/2 {
		t.Errorf("confidential TP throughput %.1f not ≪ open %.1f", tc, to)
	}
}

func TestB100RestoresScaleUp(t *testing.T) {
	// The projected B100 protects NVLink: confidential multi-GPU should
	// recover most of the open performance (small link-crypto cost only).
	w := wl70(t, 4)
	open := Cluster{GPU: hw.H100NVL(), Platform: tee.B100(), NGPUs: 2, Scheme: TensorParallel}
	b100 := Cluster{GPU: hw.H100NVL(), Platform: tee.B100CC(), NGPUs: 2, Scheme: TensorParallel}
	h100 := Cluster{GPU: hw.H100NVL(), Platform: tee.CGPU(), NGPUs: 2, Scheme: TensorParallel}
	to, err := open.DecodeThroughput(w)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := b100.DecodeThroughput(w)
	if err != nil {
		t.Fatal(err)
	}
	th, err := h100.DecodeThroughput(w)
	if err != nil {
		t.Fatal(err)
	}
	if tb <= th {
		t.Errorf("B100 CC (%.1f) should beat H100 CC (%.1f) at scale-up", tb, th)
	}
	if tb < to*0.75 {
		t.Errorf("B100 CC (%.1f) should retain ≥75%% of open (%.1f)", tb, to)
	}
	// But the paper expects HBM encryption to cost something: B100 CC must
	// not match the unprotected run exactly.
	if tb >= to {
		t.Error("B100 CC shows no memory-encryption cost")
	}
}

func TestPipelineHidesCommunication(t *testing.T) {
	// Pipeline parallelism overlaps activation hops; under the crippled
	// confidential interconnect it should beat tensor parallelism.
	w := wl70(t, 8)
	tp := Cluster{GPU: hw.H100NVL(), Platform: tee.CGPU(), NGPUs: 2, Scheme: TensorParallel}
	pp := Cluster{GPU: hw.H100NVL(), Platform: tee.CGPU(), NGPUs: 2, Scheme: PipelineParallel}
	tt, err := tp.DecodeThroughput(w)
	if err != nil {
		t.Fatal(err)
	}
	tpp, err := pp.DecodeThroughput(w)
	if err != nil {
		t.Fatal(err)
	}
	if tpp <= tt {
		t.Errorf("PP (%.1f) should beat TP (%.1f) on a slow interconnect", tpp, tt)
	}
	if TensorParallel.String() == "" || PipelineParallel.String() == "" {
		t.Error("empty scheme names")
	}
}

func TestIPsecCost(t *testing.T) {
	// Cross-node links pay the IPsec factor on both protected and open runs.
	w := wl70(t, 4)
	local := Cluster{GPU: hw.H100NVL(), Platform: tee.GPU(), NGPUs: 2, Scheme: TensorParallel}
	cross := Cluster{GPU: hw.H100NVL(), Platform: tee.GPU(), NGPUs: 2, Scheme: TensorParallel, CrossNode: true}
	tl, err := local.DecodeThroughput(w)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := cross.DecodeThroughput(w)
	if err != nil {
		t.Fatal(err)
	}
	if tc >= tl {
		t.Errorf("cross-node (%.1f) not slower than local (%.1f)", tc, tl)
	}
}

func TestHybridOffload(t *testing.T) {
	cfg, err := model.Lookup("llama2-13b")
	if err != nil {
		t.Fatal(err)
	}
	w := trace.Workload{Model: cfg, Kind: dtype.BF16, Batch: 4, Beam: 1, InputLen: 256, OutputLen: 16}
	tput := func(p tee.Platform, f float64) float64 {
		h := HybridOffload{GPU: hw.H100NVL(), Platform: p, OffloadFraction: f}
		v, err := h.DecodeThroughput(w)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Offloading hurts both, but the confidential GPU's bounce buffer cuts
	// PCIe goodput ~8x, so its offloaded throughput collapses much further
	// (§V-D.1).
	if ratio := tput(tee.GPU(), 0.5) / tput(tee.CGPU(), 0.5); ratio < 4 {
		t.Errorf("offloaded open/confidential ratio = %.1fx, want ≥4x (bounce buffer)", ratio)
	}
	// §V-D.1: with offload, the AMX CPU outperforms the confidential GPU.
	cpuRes, err := perf.RunCPU(perf.CPURun{
		CPU: hw.EMR2(), Platform: tee.TDX(), Workload: w, Sockets: 1, AMX: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cpuTput := cpuRes.DecodeThroughput(); tput(tee.CGPU(), 0.5) >= cpuTput {
		t.Errorf("offloaded cGPU (%.1f tok/s) should lose to TDX CPU (%.1f tok/s)",
			tput(tee.CGPU(), 0.5), cpuTput)
	}
	// Invalid fraction rejected.
	h := HybridOffload{GPU: hw.H100NVL(), Platform: tee.GPU(), OffloadFraction: 1.5}
	if _, err := h.DecodeStepTime(w, 256); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

func TestSEVSNPCloseToTDX(t *testing.T) {
	// The paper (§III) argues SEV-SNP behaves like TDX; the platform's
	// mechanism parameters must produce overheads in the same band.
	sev := tee.SEVSNP()
	tdx := tee.TDX()
	if !sev.Protected || sev.Class != tee.ClassVM {
		t.Fatal("SEV-SNP not a protected VM TEE")
	}
	if sev.MemBWFactor > 1 || sev.MemBWFactor < tdx.MemBWFactor-0.02 {
		t.Errorf("SEV memory factor %.3f far from TDX %.3f", sev.MemBWFactor, tdx.MemBWFactor)
	}
	if sev.PageWalkAmp < 1.2 || sev.PageWalkAmp > tdx.PageWalkAmp {
		t.Errorf("SEV walk amplification %.2f out of band", sev.PageWalkAmp)
	}
}
