// Package scale models the scale-up and scale-out deployments of §V-D:
// multi-GPU serving of models that exceed one device (Llama2-70B needs at
// least two H100s), tensor- and pipeline-parallel communication over
// NVLink or — in confidential mode, where NVLink is unprotected and
// RDMA/GPUdirect are unavailable — through host-routed encrypted copies
// capped near 3 GB/s (vs 40 GB/s unprotected), cross-node IPsec with up to
// ~90% overhead, and hybrid CPU-GPU offload where host-resident layers
// compute on AMX while activations cross an (optionally encrypted) PCIe
// boundary.
package scale

import (
	"fmt"

	"cllm/internal/hw"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

// Link bandwidths (bytes/s, sustained), from the paper's §V-D.4.
const (
	// NVLinkBandwidth is intra-node GPU-GPU bandwidth when NVLink is used.
	NVLinkBandwidth = 450e9
	// GPUDirectBandwidth is unprotected multi-GPU traffic via RDMA/GPUdirect.
	GPUDirectBandwidth = 40e9
	// ConfidentialHostRouteBandwidth is the paper's measured cap when cGPU
	// instances must route all inter-GPU data through the CPU (~3 GB/s).
	ConfidentialHostRouteBandwidth = 3e9
	// IPsecBandwidthFactor models up to ~90% throughput overhead of IPsec
	// protection on cross-node links (both CPU and GPU need it).
	IPsecBandwidthFactor = 0.53

	// Per-message latencies: a host-routed encrypted copy (bounce buffer in,
	// re-encrypt, bounce buffer out) costs two orders of magnitude more
	// setup than a direct NVLink transfer.
	NVLinkMessageLatency    = 5e-6
	HostRouteMessageLatency = 120e-6
	CrossNodeMessageLatency = 50e-6
)

// Parallelism selects the multi-GPU decomposition.
type Parallelism int

const (
	// TensorParallel splits every layer across GPUs (two all-reduces per
	// decoder block per step).
	TensorParallel Parallelism = iota
	// PipelineParallel assigns contiguous layer ranges to GPUs (one
	// activation hop per stage boundary per microbatch).
	PipelineParallel
)

// String names the scheme.
func (p Parallelism) String() string {
	if p == TensorParallel {
		return "tensor-parallel"
	}
	return "pipeline-parallel"
}

// Cluster describes a multi-GPU deployment.
type Cluster struct {
	GPU      hw.GPU
	Platform tee.Platform
	// NGPUs is the device count (model must fit in NGPUs × HBM).
	NGPUs int
	// Scheme is the parallelism decomposition.
	Scheme Parallelism
	// CrossNode adds IPsec-protected network hops between devices.
	CrossNode bool
}

// Validate rejects deployments that cannot host the workload.
func (c Cluster) Validate(w trace.Workload) error {
	if c.NGPUs < 1 {
		return fmt.Errorf("scale: need at least one GPU")
	}
	need := trace.WeightFootprint(w) + trace.KVCacheBytes(w, w.InputLen+w.OutputLen)
	have := float64(c.NGPUs) * float64(c.GPU.HBMBytes)
	if need > have {
		return fmt.Errorf("scale: workload needs %.0f GB, %d×%s provide %.0f GB",
			need/1e9, c.NGPUs, c.GPU.Name, have/1e9)
	}
	return nil
}

// interconnectBW returns the usable GPU-GPU bandwidth for this deployment.
// Confidential H100s cannot trust NVLink or use GPUdirect, so everything
// routes through the host; a protected-NVLink platform (projected B100)
// keeps the fast path.
func (c Cluster) interconnectBW() float64 {
	var bw float64
	switch {
	case !c.Platform.Protected:
		bw = NVLinkBandwidth
		if c.CrossNode {
			bw = GPUDirectBandwidth
		}
	case c.Platform.NVLinkProtected:
		bw = NVLinkBandwidth * c.Platform.MemBWFactor // link crypto engine
		if c.CrossNode {
			bw = GPUDirectBandwidth * c.Platform.PCIeBWFactor
		}
	default: // H100 CC: host-routed bounce buffers
		bw = ConfidentialHostRouteBandwidth
	}
	if c.CrossNode {
		bw *= IPsecBandwidthFactor
	}
	return bw
}

// commBytesPerStep returns the inter-GPU traffic and message count of one
// decode step.
func (c Cluster) commBytesPerStep(w trace.Workload) (bytes float64, messages int) {
	if c.NGPUs == 1 {
		return 0, 0
	}
	rows := float64(w.Rows())
	h := float64(w.Model.HiddenDim)
	elem := 2.0 // activations travel in bf16
	switch c.Scheme {
	case TensorParallel:
		// Two all-reduces per decoder block (after attention and after the
		// MLP); ring all-reduce moves 2(N-1)/N of the message per GPU.
		msg := rows * h * elem
		perBlock := 2 * msg * 2 * float64(c.NGPUs-1) / float64(c.NGPUs)
		return perBlock * float64(w.Model.Layers), 2 * w.Model.Layers
	default:
		// One activation hop per stage boundary.
		return rows * h * elem * float64(c.NGPUs-1), c.NGPUs - 1
	}
}

// messageLatency returns the fixed per-message cost of the interconnect.
func (c Cluster) messageLatency() float64 {
	lat := NVLinkMessageLatency
	if c.Platform.Protected && !c.Platform.NVLinkProtected {
		lat = HostRouteMessageLatency // bounce in, re-encrypt, bounce out
	}
	if c.CrossNode {
		lat += CrossNodeMessageLatency
	}
	return lat
}

// DecodeStepTime returns the modeled time of one decode step at context
// ctxLen on the cluster.
func (c Cluster) DecodeStepTime(w trace.Workload, ctxLen int) (float64, error) {
	if err := c.Validate(w); err != nil {
		return 0, err
	}
	st, err := trace.DecodeStep(w, ctxLen)
	if err != nil {
		return 0, err
	}
	// Per-GPU share of compute and memory traffic.
	n := float64(c.NGPUs)
	computeT := st.TotalFLOPs() / n / c.GPU.TensorFlops
	memT := st.TotalBytes() / n / (c.GPU.HBMBandwidth * c.Platform.MemBWFactor)
	launch := float64(w.Model.Layers*c.GPU.KernelsPerBlock/c.NGPUs+4) *
		(c.GPU.KernelLaunchSec + c.Platform.KernelLaunchExtraSec)
	comm := 0.0
	commBytes, messages := c.commBytesPerStep(w)
	if bw := c.interconnectBW(); bw > 0 {
		comm = commBytes/bw + float64(messages)*c.messageLatency()
	}
	roof := computeT
	if memT > roof {
		roof = memT
	}
	// Pipeline parallelism overlaps comm with compute across microbatches;
	// tensor parallelism's all-reduces sit on the critical path.
	if c.Scheme == PipelineParallel {
		if comm > roof {
			roof = comm
		}
		comm = 0
	}
	total := roof + comm + launch + hw.GPUStepOverheadSec + c.Platform.StepExtraSec
	return total, nil
}

// DecodeThroughput returns steady-state tokens/s over the output window.
func (c Cluster) DecodeThroughput(w trace.Workload) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	var total float64
	for i := 0; i < w.OutputLen; i++ {
		t, err := c.DecodeStepTime(w, w.InputLen+i)
		if err != nil {
			return 0, err
		}
		total += t
	}
	return float64(w.Batch*w.OutputLen) / total, nil
}

// HybridOffload models §V-D.1: a model too large (or a deployment too
// cheap) to keep all weights in HBM streams OffloadFraction of the layer
// weights from host memory over PCIe every decode step (FlexGen/llama.cpp
// style offload). On a confidential GPU those transfers cross the encrypted
// bounce buffer, which is why the paper notes offloaded serving hurts more
// under confidential computing — and why AMX CPUs win that regime.
type HybridOffload struct {
	GPU      hw.GPU
	Platform tee.Platform // GPU-side platform (GPU or CGPU)
	// OffloadFraction in [0,1] of the weights resident in host memory.
	OffloadFraction float64
}

// DecodeStepTime costs one decode step of the hybrid deployment.
func (h HybridOffload) DecodeStepTime(w trace.Workload, ctxLen int) (float64, error) {
	if h.OffloadFraction < 0 || h.OffloadFraction > 1 {
		return 0, fmt.Errorf("scale: offload fraction %g out of [0,1]", h.OffloadFraction)
	}
	st, err := trace.DecodeStep(w, ctxLen)
	if err != nil {
		return 0, err
	}
	f := h.OffloadFraction
	computeT := st.TotalFLOPs() / h.GPU.TensorFlops
	memT := st.TotalBytes() * (1 - f) / h.GPU.HBMBandwidth
	// Offloaded weights stream over PCIe each step; the bounce buffer
	// throttles them on a confidential GPU.
	streamT := trace.WeightFootprint(w) * f / (h.GPU.PCIeBandwidth * h.Platform.PCIeBWFactor)
	launch := float64(w.Model.Layers*h.GPU.KernelsPerBlock+4) * (h.GPU.KernelLaunchSec + h.Platform.KernelLaunchExtraSec)
	roof := computeT
	if memT > roof {
		roof = memT
	}
	if streamT > roof {
		roof = streamT // transfers overlap compute at best; the slowest wins
	}
	return roof + launch + hw.GPUStepOverheadSec + h.Platform.StepExtraSec, nil
}

// DecodeThroughput returns steady-state tokens/s of the hybrid deployment.
func (h HybridOffload) DecodeThroughput(w trace.Workload) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	var total float64
	for i := 0; i < w.OutputLen; i++ {
		t, err := h.DecodeStepTime(w, w.InputLen+i)
		if err != nil {
			return 0, err
		}
		total += t
	}
	return float64(w.Batch*w.OutputLen) / total, nil
}
