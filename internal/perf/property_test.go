package perf

import (
	"testing"
	"testing/quick"

	"cllm/internal/dtype"
	"cllm/internal/hw"
	"cllm/internal/model"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

// Property tests on the execution engine's core monotonicities: the model
// must never produce paradoxes (more hardware slower, bigger workloads
// faster, protection free) regardless of workload parameters.

func quickWorkload(batch, in uint8) trace.Workload {
	cfg, _ := model.Lookup("llama2-7b")
	b := int(batch%32) + 1
	i := int(in%10)*64 + 64
	return trace.Workload{Model: cfg, Kind: dtype.BF16, Batch: b, Beam: 1, InputLen: i, OutputLen: 4}
}

func TestPropertyMoreCoresNeverSlower(t *testing.T) {
	if err := quick.Check(func(batch, in uint8, coresRaw uint8) bool {
		wl := quickWorkload(batch, in)
		cores := int(coresRaw%59) + 1
		lo, err := RunCPU(CPURun{CPU: hw.EMR2(), Platform: tee.Baremetal(), Workload: wl, Sockets: 1, CoresPerSocket: cores, AMX: true, Seed: 1})
		if err != nil {
			return false
		}
		hi, err := RunCPU(CPURun{CPU: hw.EMR2(), Platform: tee.Baremetal(), Workload: wl, Sockets: 1, CoresPerSocket: 60, AMX: true, Seed: 1})
		if err != nil {
			return false
		}
		// Allow a sliver of slack for noise sampling differences.
		return hi.TotalSec <= lo.TotalSec*1.02
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyProtectionNeverFree(t *testing.T) {
	if err := quick.Check(func(batch, in uint8) bool {
		wl := quickWorkload(batch, in)
		base, err := RunCPU(CPURun{CPU: hw.EMR1(), Platform: tee.Baremetal(), Workload: wl, Sockets: 1, AMX: true, Seed: 2})
		if err != nil {
			return false
		}
		tdx, err := RunCPU(CPURun{CPU: hw.EMR1(), Platform: tee.TDX(), Workload: wl, Sockets: 1, AMX: true, Seed: 2})
		if err != nil {
			return false
		}
		return tdx.MeanTokenLatency() > base.MeanTokenLatency()
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBiggerBatchMoreThroughput(t *testing.T) {
	if err := quick.Check(func(in uint8, batchRaw uint8) bool {
		small := quickWorkload(batchRaw%8, in)
		big := small
		big.Batch = small.Batch * 2
		rs, err := RunCPU(CPURun{CPU: hw.EMR2(), Platform: tee.TDX(), Workload: small, Sockets: 1, AMX: true, Seed: 3})
		if err != nil {
			return false
		}
		rb, err := RunCPU(CPURun{CPU: hw.EMR2(), Platform: tee.TDX(), Workload: big, Sockets: 1, AMX: true, Seed: 3})
		if err != nil {
			return false
		}
		// Doubling batch never reduces aggregate throughput in this regime.
		return rb.DecodeThroughput() >= rs.DecodeThroughput()*0.98
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLongerInputSlowerPrefill(t *testing.T) {
	if err := quick.Check(func(batch uint8) bool {
		wl := quickWorkload(batch, 0) // input 64
		long := wl
		long.InputLen = 1024
		rs, err := RunCPU(CPURun{CPU: hw.EMR1(), Platform: tee.Baremetal(), Workload: wl, Sockets: 1, AMX: true, Seed: 4})
		if err != nil {
			return false
		}
		rl, err := RunCPU(CPURun{CPU: hw.EMR1(), Platform: tee.Baremetal(), Workload: long, Sockets: 1, AMX: true, Seed: 4})
		if err != nil {
			return false
		}
		return rl.PrefillSec > rs.PrefillSec
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyInt8NeverSlowerThanBF16WithAMX(t *testing.T) {
	// With AMX, int8 halves bytes and doubles compute rate: it must never
	// lose to bf16 on the same workload shape.
	if err := quick.Check(func(batch, in uint8) bool {
		wl := quickWorkload(batch, in)
		i8 := wl
		i8.Kind = dtype.I8
		rb, err := RunCPU(CPURun{CPU: hw.EMR2(), Platform: tee.TDX(), Workload: wl, Sockets: 1, AMX: true, Seed: 5})
		if err != nil {
			return false
		}
		ri, err := RunCPU(CPURun{CPU: hw.EMR2(), Platform: tee.TDX(), Workload: i8, Sockets: 1, AMX: true, Seed: 5})
		if err != nil {
			return false
		}
		return ri.DecodeThroughput() >= rb.DecodeThroughput()
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyGPUOverheadBounded(t *testing.T) {
	// The cGPU's mechanisms are fixed per-step costs: overhead must stay
	// within (0, 25%) for any workload that fits.
	if err := quick.Check(func(batch, in uint8) bool {
		wl := quickWorkload(batch, in)
		g, err := RunGPU(GPURun{GPU: hw.H100NVL(), Platform: tee.GPU(), Workload: wl, Seed: 6})
		if err != nil {
			return true // skip non-fitting shapes
		}
		c, err := RunGPU(GPURun{GPU: hw.H100NVL(), Platform: tee.CGPU(), Workload: wl, Seed: 6})
		if err != nil {
			return false
		}
		ov := (g.DecodeThroughput() - c.DecodeThroughput()) / g.DecodeThroughput()
		return ov > 0 && ov < 0.25
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTraceConservation(t *testing.T) {
	// The engine must cost every op: sum of per-op times equals the step
	// total net of per-step costs (checked via the breakdown API).
	cfg, _ := model.Lookup("llama2-7b")
	wl := trace.Workload{Model: cfg, Kind: dtype.BF16, Batch: 4, Beam: 1, InputLen: 128, OutputLen: 4}
	run := CPURun{CPU: hw.EMR2(), Platform: tee.TDX(), Workload: wl, Sockets: 1, AMX: true, Seed: 7}
	breakdown, err := DecoderBlockBreakdown(run, 128)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, oc := range breakdown {
		if oc.Seconds <= 0 {
			t.Fatalf("op %v costed nothing", oc.Kind)
		}
		sum += oc.Seconds
	}
	res, err := RunCPU(run)
	if err != nil {
		t.Fatal(err)
	}
	perStep := res.MeanTokenLatency()
	blockTotal := sum * float64(cfg.Layers)
	if blockTotal > perStep {
		t.Fatalf("decoder blocks (%.2gs) cost more than the whole step (%.2gs)", blockTotal, perStep)
	}
	if blockTotal < perStep*0.5 {
		t.Fatalf("decoder blocks (%.2gs) unexpectedly below half the step (%.2gs)", blockTotal, perStep)
	}
}
