package perf

import (
	"fmt"
	"testing"

	"cllm/internal/dtype"
	"cllm/internal/gramine"
	"cllm/internal/hw"
	"cllm/internal/model"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

// TestCalibrationReport prints the overhead structure of the headline
// experiments so calibration drift is visible in -v runs. It asserts only
// loose sanity; the tight band checks live in the harness tests.
func TestCalibrationReport(t *testing.T) {
	cfg7, _ := model.Lookup("llama2-7b")
	cfg13, _ := model.Lookup("llama2-13b")

	sgxManifest := gramine.DefaultManifest("/models/w.bin", 192<<30, 64)
	sgx, err := tee.SGX(sgxManifest)
	if err != nil {
		t.Fatal(err)
	}
	platforms := []tee.Platform{tee.Baremetal(), tee.VM(tee.VMFullHuge), tee.TDX(), sgx}

	for _, mc := range []model.Config{cfg7, cfg13} {
		for _, kind := range []dtype.Kind{dtype.BF16, dtype.I8} {
			// Fig 4 latency config: batch 1, beam 1, 1024 in, 32 out.
			var base float64
			line := fmt.Sprintf("fig4-lat %s %v:", mc.Name, kind)
			for _, p := range platforms {
				r, err := RunCPU(CPURun{
					CPU: hw.EMR1(), Platform: p,
					Workload: trace.Workload{Model: mc, Kind: kind, Batch: 1, Beam: 1, InputLen: 1024, OutputLen: 32},
					Sockets:  1, AMX: true, Seed: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				lat := r.MeanTokenLatency()
				if p.Name == "baremetal" {
					base = lat
					line += fmt.Sprintf(" base=%.1fms", lat*1e3)
				} else {
					line += fmt.Sprintf(" %s=+%.2f%%", p.Name, (lat-base)/base*100)
				}
			}
			t.Log(line)

			// Fig 4 throughput config: batch 6, beam 4.
			line = fmt.Sprintf("fig4-tput %s %v:", mc.Name, kind)
			for _, p := range platforms {
				r, err := RunCPU(CPURun{
					CPU: hw.EMR1(), Platform: p,
					Workload: trace.Workload{Model: mc, Kind: kind, Batch: 6, Beam: 4, InputLen: 1024, OutputLen: 32},
					Sockets:  1, AMX: true, Seed: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				tput := r.DecodeThroughput()
				if p.Name == "baremetal" {
					base = tput
					line += fmt.Sprintf(" base=%.1ftok/s", tput)
				} else {
					line += fmt.Sprintf(" %s=-%.2f%%", p.Name, (base-tput)/base*100)
				}
			}
			t.Log(line)
		}
	}

	// Fig 9-style batch scaling on EMR2, TDX vs baremetal.
	for _, bs := range []int{1, 8, 64, 512} {
		wl := trace.Workload{Model: cfg7, Kind: dtype.BF16, Batch: bs, Beam: 1, InputLen: 128, OutputLen: 32}
		rb, err := RunCPU(CPURun{CPU: hw.EMR2(), Platform: tee.Baremetal(), Workload: wl, Sockets: 1, AMX: true, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		rt, err := RunCPU(CPURun{CPU: hw.EMR2(), Platform: tee.TDX(), Workload: wl, Sockets: 1, AMX: true, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("fig9 bs=%d: base=%.1f tok/s TDX=-%.2f%%", bs, rb.DecodeThroughput(),
			(rb.DecodeThroughput()-rt.DecodeThroughput())/rb.DecodeThroughput()*100)
	}

	// Fig 11-style GPU batch scaling.
	for _, bs := range []int{1, 16, 256} {
		wl := trace.Workload{Model: cfg7, Kind: dtype.BF16, Batch: bs, Beam: 1, InputLen: 128, OutputLen: 32}
		rg, err := RunGPU(GPURun{GPU: hw.H100NVL(), Platform: tee.GPU(), Workload: wl, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		rc, err := RunGPU(GPURun{GPU: hw.H100NVL(), Platform: tee.CGPU(), Workload: wl, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("fig11 bs=%d: GPU=%.0f tok/s cGPU=-%.2f%%", bs, rg.DecodeThroughput(),
			(rg.DecodeThroughput()-rc.DecodeThroughput())/rg.DecodeThroughput()*100)
	}

	// Fig 8: AMX vs no AMX at large batch (bf16 and int8).
	for _, kind := range []dtype.Kind{dtype.BF16, dtype.I8} {
		wl := trace.Workload{Model: cfg7, Kind: kind, Batch: 128, Beam: 1, InputLen: 128, OutputLen: 32}
		ra, err := RunCPU(CPURun{CPU: hw.EMR2(), Platform: tee.VM(tee.VMFullHuge), Workload: wl, Sockets: 1, AMX: true, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		rn, err := RunCPU(CPURun{CPU: hw.EMR2(), Platform: tee.VM(tee.VMFullHuge), Workload: wl, Sockets: 1, AMX: false, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("fig8 %v bs=128: AMX=%.0f tok/s noAMX=-%.2f%%", kind, ra.DecodeThroughput(),
			(ra.DecodeThroughput()-rn.DecodeThroughput())/ra.DecodeThroughput()*100)
	}
}

// TestCalibrationTwoSocket prints the multi-socket structure (Figs 5, 6, SNC).
func TestCalibrationTwoSocket(t *testing.T) {
	cfg7, _ := model.Lookup("llama2-7b")
	cfg70, _ := model.Lookup("llama2-70b")

	// Fig 5: 70B on two sockets — VM B vs TDX vs VM NB.
	wl70 := trace.Workload{Model: cfg70, Kind: dtype.BF16, Batch: 1, Beam: 1, InputLen: 1024, OutputLen: 16}
	run := func(p tee.Platform, wl trace.Workload, amx bool) *Result {
		r, err := RunCPU(CPURun{CPU: hw.EMR1(), Platform: p, Workload: wl, Sockets: 2, AMX: amx, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	vmB := run(tee.VM(tee.VMTransparentHuge), wl70, true)
	tdx70 := run(tee.TDX(), wl70, true)
	vmNB := run(tee.VM(tee.VMNoBinding), wl70, true)
	t.Logf("fig5 70B: VM-B lat=%.0fms TDX=+%.1f%% VM-NB=+%.1f%%",
		vmB.MeanTokenLatency()*1e3,
		(tdx70.MeanTokenLatency()-vmB.MeanTokenLatency())/vmB.MeanTokenLatency()*100,
		(vmNB.MeanTokenLatency()-vmB.MeanTokenLatency())/vmB.MeanTokenLatency()*100)

	// Fig 6: 7B two sockets — baremetal, VM FH, VM TH, TDX.
	wl7 := trace.Workload{Model: cfg7, Kind: dtype.BF16, Batch: 6, Beam: 4, InputLen: 1024, OutputLen: 32}
	bm := run(tee.Baremetal(), wl7, true)
	fh := run(tee.VM(tee.VMFullHuge), wl7, true)
	th := run(tee.VM(tee.VMTransparentHuge), wl7, true)
	tdx := run(tee.TDX(), wl7, true)
	sgxM := gramine.DefaultManifest("/m", 192<<30, 64)
	sgxP, _ := tee.SGX(sgxM)
	sgx := run(sgxP, wl7, true)
	snc := run(tee.TDX().WithSNC(), wl7, true)
	base := bm.DecodeThroughput()
	t.Logf("fig6 7B 2S: bm=%.1f tok/s FH=-%.2f%% TH=-%.2f%% TDX=-%.2f%% SGX=-%.2f%% TDX+SNC=-%.2f%%",
		base,
		(base-fh.DecodeThroughput())/base*100,
		(base-th.DecodeThroughput())/base*100,
		(base-tdx.DecodeThroughput())/base*100,
		(base-sgx.DecodeThroughput())/base*100,
		(base-snc.DecodeThroughput())/base*100)
}
