package perf

import (
	"testing"

	"cllm/internal/dtype"
	"cllm/internal/gramine"
	"cllm/internal/hw"
	"cllm/internal/model"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

func wl7(t *testing.T, kind dtype.Kind, batch, beam, in, out int) trace.Workload {
	t.Helper()
	cfg, err := model.Lookup("llama2-7b")
	if err != nil {
		t.Fatal(err)
	}
	return trace.Workload{Model: cfg, Kind: kind, Batch: batch, Beam: beam, InputLen: in, OutputLen: out}
}

func mustRunCPU(t *testing.T, cfg CPURun) *Result {
	t.Helper()
	r, err := RunCPU(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func overheadTput(base, x *Result) float64 {
	return (base.DecodeThroughput() - x.DecodeThroughput()) / base.DecodeThroughput() * 100
}

func overheadLat(base, x *Result) float64 {
	return (x.MeanTokenLatency() - base.MeanTokenLatency()) / base.MeanTokenLatency() * 100
}

func TestRunCPUBasics(t *testing.T) {
	r := mustRunCPU(t, CPURun{
		CPU: hw.EMR1(), Platform: tee.Baremetal(),
		Workload: wl7(t, dtype.BF16, 2, 1, 64, 8), Sockets: 1, AMX: true, Seed: 1,
	})
	if len(r.TokenLatencies) != 8 {
		t.Fatalf("latency samples = %d, want 8", len(r.TokenLatencies))
	}
	if r.Tokens != 16 {
		t.Fatalf("tokens = %d, want 16 (batch 2 × 8)", r.Tokens)
	}
	if r.PrefillSec <= 0 || r.TotalSec <= r.PrefillSec {
		t.Fatalf("times inconsistent: prefill %g total %g", r.PrefillSec, r.TotalSec)
	}
	if r.Throughput() <= 0 {
		t.Error("non-positive throughput")
	}
	if r.DecodeThroughput() <= r.Throughput() {
		t.Error("decode throughput should exceed overall throughput")
	}
}

func TestRunCPUErrors(t *testing.T) {
	bad := CPURun{CPU: hw.EMR1(), Platform: tee.Baremetal(), Workload: trace.Workload{}, Sockets: 1}
	if _, err := RunCPU(bad); err == nil {
		t.Error("invalid workload accepted")
	}
	threeSockets := CPURun{CPU: hw.EMR1(), Platform: tee.Baremetal(), Workload: wl7(t, dtype.BF16, 1, 1, 8, 4), Sockets: 3}
	if _, err := RunCPU(threeSockets); err == nil {
		t.Error("3 sockets on a 2-socket system accepted")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := CPURun{CPU: hw.EMR1(), Platform: tee.TDX(), Workload: wl7(t, dtype.BF16, 1, 1, 64, 16), Sockets: 1, AMX: true, Seed: 7}
	a := mustRunCPU(t, cfg)
	b := mustRunCPU(t, cfg)
	for i := range a.TokenLatencies {
		if a.TokenLatencies[i] != b.TokenLatencies[i] {
			t.Fatal("same seed produced different latencies")
		}
	}
}

func TestInsight4SingleSocketBands(t *testing.T) {
	// Insight 4: TDX and SGX overheads 4–10% for throughput; latency under
	// ~20%. Checked on the paper's Fig 4 throughput configuration.
	sgxP, err := tee.SGX(gramine.DefaultManifest("/m", 192<<30, 64))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []dtype.Kind{dtype.BF16, dtype.I8} {
		wl := wl7(t, kind, 6, 4, 1024, 24)
		base := mustRunCPU(t, CPURun{CPU: hw.EMR1(), Platform: tee.Baremetal(), Workload: wl, Sockets: 1, AMX: true, Seed: 2})
		for _, p := range []tee.Platform{tee.TDX(), sgxP} {
			r := mustRunCPU(t, CPURun{CPU: hw.EMR1(), Platform: p, Workload: wl, Sockets: 1, AMX: true, Seed: 2})
			ov := overheadTput(base, r)
			if ov < 2 || ov > 12 {
				t.Errorf("%s %v throughput overhead %.2f%%, want in (2,12)", p.Name, kind, ov)
			}
			lat := overheadLat(base, r)
			if lat < 0 || lat > 20 {
				t.Errorf("%s %v latency overhead %.2f%%, want in (0,20)", p.Name, kind, lat)
			}
		}
	}
}

func TestInsight5SGXBetweenVMAndTDX(t *testing.T) {
	// Fig 4: the performance of SGX lies between a VM and TDX.
	wl := wl7(t, dtype.BF16, 6, 4, 1024, 24)
	run := func(p tee.Platform) float64 {
		return mustRunCPU(t, CPURun{CPU: hw.EMR1(), Platform: p, Workload: wl, Sockets: 1, AMX: true, Seed: 3}).DecodeThroughput()
	}
	sgxP, _ := tee.SGX(gramine.DefaultManifest("/m", 192<<30, 64))
	vm := run(tee.VM(tee.VMFullHuge))
	sgx := run(sgxP)
	tdx := run(tee.TDX())
	if !(vm > sgx && sgx > tdx) {
		t.Errorf("ordering violated: VM=%.1f SGX=%.1f TDX=%.1f (want VM > SGX > TDX)", vm, sgx, tdx)
	}
}

func TestVirtualizationTaxBand(t *testing.T) {
	// Paper: running in a VM costs 1.8–5.4% (single socket).
	wl := wl7(t, dtype.BF16, 1, 1, 1024, 24)
	base := mustRunCPU(t, CPURun{CPU: hw.EMR1(), Platform: tee.Baremetal(), Workload: wl, Sockets: 1, AMX: true, Seed: 4})
	vm := mustRunCPU(t, CPURun{CPU: hw.EMR1(), Platform: tee.VM(tee.VMTransparentHuge), Workload: wl, Sockets: 1, AMX: true, Seed: 4})
	ov := overheadLat(base, vm)
	if ov < 1 || ov > 7 {
		t.Errorf("VM latency overhead %.2f%%, want ~1.8-5.4%%", ov)
	}
}

func TestInt8HalvesLatency(t *testing.T) {
	// Fig 4: int8 achieves similar throughput but almost half the latency.
	bf := mustRunCPU(t, CPURun{CPU: hw.EMR1(), Platform: tee.Baremetal(), Workload: wl7(t, dtype.BF16, 1, 1, 1024, 16), Sockets: 1, AMX: true, Seed: 5})
	i8 := mustRunCPU(t, CPURun{CPU: hw.EMR1(), Platform: tee.Baremetal(), Workload: wl7(t, dtype.I8, 1, 1, 1024, 16), Sockets: 1, AMX: true, Seed: 5})
	ratio := bf.MeanTokenLatency() / i8.MeanTokenLatency()
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("bf16/int8 latency ratio = %.2f, want ≈2", ratio)
	}
}

func TestInsight9OverheadDropsWhenComputeBound(t *testing.T) {
	// TDX overhead at batch 512 must be lower than at batch 8 (EMR2).
	ov := func(batch int) float64 {
		wl := wl7(t, dtype.BF16, batch, 1, 128, 16)
		base := mustRunCPU(t, CPURun{CPU: hw.EMR2(), Platform: tee.Baremetal(), Workload: wl, Sockets: 1, AMX: true, Seed: 6})
		tdx := mustRunCPU(t, CPURun{CPU: hw.EMR2(), Platform: tee.TDX(), Workload: wl, Sockets: 1, AMX: true, Seed: 6})
		return overheadTput(base, tdx)
	}
	small, large := ov(8), ov(512)
	if large >= small {
		t.Errorf("TDX overhead did not drop with batch: bs8=%.2f%% bs512=%.2f%%", small, large)
	}
}

func TestInsight8AMX(t *testing.T) {
	// AMX accelerates large-batch bf16 multiple times and is required for
	// usable int8 (no-AMX int8 loses ≈86–96%).
	wlBF := wl7(t, dtype.BF16, 128, 1, 128, 8)
	amx := mustRunCPU(t, CPURun{CPU: hw.EMR2(), Platform: tee.VM(tee.VMFullHuge), Workload: wlBF, Sockets: 1, AMX: true, Seed: 7})
	noamx := mustRunCPU(t, CPURun{CPU: hw.EMR2(), Platform: tee.VM(tee.VMFullHuge), Workload: wlBF, Sockets: 1, AMX: false, Seed: 7})
	if sp := amx.DecodeThroughput() / noamx.DecodeThroughput(); sp < 1.5 || sp > 6 {
		t.Errorf("AMX bf16 speedup at bs128 = %.2fx, want 1.5-6x", sp)
	}
	wlI8 := wl7(t, dtype.I8, 128, 1, 128, 8)
	amx8 := mustRunCPU(t, CPURun{CPU: hw.EMR2(), Platform: tee.VM(tee.VMFullHuge), Workload: wlI8, Sockets: 1, AMX: true, Seed: 7})
	noamx8 := mustRunCPU(t, CPURun{CPU: hw.EMR2(), Platform: tee.VM(tee.VMFullHuge), Workload: wlI8, Sockets: 1, AMX: false, Seed: 7})
	loss := overheadTput(amx8, noamx8)
	if loss < 80 || loss > 99.5 {
		t.Errorf("no-AMX int8 loss = %.2f%%, want 86-96%%", loss)
	}
	// At batch 1 the workload is memory-bound: AMX advantage is small (1-4%).
	wlSmall := wl7(t, dtype.BF16, 1, 1, 128, 8)
	amxS := mustRunCPU(t, CPURun{CPU: hw.EMR2(), Platform: tee.VM(tee.VMFullHuge), Workload: wlSmall, Sockets: 1, AMX: true, Seed: 8})
	noamxS := mustRunCPU(t, CPURun{CPU: hw.EMR2(), Platform: tee.VM(tee.VMFullHuge), Workload: wlSmall, Sockets: 1, AMX: false, Seed: 8})
	if d := overheadTput(amxS, noamxS); d > 15 {
		t.Errorf("no-AMX bf16 at batch 1 loses %.2f%%, expected small (memory-bound)", d)
	}
}

func TestInsight6NUMAOrdering70B(t *testing.T) {
	// Fig 5: VM B fastest, TDX in between, VM NB slowest.
	cfg70, _ := model.Lookup("llama2-70b")
	wl := trace.Workload{Model: cfg70, Kind: dtype.BF16, Batch: 1, Beam: 1, InputLen: 1024, OutputLen: 8}
	run := func(p tee.Platform) float64 {
		return mustRunCPU(t, CPURun{CPU: hw.EMR1(), Platform: p, Workload: wl, Sockets: 2, AMX: true, Seed: 9}).MeanTokenLatency()
	}
	b := run(tee.VM(tee.VMTransparentHuge))
	x := run(tee.TDX())
	nb := run(tee.VM(tee.VMNoBinding))
	if !(b < x && x < nb) {
		t.Errorf("70B latency ordering: VM-B=%.0fms TDX=%.0fms VM-NB=%.0fms", b*1e3, x*1e3, nb*1e3)
	}
	// The 200 ms/word service level is no longer upheld for 70B (paper).
	if b < 0.2 {
		t.Errorf("70B VM-B latency %.0fms unexpectedly meets the 200ms budget", b*1e3)
	}
}

func TestInsight7HugepagesGap(t *testing.T) {
	// VM TH over VM FH quantifies missing 1G support: 3.19–5.20% (two sockets).
	wl := wl7(t, dtype.BF16, 6, 4, 1024, 24)
	fh := mustRunCPU(t, CPURun{CPU: hw.EMR1(), Platform: tee.VM(tee.VMFullHuge), Workload: wl, Sockets: 2, AMX: true, Seed: 10})
	th := mustRunCPU(t, CPURun{CPU: hw.EMR1(), Platform: tee.VM(tee.VMTransparentHuge), Workload: wl, Sockets: 2, AMX: true, Seed: 10})
	gap := overheadTput(fh, th)
	if gap < 1.5 || gap > 7 {
		t.Errorf("TH-over-FH gap = %.2f%%, want ≈3.2-5.2%%", gap)
	}
}

func TestSNCAblation(t *testing.T) {
	// §IV-A.1: enabling sub-NUMA clustering takes TDX overhead from ~5% to
	// ~42% (we accept a 25-60 band on two sockets).
	wl := wl7(t, dtype.BF16, 6, 4, 1024, 24)
	base := mustRunCPU(t, CPURun{CPU: hw.EMR2(), Platform: tee.Baremetal(), Workload: wl, Sockets: 2, AMX: true, Seed: 11})
	tdx := mustRunCPU(t, CPURun{CPU: hw.EMR2(), Platform: tee.TDX(), Workload: wl, Sockets: 2, AMX: true, Seed: 11})
	snc := mustRunCPU(t, CPURun{CPU: hw.EMR2(), Platform: tee.TDX().WithSNC(), Workload: wl, Sockets: 2, AMX: true, Seed: 11})
	ovTDX := overheadTput(base, tdx)
	ovSNC := overheadTput(base, snc)
	if ovSNC < ovTDX*1.8 {
		t.Errorf("SNC overhead %.1f%% not ≫ TDX %.1f%%", ovSNC, ovTDX)
	}
	if ovSNC < 25 || ovSNC > 60 {
		t.Errorf("SNC overhead %.1f%%, want ~42%%", ovSNC)
	}
}

func TestSGXMultiSocketProhibitive(t *testing.T) {
	// §IV-A.1: SGX overheads across two sockets grow to ~230% (latency).
	cfg70, _ := model.Lookup("llama2-70b")
	wl := trace.Workload{Model: cfg70, Kind: dtype.BF16, Batch: 1, Beam: 1, InputLen: 512, OutputLen: 8}
	sgxP, _ := tee.SGX(gramine.DefaultManifest("/m", 400<<30, 64))
	base := mustRunCPU(t, CPURun{CPU: hw.EMR1(), Platform: tee.Baremetal(), Workload: wl, Sockets: 2, AMX: true, Seed: 12})
	sgx := mustRunCPU(t, CPURun{CPU: hw.EMR1(), Platform: sgxP, Workload: wl, Sockets: 2, AMX: true, Seed: 12})
	ov := overheadLat(base, sgx)
	if ov < 100 {
		t.Errorf("SGX 70B two-socket latency overhead %.0f%%, want prohibitive (>100%%)", ov)
	}
}

func TestEPCThrashing(t *testing.T) {
	// A model larger than the enclave size must thrash EPC paging and lose
	// far more than the normal SGX overhead.
	wl := wl7(t, dtype.BF16, 1, 1, 512, 8)
	small, _ := tee.SGX(gramine.DefaultManifest("/m", 8<<30, 64)) // 8G enclave < 14GB weights
	big, _ := tee.SGX(gramine.DefaultManifest("/m", 192<<30, 64))
	rs := mustRunCPU(t, CPURun{CPU: hw.EMR1(), Platform: small, Workload: wl, Sockets: 1, AMX: true, Seed: 13})
	rb := mustRunCPU(t, CPURun{CPU: hw.EMR1(), Platform: big, Workload: wl, Sockets: 1, AMX: true, Seed: 13})
	if rs.MeanTokenLatency() < 2*rb.MeanTokenLatency() {
		t.Errorf("EPC thrashing latency %.0fms not ≫ fitting enclave %.0fms",
			rs.MeanTokenLatency()*1e3, rb.MeanTokenLatency()*1e3)
	}
}

func TestVCPUScalingPlateau(t *testing.T) {
	// Fig 12: throughput stops improving past ~32 cores (memory-bound).
	wl := wl7(t, dtype.BF16, 16, 1, 128, 8)
	tput := func(cores int) float64 {
		return mustRunCPU(t, CPURun{CPU: hw.EMR2(), Platform: tee.TDX(), Workload: wl, Sockets: 1, CoresPerSocket: cores, AMX: true, Seed: 14}).DecodeThroughput()
	}
	t8, t32, t60 := tput(8), tput(32), tput(60)
	if t32 < t8*1.5 {
		t.Errorf("scaling 8→32 cores only %.2fx", t32/t8)
	}
	if t60 > t32*1.15 {
		t.Errorf("scaling 32→60 cores gained %.2fx, want plateau", t60/t32)
	}
}

func TestGPUBasics(t *testing.T) {
	wl := wl7(t, dtype.BF16, 4, 1, 128, 16)
	r, err := RunGPU(GPURun{GPU: hw.H100NVL(), Platform: tee.GPU(), Workload: wl, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.TokenLatencies) != 16 || r.Tokens != 64 {
		t.Fatalf("GPU run shape wrong: %d samples, %d tokens", len(r.TokenLatencies), r.Tokens)
	}
	// 70B does not fit a single H100 (the paper: a single GPU fits ~30B).
	cfg70, _ := model.Lookup("llama2-70b")
	big := trace.Workload{Model: cfg70, Kind: dtype.BF16, Batch: 1, Beam: 1, InputLen: 128, OutputLen: 8}
	if _, err := RunGPU(GPURun{GPU: hw.H100NVL(), Platform: tee.GPU(), Workload: big, Seed: 15}); err == nil {
		t.Error("70B fit in 94GB HBM")
	}
}

func TestInsight10CGPUBand(t *testing.T) {
	// Fig 11: cGPU throughput penalties 4–8%, decreasing with batch size.
	ov := func(batch int) float64 {
		wl := wl7(t, dtype.BF16, batch, 1, 128, 16)
		g, err := RunGPU(GPURun{GPU: hw.H100NVL(), Platform: tee.GPU(), Workload: wl, Seed: 16})
		if err != nil {
			t.Fatal(err)
		}
		c, err := RunGPU(GPURun{GPU: hw.H100NVL(), Platform: tee.CGPU(), Workload: wl, Seed: 16})
		if err != nil {
			t.Fatal(err)
		}
		return (g.DecodeThroughput() - c.DecodeThroughput()) / g.DecodeThroughput() * 100
	}
	small := ov(1)
	large := ov(256)
	if small < 4 || small > 10 {
		t.Errorf("cGPU overhead at bs1 = %.2f%%, want 4-10%%", small)
	}
	if large >= small {
		t.Errorf("cGPU overhead did not shrink with batch: bs1=%.2f%% bs256=%.2f%%", small, large)
	}
}

func TestGPUFasterThanCPU(t *testing.T) {
	// Raw performance: H100 ≫ CPU socket for a model that fits (paper §V-D).
	wl := wl7(t, dtype.BF16, 4, 1, 128, 16)
	cpu := mustRunCPU(t, CPURun{CPU: hw.EMR2(), Platform: tee.Baremetal(), Workload: wl, Sockets: 1, AMX: true, Seed: 17})
	gpu, err := RunGPU(GPURun{GPU: hw.H100NVL(), Platform: tee.GPU(), Workload: wl, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if gpu.DecodeThroughput() < 3*cpu.DecodeThroughput() {
		t.Errorf("GPU %.0f tok/s not ≫ CPU %.0f tok/s", gpu.DecodeThroughput(), cpu.DecodeThroughput())
	}
}

func TestTEEsPreserveResults(t *testing.T) {
	// TEEs change timing, never tokens: the functional engine is shared, so
	// here we assert the performance model also reports identical token
	// counts and step structure across platforms.
	wl := wl7(t, dtype.BF16, 2, 1, 64, 12)
	a := mustRunCPU(t, CPURun{CPU: hw.EMR1(), Platform: tee.Baremetal(), Workload: wl, Sockets: 1, AMX: true, Seed: 18})
	b := mustRunCPU(t, CPURun{CPU: hw.EMR1(), Platform: tee.TDX(), Workload: wl, Sockets: 1, AMX: true, Seed: 18})
	if a.Tokens != b.Tokens || len(a.TokenLatencies) != len(b.TokenLatencies) {
		t.Error("platforms disagree on work performed")
	}
}

func TestBackendEfficiencyScales(t *testing.T) {
	wl := wl7(t, dtype.BF16, 1, 1, 1024, 16)
	fast := mustRunCPU(t, CPURun{CPU: hw.EMR1(), Platform: tee.Baremetal(), Workload: wl, Sockets: 1, AMX: true, BackendEfficiency: 1, Seed: 19})
	slow := mustRunCPU(t, CPURun{CPU: hw.EMR1(), Platform: tee.Baremetal(), Workload: wl, Sockets: 1, AMX: true, BackendEfficiency: 0.5, Seed: 19})
	if slow.PrefillSec < fast.PrefillSec*1.5 {
		t.Errorf("halving backend efficiency: prefill %.2fs vs %.2fs", slow.PrefillSec, fast.PrefillSec)
	}
}
