// Package perf is the execution engine of the reproduction: it walks an
// operator trace (internal/trace) through a hardware description
// (internal/hw) and a TEE platform (internal/tee), producing per-token
// latency samples and end-to-end throughput. Every overhead the paper
// reports emerges here from mechanisms — roofline compute vs. memory time,
// TLB reach under the effective page policy, NUMA remote traffic over
// (possibly encrypted) UPI, EPC paging, enclave exits, kernel-launch and
// bounce-buffer costs — never from hard-coded percentages.
package perf

import (
	"fmt"

	"cllm/internal/hw"
	"cllm/internal/mem"
	"cllm/internal/sim"
	"cllm/internal/stats"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

// CPURun configures one CPU measurement.
type CPURun struct {
	CPU      hw.CPU
	Platform tee.Platform
	Workload trace.Workload
	// Sockets used (1 or 2).
	Sockets int
	// CoresPerSocket actually used; 0 = all.
	CoresPerSocket int
	// AMX enables the tile units (Fig 8 ablates this).
	AMX bool
	// BackendEfficiency is the framework factor (IPEX = 1, Fig 3).
	BackendEfficiency float64
	// Seed drives the noise model.
	Seed int64
}

// Result carries the measured series.
type Result struct {
	// TokenLatencies are per-decode-step seconds (one per output token),
	// after the harness-level noise model, before outlier filtering.
	TokenLatencies []float64
	// PrefillSec is the prompt-processing time.
	PrefillSec float64
	// TotalSec is prefill plus all decode steps.
	TotalSec float64
	// Tokens is the number of user-visible generated tokens.
	Tokens int
}

// filteredDecodeSec returns the decode-phase duration with the paper's
// Z>3 outlier exclusion applied (§III-D): rare memory-encryption stalls
// appear in the violin plots but are excluded from the reported statistics.
func (r *Result) filteredDecodeSec() float64 {
	if len(r.TokenLatencies) == 0 {
		return r.TotalSec - r.PrefillSec
	}
	kept, _ := stats.FilterZScore(r.TokenLatencies, 3)
	return stats.Mean(kept) * float64(len(r.TokenLatencies))
}

// Throughput returns generated tokens per second including the first-token
// (prefill) latency, as the paper's generation throughput does (Fig 12),
// after Z>3 outlier exclusion.
func (r *Result) Throughput() float64 {
	d := r.PrefillSec + r.filteredDecodeSec()
	if d <= 0 {
		return 0
	}
	return float64(r.Tokens) / d
}

// DecodeThroughput excludes prefill (steady-state tokens/s), after Z>3
// outlier exclusion.
func (r *Result) DecodeThroughput() float64 {
	d := r.filteredDecodeSec()
	if d <= 0 {
		return 0
	}
	return float64(r.Tokens) / d
}

// RawThroughput includes every sample (outliers and all): what a wall-clock
// measurement without filtering would report.
func (r *Result) RawThroughput() float64 {
	if r.TotalSec <= 0 {
		return 0
	}
	return float64(r.Tokens) / r.TotalSec
}

// MeanTokenLatency returns the outlier-filtered mean next-token latency,
// replicating the paper's Z>3 filtering.
func (r *Result) MeanTokenLatency() float64 {
	kept, _ := stats.FilterZScore(r.TokenLatencies, 3)
	return stats.Mean(kept)
}

func (c *CPURun) normalize() error {
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.Sockets <= 0 {
		c.Sockets = 1
	}
	if c.Sockets > c.CPU.Sockets {
		return fmt.Errorf("perf: %d sockets requested, %s has %d", c.Sockets, c.CPU.Name, c.CPU.Sockets)
	}
	if c.CoresPerSocket <= 0 || c.CoresPerSocket > c.CPU.CoresPerSocket {
		c.CoresPerSocket = c.CPU.CoresPerSocket
	}
	if c.BackendEfficiency <= 0 {
		c.BackendEfficiency = 1
	}
	return nil
}

// RunCPU simulates the full generation (prefill + OutputLen decode steps).
func RunCPU(cfg CPURun) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	noise := sim.NewNoise(cfg.Seed, hw.NoiseBase, hw.MemEncryptJitter, hw.OutlierProb, hw.OutlierScale)
	res := &Result{}

	pre, err := trace.PrefillStep(cfg.Workload)
	if err != nil {
		return nil, err
	}
	res.PrefillSec = cpuStepTime(cfg, pre)
	res.TotalSec = res.PrefillSec

	w := cfg.Workload
	for i := 0; i < w.OutputLen; i++ {
		st, err := trace.DecodeStep(w, w.InputLen+i)
		if err != nil {
			return nil, err
		}
		t := cpuStepTime(cfg, st)
		t = noise.Sample(t, cfg.Platform.Protected)
		res.TokenLatencies = append(res.TokenLatencies, t)
		res.TotalSec += t
		res.Tokens += st.NewTokens
	}
	return res, nil
}

// effectiveMemBW returns the DRAM bandwidth the run can actually use: the
// socket bandwidth degraded by memory encryption, capped by per-core
// achievable bandwidth (why Fig 12's throughput plateaus near 32 cores).
func effectiveMemBW(cfg CPURun) float64 {
	perSocket := cfg.CPU.MemBWPerSocket * cfg.Platform.MemBWFactor
	coreCap := float64(cfg.CoresPerSocket) * PerCoreMemBW
	if coreCap < perSocket {
		perSocket = coreCap
	}
	eff := cfg.BackendEfficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	// Framework inefficiency wastes bandwidth too (extra copies, poor
	// layouts) — this is what separates HF from IPEX on the memory-bound
	// decode path (Fig 3).
	return perSocket * float64(cfg.Sockets) * eff
}

// PerCoreMemBW is the streaming bandwidth one core can sustain; it caps
// socket bandwidth until enough cores are used (~31 cores saturate a socket).
const PerCoreMemBW = 8e9

// spanFactor scales the NUMA policy's remote fraction by how much of a
// socket's memory the model occupies: a 7B model (14 GB) mostly lands on one
// node even with broken bindings, while a 70B model (140 GB) necessarily
// spans sockets, so placement failures hurt it fully (Fig 5 vs Fig 6).
func spanFactor(cfg CPURun) float64 {
	foot := trace.WeightFootprint(cfg.Workload) +
		trace.KVCacheBytes(cfg.Workload, cfg.Workload.InputLen+cfg.Workload.OutputLen)
	half := 0.5 * float64(cfg.CPU.MemPerSocketBytes)
	f := foot / half
	if f < 0.5 {
		return 0.5
	}
	if f > 1 {
		return 1
	}
	return f
}

// cpuStepParams holds the step-level factors shared by every operator of
// one step: roofline inputs plus the TLB/EPC penalties derived from the
// step's resident working set. Computing them once lets the per-op cost be
// evaluated without allocating (cpuStepTime) or materialized per op
// (cpuOpTimes) from the same arithmetic.
type cpuStepParams struct {
	flops, bw, remote, upi float64
	tlb, epcFactor         float64
	perOp                  float64
}

func newCPUStepParams(cfg CPURun, st trace.StepTrace) cpuStepParams {
	p := cfg.Platform
	flops := cfg.CPU.SocketFlops(cfg.Workload.Kind, cfg.AMX, cfg.CoresPerSocket) * float64(cfg.Sockets) * cfg.BackendEfficiency
	if st.Phase == trace.Prefill {
		flops *= hw.CPUPrefillEfficiency
	}
	// Step-level working set drives TLB pressure: each step streams the
	// weights plus the KV cache, evicting translations continuously.
	// Cross-row re-reads of shared prefix pages (st.SharedBytes) are
	// bandwidth, not resident footprint — the pages are mapped once, so
	// they neither widen TLB reach demand nor page the enclave.
	ws := st.TotalBytes() - st.SharedBytes
	if ws < 0 {
		ws = 0
	}
	return cpuStepParams{
		flops:     flops,
		bw:        effectiveMemBW(cfg),
		remote:    mem.RemoteFraction(p.NUMA, cfg.Sockets) * spanFactor(cfg),
		upi:       cfg.CPU.UPIBandwidth * p.UPIFactor(),
		tlb:       mem.TLBPenalty(ws, p.Pages, cfg.CPU.DTLBEntries, p.PageWalkAmp),
		epcFactor: p.EPC.PagingPenalty(ws),
		perOp:     hw.CPUOpDispatchSec + p.PerOpCostSec,
	}
}

// opTime costs one operator under the step's shared factors.
func (sp cpuStepParams) opTime(op trace.Op) float64 {
	computeT := 0.0
	if sp.flops > 0 {
		computeT = op.FLOPs / sp.flops
	}
	bytes := op.Bytes()
	memT := bytes * (1 - sp.remote) / sp.bw
	if sp.remote > 0 && sp.upi > 0 {
		memT += bytes * sp.remote / sp.upi
	}
	memT *= (1 + sp.tlb) * sp.epcFactor
	opT := computeT
	if memT > opT {
		opT = memT
	}
	return opT + sp.perOp
}

// cpuOpTimes returns the modeled duration of every operator in the step.
func cpuOpTimes(cfg CPURun, st trace.StepTrace) []float64 {
	sp := newCPUStepParams(cfg, st)
	out := make([]float64, len(st.Ops))
	for i, op := range st.Ops {
		out[i] = sp.opTime(op)
	}
	return out
}

// cpuStepTime costs one step trace on the CPU configuration. It is the
// serving scheduler's innermost loop (once per operator per iteration), so
// it sums op times directly instead of materializing the cpuOpTimes slice.
func cpuStepTime(cfg CPURun, st trace.StepTrace) float64 {
	p := cfg.Platform
	sp := newCPUStepParams(cfg, st)
	var total float64
	for _, op := range st.Ops {
		total += sp.opTime(op)
	}
	// Per-sequence framework overhead (sampling, cache management).
	total += hw.CPUPerSeqStepCost * float64(cfg.Workload.Rows())
	// Enclave exits (SGX): per user-visible token this step produces.
	total += p.ExitCostSec * p.ExitsPerToken * float64(st.NewTokens)
	// Virtualization tax applies to wall-clock (vCPU scheduling, timers).
	total *= 1 + p.ComputeTax
	return total
}

// CPUStepTime exposes the per-step cost model: the modeled wall-clock
// duration of one step trace under the configuration, with defaults
// normalized. The serving scheduler composes steps dynamically (mixed
// prefill/decode batches whose shape changes every iteration) instead of
// running fixed generations, so it needs the step cost without the
// surrounding generation loop. The noise model is deliberately excluded —
// callers own jitter so one sample covers one scheduler iteration.
func CPUStepTime(cfg CPURun, st trace.StepTrace) (float64, error) {
	if err := cfg.normalize(); err != nil {
		return 0, err
	}
	return cpuStepTime(cfg, st), nil
}

// GPUStepTime is CPUStepTime's GPU counterpart.
func GPUStepTime(cfg GPURun, st trace.StepTrace) (float64, error) {
	if err := cfg.Workload.Validate(); err != nil {
		return 0, err
	}
	return gpuStepTime(cfg, st), nil
}

// CPUPrefillChunkTime costs one chunked-prefill step on the CPU
// configuration: cfg.Workload.InputLen new prompt tokens per row computed
// on top of hist cached tokens (earlier chunks or shared-prefix reuse).
// With hist == 0 it equals the monolithic prompt pass of the same length.
// The serving scheduler uses this to bound per-iteration prefill work so
// in-flight decodes keep a steady token cadence.
func CPUPrefillChunkTime(cfg CPURun, hist int) (float64, error) {
	if err := cfg.normalize(); err != nil {
		return 0, err
	}
	st, err := trace.PrefillChunkStep(cfg.Workload, hist)
	if err != nil {
		return 0, err
	}
	return cpuStepTime(cfg, st), nil
}

// GPUPrefillChunkTime is CPUPrefillChunkTime's GPU counterpart.
func GPUPrefillChunkTime(cfg GPURun, hist int) (float64, error) {
	st, err := trace.PrefillChunkStep(cfg.Workload, hist)
	if err != nil {
		return 0, err
	}
	return gpuStepTime(cfg, st), nil
}

// OpCost is an operator-kind duration aggregate (Fig 7).
type OpCost struct {
	Kind    trace.OpKind
	Seconds float64
}

// DecoderBlockBreakdown returns the per-decoder-block duration of each
// operator kind for one decode step (total across layers divided by the
// layer count), reproducing the paper's per-block trace.
func DecoderBlockBreakdown(cfg CPURun, ctxLen int) ([]OpCost, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	st, err := trace.DecodeStep(cfg.Workload, ctxLen)
	if err != nil {
		return nil, err
	}
	times := cpuOpTimes(cfg, st)
	agg := make(map[trace.OpKind]float64)
	for i, op := range st.Ops {
		if op.Layer < 0 {
			continue // embedding/head are outside the decoder block
		}
		agg[op.Kind] += times[i] * (1 + cfg.Platform.ComputeTax)
	}
	order := []trace.OpKind{
		trace.OpInputNorm, trace.OpSelfAttn, trace.OpMHALinearAdd,
		trace.OpPostNorm, trace.OpLinearSiluMul, trace.OpMLPLinearAdd,
	}
	layers := float64(cfg.Workload.Model.Layers)
	out := make([]OpCost, 0, len(order))
	for _, k := range order {
		out = append(out, OpCost{Kind: k, Seconds: agg[k] / layers})
	}
	return out, nil
}

// GPURun configures one GPU measurement.
type GPURun struct {
	GPU      hw.GPU
	Platform tee.Platform
	Workload trace.Workload
	Seed     int64
}

// RunGPU simulates generation on the (c)GPU.
func RunGPU(cfg GPURun) (*Result, error) {
	if err := cfg.Workload.Validate(); err != nil {
		return nil, err
	}
	if fit := float64(cfg.GPU.HBMBytes); trace.WeightFootprint(cfg.Workload)+trace.KVCacheBytes(cfg.Workload, cfg.Workload.InputLen+cfg.Workload.OutputLen) > fit {
		return nil, fmt.Errorf("perf: workload does not fit in %s HBM (%d bytes)", cfg.GPU.Name, cfg.GPU.HBMBytes)
	}
	noise := sim.NewNoise(cfg.Seed, hw.NoiseBase/2, hw.MemEncryptJitter/4, 0, 1)
	res := &Result{}

	pre, err := trace.PrefillStep(cfg.Workload)
	if err != nil {
		return nil, err
	}
	res.PrefillSec = gpuStepTime(cfg, pre)
	res.TotalSec = res.PrefillSec

	w := cfg.Workload
	for i := 0; i < w.OutputLen; i++ {
		st, err := trace.DecodeStep(w, w.InputLen+i)
		if err != nil {
			return nil, err
		}
		t := gpuStepTime(cfg, st)
		t = noise.Sample(t, cfg.Platform.Protected)
		res.TokenLatencies = append(res.TokenLatencies, t)
		res.TotalSec += t
		res.Tokens += st.NewTokens
	}
	return res, nil
}

// gpuStepTime costs one step on the GPU: roofline over tensor cores and HBM,
// plus kernel-launch and host-transfer costs — the cGPU's only overheads
// (H100 does not encrypt HBM, so no memory-path cost, §V-A).
func gpuStepTime(cfg GPURun, st trace.StepTrace) float64 {
	g := cfg.GPU
	p := cfg.Platform

	var total float64
	launch := g.KernelLaunchSec + p.KernelLaunchExtraSec
	kernels := float64(cfg.Workload.Model.Layers*g.KernelsPerBlock + 4)
	total += kernels * launch

	computeT := st.TotalFLOPs() / g.TensorFlops
	// H100 leaves HBM unencrypted (MemBWFactor 1); the projected B100
	// encrypts it, paying on the memory-bound decode path.
	memT := st.TotalBytes() / (g.HBMBandwidth * p.MemBWFactor)
	if memT > computeT {
		total += memT
	} else {
		total += computeT
	}

	// Host traffic over (possibly bounce-buffered) PCIe: sampled token IDs
	// out, next token IDs in, plus the per-step command stream.
	hostBytes := float64(st.NewTokens)*8 + CommandStreamBytesPerStep
	if st.Phase == trace.Prefill {
		hostBytes += float64(st.NewTokens) * 4 // prompt upload
	}
	total += hostBytes / (g.PCIeBandwidth * p.PCIeBWFactor)
	total += hw.GPUPerSeqStepCost * float64(cfg.Workload.Rows())
	total += hw.GPUStepOverheadSec + p.StepExtraSec
	return total
}

// CommandStreamBytesPerStep approximates the encrypted command-buffer
// traffic per decode step on a cGPU.
const CommandStreamBytesPerStep = 192 << 10
