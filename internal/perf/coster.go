package perf

import (
	"fmt"
	"sync"

	"cllm/internal/dtype"
	"cllm/internal/hw"
	"cllm/internal/model"
	"cllm/internal/trace"
)

// StepCoster is a memoized costing layer over CPUStepTime/GPUStepTime for
// the serving scheduler's hot loop. A continuous-batching simulation costs
// one decode step and up to one batched prefill-chunk step per iteration;
// sweeps (fleet sizing, autoscaling policy grids, repeated benchmark runs)
// re-cost the same step shapes millions of times. The coster keys each step
// by its shape — (batch, context, shared tokens) for decode, (batch, chunk
// tokens, history) for prefill chunks — and serves repeats from a table
// instead of rebuilding the operator trace and walking the roofline op by
// op. The miss path reuses one operator-slice scratch buffer
// (trace.DecodeStepInto), so even cold shapes cost no per-step allocation
// beyond the map entry.
//
// Bucket controls shape quantization: context and history (and shared
// tokens) are mapped to their bucket's midpoint before lookup. Bucket 1 is
// exact — every shape is costed at its true value through the same code
// path as CPUStepTime/GPUStepTime, so results are bit-identical to the
// unmemoized model. Bucket b > 1 trades accuracy for hit rate: the modeled
// step time is monotone in context, so the relative error of costing a
// context at its bucket midpoint is bounded by the step time's relative
// span across the bucket — at most t(ctx+b)/t(ctx)−1, which shrinks as
// ctx/b grows because only the attention terms scale with context (the
// property test asserts < 5% at ctx ≥ 8×bucket). Chunk tokens are never
// bucketed: the chunk is the dominant term of a prefill step's cost.
//
// A StepCoster is safe for concurrent use (parallel fleet-sizing and
// autoscale sweeps share one across workers); identical keys always memoize
// identical float64s, so sharing cannot perturb determinism.
type StepCoster struct {
	isGPU  bool
	cpu    CPURun // normalized once; Workload swapped per query
	gpu    GPURun
	bucket int
	model  trace.Workload // Model/Kind template for query workloads

	mu     sync.RWMutex
	decode map[costKey]float64
	chunk  map[costKey]float64
	swap   map[int]float64 // bucketed token count → transfer seconds
	ops    []trace.Op      // miss-path scratch, guarded by mu (write lock)
}

// costKey identifies one step shape after bucketing.
type costKey struct{ batch, a, b int }

// maxCostEntries bounds each memo table; a sweep that somehow produces more
// distinct shapes than this resets the table rather than growing without
// bound (the model context length caps realistic shape counts far below it).
const maxCostEntries = 1 << 17

// NewCPUStepCoster builds a memoized step coster for a CPU deployment.
// cfg.Workload supplies the model and datatype; its batch/length fields are
// ignored (queries carry their own shapes). bucket <= 1 means exact.
func NewCPUStepCoster(cfg CPURun, bucket int) (*StepCoster, error) {
	probe := cfg
	probe.Workload = queryWorkload(cfg.Workload, 1, 1)
	if err := probe.normalize(); err != nil {
		return nil, err
	}
	return &StepCoster{
		cpu:    probe,
		bucket: normBucket(bucket),
		model:  probe.Workload,
		decode: make(map[costKey]float64),
		chunk:  make(map[costKey]float64),
		swap:   make(map[int]float64),
	}, nil
}

// NewGPUStepCoster builds a memoized step coster for a GPU deployment.
func NewGPUStepCoster(cfg GPURun, bucket int) (*StepCoster, error) {
	probe := cfg
	probe.Workload = queryWorkload(cfg.Workload, 1, 1)
	if err := probe.Workload.Validate(); err != nil {
		return nil, err
	}
	return &StepCoster{
		isGPU:  true,
		gpu:    probe,
		bucket: normBucket(bucket),
		model:  probe.Workload,
		decode: make(map[costKey]float64),
		chunk:  make(map[costKey]float64),
		swap:   make(map[int]float64),
	}, nil
}

// Bucket reports the quantization width the coster was built with.
func (c *StepCoster) Bucket() int { return c.bucket }

// CompatibleWith reports whether the coster's memo keys mean the same
// thing under the given model, datatype and bucket width — the three
// inputs that shape every cached value. Callers sharing a coster across
// runs must hold this invariant; the serving scheduler enforces it so a
// table built for one model can never silently price another.
func (c *StepCoster) CompatibleWith(m model.Config, kind dtype.Kind, bucket int) bool {
	return c.model.Model == m && c.model.Kind == kind && c.bucket == normBucket(bucket)
}

func normBucket(b int) int {
	if b < 1 {
		return 1
	}
	return b
}

// queryWorkload shapes one step's workload on the coster's model template.
func queryWorkload(tmpl trace.Workload, batch, inputLen int) trace.Workload {
	return trace.Workload{
		Model: tmpl.Model, Kind: tmpl.Kind,
		Batch: batch, Beam: 1, InputLen: inputLen, OutputLen: 1,
	}
}

// bucketOf maps a non-negative token count to its bucket's midpoint; width
// 1 is the identity. Values inside the first bucket are kept exact: there
// the midpoint's absolute offset is a large *relative* error (and 0 must
// stay 0 — no phantom shared tokens or cached history when a feature is
// simply off), while the shapes bucketing exists to collapse — long
// contexts and histories — all live far above the width.
func bucketOf(v, width int) int {
	if width <= 1 || v < width {
		return v
	}
	return (v/width)*width + (width-1)/2
}

// DecodeTime costs one decode step over a batch whose mean per-row context
// is meanCtx tokens, of which sharedTokens are repeat reads of shared
// prefix blocks (bandwidth, not resident working set). It mirrors the
// clamping the serving scheduler applies: context is held inside
// [1, ContextLen-1] so one more token always fits.
func (c *StepCoster) DecodeTime(batch, meanCtx, sharedTokens int) (float64, error) {
	if batch < 1 {
		return 0, fmt.Errorf("perf: decode batch %d must be positive", batch)
	}
	if meanCtx < 1 {
		meanCtx = 1
	}
	if max := c.model.Model.ContextLen - 1; meanCtx > max {
		meanCtx = max
	}
	if sharedTokens < 0 {
		sharedTokens = 0
	}
	if c.bucket > 1 {
		meanCtx = bucketOf(meanCtx, c.bucket)
		if meanCtx < 1 {
			meanCtx = 1
		}
		if max := c.model.Model.ContextLen - 1; meanCtx > max {
			meanCtx = max
		}
		sharedTokens = bucketOf(sharedTokens, c.bucket)
		if sharedTokens > meanCtx*batch {
			sharedTokens = meanCtx * batch
		}
	}
	key := costKey{batch: batch, a: meanCtx, b: sharedTokens}
	c.mu.RLock()
	t, ok := c.decode[key]
	c.mu.RUnlock()
	if ok {
		return t, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.decode[key]; ok {
		return t, nil
	}
	wl := queryWorkload(c.model, batch, meanCtx)
	st, err := trace.DecodeStepInto(wl, meanCtx, c.ops)
	if err != nil {
		return 0, err
	}
	c.ops = st.Ops[:0]
	st.SharedBytes = float64(sharedTokens) * float64(wl.Model.KVCacheBytesPerToken(wl.Kind.Size()))
	t = c.stepTime(wl, st)
	if len(c.decode) >= maxCostEntries {
		c.decode = make(map[costKey]float64)
	}
	c.decode[key] = t
	return t, nil
}

// ChunkTime costs one batched prefill-chunk step: batch rows each computing
// chunkTokens new prompt tokens on top of hist cached ones. Clamping
// mirrors the serving scheduler: chunk in [1, ContextLen-1], history in
// [0, ContextLen-1-chunk]. Only the history is bucketed.
func (c *StepCoster) ChunkTime(batch, chunkTokens, hist int) (float64, error) {
	if batch < 1 {
		return 0, fmt.Errorf("perf: chunk batch %d must be positive", batch)
	}
	if chunkTokens < 1 {
		chunkTokens = 1
	}
	if max := c.model.Model.ContextLen - 1; chunkTokens > max {
		chunkTokens = max
	}
	if hist < 0 {
		hist = 0
	}
	if max := c.model.Model.ContextLen - 1 - chunkTokens; hist > max {
		hist = max
	}
	if c.bucket > 1 {
		hist = bucketOf(hist, c.bucket)
		if max := c.model.Model.ContextLen - 1 - chunkTokens; hist > max {
			hist = max
		}
	}
	key := costKey{batch: batch, a: chunkTokens, b: hist}
	c.mu.RLock()
	t, ok := c.chunk[key]
	c.mu.RUnlock()
	if ok {
		return t, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.chunk[key]; ok {
		return t, nil
	}
	wl := queryWorkload(c.model, batch, chunkTokens)
	st, err := trace.PrefillChunkStepInto(wl, hist, c.ops)
	if err != nil {
		return 0, err
	}
	c.ops = st.Ops[:0]
	t = c.stepTime(wl, st)
	if len(c.chunk) >= maxCostEntries {
		c.chunk = make(map[costKey]float64)
	}
	c.chunk[key] = t
	return t, nil
}

// SwapTime costs moving `tokens` KV-cache entries of one sequence between
// the serving pool and the host swap pool — one direction of a
// swap-to-host preemption (swap-out) or its resume (swap-in). The payload
// is trace.KVSwapBytes; the rate is the platform's swap path: PCIe times
// the bounce-buffer factor on GPUs (cGPU's dominant cost), a DRAM memcpy
// behind the inline encryption engine on CPUs (near-native on TDX/SGX).
// Each transfer also pays one dispatch: a DMA setup / kernel launch on
// GPUs (encrypted command buffers under cGPU), an operator dispatch plus
// the TEE per-op cost on CPUs. Token counts are bucketed like decode
// contexts; zero tokens cost exactly zero.
func (c *StepCoster) SwapTime(tokens int) (float64, error) {
	if tokens < 0 {
		return 0, fmt.Errorf("perf: swap of %d tokens", tokens)
	}
	if tokens == 0 {
		return 0, nil
	}
	if c.bucket > 1 {
		tokens = bucketOf(tokens, c.bucket)
		if tokens < 1 {
			tokens = 1
		}
	}
	c.mu.RLock()
	t, ok := c.swap[tokens]
	c.mu.RUnlock()
	if ok {
		return t, nil
	}
	bytes := trace.KVSwapBytes(c.model, tokens)
	var bw, setup float64
	if c.isGPU {
		p := c.gpu.Platform
		bw = c.gpu.GPU.PCIeBandwidth * p.SwapBWFactor(true)
		setup = c.gpu.GPU.KernelLaunchSec + p.KernelLaunchExtraSec
	} else {
		p := c.cpu.Platform
		bw = hw.HostSwapBytesPerSec * p.SwapBWFactor(false)
		setup = hw.CPUOpDispatchSec + p.PerOpCostSec
	}
	if bw <= 0 {
		return 0, fmt.Errorf("perf: swap bandwidth is zero on %s", c.model.Model.Name)
	}
	t = bytes/bw + setup
	c.mu.Lock()
	if len(c.swap) >= maxCostEntries {
		c.swap = make(map[int]float64)
	}
	c.swap[tokens] = t
	c.mu.Unlock()
	return t, nil
}

// stepTime routes one built step trace through the backend's cost model,
// with the query workload installed. The trace's ops alias the coster's
// scratch buffer; the cost models read them synchronously and never retain
// the slice.
func (c *StepCoster) stepTime(wl trace.Workload, st trace.StepTrace) float64 {
	if c.isGPU {
		cfg := c.gpu
		cfg.Workload = wl
		return gpuStepTime(cfg, st)
	}
	cfg := c.cpu
	cfg.Workload = wl
	return cpuStepTime(cfg, st)
}
