package perf

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"cllm/internal/dtype"
	"cllm/internal/hw"
	"cllm/internal/model"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

func costerCPURun(t *testing.T) CPURun {
	t.Helper()
	m, err := model.Lookup("llama2-7b")
	if err != nil {
		t.Fatal(err)
	}
	return CPURun{
		CPU: hw.EMR1(), Platform: tee.TDX(), Sockets: 1, AMX: true,
		Workload: trace.Workload{Model: m, Kind: dtype.BF16},
	}
}

// exactDecodeTime reproduces the serving scheduler's pre-coster costing
// path verbatim: build the step trace, flag shared bytes, walk the
// roofline. The coster at bucket 1 must match it bit for bit.
func exactDecodeTime(t *testing.T, cfg CPURun, batch, meanCtx, shared int) float64 {
	t.Helper()
	wl := trace.Workload{Model: cfg.Workload.Model, Kind: cfg.Workload.Kind,
		Batch: batch, Beam: 1, InputLen: meanCtx, OutputLen: 1}
	st, err := trace.DecodeStep(wl, meanCtx)
	if err != nil {
		t.Fatal(err)
	}
	st.SharedBytes = float64(shared) * float64(wl.Model.KVCacheBytesPerToken(wl.Kind.Size()))
	run := cfg
	run.Workload = wl
	got, err := CPUStepTime(run, st)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestStepCosterExactAtBucketOne: with bucket 1 the memoized coster is the
// identity over the unmemoized cost model — bit-identical float64s for
// randomized decode and chunk shapes, on first computation and on table
// hits.
func TestStepCosterExactAtBucketOne(t *testing.T) {
	cfg := costerCPURun(t)
	c, err := NewCPUStepCoster(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		batch := rng.Intn(32) + 1
		ctx := rng.Intn(3500) + 1
		shared := 0
		if rng.Intn(2) == 0 {
			shared = rng.Intn(ctx)
		}
		want := exactDecodeTime(t, cfg, batch, ctx, shared)
		for pass := 0; pass < 2; pass++ { // miss then hit
			got, err := c.DecodeTime(batch, ctx, shared)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("DecodeTime(%d,%d,%d) pass %d = %v, want exactly %v", batch, ctx, shared, pass, got, want)
			}
		}
	}
	for i := 0; i < 200; i++ {
		batch := rng.Intn(16) + 1
		chunk := rng.Intn(1024) + 1
		hist := rng.Intn(1024)
		wl := trace.Workload{Model: cfg.Workload.Model, Kind: cfg.Workload.Kind,
			Batch: batch, Beam: 1, InputLen: chunk, OutputLen: 1}
		run := cfg
		run.Workload = wl
		want, err := CPUPrefillChunkTime(run, hist)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			got, err := c.ChunkTime(batch, chunk, hist)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("ChunkTime(%d,%d,%d) pass %d = %v, want exactly %v", batch, chunk, hist, pass, got, want)
			}
		}
	}
}

// TestStepCosterExactAtBucketOneGPU covers the GPU path's identity.
func TestStepCosterExactAtBucketOneGPU(t *testing.T) {
	m, err := model.Lookup("llama2-7b")
	if err != nil {
		t.Fatal(err)
	}
	cfg := GPURun{GPU: hw.H100NVL(), Platform: tee.CGPU(),
		Workload: trace.Workload{Model: m, Kind: dtype.BF16}}
	c, err := NewGPUStepCoster(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		batch := rng.Intn(32) + 1
		ctx := rng.Intn(3500) + 1
		wl := trace.Workload{Model: m, Kind: dtype.BF16, Batch: batch, Beam: 1, InputLen: ctx, OutputLen: 1}
		st, err := trace.DecodeStep(wl, ctx)
		if err != nil {
			t.Fatal(err)
		}
		run := cfg
		run.Workload = wl
		want, err := GPUStepTime(run, st)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.DecodeTime(batch, ctx, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("GPU DecodeTime(%d,%d) = %v, want exactly %v", batch, ctx, got, want)
		}
	}
}

// TestStepCosterClampsLikeScheduler: out-of-range shapes are clamped the
// way the serving scheduler clamped them before costing.
func TestStepCosterClampsLikeScheduler(t *testing.T) {
	cfg := costerCPURun(t)
	c, err := NewCPUStepCoster(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	low, err := c.DecodeTime(2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	one, err := c.DecodeTime(2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if low != one {
		t.Fatalf("ctx 0 should clamp to 1: %v vs %v", low, one)
	}
	maxCtx := cfg.Workload.Model.ContextLen - 1
	over, err := c.DecodeTime(2, maxCtx+500, 0)
	if err != nil {
		t.Fatal(err)
	}
	at, err := c.DecodeTime(2, maxCtx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if over != at {
		t.Fatalf("ctx past window should clamp to %d: %v vs %v", maxCtx, over, at)
	}
	if _, err := c.DecodeTime(0, 64, 0); err == nil {
		t.Fatal("batch 0 should error")
	}
}

// TestStepCosterBucketedErrorBound: the documented accuracy contract —
// costing a context at its bucket midpoint keeps the relative error of the
// modeled decode step time under 5% once ctx >= 8×bucket (only the
// attention terms scale with context, so the error shrinks as ctx/bucket
// grows).
func TestStepCosterBucketedErrorBound(t *testing.T) {
	cfg := costerCPURun(t)
	const bucket = 32
	c, err := NewCPUStepCoster(cfg, bucket)
	if err != nil {
		t.Fatal(err)
	}
	if c.Bucket() != bucket {
		t.Fatalf("Bucket() = %d, want %d", c.Bucket(), bucket)
	}
	rng := rand.New(rand.NewSource(13))
	worst := 0.0
	for i := 0; i < 300; i++ {
		batch := rng.Intn(32) + 1
		ctx := 8*bucket + rng.Intn(3000)
		if ctx > cfg.Workload.Model.ContextLen-1 {
			ctx = cfg.Workload.Model.ContextLen - 1
		}
		exact := exactDecodeTime(t, cfg, batch, ctx, 0)
		got, err := c.DecodeTime(batch, ctx, 0)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(got-exact) / exact
		if rel > worst {
			worst = rel
		}
		if rel > 0.05 {
			t.Fatalf("bucket %d, ctx %d, batch %d: relative error %.3f exceeds 5%% (got %v, exact %v)",
				bucket, ctx, batch, rel, got, exact)
		}
	}
	t.Logf("worst relative error at bucket %d: %.4f", bucket, worst)
}

// TestStepCosterConcurrentDeterministic: hammering one coster from many
// goroutines yields the same values a fresh serial coster computes — the
// memo can only return what the pure cost model produced.
func TestStepCosterConcurrentDeterministic(t *testing.T) {
	cfg := costerCPURun(t)
	shared, err := NewCPUStepCoster(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewCPUStepCoster(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	type q struct{ batch, ctx int }
	queries := make([]q, 64)
	rng := rand.New(rand.NewSource(17))
	for i := range queries {
		queries[i] = q{batch: rng.Intn(8) + 1, ctx: rng.Intn(1024) + 1}
	}
	var wg sync.WaitGroup
	got := make([][]float64, 8)
	for w := 0; w < len(got); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]float64, len(queries))
			for i, qq := range queries {
				v, err := shared.DecodeTime(qq.batch, qq.ctx, 0)
				if err != nil {
					t.Error(err)
					return
				}
				out[i] = v
			}
			got[w] = out
		}(w)
	}
	wg.Wait()
	for i, qq := range queries {
		want, err := serial.DecodeTime(qq.batch, qq.ctx, 0)
		if err != nil {
			t.Fatal(err)
		}
		for w := range got {
			if got[w][i] != want {
				t.Fatalf("worker %d query %d: %v != serial %v", w, i, got[w][i], want)
			}
		}
	}
}

// TestStepCosterBucketKeepsSmallValuesExact: values inside the first
// bucket — above all, zero shared tokens and zero cached history — must
// pass through bucketing unchanged, so a bucketed coster with a feature
// off costs exactly like the unbucketed model does for those shapes.
func TestStepCosterBucketKeepsSmallValuesExact(t *testing.T) {
	cfg := costerCPURun(t)
	const bucket = 32
	c, err := NewCPUStepCoster(cfg, bucket)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < bucket; v++ {
		ctx := v
		if ctx < 1 {
			ctx = 1 // DecodeTime clamps ctx to >= 1 before bucketing
		}
		want := exactDecodeTime(t, cfg, 2, ctx, 0)
		got, err := c.DecodeTime(2, v, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("bucketed DecodeTime(2,%d,0) = %v, want exact %v (first bucket must be identity)", v, got, want)
		}
	}
	// sharedTokens = 0 with a large context must not grow phantom shared
	// bytes: the bucketed cost with shared=0 equals the exact cost at the
	// bucketed context with shared=0.
	ctx := 16 * bucket
	want := exactDecodeTime(t, cfg, 4, bucketOf(ctx, bucket), 0)
	got, err := c.DecodeTime(4, ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("shared=0 grew phantom shared tokens: %v vs %v", got, want)
	}
	// Zero cached history likewise stays zero for chunk costing.
	wl := trace.Workload{Model: cfg.Workload.Model, Kind: cfg.Workload.Kind, Batch: 2, Beam: 1, InputLen: 128, OutputLen: 1}
	run := cfg
	run.Workload = wl
	wantChunk, err := CPUPrefillChunkTime(run, 0)
	if err != nil {
		t.Fatal(err)
	}
	gotChunk, err := c.ChunkTime(2, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gotChunk != wantChunk {
		t.Fatalf("hist=0 chunk cost %v, want exact %v", gotChunk, wantChunk)
	}
}

// TestStepCosterSwapTime: the transfer coster must match the hand-derived
// bandwidth formula exactly, memoize deterministically, cost zero tokens as
// exactly zero, and price the cGPU bounce-buffer path far above both the
// unprotected-GPU PCIe path and the CPU TEE memcpy path.
func TestStepCosterSwapTime(t *testing.T) {
	cpuCfg := costerCPURun(t)
	cpu, err := NewCPUStepCoster(cpuCfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	wl := trace.Workload{Model: cpuCfg.Workload.Model, Kind: cpuCfg.Workload.Kind}
	const tokens = 512
	want := trace.KVSwapBytes(wl, tokens)/(hw.HostSwapBytesPerSec*tee.TDX().SwapBWFactor(false)) +
		hw.CPUOpDispatchSec + tee.TDX().PerOpCostSec
	for pass := 0; pass < 2; pass++ { // miss then hit
		got, err := cpu.SwapTime(tokens)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("SwapTime(%d) pass %d = %v, want exactly %v", tokens, pass, got, want)
		}
	}
	if got, err := cpu.SwapTime(0); err != nil || got != 0 {
		t.Fatalf("SwapTime(0) = %v, %v; want exactly 0", got, err)
	}
	if _, err := cpu.SwapTime(-1); err == nil {
		t.Fatal("negative token count accepted")
	}

	gpuCfg := GPURun{GPU: hw.H100NVL(), Platform: tee.GPU(), Workload: wl}
	gpu, err := NewGPUStepCoster(gpuCfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	cgpuCfg := gpuCfg
	cgpuCfg.Platform = tee.CGPU()
	cgpu, err := NewGPUStepCoster(cgpuCfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	gT, err := gpu.SwapTime(tokens)
	if err != nil {
		t.Fatal(err)
	}
	cgT, err := cgpu.SwapTime(tokens)
	if err != nil {
		t.Fatal(err)
	}
	cT, err := cpu.SwapTime(tokens)
	if err != nil {
		t.Fatal(err)
	}
	// The bounce buffer throttles cGPU swaps well below the clear-PCIe GPU
	// path and the CPU TEE's near-native memcpy — the asymmetry the auto
	// policy exploits.
	if cgT < 8*gT || cgT < 3*cT {
		t.Fatalf("cGPU swap %.6fs should dwarf GPU %.6fs and CPU TEE %.6fs", cgT, gT, cT)
	}
}

// TestStepCosterSwapTimeBucketed: token counts bucket like decode contexts
// (midpoint), and sub-bucket counts stay exact.
func TestStepCosterSwapTimeBucketed(t *testing.T) {
	cfg := costerCPURun(t)
	exact, err := NewCPUStepCoster(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	bucketed, err := NewCPUStepCoster(cfg, 32)
	if err != nil {
		t.Fatal(err)
	}
	a, err := bucketed.SwapTime(1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bucketed.SwapTime(1010) // same 32-wide bucket as 1000
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same-bucket token counts cost differently: %v vs %v", a, b)
	}
	e, err := exact.SwapTime(1000)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(a-e) / e; rel > 0.05 {
		t.Fatalf("bucketed swap time off by %.1f%%", rel*100)
	}
	// Sub-bucket counts are exact (first-bucket rule).
	se, err := exact.SwapTime(7)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := bucketed.SwapTime(7)
	if err != nil {
		t.Fatal(err)
	}
	if se != sb {
		t.Fatalf("sub-bucket swap time quantized: %v vs %v", sb, se)
	}
}
