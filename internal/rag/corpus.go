package rag

import (
	"fmt"
	"math/rand"
	"strings"
)

// BEIR-like synthetic benchmark: topical clusters of documents with queries
// whose relevant documents are known (qrels). Real BEIR datasets are large
// downloads; this generator preserves what the experiments need — a
// retrieval task with graded difficulty and verifiable ranking quality.

// Corpus is a generated retrieval benchmark.
type Corpus struct {
	Docs    []Document
	Queries []Query
}

// Query pairs a query string with its relevance judgments.
type Query struct {
	ID   string
	Text string
	// Rels maps document ID → graded relevance (2 = highly relevant,
	// 1 = marginally relevant).
	Rels map[string]int
}

// topicVocab are word pools per topic; queries draw from their topic pool,
// distractor documents from others.
var topicVocab = [][]string{
	{"cardiology", "heart", "artery", "valve", "rhythm", "pressure", "stent", "cholesterol", "infarction", "ecg"},
	{"oncology", "tumor", "biopsy", "chemotherapy", "radiation", "metastasis", "lymphoma", "marker", "remission", "screening"},
	{"finance", "portfolio", "equity", "dividend", "hedge", "liquidity", "derivative", "yield", "volatility", "arbitrage"},
	{"privacy", "encryption", "enclave", "attestation", "confidential", "integrity", "adversary", "leakage", "trust", "isolation"},
	{"llm", "transformer", "attention", "token", "inference", "decoder", "embedding", "quantization", "throughput", "latency"},
	{"kernel", "scheduler", "interrupt", "syscall", "paging", "hugepage", "numa", "virtualization", "hypervisor", "driver"},
}

var fillerWords = []string{
	"study", "result", "method", "analysis", "system", "report", "review",
	"approach", "measure", "impact", "design", "evaluation", "framework",
	"experiment", "model", "data", "performance", "overhead", "cost",
}

// GenerateCorpus builds a corpus with the given number of documents per
// topic and queries per topic, deterministically from the seed.
func GenerateCorpus(docsPerTopic, queriesPerTopic int, seed int64) (*Corpus, error) {
	if docsPerTopic < 2 || queriesPerTopic < 1 {
		return nil, fmt.Errorf("rag: need ≥2 docs and ≥1 query per topic, got %d/%d", docsPerTopic, queriesPerTopic)
	}
	rng := rand.New(rand.NewSource(seed))
	c := &Corpus{}
	for ti, vocab := range topicVocab {
		for d := 0; d < docsPerTopic; d++ {
			id := fmt.Sprintf("t%d-d%d", ti, d)
			// Each document mixes topic terms with filler; the first few
			// documents of each topic are "core" (dense in topic terms).
			topicDensity := 0.55
			if d >= docsPerTopic/2 {
				topicDensity = 0.25 // peripheral documents
			}
			var words []string
			length := 60 + rng.Intn(60)
			for w := 0; w < length; w++ {
				if rng.Float64() < topicDensity {
					words = append(words, vocab[rng.Intn(len(vocab))])
				} else {
					words = append(words, fillerWords[rng.Intn(len(fillerWords))])
				}
			}
			title := fmt.Sprintf("%s %s %s", vocab[d%len(vocab)], fillerWords[rng.Intn(len(fillerWords))], vocab[(d+1)%len(vocab)])
			c.Docs = append(c.Docs, Document{ID: id, Title: title, Body: strings.Join(words, " ")})
		}
		for q := 0; q < queriesPerTopic; q++ {
			qid := fmt.Sprintf("t%d-q%d", ti, q)
			// Query: 3 topic terms.
			terms := []string{
				vocab[rng.Intn(len(vocab))],
				vocab[rng.Intn(len(vocab))],
				vocab[q%len(vocab)],
			}
			rels := make(map[string]int)
			for d := 0; d < docsPerTopic; d++ {
				if d < docsPerTopic/2 {
					rels[fmt.Sprintf("t%d-d%d", ti, d)] = 2
				} else {
					rels[fmt.Sprintf("t%d-d%d", ti, d)] = 1
				}
			}
			c.Queries = append(c.Queries, Query{ID: qid, Text: strings.Join(terms, " "), Rels: rels})
		}
	}
	return c, nil
}

// BuildStore indexes the corpus into a fresh store.
func (c *Corpus) BuildStore() (*Store, error) {
	s := NewStore()
	for _, d := range c.Docs {
		if err := s.Add(d); err != nil {
			return nil, err
		}
	}
	return s, nil
}
