package rag

import (
	"fmt"
	"sort"

	"cllm/internal/dtype"
	"cllm/internal/model"
	"cllm/internal/tensor"
)

// DenseRetriever is the SBERT-style pipeline: documents and queries are
// encoded into dense vectors by a real (scaled-down) transformer encoder and
// ranked by cosine similarity. Document embeddings are precomputed at index
// time, so query cost is one encoder pass plus a dot-product scan — why
// "sbert" is the cheapest per-query system in Fig 14.
type DenseRetriever struct {
	store   *Store
	encoder *model.Transformer
	tok     *model.Tokenizer
	maxLen  int
	embs    [][]float32
	ids     []string
}

// NewDenseRetriever builds the retriever with a deterministic sbert-mini
// encoder (scaled for functional speed) and embeds every document in the
// store.
func NewDenseRetriever(store *Store, scale int, seed int64) (*DenseRetriever, error) {
	if store.Len() == 0 {
		return nil, fmt.Errorf("rag: cannot build dense retriever over empty store")
	}
	cfg, err := model.Lookup("sbert-mini")
	if err != nil {
		return nil, err
	}
	cfg = cfg.Scaled(scale)
	enc, err := model.Build(cfg, dtype.BF16, seed)
	if err != nil {
		return nil, err
	}
	r := &DenseRetriever{
		store:   store,
		encoder: enc,
		tok:     model.NewTokenizer(cfg.VocabSize),
		maxLen:  32,
	}
	for _, d := range store.docs {
		emb, err := r.encode(d.Title + " " + d.Body)
		if err != nil {
			return nil, fmt.Errorf("rag: embedding %s: %w", d.ID, err)
		}
		r.embs = append(r.embs, emb)
		r.ids = append(r.ids, d.ID)
	}
	return r, nil
}

// EmbeddingDim returns the dense vector width.
func (r *DenseRetriever) EmbeddingDim() int { return r.encoder.Config.HiddenDim }

func (r *DenseRetriever) encode(text string) ([]float32, error) {
	tokens := r.tok.Encode(text)
	if len(tokens) > r.maxLen {
		tokens = tokens[:r.maxLen]
	}
	return r.encoder.Embed(tokens)
}

// Search embeds the query and returns the top-k documents by cosine
// similarity.
func (r *DenseRetriever) Search(query string, k int) ([]Hit, error) {
	if k <= 0 {
		return nil, fmt.Errorf("rag: k must be positive")
	}
	q, err := r.encode(query)
	if err != nil {
		return nil, err
	}
	hits := make([]Hit, len(r.embs))
	for i, emb := range r.embs {
		hits[i] = Hit{ID: r.ids[i], Score: float64(tensor.CosineSimilarity(q, emb))}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits, nil
}
