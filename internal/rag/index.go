package rag

import (
	"fmt"
	"math"
	"sort"
)

// Document is one indexed item.
type Document struct {
	ID    string
	Title string
	Body  string
}

// posting records one document's term frequency for a term.
type posting struct {
	doc int // index into docs
	tf  int
}

// Store is the Elasticsearch-style document store: documents plus an
// inverted index with term postings. It is deliberately single-node and
// in-memory; the paper runs exactly one Elasticsearch instance inside TDX.
type Store struct {
	docs     []Document
	byID     map[string]int
	index    map[string][]posting
	docLen   []int
	totalLen int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		byID:  make(map[string]int),
		index: make(map[string][]posting),
	}
}

// Add indexes a document. Duplicate IDs are rejected.
func (s *Store) Add(d Document) error {
	if d.ID == "" {
		return fmt.Errorf("rag: document needs an ID")
	}
	if _, dup := s.byID[d.ID]; dup {
		return fmt.Errorf("rag: duplicate document ID %q", d.ID)
	}
	terms := Analyze(d.Title + " " + d.Body)
	idx := len(s.docs)
	s.docs = append(s.docs, d)
	s.byID[d.ID] = idx

	counts := make(map[string]int)
	for _, t := range terms {
		counts[t]++
	}
	for t, c := range counts {
		s.index[t] = append(s.index[t], posting{doc: idx, tf: c})
	}
	s.docLen = append(s.docLen, len(terms))
	s.totalLen += len(terms)
	return nil
}

// Len returns the number of indexed documents.
func (s *Store) Len() int { return len(s.docs) }

// Doc returns a document by ID.
func (s *Store) Doc(id string) (Document, error) {
	i, ok := s.byID[id]
	if !ok {
		return Document{}, fmt.Errorf("rag: no document %q", id)
	}
	return s.docs[i], nil
}

// avgDocLen returns the mean analyzed document length.
func (s *Store) avgDocLen() float64 {
	if len(s.docs) == 0 {
		return 0
	}
	return float64(s.totalLen) / float64(len(s.docs))
}

// IDF returns the BM25 inverse document frequency of a term:
// ln(1 + (N - df + 0.5)/(df + 0.5)).
func (s *Store) IDF(term string) float64 {
	df := float64(len(s.index[term]))
	n := float64(len(s.docs))
	return math.Log(1 + (n-df+0.5)/(df+0.5))
}

// Hit is one ranked search result.
type Hit struct {
	ID    string
	Score float64
}

// BM25Params are the classic Okapi constants.
type BM25Params struct {
	K1 float64
	B  float64
}

// DefaultBM25 returns Elasticsearch's defaults (k1=1.2, b=0.75).
func DefaultBM25() BM25Params { return BM25Params{K1: 1.2, B: 0.75} }

// SearchBM25 ranks documents for the query and returns the top k hits.
// It also reports the number of postings scanned, which drives the TEE
// timing model (index-scan bytes).
func (s *Store) SearchBM25(query string, k int, p BM25Params) ([]Hit, int, error) {
	if k <= 0 {
		return nil, 0, fmt.Errorf("rag: k must be positive")
	}
	if len(s.docs) == 0 {
		return nil, 0, fmt.Errorf("rag: empty index")
	}
	terms := Analyze(query)
	if len(terms) == 0 {
		return nil, 0, fmt.Errorf("rag: query %q has no indexable terms", query)
	}
	scores := make(map[int]float64)
	avg := s.avgDocLen()
	scanned := 0
	for _, t := range terms {
		idf := s.IDF(t)
		for _, post := range s.index[t] {
			scanned++
			tf := float64(post.tf)
			norm := p.K1 * (1 - p.B + p.B*float64(s.docLen[post.doc])/avg)
			scores[post.doc] += idf * tf * (p.K1 + 1) / (tf + norm)
		}
	}
	hits := make([]Hit, 0, len(scores))
	for doc, sc := range scores {
		hits = append(hits, Hit{ID: s.docs[doc].ID, Score: sc})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits, scanned, nil
}
