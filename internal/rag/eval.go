package rag

import (
	"fmt"
	"math"
	"sort"
)

// NDCGAt computes the normalized discounted cumulative gain at cutoff k for
// one ranked result list against graded relevance judgments.
func NDCGAt(hits []Hit, rels map[string]int, k int) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("rag: nDCG cutoff must be positive")
	}
	if len(rels) == 0 {
		return 0, fmt.Errorf("rag: no relevance judgments")
	}
	dcg := 0.0
	seen := make(map[string]bool, k)
	for i, h := range hits {
		if i >= k {
			break
		}
		if seen[h.ID] {
			continue // defensive: a ranking must not be credited twice
		}
		seen[h.ID] = true
		g := float64(rels[h.ID])
		if g > 0 {
			dcg += (math.Pow(2, g) - 1) / math.Log2(float64(i)+2)
		}
	}
	// Ideal DCG from sorted judgments.
	grades := make([]int, 0, len(rels))
	for _, g := range rels {
		grades = append(grades, g)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(grades)))
	idcg := 0.0
	for i, g := range grades {
		if i >= k {
			break
		}
		idcg += (math.Pow(2, float64(g)) - 1) / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 0, nil
	}
	return dcg / idcg, nil
}

// RecallAt returns the fraction of relevant documents retrieved in the top k.
func RecallAt(hits []Hit, rels map[string]int, k int) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("rag: recall cutoff must be positive")
	}
	relevant := 0
	for _, g := range rels {
		if g > 0 {
			relevant++
		}
	}
	if relevant == 0 {
		return 0, fmt.Errorf("rag: no relevant documents")
	}
	found := 0
	for i, h := range hits {
		if i >= k {
			break
		}
		if rels[h.ID] > 0 {
			found++
		}
	}
	return float64(found) / float64(relevant), nil
}

// Method selects one of the paper's three RAG systems (Fig 14).
type Method int

const (
	// MethodBM25 is plain Okapi BM25 over the inverted index.
	MethodBM25 Method = iota
	// MethodBM25Reranked first retrieves with BM25, then rescores the
	// candidates with the cross-encoder.
	MethodBM25Reranked
	// MethodSBERT is dense retrieval with the sentence encoder.
	MethodSBERT
)

// String names the method as in Fig 14.
func (m Method) String() string {
	switch m {
	case MethodBM25:
		return "BM25"
	case MethodBM25Reranked:
		return "BM25 reranked"
	case MethodSBERT:
		return "sbert"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Pipeline bundles the three systems over one corpus.
type Pipeline struct {
	Store  *Store
	Rerank *CrossEncoder
	Dense  *DenseRetriever
	BM25   BM25Params
	// CandidateK is how many BM25 hits feed the reranker.
	CandidateK int
}

// NewPipeline builds all three systems over the corpus.
func NewPipeline(c *Corpus, seed int64) (*Pipeline, error) {
	store, err := c.BuildStore()
	if err != nil {
		return nil, err
	}
	dense, err := NewDenseRetriever(store, 16, seed)
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		Store:      store,
		Rerank:     NewCrossEncoder(store),
		Dense:      dense,
		BM25:       DefaultBM25(),
		CandidateK: 50,
	}, nil
}

// QueryStats records the work one query performed, for the timing model.
type QueryStats struct {
	PostingsScanned int
	DocsReranked    int
	DenseCompared   int
}

// Run executes one query with the chosen method.
func (p *Pipeline) Run(m Method, query string, k int) ([]Hit, QueryStats, error) {
	var stats QueryStats
	switch m {
	case MethodBM25:
		hits, scanned, err := p.Store.SearchBM25(query, k, p.BM25)
		stats.PostingsScanned = scanned
		return hits, stats, err
	case MethodBM25Reranked:
		cands, scanned, err := p.Store.SearchBM25(query, p.CandidateK, p.BM25)
		if err != nil {
			return nil, stats, err
		}
		stats.PostingsScanned = scanned
		stats.DocsReranked = len(cands)
		hits, err := p.Rerank.Rerank(query, cands, k)
		return hits, stats, err
	case MethodSBERT:
		hits, err := p.Dense.Search(query, k)
		stats.DenseCompared = p.Store.Len()
		return hits, stats, err
	default:
		return nil, stats, fmt.Errorf("rag: unknown method %v", m)
	}
}

// Evaluate runs every corpus query through the method and returns mean
// nDCG@10 plus aggregate work stats.
func (p *Pipeline) Evaluate(c *Corpus, m Method) (float64, QueryStats, error) {
	if len(c.Queries) == 0 {
		return 0, QueryStats{}, fmt.Errorf("rag: corpus has no queries")
	}
	var total float64
	var agg QueryStats
	for _, q := range c.Queries {
		hits, stats, err := p.Run(m, q.Text, 10)
		if err != nil {
			return 0, agg, fmt.Errorf("rag: query %s: %w", q.ID, err)
		}
		nd, err := NDCGAt(hits, q.Rels, 10)
		if err != nil {
			return 0, agg, err
		}
		total += nd
		agg.PostingsScanned += stats.PostingsScanned
		agg.DocsReranked += stats.DocsReranked
		agg.DenseCompared += stats.DenseCompared
	}
	return total / float64(len(c.Queries)), agg, nil
}
