package rag

import (
	"fmt"
	"math"
	"sort"
)

// CrossEncoder is the reranking model of the "reranked BM25" pipeline: it
// scores (query, document) pairs jointly. This implementation is a
// deterministic feature-based scorer — IDF-weighted term overlap, coverage,
// proximity and length normalization passed through a fixed two-layer MLP —
// standing in for a MiniLM cross-encoder. The feature extraction touches
// the full document text, giving the reranker its characteristic cost
// (Fig 14's ~200x gap between BM25 and reranked BM25).
type CrossEncoder struct {
	store *Store
	// hidden weights of the fixed scoring MLP (4 features -> 4 -> 1).
	w1 [4][4]float64
	b1 [4]float64
	w2 [4]float64
	b2 float64
}

// NewCrossEncoder builds the reranker over a store (for IDF statistics).
func NewCrossEncoder(store *Store) *CrossEncoder {
	ce := &CrossEncoder{store: store}
	// Fixed "pretrained" weights: chosen so the score increases in every
	// relevance feature, with saturating interactions.
	ce.w1 = [4][4]float64{
		{1.8, 0.2, 0.1, -0.2},
		{0.3, 1.5, 0.2, 0.0},
		{0.1, 0.3, 1.2, 0.1},
		{-0.3, 0.0, 0.2, 0.9},
	}
	ce.b1 = [4]float64{-0.2, -0.1, -0.1, 0.0}
	ce.w2 = [4]float64{1.2, 0.9, 0.6, 0.4}
	ce.b2 = -0.5
	return ce
}

// features extracts the four relevance signals.
func (ce *CrossEncoder) features(queryTerms []string, doc Document) [4]float64 {
	docTerms := Analyze(doc.Title + " " + doc.Body)
	pos := make(map[string][]int, len(docTerms))
	for i, t := range docTerms {
		pos[t] = append(pos[t], i)
	}
	var idfOverlap, coverage, titleHit float64
	var totalIDF float64
	covered := 0
	var positions []int
	titleTerms := make(map[string]bool)
	for _, t := range Analyze(doc.Title) {
		titleTerms[t] = true
	}
	for _, qt := range queryTerms {
		idf := ce.store.IDF(qt)
		totalIDF += idf
		if ps, ok := pos[qt]; ok {
			idfOverlap += idf
			covered++
			positions = append(positions, ps[0])
			if titleTerms[qt] {
				titleHit += 1
			}
		}
	}
	if totalIDF > 0 {
		idfOverlap /= totalIDF
	}
	if len(queryTerms) > 0 {
		coverage = float64(covered) / float64(len(queryTerms))
		titleHit /= float64(len(queryTerms))
	}
	// Proximity: inverse span of first matches.
	proximity := 0.0
	if len(positions) > 1 {
		sort.Ints(positions)
		span := positions[len(positions)-1] - positions[0] + 1
		proximity = float64(len(positions)) / float64(span)
	} else if len(positions) == 1 {
		proximity = 1
	}
	return [4]float64{idfOverlap, coverage, proximity, titleHit}
}

// Score returns the cross-encoder relevance of (query, doc).
func (ce *CrossEncoder) Score(query string, doc Document) float64 {
	f := ce.features(Analyze(query), doc)
	var out float64
	for j := 0; j < 4; j++ {
		var h float64
		for i := 0; i < 4; i++ {
			h += ce.w1[j][i] * f[i]
		}
		h += ce.b1[j]
		out += ce.w2[j] * math.Tanh(h)
	}
	return out + ce.b2
}

// Rerank rescores BM25 candidates and returns the top k by cross-encoder
// score. candidateK bounds how many BM25 hits are rescored (the pipeline's
// dominant cost knob).
func (ce *CrossEncoder) Rerank(query string, candidates []Hit, k int) ([]Hit, error) {
	if k <= 0 {
		return nil, fmt.Errorf("rag: rerank k must be positive")
	}
	out := make([]Hit, 0, len(candidates))
	for _, h := range candidates {
		doc, err := ce.store.Doc(h.ID)
		if err != nil {
			return nil, err
		}
		out = append(out, Hit{ID: h.ID, Score: ce.Score(query, doc)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}
