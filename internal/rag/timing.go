package rag

import (
	"fmt"

	"cllm/internal/dtype"
	"cllm/internal/hw"
	"cllm/internal/mem"
	"cllm/internal/sim"
	"cllm/internal/tee"
)

// Timing models the per-query latency of the RAG systems on a CPU platform,
// using the same mechanisms as LLM inference: a roofline for encoder
// compute, index-scan memory traffic with TLB effects, and a service-path
// factor for the Elasticsearch request cycle (syscalls, virtio, LUKS under
// TDX) that TEEs inflate.
type Timing struct {
	CPU      hw.CPU
	Platform tee.Platform
	// Cores used for query processing (Elasticsearch + model runtime).
	Cores int
	// Seed for the noise model.
	Seed int64
}

// Work constants: calibrated to Fig 14's absolute scales (BM25 ≈ 8 ms,
// reranked BM25 ≈ 1.5-2 s over 50 candidates, sbert ≈ 3-4 ms per query).
const (
	// ESRequestFixedSec is the Elasticsearch request/response cycle
	// (HTTP parse, coordination, fetch phase).
	ESRequestFixedSec = 5.5e-3
	// PostingBytes is the index traffic per scanned posting (docID delta,
	// frequency, skip data, norms).
	PostingBytes = 96
	// CrossEncoderFlopsPerPair is one MiniLM-class rerank forward pass
	// (22M params × 2 FLOPs × ~256 tokens).
	CrossEncoderFlopsPerPair = 11.3e9
	// CrossEncoderBytesPerPair streams the encoder weights once per pair
	// batch-1 inference (22M params × 2 bytes, partially cached).
	CrossEncoderBytesPerPair = 30e6
	// SBERTQueryFlops is one sentence-encoder pass over a short query.
	SBERTQueryFlops = 1.4e9
	// SBERTFixedSec is the embedding-service request cycle.
	SBERTFixedSec = 2.2e-3
	// DenseCompareBytes is the per-document vector scan cost (384 × f32).
	DenseCompareBytes = 1536
	// RerankThreadFraction derates the cross-encoder to the few cores the
	// reranking service actually uses.
	RerankThreadFraction = 0.012
)

// QueryTime returns the modeled latency of one query with the given work.
func (t Timing) QueryTime(m Method, stats QueryStats) (float64, error) {
	cores := t.Cores
	if cores <= 0 || cores > t.CPU.CoresPerSocket {
		cores = t.CPU.CoresPerSocket
	}
	flopsRate := t.CPU.SocketFlops(dtype.BF16, true, cores)
	bw := t.CPU.MemBWPerSocket * t.Platform.MemBWFactor
	if cap := float64(cores) * 8e9; cap < bw {
		bw = cap
	}

	var fixed, flops, bytes float64
	switch m {
	case MethodBM25:
		fixed = ESRequestFixedSec
		bytes = float64(stats.PostingsScanned) * PostingBytes
		flops = float64(stats.PostingsScanned) * 12 // scoring arithmetic
	case MethodBM25Reranked:
		fixed = ESRequestFixedSec + 2e-3 // extra fetch round for candidates
		bytes = float64(stats.PostingsScanned)*PostingBytes +
			float64(stats.DocsReranked)*CrossEncoderBytesPerPair
		flops = float64(stats.DocsReranked) * CrossEncoderFlopsPerPair / RerankThreadFraction
	case MethodSBERT:
		fixed = SBERTFixedSec
		bytes = float64(stats.DenseCompared) * DenseCompareBytes
		flops = SBERTQueryFlops
	default:
		return 0, fmt.Errorf("rag: unknown method %v", m)
	}

	// TLB pressure on the scanned index / streamed weights.
	ws := bytes
	tlb := mem.TLBPenalty(ws, t.Platform.Pages, t.CPU.DTLBEntries, t.Platform.PageWalkAmp)
	memT := bytes / bw * (1 + tlb)
	compT := flops / flopsRate
	total := fixed + memT + compT

	// Service-path inflation: request handling crosses the syscall/virtio/
	// LUKS stack, which virtualization taxes and memory encryption slow.
	ioFactor := 1 + t.Platform.ComputeTax*0.7 + (1-t.Platform.MemBWFactor)*1.5
	total *= ioFactor
	// Enclave exits dominate SGX's service path instead.
	total += t.Platform.ExitCostSec * t.Platform.ExitsPerToken * 20
	return total, nil
}

// MeanQueryTime evaluates the pipeline over the corpus and returns the mean
// modeled per-query latency with noise, plus the achieved nDCG@10.
func (t Timing) MeanQueryTime(p *Pipeline, c *Corpus, m Method) (meanSec, ndcg float64, err error) {
	ndcg, agg, err := p.Evaluate(c, m)
	if err != nil {
		return 0, 0, err
	}
	n := len(c.Queries)
	per := QueryStats{
		PostingsScanned: agg.PostingsScanned / n,
		DocsReranked:    agg.DocsReranked / n,
		DenseCompared:   agg.DenseCompared / n,
	}
	base, err := t.QueryTime(m, per)
	if err != nil {
		return 0, 0, err
	}
	noise := sim.NewNoise(t.Seed, hw.NoiseBase, hw.MemEncryptJitter, hw.OutlierProb, hw.OutlierScale)
	var sum float64
	for i := 0; i < n; i++ {
		sum += noise.Sample(base, t.Platform.Protected)
	}
	return sum / float64(n), ndcg, nil
}
