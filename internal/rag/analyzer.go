// Package rag implements the retrieval-augmented-generation pipeline of the
// paper's §VI: an Elasticsearch-style document store with an inverted index
// and BM25 ranking, a cross-encoder reranker (reranked BM25), and an
// SBERT-style dense retriever built on the real transformer encoder — all
// timed under the same TEE platforms as LLM inference (Fig 14), evaluated
// with nDCG@10 on a BEIR-like synthetic benchmark.
package rag

import (
	"strings"
	"unicode"
)

// stopwords is a compact English stopword list (Lucene's default set).
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "but": true, "by": true, "for": true, "if": true, "in": true,
	"into": true, "is": true, "it": true, "no": true, "not": true, "of": true,
	"on": true, "or": true, "such": true, "that": true, "the": true,
	"their": true, "then": true, "there": true, "these": true, "they": true,
	"this": true, "to": true, "was": true, "will": true, "with": true,
}

// Analyze lowercases, splits on non-alphanumerics, removes stopwords and
// applies light suffix stemming — the standard text analysis chain of an
// Elasticsearch text field.
func Analyze(text string) []string {
	var terms []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() == 0 {
			return
		}
		term := cur.String()
		cur.Reset()
		if stopwords[term] {
			return
		}
		term = stem(term)
		if term != "" {
			terms = append(terms, term)
		}
	}
	for _, r := range strings.ToLower(text) {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return terms
}

// stem applies a light Porter-style suffix strip: plural and progressive
// endings only, preserving short stems.
func stem(t string) string {
	switch {
	case len(t) > 5 && strings.HasSuffix(t, "ing"):
		return t[:len(t)-3]
	case len(t) > 4 && strings.HasSuffix(t, "edly"):
		return t[:len(t)-4]
	case len(t) > 4 && strings.HasSuffix(t, "ies"):
		return t[:len(t)-3] + "y"
	case len(t) > 3 && strings.HasSuffix(t, "es") && sibilantBefore(t):
		return t[:len(t)-2]
	case len(t) > 3 && strings.HasSuffix(t, "ed"):
		return t[:len(t)-2]
	case len(t) > 2 && strings.HasSuffix(t, "s") && !strings.HasSuffix(t, "ss"):
		return t[:len(t)-1]
	default:
		return t
	}
}

// sibilantBefore reports whether the "es" suffix follows a sibilant
// (boxes, passes, churches) rather than being part of the stem (valves).
func sibilantBefore(t string) bool {
	c := t[len(t)-3]
	return c == 's' || c == 'x' || c == 'z' || c == 'h'
}
