package rag

import (
	"math"
	"testing"
	"testing/quick"

	"cllm/internal/hw"
	"cllm/internal/tee"
)

func TestAnalyze(t *testing.T) {
	terms := Analyze("The Heart-Valves are failing, and pressures RISING!")
	// "the"/"are"/"and" are stopwords; suffixes stripped; lowercased.
	// The light stemmer is aggressive on -ing ("failing"→"fail",
	// "rising"→"ris"); that is fine as long as it is consistent between
	// indexing and querying.
	want := []string{"heart", "valve", "fail", "pressure", "ris"}
	if len(terms) != len(want) {
		t.Fatalf("Analyze = %v, want %v", terms, want)
	}
	for i := range want {
		if terms[i] != want[i] {
			t.Errorf("term[%d] = %q, want %q", i, terms[i], want[i])
		}
	}
	if got := Analyze("!!! ..."); len(got) != 0 {
		t.Errorf("punctuation-only text produced %v", got)
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"valves": "valve", "studies": "study", "tested": "test",
		"running": "runn", "pass": "pass", "es": "es", "cats": "cat",
		"boxes": "box", "churches": "church",
	}
	for in, want := range cases {
		if got := stem(in); got != want {
			t.Errorf("stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func buildSmallStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	docs := []Document{
		{ID: "d1", Title: "heart valve surgery", Body: "heart valve replacement improves cardiac rhythm and pressure"},
		{ID: "d2", Title: "tumor biopsy", Body: "biopsy confirms tumor marker and chemotherapy plan"},
		{ID: "d3", Title: "portfolio hedging", Body: "hedge equity portfolio with derivatives and manage liquidity"},
		{ID: "d4", Title: "heart rhythm study", Body: "rhythm monitoring with ecg detects arrhythmia in heart patients"},
	}
	for _, d := range docs {
		if err := s.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestStoreAdd(t *testing.T) {
	s := buildSmallStore(t)
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if err := s.Add(Document{ID: "d1"}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if err := s.Add(Document{}); err == nil {
		t.Error("empty ID accepted")
	}
	if _, err := s.Doc("nope"); err == nil {
		t.Error("missing doc returned")
	}
}

func TestBM25RanksOnTopic(t *testing.T) {
	s := buildSmallStore(t)
	hits, scanned, err := s.SearchBM25("heart valve", 4, DefaultBM25())
	if err != nil {
		t.Fatal(err)
	}
	if scanned == 0 {
		t.Error("no postings scanned")
	}
	if hits[0].ID != "d1" {
		t.Errorf("top hit = %s, want d1", hits[0].ID)
	}
	// d4 mentions heart but not valve: second.
	if hits[1].ID != "d4" {
		t.Errorf("second hit = %s, want d4", hits[1].ID)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Error("hits not sorted by score")
		}
	}
}

func TestBM25Errors(t *testing.T) {
	s := buildSmallStore(t)
	if _, _, err := s.SearchBM25("heart", 0, DefaultBM25()); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := s.SearchBM25("the and of", 3, DefaultBM25()); err == nil {
		t.Error("stopword-only query accepted")
	}
	if _, _, err := NewStore().SearchBM25("heart", 3, DefaultBM25()); err == nil {
		t.Error("empty index searched")
	}
}

func TestIDFMonotonicity(t *testing.T) {
	s := buildSmallStore(t)
	// "heart" appears in 2 docs, "tumor" in 1: rarer term has higher IDF.
	if s.IDF("tumor") <= s.IDF("heart") {
		t.Errorf("IDF(tumor)=%g <= IDF(heart)=%g", s.IDF("tumor"), s.IDF("heart"))
	}
	if s.IDF("unseen-term") <= s.IDF("tumor") {
		t.Error("unseen term should have the highest IDF")
	}
}

func TestCrossEncoderPrefersRelevant(t *testing.T) {
	s := buildSmallStore(t)
	ce := NewCrossEncoder(s)
	d1, _ := s.Doc("d1")
	d3, _ := s.Doc("d3")
	if ce.Score("heart valve replacement", d1) <= ce.Score("heart valve replacement", d3) {
		t.Error("cross encoder scored off-topic doc higher")
	}
}

func TestRerankImprovesOrdering(t *testing.T) {
	s := buildSmallStore(t)
	ce := NewCrossEncoder(s)
	cands := []Hit{{ID: "d3", Score: 5}, {ID: "d1", Score: 4}} // BM25 got it wrong
	out, err := ce.Rerank("heart valve replacement", cands, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].ID != "d1" {
		t.Errorf("rerank top = %s, want d1", out[0].ID)
	}
	if _, err := ce.Rerank("q", cands, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ce.Rerank("q", []Hit{{ID: "missing"}}, 1); err == nil {
		t.Error("missing candidate accepted")
	}
}

func TestCorpusGeneration(t *testing.T) {
	c, err := GenerateCorpus(10, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Docs) != 10*len(topicVocab) || len(c.Queries) != 3*len(topicVocab) {
		t.Fatalf("corpus size %d docs / %d queries", len(c.Docs), len(c.Queries))
	}
	// Deterministic.
	c2, _ := GenerateCorpus(10, 3, 7)
	if c.Docs[5].Body != c2.Docs[5].Body {
		t.Error("corpus not deterministic")
	}
	if _, err := GenerateCorpus(1, 1, 7); err == nil {
		t.Error("tiny corpus accepted")
	}
}

func TestNDCG(t *testing.T) {
	rels := map[string]int{"a": 2, "b": 1}
	perfect := []Hit{{ID: "a"}, {ID: "b"}}
	nd, err := NDCGAt(perfect, rels, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nd-1) > 1e-12 {
		t.Errorf("perfect nDCG = %g", nd)
	}
	reversed := []Hit{{ID: "b"}, {ID: "a"}}
	nd2, _ := NDCGAt(reversed, rels, 10)
	if nd2 >= nd {
		t.Error("reversed ranking not penalized")
	}
	empty, _ := NDCGAt(nil, rels, 10)
	if empty != 0 {
		t.Errorf("empty ranking nDCG = %g", empty)
	}
	if _, err := NDCGAt(perfect, rels, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NDCGAt(perfect, map[string]int{}, 10); err == nil {
		t.Error("no judgments accepted")
	}
}

func TestRecall(t *testing.T) {
	rels := map[string]int{"a": 2, "b": 1, "c": 0}
	r, err := RecallAt([]Hit{{ID: "a"}, {ID: "x"}}, rels, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0.5 {
		t.Errorf("recall = %g, want 0.5", r)
	}
	if _, err := RecallAt(nil, map[string]int{"c": 0}, 5); err == nil {
		t.Error("no relevant docs accepted")
	}
}

func TestNDCGBounds(t *testing.T) {
	if err := quick.Check(func(ids []uint8) bool {
		rels := map[string]int{"a": 2, "b": 1, "c": 1}
		hits := make([]Hit, 0, len(ids))
		for _, id := range ids {
			hits = append(hits, Hit{ID: string(rune('a' + id%6))})
		}
		nd, err := NDCGAt(hits, rels, 10)
		return err == nil && nd >= 0 && nd <= 1+1e-12
	}, nil); err != nil {
		t.Error(err)
	}
}

func buildPipeline(t *testing.T) (*Pipeline, *Corpus) {
	t.Helper()
	c, err := GenerateCorpus(20, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(c, 11)
	if err != nil {
		t.Fatal(err)
	}
	return p, c
}

func TestPipelineQuality(t *testing.T) {
	p, c := buildPipeline(t)
	for _, m := range []Method{MethodBM25, MethodBM25Reranked, MethodSBERT} {
		nd, stats, err := p.Evaluate(c, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		// BM25 and reranked BM25 must retrieve on-topic documents well on
		// this synthetic benchmark; dense retrieval with an untrained
		// encoder only needs to be valid, not good.
		if m != MethodSBERT && nd < 0.5 {
			t.Errorf("%v nDCG@10 = %.3f, want ≥ 0.5", m, nd)
		}
		if nd < 0 || nd > 1 {
			t.Errorf("%v nDCG@10 = %.3f out of range", m, nd)
		}
		switch m {
		case MethodBM25:
			if stats.PostingsScanned == 0 {
				t.Error("BM25 scanned nothing")
			}
		case MethodBM25Reranked:
			if stats.DocsReranked == 0 {
				t.Error("reranker scored nothing")
			}
		case MethodSBERT:
			if stats.DenseCompared == 0 {
				t.Error("dense retrieval compared nothing")
			}
		}
	}
	if _, _, err := p.Run(Method(99), "q", 5); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestDenseRetrieverBasics(t *testing.T) {
	p, _ := buildPipeline(t)
	hits, err := p.Dense.Search("encryption enclave attestation", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 5 {
		t.Fatalf("dense hits = %d", len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Error("dense hits not sorted")
		}
	}
	if _, err := p.Dense.Search("q", 0); err == nil {
		t.Error("k=0 accepted")
	}
	if p.Dense.EmbeddingDim() <= 0 {
		t.Error("bad embedding dim")
	}
	if _, err := NewDenseRetriever(NewStore(), 16, 1); err == nil {
		t.Error("empty store accepted")
	}
}

func TestFig14TimingShape(t *testing.T) {
	p, c := buildPipeline(t)
	platforms := []tee.Platform{tee.Baremetal(), tee.VM(tee.VMFullHuge), tee.TDX()}
	times := make(map[string]map[Method]float64)
	for _, plat := range platforms {
		times[plat.Name] = make(map[Method]float64)
		for _, m := range []Method{MethodBM25, MethodBM25Reranked, MethodSBERT} {
			tm := Timing{CPU: hw.EMR2(), Platform: plat, Cores: 32, Seed: 3}
			mean, nd, err := tm.MeanQueryTime(p, c, m)
			if err != nil {
				t.Fatal(err)
			}
			if mean <= 0 || nd < 0 {
				t.Fatalf("%s/%v: mean %g ndcg %g", plat.Name, m, mean, nd)
			}
			times[plat.Name][m] = mean
		}
	}
	// Absolute scale (Fig 14): reranked ≫ BM25 > sbert; reranked in the
	// seconds range, BM25 and sbert in single-digit milliseconds.
	bm := times["baremetal"]
	if !(bm[MethodBM25Reranked] > 50*bm[MethodBM25] && bm[MethodBM25] > bm[MethodSBERT]) {
		t.Errorf("cost ordering wrong: %v", bm)
	}
	if bm[MethodBM25Reranked] < 0.3 || bm[MethodBM25Reranked] > 10 {
		t.Errorf("reranked mean %.3fs, want ~1-2s", bm[MethodBM25Reranked])
	}
	if bm[MethodBM25] < 1e-3 || bm[MethodBM25] > 0.05 {
		t.Errorf("BM25 mean %.4fs, want ~8ms", bm[MethodBM25])
	}
	// Overheads (Fig 14): TDX ≈ 6-7.3%, VM ≈ 2.8-3.7%, and VM < TDX.
	for _, m := range []Method{MethodBM25, MethodBM25Reranked, MethodSBERT} {
		vmOv := (times["VM-FH"][m] - times["baremetal"][m]) / times["baremetal"][m] * 100
		tdxOv := (times["TDX"][m] - times["baremetal"][m]) / times["baremetal"][m] * 100
		if vmOv < 0.5 || vmOv > 6 {
			t.Errorf("%v VM overhead %.2f%%, want ~3%%", m, vmOv)
		}
		if tdxOv < 3 || tdxOv > 11 {
			t.Errorf("%v TDX overhead %.2f%%, want ~6-7%%", m, tdxOv)
		}
		if tdxOv <= vmOv {
			t.Errorf("%v TDX (%.2f%%) not above VM (%.2f%%)", m, tdxOv, vmOv)
		}
	}
}

func TestTimingUnknownMethod(t *testing.T) {
	tm := Timing{CPU: hw.EMR2(), Platform: tee.Baremetal(), Cores: 8}
	if _, err := tm.QueryTime(Method(42), QueryStats{}); err == nil {
		t.Error("unknown method accepted")
	}
}
