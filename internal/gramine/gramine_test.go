package gramine

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

const sampleManifest = `
# Gramine manifest for the cLLM inference pipeline (cf. paper Fig 2).
libos.entrypoint = "/usr/bin/python3"
sgx.enclave_size = "64G"
sgx.max_threads = 64
sgx.debug = false
sgx.trusted_files = ["file:/usr/bin/python3", "file:/usr/lib/libipex.so"]
fs.encrypted_files = ["file:/models/llama2-7b.bin"]
fs.key_name = "default"
loader.env.OMP_NUM_THREADS = "32"  # unknown keys tolerated
`

func TestParseManifest(t *testing.T) {
	m, err := ParseManifest(sampleManifest)
	if err != nil {
		t.Fatal(err)
	}
	if m.Entrypoint != "/usr/bin/python3" {
		t.Errorf("Entrypoint = %q", m.Entrypoint)
	}
	if m.EnclaveSize != 64<<30 {
		t.Errorf("EnclaveSize = %d", m.EnclaveSize)
	}
	if m.MaxThreads != 64 {
		t.Errorf("MaxThreads = %d", m.MaxThreads)
	}
	if m.Debug {
		t.Error("Debug = true")
	}
	if len(m.TrustedFiles) != 2 || m.TrustedFiles[1] != "file:/usr/lib/libipex.so" {
		t.Errorf("TrustedFiles = %v", m.TrustedFiles)
	}
	if len(m.EncryptedFiles) != 1 {
		t.Errorf("EncryptedFiles = %v", m.EncryptedFiles)
	}
	if m.KeyName != "default" {
		t.Errorf("KeyName = %q", m.KeyName)
	}
}

func TestParseManifestErrors(t *testing.T) {
	cases := []string{
		``,                              // missing everything
		`libos.entrypoint = "/bin/x"`,   // missing enclave size
		`sgx.enclave_size = "8G"`,       // missing entrypoint
		`libos.entrypoint = /bin/x`,     // unquoted string
		`sgx.max_threads = "many"`,      // bad int
		`sgx.debug = maybe`,             // bad bool
		`sgx.trusted_files = "file:/x"`, // not an array
		`sgx.trusted_files = [file:/x]`, // unquoted array element
		`this is not an assignment`,     // no '='
		`sgx.enclave_size = "-1G"`,      // negative size
		"libos.entrypoint = \"/b\"\nsgx.enclave_size = \"1G\"\nsgx.max_threads = 0", // zero threads
	}
	for i, c := range cases {
		if _, err := ParseManifest(c); err == nil {
			t.Errorf("case %d parsed but should fail:\n%s", i, c)
		}
	}
}

func TestCommentInsideString(t *testing.T) {
	m, err := ParseManifest(`
libos.entrypoint = "/opt/app#1/bin"
sgx.enclave_size = "1G"
sgx.max_threads = 4
`)
	if err != nil {
		t.Fatal(err)
	}
	if m.Entrypoint != "/opt/app#1/bin" {
		t.Errorf("Entrypoint = %q, # inside string mangled", m.Entrypoint)
	}
}

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"1024": 1024, "4K": 4 << 10, "512M": 512 << 20, "8G": 8 << 30, "2T": 2 << 40,
		"1k": 1 << 10, "3g": 3 << 30,
	}
	for in, want := range cases {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "G", "12Q3", "abc"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) succeeded", bad)
		}
	}
}

func TestDefaultManifestValidates(t *testing.T) {
	m := DefaultManifest("/models/w.bin", 8<<30, 32)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.EncryptedFiles) != 1 || !strings.Contains(m.EncryptedFiles[0], "/models/w.bin") {
		t.Errorf("EncryptedFiles = %v", m.EncryptedFiles)
	}
}

func TestSyscallClassify(t *testing.T) {
	if Classify("futex") != InEnclave {
		t.Error("futex should be in-enclave")
	}
	if Classify("read") != OCALL {
		t.Error("read should be an OCALL")
	}
	if Classify("fork") != Unsupported {
		t.Error("fork should be unsupported")
	}
	if Classify("made_up_syscall") != OCALL {
		t.Error("unknown syscalls should conservatively be OCALLs")
	}
	for _, c := range []SyscallClass{InEnclave, OCALL, Unsupported} {
		if c.String() == "" {
			t.Error("empty class name")
		}
	}
}

func TestInferenceLoopProfile(t *testing.T) {
	p := Profile(InferenceLoopSyscalls())
	if p.Total != len(InferenceLoopSyscalls()) {
		t.Errorf("Total = %d", p.Total)
	}
	if p.Unsupported != 0 {
		t.Error("inference loop contains unsupported syscalls")
	}
	// The loop must be dominated by in-enclave emulation — that is why SGX
	// overheads stay below 10% for this workload (Insight 4).
	if p.InEnclave <= p.Exits {
		t.Errorf("in-enclave %d <= exits %d; loop would thrash", p.InEnclave, p.Exits)
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	key := DeriveKey([]byte("enclave-measurement"), "default")
	msg := []byte("llama2 weights: confidential")
	sealed, err := Seal(key, msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unseal(key, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip mismatch")
	}
	// Ciphertext must not contain the plaintext.
	if bytes.Contains(sealed, msg) {
		t.Fatal("plaintext visible in sealed blob")
	}
}

func TestUnsealRejectsTampering(t *testing.T) {
	key := DeriveKey([]byte("m"), "k")
	sealed, err := Seal(key, []byte("secret model weights"))
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, 5, headerSize + 2, len(sealed) - 1} {
		tampered := append([]byte(nil), sealed...)
		tampered[pos] ^= 0x40
		if _, err := Unseal(key, tampered); err == nil {
			t.Errorf("tampering at byte %d not detected", pos)
		}
	}
	// Wrong key fails too.
	other := DeriveKey([]byte("m2"), "k")
	if _, err := Unseal(other, sealed); err == nil {
		t.Error("unseal with wrong key succeeded")
	}
	// Truncated blob fails.
	if _, err := Unseal(key, sealed[:10]); err == nil {
		t.Error("truncated blob unsealed")
	}
}

func TestSealProperty(t *testing.T) {
	key := DeriveKey([]byte("meas"), "prop")
	if err := quick.Check(func(data []byte) bool {
		sealed, err := Seal(key, data)
		if err != nil {
			return false
		}
		got, err := Unseal(key, sealed)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyDerivationSeparation(t *testing.T) {
	a := DeriveKey([]byte("m1"), "k")
	b := DeriveKey([]byte("m2"), "k")
	c := DeriveKey([]byte("m1"), "k2")
	if a == b || a == c || b == c {
		t.Error("derived keys collide across measurement/name changes")
	}
}

func TestTrustedFileVerify(t *testing.T) {
	content := []byte("binary bits")
	h := TrustedFileHash(content)
	if err := VerifyTrustedFile(content, h); err != nil {
		t.Fatal(err)
	}
	if err := VerifyTrustedFile([]byte("binary bitz"), h); err == nil {
		t.Error("modified trusted file verified")
	}
}

func TestStore(t *testing.T) {
	key := DeriveKey([]byte("m"), "store")
	s := NewStore(key)
	if err := s.Put("/models/w.bin", []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("/models/w.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatal("store round trip mismatch")
	}
	if _, err := s.Get("/nope"); err == nil {
		t.Error("missing file read succeeded")
	}
	raw, ok := s.Raw("/models/w.bin")
	if !ok || bytes.Contains(raw, []byte{1, 2, 3, 4}) {
		// 4 bytes could appear by chance, but with probability ~2^-30; treat
		// presence as failure.
		if bytes.Contains(raw, []byte{1, 2, 3, 4}) {
			t.Error("plaintext visible in raw store")
		}
	}
}
