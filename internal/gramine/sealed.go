package gramine

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
)

// Sealed-file store: the encrypted-files feature of the manifest. Files are
// protected with AES-256-CTR for confidentiality and HMAC-SHA256 for
// integrity (encrypt-then-MAC), keyed by a sealing key that in real SGX
// derives from the CPU's fuse key and the enclave measurement. Model weights
// at rest are protected exactly this way in the paper's deployment; under
// TDX the equivalent duty falls to LUKS full-disk encryption (§III-B).

const (
	sealMagic  = "GRS1"
	keySize    = 32
	ivSize     = aes.BlockSize
	macSize    = sha256.Size
	headerSize = len(sealMagic) + 8 // magic + payload length
)

// SealKey is a 256-bit sealing key.
type SealKey [keySize]byte

// DeriveKey derives a sealing key from an enclave measurement and key name,
// standing in for the EGETKEY derivation.
func DeriveKey(measurement []byte, keyName string) SealKey {
	h := hmac.New(sha256.New, measurement)
	h.Write([]byte("gramine-seal-key:"))
	h.Write([]byte(keyName))
	var k SealKey
	copy(k[:], h.Sum(nil))
	return k
}

// Seal encrypts and authenticates plaintext.
func Seal(key SealKey, plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("gramine: seal: %w", err)
	}
	iv := make([]byte, ivSize)
	if _, err := io.ReadFull(rand.Reader, iv); err != nil {
		return nil, fmt.Errorf("gramine: seal iv: %w", err)
	}
	out := make([]byte, 0, headerSize+ivSize+len(plaintext)+macSize)
	out = append(out, sealMagic...)
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(plaintext)))
	out = append(out, lenBuf[:]...)
	out = append(out, iv...)
	ct := make([]byte, len(plaintext))
	cipher.NewCTR(block, iv).XORKeyStream(ct, plaintext)
	out = append(out, ct...)
	mac := hmac.New(sha256.New, key[:])
	mac.Write(out)
	out = mac.Sum(out)
	return out, nil
}

// Unseal verifies and decrypts a sealed blob. Any tampering (header, IV,
// ciphertext or MAC) fails.
func Unseal(key SealKey, sealed []byte) ([]byte, error) {
	if len(sealed) < headerSize+ivSize+macSize {
		return nil, fmt.Errorf("gramine: sealed blob too short (%d bytes)", len(sealed))
	}
	if string(sealed[:len(sealMagic)]) != sealMagic {
		return nil, fmt.Errorf("gramine: bad seal magic")
	}
	body := sealed[:len(sealed)-macSize]
	wantMAC := sealed[len(sealed)-macSize:]
	mac := hmac.New(sha256.New, key[:])
	mac.Write(body)
	if !hmac.Equal(mac.Sum(nil), wantMAC) {
		return nil, fmt.Errorf("gramine: integrity check failed")
	}
	n := binary.BigEndian.Uint64(sealed[len(sealMagic):headerSize])
	iv := sealed[headerSize : headerSize+ivSize]
	ct := sealed[headerSize+ivSize : len(sealed)-macSize]
	if uint64(len(ct)) != n {
		return nil, fmt.Errorf("gramine: length mismatch: header %d, body %d", n, len(ct))
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("gramine: unseal: %w", err)
	}
	pt := make([]byte, len(ct))
	cipher.NewCTR(block, iv).XORKeyStream(pt, ct)
	return pt, nil
}

// TrustedFileHash returns the SHA-256 measurement Gramine records for each
// trusted file at manifest-generation time and verifies at open time.
func TrustedFileHash(content []byte) [32]byte {
	return sha256.Sum256(content)
}

// VerifyTrustedFile checks content against its recorded measurement.
func VerifyTrustedFile(content []byte, want [32]byte) error {
	got := sha256.Sum256(content)
	if !bytes.Equal(got[:], want[:]) {
		return fmt.Errorf("gramine: trusted file hash mismatch")
	}
	return nil
}

// Store is an in-memory encrypted file store keyed by path, standing in for
// the protected filesystem mounts of a Gramine deployment.
type Store struct {
	key   SealKey
	files map[string][]byte
}

// NewStore creates an empty store sealed under key.
func NewStore(key SealKey) *Store {
	return &Store{key: key, files: make(map[string][]byte)}
}

// Put seals and stores content at path.
func (s *Store) Put(path string, content []byte) error {
	sealed, err := Seal(s.key, content)
	if err != nil {
		return err
	}
	s.files[path] = sealed
	return nil
}

// Get unseals the content at path.
func (s *Store) Get(path string) ([]byte, error) {
	sealed, ok := s.files[path]
	if !ok {
		return nil, fmt.Errorf("gramine: no such sealed file %q", path)
	}
	return Unseal(s.key, sealed)
}

// Raw returns the sealed bytes (what an attacker on the host sees).
func (s *Store) Raw(path string) ([]byte, bool) {
	b, ok := s.files[path]
	return b, ok
}
