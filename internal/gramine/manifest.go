// Package gramine implements the process-TEE software layer the paper runs
// SGX workloads on: a Gramine-style manifest (a TOML subset) describing the
// enclave, trusted-file integrity measurement, a syscall classifier that
// decides which calls the libOS can emulate inside the enclave versus which
// force an expensive enclave exit (OCALL), and an encrypted file store for
// sealed model weights.
package gramine

import (
	"fmt"
	"strconv"
	"strings"
)

// EnclaveBuildBytesPerSec is the EADD+EEXTEND throughput of enclave
// construction: every page of the initial enclave image (the libOS, the
// runtime, and — for sealed models — the weight image) is added and
// measured before EINIT can seal the identity. It makes SGX cold starts
// scale with the enclave image, which is why the autoscaling simulator
// charges SGX the steepest scale-up latency per byte.
const EnclaveBuildBytesPerSec = 1.8e9

// Manifest mirrors the fields of a Gramine manifest the paper's Fig 2 shows:
// entrypoint, enclave size, thread count, trusted and encrypted files.
type Manifest struct {
	// Entrypoint is the binary the libOS starts (libos.entrypoint).
	Entrypoint string
	// EnclaveSize is sgx.enclave_size in bytes.
	EnclaveSize int64
	// MaxThreads is sgx.max_threads.
	MaxThreads int
	// TrustedFiles are integrity-protected, world-readable inputs.
	TrustedFiles []string
	// EncryptedFiles are confidentiality+integrity protected paths.
	EncryptedFiles []string
	// KeyName selects the sealing key (fs.insecure__keys or PF key).
	KeyName string
	// Debug enables the (insecure) debug enclave.
	Debug bool
}

// Validate checks the manifest is runnable.
func (m *Manifest) Validate() error {
	switch {
	case m.Entrypoint == "":
		return fmt.Errorf("gramine: manifest missing libos.entrypoint")
	case m.EnclaveSize <= 0:
		return fmt.Errorf("gramine: sgx.enclave_size must be positive")
	case m.MaxThreads <= 0:
		return fmt.Errorf("gramine: sgx.max_threads must be positive")
	}
	return nil
}

// ParseManifest parses the TOML subset Gramine manifests use: dotted
// `key = value` assignments with string, integer, boolean and string-array
// values, plus `#` comments. Sizes accept Gramine's "512M"/"8G" suffixes.
func ParseManifest(text string) (*Manifest, error) {
	m := &Manifest{}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, val, err := splitAssignment(line)
		if err != nil {
			return nil, fmt.Errorf("gramine: line %d: %w", lineNo+1, err)
		}
		if err := m.apply(key, val); err != nil {
			return nil, fmt.Errorf("gramine: line %d: %w", lineNo+1, err)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func stripComment(line string) string {
	inStr := false
	for i, r := range line {
		switch r {
		case '"':
			inStr = !inStr
		case '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

func splitAssignment(line string) (key, val string, err error) {
	eq := strings.Index(line, "=")
	if eq < 0 {
		return "", "", fmt.Errorf("expected key = value, got %q", line)
	}
	key = strings.TrimSpace(line[:eq])
	val = strings.TrimSpace(line[eq+1:])
	if key == "" || val == "" {
		return "", "", fmt.Errorf("empty key or value in %q", line)
	}
	return key, val, nil
}

func (m *Manifest) apply(key, val string) error {
	switch key {
	case "libos.entrypoint":
		s, err := parseString(val)
		if err != nil {
			return err
		}
		m.Entrypoint = s
	case "sgx.enclave_size":
		s, err := parseString(val)
		if err != nil {
			return err
		}
		n, err := ParseSize(s)
		if err != nil {
			return err
		}
		m.EnclaveSize = n
	case "sgx.max_threads":
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("sgx.max_threads: %w", err)
		}
		m.MaxThreads = n
	case "sgx.debug":
		b, err := strconv.ParseBool(val)
		if err != nil {
			return fmt.Errorf("sgx.debug: %w", err)
		}
		m.Debug = b
	case "sgx.trusted_files":
		files, err := parseStringArray(val)
		if err != nil {
			return err
		}
		m.TrustedFiles = files
	case "fs.encrypted_files":
		files, err := parseStringArray(val)
		if err != nil {
			return err
		}
		m.EncryptedFiles = files
	case "fs.key_name":
		s, err := parseString(val)
		if err != nil {
			return err
		}
		m.KeyName = s
	default:
		// Unknown keys are tolerated, as Gramine tolerates loader.env.* etc.
	}
	return nil
}

func parseString(val string) (string, error) {
	if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
		return "", fmt.Errorf("expected quoted string, got %q", val)
	}
	return val[1 : len(val)-1], nil
}

func parseStringArray(val string) ([]string, error) {
	if len(val) < 2 || val[0] != '[' || val[len(val)-1] != ']' {
		return nil, fmt.Errorf("expected array, got %q", val)
	}
	inner := strings.TrimSpace(val[1 : len(val)-1])
	if inner == "" {
		return nil, nil
	}
	var out []string
	for _, part := range strings.Split(inner, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		s, err := parseString(part)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// ParseSize parses Gramine-style sizes: "1024", "512M", "8G", "64K".
func ParseSize(s string) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty size")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'K', 'k':
		mult = 1 << 10
		s = s[:len(s)-1]
	case 'M', 'm':
		mult = 1 << 20
		s = s[:len(s)-1]
	case 'G', 'g':
		mult = 1 << 30
		s = s[:len(s)-1]
	case 'T', 't':
		mult = 1 << 40
		s = s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("negative size %q", s)
	}
	return n * mult, nil
}

// DefaultManifest returns the manifest used by the inference pipeline,
// mirroring the paper's Fig 2 excerpt.
func DefaultManifest(modelPath string, enclaveSize int64, threads int) *Manifest {
	return &Manifest{
		Entrypoint:     "/usr/bin/cllm-infer",
		EnclaveSize:    enclaveSize,
		MaxThreads:     threads,
		TrustedFiles:   []string{"file:/usr/bin/cllm-infer", "file:/etc/tokenizer.json"},
		EncryptedFiles: []string{"file:" + modelPath},
		KeyName:        "default",
	}
}
