package gramine

// Syscall classification: Gramine emulates many syscalls entirely inside the
// enclave (futex fast paths, memory management over preallocated enclave
// pages, clock reads via the VDSO emulation); the rest must leave the
// enclave through an OCALL, paying the EEXIT/EENTER + TLB/cache flush cost
// that is one of SGX's two overhead sources (§III-A).

// SyscallClass says where a call is handled.
type SyscallClass int

const (
	// InEnclave calls are emulated by the libOS without leaving SGX.
	InEnclave SyscallClass = iota
	// OCALL calls must exit the enclave to the untrusted host.
	OCALL
	// Unsupported calls fail inside Gramine (the paper's "if a given call
	// is not implemented fully, it can result in considerable overhead").
	Unsupported
)

// String names the class.
func (c SyscallClass) String() string {
	switch c {
	case InEnclave:
		return "in-enclave"
	case OCALL:
		return "ocall"
	default:
		return "unsupported"
	}
}

var syscallTable = map[string]SyscallClass{
	// Emulated in-enclave by the libOS.
	"futex":         InEnclave,
	"mmap":          InEnclave, // over preallocated enclave memory
	"munmap":        InEnclave,
	"brk":           InEnclave,
	"clock_gettime": InEnclave,
	"gettimeofday":  InEnclave,
	"getpid":        InEnclave,
	"gettid":        InEnclave,
	"sched_yield":   InEnclave,
	"madvise":       InEnclave,
	"mprotect":      InEnclave,
	"exit":          InEnclave,
	"rt_sigaction":  InEnclave,

	// Require host services: exit the enclave.
	"read":           OCALL,
	"write":          OCALL,
	"open":           OCALL,
	"openat":         OCALL,
	"close":          OCALL,
	"stat":           OCALL,
	"fstat":          OCALL,
	"socket":         OCALL,
	"connect":        OCALL,
	"accept":         OCALL,
	"sendto":         OCALL,
	"recvfrom":       OCALL,
	"epoll_wait":     OCALL,
	"poll":           OCALL,
	"nanosleep":      OCALL,
	"clone":          OCALL, // thread creation needs a host TCS
	"execve":         Unsupported,
	"fork":           Unsupported,
	"io_uring_setup": Unsupported,
}

// Classify returns where the named syscall is handled. Unknown syscalls are
// conservatively treated as OCALLs.
func Classify(name string) SyscallClass {
	if c, ok := syscallTable[name]; ok {
		return c
	}
	return OCALL
}

// ExitProfile summarizes the enclave-exit behaviour of a syscall trace.
type ExitProfile struct {
	Total       int
	InEnclave   int
	Exits       int
	Unsupported int
}

// Profile classifies a syscall name sequence.
func Profile(callNames []string) ExitProfile {
	var p ExitProfile
	for _, n := range callNames {
		p.Total++
		switch Classify(n) {
		case InEnclave:
			p.InEnclave++
		case OCALL:
			p.Exits++
		default:
			p.Unsupported++
		}
	}
	return p
}

// InferenceLoopSyscalls returns the steady-state per-token syscall mix of
// the IPEX inference loop under Gramine (thread synchronization via futex,
// occasional clock reads, and rare host I/O for logging). This drives the
// SGXExitsPerToken calibration.
func InferenceLoopSyscalls() []string {
	return []string{
		"futex", "futex", "futex", "futex", "futex", "futex", "futex", "futex",
		"clock_gettime", "clock_gettime", "sched_yield",
		"write", "read", "futex", "poll", "clock_gettime",
		"write", "nanosleep", "epoll_wait",
	}
}
