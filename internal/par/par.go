// Package par runs bounded pools of independent jobs with a deterministic
// merge contract. The simulator's sweeps (fleet-sizing candidates,
// capacity probes, experiment grid cells) are embarrassingly parallel but
// must produce byte-identical results at any worker count, so the pattern
// is always the same: every job writes into an index-addressed slot its
// caller owns, the caller consumes the slots in index order, and the error
// reported is the lowest-index one — never whichever finished first.
package par

import "sync"

// For evaluates fn(0), ..., fn(n-1) on up to workers goroutines and
// returns the lowest-index error (nil if none). workers <= 1 runs every
// job on the caller's goroutine in index order. fn must confine its side
// effects to state owned by its index; the completion order of jobs is
// unobservable through For's result.
func For(workers, n int, fn func(int) error) error {
	errs := make([]error, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := 0; i < n; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				errs[i] = fn(i)
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
