package par

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// TestForDeterministicErrors: the pool reports the lowest-index error
// whatever the completion order.
func TestForDeterministicErrors(t *testing.T) {
	for _, workers := range []int{1, 4, 100} {
		err := For(workers, 8, func(i int) error {
			if i%3 == 2 {
				return fmt.Errorf("cell %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 2" {
			t.Fatalf("workers=%d: got %v, want cell 2", workers, err)
		}
		if err := For(workers, 5, func(int) error { return nil }); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
	}
}

// TestForRunsEveryJobOnce: every index runs exactly once at any width,
// including n = 0 and workers wider than n.
func TestForRunsEveryJobOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var counts [13]int32
		if err := For(workers, len(counts), func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
		if err := For(workers, 0, func(int) error { return nil }); err != nil {
			t.Fatalf("workers=%d: n=0 errored: %v", workers, err)
		}
	}
}
