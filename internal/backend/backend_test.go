package backend

import (
	"testing"

	"cllm/internal/dtype"
	"cllm/internal/hw"
	"cllm/internal/model"
	"cllm/internal/perf"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

func TestLookup(t *testing.T) {
	for _, name := range []string{"IPEX", "vLLM", "HF", "Llama.cpp"} {
		b, err := Lookup(name)
		if err != nil || b.Name != name {
			t.Errorf("Lookup(%q) = %+v, %v", name, b, err)
		}
	}
	if _, err := Lookup("TensorRT"); err == nil {
		t.Error("unknown backend resolved")
	}
}

func TestSupports(t *testing.T) {
	if !IPEX().Supports(dtype.I8) {
		t.Error("IPEX must support int8")
	}
	if VLLM().Supports(dtype.I8) {
		t.Error("vLLM CPU int8 unexpectedly supported")
	}
	if !HuggingFace().Supports(dtype.F32) {
		t.Error("HF must support f32")
	}
}

func TestEfficiencyOrdering(t *testing.T) {
	// Insight 3 / Fig 3: IPEX fastest, then vLLM (~50% slower), HF (~100%).
	if !(IPEX().Efficiency > VLLM().Efficiency &&
		VLLM().Efficiency > LlamaCpp().Efficiency &&
		LlamaCpp().Efficiency > HuggingFace().Efficiency) {
		t.Error("framework efficiency ordering broken")
	}
	if !IPEX().UsesAMX {
		t.Error("IPEX must drive AMX")
	}
}

// fig3Time measures the paper's Fig 3 configuration: Llama2 7B, 1024 input,
// 128 output tokens, batch=beam=1, bare metal EMR1.
func fig3Time(t *testing.T, b Backend, kind dtype.Kind) float64 {
	t.Helper()
	cfg, err := model.Lookup("llama2-7b")
	if err != nil {
		t.Fatal(err)
	}
	r, err := perf.RunCPU(perf.CPURun{
		CPU: hw.EMR1(), Platform: tee.Baremetal(),
		Workload:          trace.Workload{Model: cfg, Kind: kind, Batch: 1, Beam: 1, InputLen: 1024, OutputLen: 128},
		Sockets:           1,
		AMX:               b.UsesAMX,
		BackendEfficiency: b.Efficiency,
		Seed:              41,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r.TotalSec
}

func TestFig3Shape(t *testing.T) {
	ipexBF := fig3Time(t, IPEX(), dtype.BF16)
	vllmBF := fig3Time(t, VLLM(), dtype.BF16)
	hfBF := fig3Time(t, HuggingFace(), dtype.BF16)
	lcpp := fig3Time(t, LlamaCpp(), dtype.BF16)
	ipexF32 := fig3Time(t, IPEX(), dtype.F32)
	vllmF32 := fig3Time(t, VLLM(), dtype.F32)
	hfF32 := fig3Time(t, HuggingFace(), dtype.F32)

	// Paper ordering: IPEX(bf16) < vLLM(bf16) < Llama.cpp < HF(bf16) <
	// IPEX(f32) < vLLM(f32) < HF(f32).
	order := []struct {
		name string
		v    float64
	}{
		{"IPEX bf16", ipexBF}, {"vLLM bf16", vllmBF}, {"Llama.cpp", lcpp},
		{"HF bf16", hfBF}, {"IPEX f32", ipexF32}, {"vLLM f32", vllmF32}, {"HF f32", hfF32},
	}
	for i := 1; i < len(order); i++ {
		if order[i].v <= order[i-1].v {
			t.Errorf("Fig 3 ordering broken: %s (%.1fs) <= %s (%.1fs)",
				order[i].name, order[i].v, order[i-1].name, order[i-1].v)
		}
	}
	// vLLM ≈ 50% slower, HF ≈ 100% slower than IPEX (generous bands).
	if r := vllmBF / ipexBF; r < 1.25 || r > 1.9 {
		t.Errorf("vLLM/IPEX = %.2f, want ≈1.5", r)
	}
	if r := hfBF / ipexBF; r < 1.6 || r > 2.6 {
		t.Errorf("HF/IPEX = %.2f, want ≈2.0", r)
	}
	// Absolute scale: the paper's IPEX bf16 run takes ≈8-10s on EMR1.
	if ipexBF < 4 || ipexBF > 16 {
		t.Errorf("IPEX bf16 total = %.1fs, want in the paper's ~8-10s regime", ipexBF)
	}
}
