// Package backend models the CPU inference frameworks the paper compares in
// its framework-selection microbenchmark (Fig 3): IPEX, vLLM, Hugging Face
// Transformers and llama.cpp. Frameworks differ in how much of the hardware
// roofline they achieve (kernel fusion, memory layout, allocator behaviour)
// and in whether they drive AMX; a framework is therefore an efficiency
// transform applied to the same workload trace.
package backend

import (
	"fmt"
	"sort"

	"cllm/internal/dtype"
	"cllm/internal/hw"
)

// Backend describes one inference framework.
type Backend struct {
	// Name as shown in the paper's Fig 3 ("IPEX", "vLLM", "HF", "Llama.cpp").
	Name string
	// Efficiency is the fraction of the roofline achieved (IPEX = 1).
	Efficiency float64
	// UsesAMX reports whether the framework drives the tile units.
	UsesAMX bool
	// Kinds are the supported inference datatypes.
	Kinds []dtype.Kind
	// UsesOneCCL reports tuned cross-NUMA communication (Insight 3).
	UsesOneCCL bool
}

// Supports reports whether the backend can run the datatype.
func (b Backend) Supports(kind dtype.Kind) bool {
	for _, k := range b.Kinds {
		if k == kind {
			return true
		}
	}
	return false
}

// IPEX is the Intel extension for PyTorch: AMX bf16/int8, oneCCL, fastest.
func IPEX() Backend {
	return Backend{
		Name: "IPEX", Efficiency: hw.EffIPEX, UsesAMX: true, UsesOneCCL: true,
		Kinds: []dtype.Kind{dtype.F32, dtype.BF16, dtype.I8},
	}
}

// VLLM is vLLM's CPU backend: paged attention; GEMMs reach AMX through
// oneDNN but with lower end-to-end efficiency than IPEX.
func VLLM() Backend {
	return Backend{
		Name: "vLLM", Efficiency: hw.EffVLLMCPU, UsesAMX: true,
		Kinds: []dtype.Kind{dtype.F32, dtype.BF16},
	}
}

// HuggingFace is the eager-mode transformers baseline (PyTorch linear
// layers still hit AMX via oneDNN; everything else is unfused).
func HuggingFace() Backend {
	return Backend{
		Name: "HF", Efficiency: hw.EffHF, UsesAMX: true,
		Kinds: []dtype.Kind{dtype.F32, dtype.BF16},
	}
}

// LlamaCpp is llama.cpp with its mixed-precision GGUF kernels (AMX tile
// support landed upstream in 2024).
func LlamaCpp() Backend {
	return Backend{
		Name: "Llama.cpp", Efficiency: hw.EffLlamaCpp, UsesAMX: true,
		Kinds: []dtype.Kind{dtype.BF16}, // stands in for GGUF mixed precision
	}
}

// All returns the benchmark set in a stable order.
func All() []Backend {
	return []Backend{IPEX(), VLLM(), HuggingFace(), LlamaCpp()}
}

// Lookup finds a backend by (case-sensitive) name.
func Lookup(name string) (Backend, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	names := make([]string, 0, 4)
	for _, b := range All() {
		names = append(names, b.Name)
	}
	sort.Strings(names)
	return Backend{}, fmt.Errorf("backend: unknown framework %q (have %v)", name, names)
}
