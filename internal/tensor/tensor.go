// Package tensor is a minimal dense float32 tensor library implementing the
// operators a Llama-family decoder needs: blocked matmul, softmax, RMSNorm,
// SiLU, rotary position embeddings, and reductions. It is deliberately
// simple and allocation-aware; correctness is checked against naive
// reference implementations in the tests.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a row-major dense float32 tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data with a shape; the length must match.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("tensor: %v needs %d values, got %d", shape, n, len(data))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}, nil
}

// NumElements returns the total element count.
func (t *Tensor) NumElements() int { return len(t.Data) }

// Dim returns shape[i].
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// At returns the element at the given indices (2-D only, convenience).
func (t *Tensor) At(i, j int) float32 {
	return t.Data[i*t.Shape[1]+j]
}

// Set writes the element at the given indices (2-D only).
func (t *Tensor) Set(i, j int, v float32) {
	t.Data[i*t.Shape[1]+j] = v
}

// Row returns row i of a 2-D tensor as a slice view.
func (t *Tensor) Row(i int) []float32 {
	c := t.Shape[1]
	return t.Data[i*c : (i+1)*c]
}

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	out := New(t.Shape...)
	copy(out.Data, t.Data)
	return out
}

const matmulBlock = 64

// MatMul computes C = A×B for A (m×k) and B (k×n) into a new m×n tensor.
// The inner loops are blocked for cache locality; this is the kernel that
// dominates LLM inference time (the paper's linear/attention layers).
func MatMul(a, b *Tensor) (*Tensor, error) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		return nil, fmt.Errorf("tensor: MatMul requires 2-D operands, got %v and %v", a.Shape, b.Shape)
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: MatMul inner dimensions %d and %d differ", k, k2)
	}
	c := New(m, n)
	for i0 := 0; i0 < m; i0 += matmulBlock {
		iMax := min(i0+matmulBlock, m)
		for k0 := 0; k0 < k; k0 += matmulBlock {
			kMax := min(k0+matmulBlock, k)
			for i := i0; i < iMax; i++ {
				ar := a.Data[i*k : (i+1)*k]
				cr := c.Data[i*n : (i+1)*n]
				for kk := k0; kk < kMax; kk++ {
					av := ar[kk]
					if av == 0 {
						continue
					}
					br := b.Data[kk*n : (kk+1)*n]
					for j := range br {
						cr[j] += av * br[j]
					}
				}
			}
		}
	}
	return c, nil
}

// MatMulTransposed computes C = A×Bᵀ for A (m×k) and B (n×k). Weight
// matrices are stored row-major per output channel, so this is the natural
// layout for linear layers and attention scores.
func MatMulTransposed(a, b *Tensor) (*Tensor, error) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		return nil, fmt.Errorf("tensor: MatMulTransposed requires 2-D operands, got %v and %v", a.Shape, b.Shape)
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: MatMulTransposed inner dimensions %d and %d differ", k, k2)
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		ar := a.Data[i*k : (i+1)*k]
		cr := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			br := b.Data[j*k : (j+1)*k]
			var sum float32
			for kk := 0; kk < k; kk++ {
				sum += ar[kk] * br[kk]
			}
			cr[j] = sum
		}
	}
	return c, nil
}

// Add adds b element-wise into a (in place) and returns a.
func Add(a, b *Tensor) (*Tensor, error) {
	if len(a.Data) != len(b.Data) {
		return nil, fmt.Errorf("tensor: Add size mismatch %d vs %d", len(a.Data), len(b.Data))
	}
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
	return a, nil
}

// Mul multiplies b element-wise into a (in place) and returns a.
func Mul(a, b *Tensor) (*Tensor, error) {
	if len(a.Data) != len(b.Data) {
		return nil, fmt.Errorf("tensor: Mul size mismatch %d vs %d", len(a.Data), len(b.Data))
	}
	for i := range a.Data {
		a.Data[i] *= b.Data[i]
	}
	return a, nil
}

// Scale multiplies every element by s in place and returns t.
func Scale(t *Tensor, s float32) *Tensor {
	for i := range t.Data {
		t.Data[i] *= s
	}
	return t
}

// SoftmaxRows applies a numerically-stable softmax to each row of a 2-D
// tensor in place.
func SoftmaxRows(t *Tensor) {
	rows, cols := t.Shape[0], t.Shape[1]
	for r := 0; r < rows; r++ {
		row := t.Data[r*cols : (r+1)*cols]
		SoftmaxInPlace(row)
	}
}

// SoftmaxInPlace applies a numerically-stable softmax to a vector in place.
func SoftmaxInPlace(row []float32) {
	if len(row) == 0 {
		return
	}
	maxV := row[0]
	for _, v := range row[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range row {
		e := float32(math.Exp(float64(v - maxV)))
		row[i] = e
		sum += float64(e)
	}
	inv := float32(1 / sum)
	for i := range row {
		row[i] *= inv
	}
}

// RMSNorm normalizes each row of x by its root-mean-square and multiplies by
// the gain vector, as Llama's layer norms do: y = x / rms(x) * g.
func RMSNorm(x *Tensor, gain []float32, eps float32) error {
	cols := x.Shape[len(x.Shape)-1]
	if len(gain) != cols {
		return fmt.Errorf("tensor: RMSNorm gain length %d != %d", len(gain), cols)
	}
	rows := len(x.Data) / cols
	for r := 0; r < rows; r++ {
		row := x.Data[r*cols : (r+1)*cols]
		var ss float64
		for _, v := range row {
			ss += float64(v) * float64(v)
		}
		inv := float32(1 / math.Sqrt(ss/float64(cols)+float64(eps)))
		for i := range row {
			row[i] = row[i] * inv * gain[i]
		}
	}
	return nil
}

// SiLU applies x*sigmoid(x) element-wise in place (Llama's MLP activation).
func SiLU(t *Tensor) {
	for i, v := range t.Data {
		t.Data[i] = v * sigmoid(v)
	}
}

func sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// RoPE applies rotary position embeddings in place to a (tokens × dim)
// tensor where each token sits at positions[i] and dim is even. theta is the
// base frequency (10000 for Llama2).
func RoPE(x *Tensor, positions []int, theta float64) error {
	if len(x.Shape) != 2 {
		return fmt.Errorf("tensor: RoPE requires 2-D input, got %v", x.Shape)
	}
	tokens, dim := x.Shape[0], x.Shape[1]
	if dim%2 != 0 {
		return fmt.Errorf("tensor: RoPE dimension %d must be even", dim)
	}
	if len(positions) != tokens {
		return fmt.Errorf("tensor: RoPE needs %d positions, got %d", tokens, len(positions))
	}
	half := dim / 2
	for t := 0; t < tokens; t++ {
		row := x.Data[t*dim : (t+1)*dim]
		pos := float64(positions[t])
		for i := 0; i < half; i++ {
			freq := math.Pow(theta, -2*float64(i)/float64(dim))
			angle := pos * freq
			sin, cos := math.Sincos(angle)
			a, b := row[2*i], row[2*i+1]
			row[2*i] = a*float32(cos) - b*float32(sin)
			row[2*i+1] = a*float32(sin) + b*float32(cos)
		}
	}
	return nil
}

// ArgMax returns the index of the largest element (first on ties).
func ArgMax(v []float32) int {
	best, bi := float32(math.Inf(-1)), -1
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// TopK returns the indices of the k largest elements in descending order.
// It is O(n·k), fine for the beam widths used here.
func TopK(v []float32, k int) []int {
	if k > len(v) {
		k = len(v)
	}
	out := make([]int, 0, k)
	used := make([]bool, len(v))
	for n := 0; n < k; n++ {
		best, bi := float32(math.Inf(-1)), -1
		for i, x := range v {
			if !used[i] && x > best {
				best, bi = x, i
			}
		}
		if bi < 0 {
			break
		}
		used[bi] = true
		out = append(out, bi)
	}
	return out
}

// Dot returns the dot product of two equal-length vectors.
func Dot(a, b []float32) float32 {
	var sum float32
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// CosineSimilarity returns a·b / (|a||b|), or 0 when either norm is zero.
func CosineSimilarity(a, b []float32) float32 {
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return float32(dot / math.Sqrt(na*nb))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
