package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += a.At(i, kk) * b.At(kk, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.Float32()*2 - 1
	}
	return t
}

func almostEqual(a, b, tol float32) bool {
	return math.Abs(float64(a-b)) <= float64(tol)
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {64, 64, 64}, {65, 130, 33}, {128, 17, 96}} {
		a := randTensor(rng, dims[0], dims[1])
		b := randTensor(rng, dims[1], dims[2])
		got, err := MatMul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveMatMul(a, b)
		for i := range got.Data {
			if !almostEqual(got.Data[i], want.Data[i], 1e-4) {
				t.Fatalf("dims %v: C[%d] = %g, want %g", dims, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMatMulTransposedMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randTensor(rng, 13, 21)
	b := randTensor(rng, 21, 34) // B as k×n
	want, _ := MatMul(a, b)
	// Build Bᵀ (n×k) and use MatMulTransposed.
	bt := New(34, 21)
	for i := 0; i < 21; i++ {
		for j := 0; j < 34; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	got, err := MatMulTransposed(a, bt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Data {
		if !almostEqual(got.Data[i], want.Data[i], 1e-4) {
			t.Fatalf("C[%d] = %g, want %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	a, b := New(2, 3), New(4, 5)
	if _, err := MatMul(a, b); err == nil {
		t.Error("MatMul with mismatched inner dims succeeded")
	}
	if _, err := MatMulTransposed(a, b); err == nil {
		t.Error("MatMulTransposed with mismatched inner dims succeeded")
	}
	if _, err := MatMul(New(2), New(2, 2)); err == nil {
		t.Error("MatMul with 1-D operand succeeded")
	}
}

func TestFromSlice(t *testing.T) {
	if _, err := FromSlice([]float32{1, 2, 3}, 2, 2); err == nil {
		t.Error("FromSlice with wrong length succeeded")
	}
	tt, err := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tt.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %g, want 3", tt.At(1, 0))
	}
}

func TestSoftmaxProperties(t *testing.T) {
	if err := quick.Check(func(vals []float32) bool {
		row := make([]float32, 0, len(vals))
		for _, v := range vals {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				continue
			}
			// Keep values in a sane range; softmax saturates beyond.
			if v > 50 {
				v = 50
			} else if v < -50 {
				v = -50
			}
			row = append(row, v)
		}
		if len(row) == 0 {
			return true
		}
		out := append([]float32(nil), row...)
		SoftmaxInPlace(out)
		var sum float64
		for _, v := range out {
			if v < 0 || v > 1 {
				return false
			}
			sum += float64(v)
		}
		return math.Abs(sum-1) < 1e-4
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	b := []float32{101, 102, 103, 104}
	SoftmaxInPlace(a)
	SoftmaxInPlace(b)
	for i := range a {
		if !almostEqual(a[i], b[i], 1e-6) {
			t.Errorf("shift invariance violated at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := New(2, 3)
	copy(m.Data, []float32{0, 0, 0, 1, 2, 3})
	SoftmaxRows(m)
	for j := 0; j < 3; j++ {
		if !almostEqual(m.At(0, j), 1.0/3, 1e-6) {
			t.Errorf("uniform row softmax[%d] = %g", j, m.At(0, j))
		}
	}
	if m.At(1, 2) <= m.At(1, 1) || m.At(1, 1) <= m.At(1, 0) {
		t.Error("softmax not monotone in logits")
	}
}

func TestRMSNorm(t *testing.T) {
	x := New(1, 4)
	copy(x.Data, []float32{2, 2, 2, 2})
	gain := []float32{1, 1, 1, 1}
	if err := RMSNorm(x, gain, 0); err != nil {
		t.Fatal(err)
	}
	// rms of (2,2,2,2) is 2, so output should be all ones.
	for i, v := range x.Data {
		if !almostEqual(v, 1, 1e-5) {
			t.Errorf("RMSNorm[%d] = %g, want 1", i, v)
		}
	}
	if err := RMSNorm(x, []float32{1}, 0); err == nil {
		t.Error("RMSNorm with wrong gain length succeeded")
	}
}

func TestRMSNormUnitRMS(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randTensor(rng, 4, 32)
	gain := make([]float32, 32)
	for i := range gain {
		gain[i] = 1
	}
	if err := RMSNorm(x, gain, 0); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		var ss float64
		for _, v := range x.Row(r) {
			ss += float64(v) * float64(v)
		}
		rms := math.Sqrt(ss / 32)
		if math.Abs(rms-1) > 1e-4 {
			t.Errorf("row %d rms = %g, want 1", r, rms)
		}
	}
}

func TestSiLU(t *testing.T) {
	x := New(1, 3)
	copy(x.Data, []float32{0, 10, -10})
	SiLU(x)
	if x.Data[0] != 0 {
		t.Errorf("SiLU(0) = %g", x.Data[0])
	}
	if !almostEqual(x.Data[1], 10, 1e-3) {
		t.Errorf("SiLU(10) = %g, want ~10", x.Data[1])
	}
	if !almostEqual(x.Data[2], 0, 1e-3) {
		t.Errorf("SiLU(-10) = %g, want ~0", x.Data[2])
	}
}

func TestRoPEPreservesNorm(t *testing.T) {
	// Rotations preserve the norm of each pair.
	rng := rand.New(rand.NewSource(4))
	x := randTensor(rng, 3, 8)
	orig := x.Clone()
	if err := RoPE(x, []int{0, 5, 100}, 10000); err != nil {
		t.Fatal(err)
	}
	for tok := 0; tok < 3; tok++ {
		for i := 0; i < 4; i++ {
			a0, b0 := orig.At(tok, 2*i), orig.At(tok, 2*i+1)
			a1, b1 := x.At(tok, 2*i), x.At(tok, 2*i+1)
			n0 := math.Hypot(float64(a0), float64(b0))
			n1 := math.Hypot(float64(a1), float64(b1))
			if math.Abs(n0-n1) > 1e-4 {
				t.Errorf("tok %d pair %d: norm %g -> %g", tok, i, n0, n1)
			}
		}
	}
}

func TestRoPEPositionZeroIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randTensor(rng, 1, 16)
	orig := x.Clone()
	if err := RoPE(x, []int{0}, 10000); err != nil {
		t.Fatal(err)
	}
	for i := range x.Data {
		if !almostEqual(x.Data[i], orig.Data[i], 1e-6) {
			t.Errorf("RoPE at position 0 changed element %d", i)
		}
	}
}

func TestRoPEErrors(t *testing.T) {
	if err := RoPE(New(2, 3), []int{0, 1}, 10000); err == nil {
		t.Error("RoPE with odd dim succeeded")
	}
	if err := RoPE(New(2, 4), []int{0}, 10000); err == nil {
		t.Error("RoPE with wrong positions length succeeded")
	}
	if err := RoPE(New(2), []int{0, 1}, 10000); err == nil {
		t.Error("RoPE with 1-D input succeeded")
	}
}

func TestArgMaxTopK(t *testing.T) {
	v := []float32{3, 9, 1, 9, 5}
	if got := ArgMax(v); got != 1 {
		t.Errorf("ArgMax = %d, want 1 (first tie)", got)
	}
	top := TopK(v, 3)
	want := []int{1, 3, 4}
	for i := range want {
		if top[i] != want[i] {
			t.Errorf("TopK[%d] = %d, want %d", i, top[i], want[i])
		}
	}
	if got := TopK(v, 99); len(got) != len(v) {
		t.Errorf("TopK with k>len returned %d items", len(got))
	}
}

func TestAddMulScale(t *testing.T) {
	a := New(2, 2)
	b := New(2, 2)
	copy(a.Data, []float32{1, 2, 3, 4})
	copy(b.Data, []float32{10, 20, 30, 40})
	if _, err := Add(a, b); err != nil {
		t.Fatal(err)
	}
	if a.Data[3] != 44 {
		t.Errorf("Add: a[3] = %g", a.Data[3])
	}
	if _, err := Mul(a, b); err != nil {
		t.Fatal(err)
	}
	if a.Data[0] != 110 {
		t.Errorf("Mul: a[0] = %g", a.Data[0])
	}
	Scale(a, 0.5)
	if a.Data[0] != 55 {
		t.Errorf("Scale: a[0] = %g", a.Data[0])
	}
	if _, err := Add(a, New(1)); err == nil {
		t.Error("Add with size mismatch succeeded")
	}
	if _, err := Mul(a, New(1)); err == nil {
		t.Error("Mul with size mismatch succeeded")
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if got := CosineSimilarity(a, a); !almostEqual(got, 1, 1e-6) {
		t.Errorf("cos(a,a) = %g", got)
	}
	if got := CosineSimilarity(a, b); !almostEqual(got, 0, 1e-6) {
		t.Errorf("cos(a,b) = %g", got)
	}
	if got := CosineSimilarity(a, []float32{0, 0}); got != 0 {
		t.Errorf("cos with zero vector = %g", got)
	}
	if got := Dot(a, []float32{3, 7}); got != 3 {
		t.Errorf("Dot = %g", got)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randTensor(rng, 128, 128)
	y := randTensor(rng, 128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MatMul(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMulTransposed128(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x := randTensor(rng, 128, 128)
	y := randTensor(rng, 128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MatMulTransposed(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
