// Package dtype implements the numeric datatypes used for confidential LLM
// inference: IEEE float32, bfloat16 (truncated float32, AMX-native), and
// int8 with absmax quantization. All conversions are implemented in software
// so the inference engine exercises the same datatype paths the paper's
// workloads do (bf16 and int8 on AMX, f32 on AVX).
package dtype

import (
	"fmt"
	"math"
)

// Kind identifies an inference datatype.
type Kind uint8

const (
	// F32 is IEEE-754 binary32.
	F32 Kind = iota
	// BF16 is bfloat16: the top 16 bits of a float32.
	BF16
	// I8 is signed 8-bit integer with a per-tensor or per-channel scale.
	I8
)

// String returns the conventional lowercase name used in the paper's plots.
func (k Kind) String() string {
	switch k {
	case F32:
		return "f32"
	case BF16:
		return "bf16"
	case I8:
		return "int8"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Size returns the storage size of one element in bytes.
func (k Kind) Size() int {
	switch k {
	case F32:
		return 4
	case BF16:
		return 2
	case I8:
		return 1
	default:
		return 0
	}
}

// Parse converts a name such as "bf16" into a Kind.
func Parse(s string) (Kind, error) {
	switch s {
	case "f32", "float32", "fp32":
		return F32, nil
	case "bf16", "bfloat16":
		return BF16, nil
	case "int8", "i8":
		return I8, nil
	}
	return F32, fmt.Errorf("dtype: unknown datatype %q", s)
}

// BFloat16 is a bfloat16 value stored as its 16-bit pattern.
type BFloat16 uint16

// ToBF16 converts a float32 to bfloat16 with round-to-nearest-even,
// matching the AMX/AVX512-BF16 hardware conversion.
func ToBF16(f float32) BFloat16 {
	bits := math.Float32bits(f)
	if f != f { // NaN: preserve quiet bit, avoid rounding into infinity.
		return BFloat16((bits >> 16) | 0x0040)
	}
	// Round to nearest even on the truncated 16 low bits.
	rounding := uint32(0x7FFF) + ((bits >> 16) & 1)
	bits += rounding
	return BFloat16(bits >> 16)
}

// Float32 converts back to float32 (exact: bf16 values are a subset of f32).
func (b BFloat16) Float32() float32 {
	return math.Float32frombits(uint32(b) << 16)
}

// RoundBF16 rounds a float32 through bfloat16 precision and back. It is the
// element transform applied by a bf16 compute pipeline.
func RoundBF16(f float32) float32 { return ToBF16(f).Float32() }

// QuantizeAbsmax quantizes src into int8 using symmetric absmax scaling:
// scale = max|x| / 127. It returns the quantized values and the scale.
// A zero vector quantizes to zeros with scale 1 to keep dequantization exact.
func QuantizeAbsmax(src []float32) ([]int8, float32) {
	maxAbs := float32(0)
	for _, v := range src {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return make([]int8, len(src)), 1
	}
	scale := maxAbs / 127
	out := make([]int8, len(src))
	inv := 1 / scale
	for i, v := range src {
		q := math.RoundToEven(float64(v * inv))
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		out[i] = int8(q)
	}
	return out, scale
}

// Dequantize expands int8 values back to float32 with the given scale.
func Dequantize(q []int8, scale float32) []float32 {
	out := make([]float32, len(q))
	for i, v := range q {
		out[i] = float32(v) * scale
	}
	return out
}

// QuantizePerChannel quantizes a row-major matrix of shape rows×cols with an
// independent absmax scale per row (per output channel), the scheme the
// paper's int8 models use. Returned scales has length rows.
func QuantizePerChannel(src []float32, rows, cols int) ([]int8, []float32, error) {
	if rows*cols != len(src) {
		return nil, nil, fmt.Errorf("dtype: shape %dx%d does not match %d values", rows, cols, len(src))
	}
	out := make([]int8, len(src))
	scales := make([]float32, rows)
	for r := 0; r < rows; r++ {
		row := src[r*cols : (r+1)*cols]
		q, s := QuantizeAbsmax(row)
		copy(out[r*cols:(r+1)*cols], q)
		scales[r] = s
	}
	return out, scales, nil
}

// DequantizePerChannel reverses QuantizePerChannel.
func DequantizePerChannel(q []int8, scales []float32, rows, cols int) ([]float32, error) {
	if rows*cols != len(q) || len(scales) != rows {
		return nil, fmt.Errorf("dtype: shape %dx%d does not match %d values / %d scales", rows, cols, len(q), len(scales))
	}
	out := make([]float32, len(q))
	for r := 0; r < rows; r++ {
		s := scales[r]
		for c := 0; c < cols; c++ {
			out[r*cols+c] = float32(q[r*cols+c]) * s
		}
	}
	return out, nil
}

// MaxQuantError returns the worst-case absolute error bound of absmax int8
// quantization for inputs with the given maximum magnitude: scale/2.
func MaxQuantError(maxAbs float32) float32 {
	if maxAbs == 0 {
		return 0
	}
	return maxAbs / 127 / 2
}
