package dtype

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{F32: "f32", BF16: "bf16", I8: "int8", Kind(9): "Kind(9)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindSize(t *testing.T) {
	cases := map[Kind]int{F32: 4, BF16: 2, I8: 1, Kind(9): 0}
	for k, want := range cases {
		if got := k.Size(); got != want {
			t.Errorf("%v.Size() = %d, want %d", k, got, want)
		}
	}
}

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
	}{
		{"f32", F32}, {"float32", F32}, {"fp32", F32},
		{"bf16", BF16}, {"bfloat16", BF16},
		{"int8", I8}, {"i8", I8},
	} {
		got, err := Parse(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("Parse(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := Parse("fp64"); err == nil {
		t.Error("Parse(fp64) succeeded, want error")
	}
}

func TestBF16ExactValues(t *testing.T) {
	// Values exactly representable in bf16 must round-trip unchanged.
	for _, f := range []float32{0, 1, -1, 0.5, 2, -3.5, 256, 1 << 30, -1.0 / (1 << 30)} {
		if got := RoundBF16(f); got != f {
			t.Errorf("RoundBF16(%g) = %g, want exact", f, got)
		}
	}
}

func TestBF16SpecialValues(t *testing.T) {
	inf := float32(math.Inf(1))
	if got := RoundBF16(inf); got != inf {
		t.Errorf("RoundBF16(+Inf) = %g", got)
	}
	if got := RoundBF16(-inf); got != -inf {
		t.Errorf("RoundBF16(-Inf) = %g", got)
	}
	nan := float32(math.NaN())
	if got := RoundBF16(nan); got == got {
		t.Errorf("RoundBF16(NaN) = %g, want NaN", got)
	}
}

func TestBF16RelativeError(t *testing.T) {
	// bf16 has 8 significand bits: relative error <= 2^-8 after rounding.
	if err := quick.Check(func(f float32) bool {
		if math.IsNaN(float64(f)) || math.IsInf(float64(f), 0) {
			return true
		}
		if math.Abs(float64(f)) < 1e-30 || math.Abs(float64(f)) > 1e30 {
			return true // skip subnormal/overflow edge ranges
		}
		r := RoundBF16(f)
		rel := math.Abs(float64(r-f)) / math.Abs(float64(f))
		return rel <= 1.0/256
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestBF16RoundNearestEven(t *testing.T) {
	// 1 + 2^-9 is exactly halfway between bf16(1.0) and bf16(1+2^-8):
	// round-to-nearest-even picks the even pattern, 1.0.
	f := float32(1.0 + 1.0/512)
	if got := RoundBF16(f); got != 1.0 {
		t.Errorf("RoundBF16(1+2^-9) = %g, want 1 (ties-to-even)", got)
	}
	// 1 + 3*2^-9 is halfway as well but the even neighbour is 1+2^-7... check
	// it rounds up to 1+2^-7 (pattern with LSB 0).
	f = float32(1.0 + 3.0/512)
	want := float32(1.0 + 1.0/128)
	if got := RoundBF16(f); got != want {
		t.Errorf("RoundBF16(1+3*2^-9) = %g, want %g", got, want)
	}
}

func TestQuantizeAbsmaxBasic(t *testing.T) {
	src := []float32{-1, -0.5, 0, 0.5, 1}
	q, scale := QuantizeAbsmax(src)
	if scale != float32(1.0/127) {
		t.Fatalf("scale = %g, want 1/127", scale)
	}
	want := []int8{-127, -64, 0, 64, 127}
	for i := range q {
		if q[i] != want[i] {
			t.Errorf("q[%d] = %d, want %d", i, q[i], want[i])
		}
	}
}

func TestQuantizeZeroVector(t *testing.T) {
	q, scale := QuantizeAbsmax(make([]float32, 4))
	if scale != 1 {
		t.Errorf("zero-vector scale = %g, want 1", scale)
	}
	for i, v := range q {
		if v != 0 {
			t.Errorf("q[%d] = %d, want 0", i, v)
		}
	}
}

func TestQuantRoundTripErrorBound(t *testing.T) {
	if err := quick.Check(func(vals []float32) bool {
		clean := vals[:0:0]
		maxAbs := float32(0)
		for _, v := range vals {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) || math.Abs(float64(v)) > 1e30 {
				continue
			}
			clean = append(clean, v)
			if a := float32(math.Abs(float64(v))); a > maxAbs {
				maxAbs = a
			}
		}
		q, scale := QuantizeAbsmax(clean)
		back := Dequantize(q, scale)
		// Quantization error is at most scale/2 (+ float rounding slack).
		bound := float64(MaxQuantError(maxAbs))*1.0001 + 1e-12
		for i := range clean {
			if math.Abs(float64(back[i]-clean[i])) > bound {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPerChannelShapes(t *testing.T) {
	src := []float32{1, 2, 3, 100, 200, 300}
	q, scales, err := QuantizePerChannel(src, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(scales) != 2 {
		t.Fatalf("len(scales) = %d, want 2", len(scales))
	}
	// Per-channel: both rows should use their own scale so both reach 127.
	if q[2] != 127 || q[5] != 127 {
		t.Errorf("row maxima = %d, %d; want 127, 127", q[2], q[5])
	}
	back, err := DequantizePerChannel(q, scales, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		rel := math.Abs(float64(back[i]-src[i])) / math.Abs(float64(src[i]))
		if rel > 0.01 {
			t.Errorf("per-channel round trip [%d]: %g vs %g", i, back[i], src[i])
		}
	}
}

func TestPerChannelShapeErrors(t *testing.T) {
	if _, _, err := QuantizePerChannel([]float32{1, 2, 3}, 2, 2); err == nil {
		t.Error("QuantizePerChannel with bad shape succeeded")
	}
	if _, err := DequantizePerChannel([]int8{1, 2}, []float32{1}, 2, 2); err == nil {
		t.Error("DequantizePerChannel with bad shape succeeded")
	}
}

func TestPerChannelBeatsPerTensor(t *testing.T) {
	// Rows with very different magnitudes: per-channel error must be smaller.
	src := []float32{0.001, 0.002, 0.003, 100, 200, 300}
	qc, sc, _ := QuantizePerChannel(src, 2, 3)
	backC, _ := DequantizePerChannel(qc, sc, 2, 3)
	qt, st := QuantizeAbsmax(src)
	backT := Dequantize(qt, st)
	var errC, errT float64
	for i := range src {
		errC += math.Abs(float64(backC[i] - src[i]))
		errT += math.Abs(float64(backT[i] - src[i]))
	}
	if errC >= errT {
		t.Errorf("per-channel error %g >= per-tensor %g", errC, errT)
	}
}

func BenchmarkToBF16(b *testing.B) {
	vals := make([]float32, 4096)
	for i := range vals {
		vals[i] = float32(i)*0.37 - 700
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, v := range vals {
			_ = ToBF16(v)
		}
	}
}

func BenchmarkQuantizeAbsmax(b *testing.B) {
	vals := make([]float32, 4096)
	for i := range vals {
		vals[i] = float32(i)*0.37 - 700
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		QuantizeAbsmax(vals)
	}
}
