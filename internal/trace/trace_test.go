package trace

import (
	"math"
	"testing"
	"testing/quick"

	"cllm/internal/dtype"
	"cllm/internal/model"
)

func wl(t *testing.T, name string, kind dtype.Kind, batch, beam, in, out int) Workload {
	t.Helper()
	cfg, err := model.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return Workload{Model: cfg, Kind: kind, Batch: batch, Beam: beam, InputLen: in, OutputLen: out}
}

func TestValidate(t *testing.T) {
	good := wl(t, "llama2-7b", dtype.BF16, 1, 1, 1024, 128)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Workload{
		{Model: good.Model, Kind: dtype.BF16, Batch: 0, Beam: 1, InputLen: 8, OutputLen: 8},
		{Model: good.Model, Kind: dtype.BF16, Batch: 1, Beam: 0, InputLen: 8, OutputLen: 8},
		{Model: good.Model, Kind: dtype.BF16, Batch: 1, Beam: 1, InputLen: 0, OutputLen: 8},
		{Model: good.Model, Kind: dtype.BF16, Batch: 1, Beam: 1, InputLen: 4000, OutputLen: 200},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("bad workload %d validated", i)
		}
	}
}

func TestDecodeFlopsApproxTwiceParams(t *testing.T) {
	// A decode step for one token must cost ≈ 2×params FLOPs (the standard
	// transformer estimate), within ~15% (attention span and head add a bit).
	w := wl(t, "llama2-7b", dtype.BF16, 1, 1, 128, 8)
	st, err := DecodeStep(w, 128)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * float64(w.Model.ParamCount())
	got := st.TotalFLOPs()
	if got < want*0.85 || got > want*1.3 {
		t.Errorf("decode FLOPs = %.3g, want ≈ %.3g", got, want)
	}
}

func TestDecodeBytesDominatedByWeights(t *testing.T) {
	// Small-batch decode is memory-bound on weights: weight traffic must be
	// > 80% of all bytes for batch 1, short context.
	w := wl(t, "llama2-7b", dtype.BF16, 1, 1, 128, 8)
	st, _ := DecodeStep(w, 128)
	var weights float64
	for _, o := range st.Ops {
		weights += o.WeightBytes
	}
	if frac := weights / st.TotalBytes(); frac < 0.8 {
		t.Errorf("weight fraction = %.2f, want > 0.8", frac)
	}
	// And roughly equal the model footprint at 2 bytes/weight.
	foot := WeightFootprint(w)
	if weights < foot*0.9 || weights > foot*1.1 {
		t.Errorf("weights traffic %.3g vs footprint %.3g", weights, foot)
	}
}

func TestKVTrafficGrowsWithContext(t *testing.T) {
	w := wl(t, "llama2-7b", dtype.BF16, 4, 1, 1024, 128)
	short, _ := DecodeStep(w, 64)
	long, _ := DecodeStep(w, 2048)
	kv := func(st StepTrace) float64 {
		var s float64
		for _, o := range st.Ops {
			s += o.KVBytes
		}
		return s
	}
	if kv(long) <= kv(short)*16 {
		t.Errorf("KV bytes grew only %0.1fx for 32x context", kv(long)/kv(short))
	}
}

func TestInt8HalvesWeightTraffic(t *testing.T) {
	bf := wl(t, "llama2-13b", dtype.BF16, 1, 1, 128, 8)
	i8 := wl(t, "llama2-13b", dtype.I8, 1, 1, 128, 8)
	sb, _ := DecodeStep(bf, 128)
	si, _ := DecodeStep(i8, 128)
	wsum := func(st StepTrace) float64 {
		var s float64
		for _, o := range st.Ops {
			s += o.WeightBytes
		}
		return s
	}
	ratio := wsum(sb) / wsum(si)
	if math.Abs(ratio-2) > 0.01 {
		t.Errorf("bf16/int8 weight traffic ratio = %.3f, want 2", ratio)
	}
}

func TestPrefillQuadraticAttention(t *testing.T) {
	// Prefill attention FLOPs grow ~quadratically with input length.
	attnFlops := func(in int) float64 {
		w := wl(t, "llama2-7b", dtype.BF16, 1, 1, in, 8)
		st, err := PrefillStep(w)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, o := range st.Ops {
			if o.Kind == OpSelfAttn {
				s += o.FLOPs
			}
		}
		return s
	}
	f512, f1024, f2048 := attnFlops(512), attnFlops(1024), attnFlops(2048)
	// Projections are linear; the score/AV part is quadratic, so doubling
	// the input must grow FLOPs by more than 2x, and the growth ratio must
	// itself increase with length (positive curvature).
	r1 := f1024 / f512
	r2 := f2048 / f1024
	if r1 <= 2.02 {
		t.Errorf("prefill attention scaling 512→1024 = %.3fx, want > 2.02x", r1)
	}
	if r2 <= r1 {
		t.Errorf("attention growth not convex: %.3f then %.3f", r1, r2)
	}
}

func TestBeamScalesComputeNotTokens(t *testing.T) {
	w1 := wl(t, "llama2-7b", dtype.BF16, 2, 1, 128, 8)
	w4 := wl(t, "llama2-7b", dtype.BF16, 2, 4, 128, 8)
	s1, _ := DecodeStep(w1, 128)
	s4, _ := DecodeStep(w4, 128)
	if s1.NewTokens != s4.NewTokens {
		t.Errorf("beam changed token accounting: %d vs %d", s1.NewTokens, s4.NewTokens)
	}
	if s4.TotalFLOPs() < 3.5*s1.TotalFLOPs() {
		t.Errorf("beam 4 FLOPs only %.2fx of beam 1", s4.TotalFLOPs()/s1.TotalFLOPs())
	}
}

func TestGenerationTraceSteps(t *testing.T) {
	w := wl(t, "llama2-7b", dtype.BF16, 2, 1, 64, 16)
	steps, err := GenerationTrace(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 17 {
		t.Fatalf("steps = %d, want 17", len(steps))
	}
	if steps[0].Phase != Prefill {
		t.Error("first step not prefill")
	}
	if steps[0].NewTokens != 2*64 {
		t.Errorf("prefill tokens = %d", steps[0].NewTokens)
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].Phase != Decode || steps[i].NewTokens != 2 {
			t.Fatalf("step %d: phase %v tokens %d", i, steps[i].Phase, steps[i].NewTokens)
		}
	}
	// Later decode steps cost strictly more KV traffic than earlier ones.
	if steps[16].TotalBytes() <= steps[1].TotalBytes() {
		t.Error("decode cost did not grow with context")
	}
}

func TestOpOrderingMatchesPaperBlock(t *testing.T) {
	w := wl(t, "llama2-7b", dtype.BF16, 1, 1, 128, 8)
	st, _ := DecodeStep(w, 128)
	wantBlock := []OpKind{OpInputNorm, OpSelfAttn, OpMHALinearAdd, OpPostNorm, OpLinearSiluMul, OpMLPLinearAdd}
	if st.Ops[0].Kind != OpEmbedding {
		t.Fatal("trace does not start with embedding")
	}
	for l := 0; l < w.Model.Layers; l++ {
		for j, want := range wantBlock {
			got := st.Ops[1+l*len(wantBlock)+j]
			if got.Kind != want || got.Layer != l {
				t.Fatalf("layer %d op %d = %v/%d, want %v/%d", l, j, got.Kind, got.Layer, want, l)
			}
		}
	}
	if last := st.Ops[len(st.Ops)-1]; last.Kind != OpFinalNormHead {
		t.Fatal("trace does not end with final norm/head")
	}
}

func TestNormsAreMemoryBound(t *testing.T) {
	w := wl(t, "llama2-7b", dtype.BF16, 4, 1, 1024, 128)
	st, _ := DecodeStep(w, 1024)
	for _, o := range st.Ops {
		switch o.Kind {
		case OpInputNorm, OpPostNorm:
			if ai := o.ArithmeticIntensity(); ai > 4 {
				t.Errorf("%v arithmetic intensity %.1f, expected memory-bound (<4)", o.Kind, ai)
			}
		case OpLinearSiluMul:
			if ai := o.ArithmeticIntensity(); ai < 1 {
				t.Errorf("%v arithmetic intensity %.2f unexpectedly low", o.Kind, ai)
			}
		}
	}
}

func TestBatchRaisesArithmeticIntensity(t *testing.T) {
	// The central mechanism behind Insight 9: batching raises FLOPs/byte.
	ai := func(batch int) float64 {
		w := wl(t, "llama2-7b", dtype.BF16, batch, 1, 128, 8)
		st, _ := DecodeStep(w, 128)
		return st.TotalFLOPs() / st.TotalBytes()
	}
	if !(ai(64) > ai(8) && ai(8) > ai(1)) {
		t.Errorf("AI not monotone in batch: %v %v %v", ai(1), ai(8), ai(64))
	}
}

func TestKVCacheBytesFormula(t *testing.T) {
	w := wl(t, "llama2-7b", dtype.BF16, 2, 2, 128, 8)
	// 4 rows × 100 ctx × 2 × 4096 × 2 bytes × 32 layers.
	want := 4.0 * 100 * 2 * 4096 * 2 * 32
	if got := KVCacheBytes(w, 100); got != want {
		t.Errorf("KVCacheBytes = %g, want %g", got, want)
	}
}

func TestDecodeStepCtxValidation(t *testing.T) {
	w := wl(t, "llama2-7b", dtype.BF16, 1, 1, 128, 8)
	if _, err := DecodeStep(w, 0); err == nil {
		t.Error("ctxLen 0 accepted")
	}
	if _, err := DecodeStep(w, 1<<20); err == nil {
		t.Error("huge ctxLen accepted")
	}
}

func TestTraceFlopsMonotoneInModelSize(t *testing.T) {
	names := []string{"llama2-7b", "llama2-13b", "llama2-70b"}
	var prev float64
	for _, n := range names {
		w := wl(t, n, dtype.BF16, 1, 1, 128, 8)
		st, _ := DecodeStep(w, 128)
		if st.TotalFLOPs() <= prev {
			t.Fatalf("FLOPs not monotone at %s", n)
		}
		prev = st.TotalFLOPs()
	}
}

func TestWorkloadPropertyFlopsScaleWithRows(t *testing.T) {
	cfg, _ := model.Lookup("llama2-7b")
	if err := quick.Check(func(b, beam uint8) bool {
		batch := int(b%16) + 1
		bm := int(beam%4) + 1
		w := Workload{Model: cfg, Kind: dtype.BF16, Batch: batch, Beam: bm, InputLen: 64, OutputLen: 8}
		st, err := DecodeStep(w, 64)
		if err != nil {
			return false
		}
		base := Workload{Model: cfg, Kind: dtype.BF16, Batch: 1, Beam: 1, InputLen: 64, OutputLen: 8}
		bst, err := DecodeStep(base, 64)
		if err != nil {
			return false
		}
		// FLOPs scale linearly with rows (weights traffic does not).
		wantRatio := float64(batch * bm)
		ratio := st.TotalFLOPs() / bst.TotalFLOPs()
		return math.Abs(ratio-wantRatio)/wantRatio < 0.05
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestOpKindString(t *testing.T) {
	if OpSelfAttn.String() != "self_attn" {
		t.Errorf("OpSelfAttn = %q", OpSelfAttn.String())
	}
	if OpKind(99).String() == "" {
		t.Error("unknown OpKind produced empty string")
	}
	if Prefill.String() != "prefill" || Decode.String() != "decode" {
		t.Error("phase names wrong")
	}
}
