// Package trace converts a model architecture and workload parameters
// (batch, beam, input/output lengths, datatype) into an operator-level
// workload description: FLOPs, weight/activation/KV-cache bytes and working
// sets per decoder-block layer. The operator names mirror the paper's
// per-block trace (Fig 7): input_layernorm, self_attn, mha_linear_add,
// post_attention_layernorm, linear_silu_mul, mlp_linear_add.
package trace

import (
	"fmt"

	"cllm/internal/dtype"
	"cllm/internal/model"
)

// Phase distinguishes prompt prefill from token-by-token decode.
type Phase int

const (
	// Prefill processes the whole prompt in one pass.
	Prefill Phase = iota
	// Decode generates one token per sequence per step.
	Decode
)

// String names the phase.
func (p Phase) String() string {
	if p == Prefill {
		return "prefill"
	}
	return "decode"
}

// OpKind identifies an operator class within a decoder block.
type OpKind int

// Operator kinds in block order, matching the paper's trace labels.
const (
	OpEmbedding OpKind = iota
	OpInputNorm
	OpSelfAttn
	OpMHALinearAdd
	OpPostNorm
	OpLinearSiluMul
	OpMLPLinearAdd
	OpFinalNormHead
)

var opNames = map[OpKind]string{
	OpEmbedding:     "embedding",
	OpInputNorm:     "input_layernorm",
	OpSelfAttn:      "self_attn",
	OpMHALinearAdd:  "mha_linear_add",
	OpPostNorm:      "post_attention_layernorm",
	OpLinearSiluMul: "linear_silu_mul",
	OpMLPLinearAdd:  "mlp_linear_add",
	OpFinalNormHead: "final_norm_head",
}

// String returns the paper's label for the operator.
func (k OpKind) String() string {
	if s, ok := opNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one operator instance with its resource demands.
type Op struct {
	Kind  OpKind
	Layer int // decoder layer index; -1 for embedding/head
	// FLOPs is the floating (or integer) operation count.
	FLOPs float64
	// WeightBytes is streamed model-weight traffic.
	WeightBytes float64
	// ActBytes is activation read+write traffic.
	ActBytes float64
	// KVBytes is KV-cache read+write traffic.
	KVBytes float64
	// WorkingSet is the bytes touched (for the TLB-reach model).
	WorkingSet float64
}

// Bytes returns total memory traffic of the op.
func (o Op) Bytes() float64 { return o.WeightBytes + o.ActBytes + o.KVBytes }

// ArithmeticIntensity returns FLOPs per byte moved.
func (o Op) ArithmeticIntensity() float64 {
	b := o.Bytes()
	if b == 0 {
		return 0
	}
	return o.FLOPs / b
}

// Workload describes an inference configuration to trace.
type Workload struct {
	Model model.Config
	Kind  dtype.Kind
	// Batch is the number of user sequences.
	Batch int
	// Beam is the beam width (1 = greedy). Compute scales with Batch×Beam
	// while user-visible tokens scale with Batch, as the paper counts them.
	Beam int
	// InputLen is the prompt length in tokens.
	InputLen int
	// OutputLen is the number of generated tokens.
	OutputLen int
}

// Validate reports obviously inconsistent workloads.
func (w Workload) Validate() error {
	if err := w.Model.Validate(); err != nil {
		return err
	}
	switch {
	case w.Batch <= 0:
		return fmt.Errorf("trace: batch %d must be positive", w.Batch)
	case w.Beam <= 0:
		return fmt.Errorf("trace: beam %d must be positive", w.Beam)
	case w.InputLen <= 0 || w.OutputLen <= 0:
		return fmt.Errorf("trace: lengths %d/%d must be positive", w.InputLen, w.OutputLen)
	case w.InputLen+w.OutputLen > w.Model.ContextLen:
		return fmt.Errorf("trace: %d+%d exceeds context %d", w.InputLen, w.OutputLen, w.Model.ContextLen)
	}
	return nil
}

// Rows returns the number of sequence rows computed per step.
func (w Workload) Rows() int { return w.Batch * w.Beam }

// elemSize returns the weight element size in bytes for the datatype.
func (w Workload) elemSize() float64 { return float64(w.Kind.Size()) }

// kvElemSize returns the KV-cache element size; the inference state follows
// the compute datatype (the paper notes int8's smaller inference state).
func (w Workload) kvElemSize() float64 { return float64(w.Kind.Size()) }

// actElemSize returns activation element size (f32 for f32, else bf16 —
// int8 pipelines keep activations in 16-bit between quantized GEMMs).
func (w Workload) actElemSize() float64 {
	if w.Kind == dtype.F32 {
		return 4
	}
	return 2
}

// StepTrace is the operator list of one inference step.
type StepTrace struct {
	Phase Phase
	// NewTokens is the number of user-visible tokens this step produces
	// (batch for decode) or consumes (batch×inputLen for prefill).
	NewTokens int
	// SharedBytes is the portion of the step's KV traffic that re-reads
	// pages shared across rows (prefix-cache sharing): it is real memory
	// bandwidth — each row's attention streams the shared prefix — but not
	// additional resident working set, so TLB-reach and enclave-paging
	// models must not count it twice. Serving schedulers set it from block
	// refcounts; single-request paths leave it zero.
	SharedBytes float64
	Ops         []Op
}

// TotalFLOPs sums FLOPs over all ops.
func (s StepTrace) TotalFLOPs() float64 {
	var t float64
	for _, o := range s.Ops {
		t += o.FLOPs
	}
	return t
}

// TotalBytes sums memory traffic over all ops.
func (s StepTrace) TotalBytes() float64 {
	var t float64
	for _, o := range s.Ops {
		t += o.Bytes()
	}
	return t
}

// DecodeStep builds the operator trace of one decode step with ctxLen tokens
// of visible history per sequence row.
func DecodeStep(w Workload, ctxLen int) (StepTrace, error) {
	return DecodeStepInto(w, ctxLen, nil)
}

// DecodeStepInto is DecodeStep reusing ops' backing array for the trace's
// operator list (ops may be nil). Hot paths that cost many step shapes in a
// loop (perf.StepCoster) use it to avoid reallocating the ~6×layers operator
// slice per step; the returned trace aliases ops, so the caller must not
// reuse the buffer while the trace is live.
func DecodeStepInto(w Workload, ctxLen int, ops []Op) (StepTrace, error) {
	if err := w.Validate(); err != nil {
		return StepTrace{}, err
	}
	if ctxLen <= 0 || ctxLen > w.Model.ContextLen {
		return StepTrace{}, fmt.Errorf("trace: ctxLen %d out of range", ctxLen)
	}
	return buildStepInto(w, Decode, 1, ctxLen, ops), nil
}

// PrefillStep builds the operator trace of the prompt pass.
func PrefillStep(w Workload) (StepTrace, error) {
	if err := w.Validate(); err != nil {
		return StepTrace{}, err
	}
	return buildStep(w, Prefill, w.InputLen, 0), nil
}

// PrefillChunkStep builds the operator trace of one chunked-prefill step:
// w.InputLen new prompt tokens per row computed on top of hist tokens whose
// KV entries already exist (earlier chunks, or blocks reused from a shared
// prefix cache). With hist == 0 it is exactly PrefillStep. Chunk tokens
// attend to the full cached history, so attention FLOPs and KV read traffic
// grow with hist while projection/MLP work scales only with the chunk —
// this is what makes late chunks of a long prompt more memory-bound than
// early ones, and what a prefix-cache hit avoids entirely.
func PrefillChunkStep(w Workload, hist int) (StepTrace, error) {
	return PrefillChunkStepInto(w, hist, nil)
}

// PrefillChunkStepInto is PrefillChunkStep reusing ops' backing array (see
// DecodeStepInto for the aliasing contract).
func PrefillChunkStepInto(w Workload, hist int, ops []Op) (StepTrace, error) {
	if err := w.Validate(); err != nil {
		return StepTrace{}, err
	}
	if hist < 0 || hist+w.InputLen > w.Model.ContextLen {
		return StepTrace{}, fmt.Errorf("trace: chunk history %d + chunk %d outside context %d",
			hist, w.InputLen, w.Model.ContextLen)
	}
	return buildStepInto(w, Prefill, w.InputLen, hist, ops), nil
}

// buildStep constructs the trace for processing `chunk` new tokens per row
// on top of `hist` cached tokens.
func buildStep(w Workload, phase Phase, chunk, hist int) StepTrace {
	return buildStepInto(w, phase, chunk, hist, nil)
}

// buildStepInto is buildStep appending into ops' backing array (ops may be
// nil). The operator count is fixed by the layer count, so the slice is
// sized exactly up front — the append chain below never reallocates.
func buildStepInto(w Workload, phase Phase, chunk, hist int, ops []Op) StepTrace {
	cfg := w.Model
	h := float64(cfg.HiddenDim)
	f := float64(cfg.FFDim)
	v := float64(cfg.VocabSize)
	kvd := float64(cfg.KVDim())
	rows := float64(w.Rows())
	n := rows * float64(chunk) // token-rows processed this step
	elem := w.elemSize()
	act := w.actElemSize()
	kvElem := w.kvElemSize()

	// Attention span: decode sees hist+1; prefill token i of a chunk sees
	// hist+i+1 — sum over the chunk gives chunk*hist + chunk*(chunk+1)/2 per
	// row (hist is 0 for a monolithic prompt pass).
	var attnSpan float64 // total (row, position) pairs attended
	if phase == Decode {
		attnSpan = rows * float64(hist+1)
	} else {
		attnSpan = rows * float64(chunk) * (float64(hist) + float64(chunk+1)/2)
	}

	if need := 2 + 6*cfg.Layers; cap(ops) < need {
		ops = make([]Op, 0, need)
	}
	st := StepTrace{Phase: phase, Ops: ops[:0]}
	if phase == Decode {
		st.NewTokens = w.Batch
	} else {
		st.NewTokens = w.Batch * chunk
	}

	st.Ops = append(st.Ops, Op{
		Kind: OpEmbedding, Layer: -1,
		FLOPs:      n * h,
		ActBytes:   n * h * (4 + act), // f32 table read + activation write
		WorkingSet: v * h * 4,
	})

	hd := float64(cfg.HeadDim())
	heads := float64(cfg.Heads)
	for l := 0; l < cfg.Layers; l++ {
		normWS := n*h*act*2 + h*4
		st.Ops = append(st.Ops, Op{
			Kind: OpInputNorm, Layer: l,
			FLOPs:      5 * n * h,
			ActBytes:   2*n*h*act + h*4,
			WorkingSet: normWS,
		})
		// Self-attention: QKV projections + RoPE + scores + AV.
		qkvW := (h*h + 2*h*kvd) * elem
		scoreFlops := 2 * attnSpan * heads * hd // QK^T
		avFlops := 2 * attnSpan * heads * hd    // probs × V
		// KV-cache DRAM traffic. Decode re-reads the whole history once per
		// step; prefill attention is tiled (flash-attention style), so its
		// K/V blocks stay cache-resident and DRAM sees each entry ~twice. A
		// chunked-prefill step additionally streams the cached history K/V
		// once (the chunk's queries attend to it tile by tile).
		var kvTraffic float64
		if phase == Decode {
			kvTraffic = attnSpan*2*kvd*kvElem + n*2*kvd*kvElem
		} else {
			kvTraffic = 3*n*kvd*kvElem + rows*float64(hist)*2*kvd*kvElem
		}
		st.Ops = append(st.Ops, Op{
			Kind: OpSelfAttn, Layer: l,
			FLOPs:       2*n*h*(h+2*kvd) + 6*n*h + scoreFlops + avFlops,
			WeightBytes: qkvW,
			ActBytes:    n * h * act * 4, // read input, write Q,K,V-sized activations
			KVBytes:     kvTraffic,
			WorkingSet:  qkvW + kvTraffic,
		})
		st.Ops = append(st.Ops, Op{
			Kind: OpMHALinearAdd, Layer: l,
			FLOPs:       2*n*h*h + n*h,
			WeightBytes: h * h * elem,
			ActBytes:    3 * n * h * act,
			WorkingSet:  h * h * elem,
		})
		st.Ops = append(st.Ops, Op{
			Kind: OpPostNorm, Layer: l,
			FLOPs:      5 * n * h,
			ActBytes:   2*n*h*act + h*4,
			WorkingSet: normWS,
		})
		st.Ops = append(st.Ops, Op{
			Kind: OpLinearSiluMul, Layer: l,
			FLOPs:       2*n*h*2*f + 6*n*f,
			WeightBytes: 2 * h * f * elem,
			ActBytes:    n*h*act + 3*n*f*act,
			WorkingSet:  2 * h * f * elem,
		})
		st.Ops = append(st.Ops, Op{
			Kind: OpMLPLinearAdd, Layer: l,
			FLOPs:       2*n*h*f + n*h,
			WeightBytes: h * f * elem,
			ActBytes:    n*f*act + 2*n*h*act,
			WorkingSet:  h * f * elem,
		})
	}

	// Final norm + LM head, evaluated on the last position of each row.
	headRows := rows
	st.Ops = append(st.Ops, Op{
		Kind: OpFinalNormHead, Layer: -1,
		FLOPs:       5*headRows*h + 2*headRows*h*v,
		WeightBytes: h * v * elem,
		ActBytes:    headRows * (h + v) * act,
		WorkingSet:  h * v * elem,
	})
	return st
}

// GenerationTrace returns the prefill step plus one decode step per output
// token, with the context growing as tokens are emitted.
func GenerationTrace(w Workload) ([]StepTrace, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	steps := make([]StepTrace, 0, w.OutputLen+1)
	pre, err := PrefillStep(w)
	if err != nil {
		return nil, err
	}
	steps = append(steps, pre)
	for i := 0; i < w.OutputLen; i++ {
		dec, err := DecodeStep(w, w.InputLen+i)
		if err != nil {
			return nil, err
		}
		steps = append(steps, dec)
	}
	return steps, nil
}

// KVSwapBytes returns the bytes one swap transfer of `tokens` KV-cache
// entries moves for a single sequence: every layer's K and V vectors for
// each token, at the inference-state element size. It is the payload of a
// swap-to-host preemption step — a bulk copy, not an operator trace: the
// transfer streams blocks sequentially, so it is costed against a copy
// bandwidth (perf.StepCoster.SwapTime), not the roofline.
func KVSwapBytes(w Workload, tokens int) float64 {
	if tokens <= 0 {
		return 0
	}
	return float64(tokens) * 2 * float64(w.Model.KVDim()) * w.kvElemSize() * float64(w.Model.Layers)
}

// KVCacheBytes returns the resident KV-cache size for the workload when all
// rows hold ctxLen tokens.
func KVCacheBytes(w Workload, ctxLen int) float64 {
	return float64(w.Rows()) * float64(ctxLen) * 2 * float64(w.Model.KVDim()) * w.kvElemSize() * float64(w.Model.Layers)
}

// WeightFootprint returns resident weight bytes at the workload's datatype.
func WeightFootprint(w Workload) float64 {
	return float64(w.Model.WeightBytes(w.Kind.Size()))
}
