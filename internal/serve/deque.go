package serve

// reqDeque is a ring-buffer deque of request states: the scheduler's wait
// queue. Arrivals push at the back, admission pops from the front, and
// preemption pushes the victim back at the front — all O(1). The previous
// slice-based queue paid an O(n) copy on every preemption
// (append([]*reqState{r}, queue...)) and leaked head capacity on every
// admission (queue = queue[1:]), both of which scale with backlog depth in
// exactly the overloaded runs the simulator exists to measure.
type reqDeque struct {
	buf  []*reqState
	head int
	n    int
}

// Len returns the number of queued requests.
func (d *reqDeque) Len() int { return d.n }

// Front returns the oldest queued request without removing it; nil when
// empty.
func (d *reqDeque) Front() *reqState {
	if d.n == 0 {
		return nil
	}
	return d.buf[d.head]
}

// PushBack appends a request at the tail.
func (d *reqDeque) PushBack(r *reqState) {
	d.grow()
	d.buf[(d.head+d.n)%len(d.buf)] = r
	d.n++
}

// PushFront prepends a request at the head (preempted requests rejoin here).
func (d *reqDeque) PushFront(r *reqState) {
	d.grow()
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = r
	d.n++
}

// At returns the i-th queued request from the front without removing it.
// Deadline-aware admission scans the queue with it; callers keep i < Len.
func (d *reqDeque) At(i int) *reqState {
	return d.buf[(d.head+i)%len(d.buf)]
}

// RemoveAt removes and returns the i-th queued request from the front,
// shifting the shorter side of the ring to close the gap; nil when out of
// range. O(min(i, n-i)) — EDF admission mostly removes near the front.
func (d *reqDeque) RemoveAt(i int) *reqState {
	if i < 0 || i >= d.n {
		return nil
	}
	r := d.At(i)
	if i < d.n-1-i {
		for j := i; j > 0; j-- {
			d.buf[(d.head+j)%len(d.buf)] = d.buf[(d.head+j-1)%len(d.buf)]
		}
		d.buf[d.head] = nil // release for GC
		d.head = (d.head + 1) % len(d.buf)
	} else {
		for j := i; j < d.n-1; j++ {
			d.buf[(d.head+j)%len(d.buf)] = d.buf[(d.head+j+1)%len(d.buf)]
		}
		d.buf[(d.head+d.n-1)%len(d.buf)] = nil
	}
	d.n--
	return r
}

// PopFront removes and returns the oldest queued request; nil when empty.
func (d *reqDeque) PopFront() *reqState {
	if d.n == 0 {
		return nil
	}
	r := d.buf[d.head]
	d.buf[d.head] = nil // release for GC
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return r
}

// grow doubles the ring when full, unwrapping it into the new buffer.
func (d *reqDeque) grow() {
	if d.n < len(d.buf) {
		return
	}
	size := 2 * len(d.buf)
	if size == 0 {
		size = 8
	}
	buf := make([]*reqState, size)
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf, d.head = buf, 0
}
