package serve

// Replica cold-start model: how long a freshly provisioned replica of a
// backend takes from activation to servable. The autoscaler prices
// elasticity with it; the failure injector prices *recovery* with it — a
// crashed confidential replica pays the full enclave/TD rebuild plus
// attestation before it can serve again, so the same MTBF costs different
// fleets visibly different unavailability.

import (
	"cllm/internal/gramine"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

// ColdStartSec models provisioning a fresh replica of the backend for a
// workload: base boot, streaming the weight image from storage, TEE
// memory preparation (TD page acceptance for VM TEEs, EADD+EEXTEND enclave
// build for SGX, bounce-buffered weight upload for confidential GPUs) and
// — for protected platforms — the attestation round-trip before secrets
// are released. Constants live in internal/tee and internal/gramine next
// to the mechanisms they time.
//
// A confidential GPU boots behind a host CVM (Hopper CC mode requires the
// driver to run inside a TD/SEV-SNP guest), so it additionally pays the
// host VM's memory acceptance over the weight image and a second
// attestation leg: the GPU's SPDM/NRAS quote is verified alongside the
// host TD quote before the session key is released.
func ColdStartSec(be Backend, w trace.Workload) float64 {
	weights := trace.WeightFootprint(w)
	var p tee.Platform
	if be.IsGPU {
		p = be.GPU.Platform
	} else {
		p = be.CPU.Platform
	}
	t := tee.BaseBootSec + weights/tee.WeightLoadBytesPerSec
	if be.IsGPU {
		// Weights cross the host-GPU link; confidential mode routes them
		// through the encrypted bounce buffer (PCIeBWFactor < 1).
		t += weights / (be.GPU.GPU.PCIeBandwidth * p.PCIeBWFactor)
		if p.Protected {
			// Host CVM memory acceptance plus the GPU attestation leg on
			// top of the host quote below.
			t += weights/tee.TDXAcceptBytesPerSec + tee.AttestationRTTSec
		}
	}
	switch p.Class {
	case tee.ClassVM:
		t += weights / tee.TDXAcceptBytesPerSec
	case tee.ClassProcess:
		t += weights / gramine.EnclaveBuildBytesPerSec
	}
	if p.Protected {
		t += tee.AttestationRTTSec
	}
	return t
}
