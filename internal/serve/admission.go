package serve

// Admission control and SLO-tiered request classes. The continuous-batching
// scheduler historically admitted FIFO and only ever dropped a request when
// it could never fit the KV pool; under overload that lets every class's
// tail blow past its SLO together. The policies here spend drops where they
// buy goodput: requests carry a class-tiered deadline, admission orders the
// queue earliest-deadline-first, and the shed policy declines work whose
// deadline is already infeasible instead of serving it late.

import (
	"fmt"
	"strings"
)

// AdmissionPolicy selects how the scheduler admits queued requests.
type AdmissionPolicy int

const (
	// AdmitFIFO is the historical arrival-order admission with no deadline
	// checks — the default; its scheduler path is byte-identical to prior
	// releases.
	AdmitFIFO AdmissionPolicy = iota
	// AdmitDeadline admits in earliest-deadline-first order and drops
	// requests whose deadline has already expired while queued
	// (DropDeadlineExpired) — late work is abandoned, but nothing is
	// declined ahead of time.
	AdmitDeadline
	// AdmitShed is AdmitDeadline plus proactive shedding: a request whose
	// deadline cannot be met even if admitted now (queue position plus its
	// own prefill time overrun the deadline) is declined at admission
	// (EvShed), retried if it has budget, else dropped as
	// DropAdmissionShed.
	AdmitShed
)

// String names the policy as the CLI spells it.
func (p AdmissionPolicy) String() string {
	switch p {
	case AdmitFIFO:
		return "fifo"
	case AdmitDeadline:
		return "deadline"
	case AdmitShed:
		return "shed"
	}
	return fmt.Sprintf("AdmissionPolicy(%d)", int(p))
}

// ParseAdmissionPolicy resolves a CLI admission-policy name.
func ParseAdmissionPolicy(s string) (AdmissionPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "fifo", "":
		return AdmitFIFO, nil
	case "deadline", "edf":
		return AdmitDeadline, nil
	case "shed":
		return AdmitShed, nil
	}
	return 0, fmt.Errorf("serve: unknown admission policy %q (fifo|deadline|shed)", s)
}

// RequestClass tiers requests by latency sensitivity. Classes map from the
// workload mixes' shape names (chat → interactive, rag → standard,
// agent → background); unshaped synthetic or trace arrivals default to
// ClassStandard.
type RequestClass uint8

const (
	// ClassStandard is the default tier (RAG-style interactive-but-patient
	// traffic).
	ClassStandard RequestClass = iota
	// ClassInteractive is latency-critical chat: the tightest deadline and
	// the last to be preempted under decode-priority scheduling.
	ClassInteractive
	// ClassBackground is deferred agentic work: the loosest deadline and
	// the first preemption victim.
	ClassBackground
	// NumClasses bounds per-class report arrays.
	NumClasses = 3
)

// String names the class as the exporters spell it.
func (c RequestClass) String() string {
	switch c {
	case ClassInteractive:
		return "interactive"
	case ClassStandard:
		return "standard"
	case ClassBackground:
		return "background"
	}
	return fmt.Sprintf("RequestClass(%d)", int(c))
}

// deadlineMult scales the base deadline per class: interactive requests
// get the base itself, standard 4×, background 16×.
func (c RequestClass) deadlineMult() float64 {
	switch c {
	case ClassInteractive:
		return 1
	case ClassBackground:
		return 16
	}
	return 4
}

// victimRank orders preemption victims under decode-priority scheduling:
// higher ranks are evicted first.
func (c RequestClass) victimRank() int {
	switch c {
	case ClassBackground:
		return 2
	case ClassStandard:
		return 1
	}
	return 0
}

// classOfShape maps a workload shape name to its request class by prefix
// ("chat-short" → interactive, "agent-final" → background); unknown or
// empty shapes are standard.
func classOfShape(shape string) RequestClass {
	switch {
	case strings.HasPrefix(shape, "chat"):
		return ClassInteractive
	case strings.HasPrefix(shape, "agent"):
		return ClassBackground
	}
	return ClassStandard
}

// DropReason labels why a request left the run unserved.
type DropReason uint8

const (
	// DropKVExhausted: the request could never fit the KV pool — the
	// historical (and zero-value) drop.
	DropKVExhausted DropReason = iota
	// DropAdmissionShed: admission control declined it (AdmitShed) and its
	// retry budget was exhausted.
	DropAdmissionShed
	// DropDeadlineExpired: its deadline passed while it queued.
	DropDeadlineExpired
	// DropFailureLost: a replica crash destroyed its KV state under
	// FailLost and its retry budget was exhausted.
	DropFailureLost
	// NumDropReasons bounds per-reason report arrays.
	NumDropReasons = 4
)

// String names the reason as the exporters spell it.
func (r DropReason) String() string {
	switch r {
	case DropKVExhausted:
		return "kv-exhausted"
	case DropAdmissionShed:
		return "admission-shed"
	case DropDeadlineExpired:
		return "deadline-expired"
	case DropFailureLost:
		return "failure-lost"
	}
	return fmt.Sprintf("DropReason(%d)", int(r))
}

// admitNext drives deadline-aware admission: the earliest-deadline queued
// request is moved to the queue front for the FIFO admission machinery to
// consume unchanged. Requests whose deadline already passed while queued
// are dropped (deadline-expired; the EDF minimum expiring does not imply
// the rest did, so the scan repeats). Under AdmitShed a request that could
// not meet its deadline even admitted alone right now — its own remaining
// prefill overruns it — is declined instead of served late. Returns nil
// once the scan drains the queue.
func (s *scheduler) admitNext(now float64) *reqState {
	for s.queue.Len() > 0 {
		best, bestIdx := s.queue.At(0), 0
		for i := 1; i < s.queue.Len(); i++ {
			if st := s.queue.At(i); st.deadline < best.deadline {
				best, bestIdx = st, i
			}
		}
		if now > best.deadline {
			s.queue.RemoveAt(bestIdx)
			s.dropQueued(best, DropDeadlineExpired, best.ctxTokens())
			continue
		}
		if s.cfg.Faults.Admission == AdmitShed {
			pt, err := s.coster.ChunkTime(1, best.ctxTokens(), 0)
			if err != nil {
				s.err = err
				return nil
			}
			if now+pt > best.deadline {
				s.queue.RemoveAt(bestIdx)
				s.shed(best)
				continue
			}
		}
		if bestIdx != 0 {
			s.queue.RemoveAt(bestIdx)
			s.queue.PushFront(best)
		}
		return best
	}
	return nil
}

// shed declines a queued request at admission time: retried after backoff
// when it has budget, dropped as admission-shed otherwise. EvShed is
// telemetry either way — the terminal outcome is the EvRetry or EvDrop
// that follows.
func (s *scheduler) shed(st *reqState) {
	s.sheds++
	if s.obs != nil {
		s.event(Event{Kind: EvShed, ReqID: st.req.ID, Tokens: st.req.InputLen})
	}
	if st.attempt < s.cfg.Faults.RetryMax {
		s.scheduleRetry(st)
		return
	}
	s.dropQueued(st, DropAdmissionShed, st.ctxTokens())
}

// dropQueued removes a queued request from the run: its parked swap copy
// (if any) is discarded, the drop is counted under its reason, and the
// terminal EvDrop is emitted. The caller has already dequeued it.
func (s *scheduler) dropQueued(st *reqState, reason DropReason, tokens int) {
	if st.swapped {
		s.kv.SwapIn(st.req.ID) // discard the parked copy
		st.swapped, st.swappedTokens = false, 0
	}
	st.phase = phaseDropped
	s.drops[reason]++
	if s.sink != nil {
		s.sink.dropped++
	}
	if s.obs != nil {
		s.event(Event{Kind: EvDrop, ReqID: st.req.ID, Tokens: tokens, Drop: reason})
	}
	s.progress()
}

// victim selects the preemption victim: the youngest running sequence by
// default; under deadline-aware admission, the youngest of the lowest-
// priority class still running (decode-priority scheduling — background
// work yields before interactive decodes stall).
func (s *scheduler) victim() *reqState {
	best := s.running[len(s.running)-1]
	if s.cfg.Faults.Admission == AdmitFIFO {
		return best
	}
	bestRank := best.req.Class.victimRank()
	for i := len(s.running) - 2; i >= 0; i-- {
		if r := s.running[i]; r.req.Class.victimRank() > bestRank {
			best, bestRank = r, r.req.Class.victimRank()
		}
	}
	return best
}
