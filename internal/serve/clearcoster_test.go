package serve

import (
	"reflect"
	"testing"

	"cllm/internal/hw"
	"cllm/internal/perf"
	"cllm/internal/tee"
)

// TestNewClearStepCosterEquivalence: the counterfactual coster prices
// exactly like a StepCoster built on the manually-cleared platform — the
// convenience constructor adds no pricing of its own.
func TestNewClearStepCosterEquivalence(t *testing.T) {
	cfg := tinyConfig(20, 8)
	for _, tc := range []struct {
		name string
		be   Backend
	}{
		{"tdx-cpu", cpuBackend(tee.TDX())},
		{"cgpu", Backend{IsGPU: true, GPU: perf.GPURun{GPU: hw.H100NVL(), Platform: tee.CGPU()}}},
	} {
		clear, err := NewClearStepCoster(tc.be, cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		manual := tc.be
		if manual.IsGPU {
			manual.GPU.Platform = manual.GPU.Platform.Clear()
		} else {
			manual.CPU.Platform = manual.CPU.Platform.Clear()
		}
		want, err := NewStepCoster(manual, cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, shape := range [][3]int{{1, 32, 0}, {4, 64, 32}, {8, 512, 128}} {
			g1, e1 := clear.ChunkTime(shape[0], shape[1], shape[2])
			g2, e2 := want.ChunkTime(shape[0], shape[1], shape[2])
			if e1 != nil || e2 != nil || g1 != g2 {
				t.Fatalf("%s: ChunkTime%v = %g/%v vs manual %g/%v", tc.name, shape, g1, e1, g2, e2)
			}
			d1, e1 := clear.DecodeTime(shape[0], shape[1], shape[2])
			d2, e2 := want.DecodeTime(shape[0], shape[1], shape[2])
			if e1 != nil || e2 != nil || d1 != d2 {
				t.Fatalf("%s: DecodeTime%v = %g/%v vs manual %g/%v", tc.name, shape, d1, e1, d2, e2)
			}
			s1, e1 := clear.SwapTime(shape[1])
			s2, e2 := want.SwapTime(shape[1])
			if e1 != nil || e2 != nil || s1 != s2 {
				t.Fatalf("%s: SwapTime(%d) = %g/%v vs manual %g/%v", tc.name, shape[1], s1, e1, s2, e2)
			}
		}
	}
}

// TestClearTwinRunMatchesUnprotectedRun: serving on cGPU's clear twin is
// the same simulation as serving on the plain GPU — identical mechanics,
// identical noise stream — so the reports agree field for field up to the
// platform label. This is the counterfactual baseline's ground truth.
func TestClearTwinRunMatchesUnprotectedRun(t *testing.T) {
	cfg := tinyConfig(40, 24)
	twin := Backend{IsGPU: true, GPU: perf.GPURun{GPU: hw.H100NVL(), Platform: tee.CGPU().Clear()}}
	plain := Backend{IsGPU: true, GPU: perf.GPURun{GPU: hw.H100NVL(), Platform: tee.GPU()}}
	a, err := Run(twin, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(plain, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Platform == b.Platform {
		t.Fatalf("twin did not keep its -clear label: %q", a.Platform)
	}
	a.Platform = b.Platform
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("clear-twin run differs from unprotected run:\n%+v\n%+v", a, b)
	}
}

// TestClearCosterValidation: a clear coster built for a different workload
// is rejected when observation makes it live, and ignored when no observer
// is attached (it never influences scheduling).
func TestClearCosterValidation(t *testing.T) {
	be := cpuBackend(tee.TDX())
	cfg := tinyConfig(20, 4)
	other := cfg
	other.Workload.Model = mustLookup(t, "llama2-7b")
	mismatched, err := NewClearStepCoster(be, other)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ClearCoster = mismatched
	if _, err := Run(be, cfg); err != nil {
		t.Fatalf("unobserved run must ignore the clear coster: %v", err)
	}
	cfg.Observer = nopObserver{}
	if _, err := Run(be, cfg); err == nil {
		t.Fatal("observed run accepted a clear coster built for a different model")
	}
}

type nopObserver struct{}

func (nopObserver) Event(Event)   {}
func (nopObserver) Sample(Sample) {}
