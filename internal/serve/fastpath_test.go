package serve

import (
	"reflect"
	"sort"
	"testing"

	"cllm/internal/dtype"
	"cllm/internal/mem"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

// TestReqDeque exercises the ring buffer through wraps and growth in both
// directions.
func TestReqDeque(t *testing.T) {
	mk := func(id int) *reqState { return &reqState{req: Request{ID: id}} }
	var d reqDeque
	if d.Len() != 0 || d.Front() != nil || d.PopFront() != nil {
		t.Fatal("empty deque misbehaves")
	}
	// Interleave pushes and pops so head walks around the ring while the
	// buffer grows.
	var want []int
	for i := 0; i < 100; i++ {
		d.PushBack(mk(i))
		want = append(want, i)
		if i%3 == 0 {
			d.PushFront(mk(1000 + i))
			want = append([]int{1000 + i}, want...)
		}
		if i%5 == 0 {
			got := d.PopFront()
			if got.req.ID != want[0] {
				t.Fatalf("pop %d, want %d", got.req.ID, want[0])
			}
			want = want[1:]
		}
	}
	if d.Len() != len(want) {
		t.Fatalf("len %d, want %d", d.Len(), len(want))
	}
	if d.Front().req.ID != want[0] {
		t.Fatalf("front %d, want %d", d.Front().req.ID, want[0])
	}
	for _, id := range want {
		if got := d.PopFront().req.ID; got != id {
			t.Fatalf("drain pop %d, want %d", got, id)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("deque not drained: %d left", d.Len())
	}
}

// preemptionHeavyConfig is a KV-starved deployment — the EPC caps the pool
// at a few requests' worth of KV — that forces repeated youngest-victim
// preemption under a fast open-loop burst.
func preemptionHeavyConfig() (Backend, Config) {
	m := tinyModel()
	wl := trace.Workload{Model: m, Kind: dtype.BF16, InputLen: 64, OutputLen: 32}
	p := tee.Baremetal()
	p.Name = "tiny-enclave"
	p.EPC = mem.EPC{
		Size:             int64(trace.WeightFootprint(wl)) + 160*m.KVCacheBytesPerToken(2),
		PageInCostFactor: 1,
	}
	cfg := Config{Workload: wl, Rate: 50, Requests: 32, Seed: 3, BlockTokens: 16, LengthJitter: -1}
	return cpuBackend(p), cfg
}

// TestPreemptionKeepsFIFOAdmitOrder is the deque-switch regression test:
// a preemption-heavy run must admit requests first-come-first-served —
// preempted requests rejoin the queue front without reshuffling anyone's
// first admission — and produce the identical audit trail on every run.
func TestPreemptionKeepsFIFOAdmitOrder(t *testing.T) {
	be, cfg := preemptionHeavyConfig()
	rep, order, err := RunAudited(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Preemptions == 0 {
		t.Fatal("config exercised no preemptions; regression test is vacuous")
	}
	// Synthetic Poisson arrivals get ascending IDs in arrival order, so
	// FIFO first-admission means the audit trail is strictly ascending.
	if !sort.IntsAreSorted([]int(order)) {
		t.Fatalf("admission order not FIFO under preemption: %v", order)
	}
	rep2, order2, err := RunAudited(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, order2) {
		t.Fatalf("admit order not deterministic: %v vs %v", order, order2)
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Fatal("preemption-heavy run not deterministic")
	}
}

// TestSizeFleetForSLOParallelMatchesSerial: the speculative parallel sizing
// must return the byte-identical size and report the serial search finds.
func TestSizeFleetForSLOParallelMatchesSerial(t *testing.T) {
	be := cpuBackend(tee.TDX())
	cfg := tinyConfig(12, 32)
	cfg.TTFTSLOSec, cfg.TPOTSLOSec = 2, 0.5
	nSerial, repSerial, err := SizeFleetForSLO(be, cfg, LeastLoaded, 0.9, 8)
	if err != nil {
		t.Fatal(err)
	}
	nPar, repPar, err := SizeFleetForSLOParallel(be, cfg, LeastLoaded, 0.9, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if nSerial != nPar {
		t.Fatalf("parallel sizing picked %d replicas, serial %d", nPar, nSerial)
	}
	if !reflect.DeepEqual(repSerial, repPar) {
		t.Fatalf("parallel fleet report differs from serial:\n%+v\nvs\n%+v", repPar.Aggregate, repSerial.Aggregate)
	}
}

// TestSharedCosterDoesNotPerturbRuns: a run costing through a pre-warmed
// shared table equals a run building its own — memoization is invisible in
// the results.
func TestSharedCosterDoesNotPerturbRuns(t *testing.T) {
	be := cpuBackend(tee.TDX())
	cfg := tinyConfig(10, 24)
	fresh, err := Run(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	coster, err := NewStepCoster(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	be.Coster = coster
	warm1, err := Run(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm2, err := Run(be, cfg) // second run hits the table everywhere
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, warm1) || !reflect.DeepEqual(fresh, warm2) {
		t.Fatal("shared costing table changed run results")
	}
}

// TestCostBucketApproximatesExact: a coarsely bucketed run still completes
// the offered load with per-request latencies near the exact run's — the
// bucketing knob trades bounded accuracy, not correctness.
func TestCostBucketApproximatesExact(t *testing.T) {
	be := cpuBackend(tee.TDX())
	exactCfg := tinyConfig(10, 24)
	bucketCfg := exactCfg
	bucketCfg.CostBucket = 32
	exact, err := Run(be, exactCfg)
	if err != nil {
		t.Fatal(err)
	}
	bucketed, err := Run(be, bucketCfg)
	if err != nil {
		t.Fatal(err)
	}
	if bucketed.Completed != exact.Completed || bucketed.Dropped != exact.Dropped {
		t.Fatalf("bucketed run changed outcomes: %d/%d vs %d/%d completed/dropped",
			bucketed.Completed, bucketed.Dropped, exact.Completed, exact.Dropped)
	}
	if exact.TTFT.Mean <= 0 {
		t.Fatal("degenerate exact run")
	}
	rel := (bucketed.TTFT.Mean - exact.TTFT.Mean) / exact.TTFT.Mean
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.10 {
		t.Fatalf("bucketed mean TTFT off by %.1f%% (bucketed %.4fs, exact %.4fs)", rel*100, bucketed.TTFT.Mean, exact.TTFT.Mean)
	}
}

// TestSizeFleetForSLOPreservesJitterSentinel: sizing must not normalize
// the caller's config before handing it to RunFleet — normalize is not
// idempotent for sentinel values (LengthJitter < 0 means "disabled"; one
// pass maps it to 0, a second would map 0 to the 0.25 default). The sized
// report must equal running the chosen fleet directly.
func TestSizeFleetForSLOPreservesJitterSentinel(t *testing.T) {
	be := cpuBackend(tee.Baremetal())
	cfg := tinyConfig(8, 24)
	cfg.LengthJitter = -1 // fixed-length requests
	n, sized, err := SizeFleetForSLO(be, cfg, LeastLoaded, 0.9, 8)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunFleet(be, cfg, FleetConfig{Replicas: n, Policy: LeastLoaded})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sized, direct) {
		t.Fatalf("sized report differs from direct run of %d replicas — config was mutated before RunFleet", n)
	}
}

// TestMismatchedCosterRejected: a shared costing table built for a
// different model must fail the run loudly instead of silently pricing it
// with the wrong operator traces.
func TestMismatchedCosterRejected(t *testing.T) {
	be := cpuBackend(tee.Baremetal())
	tinyCfg := tinyConfig(10, 8)
	coster, err := NewStepCoster(be, tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	be.Coster = coster
	if _, err := Run(be, tinyCfg); err != nil {
		t.Fatalf("matching coster rejected: %v", err)
	}
	bigCfg := tinyCfg
	bigCfg.Workload.Model = mustLookup(t, "llama2-7b")
	if _, err := Run(be, bigCfg); err == nil {
		t.Fatal("mismatched coster accepted — run would be priced with the wrong model's traces")
	}
	bucketCfg := tinyCfg
	bucketCfg.CostBucket = 32
	if _, err := Run(be, bucketCfg); err == nil {
		t.Fatal("mismatched cost bucket accepted")
	}
}
