package serve

import (
	"cllm/internal/hw"
	"cllm/internal/sim"
	"cllm/internal/trace"
)

// handoffDispatcher moves a request's computed KV cache from a
// prefill-role replica to a decode-role replica. The transfer is priced
// mechanistically per edge, leg by leg:
//
//	drain  = source StepCoster.SwapTime(tokens)   — the prefill side's
//	         swap-out bandwidth: a cGPU pays the AES-GCM bounce buffer
//	         (CGPUPCIeBWFactor × PCIe), a CPU TEE its encrypted-DRAM
//	         memcpy (MemEncryptBWFactor × HostSwapBytesPerSec).
//	nic    = hw.NICHandoffSetupSec + bytes/hw.NICBytesPerSec — the
//	         cross-replica interconnect, attested-TLS setup plus wire time.
//	ingest = priced by the decode replica's admission round via the
//	         existing swapped-restore path (the parked copy transfers into
//	         device blocks at the decode side's swap-in bandwidth, showing
//	         up as that replica's SwapIns).
//
// The source's device blocks stay pinned until the drain completes (an
// async copy out of live memory), then free for the next prompt. The
// decode replica is picked when the transfer lands — load-aware policies
// see the queue depths of that instant, and the choice is deterministic
// because the engine is.
type handoffDispatcher struct {
	eng   *sim.Engine
	stage *stageLB // decode-stage dispatcher
}

// initiate prices and launches one handoff. Called by the prefill
// scheduler after the round that produced the request's first token has
// emitted its events (see finishIteration's deferral), so EvHandoff
// always follows that round's EvDecodeRound at the same timestamp.
func (d *handoffDispatcher) initiate(src *scheduler, r *reqState) {
	tokens := r.computedTokens()
	bytes := trace.KVSwapBytes(src.cfg.Workload, tokens)
	drain, err := src.coster.SwapTime(tokens)
	if err != nil {
		src.err = err
		return
	}
	nic := hw.NICHandoffSetupSec + bytes/hw.NICBytesPerSec
	src.handoffsOut++
	src.handoffTokens += tokens
	src.handoffBytes += bytes
	if src.obs != nil {
		src.event(Event{Kind: EvHandoff, ReqID: r.req.ID, Tokens: tokens, Bytes: bytes, XferSec: drain + nic})
	}
	reqID := r.req.ID
	d.eng.Schedule(sim.Time(drain), func(*sim.Engine) {
		src.kv.Release(reqID)
		src.kick()
	})
	d.eng.Schedule(sim.Time(drain+nic), func(*sim.Engine) {
		d.ingest(r, tokens)
	})
}

// ingest lands the transfer on a decode replica: the KV copy parks in the
// replica's staging (host swap) pool and the request enters its queue as
// a swapped request — admission restores it through the same
// swapped-restore path a swap-to-host preemption uses, pricing the ingest
// copy in the admitting round and consulting the decode side's prefix
// cache. A full staging pool forces the fallback: the decode replica
// recomputes the prompt from scratch and the transfer was wasted work.
func (d *handoffDispatcher) ingest(r *reqState, tokens int) {
	j := d.stage.pick(r.req)
	dst := d.stage.reps[j]
	if dst.kv.SwapOut(r.req.ID, tokens) {
		r.swapped = true
		r.swappedTokens = tokens
	} else {
		dst.handoffFallbacks++
		r.swapped = false
		r.swappedTokens = 0
	}
	r.prefilled, r.prefillTarget = 0, 0
	r.phase = phaseWaiting
	dst.submitHandoff(r)
}
