// Package serve is the multi-request serving layer of the reproduction: an
// open-loop, trace- or Poisson-driven continuous-batching scheduler running
// on the discrete-event engine (internal/sim), with a paged KV-cache
// allocator sized against the platform's usable memory and per-iteration
// step durations from the mechanistic roofline (internal/perf). TEE
// mechanisms flow through unchanged — TDX memory encryption, SGX enclave
// limits and cGPU bounce buffers all reshape the throughput–latency curve —
// and the report prices SLO-compliant serving via internal/cloud. The paper
// measures one request at a time; this package answers its headline
// question ("what does protection cost per token?") under production load,
// where batching amortizes protection overheads differently.
package serve

import (
	"fmt"
	"strings"

	"cllm/internal/cloud"
	"cllm/internal/perf"
	"cllm/internal/stats"
	"cllm/internal/trace"
	"cllm/internal/workload"
)

// QuantileMode selects how a run summarizes per-request latency metrics.
type QuantileMode int

const (
	// QuantileExact retains every completed request's metrics and computes
	// interpolated percentiles over the full sample — bit-identical to the
	// historical behavior, with memory linear in the request count.
	QuantileExact QuantileMode = iota
	// QuantileSketch streams metrics into DDSketch-style summaries
	// (stats.Sketch) with a documented relative-error bound and memory
	// independent of the request count, and runs the simulation in arrival
	// epochs so 10⁸-request runs complete with a flat heap. Reports carry
	// no per-request slice; quantiles come from the sketches.
	QuantileSketch
)

// String names the mode as the CLI spells it.
func (m QuantileMode) String() string {
	switch m {
	case QuantileExact:
		return "exact"
	case QuantileSketch:
		return "sketch"
	}
	return fmt.Sprintf("QuantileMode(%d)", int(m))
}

// ParseQuantileMode resolves a CLI mode name.
func ParseQuantileMode(s string) (QuantileMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "exact", "":
		return QuantileExact, nil
	case "sketch":
		return QuantileSketch, nil
	}
	return 0, fmt.Errorf("serve: unknown quantile mode %q (exact|sketch)", s)
}

// DefaultEpochRequests is the arrival-epoch size sketch-mode sharded runs
// use unless configured: large enough that epoch handoff overhead
// vanishes, small enough that per-epoch arrival buffers stay in cache.
const DefaultEpochRequests = 65536

// Request is one arrival in the offered load.
type Request struct {
	// ID must be unique across the trace.
	ID int
	// ArrivalSec is the arrival time on the simulated clock.
	ArrivalSec float64
	// InputLen is the prompt length in tokens.
	InputLen int
	// OutputLen is the number of tokens the request generates.
	OutputLen int
	// PrefixID labels the request's shared prompt prefix: requests with
	// equal nonzero PrefixID model byte-identical content over their first
	// PrefixLen tokens (a RAG system prompt plus document set), which the
	// prefix cache can serve from shared KV blocks. Zero means no shared
	// prefix.
	PrefixID int
	// PrefixLen is the shared prefix length in tokens (at most InputLen).
	PrefixLen int
	// Class tiers the request for deadline-aware admission and
	// decode-priority scheduling (zero = ClassStandard). Scenario loads
	// derive it from the workload shape name (chat → interactive,
	// agent → background); explicit traces may set it directly. Ignored
	// under AdmitFIFO.
	Class RequestClass
}

// Backend selects the hardware/TEE combination the server runs on. Exactly
// one of CPU or GPU is used; the embedded Workload fields other than
// Model/Kind are ignored (the scheduler shapes batches itself).
type Backend struct {
	IsGPU bool
	CPU   perf.CPURun
	GPU   perf.GPURun
	// Coster optionally shares a memoized step-costing table across runs:
	// repeated sweeps over the same backend and model (fleet sizing,
	// autoscale policy grids, benchmark loops) then re-cost identical
	// iteration shapes from the table instead of walking the roofline op by
	// op. Nil means each run builds its own (see NewStepCoster). The coster
	// must have been built for this backend and the run's model/datatype/
	// cost-bucket; it is safe for concurrent use and never changes results —
	// memoized keys return bit-identical float64s.
	Coster *perf.StepCoster
}

// NewStepCoster builds the memoized per-step costing table for a backend
// under cfg's model, datatype and CostBucket. Run/RunFleet build one
// automatically when be.Coster is nil; callers that sweep many runs over
// one backend (SizeFleetForSLO, autoscalers, benchmark harnesses) should
// build it once and share it via Backend.Coster.
func NewStepCoster(be Backend, cfg Config) (*perf.StepCoster, error) {
	wl := trace.Workload{Model: cfg.Workload.Model, Kind: cfg.Workload.Kind}
	if be.IsGPU {
		g := be.GPU
		g.Workload = wl
		return perf.NewGPUStepCoster(g, cfg.CostBucket)
	}
	c := be.CPU
	if c.Sockets <= 0 {
		c.Sockets = 1
	}
	c.Workload = wl
	return perf.NewCPUStepCoster(c, cfg.CostBucket)
}

// NewClearStepCoster builds the counterfactual coster for TEE-tax
// attribution: the backend's memoized step-costing table with the platform
// replaced by its clear-hardware twin (tee.Platform.Clear) — same silicon,
// every TEE mechanism neutralized. Costing a step here answers "what would
// this exact shape have cost without confidential computing". Like
// NewStepCoster it is safe to share across replicas and runs of the same
// model/datatype/cost-bucket via Config.ClearCoster. For unprotected
// backends the twin is the platform itself, so the clear costs it emits
// equal the real raw costs and the attributed tax is exactly zero.
func NewClearStepCoster(be Backend, cfg Config) (*perf.StepCoster, error) {
	if be.IsGPU {
		be.GPU.Platform = be.GPU.Platform.Clear()
	} else {
		be.CPU.Platform = be.CPU.Platform.Clear()
	}
	be.Coster = nil
	return NewStepCoster(be, cfg)
}

// platformName returns the TEE platform label of the backend.
func (b Backend) platformName() string {
	if b.IsGPU {
		return b.GPU.Platform.Name
	}
	return b.CPU.Platform.Name
}

// protected reports whether the backend runs under TEE guarantees.
func (b Backend) protected() bool {
	if b.IsGPU {
		return b.GPU.Platform.Protected
	}
	return b.CPU.Platform.Protected
}

// KVBudgetBytes returns the bytes available to the paged KV cache: the
// platform's usable memory minus resident weights. SGX is capped by the
// enclave size (spilling the cache past the EPC would thrash, so the
// scheduler treats the enclave as the hard ceiling); GPUs by HBM; other
// CPU platforms by installed DRAM on the sockets in use.
func (b Backend) KVBudgetBytes(w trace.Workload) (int64, error) {
	weights := int64(trace.WeightFootprint(w))
	var usable int64
	if b.IsGPU {
		usable = b.GPU.GPU.HBMBytes
	} else {
		sockets := b.CPU.Sockets
		if sockets <= 0 {
			sockets = 1
		}
		usable = b.CPU.CPU.MemPerSocketBytes * int64(sockets)
		if epc := b.CPU.Platform.EPC.Size; epc > 0 && epc < usable {
			usable = epc
		}
	}
	budget := usable - weights
	if budget <= 0 {
		return 0, fmt.Errorf("serve: %s cannot hold %d weight bytes (usable %d)", b.platformName(), weights, usable)
	}
	return budget, nil
}

// Config tunes one serving run.
type Config struct {
	// Workload supplies the model and datatype; InputLen/OutputLen are the
	// mean prompt and generation lengths of synthetic arrivals.
	Workload trace.Workload
	// Rate is the Poisson arrival rate in requests/s (open loop).
	Rate float64
	// Requests is the number of synthetic arrivals to generate.
	Requests int
	// Trace supplies explicit arrivals instead of Poisson synthesis.
	Trace []Request
	// Scenario synthesizes arrivals from a workload traffic scenario (an
	// arrival process crossed with a request-shape mix) instead of the
	// plain Poisson process above. Requests still bounds the number of
	// arrivals; Rate, the Workload mean lengths, LengthJitter and the
	// Prefix* knobs are ignored in favor of the scenario's own shapes.
	// Trace takes precedence when both are set.
	Scenario *workload.Scenario
	// Seed drives arrivals, length jitter and the step-noise model.
	Seed int64
	// MaxBatch caps concurrently running sequences (default 32).
	MaxBatch int
	// BlockTokens is the paged-KV block size in tokens (default 16).
	BlockTokens int
	// ChunkTokens caps new prompt tokens processed per scheduler iteration
	// (chunked prefill): long prompts are split into budgeted chunks
	// interleaved with decode steps, bounding the TPOT stall a monolithic
	// prefill would impose on in-flight decodes. 0 disables chunking.
	ChunkTokens int
	// PrefixSharing enables the block-level prefix cache: requests with
	// equal PrefixID reuse the shared prefix's KV blocks (refcounted, LRU
	// eviction) instead of recomputing and re-storing them.
	PrefixSharing bool
	// PrefixGroups makes synthetic arrivals share prompt prefixes: each
	// request draws one of this many prefix identities. 0 disables.
	PrefixGroups int
	// PrefixFrac is the shared fraction of the mean prompt length for
	// synthetic prefix groups (default 0.5 when PrefixGroups is set).
	PrefixFrac float64
	// LengthJitter varies synthetic lengths uniformly within ±fraction of
	// the mean (default 0.25; negative disables, 0 means default).
	LengthJitter float64
	// CostBucket is the step-costing quantization width in tokens (see
	// perf.StepCoster): context and history are costed at their bucket's
	// midpoint, trading modeled-time accuracy (error shrinks as ctx/bucket
	// grows) for memo-table hit rate in large sweeps. Default 1 = exact —
	// results are bit-identical to the unmemoized cost model.
	CostBucket int
	// PreemptPolicy selects what a preemption does with the victim's KV
	// cache: PreemptRecompute (default, vLLM-style full re-prefill),
	// PreemptSwap (copy to a bounded host swap pool at the backend's swap
	// bandwidth and copy back on resume), or PreemptAuto (per preemption,
	// whichever the memoized transfer-vs-recompute estimate prices cheaper).
	PreemptPolicy PreemptPolicy
	// SwapPoolFrac sizes the host swap pool as a fraction of the device KV
	// pool (in blocks). 0 means the default 1.0; negative disables the pool
	// (every swap attempt falls back to recompute). Ignored under
	// PreemptRecompute.
	SwapPoolFrac float64
	// TTFTSLOSec and TPOTSLOSec are the SLO targets (defaults 5s / 0.5s).
	TTFTSLOSec float64
	TPOTSLOSec float64
	// HorizonSec bounds simulated time after the last arrival (default
	// 3600s): requests still unfinished then count as SLO misses.
	HorizonSec float64
	// MaxSteps bounds engine events as a runaway guard (default 4e6,
	// scaled up to 512 events per request for runs large enough that the
	// constant cap would kill legitimate work).
	MaxSteps int64
	// QuantileMode selects the latency summary: QuantileExact (default)
	// retains per-request samples and is bit-identical to prior behavior;
	// QuantileSketch streams them into bounded-memory sketches and shards
	// the simulation into arrival epochs (see EpochRequests).
	QuantileMode QuantileMode
	// SketchAlpha is the sketch's relative-error bound in (0, 1); 0 means
	// stats.DefaultSketchAlpha (1%). Ignored under QuantileExact.
	SketchAlpha float64
	// EpochRequests is the arrival-epoch size for sharded simulation: the
	// run schedules this many arrivals at a time, drains the engine to the
	// epoch's last arrival, and hands the warm scheduler/KV state to the
	// next epoch. 0 means DefaultEpochRequests under QuantileSketch and
	// monolithic execution under QuantileExact; setting it explicitly
	// under QuantileExact forces the sharded path (whose output is
	// byte-identical to monolithic — tests pin this).
	EpochRequests int
	// Observer, when non-nil, receives the per-request lifecycle event
	// stream and per-round gauge samples (see Observer). Nil — the default —
	// keeps the scheduler's fast path branch-only and allocation-free. Not
	// for concurrent runs: see the interface's contract.
	Observer Observer
	// Faults groups the fault-injection, admission-control and retry knobs
	// (see FaultConfig). The six flat fields below are the deprecated
	// pre-grouping spelling: normalize folds them into Faults when the
	// sub-struct leaves the knob zero, then mirrors the resolved values
	// back, so configs written against either spelling behave identically
	// for one release.
	Faults FaultConfig
	// FailMTBFSec is deprecated: set Faults.MTBFSec.
	FailMTBFSec float64
	// FailPlan is deprecated: set Faults.Plan.
	FailPlan []FailPoint
	// FailPolicy is deprecated: set Faults.Policy.
	FailPolicy FailurePolicy
	// RecoverySec is the crash-to-servable recovery time; 0 — the default —
	// derives the platform's full TEE cold start (ColdStartSec: boot +
	// weight load + TD accept/enclave build + attestation RTT).
	RecoverySec float64
	// Admission is deprecated: set Faults.Admission.
	Admission AdmissionPolicy
	// DeadlineSec is the interactive-class deadline measured from arrival
	// (standard requests get 4×, background 16× — see RequestClass); 0
	// defaults to TTFTSLOSec. Only meaningful under AdmitDeadline/AdmitShed.
	DeadlineSec float64
	// RetryMax is deprecated: set Faults.RetryMax.
	RetryMax int
	// RetryBaseSec is deprecated: set Faults.RetryBackoffSec.
	RetryBaseSec float64
	// ClearCoster, when non-nil alongside Observer, prices every round's
	// step shapes a second time on the platform's clear-hardware twin (see
	// tee.Platform.Clear and NewClearStepCoster) and emits the results on
	// the round event — the counterfactual side of TEE-tax attribution. It
	// never influences scheduling or timing: the real coster alone drives
	// the simulation. Ignored when Observer is nil.
	ClearCoster *perf.StepCoster
}

// FaultConfig groups the serving run's resilience knobs: fault injection,
// queue-admission policy and the retry budget. It embeds in Config as
// Faults; the matching flat Config fields are deprecated and folded in by
// normalize for one release.
type FaultConfig struct {
	// MTBFSec injects replica failures as a Poisson process with this
	// mean time between failures (simulated seconds, per replica, drawn
	// from a private seeded stream). 0 — the default — disables fault
	// injection. A crash destroys the replica's device state (running
	// batch KV, parked swap copies, prefix cache) and takes the replica
	// down for Config.RecoverySec.
	MTBFSec float64
	// Plan injects scripted crashes instead: each point names a replica
	// index and a crash time on the simulated clock. Takes precedence
	// over MTBFSec. Points hitting an already-down replica are absorbed
	// by the ongoing recovery.
	Plan []FailPoint
	// Policy selects what happens to in-flight requests at a crash:
	// FailRequeue (default) requeues them for recompute after recovery;
	// FailLost loses them (retried when RetryMax allows, else dropped as
	// failure-lost).
	Policy FailurePolicy
	// Admission selects the admission policy: AdmitFIFO (default,
	// byte-identical to prior releases), AdmitDeadline (EDF with expired
	// requests dropped), or AdmitShed (EDF plus proactive shedding of
	// infeasible deadlines). See AdmissionPolicy.
	Admission AdmissionPolicy
	// RetryMax is the per-request retry budget for shed and failure-lost
	// requests (0 — the default — disables retries: those requests drop).
	RetryMax int
	// RetryBackoffSec is the base of the exponential retry backoff
	// (base × 2^(attempt−1), plus deterministic per-request jitter up to
	// +50%); 0 defaults to 1s when RetryMax is set.
	RetryBackoffSec float64
}

// Normalize validates the config and fills defaults in place. Exported for
// external control loops (internal/autoscale) that need the resolved
// HorizonSec/MaxSteps/Requests before building replicas; Run/RunFleet call
// it internally.
func (c *Config) Normalize() error { return c.normalize() }

func (c *Config) normalize() error {
	if c.Workload.Model.Validate() != nil {
		return fmt.Errorf("serve: config needs a valid model")
	}
	switch {
	case len(c.Trace) > 0:
	case c.Scenario != nil:
		if err := c.Scenario.Validate(); err != nil {
			return err
		}
		if c.Requests <= 0 {
			c.Requests = 64
		}
		// The scheduler's mean-length fields feed pool sizing heuristics
		// and reports; mirror the mix so they stay meaningful.
		c.Workload.InputLen = c.Scenario.Mix.MeanInputLen()
		c.Workload.OutputLen = c.Scenario.Mix.MeanOutputLen()
		c.Rate = c.Scenario.Arrivals.MeanRate()
	default:
		if c.Rate <= 0 {
			return fmt.Errorf("serve: arrival rate %g must be positive", c.Rate)
		}
		if c.Requests <= 0 {
			c.Requests = 64
		}
		if c.Workload.InputLen <= 0 {
			c.Workload.InputLen = 128
		}
		if c.Workload.OutputLen <= 0 {
			c.Workload.OutputLen = 32
		}
		if sum := c.Workload.InputLen + c.Workload.OutputLen; sum > c.Workload.Model.ContextLen {
			return fmt.Errorf("serve: mean request length %d exceeds %s context %d",
				sum, c.Workload.Model.Name, c.Workload.Model.ContextLen)
		}
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.BlockTokens <= 0 {
		c.BlockTokens = 16
	}
	if c.ChunkTokens < 0 {
		c.ChunkTokens = 0
	}
	if c.CostBucket < 1 {
		c.CostBucket = 1
	}
	switch c.PreemptPolicy {
	case PreemptRecompute, PreemptSwap, PreemptAuto:
	default:
		return fmt.Errorf("serve: unknown preemption policy %d", int(c.PreemptPolicy))
	}
	// Negative SwapPoolFrac (disabled) is kept as-is: normalize must stay
	// idempotent (replicas re-normalize shared configs), so the sentinel
	// cannot be collapsed onto 0, which means "default".
	if c.SwapPoolFrac == 0 {
		c.SwapPoolFrac = 1
	}
	if c.PrefixGroups < 0 {
		c.PrefixGroups = 0
	}
	if c.PrefixGroups > 0 {
		switch {
		case c.PrefixFrac == 0:
			c.PrefixFrac = 0.5
		case c.PrefixFrac < 0 || c.PrefixFrac >= 1:
			return fmt.Errorf("serve: prefix fraction %g outside [0, 1)", c.PrefixFrac)
		}
	}
	switch {
	case c.LengthJitter == 0:
		c.LengthJitter = 0.25
	case c.LengthJitter < 0:
		c.LengthJitter = 0
	}
	if c.TTFTSLOSec <= 0 {
		c.TTFTSLOSec = 5
	}
	if c.TPOTSLOSec <= 0 {
		c.TPOTSLOSec = 0.5
	}
	if c.HorizonSec <= 0 {
		c.HorizonSec = 3600
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 4_000_000
		// Event volume scales with arrivals (one arrival event plus a
		// bounded number of scheduling rounds per request); scale the
		// runaway guard so 10⁸-request runs are not killed by a constant
		// cap sized for sweep points. Requests already covers traces too
		// small to matter, and scenario/Poisson runs default it above.
		n := c.Requests
		if len(c.Trace) > n {
			n = len(c.Trace)
		}
		if guard := int64(n) * 512; guard > c.MaxSteps {
			c.MaxSteps = guard
		}
	}
	switch c.QuantileMode {
	case QuantileExact, QuantileSketch:
	default:
		return fmt.Errorf("serve: unknown quantile mode %d", int(c.QuantileMode))
	}
	switch {
	case c.SketchAlpha == 0:
		c.SketchAlpha = stats.DefaultSketchAlpha
	case c.SketchAlpha < 0 || c.SketchAlpha >= 1:
		return fmt.Errorf("serve: sketch alpha %g outside (0, 1)", c.SketchAlpha)
	}
	if c.EpochRequests < 0 {
		return fmt.Errorf("serve: epoch size %d is negative", c.EpochRequests)
	}
	if c.QuantileMode == QuantileSketch && c.EpochRequests == 0 {
		c.EpochRequests = DefaultEpochRequests
	}
	// One-release migration: the deprecated flat fields fill their Faults
	// counterparts wherever the sub-struct left the knob zero, then the
	// resolved values mirror back so readers of either spelling agree.
	// Both steps are no-ops on a re-normalized config (idempotent).
	if c.Faults.MTBFSec == 0 {
		c.Faults.MTBFSec = c.FailMTBFSec
	}
	if c.Faults.Plan == nil {
		c.Faults.Plan = c.FailPlan
	}
	if c.Faults.Policy == FailRequeue {
		c.Faults.Policy = c.FailPolicy
	}
	if c.Faults.Admission == AdmitFIFO {
		c.Faults.Admission = c.Admission
	}
	if c.Faults.RetryMax == 0 {
		c.Faults.RetryMax = c.RetryMax
	}
	if c.Faults.RetryBackoffSec == 0 {
		c.Faults.RetryBackoffSec = c.RetryBaseSec
	}
	if c.Faults.MTBFSec < 0 {
		return fmt.Errorf("serve: failure MTBF %g is negative", c.Faults.MTBFSec)
	}
	for _, fp := range c.Faults.Plan {
		if fp.Replica < 0 || fp.TimeSec < 0 {
			return fmt.Errorf("serve: invalid fail-plan point %+v", fp)
		}
	}
	switch c.Faults.Policy {
	case FailRequeue, FailLost:
	default:
		return fmt.Errorf("serve: unknown failure policy %d", int(c.Faults.Policy))
	}
	if c.RecoverySec < 0 {
		return fmt.Errorf("serve: recovery time %g is negative", c.RecoverySec)
	}
	switch c.Faults.Admission {
	case AdmitFIFO, AdmitDeadline, AdmitShed:
	default:
		return fmt.Errorf("serve: unknown admission policy %d", int(c.Faults.Admission))
	}
	switch {
	case c.DeadlineSec == 0:
		c.DeadlineSec = c.TTFTSLOSec
	case c.DeadlineSec < 0:
		return fmt.Errorf("serve: deadline %g is negative", c.DeadlineSec)
	}
	if c.Faults.RetryMax < 0 {
		return fmt.Errorf("serve: retry budget %d is negative", c.Faults.RetryMax)
	}
	switch {
	case c.Faults.RetryBackoffSec < 0:
		return fmt.Errorf("serve: retry backoff base %g is negative", c.Faults.RetryBackoffSec)
	case c.Faults.RetryBackoffSec == 0 && c.Faults.RetryMax > 0:
		c.Faults.RetryBackoffSec = 1
	}
	c.FailMTBFSec, c.FailPlan, c.FailPolicy = c.Faults.MTBFSec, c.Faults.Plan, c.Faults.Policy
	c.Admission, c.RetryMax, c.RetryBaseSec = c.Faults.Admission, c.Faults.RetryMax, c.Faults.RetryBackoffSec
	return nil
}

// Quantiles summarizes one latency metric across completed requests.
type Quantiles struct {
	Mean, P50, P95, P99 float64
}

// RequestMetrics is the per-request outcome.
type RequestMetrics struct {
	ID int
	// TTFT is time from arrival to first generated token (prefill done).
	TTFT float64
	// TPOT is the mean time per output token after the first.
	TPOT float64
	// Latency is arrival-to-completion.
	Latency float64
	// QueueDelay is arrival-to-admission (first admission).
	QueueDelay   float64
	OutputTokens int
	Preemptions  int
	SLOMet       bool
}

// Report is the outcome of one serving run.
type Report struct {
	Platform    string
	OfferedRate float64
	// Completed / Dropped / Unfinished partition the offered requests.
	// Unfinished ones were still queued, running, or awaiting a retry
	// backoff at the horizon. Dropped is the lumped total (kept for
	// compatibility — default output stays byte-identical);
	// DroppedByReason splits it by cause in DropReason order (kv-exhausted,
	// admission-shed, deadline-expired, failure-lost).
	Completed, Dropped, Unfinished int
	DroppedByReason                [NumDropReasons]int
	// Sheds counts admission-shed decisions including retried ones (an
	// EvShed per decision); Retries counts re-entries into the arrival
	// stream after backoff. Both zero under FIFO admission with no
	// failures.
	Sheds, Retries int
	// Crashes counts injected replica failures and DowntimeSec the total
	// recovery time they cost — the TEE recovery tax, Crashes × the
	// platform cold start.
	Crashes     int
	DowntimeSec float64
	// KV handoff ledger (disaggregated topologies only; all zero on
	// unified fleets). HandoffsOut counts handoffs a prefill-role replica
	// initiated, HandoffsIn those a decode-role replica admitted;
	// aggregates may differ by the transfers still in flight at the
	// horizon. HandoffFallbacks counts handoffs whose staging pool was
	// full at ingest, forcing a full KV recompute on the decode side.
	// HandoffTokens/HandoffBytes total the KV entries and bytes drained
	// across the interconnect (counted at the initiating side).
	HandoffsOut      int
	HandoffsIn       int
	HandoffFallbacks int
	HandoffTokens    int
	HandoffBytes     float64
	// CompletedByClass / GoodTokensByClass split completions and
	// SLO-compliant output tokens by request class in RequestClass order
	// (standard, interactive, background) — the overload experiments'
	// per-tier goodput.
	CompletedByClass  [NumClasses]int
	GoodTokensByClass [NumClasses]int
	Preemptions       int
	MakespanSec       float64
	TotalTokens       int
	// TokensPerSec is aggregate generation throughput over the makespan.
	TokensPerSec float64
	// GoodputTokensPerSec counts only tokens of SLO-compliant requests —
	// the paper's cost question, asked properly: protection you pay for is
	// only worth the tokens that arrive on time.
	GoodputTokensPerSec float64
	// GoodRequestsPerSec is the SLO-compliant request completion rate.
	GoodRequestsPerSec float64
	TTFT               Quantiles
	TPOT               Quantiles
	Latency            Quantiles
	KVBlocksTotal      int
	PeakKVBlocksInUse  int
	// KVBlocksInUseAtEnd must be zero whenever Unfinished is zero — any
	// other value is a scheduler leak (tests assert this invariant).
	// Cached (refcount-zero, reclaimable) prefix blocks are not in use;
	// they are reported in KVBlocksCachedAtEnd.
	KVBlocksInUseAtEnd  int
	KVBlocksCachedAtEnd int
	// PrefixCacheHitTokens counts prompt tokens served from shared prefix
	// blocks instead of being recomputed; PrefixCacheMissTokens counts
	// shareable prefix tokens that had to be computed (first arrival of a
	// prefix, or reuse after eviction). Both are zero without sharing.
	PrefixCacheHitTokens  int
	PrefixCacheMissTokens int
	// EvictedBlocks counts cached prefix blocks reclaimed under memory
	// pressure.
	EvictedBlocks int
	// SwapOuts / SwapIns count swap-to-host preemption transfers: victims
	// parked in the host swap pool and parked requests restored from it.
	// Both are zero under PreemptRecompute. SwapOuts can exceed SwapIns
	// only when swapped requests were still queued (or dropped) at the end
	// of the run.
	SwapOuts, SwapIns int
	// SwapPoolBlocks is the host swap pool capacity; PeakSwapBlocksInUse
	// its occupancy high-water mark. SwapBlocksAtEnd must be zero whenever
	// Unfinished is zero — a parked copy without a live request is a leak
	// (tests assert this like the device-pool invariant).
	SwapPoolBlocks      int
	PeakSwapBlocksInUse int
	SwapBlocksAtEnd     int
	Requests            []RequestMetrics
	// Sketched marks a report whose latency quantiles come from streaming
	// sketches (Config.QuantileMode == QuantileSketch): Requests is nil
	// and the Quantiles fields are within SketchAlpha relative error of
	// the exact order statistics (Mean additionally tolerates float
	// summation reordering).
	Sketched bool
	// SketchAlpha is the quantile relative-error bound of a sketched
	// report (zero otherwise).
	SketchAlpha float64
	// GoodRequests counts completed requests that met the SLO,
	// GoodOutputTokens sums their output tokens, and
	// CompletedOutputTokens sums output tokens over all completed
	// requests. Filled in both quantile modes (exact reports derive them
	// from Requests), so consumers need not walk the per-request slice.
	GoodRequests          int
	GoodOutputTokens      int
	CompletedOutputTokens int
	// TTFTSketch/TPOTSketch/LatencySketch are the streaming summaries
	// behind a sketched report's quantiles; nil unless Sketched. Exposed
	// so MergeReports can merge them exactly and internal/obs can
	// reconcile against them.
	TTFTSketch    *stats.Sketch
	TPOTSketch    *stats.Sketch
	LatencySketch *stats.Sketch
}

// SLOAttainment returns the fraction of offered requests that completed
// within SLO.
func (r *Report) SLOAttainment() float64 {
	offered := r.Completed + r.Dropped + r.Unfinished
	if offered == 0 {
		return 0
	}
	if r.Sketched {
		return float64(r.GoodRequests) / float64(offered)
	}
	good := 0
	for _, m := range r.Requests {
		if m.SLOMet {
			good++
		}
	}
	return float64(good) / float64(offered)
}

// CostAtSLO prices SLO-compliant serving of the offered load.
type CostAtSLO struct {
	// Replicas is the fleet size needed so the offered request rate fits
	// within the per-replica SLO-compliant completion rate.
	Replicas int
	// FleetHourlyUSD is the rental price of the whole fleet.
	FleetHourlyUSD float64
	// USDPerMTok is dollars per million served output tokens with the
	// SLO-sized fleet.
	USDPerMTok float64
}

// CostAtSLO sizes a replica fleet for the offered load at this report's
// measured per-replica SLO-compliant rate, and prices it per million served
// tokens. hourlyPerReplica is the rental price of one instance.
func (r *Report) CostAtSLO(hourlyPerReplica float64) (*CostAtSLO, error) {
	replicas, err := cloud.ReplicasForRate(r.OfferedRate, r.GoodRequestsPerSec)
	if err != nil {
		return nil, err
	}
	meanOut := 0.0
	if r.Completed > 0 {
		if r.Sketched {
			// Integer token sums stay exact in float64 far past 10⁸
			// requests, so this equals the exact-mode loop bit for bit.
			meanOut = float64(r.CompletedOutputTokens) / float64(r.Completed)
		} else {
			n := 0
			for _, m := range r.Requests {
				meanOut += float64(m.OutputTokens)
				n++
			}
			meanOut /= float64(n)
		}
	}
	offeredTokens := r.OfferedRate * meanOut
	usd, err := cloud.ServingCost(hourlyPerReplica, replicas, offeredTokens)
	if err != nil {
		return nil, err
	}
	return &CostAtSLO{
		Replicas:       replicas,
		FleetHourlyUSD: hourlyPerReplica * float64(replicas),
		USDPerMTok:     usd,
	}, nil
}

// quantiles computes the summary of a sample set.
func quantiles(xs []float64) Quantiles {
	if len(xs) == 0 {
		return Quantiles{}
	}
	return Quantiles{
		Mean: stats.Mean(xs),
		P50:  stats.Percentile(xs, 50),
		P95:  stats.Percentile(xs, 95),
		P99:  stats.Percentile(xs, 99),
	}
}

// sketchQuantiles summarizes a streaming sketch in the report's Quantiles
// shape. The percentile fields are rank-based bucket estimates (within
// the sketch's alpha of the exact order statistic) rather than the exact
// path's interpolated percentiles.
func sketchQuantiles(sk *stats.Sketch) Quantiles {
	if sk == nil || sk.Count() == 0 {
		return Quantiles{}
	}
	return Quantiles{
		Mean: sk.Mean(),
		P50:  sk.Quantile(0.50),
		P95:  sk.Quantile(0.95),
		P99:  sk.Quantile(0.99),
	}
}
