package serve

import (
	"math/rand"
	"testing"
)

func TestBlockManagerAccounting(t *testing.T) {
	// 10 blocks of 16 tokens × 4 bytes/token = 64 bytes/block.
	m, err := NewBlockManager(640, 16, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalBlocks() != 10 || m.FreeBlocks() != 10 {
		t.Fatalf("pool %d/%d, want 10/10", m.FreeBlocks(), m.TotalBlocks())
	}
	if got := m.BlocksFor(1); got != 1 {
		t.Errorf("BlocksFor(1) = %d", got)
	}
	if got := m.BlocksFor(16); got != 1 {
		t.Errorf("BlocksFor(16) = %d", got)
	}
	if got := m.BlocksFor(17); got != 2 {
		t.Errorf("BlocksFor(17) = %d", got)
	}
	if got := m.BlocksFor(0); got != 0 {
		t.Errorf("BlocksFor(0) = %d", got)
	}

	if !m.Grow(1, 40) { // 3 blocks
		t.Fatal("Grow(1, 40) failed with an empty pool")
	}
	if m.InUse() != 3 || m.FreeBlocks() != 7 {
		t.Fatalf("after grow: in-use %d free %d", m.InUse(), m.FreeBlocks())
	}
	if !m.Grow(1, 49) { // 4th block needed past 48 tokens
		t.Fatal("incremental grow failed")
	}
	if m.InUse() != 4 {
		t.Fatalf("in-use %d after incremental grow, want 4", m.InUse())
	}
	if !m.Grow(1, 30) { // shrink request is a no-op, not a free
		t.Fatal("no-op grow failed")
	}
	if m.InUse() != 4 {
		t.Fatalf("no-op grow changed allocation to %d", m.InUse())
	}

	// All-or-nothing: 7 free, ask for 8 more.
	if m.Grow(2, 8*16) {
		t.Fatal("oversized grow succeeded")
	}
	if m.InUse() != 4 || m.Holders() != 1 {
		t.Fatalf("failed grow changed state: in-use %d holders %d", m.InUse(), m.Holders())
	}

	if n := m.Release(1); n != 4 {
		t.Fatalf("released %d blocks, want 4", n)
	}
	if m.InUse() != 0 || m.FreeBlocks() != 10 {
		t.Fatalf("after release: in-use %d free %d", m.InUse(), m.FreeBlocks())
	}
	if m.PeakInUse() != 4 {
		t.Fatalf("peak %d, want 4", m.PeakInUse())
	}
}

func TestPrefixSharingLifecycle(t *testing.T) {
	// 32 blocks of 16 tokens × 4 bytes/token.
	m, err := NewBlockManager(32*64, 16, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	h := prefixHash(7)

	// First acquirer publishes 4 blocks (64 prefix tokens), nothing cached.
	cached, err := m.AcquirePrefix(1, h, 64)
	if err != nil {
		t.Fatal(err)
	}
	if cached != 0 {
		t.Fatalf("first acquire cached %d tokens, want 0", cached)
	}
	if m.SharedTokens(1) != 64 || m.InUse() != 4 {
		t.Fatalf("pins %d tokens, in-use %d", m.SharedTokens(1), m.InUse())
	}
	// A concurrent sharer pins the same blocks but gets no hits — they are
	// not computed yet.
	if cached, _ = m.AcquirePrefix(2, h, 64); cached != 0 {
		t.Fatalf("uncomputed blocks served %d cached tokens", cached)
	}
	if m.InUse() != 4 {
		t.Fatalf("sharer allocated new blocks: in-use %d, want 4", m.InUse())
	}
	m.MarkComputed(1, 64)
	// A later sharer now hits the whole prefix.
	if cached, _ = m.AcquirePrefix(3, h, 64); cached != 64 {
		t.Fatalf("computed prefix served %d cached tokens, want 64", cached)
	}
	if err := m.CheckConservation(); err != nil {
		t.Fatal(err)
	}

	// Private growth counts pinned blocks first: 64 shared + 36 private
	// tokens need 4 + 3 blocks.
	if !m.Grow(1, 100) {
		t.Fatal("grow failed with a near-empty pool")
	}
	if m.InUse() != 7 {
		t.Fatalf("in-use %d after grow, want 7 (4 shared + 3 private)", m.InUse())
	}

	// Releases decrement refcounts; blocks cache only when nobody pins.
	m.Release(1)
	m.Release(2)
	if m.CachedBlocks() != 0 {
		t.Fatalf("blocks cached while request 3 still pins them")
	}
	m.Release(3)
	if m.CachedBlocks() != 4 || m.InUse() != 0 {
		t.Fatalf("cached %d in-use %d after all releases, want 4/0", m.CachedBlocks(), m.InUse())
	}
	// A new arrival hits straight from the cache and revives the blocks.
	if cached, _ = m.AcquirePrefix(9, h, 64); cached != 64 {
		t.Fatalf("cache revival served %d tokens, want 64", cached)
	}
	if m.CachedBlocks() != 0 || m.InUse() != 4 {
		t.Fatalf("revival state: cached %d in-use %d", m.CachedBlocks(), m.InUse())
	}
	if err := m.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixNoSharingAcrossDifferentPrefixes(t *testing.T) {
	m, err := NewBlockManager(64*64, 16, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AcquirePrefix(1, prefixHash(1), 64); err != nil {
		t.Fatal(err)
	}
	m.MarkComputed(1, 64)
	// Same length, different prefix identity: the chained hashes differ at
	// every block index, so nothing may be served from request 1's blocks.
	cached, err := m.AcquirePrefix(2, prefixHash(2), 64)
	if err != nil {
		t.Fatal(err)
	}
	if cached != 0 {
		t.Fatalf("different prefix hit %d cached tokens", cached)
	}
	if m.InUse() != 8 {
		t.Fatalf("in-use %d, want 8 distinct blocks", m.InUse())
	}
	// Same identity, shorter declared prefix: shares the leading blocks only.
	cached, err = m.AcquirePrefix(3, prefixHash(1), 32)
	if err != nil {
		t.Fatal(err)
	}
	if cached != 32 {
		t.Fatalf("leading-block share served %d tokens, want 32", cached)
	}
	if err := m.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixCacheEvictionLeafFirst(t *testing.T) {
	// 8-block pool; publish a 6-block prefix, release it (cached), then
	// demand private blocks that force eviction.
	m, err := NewBlockManager(8*64, 16, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AcquirePrefix(1, prefixHash(5), 96); err != nil {
		t.Fatal(err)
	}
	m.MarkComputed(1, 96)
	m.Release(1)
	if m.CachedBlocks() != 6 || m.FreeBlocks() != 2 {
		t.Fatalf("cached %d free %d, want 6/2", m.CachedBlocks(), m.FreeBlocks())
	}
	// 4 private blocks needed → 2 free + 2 evicted (the deepest two).
	if !m.Grow(2, 64) {
		t.Fatal("grow with evictable cache failed")
	}
	if m.EvictedBlocks() != 2 {
		t.Fatalf("evicted %d blocks, want 2", m.EvictedBlocks())
	}
	// The surviving cache must be the prefix's leading blocks: a sharer of
	// the first 4 blocks still hits them all.
	cached, err := m.AcquirePrefix(3, prefixHash(5), 64)
	if err != nil {
		t.Fatal(err)
	}
	if cached != 64 {
		t.Fatalf("leaf-first eviction broke the chain: %d cached tokens, want 64", cached)
	}
	if err := m.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// Oversized demand with nothing evictable left fails all-or-nothing.
	if m.Grow(4, 16*16) {
		t.Fatal("impossible grow succeeded")
	}
	if err := m.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockRefcountConservationRandomized(t *testing.T) {
	m, err := NewBlockManager(48*64, 16, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	type live struct{ id, prefixLen int }
	var actives []live
	nextID := 0
	for i := 0; i < 4000; i++ {
		switch op := rng.Intn(5); {
		case op == 0 || len(actives) == 0: // new request acquires a prefix
			id := nextID
			nextID++
			group := rng.Intn(4) + 1
			pl := (rng.Intn(6) + 1) * 16
			if _, err := m.AcquirePrefix(id, prefixHash(group), pl); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			actives = append(actives, live{id: id, prefixLen: pl})
		case op == 1: // grow
			r := actives[rng.Intn(len(actives))]
			m.Grow(r.id, r.prefixLen+rng.Intn(128))
		case op == 2: // prefill progress
			r := actives[rng.Intn(len(actives))]
			m.MarkComputed(r.id, rng.Intn(r.prefixLen+1))
		default: // release (preempt/finish)
			k := rng.Intn(len(actives))
			m.Release(actives[k].id)
			actives = append(actives[:k], actives[k+1:]...)
		}
		if err := m.CheckConservation(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	for _, r := range actives {
		m.Release(r.id)
	}
	if err := m.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if m.InUse() != 0 {
		t.Fatalf("blocks still active after releasing everything: %d", m.InUse())
	}
	if m.FreeBlocks()+m.CachedBlocks() != m.TotalBlocks() {
		t.Fatalf("free %d + cached %d != total %d", m.FreeBlocks(), m.CachedBlocks(), m.TotalBlocks())
	}
}

func TestSwapPoolAccounting(t *testing.T) {
	// 10 device blocks, 4 swap blocks; 16 tokens × 4 bytes per block.
	m, err := NewBlockManager(640, 16, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	// SwapOut before the pool is configured must fail (recompute fallback).
	if !m.Grow(1, 40) {
		t.Fatal("grow failed")
	}
	if m.SwapOut(1, 40) {
		t.Fatal("swap-out succeeded with a zero-size pool")
	}
	m.ConfigureSwapPool(4)
	if m.SwapPoolBlocks() != 4 {
		t.Fatalf("pool %d, want 4", m.SwapPoolBlocks())
	}

	// Parking releases device holdings atomically, including shared pins.
	h := prefixHash(3)
	if _, err := m.AcquirePrefix(1, h, 32); err != nil {
		t.Fatal(err)
	}
	m.MarkComputed(1, 32)
	if !m.SwapOut(1, 40) { // 3 swap blocks
		t.Fatal("swap-out rejected with room in the pool")
	}
	if m.SwappedBlocks() != 3 || m.PeakSwapBlocks() != 3 {
		t.Fatalf("swap used/peak %d/%d, want 3/3", m.SwappedBlocks(), m.PeakSwapBlocks())
	}
	if m.InUse() != 0 || m.CachedBlocks() != 2 {
		t.Fatalf("device pool after swap-out: in-use %d cached %d, want 0/2", m.InUse(), m.CachedBlocks())
	}
	if err := m.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// Double-park is rejected; pool exhaustion is all-or-nothing.
	if m.SwapOut(1, 16) {
		t.Fatal("double swap-out accepted")
	}
	if !m.Grow(2, 40) {
		t.Fatal("grow failed")
	}
	if m.SwapOut(2, 40) { // needs 3 more blocks, only 1 free in the pool
		t.Fatal("over-capacity swap-out accepted")
	}
	if m.held[2] != 3 {
		t.Fatalf("failed swap-out changed device holdings: %d", m.held[2])
	}
	// Restore frees the pool; a second restore is a no-op.
	if n := m.SwapIn(1); n != 3 {
		t.Fatalf("swap-in freed %d blocks, want 3", n)
	}
	if n := m.SwapIn(1); n != 0 {
		t.Fatalf("double swap-in freed %d blocks", n)
	}
	if m.SwappedBlocks() != 0 || m.PeakSwapBlocks() != 3 {
		t.Fatalf("swap used/peak %d/%d after restore", m.SwappedBlocks(), m.PeakSwapBlocks())
	}
	if err := m.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockRefcountConservationRandomizedWithSwap(t *testing.T) {
	// The recompute randomized walk, with swap-out/swap-in interleaved:
	// conservation must hold across park/restore/evict/share interleavings.
	m, err := NewBlockManager(48*64, 16, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	m.ConfigureSwapPool(24)
	rng := rand.New(rand.NewSource(7))
	type live struct {
		id, prefixLen int
		swapped       bool
	}
	var actives []live
	nextID := 0
	for i := 0; i < 4000; i++ {
		switch op := rng.Intn(7); {
		case op == 0 || len(actives) == 0:
			id := nextID
			nextID++
			group := rng.Intn(4) + 1
			pl := (rng.Intn(6) + 1) * 16
			if _, err := m.AcquirePrefix(id, prefixHash(group), pl); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			actives = append(actives, live{id: id, prefixLen: pl})
		case op == 1:
			r := actives[rng.Intn(len(actives))]
			if !r.swapped {
				m.Grow(r.id, r.prefixLen+rng.Intn(128))
			}
		case op == 2:
			r := actives[rng.Intn(len(actives))]
			if !r.swapped {
				m.MarkComputed(r.id, rng.Intn(r.prefixLen+1))
			}
		case op == 3: // park
			k := rng.Intn(len(actives))
			if !actives[k].swapped && m.SwapOut(actives[k].id, rng.Intn(160)+1) {
				actives[k].swapped = true
			}
		case op == 4: // restore
			k := rng.Intn(len(actives))
			if actives[k].swapped {
				m.SwapIn(actives[k].id)
				actives[k].swapped = false
			}
		default: // release or drop
			k := rng.Intn(len(actives))
			if actives[k].swapped {
				m.SwapIn(actives[k].id)
			} else {
				m.Release(actives[k].id)
			}
			actives = append(actives[:k], actives[k+1:]...)
		}
		if err := m.CheckConservation(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	for _, r := range actives {
		if r.swapped {
			m.SwapIn(r.id)
		} else {
			m.Release(r.id)
		}
	}
	if err := m.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if m.InUse() != 0 || m.SwappedBlocks() != 0 {
		t.Fatalf("blocks still active after releasing everything: %d device, %d swap",
			m.InUse(), m.SwappedBlocks())
	}
}

func TestBlockManagerRejectsHopelessBudget(t *testing.T) {
	if _, err := NewBlockManager(63, 16, 4, false); err == nil {
		t.Fatal("sub-block budget accepted")
	}
	if _, err := NewBlockManager(1<<20, 0, 4, true); err == nil {
		t.Fatal("zero block size accepted")
	}
}
