package serve

import "testing"

func TestBlockManagerAccounting(t *testing.T) {
	// 10 blocks of 16 tokens × 4 bytes/token = 64 bytes/block.
	m, err := NewBlockManager(640, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalBlocks() != 10 || m.FreeBlocks() != 10 {
		t.Fatalf("pool %d/%d, want 10/10", m.FreeBlocks(), m.TotalBlocks())
	}
	if got := m.BlocksFor(1); got != 1 {
		t.Errorf("BlocksFor(1) = %d", got)
	}
	if got := m.BlocksFor(16); got != 1 {
		t.Errorf("BlocksFor(16) = %d", got)
	}
	if got := m.BlocksFor(17); got != 2 {
		t.Errorf("BlocksFor(17) = %d", got)
	}
	if got := m.BlocksFor(0); got != 0 {
		t.Errorf("BlocksFor(0) = %d", got)
	}

	if !m.Grow(1, 40) { // 3 blocks
		t.Fatal("Grow(1, 40) failed with an empty pool")
	}
	if m.InUse() != 3 || m.FreeBlocks() != 7 {
		t.Fatalf("after grow: in-use %d free %d", m.InUse(), m.FreeBlocks())
	}
	if !m.Grow(1, 49) { // 4th block needed past 48 tokens
		t.Fatal("incremental grow failed")
	}
	if m.InUse() != 4 {
		t.Fatalf("in-use %d after incremental grow, want 4", m.InUse())
	}
	if !m.Grow(1, 30) { // shrink request is a no-op, not a free
		t.Fatal("no-op grow failed")
	}
	if m.InUse() != 4 {
		t.Fatalf("no-op grow changed allocation to %d", m.InUse())
	}

	// All-or-nothing: 7 free, ask for 8 more.
	if m.Grow(2, 8*16) {
		t.Fatal("oversized grow succeeded")
	}
	if m.InUse() != 4 || m.Holders() != 1 {
		t.Fatalf("failed grow changed state: in-use %d holders %d", m.InUse(), m.Holders())
	}

	if n := m.Release(1); n != 4 {
		t.Fatalf("released %d blocks, want 4", n)
	}
	if m.InUse() != 0 || m.FreeBlocks() != 10 {
		t.Fatalf("after release: in-use %d free %d", m.InUse(), m.FreeBlocks())
	}
	if m.PeakInUse() != 4 {
		t.Fatalf("peak %d, want 4", m.PeakInUse())
	}
}

func TestBlockManagerRejectsHopelessBudget(t *testing.T) {
	if _, err := NewBlockManager(63, 16, 4); err == nil {
		t.Fatal("sub-block budget accepted")
	}
	if _, err := NewBlockManager(1<<20, 0, 4); err == nil {
		t.Fatal("zero block size accepted")
	}
}
