package serve

import (
	"fmt"
	"strings"
)

// PreemptPolicy selects what happens to a sequence's KV cache when the
// scheduler preempts it under pool exhaustion.
type PreemptPolicy int

const (
	// PreemptRecompute releases the victim's blocks and re-prefills its
	// whole context on re-admission (vLLM's default). Cheap on platforms
	// with fast prefill compute, expensive where prefill is slow.
	PreemptRecompute PreemptPolicy = iota
	// PreemptSwap copies the victim's computed KV entries into a bounded
	// host swap pool at the backend's swap bandwidth and copies them back
	// on re-admission instead of recomputing. Falls back to recompute when
	// the pool is full (or the victim has no computed entries yet).
	PreemptSwap
	// PreemptAuto picks, per preemption, whichever of swap and recompute
	// the memoized cost model estimates cheaper for the victim's context —
	// swap wins on CPU TEEs and long contexts (memcpy beats slow prefill),
	// recompute wins on cGPU short contexts (bounce-buffer bandwidth
	// dominates).
	PreemptAuto
)

// String names the policy as the CLI spells it.
func (p PreemptPolicy) String() string {
	switch p {
	case PreemptRecompute:
		return "recompute"
	case PreemptSwap:
		return "swap"
	case PreemptAuto:
		return "auto"
	}
	return fmt.Sprintf("PreemptPolicy(%d)", int(p))
}

// ParsePreemptPolicy resolves a CLI policy name.
func ParsePreemptPolicy(s string) (PreemptPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "recompute", "":
		return PreemptRecompute, nil
	case "swap":
		return PreemptSwap, nil
	case "auto":
		return PreemptAuto, nil
	}
	return 0, fmt.Errorf("serve: unknown preemption policy %q (recompute|swap|auto)", s)
}
