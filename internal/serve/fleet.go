package serve

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"cllm/internal/cloud"
	"cllm/internal/par"
	"cllm/internal/sim"
	"cllm/internal/stats"
)

// LBPolicy selects how a fleet's load balancer dispatches arrivals to
// replicas.
type LBPolicy int

const (
	// RoundRobin dispatches arrivals to replicas in rotation.
	RoundRobin LBPolicy = iota
	// LeastLoaded dispatches each arrival to the replica with the fewest
	// outstanding (queued + running) requests at arrival time.
	LeastLoaded
	// PrefixAffinity routes requests that declare a shared prefix to the
	// replica owning that prefix (hash of the prefix identity), so one
	// replica's prefix cache serves the whole group. To avoid hash skew
	// starving the fleet, a request whose home replica is badly overloaded
	// relative to the least-loaded one is dispatched least-loaded instead
	// (cache-aware routing with a load guard, as production routers do).
	// Requests without a prefix always go least-loaded. Only useful with
	// Config.PrefixSharing on.
	PrefixAffinity
)

// affinityOverloadSlack is how many outstanding requests beyond twice the
// fleet minimum a prefix's home replica may hold before prefix-affinity
// dispatch abandons cache locality for load balance.
const affinityOverloadSlack = 4

// String names the policy as the CLI spells it.
func (p LBPolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case PrefixAffinity:
		return "prefix-affinity"
	}
	return fmt.Sprintf("LBPolicy(%d)", int(p))
}

// ParseLBPolicy resolves a CLI policy name.
func ParseLBPolicy(s string) (LBPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "round-robin", "rr", "":
		return RoundRobin, nil
	case "least-loaded", "ll":
		return LeastLoaded, nil
	case "prefix-affinity", "affinity", "pa":
		return PrefixAffinity, nil
	}
	return 0, fmt.Errorf("serve: unknown load-balancing policy %q (round-robin|least-loaded|prefix-affinity)", s)
}

// FleetConfig describes a multi-replica deployment: N identical replicas
// of the backend behind a load balancer.
type FleetConfig struct {
	// Replicas is the fleet size (default 1).
	Replicas int
	// Policy is the dispatch policy (default RoundRobin).
	Policy LBPolicy
}

// FleetReport is the outcome of one fleet simulation: the aggregate view
// the operator sees plus each replica's own report.
type FleetReport struct {
	// Policy is the dispatch policy's name.
	Policy string
	// Aggregate merges all replicas: counters are summed, quantiles are
	// computed over the union of completed requests, and KV/prefix-cache
	// figures are fleet totals (peak block usage sums per-replica peaks,
	// which may occur at different times).
	Aggregate *Report
	// PerReplica holds each replica's own report, indexed by replica.
	PerReplica []*Report
	// Dispatch counts arrivals routed to each replica.
	Dispatch []int
}

// SLOAttainment returns the fleet-wide fraction of offered requests served
// within SLO.
func (f *FleetReport) SLOAttainment() float64 { return f.Aggregate.SLOAttainment() }

// CostPerMTok prices the simulated fleet directly: all replicas are rented
// for the whole run while only SLO-compliant tokens count as served. This
// replaces the single-replica extrapolation (Report.CostAtSLO) with a
// simulated fleet — queueing interactions between replicas and the load
// balancer are in the number, not assumed away.
func (f *FleetReport) CostPerMTok(hourlyPerReplica float64) (float64, error) {
	return cloud.FleetCostPerMTok(hourlyPerReplica, len(f.PerReplica), f.Aggregate.GoodputTokensPerSec)
}

// RunFleet simulates cfg's offered load against a fleet of identical
// replicas sharing one simulated clock: the load balancer dispatches each
// arrival to a replica per fc.Policy, and every replica runs its own
// continuous-batching scheduler, KV pool and noise stream. The offered
// rate is the fleet rate — fc.Replicas divides it implicitly through
// dispatch, not by pre-splitting the trace.
func RunFleet(be Backend, cfg Config, fc FleetConfig) (*FleetReport, error) {
	if fc.Replicas <= 0 {
		fc.Replicas = 1
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if !be.IsGPU && be.CPU.Sockets <= 0 {
		be.CPU.Sockets = 1
	}
	if be.Coster == nil {
		// All replicas run the same backend and model: share one costing
		// table so an iteration shape costed on one replica is a table hit
		// on every other.
		coster, err := NewStepCoster(be, cfg)
		if err != nil {
			return nil, err
		}
		be.Coster = coster
	}
	eng := sim.NewEngine()
	reps := make([]*scheduler, fc.Replicas)
	for i := range reps {
		s, err := newScheduler(be, cfg, eng, newNoise(be, cfg.Seed+int64(i)*7919+1))
		if err != nil {
			return nil, err
		}
		s.replica = i // label observer events with the fleet index
		reps[i] = s
	}
	arrivals, err := genArrivals(cfg, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}

	dispatch := make([]int, fc.Replicas)
	perReplica := make([][]*reqState, fc.Replicas)
	rr := 0
	leastLoaded := func() (int, int) {
		// Fewest outstanding requests among servable replicas, lowest index
		// on ties (deterministic). Crashed replicas are skipped — the
		// balancer sees the failure — unless the whole fleet is down, in
		// which case arrivals queue on the least-loaded replica anyway and
		// wait out its recovery. Without fault injection no replica is ever
		// down, so dispatch is byte-identical to prior releases.
		best, load := -1, 0
		for i := 0; i < fc.Replicas; i++ {
			if reps[i].down {
				continue
			}
			if l := reps[i].outstanding(); best < 0 || l < load {
				best, load = i, l
			}
		}
		if best < 0 {
			best, load = 0, reps[0].outstanding()
			for i := 1; i < fc.Replicas; i++ {
				if l := reps[i].outstanding(); l < load {
					best, load = i, l
				}
			}
		}
		return best, load
	}
	pick := func(req Request) int {
		switch fc.Policy {
		case RoundRobin:
			i := rr % fc.Replicas
			rr++
			if reps[i].down {
				// Failover: route past the crashed replica without
				// disturbing the survivors' rotation order.
				for j := 1; j < fc.Replicas; j++ {
					if cand := (i + j) % fc.Replicas; !reps[cand].down {
						return cand
					}
				}
			}
			return i
		case PrefixAffinity:
			if req.PrefixID != 0 {
				home := int(prefixHash(req.PrefixID) % uint64(fc.Replicas))
				best, load := leastLoaded()
				if !reps[home].down && reps[home].outstanding() <= 2*load+affinityOverloadSlack {
					return home
				}
				return best
			}
		}
		best, _ := leastLoaded()
		return best
	}

	lastArrival := 0.0
	for _, req := range arrivals {
		req := req
		st := &reqState{req: req}
		if req.ArrivalSec > lastArrival {
			lastArrival = req.ArrivalSec
		}
		eng.Schedule(sim.Time(req.ArrivalSec), func(*sim.Engine) {
			i := pick(req)
			dispatch[i]++
			perReplica[i] = append(perReplica[i], st)
			reps[i].submit(st)
		})
	}
	horizon := sim.Time(lastArrival + cfg.HorizonSec)
	if _, err := eng.RunUntil(horizon, cfg.MaxSteps); err != nil {
		return nil, err
	}

	out := &FleetReport{
		Policy:     fc.Policy.String(),
		PerReplica: make([]*Report, fc.Replicas),
		Dispatch:   dispatch,
	}
	for i, s := range reps {
		if s.err != nil {
			return nil, s.err
		}
		if cfg.QuantileMode == QuantileSketch {
			out.PerReplica[i] = s.reportSketched(perReplica[i])
		} else {
			out.PerReplica[i] = s.report(perReplica[i])
		}
	}
	out.Aggregate = MergeReports(offeredRate(cfg), out.PerReplica)
	// Each replica's offered load is its dispatch share of the fleet rate,
	// not the whole fleet rate the scheduler config carries.
	if n := len(arrivals); n > 0 {
		for i, r := range out.PerReplica {
			r.OfferedRate = out.Aggregate.OfferedRate * float64(dispatch[i]) / float64(n)
		}
	}
	return out, nil
}

// OfferedRate is the rate label of a (normalized) config: an explicit
// trace's measured rate when one is given, otherwise the configured (or
// scenario-derived) rate. External control loops label their merged
// reports with it.
func (c Config) OfferedRate() float64 { return offeredRate(c) }

// offeredRate is the rate label of a run: an explicit trace's measured
// rate when one is given, otherwise the configured (or scenario-derived)
// Poisson rate.
func offeredRate(cfg Config) float64 {
	if len(cfg.Trace) > 0 {
		span := 0.0
		for _, r := range cfg.Trace {
			if r.ArrivalSec > span {
				span = r.ArrivalSec
			}
		}
		if span > 0 {
			return float64(len(cfg.Trace)) / span
		}
	}
	return cfg.Rate
}

// MergeReports builds a deployment-wide aggregate from per-replica
// reports: counters are summed, quantiles are recomputed over the union of
// completed requests, the makespan is the maximum, and throughput figures
// are rederived from the merged totals. offeredRate labels the aggregate.
// RunFleet uses it for homogeneous fleets; internal/autoscale for elastic
// heterogeneous ones.
//
// When any input report is sketched, the aggregate is sketched too:
// per-replica sketches merge exactly (bucket counts are integers, so the
// merged quantiles equal a single sketch over the union stream), and any
// exact reports in the mix fold their per-request samples into the merged
// sketches. Sketched inputs must share one alpha — replicas of one run
// always do, and mixing sketches of different resolutions is a caller bug
// with no lossless repair, so it panics.
func MergeReports(offeredRate float64, reps []*Report) *Report {
	agg := &Report{OfferedRate: offeredRate}
	for _, r := range reps {
		if r.Sketched {
			agg.Sketched = true
			agg.SketchAlpha = r.SketchAlpha
			break
		}
	}
	var ttfts, tpots, lats []float64
	if agg.Sketched {
		mk := func() *stats.Sketch {
			sk, err := stats.NewSketch(agg.SketchAlpha)
			if err != nil {
				panic(err) // alpha came from a validated config
			}
			return sk
		}
		agg.TTFTSketch, agg.TPOTSketch, agg.LatencySketch = mk(), mk(), mk()
	}
	mergeSk := func(dst, src *stats.Sketch) {
		if src == nil || src.Count() == 0 {
			return
		}
		if err := dst.Merge(src); err != nil {
			panic(fmt.Sprintf("serve: MergeReports over mismatched sketches: %v", err))
		}
	}
	for _, r := range reps {
		switch agg.Platform {
		case "", r.Platform:
			agg.Platform = r.Platform
		default:
			agg.Platform = "mixed" // heterogeneous deployment
		}
		agg.Completed += r.Completed
		agg.Dropped += r.Dropped
		agg.Unfinished += r.Unfinished
		agg.Preemptions += r.Preemptions
		agg.TotalTokens += r.TotalTokens
		agg.KVBlocksTotal += r.KVBlocksTotal
		agg.PeakKVBlocksInUse += r.PeakKVBlocksInUse
		agg.KVBlocksInUseAtEnd += r.KVBlocksInUseAtEnd
		agg.KVBlocksCachedAtEnd += r.KVBlocksCachedAtEnd
		agg.PrefixCacheHitTokens += r.PrefixCacheHitTokens
		agg.PrefixCacheMissTokens += r.PrefixCacheMissTokens
		agg.EvictedBlocks += r.EvictedBlocks
		agg.SwapOuts += r.SwapOuts
		agg.SwapIns += r.SwapIns
		agg.SwapPoolBlocks += r.SwapPoolBlocks
		agg.PeakSwapBlocksInUse += r.PeakSwapBlocksInUse
		agg.SwapBlocksAtEnd += r.SwapBlocksAtEnd
		for i, n := range r.DroppedByReason {
			agg.DroppedByReason[i] += n
		}
		agg.Sheds += r.Sheds
		agg.Retries += r.Retries
		agg.Crashes += r.Crashes
		agg.DowntimeSec += r.DowntimeSec
		for i, n := range r.CompletedByClass {
			agg.CompletedByClass[i] += n
		}
		for i, n := range r.GoodTokensByClass {
			agg.GoodTokensByClass[i] += n
		}
		if r.MakespanSec > agg.MakespanSec {
			agg.MakespanSec = r.MakespanSec
		}
		if r.Sketched {
			// Sketched reports carry no Requests; their good/completed
			// counters are authoritative.
			agg.GoodRequests += r.GoodRequests
			agg.GoodOutputTokens += r.GoodOutputTokens
			agg.CompletedOutputTokens += r.CompletedOutputTokens
			mergeSk(agg.TTFTSketch, r.TTFTSketch)
			mergeSk(agg.TPOTSketch, r.TPOTSketch)
			mergeSk(agg.LatencySketch, r.LatencySketch)
			continue
		}
		// Exact report: rederive goodput from the per-request ledger (the
		// counter fields may be unset on hand-built or pre-sketch reports).
		for _, m := range r.Requests {
			agg.CompletedOutputTokens += m.OutputTokens
			if m.SLOMet {
				agg.GoodRequests++
				agg.GoodOutputTokens += m.OutputTokens
			}
			if agg.Sketched {
				_ = agg.TTFTSketch.Add(m.TTFT)
				_ = agg.LatencySketch.Add(m.Latency)
				if m.OutputTokens > 1 {
					_ = agg.TPOTSketch.Add(m.TPOT)
				}
				continue
			}
			agg.Requests = append(agg.Requests, m)
			ttfts = append(ttfts, m.TTFT)
			lats = append(lats, m.Latency)
			if m.OutputTokens > 1 {
				tpots = append(tpots, m.TPOT)
			}
		}
	}
	if agg.MakespanSec > 0 {
		agg.TokensPerSec = float64(agg.TotalTokens) / agg.MakespanSec
		agg.GoodputTokensPerSec = float64(agg.GoodOutputTokens) / agg.MakespanSec
		agg.GoodRequestsPerSec = float64(agg.GoodRequests) / agg.MakespanSec
	}
	if agg.Sketched {
		agg.TTFT = sketchQuantiles(agg.TTFTSketch)
		agg.TPOT = sketchQuantiles(agg.TPOTSketch)
		agg.Latency = sketchQuantiles(agg.LatencySketch)
	} else {
		agg.TTFT = quantiles(ttfts)
		agg.TPOT = quantiles(tpots)
		agg.Latency = quantiles(lats)
	}
	return agg
}

// SizeFleetForSLO finds the smallest fleet (1..maxReplicas) whose simulated
// SLO attainment reaches target, returning the size and that fleet's
// report. This answers the sizing question by simulation — replica
// interference, dispatch skew and prefix-cache locality included — where
// cloud.ReplicasForRate only extrapolates from one replica's rate. It
// fails if even maxReplicas cannot reach the target. It evaluates
// candidates serially; SizeFleetForSLOParallel spreads them over a worker
// pool with a byte-identical result.
func SizeFleetForSLO(be Backend, cfg Config, policy LBPolicy, target float64, maxReplicas int) (int, *FleetReport, error) {
	return SizeFleetForSLOParallel(be, cfg, policy, target, maxReplicas, 1)
}

// SizeFleetForSLOParallel is SizeFleetForSLO evaluating candidate fleet
// sizes on up to workers concurrent goroutines (workers <= 0 means
// runtime.NumCPU(); 1 is the serial path).
//
// Attainment is treated as monotone in the fleet size (more replicas never
// hurt a load-balanced fleet), so the search probes exponentially
// (1, 2, 4, ...) until a passing size brackets the answer, then binary
// searches the bracket — O(log maxReplicas) simulations instead of the
// linear scan. Parallelism only *prefetches*: candidate runs are memoized
// and the serial search logic replays over the memo, so the chosen size,
// the returned report and any error are byte-identical to workers=1 —
// every candidate simulation is independently seeded from cfg.Seed and
// RunFleet is deterministic. The speculative ladder and bracket interior
// cost extra simulations but collapse the sweep's wall clock to about two
// waves; all candidates share one memoized step-costing table, so most of
// each speculative run's iteration shapes are table hits.
func SizeFleetForSLOParallel(be Backend, cfg Config, policy LBPolicy, target float64, maxReplicas, workers int) (int, *FleetReport, error) {
	if target <= 0 || target > 1 {
		return 0, nil, fmt.Errorf("serve: SLO attainment target %g outside (0, 1]", target)
	}
	if maxReplicas <= 0 {
		maxReplicas = 16
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	// Do NOT normalize cfg here: each RunFleet candidate normalizes its own
	// copy, and normalizing twice is not idempotent for sentinel values
	// (LengthJitter < 0 means "disabled", which one pass maps to 0 and a
	// second pass would map to the 0.25 default). NewStepCoster needs only
	// the model/datatype/bucket fields, which normalization never touches.
	if be.Coster == nil {
		coster, err := NewStepCoster(be, cfg)
		if err != nil {
			return 0, nil, err
		}
		be.Coster = coster
	}
	ev := &fleetEvaluator{be: be, cfg: cfg, policy: policy, workers: workers, memo: map[int]sizeOutcome{}}

	// Exponential probe ladder: first passing size, doubling up to
	// maxReplicas. The whole ladder is speculated concurrently; the serial
	// consumption below decides bracket and errors exactly as workers=1.
	ladder := make([]int, 0, 8)
	for n := 1; ; n *= 2 {
		if n > maxReplicas {
			n = maxReplicas
		}
		ladder = append(ladder, n)
		if n == maxReplicas {
			break
		}
	}
	ev.prefetch(ladder)
	lo, hi := 0, 0 // largest known-failing, smallest known-passing
	for _, n := range ladder {
		rep, err := ev.eval(n)
		if err != nil {
			return 0, nil, err
		}
		if rep.SLOAttainment() >= target {
			hi = n
			break
		}
		lo = n
		if n == maxReplicas {
			return 0, nil, fmt.Errorf("serve: even %d replicas miss %.0f%% SLO attainment", maxReplicas, target*100)
		}
	}

	// Binary search (lo, hi]: lo fails, hi passes. Speculate the top levels
	// of the midpoint tree — every candidate the search can reach in its
	// first few probes — but never more than ~2×workers of them: the search
	// only visits O(log(hi-lo)) sizes, so flooding the whole interior would
	// burn far more simulations than the serial path for wide brackets.
	if hi-lo > 2 && workers > 1 {
		type bracket struct{ lo, hi int }
		frontier := []bracket{{lo, hi}}
		var cands []int
		for len(frontier) > 0 && len(cands) < 2*workers {
			next := frontier[:0:0]
			for _, b := range frontier {
				if b.hi-b.lo <= 1 {
					continue
				}
				mid := b.lo + (b.hi-b.lo)/2
				cands = append(cands, mid)
				next = append(next, bracket{b.lo, mid}, bracket{mid, b.hi})
			}
			frontier = next
		}
		ev.prefetch(cands)
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		rep, err := ev.eval(mid)
		if err != nil {
			return 0, nil, err
		}
		if rep.SLOAttainment() >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	rep, err := ev.eval(hi)
	if err != nil {
		return 0, nil, err
	}
	return hi, rep, nil
}

// sizeOutcome is one memoized candidate evaluation.
type sizeOutcome struct {
	rep *FleetReport
	err error
}

// fleetEvaluator memoizes RunFleet per candidate size so the search logic
// can replay serially over results computed in any (possibly concurrent)
// order.
type fleetEvaluator struct {
	be      Backend
	cfg     Config
	policy  LBPolicy
	workers int

	mu   sync.Mutex
	memo map[int]sizeOutcome
}

func (e *fleetEvaluator) run(n int) sizeOutcome {
	rep, err := RunFleet(e.be, e.cfg, FleetConfig{Replicas: n, Policy: e.policy})
	return sizeOutcome{rep: rep, err: err}
}

// eval returns the candidate's outcome, computing it on demand.
func (e *fleetEvaluator) eval(n int) (*FleetReport, error) {
	e.mu.Lock()
	out, ok := e.memo[n]
	e.mu.Unlock()
	if !ok {
		out = e.run(n)
		e.mu.Lock()
		e.memo[n] = out
		e.mu.Unlock()
	}
	return out.rep, out.err
}

// prefetch speculatively evaluates candidates on the worker pool. A no-op
// when serial — the lazy eval path then matches the classic algorithm's
// work exactly. First store wins on a racing duplicate; both goroutines
// compute identical outcomes, so the choice is immaterial.
func (e *fleetEvaluator) prefetch(ns []int) {
	if e.workers <= 1 {
		return
	}
	_ = par.For(e.workers, len(ns), func(j int) error {
		n := ns[j]
		e.mu.Lock()
		_, done := e.memo[n]
		e.mu.Unlock()
		if done {
			return nil
		}
		out := e.run(n)
		e.mu.Lock()
		if _, done := e.memo[n]; !done {
			e.memo[n] = out
		}
		e.mu.Unlock()
		return nil
	})
}
