package serve

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"cllm/internal/cloud"
	"cllm/internal/par"
	"cllm/internal/sim"
	"cllm/internal/stats"
)

// LBPolicy selects how a fleet's load balancer dispatches arrivals to
// replicas.
type LBPolicy int

const (
	// RoundRobin dispatches arrivals to replicas in rotation.
	RoundRobin LBPolicy = iota
	// LeastLoaded dispatches each arrival to the replica with the fewest
	// outstanding (queued + running) requests at arrival time.
	LeastLoaded
	// PrefixAffinity routes requests that declare a shared prefix to the
	// replica owning that prefix (hash of the prefix identity), so one
	// replica's prefix cache serves the whole group. To avoid hash skew
	// starving the fleet, a request whose home replica is badly overloaded
	// relative to the least-loaded one is dispatched least-loaded instead
	// (cache-aware routing with a load guard, as production routers do).
	// Requests without a prefix always go least-loaded. Only useful with
	// Config.PrefixSharing on.
	PrefixAffinity
)

// affinityOverloadSlack is how many outstanding requests beyond twice the
// fleet minimum a prefix's home replica may hold before prefix-affinity
// dispatch abandons cache locality for load balance.
const affinityOverloadSlack = 4

// String names the policy as the CLI spells it.
func (p LBPolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case LeastLoaded:
		return "least-loaded"
	case PrefixAffinity:
		return "prefix-affinity"
	}
	return fmt.Sprintf("LBPolicy(%d)", int(p))
}

// ParseLBPolicy resolves a CLI policy name.
func ParseLBPolicy(s string) (LBPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "round-robin", "rr", "":
		return RoundRobin, nil
	case "least-loaded", "ll":
		return LeastLoaded, nil
	case "prefix-affinity", "affinity", "pa":
		return PrefixAffinity, nil
	}
	return 0, fmt.Errorf("serve: unknown load-balancing policy %q (round-robin|least-loaded|prefix-affinity)", s)
}

// FleetConfig describes a multi-replica deployment: N identical replicas
// of the backend behind a load balancer.
type FleetConfig struct {
	// Replicas is the fleet size (default 1).
	Replicas int
	// Policy is the dispatch policy (default RoundRobin).
	Policy LBPolicy
}

// FleetReport is the outcome of one fleet simulation: the aggregate view
// the operator sees plus each replica's own report.
type FleetReport struct {
	// Policy is the dispatch policy's name. Disaggregated topologies show
	// both stages' policies as "prefill→decode".
	Policy string
	// Topology is the role-group layout in -topology syntax; empty for a
	// classic unified fleet.
	Topology string
	// Aggregate merges all replicas: counters are summed, quantiles are
	// computed over the union of completed requests, and KV/prefix-cache
	// figures are fleet totals (peak block usage sums per-replica peaks,
	// which may occur at different times).
	Aggregate *Report
	// PerReplica holds each replica's own report, indexed by replica. In a
	// disaggregated topology each request's terminal outcome is reported
	// by the prefill replica its arrival was dispatched to (the replica
	// that owns its observer stream); decode replicas report zero
	// requests but carry their own round/KV/handoff counters.
	PerReplica []*Report
	// Roles labels each replica with its role name, parallel to
	// PerReplica.
	Roles []string
	// Dispatch counts arrivals routed to each replica (always zero for
	// decode-role replicas, which only admit handoffs — see
	// Report.HandoffsIn for their intake).
	Dispatch []int
}

// SLOAttainment returns the fleet-wide fraction of offered requests served
// within SLO.
func (f *FleetReport) SLOAttainment() float64 { return f.Aggregate.SLOAttainment() }

// CostPerMTok prices the simulated fleet directly: all replicas are rented
// for the whole run while only SLO-compliant tokens count as served. This
// replaces the single-replica extrapolation (Report.CostAtSLO) with a
// simulated fleet — queueing interactions between replicas and the load
// balancer are in the number, not assumed away.
func (f *FleetReport) CostPerMTok(hourlyPerReplica float64) (float64, error) {
	return cloud.FleetCostPerMTok(hourlyPerReplica, len(f.PerReplica), f.Aggregate.GoodputTokensPerSec)
}

// CostPerMTokTotal prices a heterogeneous fleet — a disaggregated topology
// mixing platforms with different rental rates — from its total hourly
// rent: the whole fleet is rented for the whole run while only
// SLO-compliant tokens count as served.
func (f *FleetReport) CostPerMTokTotal(totalHourlyUSD float64) (float64, error) {
	return cloud.FleetCostPerMTok(totalHourlyUSD, 1, f.Aggregate.GoodputTokensPerSec)
}

// RunFleet simulates cfg's offered load against a fleet of identical
// replicas sharing one simulated clock: the load balancer dispatches each
// arrival to a replica per fc.Policy, and every replica runs its own
// continuous-batching scheduler, KV pool and noise stream. The offered
// rate is the fleet rate — fc.Replicas divides it implicitly through
// dispatch, not by pre-splitting the trace. It is a thin wrapper over the
// one-group unified topology: NewFleet(Unified(be, fc)).Run(cfg), with
// byte-identical output.
func RunFleet(be Backend, cfg Config, fc FleetConfig) (*FleetReport, error) {
	f, err := NewFleet(Unified(be, fc))
	if err != nil {
		return nil, err
	}
	return f.Run(cfg)
}

// fleetTestHook, when non-nil, observes a fleet's schedulers after the
// engine drains and before reports are assembled. White-box tests assert
// cross-role invariants here (KV-block conservation over the handoff
// edge); nil in production, so the hook costs one predictable branch.
var fleetTestHook func(reps []*scheduler, roles []Role)

// buildReplica is the single scheduler-construction path for every
// multi-replica deployment: Fleet.Run's role groups, the exported Replica
// handle internal/autoscale composes elastic fleets from, and (through
// RunFleet) SizeFleetForSLO's candidates. cfg must already be normalized;
// be passes by value, so the socket defaulting stays local.
func buildReplica(be Backend, cfg Config, eng *sim.Engine, seed int64) (*scheduler, error) {
	if !be.IsGPU && be.CPU.Sockets <= 0 {
		be.CPU.Sockets = 1
	}
	return newScheduler(be, cfg, eng, newNoise(be, seed))
}

// stageLB dispatches requests across one stage's replicas — the arrival
// stage (unified or prefill replicas) or the decode stage of a
// disaggregated topology. Indices are positions within reps; idx maps
// them back to global fleet indices.
type stageLB struct {
	reps   []*scheduler
	idx    []int
	policy LBPolicy
	rr     int
}

// leastLoaded returns the stage position with the fewest outstanding
// requests among servable replicas, lowest position on ties
// (deterministic). Crashed replicas are skipped — the balancer sees the
// failure — unless the whole stage is down, in which case arrivals queue
// on the least-loaded replica anyway and wait out its recovery. Without
// fault injection no replica is ever down, so dispatch is byte-identical
// to prior releases.
func (d *stageLB) leastLoaded() (int, int) {
	best, load := -1, 0
	for i := range d.reps {
		if d.reps[i].down {
			continue
		}
		if l := d.reps[i].outstanding(); best < 0 || l < load {
			best, load = i, l
		}
	}
	if best < 0 {
		best, load = 0, d.reps[0].outstanding()
		for i := 1; i < len(d.reps); i++ {
			if l := d.reps[i].outstanding(); l < load {
				best, load = i, l
			}
		}
	}
	return best, load
}

// pick chooses the stage position for one request per the stage policy.
func (d *stageLB) pick(req Request) int {
	n := len(d.reps)
	switch d.policy {
	case RoundRobin:
		i := d.rr % n
		d.rr++
		if d.reps[i].down {
			// Failover: route past the crashed replica without
			// disturbing the survivors' rotation order.
			for j := 1; j < n; j++ {
				if cand := (i + j) % n; !d.reps[cand].down {
					return cand
				}
			}
		}
		return i
	case PrefixAffinity:
		if req.PrefixID != 0 {
			home := int(prefixHash(req.PrefixID) % uint64(n))
			best, load := d.leastLoaded()
			if !d.reps[home].down && d.reps[home].outstanding() <= 2*load+affinityOverloadSlack {
				return home
			}
			return best
		}
	}
	best, _ := d.leastLoaded()
	return best
}

// Run simulates cfg's offered load against the fleet topology on one
// shared simulated clock. Unified topologies behave exactly as RunFleet
// always has. Disaggregated topologies route every arrival to a
// prefill-role replica; after its first token the request's KV cache is
// handed off — drain at the source's swap bandwidth, a NIC transfer, and
// ingest on a decode-role replica that admits it with the cache already
// computed (see handoff.go for the pricing). Fault injection and
// non-FIFO admission are not supported across the handoff edge yet and
// are rejected for disaggregated topologies.
func (f *Fleet) Run(cfg Config) (*FleetReport, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	// Work on a copy of the groups: socket defaulting and coster building
	// mutate the backends, and the fleet may be re-run.
	groups := append([]RoleGroup(nil), f.topo.Groups...)
	disagg := f.topo.Disaggregated()
	if disagg {
		if cfg.Faults.MTBFSec > 0 || len(cfg.Faults.Plan) > 0 {
			return nil, fmt.Errorf("serve: fault injection is not supported with disaggregated topologies (a crash would strand in-flight handoffs)")
		}
		if cfg.Faults.Admission != AdmitFIFO {
			return nil, fmt.Errorf("serve: admission policy %v is not supported with disaggregated topologies (deadlines do not survive the handoff edge)", cfg.Faults.Admission)
		}
	}
	for i := range groups {
		g := &groups[i]
		if !g.Backend.IsGPU && g.Backend.CPU.Sockets <= 0 {
			g.Backend.CPU.Sockets = 1
		}
		if g.Backend.Coster == nil {
			// All replicas of a group run the same backend and model: share
			// one costing table so an iteration shape costed on one replica
			// is a table hit on every other.
			coster, err := NewStepCoster(g.Backend, cfg)
			if err != nil {
				return nil, err
			}
			g.Backend.Coster = coster
		}
	}
	eng := sim.NewEngine()
	total := f.topo.Replicas()
	reps := make([]*scheduler, 0, total)
	roles := make([]Role, 0, total)
	for _, g := range groups {
		for k := 0; k < g.Replicas; k++ {
			i := len(reps)
			s, err := buildReplica(g.Backend, cfg, eng, cfg.Seed+int64(i)*7919+1)
			if err != nil {
				return nil, err
			}
			s.replica = i // label observer events with the fleet index
			reps = append(reps, s)
			roles = append(roles, g.Role)
		}
	}
	arrivals, err := genArrivals(cfg, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}

	// Stage dispatchers: arrivals go to the front stage (every replica of
	// a unified fleet, the prefill replicas of a disaggregated one);
	// handoffs go to the decode stage.
	front := &stageLB{}
	decode := &stageLB{}
	for _, g := range groups {
		switch g.Role {
		case RoleUnified, RolePrefill:
			front.policy = g.Policy
		case RoleDecode:
			decode.policy = g.Policy
		}
	}
	for i, s := range reps {
		switch roles[i] {
		case RoleUnified, RolePrefill:
			front.reps = append(front.reps, s)
			front.idx = append(front.idx, i)
		case RoleDecode:
			decode.reps = append(decode.reps, s)
			decode.idx = append(decode.idx, i)
		}
	}

	dispatch := make([]int, total)
	perReplica := make([][]*reqState, total)
	var hd *handoffDispatcher
	if disagg {
		hd = &handoffDispatcher{eng: eng, stage: decode}
		for i, s := range reps {
			switch roles[i] {
			case RolePrefill:
				src := s
				src.handoff = func(r *reqState) { hd.initiate(src, r) }
			case RoleDecode:
				// Decode replicas always stage inbound KV copies in the host
				// swap pool, whatever the preemption policy: size it to the
				// device pool if the config left it smaller. (SwapPoolFrac's
				// negative "disabled" sentinel still governs preemption
				// swaps on unified and prefill replicas.)
				if s.kv.SwapPoolBlocks() < s.kv.TotalBlocks() {
					s.kv.ConfigureSwapPool(s.kv.TotalBlocks())
				}
			}
		}
	}

	lastArrival := 0.0
	for _, req := range arrivals {
		req := req
		st := &reqState{req: req}
		if req.ArrivalSec > lastArrival {
			lastArrival = req.ArrivalSec
		}
		eng.Schedule(sim.Time(req.ArrivalSec), func(*sim.Engine) {
			j := front.pick(req)
			i := front.idx[j]
			dispatch[i]++
			perReplica[i] = append(perReplica[i], st)
			front.reps[j].submit(st)
		})
	}
	horizon := sim.Time(lastArrival + cfg.HorizonSec)
	if _, err := eng.RunUntil(horizon, cfg.MaxSteps); err != nil {
		return nil, err
	}
	if fleetTestHook != nil {
		fleetTestHook(reps, roles)
	}

	out := &FleetReport{
		Policy:     front.policy.String(),
		PerReplica: make([]*Report, total),
		Dispatch:   dispatch,
	}
	if disagg {
		out.Policy = front.policy.String() + "→" + decode.policy.String()
		out.Topology = f.topo.String()
	}
	out.Roles = make([]string, total)
	for i, role := range roles {
		out.Roles[i] = role.String()
	}
	for i, s := range reps {
		if s.err != nil {
			return nil, s.err
		}
		if cfg.QuantileMode == QuantileSketch {
			out.PerReplica[i] = s.reportSketched(perReplica[i])
		} else {
			out.PerReplica[i] = s.report(perReplica[i])
		}
	}
	out.Aggregate = MergeReports(offeredRate(cfg), out.PerReplica)
	// Each replica's offered load is its dispatch share of the fleet rate,
	// not the whole fleet rate the scheduler config carries.
	if n := len(arrivals); n > 0 {
		for i, r := range out.PerReplica {
			r.OfferedRate = out.Aggregate.OfferedRate * float64(dispatch[i]) / float64(n)
		}
	}
	return out, nil
}

// OfferedRate is the rate label of a (normalized) config: an explicit
// trace's measured rate when one is given, otherwise the configured (or
// scenario-derived) rate. External control loops label their merged
// reports with it.
func (c Config) OfferedRate() float64 { return offeredRate(c) }

// offeredRate is the rate label of a run: an explicit trace's measured
// rate when one is given, otherwise the configured (or scenario-derived)
// Poisson rate.
func offeredRate(cfg Config) float64 {
	if len(cfg.Trace) > 0 {
		span := 0.0
		for _, r := range cfg.Trace {
			if r.ArrivalSec > span {
				span = r.ArrivalSec
			}
		}
		if span > 0 {
			return float64(len(cfg.Trace)) / span
		}
	}
	return cfg.Rate
}

// MergeReports builds a deployment-wide aggregate from per-replica
// reports: counters are summed, quantiles are recomputed over the union of
// completed requests, the makespan is the maximum, and throughput figures
// are rederived from the merged totals. offeredRate labels the aggregate.
// RunFleet uses it for homogeneous fleets; internal/autoscale for elastic
// heterogeneous ones.
//
// When any input report is sketched, the aggregate is sketched too:
// per-replica sketches merge exactly (bucket counts are integers, so the
// merged quantiles equal a single sketch over the union stream), and any
// exact reports in the mix fold their per-request samples into the merged
// sketches. Sketched inputs must share one alpha — replicas of one run
// always do, and mixing sketches of different resolutions is a caller bug
// with no lossless repair, so it panics.
func MergeReports(offeredRate float64, reps []*Report) *Report {
	agg := &Report{OfferedRate: offeredRate}
	for _, r := range reps {
		if r.Sketched {
			agg.Sketched = true
			agg.SketchAlpha = r.SketchAlpha
			break
		}
	}
	var ttfts, tpots, lats []float64
	if agg.Sketched {
		mk := func() *stats.Sketch {
			sk, err := stats.NewSketch(agg.SketchAlpha)
			if err != nil {
				panic(err) // alpha came from a validated config
			}
			return sk
		}
		agg.TTFTSketch, agg.TPOTSketch, agg.LatencySketch = mk(), mk(), mk()
	}
	mergeSk := func(dst, src *stats.Sketch) {
		if src == nil || src.Count() == 0 {
			return
		}
		if err := dst.Merge(src); err != nil {
			panic(fmt.Sprintf("serve: MergeReports over mismatched sketches: %v", err))
		}
	}
	for _, r := range reps {
		switch agg.Platform {
		case "", r.Platform:
			agg.Platform = r.Platform
		default:
			agg.Platform = "mixed" // heterogeneous deployment
		}
		agg.Completed += r.Completed
		agg.Dropped += r.Dropped
		agg.Unfinished += r.Unfinished
		agg.Preemptions += r.Preemptions
		agg.TotalTokens += r.TotalTokens
		agg.KVBlocksTotal += r.KVBlocksTotal
		agg.PeakKVBlocksInUse += r.PeakKVBlocksInUse
		agg.KVBlocksInUseAtEnd += r.KVBlocksInUseAtEnd
		agg.KVBlocksCachedAtEnd += r.KVBlocksCachedAtEnd
		agg.PrefixCacheHitTokens += r.PrefixCacheHitTokens
		agg.PrefixCacheMissTokens += r.PrefixCacheMissTokens
		agg.EvictedBlocks += r.EvictedBlocks
		agg.SwapOuts += r.SwapOuts
		agg.SwapIns += r.SwapIns
		agg.SwapPoolBlocks += r.SwapPoolBlocks
		agg.PeakSwapBlocksInUse += r.PeakSwapBlocksInUse
		agg.SwapBlocksAtEnd += r.SwapBlocksAtEnd
		for i, n := range r.DroppedByReason {
			agg.DroppedByReason[i] += n
		}
		agg.Sheds += r.Sheds
		agg.Retries += r.Retries
		agg.Crashes += r.Crashes
		agg.DowntimeSec += r.DowntimeSec
		agg.HandoffsOut += r.HandoffsOut
		agg.HandoffsIn += r.HandoffsIn
		agg.HandoffFallbacks += r.HandoffFallbacks
		agg.HandoffTokens += r.HandoffTokens
		agg.HandoffBytes += r.HandoffBytes
		for i, n := range r.CompletedByClass {
			agg.CompletedByClass[i] += n
		}
		for i, n := range r.GoodTokensByClass {
			agg.GoodTokensByClass[i] += n
		}
		if r.MakespanSec > agg.MakespanSec {
			agg.MakespanSec = r.MakespanSec
		}
		if r.Sketched {
			// Sketched reports carry no Requests; their good/completed
			// counters are authoritative.
			agg.GoodRequests += r.GoodRequests
			agg.GoodOutputTokens += r.GoodOutputTokens
			agg.CompletedOutputTokens += r.CompletedOutputTokens
			mergeSk(agg.TTFTSketch, r.TTFTSketch)
			mergeSk(agg.TPOTSketch, r.TPOTSketch)
			mergeSk(agg.LatencySketch, r.LatencySketch)
			continue
		}
		// Exact report: rederive goodput from the per-request ledger (the
		// counter fields may be unset on hand-built or pre-sketch reports).
		for _, m := range r.Requests {
			agg.CompletedOutputTokens += m.OutputTokens
			if m.SLOMet {
				agg.GoodRequests++
				agg.GoodOutputTokens += m.OutputTokens
			}
			if agg.Sketched {
				_ = agg.TTFTSketch.Add(m.TTFT)
				_ = agg.LatencySketch.Add(m.Latency)
				if m.OutputTokens > 1 {
					_ = agg.TPOTSketch.Add(m.TPOT)
				}
				continue
			}
			agg.Requests = append(agg.Requests, m)
			ttfts = append(ttfts, m.TTFT)
			lats = append(lats, m.Latency)
			if m.OutputTokens > 1 {
				tpots = append(tpots, m.TPOT)
			}
		}
	}
	if agg.MakespanSec > 0 {
		agg.TokensPerSec = float64(agg.TotalTokens) / agg.MakespanSec
		agg.GoodputTokensPerSec = float64(agg.GoodOutputTokens) / agg.MakespanSec
		agg.GoodRequestsPerSec = float64(agg.GoodRequests) / agg.MakespanSec
	}
	if agg.Sketched {
		agg.TTFT = sketchQuantiles(agg.TTFTSketch)
		agg.TPOT = sketchQuantiles(agg.TPOTSketch)
		agg.Latency = sketchQuantiles(agg.LatencySketch)
	} else {
		agg.TTFT = quantiles(ttfts)
		agg.TPOT = quantiles(tpots)
		agg.Latency = quantiles(lats)
	}
	return agg
}

// SizeFleetForSLO finds the smallest fleet (1..maxReplicas) whose simulated
// SLO attainment reaches target, returning the size and that fleet's
// report. This answers the sizing question by simulation — replica
// interference, dispatch skew and prefix-cache locality included — where
// cloud.ReplicasForRate only extrapolates from one replica's rate. It
// fails if even maxReplicas cannot reach the target. It evaluates
// candidates serially; SizeFleetForSLOParallel spreads them over a worker
// pool with a byte-identical result.
func SizeFleetForSLO(be Backend, cfg Config, policy LBPolicy, target float64, maxReplicas int) (int, *FleetReport, error) {
	return SizeFleetForSLOParallel(be, cfg, policy, target, maxReplicas, 1)
}

// SizeFleetForSLOParallel is SizeFleetForSLO evaluating candidate fleet
// sizes on up to workers concurrent goroutines (workers <= 0 means
// runtime.NumCPU(); 1 is the serial path).
//
// Attainment is treated as monotone in the fleet size (more replicas never
// hurt a load-balanced fleet), so the search probes exponentially
// (1, 2, 4, ...) until a passing size brackets the answer, then binary
// searches the bracket — O(log maxReplicas) simulations instead of the
// linear scan. Parallelism only *prefetches*: candidate runs are memoized
// and the serial search logic replays over the memo, so the chosen size,
// the returned report and any error are byte-identical to workers=1 —
// every candidate simulation is independently seeded from cfg.Seed and
// RunFleet is deterministic. The speculative ladder and bracket interior
// cost extra simulations but collapse the sweep's wall clock to about two
// waves; all candidates share one memoized step-costing table, so most of
// each speculative run's iteration shapes are table hits.
func SizeFleetForSLOParallel(be Backend, cfg Config, policy LBPolicy, target float64, maxReplicas, workers int) (int, *FleetReport, error) {
	if target <= 0 || target > 1 {
		return 0, nil, fmt.Errorf("serve: SLO attainment target %g outside (0, 1]", target)
	}
	if maxReplicas <= 0 {
		maxReplicas = 16
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	// Do NOT normalize cfg here: each RunFleet candidate normalizes its own
	// copy, and normalizing twice is not idempotent for sentinel values
	// (LengthJitter < 0 means "disabled", which one pass maps to 0 and a
	// second pass would map to the 0.25 default). NewStepCoster needs only
	// the model/datatype/bucket fields, which normalization never touches.
	if be.Coster == nil {
		coster, err := NewStepCoster(be, cfg)
		if err != nil {
			return 0, nil, err
		}
		be.Coster = coster
	}
	ev := &fleetEvaluator{be: be, cfg: cfg, policy: policy, workers: workers, memo: map[int]sizeOutcome{}}

	// Exponential probe ladder: first passing size, doubling up to
	// maxReplicas. The whole ladder is speculated concurrently; the serial
	// consumption below decides bracket and errors exactly as workers=1.
	ladder := make([]int, 0, 8)
	for n := 1; ; n *= 2 {
		if n > maxReplicas {
			n = maxReplicas
		}
		ladder = append(ladder, n)
		if n == maxReplicas {
			break
		}
	}
	ev.prefetch(ladder)
	lo, hi := 0, 0 // largest known-failing, smallest known-passing
	for _, n := range ladder {
		rep, err := ev.eval(n)
		if err != nil {
			return 0, nil, err
		}
		if rep.SLOAttainment() >= target {
			hi = n
			break
		}
		lo = n
		if n == maxReplicas {
			return 0, nil, fmt.Errorf("serve: even %d replicas miss %.0f%% SLO attainment", maxReplicas, target*100)
		}
	}

	// Binary search (lo, hi]: lo fails, hi passes. Speculate the top levels
	// of the midpoint tree — every candidate the search can reach in its
	// first few probes — but never more than ~2×workers of them: the search
	// only visits O(log(hi-lo)) sizes, so flooding the whole interior would
	// burn far more simulations than the serial path for wide brackets.
	if hi-lo > 2 && workers > 1 {
		type bracket struct{ lo, hi int }
		frontier := []bracket{{lo, hi}}
		var cands []int
		for len(frontier) > 0 && len(cands) < 2*workers {
			next := frontier[:0:0]
			for _, b := range frontier {
				if b.hi-b.lo <= 1 {
					continue
				}
				mid := b.lo + (b.hi-b.lo)/2
				cands = append(cands, mid)
				next = append(next, bracket{b.lo, mid}, bracket{mid, b.hi})
			}
			frontier = next
		}
		ev.prefetch(cands)
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		rep, err := ev.eval(mid)
		if err != nil {
			return 0, nil, err
		}
		if rep.SLOAttainment() >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	rep, err := ev.eval(hi)
	if err != nil {
		return 0, nil, err
	}
	return hi, rep, nil
}

// sizeOutcome is one memoized candidate evaluation.
type sizeOutcome struct {
	rep *FleetReport
	err error
}

// fleetEvaluator memoizes RunFleet per candidate size so the search logic
// can replay serially over results computed in any (possibly concurrent)
// order.
type fleetEvaluator struct {
	be      Backend
	cfg     Config
	policy  LBPolicy
	workers int

	mu   sync.Mutex
	memo map[int]sizeOutcome
}

func (e *fleetEvaluator) run(n int) sizeOutcome {
	rep, err := RunFleet(e.be, e.cfg, FleetConfig{Replicas: n, Policy: e.policy})
	return sizeOutcome{rep: rep, err: err}
}

// eval returns the candidate's outcome, computing it on demand.
func (e *fleetEvaluator) eval(n int) (*FleetReport, error) {
	e.mu.Lock()
	out, ok := e.memo[n]
	e.mu.Unlock()
	if !ok {
		out = e.run(n)
		e.mu.Lock()
		e.memo[n] = out
		e.mu.Unlock()
	}
	return out.rep, out.err
}

// prefetch speculatively evaluates candidates on the worker pool. A no-op
// when serial — the lazy eval path then matches the classic algorithm's
// work exactly. First store wins on a racing duplicate; both goroutines
// compute identical outcomes, so the choice is immaterial.
func (e *fleetEvaluator) prefetch(ns []int) {
	if e.workers <= 1 {
		return
	}
	_ = par.For(e.workers, len(ns), func(j int) error {
		n := ns[j]
		e.mu.Lock()
		_, done := e.memo[n]
		e.mu.Unlock()
		if done {
			return nil
		}
		out := e.run(n)
		e.mu.Lock()
		if _, done := e.memo[n]; !done {
			e.memo[n] = out
		}
		e.mu.Unlock()
		return nil
	})
}
