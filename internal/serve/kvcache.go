package serve

import "fmt"

// BlockManager is the paged KV-cache allocator: the platform's usable
// memory (HBM minus weights on GPUs, enclave size minus weights under SGX,
// installed DRAM otherwise) is carved into fixed-size blocks of
// blockTokens tokens each, and requests hold exactly enough blocks to
// cover their context. Paging the cache is what lets the scheduler admit
// requests until memory — not batch shape — is the binding constraint,
// and what makes preemption a cheap release-and-requeue.
type BlockManager struct {
	blockTokens   int
	bytesPerToken int64
	total         int
	free          int
	held          map[int]int // request ID → blocks held
	peakInUse     int
}

// NewBlockManager sizes the pool from a byte budget. It fails when the
// budget does not admit even one block — the platform cannot serve the
// model at all (e.g. weights alone overflow the enclave).
func NewBlockManager(budgetBytes int64, blockTokens int, bytesPerToken int64) (*BlockManager, error) {
	if blockTokens <= 0 || bytesPerToken <= 0 {
		return nil, fmt.Errorf("serve: block of %d tokens × %d bytes/token is not allocatable", blockTokens, bytesPerToken)
	}
	blockBytes := int64(blockTokens) * bytesPerToken
	total := int(budgetBytes / blockBytes)
	if total <= 0 {
		return nil, fmt.Errorf("serve: KV budget %d bytes below one %d-byte block", budgetBytes, blockBytes)
	}
	return &BlockManager{
		blockTokens:   blockTokens,
		bytesPerToken: bytesPerToken,
		total:         total,
		free:          total,
		held:          make(map[int]int),
	}, nil
}

// TotalBlocks returns the pool size.
func (m *BlockManager) TotalBlocks() int { return m.total }

// FreeBlocks returns the currently unallocated block count.
func (m *BlockManager) FreeBlocks() int { return m.free }

// InUse returns the allocated block count.
func (m *BlockManager) InUse() int { return m.total - m.free }

// PeakInUse returns the allocation high-water mark.
func (m *BlockManager) PeakInUse() int { return m.peakInUse }

// BlocksFor returns the blocks needed to hold `tokens` cache entries.
func (m *BlockManager) BlocksFor(tokens int) int {
	if tokens <= 0 {
		return 0
	}
	return (tokens + m.blockTokens - 1) / m.blockTokens
}

// Grow ensures the request holds enough blocks for `tokens` cache entries,
// allocating the shortfall. It reports whether the pool could satisfy the
// request; on false the holding is unchanged (all-or-nothing).
func (m *BlockManager) Grow(reqID, tokens int) bool {
	need := m.BlocksFor(tokens) - m.held[reqID]
	if need <= 0 {
		return true
	}
	if need > m.free {
		return false
	}
	m.free -= need
	m.held[reqID] += need
	if used := m.InUse(); used > m.peakInUse {
		m.peakInUse = used
	}
	return true
}

// Release frees every block the request holds and returns the count.
func (m *BlockManager) Release(reqID int) int {
	n := m.held[reqID]
	delete(m.held, reqID)
	m.free += n
	return n
}

// Holders returns how many requests currently hold blocks.
func (m *BlockManager) Holders() int { return len(m.held) }
