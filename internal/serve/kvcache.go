package serve

import "fmt"

// BlockManager is the paged KV-cache allocator: the platform's usable
// memory (HBM minus weights on GPUs, enclave size minus weights under SGX,
// installed DRAM otherwise) is carved into fixed-size blocks of
// blockTokens tokens each, and requests hold exactly enough blocks to
// cover their context. Paging the cache is what lets the scheduler admit
// requests until memory — not batch shape — is the binding constraint,
// and what makes preemption a cheap release-and-requeue.
//
// With sharing enabled the manager additionally keeps a block-level prefix
// cache (a flattened radix over chained block hashes, vLLM-style): full
// blocks of a request's declared prompt prefix are published under
// content-chained hashes with reference counts, so later requests with the
// same prefix pin the same physical blocks instead of recomputing and
// re-storing them. Blocks whose refcount drops to zero are retained in an
// LRU cache and reclaimed only under allocation pressure (leaf-first, so a
// cached block's parents always outlive it).
type BlockManager struct {
	blockTokens   int
	bytesPerToken int64
	total         int
	free          int // blocks neither privately held nor backing a shared entry
	sharing       bool

	held       map[int]int            // request ID → private blocks held
	pinned     map[int][]*sharedBlock // request ID → shared prefix blocks pinned, in chain order
	shared     map[blockKey]*sharedBlock
	tick       int64 // monotonic op counter driving LRU order (deterministic)
	peakInUse  int
	evicted    int
	hitTokens  int
	missTokens int

	// Host swap pool (swap-to-host preemption): a bounded region of
	// untrusted host memory holding preempted requests' KV copies. Swap
	// blocks are accounted separately from the device pool — parking a
	// victim frees its device blocks and occupies swap blocks instead.
	swapTotal int
	swapUsed  int
	swapPeak  int
	swapped   map[int]int // request ID → swap blocks parked
}

// blockKey identifies one shareable block by its chained content hash: the
// hash covers the block's own tokens and every token before it, so two
// prefixes that differ anywhere before or inside the block can never map to
// the same key (the radix-tree property, flattened).
type blockKey struct {
	hash uint64
	idx  int
}

// sharedBlock is one physical block published in the prefix cache.
type sharedBlock struct {
	key  blockKey
	refs int
	// computed marks the block's KV entries as filled; only computed blocks
	// count as cache hits (a block being prefilled by one request is pinned
	// by, but not yet useful to, a concurrent sharer).
	computed bool
	// lruSeq orders reclaim among refs==0 blocks: smaller evicts first.
	// Within one release, deeper blocks get smaller sequences, so eviction
	// is leaf-first and a surviving block's chain parents survive too.
	lruSeq int64
}

// mix64 is the splitmix64 finalizer: a cheap bijective mix that spreads
// adjacent inputs across the hash space. Both the per-block chain keys and
// the prefix identity hash build on it.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chainHash extends a prefix identity hash to the block at index idx, so
// per-block keys are well distributed even for adjacent prefix IDs.
func chainHash(prefixHash uint64, idx int) uint64 {
	return mix64(prefixHash + 0x9e3779b97f4a7c15*uint64(idx+1))
}

// NewBlockManager sizes the pool from a byte budget. It fails when the
// budget does not admit even one block — the platform cannot serve the
// model at all (e.g. weights alone overflow the enclave). sharing enables
// the prefix cache; without it the manager is a plain per-request
// allocator.
func NewBlockManager(budgetBytes int64, blockTokens int, bytesPerToken int64, sharing bool) (*BlockManager, error) {
	if blockTokens <= 0 || bytesPerToken <= 0 {
		return nil, fmt.Errorf("serve: block of %d tokens × %d bytes/token is not allocatable", blockTokens, bytesPerToken)
	}
	blockBytes := int64(blockTokens) * bytesPerToken
	total := int(budgetBytes / blockBytes)
	if total <= 0 {
		return nil, fmt.Errorf("serve: KV budget %d bytes below one %d-byte block", budgetBytes, blockBytes)
	}
	return &BlockManager{
		blockTokens:   blockTokens,
		bytesPerToken: bytesPerToken,
		total:         total,
		free:          total,
		sharing:       sharing,
		held:          make(map[int]int),
		pinned:        make(map[int][]*sharedBlock),
		shared:        make(map[blockKey]*sharedBlock),
		swapped:       make(map[int]int),
	}, nil
}

// ConfigureSwapPool sizes the host swap pool in blocks. Zero (the default)
// disables swapping: SwapOut then always fails and the scheduler falls
// back to recompute.
func (m *BlockManager) ConfigureSwapPool(blocks int) {
	if blocks < 0 {
		blocks = 0
	}
	m.swapTotal = blocks
}

// SwapPoolBlocks returns the host swap pool capacity.
func (m *BlockManager) SwapPoolBlocks() int { return m.swapTotal }

// SwappedBlocks returns the swap blocks currently parked.
func (m *BlockManager) SwappedBlocks() int { return m.swapUsed }

// PeakSwapBlocks returns the swap pool's occupancy high-water mark.
func (m *BlockManager) PeakSwapBlocks() int { return m.swapPeak }

// SwapOut parks a preempted request's computed KV entries in the host swap
// pool and releases everything it holds in the device pool (private blocks
// free, shared pins drop exactly as Release — computed prefix blocks stay
// cached for other sharers). It is all-or-nothing: when the swap pool
// cannot hold BlocksFor(tokens) more blocks it returns false and the
// request's device holdings are untouched (the caller falls back to
// recompute). The swap copy is self-contained: it covers all `tokens`
// leading entries, including any span shared prefix blocks also cover, so
// a later swap-in never depends on cache residency.
func (m *BlockManager) SwapOut(reqID, tokens int) bool {
	if tokens <= 0 {
		return false
	}
	if m.swapped[reqID] > 0 {
		return false // already parked; one swap copy per request
	}
	need := m.BlocksFor(tokens)
	if m.swapUsed+need > m.swapTotal {
		return false
	}
	m.Release(reqID)
	m.swapUsed += need
	m.swapped[reqID] = need
	if m.swapUsed > m.swapPeak {
		m.swapPeak = m.swapUsed
	}
	return true
}

// SwapIn releases a request's parked swap blocks (its KV copy has been
// transferred back into device blocks the caller allocated) and returns
// how many were freed. Dropping a swapped request uses the same call —
// the pool does not care whether the copy was restored or discarded.
func (m *BlockManager) SwapIn(reqID int) int {
	n := m.swapped[reqID]
	if n == 0 {
		return 0
	}
	delete(m.swapped, reqID)
	m.swapUsed -= n
	return n
}

// TotalBlocks returns the pool size.
func (m *BlockManager) TotalBlocks() int { return m.total }

// FreeBlocks returns the immediately allocatable block count (excluding
// cached blocks, which are reclaimable but occupied).
func (m *BlockManager) FreeBlocks() int { return m.free }

// InUse returns the actively held block count: private blocks plus shared
// blocks with a nonzero refcount. Cached (refcount-zero) blocks are not in
// use — they are reclaimable retained state, reported by CachedBlocks.
func (m *BlockManager) InUse() int { return m.total - m.free - m.CachedBlocks() }

// CachedBlocks returns the number of retained prefix blocks nobody pins
// (refcount zero, evictable).
func (m *BlockManager) CachedBlocks() int {
	n := 0
	for _, b := range m.shared {
		if b.refs == 0 {
			n++
		}
	}
	return n
}

// PeakInUse returns the allocation high-water mark (private + shared +
// cached — the memory-pressure peak).
func (m *BlockManager) PeakInUse() int { return m.peakInUse }

// EvictedBlocks returns how many cached blocks were reclaimed under
// allocation pressure over the manager's lifetime.
func (m *BlockManager) EvictedBlocks() int { return m.evicted }

// HitTokens returns the cumulative prompt tokens served from the prefix
// cache instead of being recomputed.
func (m *BlockManager) HitTokens() int { return m.hitTokens }

// MissTokens returns the cumulative shareable prefix tokens that were not
// in cache at acquisition time.
func (m *BlockManager) MissTokens() int { return m.missTokens }

// Holders returns how many requests currently hold private blocks or pin
// shared ones.
func (m *BlockManager) Holders() int {
	ids := make(map[int]struct{}, len(m.held)+len(m.pinned))
	for id := range m.held {
		ids[id] = struct{}{}
	}
	for id := range m.pinned {
		ids[id] = struct{}{}
	}
	return len(ids)
}

// BlocksFor returns the blocks needed to hold `tokens` cache entries.
func (m *BlockManager) BlocksFor(tokens int) int {
	if tokens <= 0 {
		return 0
	}
	return (tokens + m.blockTokens - 1) / m.blockTokens
}

// notePeak updates the high-water mark after an allocation.
func (m *BlockManager) notePeak() {
	if used := m.total - m.free; used > m.peakInUse {
		m.peakInUse = used
	}
}

// evictOne reclaims the least-recently-released cached block. It returns
// false when nothing is evictable.
func (m *BlockManager) evictOne() bool {
	var victim *sharedBlock
	for _, b := range m.shared {
		if b.refs != 0 {
			continue
		}
		if victim == nil || b.lruSeq < victim.lruSeq {
			victim = b
		}
	}
	if victim == nil {
		return false
	}
	delete(m.shared, victim.key)
	m.free++
	m.evicted++
	return true
}

// FlushCache reclaims every cached (refcount-zero) prefix block and
// returns how many were freed. A replica crash calls this: the cache's
// contents die with the TEE whose keys sealed them, so post-recovery
// sharers recompute. Pinned blocks (nonzero refcount) are untouched.
func (m *BlockManager) FlushCache() int {
	n := 0
	for key, b := range m.shared {
		if b.refs != 0 {
			continue
		}
		delete(m.shared, key)
		m.free++
		m.evicted++
		n++
	}
	return n
}

// reserve frees up n blocks for allocation, evicting cached blocks as
// needed. It reports whether n blocks are now free; on false the pool is
// left as reclaimed so far (eviction is not undone — evicted cache entries
// were reclaimable anyway).
func (m *BlockManager) reserve(n int) bool {
	for m.free < n {
		if !m.evictOne() {
			return false
		}
	}
	return true
}

// AcquirePrefix pins the request onto the shared blocks of its prompt
// prefix, publishing blocks that are not cached yet. prefixHash is the
// chained identity of the prefix content; prefixTokens its length (only
// whole blocks are shareable — the remainder lives in private blocks).
//
// It returns the number of leading prefix tokens whose KV entries are
// already computed and cached — tokens the request's prefill can skip.
// Publishing stops (without failing) when the pool cannot back further
// blocks; the request covers the rest with private blocks via Grow.
// Acquiring twice for the same request is an error — Release first.
//
// Hit/miss statistics are NOT updated here: an admission that acquires a
// prefix and then fails to grow releases and retries later, and counting
// at acquire time would credit the same tokens once per retry. The
// scheduler calls creditPrefixStats once the request is actually
// admitted.
func (m *BlockManager) AcquirePrefix(reqID int, prefixHash uint64, prefixTokens int) (cachedTokens int, err error) {
	if !m.sharing || prefixTokens < m.blockTokens {
		return 0, nil
	}
	if len(m.pinned[reqID]) > 0 {
		return 0, fmt.Errorf("serve: request %d acquires a prefix it already holds", reqID)
	}
	nBlocks := prefixTokens / m.blockTokens // full blocks only
	hitsDone := false
	for idx := 0; idx < nBlocks; idx++ {
		key := blockKey{hash: chainHash(prefixHash, idx), idx: idx}
		b, ok := m.shared[key]
		if ok {
			b.refs++
			m.pinned[reqID] = append(m.pinned[reqID], b)
			if b.computed && !hitsDone {
				cachedTokens += m.blockTokens
			} else {
				hitsDone = true // uncomputed block: the rest must be recomputed in order
			}
			continue
		}
		hitsDone = true
		if !m.reserve(1) {
			break // pool exhausted: remaining prefix tokens go to private blocks
		}
		m.free--
		nb := &sharedBlock{key: key, refs: 1}
		m.shared[key] = nb
		m.pinned[reqID] = append(m.pinned[reqID], nb)
		m.notePeak()
	}
	return cachedTokens, nil
}

// creditPrefixStats commits the hit/miss accounting of a successful
// admission: cachedTokens prefix tokens were served from cache, and the
// rest of the request's pinned prefix had to be (re)computed.
func (m *BlockManager) creditPrefixStats(reqID, cachedTokens int) {
	m.hitTokens += cachedTokens
	if missed := m.SharedTokens(reqID) - cachedTokens; missed > 0 {
		m.missTokens += missed
	}
}

// SharedTokens returns how many prompt tokens of the request are covered by
// pinned shared blocks.
func (m *BlockManager) SharedTokens(reqID int) int {
	return len(m.pinned[reqID]) * m.blockTokens
}

// MarkComputed records that the request's prefill has filled its pinned
// prefix blocks up to `tokens` prompt tokens, making them cache hits for
// later sharers.
func (m *BlockManager) MarkComputed(reqID, tokens int) {
	for _, b := range m.pinned[reqID] {
		if (b.key.idx+1)*m.blockTokens <= tokens {
			b.computed = true
		}
	}
}

// Grow ensures the request holds enough blocks for `tokens` cache entries,
// counting pinned shared blocks first and allocating the private-block
// shortfall (evicting cached blocks under pressure). It reports whether
// the pool could satisfy the request; on false the holding is unchanged
// (all-or-nothing).
func (m *BlockManager) Grow(reqID, tokens int) bool {
	need := m.BlocksFor(tokens) - len(m.pinned[reqID]) - m.held[reqID]
	if need <= 0 {
		return true
	}
	if !m.reserve(need) {
		return false
	}
	m.free -= need
	m.held[reqID] += need
	m.notePeak()
	return true
}

// Release frees every private block the request holds, unpins its shared
// blocks, and returns the total count released. Shared blocks whose
// refcount drops to zero stay cached (leaf-first LRU) if computed, and are
// freed immediately if their prefill never completed.
func (m *BlockManager) Release(reqID int) int {
	n := m.held[reqID]
	delete(m.held, reqID)
	m.free += n
	pins := m.pinned[reqID]
	delete(m.pinned, reqID)
	if len(pins) > 0 {
		m.tick++
		for _, b := range pins {
			n++
			b.refs--
			if b.refs > 0 {
				continue
			}
			if !b.computed {
				delete(m.shared, b.key) // half-built block: content is garbage
				m.free++
				continue
			}
			// Deeper blocks get smaller sequences → evicted first.
			b.lruSeq = m.tick<<16 - int64(b.key.idx)
		}
	}
	return n
}

// DedupSavedTokens returns how many tokens of per-row KV read traffic
// across the given requests are repeat reads of the same shared physical
// blocks (pins minus unique blocks). The scheduler subtracts these from
// the decode step's resident working set: shared prefix pages are mapped
// once however many rows stream them, so they do not widen TLB reach or
// enclave paging pressure.
func (m *BlockManager) DedupSavedTokens(ids []int) int {
	if !m.sharing {
		return 0
	}
	seen := make(map[blockKey]struct{})
	pins, uniq := 0, 0
	for _, id := range ids {
		for _, b := range m.pinned[id] {
			pins++
			if _, ok := seen[b.key]; !ok {
				seen[b.key] = struct{}{}
				uniq++
			}
		}
	}
	return (pins - uniq) * m.blockTokens
}

// CheckConservation verifies the pool's accounting invariants: every block
// is exactly one of free, privately held, or backing a shared entry, and
// shared refcounts equal the pins held by requests. Tests call this after
// adversarial share/preempt/evict interleavings.
func (m *BlockManager) CheckConservation() error {
	private := 0
	for _, n := range m.held {
		if n < 0 {
			return fmt.Errorf("serve: negative private holding %d", n)
		}
		private += n
	}
	if got := m.free + private + len(m.shared); got != m.total {
		return fmt.Errorf("serve: block conservation broken: free %d + private %d + shared %d = %d, want %d",
			m.free, private, len(m.shared), got, m.total)
	}
	pinRefs := make(map[blockKey]int)
	for _, pins := range m.pinned {
		for _, b := range pins {
			pinRefs[b.key]++
		}
	}
	for key, b := range m.shared {
		if b.refs < 0 {
			return fmt.Errorf("serve: negative refcount %d on block %v", b.refs, key)
		}
		if b.refs != pinRefs[key] {
			return fmt.Errorf("serve: block %v refcount %d but %d pins", key, b.refs, pinRefs[key])
		}
		delete(pinRefs, key)
	}
	for key, n := range pinRefs {
		return fmt.Errorf("serve: %d pins on unpublished block %v", n, key)
	}
	swapSum := 0
	for id, n := range m.swapped {
		if n <= 0 {
			return fmt.Errorf("serve: request %d parks %d swap blocks", id, n)
		}
		swapSum += n
		// A swapped request holds nothing in the device pool: SwapOut
		// released its private blocks and shared pins atomically.
		if m.held[id] != 0 || len(m.pinned[id]) != 0 {
			return fmt.Errorf("serve: swapped request %d still holds %d private / %d pinned device blocks",
				id, m.held[id], len(m.pinned[id]))
		}
	}
	if swapSum != m.swapUsed {
		return fmt.Errorf("serve: swap pool accounting broken: %d parked, %d used", swapSum, m.swapUsed)
	}
	if m.swapUsed > m.swapTotal {
		return fmt.Errorf("serve: swap pool overcommitted: %d used of %d", m.swapUsed, m.swapTotal)
	}
	return nil
}
