package serve

import (
	"reflect"
	"sort"
	"testing"

	"cllm/internal/dtype"
	"cllm/internal/mem"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

// TestSwapPreemptionKeepsInvariants: the policy invariants the recompute
// regression tests assert must hold verbatim under swap — FIFO first
// admission, full completion, zero leaked device blocks — plus the swap
// pool's own leak invariant and determinism.
func TestSwapPreemptionKeepsInvariants(t *testing.T) {
	be, cfg := preemptionHeavyConfig()
	cfg.PreemptPolicy = PreemptSwap
	rep, order, err := RunAudited(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Preemptions == 0 || rep.SwapOuts == 0 {
		t.Fatalf("config exercised no swaps (%d preemptions, %d swap-outs); test is vacuous",
			rep.Preemptions, rep.SwapOuts)
	}
	if rep.SwapIns != rep.SwapOuts {
		t.Fatalf("swap-outs %d != swap-ins %d with everything completed", rep.SwapOuts, rep.SwapIns)
	}
	if rep.Completed != 32 || rep.Dropped != 0 || rep.Unfinished != 0 {
		t.Fatalf("completed/dropped/unfinished = %d/%d/%d, want 32/0/0",
			rep.Completed, rep.Dropped, rep.Unfinished)
	}
	if rep.KVBlocksInUseAtEnd != 0 {
		t.Fatalf("leaked %d device blocks across swaps", rep.KVBlocksInUseAtEnd)
	}
	if rep.SwapBlocksAtEnd != 0 {
		t.Fatalf("leaked %d swap blocks (parked copies without live requests)", rep.SwapBlocksAtEnd)
	}
	if rep.SwapPoolBlocks == 0 || rep.PeakSwapBlocksInUse == 0 || rep.PeakSwapBlocksInUse > rep.SwapPoolBlocks {
		t.Fatalf("swap pool %d, peak %d", rep.SwapPoolBlocks, rep.PeakSwapBlocksInUse)
	}
	if !sort.IntsAreSorted([]int(order)) {
		t.Fatalf("admission order not FIFO under swap: %v", order)
	}
	rep2, order2, err := RunAudited(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, order2) || !reflect.DeepEqual(rep, rep2) {
		t.Fatal("swap-policy run not deterministic")
	}
}

// TestDefaultPolicyIsRecomputeBitIdentical: the zero-valued config must
// behave exactly like an explicit recompute config, with every swap field
// zero — the pre-PR behavior is the default.
func TestDefaultPolicyIsRecomputeBitIdentical(t *testing.T) {
	be, cfg := preemptionHeavyConfig()
	def, err := Run(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	explicit := cfg
	explicit.PreemptPolicy = PreemptRecompute
	rep, err := Run(be, explicit)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, rep) {
		t.Fatal("explicit recompute differs from the default")
	}
	if def.SwapOuts != 0 || def.SwapIns != 0 || def.SwapPoolBlocks != 0 ||
		def.PeakSwapBlocksInUse != 0 || def.SwapBlocksAtEnd != 0 {
		t.Fatalf("recompute run reports swap activity: %+v", def)
	}
}

// TestSwapDisabledPoolFallsBackToRecompute: a swap policy with a disabled
// pool (negative SwapPoolFrac) must degrade to exactly the recompute run —
// every swap attempt fails and releases instead.
func TestSwapDisabledPoolFallsBackToRecompute(t *testing.T) {
	be, cfg := preemptionHeavyConfig()
	rec, err := Run(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	swp := cfg
	swp.PreemptPolicy = PreemptSwap
	swp.SwapPoolFrac = -1
	rep, err := Run(be, swp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SwapOuts != 0 {
		t.Fatalf("disabled pool still parked %d victims", rep.SwapOuts)
	}
	if !reflect.DeepEqual(rec, rep) {
		t.Fatal("swap with a disabled pool differs from recompute")
	}
}

// TestSwapWithChunkedPrefillAndSharing: swap must compose with chunked
// prefill and the prefix cache — mid-prefill victims park partial
// progress, swap-ins re-acquire shared prefixes, and nothing leaks.
func TestSwapWithChunkedPrefillAndSharing(t *testing.T) {
	m := tinyModel()
	wl := trace.Workload{Model: m, Kind: dtype.BF16}
	weights := int64(trace.WeightFootprint(wl))
	perToken := m.KVCacheBytesPerToken(2)
	p := tee.Baremetal()
	p.Name = "tiny-enclave"
	p.EPC = mem.EPC{Size: weights + 280*perToken, PageInCostFactor: 1}
	var tr []Request
	for i := 0; i < 16; i++ {
		tr = append(tr, Request{ID: i, ArrivalSec: float64(i) * 0.001, InputLen: 96, OutputLen: 24,
			PrefixID: i%2 + 1, PrefixLen: 64})
	}
	cfg := Config{Workload: wl, Trace: tr, Seed: 3, BlockTokens: 16,
		PrefixSharing: true, ChunkTokens: 48, PreemptPolicy: PreemptSwap}
	rep, err := Run(cpuBackend(p), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 16 || rep.Dropped != 0 || rep.Unfinished != 0 {
		t.Fatalf("completed/dropped/unfinished = %d/%d/%d, want 16/0/0",
			rep.Completed, rep.Dropped, rep.Unfinished)
	}
	if rep.Preemptions == 0 {
		t.Fatal("no preemptions; stress is vacuous")
	}
	if rep.KVBlocksInUseAtEnd != 0 || rep.SwapBlocksAtEnd != 0 {
		t.Fatalf("leaks: %d device, %d swap blocks", rep.KVBlocksInUseAtEnd, rep.SwapBlocksAtEnd)
	}
	rep2, err := Run(cpuBackend(p), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Fatal("swap + chunked + sharing run not deterministic")
	}
}

// TestSwapBeatsRecomputeOnCPUTEE: the headline trade-off — on an
// enclave-bounded CPU TEE serving long contexts, re-prefilling a victim's
// context costs hundreds of milliseconds of slow CPU prefill while the
// swap path is a near-native memcpy, so swap must serve the identical
// preemption-heavy load with a strictly better p99 TTFT.
func TestSwapBeatsRecomputeOnCPUTEE(t *testing.T) {
	m := mustLookup(t, "llama2-7b")
	wl := trace.Workload{Model: m, Kind: dtype.BF16}
	weights := int64(trace.WeightFootprint(wl))
	p := tee.Baremetal()
	p.Name = "tiny-enclave"
	p.MemBWFactor = 0.955 // SGX-class inline encryption on the swap memcpy
	p.EPC = mem.EPC{Size: weights + 768*m.KVCacheBytesPerToken(2), PageInCostFactor: 1}
	var tr []Request
	for i := 0; i < 6; i++ {
		tr = append(tr, Request{ID: i, ArrivalSec: float64(i) * 0.05, InputLen: 256, OutputLen: 256})
	}
	cfg := Config{Workload: wl, Trace: tr, Seed: 1, MaxBatch: 8,
		TTFTSLOSec: 60, TPOTSLOSec: 2}
	rec, err := Run(cpuBackend(p), cfg)
	if err != nil {
		t.Fatal(err)
	}
	swp := cfg
	swp.PreemptPolicy = PreemptSwap
	srep, err := Run(cpuBackend(p), swp)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Preemptions == 0 || srep.SwapOuts == 0 {
		t.Fatalf("no preemption pressure (%d recompute preemptions, %d swaps)", rec.Preemptions, srep.SwapOuts)
	}
	if srep.TTFT.P99 >= rec.TTFT.P99 {
		t.Fatalf("swap p99 TTFT %.4fs not below recompute %.4fs on a CPU TEE",
			srep.TTFT.P99, rec.TTFT.P99)
	}
}

// TestAutoPolicyDeterministicAcrossRunsAndWorkers: auto's per-preemption
// decision comes from the shared memoized coster, so reports must be
// byte-identical across repeated runs and across sizing worker counts.
func TestAutoPolicyDeterministicAcrossRunsAndWorkers(t *testing.T) {
	be, cfg := preemptionHeavyConfig()
	cfg.PreemptPolicy = PreemptAuto
	a, err := Run(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("auto-policy runs with equal seeds diverged")
	}
	// On this CPU TEE auto should actually choose swap (memcpy beats the
	// slow re-prefill) — otherwise the policy check is vacuous.
	if a.SwapOuts == 0 {
		t.Fatalf("auto never swapped on a CPU TEE (%d preemptions)", a.Preemptions)
	}

	sloCfg := cfg
	sloCfg.TTFTSLOSec, sloCfg.TPOTSLOSec = 2, 0.5
	nSerial, repSerial, err := SizeFleetForSLOParallel(be, sloCfg, LeastLoaded, 0.9, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	nPar, repPar, err := SizeFleetForSLOParallel(be, sloCfg, LeastLoaded, 0.9, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if nSerial != nPar || !reflect.DeepEqual(repSerial, repPar) {
		t.Fatalf("auto-policy sizing differs across worker counts: %d vs %d replicas", nSerial, nPar)
	}
}

// TestParsePreemptPolicy covers the CLI surface.
func TestParsePreemptPolicy(t *testing.T) {
	for s, want := range map[string]PreemptPolicy{
		"": PreemptRecompute, "recompute": PreemptRecompute,
		"swap": PreemptSwap, "auto": PreemptAuto, " Swap ": PreemptSwap,
	} {
		got, err := ParsePreemptPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePreemptPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePreemptPolicy("discard"); err == nil {
		t.Error("unknown policy accepted")
	}
	if got := PreemptAuto.String(); got != "auto" {
		t.Errorf("String() = %q", got)
	}
	// An out-of-range policy value is a config error, not a silent default.
	be, cfg := preemptionHeavyConfig()
	cfg.PreemptPolicy = PreemptPolicy(9)
	if _, err := Run(be, cfg); err == nil {
		t.Error("invalid policy value accepted")
	}
}
