package serve

import (
	"fmt"
	"math"

	"cllm/internal/hw"
	"cllm/internal/perf"
	"cllm/internal/sim"
	"cllm/internal/trace"
)

// phase is a request's lifecycle state.
type phase int

const (
	phaseWaiting phase = iota
	phaseRunning
	phaseFinished
	phaseDropped
)

// reqState tracks one request through the scheduler.
type reqState struct {
	req      Request
	phase    phase
	admitSeq int // order of first admission (FIFO audit)
	// generated counts produced output tokens; survives preemption (the
	// delivered tokens are not un-delivered, the cache is recomputed).
	generated    int
	preemptions  int
	admittedAt   float64 // first admission time
	firstTokenAt float64
	finishedAt   float64
}

// ctxTokens is the KV-cache footprint the request needs right now.
func (r *reqState) ctxTokens() int { return r.req.InputLen + r.generated }

// scheduler runs the continuous-batching loop on the event engine: one
// iteration event per engine step, shaped like Orca/vLLM iteration-level
// scheduling — running sequences decode one token, freed capacity admits
// queued prompts, and KV exhaustion preempts the youngest sequence.
type scheduler struct {
	cfg   Config
	be    Backend
	eng   *sim.Engine
	noise *sim.Noise
	kv    *BlockManager

	queue     []*reqState // FIFO; preempted requests rejoin at the front
	running   []*reqState // admission order (index 0 = oldest)
	iterating bool

	admitCount  int
	admitOrder  []int // request IDs in admission order (test audit)
	preemptions int
	completed   []*reqState
	dropped     []*reqState
	// err records a costing failure (a backend misconfiguration); it halts
	// the loop and fails the run instead of reporting zeros as data.
	err error
}

// Run executes one serving simulation.
func Run(be Backend, cfg Config) (*Report, error) {
	rep, _, err := RunAudited(be, cfg)
	return rep, err
}

// arrivals returns the offered load: the explicit trace when given,
// otherwise Poisson arrivals with jittered lengths. Synthetic generation
// draws from the same seeded RNG the noise model uses, so a seed fixes the
// whole run.
func (s *scheduler) arrivals() ([]Request, error) {
	if len(s.cfg.Trace) > 0 {
		seen := make(map[int]bool, len(s.cfg.Trace))
		for _, r := range s.cfg.Trace {
			if r.InputLen <= 0 || r.OutputLen <= 0 || r.ArrivalSec < 0 {
				return nil, fmt.Errorf("serve: invalid trace request %+v", r)
			}
			if sum := r.InputLen + r.OutputLen; sum > s.cfg.Workload.Model.ContextLen {
				return nil, fmt.Errorf("serve: request %d length %d exceeds %s context %d",
					r.ID, sum, s.cfg.Workload.Model.Name, s.cfg.Workload.Model.ContextLen)
			}
			if seen[r.ID] {
				return nil, fmt.Errorf("serve: duplicate request ID %d in trace", r.ID)
			}
			seen[r.ID] = true
		}
		return append([]Request(nil), s.cfg.Trace...), nil
	}
	rng := s.noise.RNG()
	jitter := func(mean int) int {
		if s.cfg.LengthJitter <= 0 {
			return mean
		}
		f := 1 + s.cfg.LengthJitter*(2*rng.Float64()-1)
		n := int(math.Round(float64(mean) * f))
		if n < 1 {
			n = 1
		}
		return n
	}
	out := make([]Request, s.cfg.Requests)
	t := 0.0
	for i := range out {
		t += rng.ExpFloat64() / s.cfg.Rate
		inLen := jitter(s.cfg.Workload.InputLen)
		outLen := jitter(s.cfg.Workload.OutputLen)
		if outLen < 2 {
			outLen = 2 // keep TPOT defined
		}
		// Upward jitter on means near the context limit must not overflow it:
		// shorten the prompt first, then the generation.
		ctx := s.cfg.Workload.Model.ContextLen
		if over := inLen + outLen - ctx; over > 0 {
			inLen -= over
			if inLen < 1 {
				inLen = 1
			}
			if inLen+outLen > ctx {
				outLen = ctx - inLen
			}
		}
		out[i] = Request{ID: i, ArrivalSec: t, InputLen: inLen, OutputLen: outLen}
	}
	return out, nil
}

// kick starts the iteration loop if it is idle.
func (s *scheduler) kick() {
	if s.iterating {
		return
	}
	if len(s.running) == 0 && len(s.queue) == 0 {
		return
	}
	s.iterating = true
	s.iterate()
}

// iterate performs one scheduling round at the current simulated time and
// schedules its completion.
func (s *scheduler) iterate() {
	now := float64(s.eng.Now())

	// 1. Capacity pass: every running sequence must be able to append one
	// token. When the pool is exhausted, preempt the youngest running
	// sequence (vLLM's recompute policy): release its blocks and requeue it
	// at the front, where it will re-prefill its full context later.
	decoding := make([]*reqState, 0, len(s.running))
	for i := 0; i < len(s.running); {
		r := s.running[i]
		if s.kv.Grow(r.req.ID, r.ctxTokens()+1) {
			decoding = append(decoding, r)
			i++
			continue
		}
		victim := s.running[len(s.running)-1]
		s.preempt(victim)
		if victim == r {
			break // r was the youngest; the loop is past every survivor
		}
		decoding = decoding[:0]
		i = 0 // pool changed; re-run the pass from the oldest sequence
	}

	// 2. Admission pass (FIFO): fill remaining batch slots while the pool
	// can hold each prompt plus its first generated token. A request that
	// cannot fit even an empty pool is dropped — no amount of waiting
	// makes the enclave bigger.
	var admitted []*reqState
	for len(s.queue) > 0 && len(s.running)+len(admitted) < s.cfg.MaxBatch {
		head := s.queue[0]
		need := s.kv.BlocksFor(head.ctxTokens() + 1)
		if need > s.kv.TotalBlocks() {
			s.queue = s.queue[1:]
			head.phase = phaseDropped
			s.dropped = append(s.dropped, head)
			continue
		}
		if !s.kv.Grow(head.req.ID, head.ctxTokens()+1) {
			break
		}
		s.queue = s.queue[1:]
		if head.phase == phaseWaiting && head.preemptions == 0 {
			head.admittedAt = now
			head.admitSeq = s.admitCount
			s.admitCount++
			s.admitOrder = append(s.admitOrder, head.req.ID)
		}
		head.phase = phaseRunning
		admitted = append(admitted, head)
	}

	if len(decoding) == 0 && len(admitted) == 0 {
		// Nothing can make progress now; the next arrival (or nothing)
		// restarts the loop. With an empty running set the pool is free, so
		// a non-fitting queue head was dropped above — no livelock.
		s.iterating = false
		return
	}

	dur, err := s.iterationTime(decoding, admitted)
	if err != nil {
		// A costing failure is a configuration bug (e.g. more sockets than
		// the CPU has); halt the loop and fail the whole run.
		s.err = err
		s.iterating = false
		return
	}
	dur = s.noise.Sample(dur, s.be.protected())
	s.eng.Schedule(sim.Time(dur), func(*sim.Engine) {
		s.finishIteration(decoding, admitted)
	})
}

// preempt releases a running sequence's cache and requeues it at the front.
func (s *scheduler) preempt(r *reqState) {
	for i, cand := range s.running {
		if cand == r {
			s.running = append(s.running[:i], s.running[i+1:]...)
			break
		}
	}
	s.kv.Release(r.req.ID)
	r.phase = phaseWaiting
	r.preemptions++
	s.preemptions++
	s.queue = append([]*reqState{r}, s.queue...)
}

// iterationTime costs one scheduling round with the mechanistic roofline:
// a batched prefill over the admitted prompts (re-prefills included) plus
// one decode step over the running batch. KV traffic is linear in total
// context, so costing the decode at the mean context length is exact for
// the memory-bound path.
func (s *scheduler) iterationTime(decoding, admitted []*reqState) (float64, error) {
	var total float64
	if len(admitted) > 0 {
		prefillTokens := 0
		for _, r := range admitted {
			prefillTokens += r.ctxTokens()
		}
		meanLen := (prefillTokens + len(admitted) - 1) / len(admitted)
		t, err := s.stepTime(len(admitted), meanLen, trace.Prefill)
		if err != nil {
			return 0, err
		}
		total += t
	}
	if len(decoding) > 0 {
		ctx := 0
		for _, r := range decoding {
			ctx += r.ctxTokens()
		}
		meanCtx := (ctx + len(decoding) - 1) / len(decoding)
		t, err := s.stepTime(len(decoding), meanCtx, trace.Decode)
		if err != nil {
			return 0, err
		}
		total += t
	}
	return total, nil
}

// stepTime builds a synthetic single-step workload of the batch shape and
// costs it on the backend.
func (s *scheduler) stepTime(batch, ctxLen int, ph trace.Phase) (float64, error) {
	if ctxLen < 1 {
		ctxLen = 1
	}
	if max := s.cfg.Workload.Model.ContextLen - 1; ctxLen > max {
		ctxLen = max
	}
	wl := trace.Workload{
		Model: s.cfg.Workload.Model, Kind: s.cfg.Workload.Kind,
		Batch: batch, Beam: 1, InputLen: ctxLen, OutputLen: 1,
	}
	var st trace.StepTrace
	var err error
	if ph == trace.Prefill {
		st, err = trace.PrefillStep(wl)
	} else {
		st, err = trace.DecodeStep(wl, ctxLen)
	}
	if err != nil {
		return 0, err
	}
	if s.be.IsGPU {
		cfg := s.be.GPU
		cfg.Workload = wl
		return perf.GPUStepTime(cfg, st)
	}
	cfg := s.be.CPU
	cfg.Workload = wl
	return perf.CPUStepTime(cfg, st)
}

// finishIteration commits the round's token production at its end time.
func (s *scheduler) finishIteration(decoding, admitted []*reqState) {
	now := float64(s.eng.Now())
	produce := func(r *reqState) {
		r.generated++
		if r.firstTokenAt == 0 {
			r.firstTokenAt = now
		}
		if r.generated >= r.req.OutputLen {
			s.kv.Release(r.req.ID)
			r.phase = phaseFinished
			r.finishedAt = now
			s.completed = append(s.completed, r)
			for i, cand := range s.running {
				if cand == r {
					s.running = append(s.running[:i], s.running[i+1:]...)
					break
				}
			}
		}
	}
	// Prefill produces each admitted request's next token (the first, or —
	// after preemption — the one the recomputed cache enables).
	for _, r := range admitted {
		s.running = append(s.running, r)
		produce(r)
	}
	for _, r := range decoding {
		if r.phase == phaseRunning { // not preempted since (cannot happen mid-round, but be safe)
			produce(r)
		}
	}
	s.iterating = false
	s.kick()
}

// report assembles the run outcome.
func (s *scheduler) report(states []*reqState) *Report {
	rep := &Report{
		Platform:           s.be.platformName(),
		OfferedRate:        s.cfg.Rate,
		Preemptions:        s.preemptions,
		KVBlocksTotal:      s.kv.TotalBlocks(),
		PeakKVBlocksInUse:  s.kv.PeakInUse(),
		KVBlocksInUseAtEnd: s.kv.InUse(),
	}
	if len(s.cfg.Trace) > 0 {
		span := 0.0
		for _, r := range s.cfg.Trace {
			if r.ArrivalSec > span {
				span = r.ArrivalSec
			}
		}
		if span > 0 {
			rep.OfferedRate = float64(len(s.cfg.Trace)) / span
		}
	}
	makespan := float64(s.eng.Now())
	rep.MakespanSec = makespan

	var ttfts, tpots, lats []float64
	goodTokens, goodReqs := 0, 0
	for _, st := range states {
		rep.TotalTokens += st.generated
		switch st.phase {
		case phaseDropped:
			rep.Dropped++
			continue
		case phaseFinished:
			rep.Completed++
		default:
			rep.Unfinished++
			continue
		}
		m := RequestMetrics{
			ID:           st.req.ID,
			TTFT:         st.firstTokenAt - st.req.ArrivalSec,
			Latency:      st.finishedAt - st.req.ArrivalSec,
			QueueDelay:   st.admittedAt - st.req.ArrivalSec,
			OutputTokens: st.generated,
			Preemptions:  st.preemptions,
		}
		// Single-token requests have no decode phase: TPOT is undefined for
		// them, so they neither join the TPOT quantiles nor can fail its SLO.
		tpotOK := true
		if st.generated > 1 {
			m.TPOT = (st.finishedAt - st.firstTokenAt) / float64(st.generated-1)
			tpotOK = m.TPOT <= s.cfg.TPOTSLOSec
			tpots = append(tpots, m.TPOT)
		}
		m.SLOMet = m.TTFT <= s.cfg.TTFTSLOSec && tpotOK
		rep.Requests = append(rep.Requests, m)
		ttfts = append(ttfts, m.TTFT)
		lats = append(lats, m.Latency)
		if m.SLOMet {
			goodReqs++
			goodTokens += m.OutputTokens
		}
	}
	if makespan > 0 {
		rep.TokensPerSec = float64(rep.TotalTokens) / makespan
		rep.GoodputTokensPerSec = float64(goodTokens) / makespan
		rep.GoodRequestsPerSec = float64(goodReqs) / makespan
	}
	rep.TTFT = quantiles(ttfts)
	rep.TPOT = quantiles(tpots)
	rep.Latency = quantiles(lats)
	return rep
}

// AdmitOrder is the sequence of request IDs in first-admission order.
type AdmitOrder []int

// RunAudited is Run plus the FIFO admission audit trail: the order in
// which requests were first admitted, for scheduling-invariant tests.
func RunAudited(be Backend, cfg Config) (*Report, AdmitOrder, error) {
	if err := cfg.normalize(); err != nil {
		return nil, nil, err
	}
	if !be.IsGPU && be.CPU.Sockets <= 0 {
		be.CPU.Sockets = 1
	}
	kvBudget, err := be.KVBudgetBytes(cfg.Workload)
	if err != nil {
		return nil, nil, err
	}
	bytesPerToken := cfg.Workload.Model.KVCacheBytesPerToken(cfg.Workload.Kind.Size())
	kv, err := NewBlockManager(kvBudget, cfg.BlockTokens, bytesPerToken)
	if err != nil {
		return nil, nil, err
	}
	// Noise parameters mirror the single-request paths: GPUs jitter less
	// and show no memory-encryption outlier tail (H100 leaves HBM clear).
	var noise *sim.Noise
	if be.IsGPU {
		noise = sim.NewNoise(cfg.Seed, hw.NoiseBase/2, hw.MemEncryptJitter/4, 0, 1)
	} else {
		noise = sim.NewNoise(cfg.Seed, hw.NoiseBase, hw.MemEncryptJitter, hw.OutlierProb, hw.OutlierScale)
	}
	s := &scheduler{cfg: cfg, be: be, eng: sim.NewEngine(), noise: noise, kv: kv}
	arrivals, err := s.arrivals()
	if err != nil {
		return nil, nil, err
	}
	states := make([]*reqState, len(arrivals))
	lastArrival := 0.0
	for i, req := range arrivals {
		req := req
		st := &reqState{req: req}
		states[i] = st
		if req.ArrivalSec > lastArrival {
			lastArrival = req.ArrivalSec
		}
		s.eng.Schedule(sim.Time(req.ArrivalSec), func(*sim.Engine) {
			s.queue = append(s.queue, st)
			s.kick()
		})
	}
	horizon := sim.Time(lastArrival + cfg.HorizonSec)
	if _, err := s.eng.RunUntil(horizon, cfg.MaxSteps); err != nil {
		return nil, nil, err
	}
	if s.err != nil {
		return nil, nil, s.err
	}
	return s.report(states), AdmitOrder(s.admitOrder), nil
}
