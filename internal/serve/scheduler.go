package serve

import (
	"fmt"
	"math"
	"math/rand"

	"cllm/internal/hw"
	"cllm/internal/perf"
	"cllm/internal/sim"
	"cllm/internal/trace"
)

// phase is a request's lifecycle state.
type phase int

const (
	phaseWaiting phase = iota
	phaseRunning
	phaseFinished
	phaseDropped
	// phaseHandoff marks a request that produced its first token on a
	// prefill-role replica and is now in flight to a decode replica: its KV
	// drains at the source, crosses the interconnect, and re-enters a
	// decode replica's queue (see handoff.go). Terminally it reports as
	// Unfinished — a handoff cut off by the horizon never completed.
	phaseHandoff
)

// reqState tracks one request through the scheduler.
type reqState struct {
	req      Request
	phase    phase
	admitSeq int // order of first admission (FIFO audit)
	// generated counts produced output tokens; survives preemption (the
	// delivered tokens are not un-delivered, the cache is recomputed).
	generated   int
	preemptions int
	// prefilled counts prompt tokens whose KV entries exist (computed this
	// admission or reused from the prefix cache); prefillTarget is where the
	// current prefill ends (prompt plus any tokens generated before a
	// preemption, which vLLM-style recompute re-prefills).
	prefilled     int
	prefillTarget int
	// swapped marks a preempted request whose computed KV entries are
	// parked in the host swap pool (swap-to-host preemption);
	// swappedTokens is how many leading entries the parked copy covers.
	// Re-admission transfers the copy back instead of recomputing it.
	swapped       bool
	swappedTokens int
	// admitted marks the first admission (the queue-delay endpoint and the
	// audit-trail entry); retried requests keep it across re-entries.
	admitted     bool
	admittedAt   float64 // first admission time
	firstTokenAt float64
	finishedAt   float64
	// deadline is the absolute admission deadline under deadline-aware
	// admission (renewed per retry attempt); attempt counts retries
	// consumed from the per-request budget.
	deadline float64
	attempt  int
}

// ctxTokens is the KV-cache footprint the request needs for its next decode
// step: the full prompt plus every generated token.
func (r *reqState) ctxTokens() int { return r.req.InputLen + r.generated }

// prefilling reports whether the request is mid-prefill (chunks remain).
func (r *reqState) prefilling() bool { return r.prefilled < r.prefillTarget }

// computedTokens is how many leading KV entries exist for a running
// request right now: its committed prefill progress while mid-prefill, its
// whole context once prefilled (every decode step writes the entry of the
// token it produces). Only meaningful for admitted requests — it is what a
// swap-out can park and a recompute must rebuild.
func (r *reqState) computedTokens() int {
	if r.prefilling() {
		return r.prefilled
	}
	return r.ctxTokens()
}

// chunkWork is one request's prefill contribution to an iteration: tokens
// new prompt tokens computed on top of hist cached ones.
type chunkWork struct {
	r      *reqState
	tokens int
	hist   int
}

// scheduler runs the continuous-batching loop on the event engine: one
// iteration event per engine step, shaped like Orca/vLLM iteration-level
// scheduling — running sequences decode one token, freed capacity admits
// queued prompts (whole, or chunk by chunk under chunked prefill), and KV
// exhaustion preempts the youngest sequence. Several schedulers can share
// one engine (see RunFleet); each owns its queue, KV pool and noise stream.
type scheduler struct {
	cfg    Config
	be     Backend
	eng    *sim.Engine
	noise  *sim.Noise
	kv     *BlockManager
	coster *perf.StepCoster
	// clear is the counterfactual clear-hardware coster (Config.ClearCoster):
	// when set and an observer is attached, every round's step shapes are
	// priced a second time with the TEE mechanisms neutralized and emitted on
	// the round event. It never feeds the engine clock.
	clear *perf.StepCoster

	// obs receives lifecycle events and gauge samples; nil (the default)
	// disables observation, and every emission site checks that first, so
	// the disabled path stays branch-only and allocation-free. replica is
	// this scheduler's index within its fleet, for event labeling.
	obs     Observer
	replica int

	queue     reqDeque    // FIFO; preempted requests rejoin at the front
	running   []*reqState // admission order (index 0 = oldest)
	iterating bool

	// Per-iteration scratch, reused across iterations: the iterating flag
	// guarantees at most one round is in flight per scheduler, so the slices
	// built by iterate are stable until finishIteration consumes them.
	chunks   []chunkWork
	decoding []*reqState
	idBuf    []int
	finishFn func(*sim.Engine) // cached closure; one alloc per scheduler, not per round

	admitCount  int
	admitOrder  []int // request IDs in admission order (test audit)
	preemptions int
	// Swap-to-host counters: cumulative transfers over the run, plus the
	// current iteration's transfer token accumulators (reset each round,
	// consumed by iterationTime — transfers within one round coalesce into
	// one costed copy per direction).
	swapOuts   int
	swapIns    int
	swapOutTok int
	swapInTok  int
	// Disaggregated-serving hooks (see topology.go / handoff.go). handoff,
	// set only on prefill-role replicas, receives each request right after
	// its first token; handoffQ defers those callbacks until the round's
	// events are emitted, so the attribution round span closes before the
	// request changes hands. The counters feed the report: Out at the
	// prefill side, In/fallbacks at the decode side, tokens and bytes on
	// the edge that drained them.
	handoff          func(*reqState)
	handoffQ         []*reqState
	handoffsOut      int
	handoffsIn       int
	handoffFallbacks int
	handoffTokens    int
	handoffBytes     float64
	// producedTot counts every output token produced so far; gauge samples
	// report it cumulatively so windowed throughput differences cleanly.
	producedTot int
	// roundProduced is the current round's production, consumed by the
	// per-round decode event (reset in finishIteration).
	roundProduced int
	// Round-costing components for the in-flight round (observer runs only):
	// the raw pre-noise prefill/decode/swap costs iterationTime computed, and
	// their clear-twin counterfactuals when a clear coster is attached.
	// Overwritten by every iterationTime call, consumed by the round event.
	roundPrefill      float64
	roundDecode       float64
	roundSwap         float64
	roundClearPrefill float64
	roundClearDecode  float64
	roundClearSwap    float64
	// sink, when non-nil, streams completed/dropped outcomes into
	// bounded-memory sketches as they happen (QuantileSketch mode): the
	// run retains no per-request state, so the report is assembled from
	// the sink instead of a states slice. noAudit additionally disables
	// the admit-order audit trail, whose memory is linear in admissions.
	sink    *streamAccum
	noAudit bool
	// Failure/overload machinery (see failure.go and admission.go). All of
	// it stays zero on the default path: failEnabled guards every crash
	// hook, down parks the iteration loop during recovery, abortRound
	// discards the round a crash interrupted, and recoverySec is the
	// priced cold start. drops is the per-reason drop taxonomy; sheds,
	// retries, crashes, downtimeSec and wastedTokens feed the report.
	failEnabled  bool
	failArmed    bool
	down         bool
	abortRound   bool
	recoverySec  float64
	failRNG      *rand.Rand
	lastProgress float64
	crashes      int
	downtimeSec  float64
	sheds        int
	retries      int
	wastedTokens int
	drops        [NumDropReasons]int
	// err records a costing failure (a backend misconfiguration); it halts
	// the loop and fails the run instead of reporting zeros as data.
	err error
}

// newScheduler builds one replica's scheduler on the given engine. cfg must
// already be normalized and the backend socket-defaulted; the noise stream
// is owned by this replica. The step coster is be.Coster when the caller
// shares one across replicas (RunFleet, fleet sizing), otherwise private.
func newScheduler(be Backend, cfg Config, eng *sim.Engine, noise *sim.Noise) (*scheduler, error) {
	kvBudget, err := be.KVBudgetBytes(cfg.Workload)
	if err != nil {
		return nil, err
	}
	bytesPerToken := cfg.Workload.Model.KVCacheBytesPerToken(cfg.Workload.Kind.Size())
	kv, err := NewBlockManager(kvBudget, cfg.BlockTokens, bytesPerToken, cfg.PrefixSharing)
	if err != nil {
		return nil, err
	}
	coster := be.Coster
	if coster == nil {
		coster, err = NewStepCoster(be, cfg)
		if err != nil {
			return nil, err
		}
	} else if !coster.CompatibleWith(cfg.Workload.Model, cfg.Workload.Kind, cfg.CostBucket) {
		// A shared table built for another model/datatype/bucket would
		// silently price this run with the wrong operator traces.
		return nil, fmt.Errorf("serve: shared step coster was built for a different model/datatype/cost-bucket than %s/%s/bucket %d",
			cfg.Workload.Model.Name, cfg.Workload.Kind, cfg.CostBucket)
	}
	if cfg.PreemptPolicy != PreemptRecompute {
		frac := cfg.SwapPoolFrac
		if frac < 0 {
			frac = 0 // sentinel: pool disabled, swap always falls back
		}
		kv.ConfigureSwapPool(int(math.Round(frac * float64(kv.TotalBlocks()))))
	}
	var clear *perf.StepCoster
	if cfg.ClearCoster != nil && cfg.Observer != nil {
		if !cfg.ClearCoster.CompatibleWith(cfg.Workload.Model, cfg.Workload.Kind, cfg.CostBucket) {
			return nil, fmt.Errorf("serve: clear coster was built for a different model/datatype/cost-bucket than %s/%s/bucket %d",
				cfg.Workload.Model.Name, cfg.Workload.Kind, cfg.CostBucket)
		}
		clear = cfg.ClearCoster
	}
	s := &scheduler{cfg: cfg, be: be, eng: eng, noise: noise, kv: kv, coster: coster, clear: clear, obs: cfg.Observer}
	s.finishFn = func(*sim.Engine) { s.finishIteration() }
	s.failEnabled = cfg.Faults.MTBFSec > 0 || len(cfg.Faults.Plan) > 0
	if s.failEnabled {
		s.recoverySec = cfg.RecoverySec
		if s.recoverySec <= 0 {
			s.recoverySec = ColdStartSec(be, cfg.Workload)
		}
	}
	return s, nil
}

// event fills the shared fields and hands ev to the observer. Callers must
// have checked s.obs != nil — keeping the check at the call site keeps the
// disabled path a single branch.
func (s *scheduler) event(ev Event) {
	ev.TimeSec = float64(s.eng.Now())
	ev.Replica = s.replica
	s.obs.Event(ev)
}

// swapEvent emits a swap transfer event with its payload and priced
// transfer time. Costing errors are ignored here: the transfer itself is
// priced (and error-checked) by iterationTime; the event is telemetry.
func (s *scheduler) swapEvent(kind EventKind, reqID, tokens int) {
	ev := Event{Kind: kind, ReqID: reqID, Tokens: tokens}
	if tokens > 0 {
		ev.Bytes = trace.KVSwapBytes(s.cfg.Workload, tokens)
		if t, err := s.coster.SwapTime(tokens); err == nil {
			ev.XferSec = t
		}
	}
	s.event(ev)
}

// submit enqueues an arrived request and wakes the iteration loop.
func (s *scheduler) submit(st *reqState) {
	if s.failEnabled {
		s.armFailures()
		s.lastProgress = float64(s.eng.Now())
	}
	if s.cfg.Faults.Admission != AdmitFIFO {
		st.deadline = float64(s.eng.Now()) + st.req.Class.deadlineMult()*s.cfg.DeadlineSec
	}
	if s.obs != nil {
		s.event(Event{Kind: EvArrive, ReqID: st.req.ID, Tokens: st.req.InputLen, Hist: st.req.OutputLen})
	}
	s.queue.PushBack(st)
	s.kick()
}

// submitHandoff enqueues a request arriving over a KV handoff at a
// decode-role replica. Unlike submit it emits no EvArrive — the request
// arrived at the fleet exactly once, on its prefill replica, and the
// observer stream keys per-request ownership off that event. Fault
// injection and non-FIFO admission are rejected for disaggregated
// topologies, so neither hook runs here.
func (s *scheduler) submitHandoff(st *reqState) {
	s.handoffsIn++
	s.queue.PushBack(st)
	s.kick()
}

// outstanding is the replica's current load: queued plus running requests.
// Load balancers use it for least-loaded dispatch.
func (s *scheduler) outstanding() int { return s.queue.Len() + len(s.running) }

// Run executes one serving simulation.
func Run(be Backend, cfg Config) (*Report, error) {
	rep, _, err := RunAudited(be, cfg)
	return rep, err
}

// genArrivals returns the offered load: the explicit trace when given, a
// workload scenario's synthesis when configured, otherwise Poisson arrivals
// with jittered lengths drawn from rng (so a seed fixes the whole run).
// With PrefixGroups set, synthetic requests are assigned to a random prefix
// group each and share the leading PrefixFrac×InputLen tokens within their
// group (RAG-style workloads: common system prompt and document set,
// distinct questions).
func genArrivals(cfg Config, rng *rand.Rand) ([]Request, error) {
	if len(cfg.Trace) == 0 && cfg.Scenario != nil {
		return scenarioArrivals(cfg, rng)
	}
	if len(cfg.Trace) > 0 {
		if err := validateTrace(cfg); err != nil {
			return nil, err
		}
		return append([]Request(nil), cfg.Trace...), nil
	}
	g := newPoissonGen(cfg, rng)
	out := make([]Request, cfg.Requests)
	for i := range out {
		out[i], _ = g.next()
	}
	return out, nil
}

// validateTrace rejects malformed explicit traces (the same checks the
// batch path always ran, shared with the streaming arrival source).
func validateTrace(cfg Config) error {
	seen := make(map[int]bool, len(cfg.Trace))
	for _, r := range cfg.Trace {
		if r.InputLen <= 0 || r.OutputLen <= 0 || r.ArrivalSec < 0 {
			return fmt.Errorf("serve: invalid trace request %+v", r)
		}
		if r.PrefixLen < 0 || r.PrefixLen > r.InputLen {
			return fmt.Errorf("serve: request %d prefix %d outside prompt %d", r.ID, r.PrefixLen, r.InputLen)
		}
		if sum := r.InputLen + r.OutputLen; sum > cfg.Workload.Model.ContextLen {
			return fmt.Errorf("serve: request %d length %d exceeds %s context %d",
				r.ID, sum, cfg.Workload.Model.Name, cfg.Workload.Model.ContextLen)
		}
		if seen[r.ID] {
			return fmt.Errorf("serve: duplicate request ID %d in trace", r.ID)
		}
		seen[r.ID] = true
	}
	return nil
}

// poissonGen synthesizes the Poisson arrival stream one request at a
// time. It draws from rng in exactly the order the historical batch loop
// did (inter-arrival, then prefix group and suffix jitter or input
// jitter, then output jitter), so draining it reproduces genArrivals'
// output bit for bit — the property the epoch-sharded runner relies on.
type poissonGen struct {
	cfg       Config
	rng       *rand.Rand
	prefixLen int
	t         float64
	i         int
}

func newPoissonGen(cfg Config, rng *rand.Rand) *poissonGen {
	prefixLen := 0
	if cfg.PrefixGroups > 0 {
		prefixLen = int(math.Round(cfg.PrefixFrac * float64(cfg.Workload.InputLen)))
		if prefixLen >= cfg.Workload.InputLen {
			prefixLen = cfg.Workload.InputLen - 1
		}
	}
	return &poissonGen{cfg: cfg, rng: rng, prefixLen: prefixLen}
}

func (g *poissonGen) jitter(mean int) int {
	if g.cfg.LengthJitter <= 0 || mean <= 0 {
		return mean
	}
	f := 1 + g.cfg.LengthJitter*(2*g.rng.Float64()-1)
	n := int(math.Round(float64(mean) * f))
	if n < 1 {
		n = 1
	}
	return n
}

// next returns the following arrival, or false once cfg.Requests have
// been drawn.
func (g *poissonGen) next() (Request, bool) {
	if g.i >= g.cfg.Requests {
		return Request{}, false
	}
	g.t += g.rng.ExpFloat64() / g.cfg.Rate
	var inLen int
	r := Request{ID: g.i, ArrivalSec: g.t}
	if g.prefixLen > 0 {
		// The shared prefix has one fixed length per group; only the
		// request-specific suffix jitters. Group membership is drawn at
		// random — deterministic round-robin assignment would alias with
		// round-robin dispatch in fleet runs and fake prefix affinity.
		r.PrefixID = g.rng.Intn(g.cfg.PrefixGroups) + 1
		r.PrefixLen = g.prefixLen
		suffix := g.jitter(g.cfg.Workload.InputLen - g.prefixLen)
		if suffix < 1 {
			suffix = 1
		}
		inLen = g.prefixLen + suffix
	} else {
		inLen = g.jitter(g.cfg.Workload.InputLen)
	}
	outLen := g.jitter(g.cfg.Workload.OutputLen)
	if outLen < 2 {
		outLen = 2 // keep TPOT defined
	}
	// Upward jitter on means near the context limit must not overflow it.
	r.InputLen, r.OutputLen = inLen, outLen
	g.i++
	return clampToContext(r, g.cfg.Workload.Model.ContextLen), true
}

// clampToContext enforces the model context window on a synthesized
// request: shorten the prompt first, then the generation, and never let a
// shared prefix cover (or outlive) the whole prompt.
func clampToContext(r Request, ctx int) Request {
	if over := r.InputLen + r.OutputLen - ctx; over > 0 {
		r.InputLen -= over
		if r.InputLen < 1 {
			r.InputLen = 1
		}
		if r.InputLen+r.OutputLen > ctx {
			r.OutputLen = ctx - r.InputLen
		}
	}
	if r.PrefixLen >= r.InputLen {
		r.PrefixLen = r.InputLen - 1
	}
	if r.PrefixLen <= 0 {
		r.PrefixID, r.PrefixLen = 0, 0
	}
	return r
}

// scenarioArrivals adopts a workload scenario's request stream: shapes and
// times come from the scenario; the context window is enforced by the same
// clamp the synthetic path uses.
func scenarioArrivals(cfg Config, rng *rand.Rand) ([]Request, error) {
	reqs, err := cfg.Scenario.Generate(cfg.Requests, rng)
	if err != nil {
		return nil, err
	}
	out := make([]Request, len(reqs))
	for i, wr := range reqs {
		out[i] = clampToContext(Request{
			ID: i, ArrivalSec: wr.ArrivalSec,
			InputLen: wr.InputLen, OutputLen: wr.OutputLen,
			PrefixID: wr.PrefixID, PrefixLen: wr.PrefixLen,
			Class: classOfShape(wr.Shape),
		}, cfg.Workload.Model.ContextLen)
	}
	return out, nil
}

// Arrivals synthesizes the offered load a configuration describes — trace,
// scenario, or Poisson — exactly as Run/RunFleet would see it. External
// control loops (internal/autoscale) use it to dispatch the same stream
// across a fleet they manage themselves.
func Arrivals(cfg Config) ([]Request, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	return genArrivals(cfg, rand.New(rand.NewSource(cfg.Seed)))
}

// prefixHash derives the content-identity hash of a request's shared
// prefix. Requests with equal PrefixID model byte-identical prefix content,
// so they hash equally; the chained per-block keys (see chainHash) then
// guarantee requests with different prefixes can never alias a block.
func prefixHash(prefixID int) uint64 {
	return mix64(uint64(prefixID) + 0x9e3779b97f4a7c15)
}

// kick starts the iteration loop if it is idle. A crashed replica stays
// parked until its recovery event clears down and kicks again.
func (s *scheduler) kick() {
	if s.iterating || s.down {
		return
	}
	if len(s.running) == 0 && s.queue.Len() == 0 {
		return
	}
	s.iterating = true
	s.iterate()
}

// iterate performs one scheduling round at the current simulated time and
// schedules its completion. The round has three passes:
//
//  1. prefill continuation — running sequences mid-prefill consume the
//     iteration's chunk budget, oldest first;
//  2. decode capacity — every fully-prefilled sequence must be able to
//     append one token, preempting the youngest sequence on exhaustion;
//  3. admission — remaining batch slots and chunk budget admit queued
//     prompts, reusing shared prefix blocks when sharing is on.
func (s *scheduler) iterate() {
	now := float64(s.eng.Now())
	s.swapOutTok, s.swapInTok = 0, 0

	// Chunk budget: new prompt tokens this iteration. 0 = monolithic
	// (unlimited) prefills.
	budget := s.cfg.ChunkTokens
	chunked := budget > 0
	chunks := s.chunks[:0]

	// 1. Prefill continuation pass (oldest first). A sequence that cannot
	// grow its cache preempts the youngest running sequence, possibly
	// itself.
	for i := 0; i < len(s.running); i++ {
		if chunked && budget <= 0 {
			break
		}
		r := s.running[i]
		if !r.prefilling() {
			continue
		}
		chunk := r.prefillTarget - r.prefilled
		if chunked && chunk > budget {
			chunk = budget
		}
		// A chunk that completes the prompt produces the first token, whose
		// KV entry the next decode step writes — reserve its slot now so
		// the request cannot be admitted, fully prefilled, and then
		// self-preempted for want of one block.
		need := r.prefilled + chunk
		if need == r.prefillTarget {
			need++
		}
		stalled := false
		for !s.kv.Grow(r.req.ID, need) {
			victim := s.victim()
			s.preempt(victim, ReasonPrefillStall)
			chunks = dropChunk(chunks, victim)
			if victim == r {
				stalled = true
				break
			}
		}
		if stalled {
			break // r was the youngest: everything after it is gone too
		}
		chunks = append(chunks, chunkWork{r: r, tokens: chunk, hist: r.prefilled})
		if chunked {
			budget -= chunk
		}
	}

	// 2. Decode capacity pass: every fully-prefilled sequence must be able
	// to append one token. When the pool is exhausted, preempt the youngest
	// running sequence (vLLM's recompute policy): release its blocks and
	// requeue it at the front, where it will re-prefill its full context
	// later (shared prefix blocks may still be cached then).
	decoding := s.decoding[:0]
	for i := 0; i < len(s.running); {
		r := s.running[i]
		if r.prefilling() {
			i++
			continue
		}
		if s.kv.Grow(r.req.ID, r.ctxTokens()+1) {
			decoding = append(decoding, r)
			i++
			continue
		}
		victim := s.victim()
		s.preempt(victim, ReasonDecodeStall)
		chunks = dropChunk(chunks, victim)
		if victim == r {
			break // r was the youngest; the loop is past every survivor
		}
		decoding = decoding[:0]
		i = 0 // pool changed; re-run the pass from the oldest sequence
	}

	// 3. Admission pass: fill remaining batch slots while chunk budget and
	// the pool allow — FIFO by default; deadline-aware policies move the
	// earliest-deadline request to the front first (dropping or shedding
	// infeasible ones on the way, see admitNext). A request that cannot
	// fit even an empty pool is dropped — no amount of waiting makes the
	// enclave bigger.
	for s.queue.Len() > 0 && len(s.running) < s.cfg.MaxBatch {
		head := s.queue.Front()
		if s.cfg.Faults.Admission != AdmitFIFO {
			if head = s.admitNext(now); head == nil {
				break // queue drained by expiry/shedding, or a costing error
			}
		}
		target := head.ctxTokens() // prompt plus pre-preemption tokens to re-prefill
		if s.kv.BlocksFor(target+1) > s.kv.TotalBlocks() {
			s.queue.PopFront()
			s.dropQueued(head, DropKVExhausted, target)
			continue
		}
		// A fully-parked swap copy needs no chunk budget — swap-in is a
		// transfer, not prefill compute.
		restored := 0
		if head.swapped {
			restored = head.swappedTokens
		}
		if chunked && budget <= 0 && restored < target {
			break
		}
		// Reuse cached prefix blocks. At least the last prompt token is
		// always recomputed — producing the first output token needs a
		// forward pass even on a full cache hit.
		cached := 0
		if s.cfg.PrefixSharing && head.req.PrefixID != 0 {
			pl := head.req.PrefixLen
			if pl > target-1 {
				pl = target - 1
			}
			c, err := s.kv.AcquirePrefix(head.req.ID, prefixHash(head.req.PrefixID), pl)
			if err != nil {
				s.err = err
				s.iterating = false
				s.chunks, s.decoding = chunks, decoding
				return
			}
			cached = c
		}
		// Tokens already computed: cache hits plus the parked swap copy
		// (self-contained, so it covers the prefix span too).
		computed := cached
		if restored > computed {
			computed = restored
		}
		chunk := target - computed
		if chunked && chunk > budget {
			chunk = budget
		}
		need := computed + chunk
		if need == target {
			need++ // first-token slot (see the continuation pass)
		}
		if !s.kv.Grow(head.req.ID, need) {
			s.kv.Release(head.req.ID) // un-pin the acquired prefix; a swap copy stays parked
			break
		}
		s.kv.creditPrefixStats(head.req.ID, cached)
		s.queue.PopFront()
		if !head.admitted {
			head.admitted = true
			head.admittedAt = now
			head.admitSeq = s.admitCount
			s.admitCount++
			if !s.noAudit {
				s.admitOrder = append(s.admitOrder, head.req.ID)
			}
		}
		head.phase = phaseRunning
		head.prefilled = computed
		head.prefillTarget = target
		if s.obs != nil {
			s.event(Event{Kind: EvAdmit, ReqID: head.req.ID, Tokens: target, Hist: computed})
		}
		if head.swapped {
			// Swap-in: transfer the parked copy back into the device blocks
			// just grown. Tokens resident in re-acquired shared blocks skip
			// the transfer, and republished prefix blocks are filled from
			// the copy — swapped blocks rejoin the prefix cache without
			// recompute (MarkComputed makes them hits for later sharers).
			in := restored - cached
			if in > 0 {
				s.swapInTok += in
			} else {
				in = 0
			}
			if s.obs != nil {
				s.swapEvent(EvSwapIn, head.req.ID, in)
			}
			s.kv.SwapIn(head.req.ID)
			s.kv.MarkComputed(head.req.ID, computed)
			head.swapped, head.swappedTokens = false, 0
			s.swapIns++
		}
		s.running = append(s.running, head)
		if chunk > 0 {
			chunks = append(chunks, chunkWork{r: head, tokens: chunk, hist: computed})
			if chunked {
				budget -= chunk
			}
		}
	}

	if len(decoding) == 0 && len(chunks) == 0 && s.swapOutTok == 0 && s.swapInTok == 0 {
		// Nothing can make progress now; the next arrival (or nothing)
		// restarts the loop. With an empty running set the pool's active
		// blocks are free (cached blocks evict on demand), so a non-fitting
		// queue head was dropped above — no livelock.
		s.iterating = false
		s.chunks, s.decoding = chunks, decoding
		return
	}

	// Without chunked prefill, a prefill runs as a dedicated prefill-only
	// iteration and in-flight decodes stall behind it — the classic
	// continuous-batching behavior whose tail-TPOT cost chunked prefill
	// exists to bound. Chunked iterations are hybrid: the chunk budget and
	// one decode step share the round. (Stalled decodes keep their grown
	// block for the next round.)
	if !chunked && len(chunks) > 0 {
		decoding = decoding[:0]
	}

	dur, err := s.iterationTime(decoding, chunks)
	s.chunks, s.decoding = chunks, decoding
	if err != nil {
		// A costing failure is a configuration bug (e.g. more sockets than
		// the CPU has); halt the loop and fail the whole run.
		s.err = err
		s.iterating = false
		return
	}
	dur = s.noise.Sample(dur, s.be.protected())
	s.eng.Schedule(sim.Time(dur), s.finishFn)
}

// dropChunk cancels a preempted sequence's chunk work for this iteration.
func dropChunk(chunks []chunkWork, victim *reqState) []chunkWork {
	for i, cw := range chunks {
		if cw.r == victim {
			return append(chunks[:i], chunks[i+1:]...)
		}
	}
	return chunks
}

// preempt evicts a running sequence from the batch and requeues it at the
// front. The victim is always the youngest running sequence, i.e. the tail
// of the admission-ordered running slice — an O(1) pop; the scan below is
// a safety net for any other caller. What happens to the victim's KV cache
// is the preemption policy's call: recompute releases it (vLLM's default),
// swap parks it in the host swap pool, auto picks whichever the memoized
// cost model estimates cheaper — with swap falling back to recompute when
// the pool is full or nothing is computed yet. Either way the victim's
// device blocks free, so the caller's Grow retry makes progress. reason
// labels the preemption event with the capacity pass that chose the victim.
func (s *scheduler) preempt(r *reqState, reason PreemptReason) {
	if s.obs != nil {
		s.event(Event{Kind: EvPreempt, ReqID: r.req.ID, Tokens: r.computedTokens(),
			Policy: s.cfg.PreemptPolicy, Reason: reason})
	}
	if n := len(s.running); n > 0 && s.running[n-1] == r {
		s.running[n-1] = nil // release for GC; append will overwrite
		s.running = s.running[:n-1]
	} else {
		for i, cand := range s.running {
			if cand == r {
				s.running = append(s.running[:i], s.running[i+1:]...)
				break
			}
		}
	}
	if reason == ReasonCrash {
		// The device KV dies with the replica: nothing to park, nothing to
		// swap — the victim recomputes from scratch.
		s.kv.Release(r.req.ID)
		r.prefilled = 0
		r.prefillTarget = 0
	} else if !s.trySwapOut(r) {
		s.kv.Release(r.req.ID)
		r.prefilled = 0
		r.prefillTarget = 0
	}
	r.phase = phaseWaiting
	r.preemptions++
	s.preemptions++
	s.queue.PushFront(r)
}

// trySwapOut parks the victim's computed KV entries in the host swap pool
// when the policy allows and the pool has room. Returns false when the
// preemption should recompute instead.
func (s *scheduler) trySwapOut(r *reqState) bool {
	if s.cfg.PreemptPolicy == PreemptRecompute || s.err != nil {
		return false
	}
	tokens := r.computedTokens()
	if tokens <= 0 {
		return false // nothing computed: recompute is free
	}
	if s.cfg.PreemptPolicy == PreemptAuto && !s.swapCheaper(r, tokens) {
		return false
	}
	if !s.kv.SwapOut(r.req.ID, tokens) {
		return false // pool full: fall back to recompute
	}
	r.swapped = true
	r.swappedTokens = tokens
	r.prefilled = 0
	r.prefillTarget = 0
	s.swapOuts++
	s.swapOutTok += tokens
	if s.obs != nil {
		s.swapEvent(EvSwapOut, r.req.ID, tokens)
	}
	return true
}

// swapCheaper is the auto policy's per-preemption estimate: park-and-
// restore (two transfers of the computed entries at the backend's swap
// bandwidth) against re-prefilling the victim's whole context from
// scratch. Both sides come from the shared memoized coster, so the
// decision is bit-identical across runs and worker counts.
func (s *scheduler) swapCheaper(r *reqState, tokens int) bool {
	swapT, err := s.coster.SwapTime(tokens)
	if err != nil {
		s.err = err
		return false
	}
	recT, err := s.coster.ChunkTime(1, r.ctxTokens(), 0)
	if err != nil {
		s.err = err
		return false
	}
	return 2*swapT < recT
}

// iterationTime costs one scheduling round with the mechanistic roofline:
// the iteration's prefill chunks (admissions, continuations and
// re-prefills) plus one decode step over the running batch. Chunks are
// costed as one batched chunk step at the mean chunk length and mean
// cached history; KV traffic is linear in totals, so the mean is exact for
// the memory-bound path, approximate for attention-FLOPs skew (same
// approximation the decode batch uses).
func (s *scheduler) iterationTime(decoding []*reqState, chunks []chunkWork) (float64, error) {
	var total float64
	// With an observer attached the per-component costs are kept for the
	// round event's attribution payload; with a clear coster the same step
	// shapes are also priced on the clear-hardware twin. Neither feeds the
	// engine clock, and total accumulates in the same order regardless, so
	// observed runs stay bit-identical to bare ones.
	wantClear := s.obs != nil && s.clear != nil
	var prefT, decT, swapT, clearPrefT, clearDecT, clearSwapT float64
	if len(chunks) > 0 {
		sumTok, sumHist := 0, 0
		for _, cw := range chunks {
			sumTok += cw.tokens
			sumHist += cw.hist
		}
		meanTok := (sumTok + len(chunks) - 1) / len(chunks)
		meanHist := sumHist / len(chunks)
		t, err := s.chunkTime(len(chunks), meanTok, meanHist)
		if err != nil {
			return 0, err
		}
		prefT = t
		total += t
		if wantClear {
			ct, err := s.clear.ChunkTime(len(chunks), meanTok, meanHist)
			if err != nil {
				return 0, err
			}
			clearPrefT = ct
		}
	}
	if len(decoding) > 0 {
		batch, meanCtx, shared := s.decodeShape(decoding)
		t, err := s.coster.DecodeTime(batch, meanCtx, shared)
		if err != nil {
			return 0, err
		}
		decT = t
		total += t
		if wantClear {
			ct, err := s.clear.DecodeTime(batch, meanCtx, shared)
			if err != nil {
				return 0, err
			}
			clearDecT = ct
		}
	}
	// Swap transfers of the round: one coalesced copy per direction at the
	// backend's swap bandwidth (cGPU's encrypted bounce buffer, a CPU TEE's
	// near-native memcpy).
	if s.swapOutTok > 0 {
		t, err := s.coster.SwapTime(s.swapOutTok)
		if err != nil {
			return 0, err
		}
		swapT += t
		total += t
		if wantClear {
			ct, err := s.clear.SwapTime(s.swapOutTok)
			if err != nil {
				return 0, err
			}
			clearSwapT += ct
		}
	}
	if s.swapInTok > 0 {
		t, err := s.coster.SwapTime(s.swapInTok)
		if err != nil {
			return 0, err
		}
		swapT += t
		total += t
		if wantClear {
			ct, err := s.clear.SwapTime(s.swapInTok)
			if err != nil {
				return 0, err
			}
			clearSwapT += ct
		}
	}
	if s.obs != nil {
		s.roundPrefill, s.roundDecode, s.roundSwap = prefT, decT, swapT
		s.roundClearPrefill, s.roundClearDecode, s.roundClearSwap = clearPrefT, clearDecT, clearSwapT
	}
	return total, nil
}

// decodeShape reduces the decode batch to the shape the coster prices: the
// batch size, the mean context length, and the prefix-shared token count.
// KV traffic is linear in total context, so costing at the mean context
// length is exact for the memory-bound path. When prefix sharing is on,
// repeat reads of shared blocks are flagged so the roofline's TLB/enclave
// working set counts each shared page once.
func (s *scheduler) decodeShape(decoding []*reqState) (batch, meanCtx, shared int) {
	ctx := 0
	for _, r := range decoding {
		ctx += r.ctxTokens()
	}
	meanCtx = (ctx + len(decoding) - 1) / len(decoding)
	if s.cfg.PrefixSharing {
		ids := s.idBuf[:0]
		for _, r := range decoding {
			ids = append(ids, r.req.ID)
		}
		s.idBuf = ids
		shared = s.kv.DedupSavedTokens(ids)
	}
	return len(decoding), meanCtx, shared
}

// chunkTime costs a batched prefill-chunk step: batch rows each computing
// chunk new prompt tokens over hist cached ones.
func (s *scheduler) chunkTime(batch, chunk, hist int) (float64, error) {
	return s.coster.ChunkTime(batch, chunk, hist)
}

// finishIteration commits the round's prefill progress and token
// production at its end time. It consumes the scratch slices iterate left
// on the scheduler — at most one round is ever in flight.
func (s *scheduler) finishIteration() {
	if s.abortRound {
		// A crash interrupted this round: its KV writes and token
		// production died with the device. The crash already emitted the
		// round boundary; discard the commits and let recovery restart the
		// loop (unless it already completed).
		s.abortRound = false
		s.iterating = false
		if !s.down {
			s.kick()
		}
		return
	}
	decoding, chunks := s.decoding, s.chunks
	now := float64(s.eng.Now())
	s.roundProduced = 0
	produce := func(r *reqState) {
		r.generated++
		s.producedTot++
		s.roundProduced++
		if r.firstTokenAt == 0 {
			r.firstTokenAt = now
			if s.obs != nil {
				s.event(Event{Kind: EvFirstToken, ReqID: r.req.ID})
			}
		}
		if s.handoff != nil && r.generated == 1 && r.generated < r.req.OutputLen {
			// Prefill-role replica: the request stops here with its first
			// token delivered. It leaves the batch now (its KV blocks stay
			// held until the source drain completes) and the dispatch layer
			// prices its handoff after this round's events are emitted.
			r.phase = phaseHandoff
			for i, cand := range s.running {
				if cand == r {
					s.running = append(s.running[:i], s.running[i+1:]...)
					break
				}
			}
			s.handoffQ = append(s.handoffQ, r)
			return
		}
		if r.generated >= r.req.OutputLen {
			s.kv.Release(r.req.ID)
			r.phase = phaseFinished
			r.finishedAt = now
			if s.sink != nil {
				s.sink.observe(r, s.cfg.TTFTSLOSec, s.cfg.TPOTSLOSec)
			}
			for i, cand := range s.running {
				if cand == r {
					s.running = append(s.running[:i], s.running[i+1:]...)
					break
				}
			}
			if s.obs != nil {
				// Same arithmetic as report(): the event's SLO verdict is
				// bit-identical to the aggregate's.
				ttft := r.firstTokenAt - r.req.ArrivalSec
				tpotOK := true
				if r.generated > 1 {
					tpotOK = (r.finishedAt-r.firstTokenAt)/float64(r.generated-1) <= s.cfg.TPOTSLOSec
				}
				s.event(Event{Kind: EvFinish, ReqID: r.req.ID, Tokens: r.generated,
					SLOMet: ttft <= s.cfg.TTFTSLOSec && tpotOK})
			}
		}
	}
	// Prefill chunks commit their progress; a chunk that completes the
	// prompt produces the request's next token (the first, or — after
	// preemption — the one the recomputed cache enables). Completed prefix
	// blocks become cache hits for later sharers.
	for _, cw := range chunks {
		r := cw.r
		if r.phase != phaseRunning { // preempted mid-round (cannot happen, but be safe)
			continue
		}
		if s.obs != nil {
			s.event(Event{Kind: EvPrefillChunk, ReqID: r.req.ID, Tokens: cw.tokens, Hist: cw.hist})
		}
		r.prefilled += cw.tokens
		s.kv.MarkComputed(r.req.ID, r.prefilled)
		if !r.prefilling() {
			produce(r)
		}
	}
	for _, r := range decoding {
		if r.phase == phaseRunning {
			produce(r)
		}
	}
	if s.obs != nil {
		s.event(Event{Kind: EvDecodeRound, ReqID: -1, Tokens: s.roundProduced, Hist: len(decoding),
			PrefillSec: s.roundPrefill, DecodeSec: s.roundDecode, SwapSec: s.roundSwap,
			ClearPrefillSec: s.roundClearPrefill, ClearDecodeSec: s.roundClearDecode, ClearSwapSec: s.roundClearSwap})
		s.obs.Sample(Sample{
			TimeSec:         now,
			Replica:         s.replica,
			QueueDepth:      s.queue.Len(),
			Running:         len(s.running),
			KVBlocksInUse:   s.kv.InUse(),
			KVBlocksCached:  s.kv.CachedBlocks(),
			SwapBlocksInUse: s.kv.SwappedBlocks(),
			TotalTokens:     s.producedTot,
			HitTokens:       s.kv.HitTokens(),
			MissTokens:      s.kv.MissTokens(),
		})
	}
	if len(s.handoffQ) > 0 {
		// Deferred handoff initiations: run them after the round event so
		// attribution's round span closes with the request still a member.
		q := s.handoffQ
		s.handoffQ = s.handoffQ[:0]
		for _, r := range q {
			s.handoff(r)
		}
	}
	s.progress()
	s.iterating = false
	s.kick()
}

// report assembles the run outcome.
func (s *scheduler) report(states []*reqState) *Report {
	rep := &Report{
		Platform:              s.be.platformName(),
		OfferedRate:           s.cfg.Rate,
		Preemptions:           s.preemptions,
		KVBlocksTotal:         s.kv.TotalBlocks(),
		PeakKVBlocksInUse:     s.kv.PeakInUse(),
		KVBlocksInUseAtEnd:    s.kv.InUse(),
		KVBlocksCachedAtEnd:   s.kv.CachedBlocks(),
		PrefixCacheHitTokens:  s.kv.HitTokens(),
		PrefixCacheMissTokens: s.kv.MissTokens(),
		EvictedBlocks:         s.kv.EvictedBlocks(),
		SwapOuts:              s.swapOuts,
		SwapIns:               s.swapIns,
		SwapPoolBlocks:        s.kv.SwapPoolBlocks(),
		PeakSwapBlocksInUse:   s.kv.PeakSwapBlocks(),
		SwapBlocksAtEnd:       s.kv.SwappedBlocks(),
		DroppedByReason:       s.drops,
		Sheds:                 s.sheds,
		Retries:               s.retries,
		Crashes:               s.crashes,
		DowntimeSec:           s.downtimeSec,
		HandoffsOut:           s.handoffsOut,
		HandoffsIn:            s.handoffsIn,
		HandoffFallbacks:      s.handoffFallbacks,
		HandoffTokens:         s.handoffTokens,
		HandoffBytes:          s.handoffBytes,
	}
	if len(s.cfg.Trace) > 0 {
		span := 0.0
		for _, r := range s.cfg.Trace {
			if r.ArrivalSec > span {
				span = r.ArrivalSec
			}
		}
		if span > 0 {
			rep.OfferedRate = float64(len(s.cfg.Trace)) / span
		}
	}
	makespan := float64(s.eng.Now())
	if s.failEnabled && s.lastProgress < makespan {
		// Crash/recovery events keep the engine ticking long after the
		// last request outcome; throughput is measured to the last progress
		// instant instead.
		makespan = s.lastProgress
	}
	rep.MakespanSec = makespan

	// Tokens a retry discarded were still produced — they stay in the
	// throughput total (and match the per-round event sums exactly).
	rep.TotalTokens = s.wastedTokens
	rep.Requests = make([]RequestMetrics, 0, len(states))
	ttfts := make([]float64, 0, len(states))
	tpots := make([]float64, 0, len(states))
	lats := make([]float64, 0, len(states))
	goodTokens, goodReqs, completedTokens := 0, 0, 0
	for _, st := range states {
		rep.TotalTokens += st.generated
		switch st.phase {
		case phaseDropped:
			rep.Dropped++
			continue
		case phaseFinished:
			rep.Completed++
			rep.CompletedByClass[st.req.Class]++
			completedTokens += st.generated
		default:
			rep.Unfinished++
			continue
		}
		m := RequestMetrics{
			ID:           st.req.ID,
			TTFT:         st.firstTokenAt - st.req.ArrivalSec,
			Latency:      st.finishedAt - st.req.ArrivalSec,
			QueueDelay:   st.admittedAt - st.req.ArrivalSec,
			OutputTokens: st.generated,
			Preemptions:  st.preemptions,
		}
		// Single-token requests have no decode phase: TPOT is undefined for
		// them, so they neither join the TPOT quantiles nor can fail its SLO.
		tpotOK := true
		if st.generated > 1 {
			m.TPOT = (st.finishedAt - st.firstTokenAt) / float64(st.generated-1)
			tpotOK = m.TPOT <= s.cfg.TPOTSLOSec
			tpots = append(tpots, m.TPOT)
		}
		m.SLOMet = m.TTFT <= s.cfg.TTFTSLOSec && tpotOK
		rep.Requests = append(rep.Requests, m)
		ttfts = append(ttfts, m.TTFT)
		lats = append(lats, m.Latency)
		if m.SLOMet {
			goodReqs++
			goodTokens += m.OutputTokens
			rep.GoodTokensByClass[st.req.Class] += m.OutputTokens
		}
	}
	rep.GoodRequests = goodReqs
	rep.GoodOutputTokens = goodTokens
	rep.CompletedOutputTokens = completedTokens
	if makespan > 0 {
		rep.TokensPerSec = float64(rep.TotalTokens) / makespan
		rep.GoodputTokensPerSec = float64(goodTokens) / makespan
		rep.GoodRequestsPerSec = float64(goodReqs) / makespan
	}
	rep.TTFT = quantiles(ttfts)
	rep.TPOT = quantiles(tpots)
	rep.Latency = quantiles(lats)
	return rep
}

// AdmitOrder is the sequence of request IDs in first-admission order.
type AdmitOrder []int

// newNoise builds the replica noise stream. Parameters mirror the
// single-request paths: GPUs jitter less and show no memory-encryption
// outlier tail (H100 leaves HBM clear).
func newNoise(be Backend, seed int64) *sim.Noise {
	if be.IsGPU {
		return sim.NewNoise(seed, hw.NoiseBase/2, hw.MemEncryptJitter/4, 0, 1)
	}
	return sim.NewNoise(seed, hw.NoiseBase, hw.MemEncryptJitter, hw.OutlierProb, hw.OutlierScale)
}

// RunAudited is Run plus the FIFO admission audit trail: the order in
// which requests were first admitted, for scheduling-invariant tests.
func RunAudited(be Backend, cfg Config) (*Report, AdmitOrder, error) {
	if err := cfg.normalize(); err != nil {
		return nil, nil, err
	}
	if !be.IsGPU && be.CPU.Sockets <= 0 {
		be.CPU.Sockets = 1
	}
	if cfg.QuantileMode == QuantileSketch || cfg.EpochRequests > 0 {
		return runSharded(be, cfg)
	}
	noise := newNoise(be, cfg.Seed)
	s, err := newScheduler(be, cfg, sim.NewEngine(), noise)
	if err != nil {
		return nil, nil, err
	}
	arrivals, err := genArrivals(cfg, noise.RNG())
	if err != nil {
		return nil, nil, err
	}
	s.admitOrder = make([]int, 0, len(arrivals))
	states := make([]*reqState, len(arrivals))
	stateBlock := make([]reqState, len(arrivals)) // one allocation, not one per request
	lastArrival := 0.0
	for i, req := range arrivals {
		st := &stateBlock[i]
		st.req = req
		states[i] = st
		if req.ArrivalSec > lastArrival {
			lastArrival = req.ArrivalSec
		}
		s.eng.Schedule(sim.Time(req.ArrivalSec), func(*sim.Engine) {
			s.submit(st)
		})
	}
	horizon := sim.Time(lastArrival + cfg.HorizonSec)
	if _, err := s.eng.RunUntil(horizon, cfg.MaxSteps); err != nil {
		return nil, nil, err
	}
	if s.err != nil {
		return nil, nil, s.err
	}
	return s.report(states), AdmitOrder(s.admitOrder), nil
}
