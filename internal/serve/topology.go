package serve

import (
	"fmt"
	"strings"
)

// Role says which serving stages a fleet role group runs. A unified group
// serves requests end to end (the classic fleet); a prefill group computes
// prompts and first tokens only, handing the KV cache off to a decode
// group that generates the remaining tokens. Disaggregating the two stages
// across TEE boundaries is the paper-shaped play: cGPU prefills fast but
// pays the encrypted bounce buffer on every transfer, while CPU TEEs
// decode near-natively at a fraction of the rental price.
type Role int

const (
	// RoleUnified serves prefill and decode on the same replica.
	RoleUnified Role = iota
	// RolePrefill serves prompts up to the first token, then hands the
	// computed KV cache off to a decode replica.
	RolePrefill
	// RoleDecode admits handed-off requests with pre-computed KV and
	// generates their remaining tokens.
	RoleDecode
)

// String names the role as the CLI spells it.
func (r Role) String() string {
	switch r {
	case RoleUnified:
		return "unified"
	case RolePrefill:
		return "prefill"
	case RoleDecode:
		return "decode"
	}
	return fmt.Sprintf("Role(%d)", int(r))
}

// ParseRole resolves a CLI role name.
func ParseRole(s string) (Role, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "unified", "":
		return RoleUnified, nil
	case "prefill":
		return RolePrefill, nil
	case "decode":
		return RoleDecode, nil
	}
	return 0, fmt.Errorf("serve: unknown role %q (unified|prefill|decode)", s)
}

// RoleGroup is one homogeneous slice of a fleet topology: Replicas copies
// of Backend serving Role, dispatched to per Policy. Groups of one stage
// (all prefill groups, or all decode groups) must agree on Policy — the
// stage has one dispatcher.
type RoleGroup struct {
	Role     Role
	Backend  Backend
	Replicas int
	Policy   LBPolicy
}

// Topology describes a fleet as role groups. Either every group is
// RoleUnified (a flat, possibly heterogeneous fleet behind one load
// balancer — the classic RunFleet shape when there is a single group), or
// no group is: a disaggregated topology needs at least one prefill and one
// decode group, and the dispatch layer routes every request
// prefill→decode with an explicitly priced KV handoff between the stages.
type Topology struct {
	Groups []RoleGroup
}

// Unified wraps the classic homogeneous fleet triple as a one-group
// topology — the shape RunFleet delegates to.
func Unified(be Backend, fc FleetConfig) Topology {
	return Topology{Groups: []RoleGroup{{
		Role: RoleUnified, Backend: be, Replicas: fc.Replicas, Policy: fc.Policy,
	}}}
}

// Disaggregated reports whether the topology splits prefill from decode.
func (t Topology) Disaggregated() bool {
	for _, g := range t.Groups {
		if g.Role != RoleUnified {
			return true
		}
	}
	return false
}

// Replicas is the topology's total replica count (after defaulting).
func (t Topology) Replicas() int {
	n := 0
	for _, g := range t.Groups {
		r := g.Replicas
		if r <= 0 {
			r = 1
		}
		n += r
	}
	return n
}

// validate checks the role structure and normalizes replica counts in
// place (a group's zero Replicas defaults to 1, mirroring FleetConfig).
func (t *Topology) validate() error {
	if len(t.Groups) == 0 {
		return fmt.Errorf("serve: topology needs at least one role group")
	}
	var unified, prefill, decode int
	for i := range t.Groups {
		g := &t.Groups[i]
		if g.Replicas <= 0 {
			g.Replicas = 1
		}
		switch g.Role {
		case RoleUnified:
			unified++
		case RolePrefill:
			prefill++
		case RoleDecode:
			decode++
		default:
			return fmt.Errorf("serve: unknown role %d in topology group %d", int(g.Role), i)
		}
	}
	if unified > 0 && unified != len(t.Groups) {
		return fmt.Errorf("serve: topology mixes unified and prefill/decode groups (split every group by stage, or none)")
	}
	if unified == 0 && (prefill == 0 || decode == 0) {
		return fmt.Errorf("serve: disaggregated topology needs at least one prefill and one decode group (got %d prefill, %d decode)", prefill, decode)
	}
	// One dispatcher per stage: its policy must be unambiguous.
	for _, role := range []Role{RoleUnified, RolePrefill, RoleDecode} {
		var pol LBPolicy
		seen := false
		for _, g := range t.Groups {
			if g.Role != role {
				continue
			}
			if seen && g.Policy != pol {
				return fmt.Errorf("serve: %s groups disagree on dispatch policy (%s vs %s) — one stage has one dispatcher", role, pol, g.Policy)
			}
			pol, seen = g.Policy, true
		}
	}
	return nil
}

// String renders the topology in the CLI's -topology syntax.
func (t Topology) String() string {
	var b strings.Builder
	for i, g := range t.Groups {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%d=%s", g.Backend.platformName(), g.Replicas, g.Role)
	}
	return b.String()
}

// Fleet is a validated topology ready to run. NewFleet/Fleet.Run is the
// single construction path for every multi-replica simulation: RunFleet
// (one unified group), disaggregated topologies, SizeFleetForSLO's
// candidate fleets and internal/autoscale's elastic replicas all build
// their schedulers here.
type Fleet struct {
	topo Topology
}

// NewFleet validates a topology and returns the runnable fleet. The
// topology is copied; later mutation of the caller's slice is invisible.
func NewFleet(topo Topology) (*Fleet, error) {
	cp := Topology{Groups: append([]RoleGroup(nil), topo.Groups...)}
	if err := cp.validate(); err != nil {
		return nil, err
	}
	return &Fleet{topo: cp}, nil
}

// Topology returns the fleet's validated topology (replica counts
// defaulted).
func (f *Fleet) Topology() Topology { return f.topo }
