package serve

import (
	"cllm/internal/sim"
)

// Replica is one serving instance exposed for external control loops
// (internal/autoscale): a continuous-batching scheduler plus its own
// request ledger on a caller-owned engine. RunFleet composes schedulers
// directly; Replica is the minimal exported surface an autoscaler needs —
// create on a shared clock, submit at arrival instants, observe load, and
// collect the final report.
type Replica struct {
	s      *scheduler
	states []*reqState
}

// NewReplica builds one replica of the backend on the given engine through
// the same construction path Fleet.Run uses for its role groups. The
// config is normalized locally (the caller's copy is untouched); seed
// decorrelates this replica's noise stream from its siblings'.
func NewReplica(be Backend, cfg Config, eng *sim.Engine, seed int64) (*Replica, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	s, err := buildReplica(be, cfg, eng, seed)
	if err != nil {
		return nil, err
	}
	return &Replica{s: s}, nil
}

// SetIndex labels this replica's observer events and gauge samples with
// its fleet index (autoscaler slot, fleet position). Zero by default; a
// no-op for unobserved runs.
func (r *Replica) SetIndex(i int) { r.s.replica = i }

// Submit hands an arrived request to this replica. Call it from inside an
// engine event at the request's arrival instant — the scheduler reads the
// engine clock for admission timestamps.
func (r *Replica) Submit(req Request) {
	st := &reqState{req: req}
	r.states = append(r.states, st)
	r.s.submit(st)
}

// Outstanding is the replica's current load: queued plus running requests.
func (r *Replica) Outstanding() int { return r.s.outstanding() }

// Down reports whether the replica is currently crashed and paying its TEE
// cold-start recovery (fault injection). Always false without fault
// injection configured.
func (r *Replica) Down() bool { return r.s.down }

// Sheds counts requests admission control has declined so far. Control
// loops read it as an overload signal: a rising shed rate means offered
// load the fleet is turning away, i.e. demand beyond current capacity.
func (r *Replica) Sheds() int { return r.s.sheds }

// Submitted counts requests ever dispatched to this replica.
func (r *Replica) Submitted() int { return len(r.states) }

// Err reports a costing failure that halted the replica's loop (a backend
// misconfiguration); the run's results are invalid if non-nil.
func (r *Replica) Err() error { return r.s.err }

// Report assembles the replica's outcome over every submitted request.
// Call it after the engine has drained (or hit its horizon). Under
// Config.QuantileMode == QuantileSketch the report carries quantile
// sketches instead of per-request samples, so fleet aggregation stays
// bounded-memory however many requests the replica served.
func (r *Replica) Report() *Report {
	if r.s.cfg.QuantileMode == QuantileSketch {
		return r.s.reportSketched(r.states)
	}
	return r.s.report(r.states)
}
