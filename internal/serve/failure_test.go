package serve

import (
	"fmt"
	"reflect"
	"testing"

	"cllm/internal/dtype"
	"cllm/internal/hw"
	"cllm/internal/perf"
	"cllm/internal/sim"
	"cllm/internal/tee"
	"cllm/internal/trace"
	"cllm/internal/workload"
)

func TestFailureConfigParsers(t *testing.T) {
	plan, err := ParseFailPlan(" 0@30, 1@45.5 ,30 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []FailPoint{{Replica: 0, TimeSec: 30}, {Replica: 1, TimeSec: 45.5}, {Replica: 0, TimeSec: 30}}
	if !reflect.DeepEqual(plan, want) {
		t.Fatalf("ParseFailPlan = %+v, want %+v", plan, want)
	}
	if plan, err := ParseFailPlan(""); err != nil || plan != nil {
		t.Fatalf("empty plan = %+v, %v", plan, err)
	}
	for _, bad := range []string{"a@30", "0@-5", "-1@30", "0@", "@30", "0@nan", "0@+inf"} {
		if _, err := ParseFailPlan(bad); err == nil {
			t.Errorf("ParseFailPlan(%q) accepted", bad)
		}
	}

	for s, want := range map[string]FailurePolicy{"": FailRequeue, "requeue": FailRequeue, "LOST": FailLost} {
		got, err := ParseFailurePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseFailurePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFailurePolicy("explode"); err == nil {
		t.Error("ParseFailurePolicy accepted garbage")
	}

	for s, want := range map[string]AdmissionPolicy{"": AdmitFIFO, "fifo": AdmitFIFO, "deadline": AdmitDeadline, "edf": AdmitDeadline, "Shed": AdmitShed} {
		got, err := ParseAdmissionPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseAdmissionPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseAdmissionPolicy("lottery"); err == nil {
		t.Error("ParseAdmissionPolicy accepted garbage")
	}

	// Round-trip the String spellings the CLI and exporters rely on.
	for _, p := range []FailurePolicy{FailRequeue, FailLost} {
		if got, err := ParseFailurePolicy(p.String()); err != nil || got != p {
			t.Errorf("failure policy %v does not round trip", p)
		}
	}
	for _, p := range []AdmissionPolicy{AdmitFIFO, AdmitDeadline, AdmitShed} {
		if got, err := ParseAdmissionPolicy(p.String()); err != nil || got != p {
			t.Errorf("admission policy %v does not round trip", p)
		}
	}
}

// TestFailureDefaultConfigByteIdentical pins the default-config (no
// failures, FIFO admission, no retries) scheduler output to golden values
// captured before the failure/overload machinery landed. Any drift here
// means the zero-value path is no longer byte-identical to prior releases.
func TestFailureDefaultConfigByteIdentical(t *testing.T) {
	m := mustLookup(t, "llama2-7b")

	cfgP := Config{Workload: trace.Workload{Model: m, Kind: dtype.BF16, InputLen: 128, OutputLen: 32}, Rate: 8, Requests: 48, Seed: 7}
	repP, order, err := RunAudited(cpuBackend(tee.TDX()), cfgP)
	if err != nil {
		t.Fatal(err)
	}
	gotP := fmt.Sprintf("completed=%d dropped=%d unfinished=%d preempt=%d makespan=%.9f tokens=%d tput=%.9f goodput=%.9f ttftP99=%.9f latP50=%.9f admits=%d",
		repP.Completed, repP.Dropped, repP.Unfinished, repP.Preemptions, repP.MakespanSec, repP.TotalTokens,
		repP.TokensPerSec, repP.GoodputTokensPerSec, repP.TTFT.P99, repP.Latency.P50, len(order))
	wantP := "completed=48 dropped=0 unfinished=0 preempt=0 makespan=13.742513540 tokens=1521 tput=110.678442890 goodput=110.678442890 ttftP99=4.525999531 latP50=7.671819884 admits=48"
	if gotP != wantP {
		t.Errorf("poisson golden drifted:\ngot  %s\nwant %s", gotP, wantP)
	}

	sc, err := workload.ParseScenario("bursty+chat", 12)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.Workload{Model: m, Kind: dtype.BF16}
	gb := Backend{IsGPU: true, GPU: perf.GPURun{GPU: hw.H100NVL(), Platform: tee.CGPU()}}
	gb.GPU.GPU.HBMBytes = int64(trace.WeightFootprint(w)) + 2048*m.KVCacheBytesPerToken(2)
	cfgS := Config{Workload: w, Scenario: &sc, Requests: 64, Seed: 11, MaxBatch: 8}
	repS, _, err := RunAudited(gb, cfgS)
	if err != nil {
		t.Fatal(err)
	}
	gotS := fmt.Sprintf("completed=%d dropped=%d unfinished=%d preempt=%d makespan=%.9f tokens=%d tput=%.9f ttftP99=%.9f latP99=%.9f",
		repS.Completed, repS.Dropped, repS.Unfinished, repS.Preemptions, repS.MakespanSec, repS.TotalTokens,
		repS.TokensPerSec, repS.TTFT.P99, repS.Latency.P99)
	wantS := "completed=64 dropped=0 unfinished=0 preempt=27 makespan=35.558934524 tokens=9614 tput=270.368055981 ttftP99=17.247947563 latP99=19.501478409"
	if gotS != wantS {
		t.Errorf("scenario golden drifted:\ngot  %s\nwant %s", gotS, wantS)
	}

	// The resilience knobs at their zero values must not perturb the
	// report, whether spelled through the Faults sub-struct or the
	// deprecated flat fields.
	cfgZ := cfgP
	cfgZ.Faults = FaultConfig{Policy: FailRequeue, Admission: AdmitFIFO}
	cfgZ.FailMTBFSec, cfgZ.FailPlan, cfgZ.FailPolicy = 0, nil, FailRequeue
	cfgZ.Admission, cfgZ.RetryMax, cfgZ.RetryBaseSec = AdmitFIFO, 0, 0
	repZ, err := Run(cpuBackend(tee.TDX()), cfgZ)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repP, repZ) {
		t.Error("explicit zero-valued failure knobs changed the report")
	}
}

// TestFailureCrashRequeueConservesBlocks drives the scheduler directly so
// the KV pool's conservation invariants can be probed while the crashes
// are live, not only at the end of the run.
func TestFailureCrashRequeueConservesBlocks(t *testing.T) {
	cfg := tinyConfig(30, 24)
	cfg.MaxBatch = 4
	cfg.Faults.Plan = []FailPoint{{TimeSec: 0.2}, {TimeSec: 0.6}}
	cfg.RecoverySec = 0.25
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	be := cpuBackend(tee.TDX())
	noise := newNoise(be, cfg.Seed)
	s, err := newScheduler(be, cfg, sim.NewEngine(), noise)
	if err != nil {
		t.Fatal(err)
	}
	arrivals, err := genArrivals(cfg, noise.RNG())
	if err != nil {
		t.Fatal(err)
	}
	states := make([]*reqState, len(arrivals))
	lastArrival := 0.0
	for i, req := range arrivals {
		st := &reqState{req: req}
		states[i] = st
		if req.ArrivalSec > lastArrival {
			lastArrival = req.ArrivalSec
		}
		s.eng.Schedule(sim.Time(req.ArrivalSec), func(*sim.Engine) { s.submit(st) })
	}
	// Probe conservation right after each crash (replica down, batch
	// evicted, caches flushed) and mid-recovery.
	for _, at := range []float64{0.21, 0.35, 0.61, 0.9, 2.5} {
		s.eng.ScheduleAt(sim.Time(at), func(*sim.Engine) {
			if err := s.kv.CheckConservation(); err != nil {
				t.Errorf("conservation broken at t=%.2f: %v", at, err)
			}
		})
	}
	if _, err := s.eng.RunUntil(sim.Time(lastArrival+cfg.HorizonSec), cfg.MaxSteps); err != nil {
		t.Fatal(err)
	}
	if s.err != nil {
		t.Fatal(s.err)
	}
	rep := s.report(states)
	if err := s.kv.CheckConservation(); err != nil {
		t.Fatalf("conservation broken at end: %v", err)
	}
	if rep.Crashes == 0 {
		t.Fatal("fail plan injected no crashes")
	}
	if got, want := rep.DowntimeSec, float64(rep.Crashes)*cfg.RecoverySec; got != want {
		t.Fatalf("downtime %.6f, want crashes(%d) x recovery = %.6f", got, rep.Crashes, want)
	}
	// FailRequeue loses no requests: everything completes after recovery.
	if rep.Completed != 24 || rep.Dropped != 0 || rep.Unfinished != 0 {
		t.Fatalf("completed/dropped/unfinished = %d/%d/%d, want 24/0/0", rep.Completed, rep.Dropped, rep.Unfinished)
	}
	if rep.KVBlocksInUseAtEnd != 0 || rep.SwapBlocksAtEnd != 0 {
		t.Fatalf("leak: %d KV blocks, %d swap blocks at end", rep.KVBlocksInUseAtEnd, rep.SwapBlocksAtEnd)
	}
	if rep.Preemptions == 0 {
		t.Fatal("crashes evicted nothing — the plan missed every running batch")
	}
}

// TestFailureRecoveryBillsTEEColdStart: with no explicit RecoverySec the
// downtime per crash is the platform's full confidential cold start.
func TestFailureRecoveryBillsTEEColdStart(t *testing.T) {
	cfg := tinyConfig(20, 8)
	cfg.Faults.Plan = []FailPoint{{TimeSec: 0.1}}
	be := cpuBackend(tee.TDX())
	rep, err := Run(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", rep.Crashes)
	}
	if want := ColdStartSec(be, cfg.Workload); rep.DowntimeSec != want {
		t.Fatalf("downtime %.6f, want cold start %.6f", rep.DowntimeSec, want)
	}
	// A crash on another replica's plan entry must not fire here.
	cfg.Faults.Plan = []FailPoint{{Replica: 3, TimeSec: 0.1}}
	rep, err = Run(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes != 0 || rep.DowntimeSec != 0 {
		t.Fatalf("foreign replica's crash fired: %d crashes, %.3fs downtime", rep.Crashes, rep.DowntimeSec)
	}
}

// TestFailureScheduleDeterministic: Poisson failure timing rides a private
// seeded stream, so equal seeds reproduce the run exactly — monolithic or
// epoch-sharded — and different seeds move the crash schedule.
func TestFailureScheduleDeterministic(t *testing.T) {
	mk := func(seed int64, epoch int) Config {
		cfg := tinyConfig(25, 30)
		cfg.Seed = seed
		cfg.Faults.MTBFSec = 2
		cfg.RecoverySec = 0.2
		cfg.Faults.RetryMax = 1
		cfg.Faults.Policy = FailLost
		cfg.EpochRequests = epoch
		return cfg
	}
	be := cpuBackend(tee.TDX())
	a, err := Run(be, mk(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(be, mk(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical seeds diverged under fault injection:\n%+v\n%+v", a, b)
	}
	if a.Crashes == 0 {
		t.Fatal("MTBF 2s injected no crashes — the test exercises nothing")
	}
	sharded, err := Run(be, mk(1, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, sharded) {
		t.Fatalf("epoch-sharded run diverged from monolithic:\n%+v\n%+v", a, sharded)
	}
	c, err := Run(be, mk(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Crashes, c.Crashes) && reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical failure runs")
	}
}

// eventTally is a minimal in-package Observer for conservation checks.
type eventTally struct {
	roundTokens int
	byKind      map[EventKind]int
}

func (e *eventTally) Event(ev Event) {
	if e.byKind == nil {
		e.byKind = make(map[EventKind]int)
	}
	e.byKind[ev.Kind]++
	if ev.Kind == EvDecodeRound {
		e.roundTokens += ev.Tokens
	}
}

func (e *eventTally) Sample(Sample) {}

// TestRetryTokenConservation: a retry restarts from scratch, and the
// tokens its earlier attempt produced are wasted work — still counted in
// TotalTokens, which must keep matching the sum of committed round tokens.
func TestRetryTokenConservation(t *testing.T) {
	var tr []Request
	for i := 0; i < 16; i++ {
		tr = append(tr, Request{ID: i, ArrivalSec: float64(i) * 1e-3, InputLen: 64, OutputLen: 64})
	}
	tally := &eventTally{}
	cfg := Config{
		Workload: trace.Workload{Model: tinyModel(), Kind: dtype.BF16},
		Trace:    tr,
		MaxBatch: 4,
		Seed:     1,
		Faults: FaultConfig{
			Plan:            []FailPoint{{TimeSec: 0.05}, {TimeSec: 0.4}, {TimeSec: 1.2}},
			Policy:          FailLost,
			RetryMax:        2,
			RetryBackoffSec: 0.05,
		},
		RecoverySec: 0.1,
		Observer:    tally,
	}
	rep, err := Run(cpuBackend(tee.TDX()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes == 0 || rep.Retries == 0 {
		t.Fatalf("storm too mild to test retries: %d crashes, %d retries", rep.Crashes, rep.Retries)
	}
	if tally.roundTokens != rep.TotalTokens {
		t.Fatalf("round tokens %d != TotalTokens %d — wasted retry work leaked from the ledger",
			tally.roundTokens, rep.TotalTokens)
	}
	completedTokens := 0
	for _, m := range rep.Requests {
		completedTokens += m.OutputTokens
	}
	if rep.TotalTokens < completedTokens {
		t.Fatalf("TotalTokens %d below completed output %d", rep.TotalTokens, completedTokens)
	}
	if rep.Completed+rep.Dropped+rep.Unfinished != len(tr) {
		t.Fatalf("outcome partition %d+%d+%d != %d offered",
			rep.Completed, rep.Dropped, rep.Unfinished, len(tr))
	}
	sum := 0
	for _, n := range rep.DroppedByReason {
		sum += n
	}
	if sum != rep.Dropped {
		t.Fatalf("drop taxonomy sums to %d, lumped total %d", sum, rep.Dropped)
	}
	if rep.DroppedByReason[DropFailureLost] != rep.Dropped {
		t.Fatalf("FailLost drops misfiled: %v", rep.DroppedByReason)
	}
	// Event-stream outcome counts must agree with the report.
	if got := tally.byKind[EvCrash]; got != rep.Crashes {
		t.Fatalf("crash events %d != report crashes %d", got, rep.Crashes)
	}
	if got := tally.byKind[EvRecover]; got != rep.Crashes {
		t.Fatalf("recover events %d != crashes %d", got, rep.Crashes)
	}
	if got := tally.byKind[EvRetry]; got != rep.Retries {
		t.Fatalf("retry events %d != report retries %d", got, rep.Retries)
	}
	if rep.KVBlocksInUseAtEnd != 0 && rep.Unfinished == 0 {
		t.Fatalf("leaked %d KV blocks", rep.KVBlocksInUseAtEnd)
	}
}

// TestAdmitDeadlineOrdersEDF: under AdmitDeadline a queued interactive
// request jumps ahead of earlier-arrived background work.
func TestAdmitDeadlineOrdersEDF(t *testing.T) {
	tr := []Request{
		{ID: 0, ArrivalSec: 0, InputLen: 64, OutputLen: 32, Class: ClassBackground},
		{ID: 1, ArrivalSec: 1e-4, InputLen: 64, OutputLen: 8, Class: ClassBackground},
		{ID: 2, ArrivalSec: 2e-4, InputLen: 64, OutputLen: 8, Class: ClassInteractive},
	}
	cfg := Config{
		Workload: trace.Workload{Model: tinyModel(), Kind: dtype.BF16},
		Trace:    tr,
		MaxBatch: 1,
		Seed:     1,
		Faults:   FaultConfig{Admission: AdmitDeadline},
	}
	rep, order, err := RunAudited(cpuBackend(tee.Baremetal()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 3 {
		t.Fatalf("completed %d, want 3: %+v", rep.Completed, rep.DroppedByReason)
	}
	if want := (AdmitOrder{0, 2, 1}); !reflect.DeepEqual(order, want) {
		t.Fatalf("EDF admission order %v, want %v", order, want)
	}
	if rep.CompletedByClass[ClassInteractive] != 1 || rep.CompletedByClass[ClassBackground] != 2 {
		t.Fatalf("class split wrong: %v", rep.CompletedByClass)
	}

	// The identical trace under FIFO must keep arrival order — the
	// default path ignores Class entirely.
	cfg.Faults.Admission = AdmitFIFO
	_, order, err = RunAudited(cpuBackend(tee.Baremetal()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := (AdmitOrder{0, 1, 2}); !reflect.DeepEqual(order, want) {
		t.Fatalf("FIFO admission order %v, want %v", order, want)
	}
}

// TestAdmitDeadlineDropsExpired: work whose deadline passed while queued
// is abandoned as deadline-expired, not served late.
func TestAdmitDeadlineDropsExpired(t *testing.T) {
	tr := []Request{
		{ID: 0, ArrivalSec: 0, InputLen: 64, OutputLen: 64, Class: ClassInteractive},
		{ID: 1, ArrivalSec: 1e-3, InputLen: 64, OutputLen: 8, Class: ClassInteractive},
		{ID: 2, ArrivalSec: 2e-3, InputLen: 64, OutputLen: 8, Class: ClassInteractive},
	}
	cfg := Config{
		Workload:    trace.Workload{Model: tinyModel(), Kind: dtype.BF16},
		Trace:       tr,
		MaxBatch:    1,
		Seed:        1,
		Faults:      FaultConfig{Admission: AdmitDeadline},
		DeadlineSec: 5e-3, // expires while request 0 monopolizes the batch
	}
	rep, order, err := RunAudited(cpuBackend(tee.Baremetal()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 || order[0] != 0 {
		t.Fatalf("admission order %v, want only request 0", order)
	}
	if rep.Completed != 1 || rep.Dropped != 2 {
		t.Fatalf("completed/dropped = %d/%d, want 1/2", rep.Completed, rep.Dropped)
	}
	if rep.DroppedByReason[DropDeadlineExpired] != 2 {
		t.Fatalf("expiries misfiled: %v", rep.DroppedByReason)
	}
	if rep.Sheds != 0 {
		t.Fatalf("AdmitDeadline shed %d requests — only AdmitShed declines ahead of time", rep.Sheds)
	}
}

// TestShedRetriesThenDrops: AdmitShed declines infeasible deadlines at
// admission; each shed burns a retry until the budget is gone, then the
// request drops as admission-shed. Counts are exact and deterministic.
func TestShedRetriesThenDrops(t *testing.T) {
	const n = 6
	var tr []Request
	for i := 0; i < n; i++ {
		tr = append(tr, Request{ID: i, ArrivalSec: float64(i) * 1e-3, InputLen: 64, OutputLen: 8, Class: ClassInteractive})
	}
	cfg := Config{
		Workload:    trace.Workload{Model: tinyModel(), Kind: dtype.BF16},
		Trace:       tr,
		Seed:        1,
		Faults:      FaultConfig{Admission: AdmitShed, RetryMax: 1, RetryBackoffSec: 0.01},
		DeadlineSec: 1e-9, // no prefill can ever fit: every admission sheds
	}
	rep, err := Run(cpuBackend(tee.Baremetal()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 0 {
		t.Fatalf("completed %d with an unmeetable deadline", rep.Completed)
	}
	if rep.Sheds != 2*n || rep.Retries != n {
		t.Fatalf("sheds/retries = %d/%d, want %d/%d (one retry each, then drop)", rep.Sheds, rep.Retries, 2*n, n)
	}
	if rep.Dropped != n || rep.DroppedByReason[DropAdmissionShed] != n {
		t.Fatalf("drops = %d (%v), want all %d admission-shed", rep.Dropped, rep.DroppedByReason, n)
	}
	if rep.KVBlocksInUseAtEnd != 0 {
		t.Fatalf("leaked %d KV blocks through the shed path", rep.KVBlocksInUseAtEnd)
	}

	// With a feasible deadline the same trace completes everything and
	// sheds nothing.
	cfg.DeadlineSec = 10
	rep, err = Run(cpuBackend(tee.Baremetal()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != n || rep.Sheds != 0 || rep.Retries != 0 || rep.Dropped != 0 {
		t.Fatalf("feasible deadlines still shed: completed=%d sheds=%d retries=%d dropped=%d",
			rep.Completed, rep.Sheds, rep.Retries, rep.Dropped)
	}
}

// TestFaultConfigFlatFieldCompat: for one release the deprecated flat
// spelling of the resilience knobs (FailMTBFSec/FailPlan/FailPolicy/
// Admission/RetryMax/RetryBaseSec) must drive the scheduler identically
// to the Faults sub-struct, and normalize's migration fold must be
// idempotent — replicas re-normalize shared configs.
func TestFaultConfigFlatFieldCompat(t *testing.T) {
	var tr []Request
	for i := 0; i < 16; i++ {
		tr = append(tr, Request{ID: i, ArrivalSec: float64(i) * 1e-3, InputLen: 64, OutputLen: 64})
	}
	base := Config{
		Workload:    trace.Workload{Model: tinyModel(), Kind: dtype.BF16},
		Trace:       tr,
		MaxBatch:    4,
		Seed:        1,
		RecoverySec: 0.1,
	}
	flat := base
	flat.FailPlan = []FailPoint{{TimeSec: 0.05}, {TimeSec: 0.4}}
	flat.FailPolicy = FailLost
	flat.RetryMax = 1
	flat.RetryBaseSec = 0.05

	grouped := base
	grouped.Faults = FaultConfig{
		Plan:            []FailPoint{{TimeSec: 0.05}, {TimeSec: 0.4}},
		Policy:          FailLost,
		RetryMax:        1,
		RetryBackoffSec: 0.05,
	}

	be := cpuBackend(tee.TDX())
	a, err := Run(be, flat)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(be, grouped)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("flat and grouped spellings diverged:\n%+v\n%+v", a, b)
	}
	if a.Crashes == 0 || a.Retries == 0 {
		t.Fatalf("compat run too mild to prove anything: %d crashes, %d retries", a.Crashes, a.Retries)
	}

	// The fold is idempotent and mirrors both spellings onto each other.
	if err := flat.normalize(); err != nil {
		t.Fatal(err)
	}
	once := flat
	if err := flat.normalize(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(once.Faults, flat.Faults) {
		t.Fatalf("normalize is not idempotent over Faults: %+v vs %+v", once.Faults, flat.Faults)
	}
	if flat.Faults.Policy != FailLost || flat.Faults.RetryMax != 1 || flat.Faults.RetryBackoffSec != 0.05 {
		t.Fatalf("flat fields did not fold into Faults: %+v", flat.Faults)
	}
	if flat.FailPolicy != FailLost || flat.RetryMax != 1 || flat.RetryBaseSec != 0.05 {
		t.Fatalf("resolved Faults did not mirror back to the flat fields: %+v", flat)
	}
}
