package serve

import "fmt"

// EventKind labels one scheduler lifecycle event.
type EventKind uint8

const (
	// EvArrive: a request reached this replica's queue (dispatch instant).
	// Tokens is its prompt length, Hist its requested output length.
	EvArrive EventKind = iota + 1
	// EvAdmit: the request joined the running batch. Emitted on every
	// admission, including re-admissions after preemption; the first EvAdmit
	// of a request is its queue-delay endpoint. Tokens is the prefill
	// target, Hist the tokens already computed (prefix hits + swap restore).
	EvAdmit
	// EvPrefillChunk: a committed prefill chunk — Tokens new prompt tokens
	// over Hist cached ones. Emitted at the round end that committed it.
	EvPrefillChunk
	// EvFirstToken: the request produced its first output token.
	EvFirstToken
	// EvDecodeRound: one scheduling round committed; Tokens is every output
	// token the round produced (decode batch plus prefill completions) and
	// Hist the decode batch size. ReqID is -1: the event is per-round, not
	// per-request, and summing Tokens over rounds reproduces the report's
	// TotalTokens exactly. PrefillSec/DecodeSec/SwapSec carry the round's
	// raw (pre-noise) costed components, and ClearPrefillSec/ClearDecodeSec/
	// ClearSwapSec the same shapes priced on the clear-hardware twin when
	// Config.ClearCoster is set — the attribution layer's inputs.
	EvDecodeRound
	// EvPreempt: the request was evicted from the batch (Policy says what
	// the run does with victims, Reason why this victim was taken). Tokens
	// is the computed KV entries at stake. A following EvSwapOut at the same
	// instant means they were parked rather than released.
	EvPreempt
	// EvSwapOut: Tokens computed KV entries were parked in the host swap
	// pool — Bytes moved, XferSec of priced transfer time.
	EvSwapOut
	// EvSwapIn: a parked copy was restored on re-admission. Tokens counts
	// entries actually transferred (entries re-acquired from shared prefix
	// blocks skip the copy, so Tokens can be 0).
	EvSwapIn
	// EvDrop: the request left the run unserved. Drop carries the reason
	// taxonomy (KV exhaustion, admission shed, deadline expiry, failure
	// loss); Tokens is kind-specific (see the emitting sites).
	EvDrop
	// EvFinish: the request completed; Tokens is its output length and
	// SLOMet whether it met both latency SLOs.
	EvFinish
	// EvCrash: the replica failed (fault injection). ReqID is -1 — the
	// event is per-replica; Tokens counts the in-flight requests that lost
	// their KV state, XferSec the recovery time ahead (the platform cold
	// start).
	EvCrash
	// EvRecover: the crashed replica finished its TEE cold start (boot,
	// weight load, enclave/TD rebuild, attestation) and resumed serving.
	// ReqID is -1; XferSec echoes the downtime just paid.
	EvRecover
	// EvShed: admission control declined the request (deadline infeasible
	// or already expired). Telemetry only — the terminal outcome is a
	// following EvDrop, or an EvRetry if budget remains.
	EvShed
	// EvRetry: a shed or failure-lost request re-entered the arrival
	// stream after its backoff. Tokens is its prompt length, Hist the
	// retry attempt number (1-based).
	EvRetry
	// EvHandoff: a prefill-role replica launched the request's KV handoff
	// toward the decode stage (disaggregated topologies). Emitted on the
	// source replica right after the round that produced the first token.
	// Tokens is the computed KV entries leaving, Bytes their payload, and
	// XferSec the priced source-drain plus NIC transfer time; the
	// decode-side ingest is priced separately by the admitting round (the
	// destination's EvAdmit/EvSwapIn pair closes the transfer).
	EvHandoff
)

// String names the kind as the exporters spell it.
func (k EventKind) String() string {
	switch k {
	case EvArrive:
		return "arrive"
	case EvAdmit:
		return "admit"
	case EvPrefillChunk:
		return "prefill-chunk"
	case EvFirstToken:
		return "first-token"
	case EvDecodeRound:
		return "decode-round"
	case EvPreempt:
		return "preempt"
	case EvSwapOut:
		return "swap-out"
	case EvSwapIn:
		return "swap-in"
	case EvDrop:
		return "drop"
	case EvFinish:
		return "finish"
	case EvCrash:
		return "crash"
	case EvRecover:
		return "recover"
	case EvShed:
		return "shed"
	case EvRetry:
		return "retry"
	case EvHandoff:
		return "handoff"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// PreemptReason says which capacity pass evicted the victim.
type PreemptReason uint8

const (
	ReasonNone PreemptReason = iota
	// ReasonPrefillStall: a mid-prefill sequence could not grow its cache.
	ReasonPrefillStall
	// ReasonDecodeStall: a fully-prefilled sequence could not append one
	// token's KV entry.
	ReasonDecodeStall
	// ReasonCrash: a replica failure destroyed the batch's KV state — every
	// running sequence is evicted at once (fault injection).
	ReasonCrash
)

// String names the reason as the exporters spell it.
func (r PreemptReason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonPrefillStall:
		return "prefill-stall"
	case ReasonDecodeStall:
		return "decode-stall"
	case ReasonCrash:
		return "crash"
	}
	return fmt.Sprintf("PreemptReason(%d)", int(r))
}

// Event is one lifecycle event on the deterministic sim clock. It is
// passed by value — observers must copy what they keep.
type Event struct {
	// TimeSec is the simulated time of the event.
	TimeSec float64
	Kind    EventKind
	// Replica indexes the emitting scheduler within its fleet (0 for
	// single-replica runs).
	Replica int
	// ReqID is the subject request, or -1 for per-round events.
	ReqID int
	// Tokens and Hist are kind-specific token counts (see the kinds).
	Tokens int
	Hist   int
	// Bytes is the KV payload a swap transfer moves; XferSec its priced
	// transfer time at the backend's swap bandwidth.
	Bytes   float64
	XferSec float64
	// Policy and Reason qualify preemption events.
	Policy PreemptPolicy
	Reason PreemptReason
	// Drop qualifies EvDrop events with the drop-reason taxonomy (zero =
	// DropKVExhausted, the historical meaning).
	Drop DropReason
	// SLOMet qualifies finish events.
	SLOMet bool
	// Round-costing components, set on EvDecodeRound only: the round's raw
	// (pre-noise) prefill/decode/swap-transfer model costs, and — when the
	// run carries a clear-hardware counterfactual coster — the same step
	// shapes priced with every TEE mechanism neutralized. The noise-scaled
	// round duration is the gap between consecutive round timestamps; the
	// components give its split and the Clear side its TEE tax.
	PrefillSec      float64
	DecodeSec       float64
	SwapSec         float64
	ClearPrefillSec float64
	ClearDecodeSec  float64
	ClearSwapSec    float64
}

// Sample is one per-round gauge snapshot, taken at the end of every
// committed scheduling round. Token counters are cumulative over the run
// so windowed rates difference cleanly.
type Sample struct {
	TimeSec float64
	Replica int
	// QueueDepth and Running are the waiting and running request counts.
	QueueDepth int
	Running    int
	// KVBlocksInUse / KVBlocksCached / SwapBlocksInUse are the device pool's
	// active and reclaimable-cached block counts and the host swap pool's
	// occupancy.
	KVBlocksInUse   int
	KVBlocksCached  int
	SwapBlocksInUse int
	// TotalTokens is the cumulative output tokens produced; HitTokens and
	// MissTokens the cumulative prefix-cache outcomes.
	TotalTokens int
	HitTokens   int
	MissTokens  int
}

// Observer receives the scheduler's lifecycle event stream and gauge
// samples. Nil disables observation: every emission site is behind a nil
// check, so the disabled path is branch-only and allocation-free — the
// fast-path benchmarks and the allocs/op CI gate hold with no observer
// attached.
//
// Observers are invoked synchronously on the simulation goroutine. One
// run — including a whole RunFleet sharing one engine — never calls an
// observer concurrently, and replica interleaving on the shared clock is
// deterministic, so identical seeds yield identical streams. Do NOT
// attach one observer to concurrent runs (parallel sweeps,
// SizeFleetForSLOParallel): those race. Leave Observer nil there.
type Observer interface {
	Event(Event)
	Sample(Sample)
}
