package serve

import (
	"reflect"
	"testing"

	"cllm/internal/dtype"
	"cllm/internal/hw"
	"cllm/internal/mem"
	"cllm/internal/model"
	"cllm/internal/perf"
	"cllm/internal/sim"
	"cllm/internal/tee"
	"cllm/internal/trace"
	"cllm/internal/workload"
)

// tinyModel is a small but valid transformer so scheduler tests iterate
// fast; TEE-facing tests use the real zoo models.
func tinyModel() model.Config {
	return model.Config{
		Name: "tiny", HiddenDim: 256, Layers: 4, Heads: 8, KVHeads: 8,
		FFDim: 512, VocabSize: 1024, ContextLen: 2048, NormEps: 1e-5, RopeTheta: 10000,
	}
}

func cpuBackend(p tee.Platform) Backend {
	return Backend{CPU: perf.CPURun{CPU: hw.EMR1(), Platform: p, Sockets: 1, AMX: true}}
}

func tinyConfig(rate float64, n int) Config {
	return Config{
		Workload: trace.Workload{Model: tinyModel(), Kind: dtype.BF16, InputLen: 64, OutputLen: 8},
		Rate:     rate,
		Requests: n,
		Seed:     1,
	}
}

func mustLookup(t *testing.T, name string) model.Config {
	t.Helper()
	cfg, err := model.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestServeCompletesAndConservesBlocks(t *testing.T) {
	rep, err := Run(cpuBackend(tee.Baremetal()), tinyConfig(20, 40))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 40 || rep.Dropped != 0 || rep.Unfinished != 0 {
		t.Fatalf("completed/dropped/unfinished = %d/%d/%d, want 40/0/0",
			rep.Completed, rep.Dropped, rep.Unfinished)
	}
	if rep.KVBlocksInUseAtEnd != 0 {
		t.Fatalf("leaked %d KV blocks", rep.KVBlocksInUseAtEnd)
	}
	if rep.TokensPerSec <= 0 || rep.TotalTokens == 0 {
		t.Fatalf("no throughput: %+v", rep)
	}
	if rep.TTFT.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 {
		t.Fatalf("implausible latency quantiles: %+v %+v", rep.TTFT, rep.Latency)
	}
	if rep.PeakKVBlocksInUse <= 0 || rep.PeakKVBlocksInUse > rep.KVBlocksTotal {
		t.Fatalf("peak blocks %d outside (0, %d]", rep.PeakKVBlocksInUse, rep.KVBlocksTotal)
	}
	for _, m := range rep.Requests {
		if m.TTFT <= 0 || m.Latency < m.TTFT || m.OutputTokens < 2 {
			t.Fatalf("implausible request metrics: %+v", m)
		}
	}
}

func TestServeDeterministicForEqualSeeds(t *testing.T) {
	a, err := Run(cpuBackend(tee.TDX()), tinyConfig(30, 30))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cpuBackend(tee.TDX()), tinyConfig(30, 30))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical seeds diverged:\n%+v\n%+v", a, b)
	}
	cfg := tinyConfig(30, 30)
	cfg.Seed = 2
	c, err := Run(cpuBackend(tee.TDX()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestServeFIFOAdmissionUnderOverload(t *testing.T) {
	// Arrivals land faster than the batch cap can drain; admission must
	// still follow arrival order.
	var tr []Request
	for i := 0; i < 24; i++ {
		tr = append(tr, Request{ID: i, ArrivalSec: float64(i) * 1e-4, InputLen: 64, OutputLen: 8})
	}
	cfg := Config{Workload: trace.Workload{Model: tinyModel(), Kind: dtype.BF16}, Trace: tr, MaxBatch: 4, Seed: 1}
	rep, order, err := RunAudited(cpuBackend(tee.Baremetal()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 24 {
		t.Fatalf("completed %d, want 24", rep.Completed)
	}
	if len(order) != 24 {
		t.Fatalf("admitted %d requests, want 24", len(order))
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("admission order %v is not FIFO", order)
		}
	}
}

func TestServePreemptionRecoversWithoutLeaks(t *testing.T) {
	// Cap usable memory via the EPC so the pool holds only a couple of
	// requests' KV, forcing preemption under concurrency.
	m := tinyModel()
	wl := trace.Workload{Model: m, Kind: dtype.BF16, InputLen: 64, OutputLen: 32}
	weights := int64(trace.WeightFootprint(wl))
	perToken := m.KVCacheBytesPerToken(2)
	p := tee.Baremetal()
	p.Name = "tiny-enclave"
	// Room for ~160 tokens of KV: two requests in flight, a third starves.
	p.EPC = mem.EPC{Size: weights + 160*perToken, PageInCostFactor: 1}
	cfg := Config{Workload: wl, Rate: 50, Requests: 12, Seed: 3, BlockTokens: 16, LengthJitter: -1}
	rep, err := Run(cpuBackend(p), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Preemptions == 0 {
		t.Fatalf("expected preemptions with %d-block pool, got none (peak %d)",
			rep.KVBlocksTotal, rep.PeakKVBlocksInUse)
	}
	if rep.Completed != 12 || rep.Unfinished != 0 || rep.Dropped != 0 {
		t.Fatalf("completed/dropped/unfinished = %d/%d/%d, want 12/0/0",
			rep.Completed, rep.Dropped, rep.Unfinished)
	}
	if rep.KVBlocksInUseAtEnd != 0 {
		t.Fatalf("leaked %d KV blocks across preemptions", rep.KVBlocksInUseAtEnd)
	}
}

func TestServeDropsImpossibleRequest(t *testing.T) {
	m := tinyModel()
	wl := trace.Workload{Model: m, Kind: dtype.BF16}
	weights := int64(trace.WeightFootprint(wl))
	p := tee.Baremetal()
	p.EPC = mem.EPC{Size: weights + 100*m.KVCacheBytesPerToken(2), PageInCostFactor: 1}
	tr := []Request{
		{ID: 0, ArrivalSec: 0, InputLen: 32, OutputLen: 4},
		{ID: 1, ArrivalSec: 0.01, InputLen: 1024, OutputLen: 4}, // can never fit 100 tokens of KV
		{ID: 2, ArrivalSec: 0.02, InputLen: 32, OutputLen: 4},
	}
	rep, err := Run(cpuBackend(p), Config{Workload: wl, Trace: tr, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped != 1 || rep.Completed != 2 {
		t.Fatalf("dropped/completed = %d/%d, want 1/2", rep.Dropped, rep.Completed)
	}
	if rep.KVBlocksInUseAtEnd != 0 {
		t.Fatalf("leaked %d blocks", rep.KVBlocksInUseAtEnd)
	}
}

func TestServeTEESlowerThanBaremetal(t *testing.T) {
	cfg := Config{
		Workload: trace.Workload{Model: mustLookup(t, "llama2-7b"), Kind: dtype.BF16, InputLen: 128, OutputLen: 8},
		Rate:     1, Requests: 12, Seed: 1, LengthJitter: -1,
	}
	base, err := Run(cpuBackend(tee.Baremetal()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tdx, err := Run(cpuBackend(tee.TDX()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tdx.TTFT.P99 <= base.TTFT.P99 {
		t.Fatalf("TDX p99 TTFT %.4fs not above baremetal %.4fs", tdx.TTFT.P99, base.TTFT.P99)
	}
	if tdx.TPOT.Mean <= base.TPOT.Mean {
		t.Fatalf("TDX mean TPOT %.4fs not above baremetal %.4fs", tdx.TPOT.Mean, base.TPOT.Mean)
	}
}

func TestServeGPUBackend(t *testing.T) {
	be := Backend{IsGPU: true, GPU: perf.GPURun{GPU: hw.H100NVL(), Platform: tee.CGPU()}}
	cfg := Config{
		Workload: trace.Workload{Model: mustLookup(t, "llama2-7b"), Kind: dtype.BF16, InputLen: 128, OutputLen: 8},
		Rate:     20, Requests: 16, Seed: 1,
	}
	rep, err := Run(be, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 16 || rep.KVBlocksInUseAtEnd != 0 {
		t.Fatalf("GPU run: %+v", rep)
	}
	if rep.Platform != "cGPU" {
		t.Fatalf("platform %q", rep.Platform)
	}
}

func TestServeGoodputSaturates(t *testing.T) {
	// Past saturation, pushing more load must not create more SLO-compliant
	// output: deep overload queues requests past the TTFT target, so their
	// tokens stop counting.
	goodput := func(rate float64) float64 {
		cfg := Config{
			Workload: trace.Workload{Model: mustLookup(t, "llama2-7b"), Kind: dtype.BF16, InputLen: 64, OutputLen: 8},
			Rate:     rate, Requests: 48, Seed: 1, MaxBatch: 8,
			TTFTSLOSec: 1.5, TPOTSLOSec: 0.5, LengthJitter: -1,
		}
		rep, err := Run(cpuBackend(tee.Baremetal()), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.GoodputTokensPerSec
	}
	moderate := goodput(8)
	flooded := goodput(500)
	if flooded > moderate*1.05 {
		t.Fatalf("goodput rose past saturation: %.1f tok/s at rate 8 vs %.1f tok/s at rate 500", moderate, flooded)
	}
}

func TestServeCostAtSLO(t *testing.T) {
	rep, err := Run(cpuBackend(tee.TDX()), tinyConfig(20, 40))
	if err != nil {
		t.Fatal(err)
	}
	cost, err := rep.CostAtSLO(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Replicas < 1 || cost.USDPerMTok <= 0 {
		t.Fatalf("implausible cost: %+v", cost)
	}
	if cost.FleetHourlyUSD != float64(cost.Replicas) {
		t.Fatalf("fleet hourly %.2f for %d replicas at $1/h", cost.FleetHourlyUSD, cost.Replicas)
	}
}

func TestServeChunkedPrefillInvariants(t *testing.T) {
	cfg := Config{
		Workload: trace.Workload{Model: tinyModel(), Kind: dtype.BF16, InputLen: 200, OutputLen: 8},
		Rate:     20, Requests: 24, Seed: 1, ChunkTokens: 48,
	}
	rep, err := Run(cpuBackend(tee.TDX()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 24 || rep.Dropped != 0 || rep.Unfinished != 0 {
		t.Fatalf("completed/dropped/unfinished = %d/%d/%d, want 24/0/0",
			rep.Completed, rep.Dropped, rep.Unfinished)
	}
	if rep.KVBlocksInUseAtEnd != 0 {
		t.Fatalf("leaked %d KV blocks under chunked prefill", rep.KVBlocksInUseAtEnd)
	}
	// Chunking must not change what is produced, only when.
	mono := cfg
	mono.ChunkTokens = 0
	repM, err := Run(cpuBackend(tee.TDX()), mono)
	if err != nil {
		t.Fatal(err)
	}
	if repM.TotalTokens != rep.TotalTokens {
		t.Fatalf("chunked run produced %d tokens, monolithic %d", rep.TotalTokens, repM.TotalTokens)
	}
	// Determinism still holds with chunking on.
	rep2, err := Run(cpuBackend(tee.TDX()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Fatal("chunked runs with equal seeds diverged")
	}
}

func TestServePrefixSharingExactHits(t *testing.T) {
	// Arrivals far apart (each request finishes before the next arrives)
	// with ample memory: the first request of each prefix group misses its
	// whole 64-token prefix, every later one hits it fully. Any sharing
	// across the two groups (a hash-collision bug) would inflate the hits.
	var tr []Request
	for i := 0; i < 6; i++ {
		tr = append(tr, Request{ID: i, ArrivalSec: float64(i) * 5, InputLen: 96, OutputLen: 4,
			PrefixID: i%2 + 1, PrefixLen: 64})
	}
	cfg := Config{Workload: trace.Workload{Model: tinyModel(), Kind: dtype.BF16},
		Trace: tr, Seed: 1, PrefixSharing: true}
	rep, err := Run(cpuBackend(tee.Baremetal()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 6 {
		t.Fatalf("completed %d, want 6", rep.Completed)
	}
	wantHits := 2 * 2 * 64 // two groups × two hitting requests × 64 tokens
	if rep.PrefixCacheHitTokens != wantHits {
		t.Fatalf("prefix hits %d tokens, want exactly %d", rep.PrefixCacheHitTokens, wantHits)
	}
	if rep.PrefixCacheMissTokens != 2*64 {
		t.Fatalf("prefix misses %d tokens, want %d (first arrival per group)", rep.PrefixCacheMissTokens, 2*64)
	}
	if rep.KVBlocksInUseAtEnd != 0 {
		t.Fatalf("leaked %d blocks", rep.KVBlocksInUseAtEnd)
	}
	if rep.KVBlocksCachedAtEnd != 2*4 {
		t.Fatalf("cached %d blocks at end, want 8 (two 4-block prefixes)", rep.KVBlocksCachedAtEnd)
	}
	// Without sharing the same trace hits nothing.
	cfg.PrefixSharing = false
	rep, err = Run(cpuBackend(tee.Baremetal()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PrefixCacheHitTokens != 0 || rep.KVBlocksCachedAtEnd != 0 {
		t.Fatalf("sharing disabled but cache active: %+v", rep)
	}
}

func TestServePrefixSharingSurvivesPreemptionAndEviction(t *testing.T) {
	// A pool small enough to force preemption and cache eviction while two
	// prefix groups churn through it; the run must still complete every
	// request and release every active block.
	m := tinyModel()
	wl := trace.Workload{Model: m, Kind: dtype.BF16}
	weights := int64(trace.WeightFootprint(wl))
	perToken := m.KVCacheBytesPerToken(2)
	p := tee.Baremetal()
	p.Name = "tiny-enclave"
	p.EPC = mem.EPC{Size: weights + 280*perToken, PageInCostFactor: 1}
	var tr []Request
	for i := 0; i < 16; i++ {
		tr = append(tr, Request{ID: i, ArrivalSec: float64(i) * 0.001, InputLen: 96, OutputLen: 24,
			PrefixID: i%2 + 1, PrefixLen: 64})
	}
	cfg := Config{Workload: wl, Trace: tr, Seed: 3, BlockTokens: 16, PrefixSharing: true}
	rep, err := Run(cpuBackend(p), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 16 || rep.Dropped != 0 || rep.Unfinished != 0 {
		t.Fatalf("completed/dropped/unfinished = %d/%d/%d, want 16/0/0",
			rep.Completed, rep.Dropped, rep.Unfinished)
	}
	if rep.KVBlocksInUseAtEnd != 0 {
		t.Fatalf("leaked %d active blocks across share/preempt/evict", rep.KVBlocksInUseAtEnd)
	}
	if rep.PrefixCacheHitTokens == 0 {
		t.Fatal("no cache hits despite shared prefixes")
	}
	if rep.Preemptions == 0 {
		t.Fatalf("pool of %d blocks produced no preemptions (peak %d)",
			rep.KVBlocksTotal, rep.PeakKVBlocksInUse)
	}
}

func TestFleetDeterministicAndDispatch(t *testing.T) {
	cfg := Config{
		Workload: trace.Workload{Model: tinyModel(), Kind: dtype.BF16, InputLen: 64, OutputLen: 8},
		Rate:     40, Requests: 32, Seed: 1, PrefixGroups: 4, PrefixSharing: true,
	}
	be := cpuBackend(tee.TDX())
	a, err := RunFleet(be, cfg, FleetConfig{Replicas: 3, Policy: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleet(be, cfg, FleetConfig{Replicas: 3, Policy: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical fleet seeds diverged")
	}
	cfg2 := cfg
	cfg2.Seed = 2
	c, err := RunFleet(be, cfg2, FleetConfig{Replicas: 3, Policy: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different fleet seeds produced identical runs")
	}

	// Round-robin spreads arrivals evenly.
	total := 0
	for i, n := range a.Dispatch {
		total += n
		if n < 10 || n > 11 {
			t.Fatalf("round-robin dispatch %v unbalanced at replica %d", a.Dispatch, i)
		}
	}
	if total != 32 {
		t.Fatalf("dispatched %d requests, want 32", total)
	}
	if got := a.Aggregate.Completed + a.Aggregate.Dropped + a.Aggregate.Unfinished; got != 32 {
		t.Fatalf("aggregate accounts for %d requests, want 32", got)
	}

	// Prefix affinity sends a whole group to one replica under light load.
	var tr []Request
	for i := 0; i < 9; i++ {
		tr = append(tr, Request{ID: i, ArrivalSec: float64(i), InputLen: 64, OutputLen: 4,
			PrefixID: 1, PrefixLen: 48})
	}
	aff, err := RunFleet(be, Config{Workload: trace.Workload{Model: tinyModel(), Kind: dtype.BF16},
		Trace: tr, Seed: 1, PrefixSharing: true}, FleetConfig{Replicas: 3, Policy: PrefixAffinity})
	if err != nil {
		t.Fatal(err)
	}
	nonZero := 0
	for _, n := range aff.Dispatch {
		if n > 0 {
			nonZero++
		}
	}
	if nonZero != 1 {
		t.Fatalf("one shared prefix scattered across replicas: dispatch %v", aff.Dispatch)
	}
}

func TestFleetCostAndSizing(t *testing.T) {
	cfg := Config{
		Workload: trace.Workload{Model: tinyModel(), Kind: dtype.BF16, InputLen: 64, OutputLen: 8},
		Rate:     30, Requests: 24, Seed: 1,
	}
	fr, err := RunFleet(cpuBackend(tee.TDX()), cfg, FleetConfig{Replicas: 2, Policy: LeastLoaded})
	if err != nil {
		t.Fatal(err)
	}
	usd, err := fr.CostPerMTok(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if usd <= 0 {
		t.Fatalf("fleet cost %.4f $/Mtok", usd)
	}
	n, sized, err := SizeFleetForSLO(cpuBackend(tee.TDX()), cfg, LeastLoaded, 0.9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 || n > 4 || sized.SLOAttainment() < 0.9 {
		t.Fatalf("sizing: %d replicas at %.2f attainment", n, sized.SLOAttainment())
	}
	if _, _, err := SizeFleetForSLO(cpuBackend(tee.TDX()), cfg, LeastLoaded, 1.5, 4); err == nil {
		t.Error("impossible attainment target accepted")
	}
}

func TestServeConfigValidation(t *testing.T) {
	be := cpuBackend(tee.Baremetal())
	if _, err := Run(be, Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(be, Config{Workload: trace.Workload{Model: tinyModel(), Kind: dtype.BF16}, Rate: -1}); err == nil {
		t.Error("negative rate accepted")
	}
	dup := []Request{{ID: 1, ArrivalSec: 0, InputLen: 8, OutputLen: 2}, {ID: 1, ArrivalSec: 1, InputLen: 8, OutputLen: 2}}
	if _, err := Run(be, Config{Workload: trace.Workload{Model: tinyModel(), Kind: dtype.BF16}, Trace: dup}); err == nil {
		t.Error("duplicate trace IDs accepted")
	}
	// An invalid backend must fail the run, not report zeros as data.
	bad := cpuBackend(tee.Baremetal())
	bad.CPU.Sockets = 3 // EMR1 has 2
	if _, err := Run(bad, tinyConfig(10, 4)); err == nil {
		t.Error("impossible socket count accepted")
	}
	// A model too large for the platform memory must fail, not hang.
	huge := trace.Workload{Model: mustLookup(t, "llama2-70b"), Kind: dtype.F32}
	be70 := cpuBackend(tee.Baremetal())
	be70.CPU.CPU.MemPerSocketBytes = 32 << 30
	if _, err := Run(be70, Config{Workload: huge, Rate: 1}); err == nil {
		t.Error("oversized weights accepted")
	}
}

func TestServeScenarioArrivals(t *testing.T) {
	sc := workload.Scenario{
		Arrivals: workload.Bursty(20),
		Mix: workload.Mix{
			{Name: "a", Weight: 3, InputLen: 64, OutputLen: 8, LengthJitter: 0.2, PrefixGroups: 2, PrefixFrac: 0.5},
			{Name: "b", Weight: 1, InputLen: 256, OutputLen: 16, LengthJitter: 0.2},
		},
	}
	cfg := Config{
		Workload: trace.Workload{Model: tinyModel(), Kind: dtype.BF16},
		Scenario: &sc,
		Requests: 48,
		Seed:     1,
	}
	rep, err := Run(cpuBackend(tee.Baremetal()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Completed + rep.Dropped + rep.Unfinished; got != 48 {
		t.Fatalf("conservation: %d of 48 requests accounted", got)
	}
	if rep.KVBlocksInUseAtEnd != 0 && rep.Unfinished == 0 {
		t.Fatalf("leaked %d blocks", rep.KVBlocksInUseAtEnd)
	}
	// The report's offered rate reflects the scenario's mean rate.
	if rep.OfferedRate != sc.Arrivals.MeanRate() {
		t.Errorf("offered rate %g, want scenario mean %g", rep.OfferedRate, sc.Arrivals.MeanRate())
	}
	// Scenario runs are deterministic under the seed.
	rep2, err := Run(cpuBackend(tee.Baremetal()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Error("scenario run not deterministic")
	}
	// Generated arrivals respect the model context window.
	arrivals, err := Arrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 48 {
		t.Fatalf("Arrivals returned %d requests", len(arrivals))
	}
	for _, r := range arrivals {
		if r.InputLen+r.OutputLen > tinyModel().ContextLen {
			t.Fatalf("request %d exceeds context: %+v", r.ID, r)
		}
		if r.PrefixLen >= r.InputLen {
			t.Fatalf("prefix covers prompt: %+v", r)
		}
	}
	// An invalid scenario is rejected.
	bad := cfg
	bad.Scenario = &workload.Scenario{Arrivals: workload.Poisson{Rate: -1}, Mix: sc.Mix}
	if _, err := Run(cpuBackend(tee.Baremetal()), bad); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestReplicaMatchesRun(t *testing.T) {
	// Driving one exported Replica with the config's own arrivals must
	// reproduce Run exactly: same scheduler, same noise stream, same clock.
	cfg := tinyConfig(20, 24)
	want, err := Run(cpuBackend(tee.TDX()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	rep, err := NewReplica(cpuBackend(tee.TDX()), cfg, eng, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	arrivals, err := Arrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := 0.0
	for _, req := range arrivals {
		req := req
		if req.ArrivalSec > last {
			last = req.ArrivalSec
		}
		eng.Schedule(sim.Time(req.ArrivalSec), func(*sim.Engine) { rep.Submit(req) })
	}
	if _, err := eng.RunUntil(sim.Time(last+3600), 4_000_000); err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	got := rep.Report()
	if got.Completed != want.Completed || got.TotalTokens != want.TotalTokens {
		t.Errorf("replica completed %d/%d tokens vs Run %d/%d",
			got.Completed, got.TotalTokens, want.Completed, want.TotalTokens)
	}
	if rep.Submitted() != len(arrivals) || rep.Outstanding() != 0 {
		t.Errorf("submitted %d, outstanding %d", rep.Submitted(), rep.Outstanding())
	}
}

func TestSizeFleetForSLOMatchesLinearScan(t *testing.T) {
	cfg := Config{
		Workload: trace.Workload{Model: tinyModel(), Kind: dtype.BF16, InputLen: 64, OutputLen: 8},
		Rate:     30, Requests: 24, Seed: 1,
	}
	be := cpuBackend(tee.TDX())
	const target, maxN = 0.9, 6
	// Reference: the pre-optimization linear scan.
	linear := 0
	for n := 1; n <= maxN; n++ {
		fr, err := RunFleet(be, cfg, FleetConfig{Replicas: n, Policy: LeastLoaded})
		if err != nil {
			t.Fatal(err)
		}
		if fr.SLOAttainment() >= target {
			linear = n
			break
		}
	}
	if linear == 0 {
		t.Skip("workload cannot reach target within maxN; pick a gentler rate")
	}
	n, fr, err := SizeFleetForSLO(be, cfg, LeastLoaded, target, maxN)
	if err != nil {
		t.Fatal(err)
	}
	if n != linear {
		t.Errorf("probe+bisect found %d replicas, linear scan %d", n, linear)
	}
	if fr.SLOAttainment() < target {
		t.Errorf("returned fleet misses target: %.2f", fr.SLOAttainment())
	}
}

func TestMergeReportsMixedPlatforms(t *testing.T) {
	a := &Report{Platform: "TDX", Completed: 1, MakespanSec: 1,
		Requests: []RequestMetrics{{ID: 0, TTFT: 0.1, OutputTokens: 4, SLOMet: true}}}
	b := &Report{Platform: "cGPU", Completed: 2, MakespanSec: 2,
		Requests: []RequestMetrics{{ID: 1, TTFT: 0.2, OutputTokens: 4, SLOMet: true}}}
	agg := MergeReports(5, []*Report{a, b})
	if agg.Platform != "mixed" {
		t.Errorf("merged platform %q, want mixed", agg.Platform)
	}
	if agg.Completed != 3 || agg.OfferedRate != 5 || agg.MakespanSec != 2 {
		t.Errorf("merge totals wrong: %+v", agg)
	}
	same := MergeReports(5, []*Report{a, a})
	if same.Platform != "TDX" {
		t.Errorf("homogeneous merge platform %q, want TDX", same.Platform)
	}
}

// TestMergeReportsCountersAndQuantiles pins the full merge contract on
// synthetic reports: every counter — including the PR-5 swap/preemption
// fields — sums, the makespan takes the maximum, throughput figures are
// rederived from merged totals, and the quantiles are recomputed over the
// union of completed requests in replica order.
func TestMergeReportsCountersAndQuantiles(t *testing.T) {
	r1 := &Report{
		Platform: "tdx", Completed: 3, Dropped: 1, Unfinished: 1, Preemptions: 4,
		MakespanSec: 10, TotalTokens: 90,
		KVBlocksTotal: 100, PeakKVBlocksInUse: 60, KVBlocksInUseAtEnd: 2, KVBlocksCachedAtEnd: 5,
		PrefixCacheHitTokens: 32, PrefixCacheMissTokens: 64, EvictedBlocks: 3,
		SwapOuts: 2, SwapIns: 1, SwapPoolBlocks: 50, PeakSwapBlocksInUse: 20, SwapBlocksAtEnd: 4,
		Requests: []RequestMetrics{
			{ID: 0, TTFT: 0.2, TPOT: 0.05, Latency: 1.0, OutputTokens: 20, SLOMet: true},
			{ID: 1, TTFT: 0.4, TPOT: 0.10, Latency: 2.0, OutputTokens: 30, SLOMet: false},
			{ID: 2, TTFT: 0.1, Latency: 0.5, OutputTokens: 1, SLOMet: true}, // single-token: no TPOT sample
		},
	}
	r2 := &Report{
		Platform: "tdx", Completed: 2, Unfinished: 2, Preemptions: 1,
		MakespanSec: 8, TotalTokens: 60,
		KVBlocksTotal: 100, PeakKVBlocksInUse: 40, KVBlocksInUseAtEnd: 1, KVBlocksCachedAtEnd: 7,
		PrefixCacheHitTokens: 8, PrefixCacheMissTokens: 16, EvictedBlocks: 2,
		SwapOuts: 3, SwapIns: 3, SwapPoolBlocks: 50, PeakSwapBlocksInUse: 30, SwapBlocksAtEnd: 0,
		Requests: []RequestMetrics{
			{ID: 3, TTFT: 0.3, TPOT: 0.07, Latency: 1.5, OutputTokens: 25, SLOMet: true},
			{ID: 4, TTFT: 0.6, TPOT: 0.20, Latency: 3.0, OutputTokens: 35, SLOMet: false},
		},
	}
	agg := MergeReports(5, []*Report{r1, r2})

	intChecks := []struct {
		name      string
		got, want int
	}{
		{"Completed", agg.Completed, 5}, {"Dropped", agg.Dropped, 1}, {"Unfinished", agg.Unfinished, 3},
		{"Preemptions", agg.Preemptions, 5}, {"TotalTokens", agg.TotalTokens, 150},
		{"KVBlocksTotal", agg.KVBlocksTotal, 200}, {"PeakKVBlocksInUse", agg.PeakKVBlocksInUse, 100},
		{"KVBlocksInUseAtEnd", agg.KVBlocksInUseAtEnd, 3}, {"KVBlocksCachedAtEnd", agg.KVBlocksCachedAtEnd, 12},
		{"PrefixCacheHitTokens", agg.PrefixCacheHitTokens, 40}, {"PrefixCacheMissTokens", agg.PrefixCacheMissTokens, 80},
		{"EvictedBlocks", agg.EvictedBlocks, 5},
		{"SwapOuts", agg.SwapOuts, 5}, {"SwapIns", agg.SwapIns, 4},
		{"SwapPoolBlocks", agg.SwapPoolBlocks, 100}, {"PeakSwapBlocksInUse", agg.PeakSwapBlocksInUse, 50},
		{"SwapBlocksAtEnd", agg.SwapBlocksAtEnd, 4},
	}
	for _, c := range intChecks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if agg.Platform != "tdx" || agg.OfferedRate != 5 {
		t.Errorf("platform/rate = %s/%g", agg.Platform, agg.OfferedRate)
	}
	if agg.MakespanSec != 10 {
		t.Errorf("makespan %g, want max 10", agg.MakespanSec)
	}
	if want := 150.0 / 10; agg.TokensPerSec != want {
		t.Errorf("TokensPerSec %g, want %g", agg.TokensPerSec, want)
	}
	// Goodput counts only SLO-met requests' tokens: 20 + 1 + 25.
	if want := 46.0 / 10; agg.GoodputTokensPerSec != want {
		t.Errorf("GoodputTokensPerSec %g, want %g", agg.GoodputTokensPerSec, want)
	}
	if want := 3.0 / 10; agg.GoodRequestsPerSec != want {
		t.Errorf("GoodRequestsPerSec %g, want %g", agg.GoodRequestsPerSec, want)
	}
	// Requests are the union in replica order; quantiles recompute over it.
	if len(agg.Requests) != 5 || agg.Requests[0].ID != 0 || agg.Requests[4].ID != 4 {
		t.Fatalf("merged requests misordered: %+v", agg.Requests)
	}
	wantTTFT := quantiles([]float64{0.2, 0.4, 0.1, 0.3, 0.6})
	wantTPOT := quantiles([]float64{0.05, 0.10, 0.07, 0.20}) // ID 2 excluded: single-token
	wantLat := quantiles([]float64{1.0, 2.0, 0.5, 1.5, 3.0})
	if agg.TTFT != wantTTFT || agg.TPOT != wantTPOT || agg.Latency != wantLat {
		t.Errorf("quantiles:\nTTFT %+v want %+v\nTPOT %+v want %+v\nLat %+v want %+v",
			agg.TTFT, wantTTFT, agg.TPOT, wantTPOT, agg.Latency, wantLat)
	}
}

// TestMergeReportsMatchesFleetRun cross-checks the synthetic contract
// against a real fleet: merging the per-replica reports must reproduce the
// aggregate RunFleet computed.
func TestMergeReportsMatchesFleetRun(t *testing.T) {
	cfg := tinyConfig(40, 32)
	cfg.PreemptPolicy = PreemptSwap
	fr, err := RunFleet(cpuBackend(tee.TDX()), cfg, FleetConfig{Replicas: 3, Policy: LeastLoaded})
	if err != nil {
		t.Fatal(err)
	}
	// Undo RunFleet's per-replica offered-rate relabeling before re-merging:
	// MergeReports consumes scheduler-local reports.
	again := MergeReports(fr.Aggregate.OfferedRate, fr.PerReplica)
	again.OfferedRate = fr.Aggregate.OfferedRate
	if !reflect.DeepEqual(fr.Aggregate, again) {
		t.Fatalf("re-merge differs from fleet aggregate:\nfleet %+v\nmerge %+v", fr.Aggregate, again)
	}
}
