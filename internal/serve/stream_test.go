package serve

import (
	"math"
	"os"
	"reflect"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"cllm/internal/sim"
	"cllm/internal/stats"
	"cllm/internal/tee"
	"cllm/internal/workload"
)

// runExactSharded runs cfg through the epoch-sharded exact path.
func runExactSharded(t *testing.T, cfg Config, epoch int) (*Report, AdmitOrder) {
	t.Helper()
	cfg.EpochRequests = epoch
	rep, order, err := RunAudited(cpuBackend(tee.TDX()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep, order
}

// TestShardedExactGolden pins the tentpole's safety net: the epoch-sharded
// scheduler path in exact mode is byte-identical to the monolithic one —
// same report (every counter, float and per-request metric) and the same
// admission order — whatever the epoch size, for Poisson, trace and
// scenario loads.
func TestShardedExactGolden(t *testing.T) {
	trace := []Request{
		{ID: 0, ArrivalSec: 0, InputLen: 64, OutputLen: 8},
		{ID: 1, ArrivalSec: 0.05, InputLen: 96, OutputLen: 6},
		{ID: 2, ArrivalSec: 0.05, InputLen: 32, OutputLen: 12}, // tie with ID 1
		{ID: 3, ArrivalSec: 0.2, InputLen: 64, OutputLen: 8},
		{ID: 4, ArrivalSec: 0.9, InputLen: 128, OutputLen: 4},
		{ID: 5, ArrivalSec: 1.4, InputLen: 64, OutputLen: 8},
		{ID: 6, ArrivalSec: 1.4, InputLen: 64, OutputLen: 8}, // tie at an epoch seam (epoch=3)
	}
	diurnal, err := workload.ParseScenario("diurnal", 25)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"poisson", tinyConfig(25, 40)},
		{"poisson-overload", tinyConfig(400, 60)},
		{"trace", func() Config {
			c := tinyConfig(1, 0)
			c.Trace = trace
			return c
		}()},
		{"scenario", func() Config {
			c := tinyConfig(25, 40)
			c.Scenario = &diurnal
			return c
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantRep, wantOrder, err := RunAudited(cpuBackend(tee.TDX()), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, epoch := range []int{1, 3, 17, 100000} {
				rep, order := runExactSharded(t, tc.cfg, epoch)
				if !reflect.DeepEqual(rep, wantRep) {
					t.Fatalf("epoch %d: sharded report differs from monolithic\n got %+v\nwant %+v", epoch, rep, wantRep)
				}
				if !reflect.DeepEqual(order, wantOrder) {
					t.Fatalf("epoch %d: admission order differs: %v vs %v", epoch, order, wantOrder)
				}
			}
		})
	}
}

// TestShardedRejectsUnsortedTrace: epoch sharding drains the engine past
// each batch's last arrival, so an out-of-order trace cannot be replayed
// faithfully — it must be an error, not a silent reordering. The
// monolithic path still accepts it.
func TestShardedRejectsUnsortedTrace(t *testing.T) {
	cfg := tinyConfig(1, 0)
	cfg.Trace = []Request{
		{ID: 0, ArrivalSec: 1.0, InputLen: 64, OutputLen: 8},
		{ID: 1, ArrivalSec: 0.5, InputLen: 64, OutputLen: 8},
	}
	if _, _, err := RunAudited(cpuBackend(tee.TDX()), cfg); err != nil {
		t.Fatalf("monolithic run rejected unsorted trace: %v", err)
	}
	cfg.EpochRequests = 1
	if _, _, err := RunAudited(cpuBackend(tee.TDX()), cfg); err == nil {
		t.Fatal("sharded exact run accepted an unsorted trace")
	}
	cfg.EpochRequests = 0
	cfg.QuantileMode = QuantileSketch
	if _, _, err := RunAudited(cpuBackend(tee.TDX()), cfg); err == nil {
		t.Fatal("sketch run accepted an unsorted trace")
	}
}

// runSketch runs cfg in sketch mode with the given epoch size.
func runSketch(t *testing.T, cfg Config, epoch int) *Report {
	t.Helper()
	cfg.QuantileMode = QuantileSketch
	cfg.EpochRequests = epoch
	rep, order, err := RunAudited(cpuBackend(tee.TDX()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if order != nil {
		t.Fatalf("sketch run returned an admission audit of %d entries; the bounded-memory mode must not retain one", len(order))
	}
	if !rep.Sketched || rep.SketchAlpha <= 0 {
		t.Fatalf("report not marked sketched: Sketched=%v alpha=%g", rep.Sketched, rep.SketchAlpha)
	}
	if rep.Requests != nil {
		t.Fatalf("sketch report retained %d per-request metrics", len(rep.Requests))
	}
	return rep
}

// stripSketches clears the raw sketch pointers so reports can be
// DeepEqual-compared across epoch sizes: merging per-epoch sketches
// regroups their float sums (quantiles and counts are integer-derived and
// stay bit-identical; the report's Mean fields come from epoch-independent
// running sums, so they must match exactly too).
func stripSketches(rep *Report) *Report {
	c := *rep
	c.TTFTSketch, c.TPOTSketch, c.LatencySketch = nil, nil, nil
	return &c
}

// TestSketchEpochInvariance: the sketched report — every counter, rate,
// quantile and mean — is invariant to the epoch size, and the underlying
// sketches agree bucket-for-bucket on quantiles, count and extrema.
func TestSketchEpochInvariance(t *testing.T) {
	diurnal, err := workload.ParseScenario("diurnal", 30)
	if err != nil {
		t.Fatal(err)
	}
	scenarioCfg := tinyConfig(30, 300)
	scenarioCfg.Scenario = &diurnal
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"poisson", tinyConfig(30, 300)},
		{"scenario", scenarioCfg},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := runSketch(t, tc.cfg, 7)
			for _, epoch := range []int{1, 64, 1 << 20} {
				got := runSketch(t, tc.cfg, epoch)
				if !reflect.DeepEqual(stripSketches(got), stripSketches(want)) {
					t.Fatalf("epoch %d vs 7: sketched reports differ\n got %+v\nwant %+v",
						epoch, stripSketches(got), stripSketches(want))
				}
				for _, sk := range []struct {
					name     string
					got, ref *stats.Sketch
				}{
					{"TTFT", got.TTFTSketch, want.TTFTSketch},
					{"TPOT", got.TPOTSketch, want.TPOTSketch},
					{"latency", got.LatencySketch, want.LatencySketch},
				} {
					if sk.got.Count() != sk.ref.Count() || sk.got.Min() != sk.ref.Min() || sk.got.Max() != sk.ref.Max() {
						t.Fatalf("epoch %d: %s sketch count/min/max differ", epoch, sk.name)
					}
					for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
						if a, b := sk.got.Quantile(q), sk.ref.Quantile(q); a != b {
							t.Fatalf("epoch %d: %s Quantile(%g) = %g vs %g", epoch, sk.name, q, a, b)
						}
					}
				}
			}
		})
	}
}

// exactRankOf is the order statistic the sketch's error bound is stated
// against: the element of rank floor(q·(n−1)).
func exactRankOf(sorted []float64, q float64) float64 {
	return sorted[int(q*float64(len(sorted)-1))]
}

// TestSketchMatchesExactRun is the cross-mode equivalence check: on the
// same Poisson load, the sketch run's event stream — and with it every
// counter, the makespan and throughput — is byte-identical to the exact
// run's, and the sketched quantiles land within the documented relative
// error bound of the exact run's order statistics. This is also the
// guard against the latent merge drift the exact path allowed: sketched
// per-epoch merges must reproduce the exact union, not approximately
// re-aggregate it.
func TestSketchMatchesExactRun(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"underload", tinyConfig(20, 2000)},
		{"overload-drops", tinyConfig(500, 800)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			exact, _, err := RunAudited(cpuBackend(tee.TDX()), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			sk := runSketch(t, tc.cfg, 64)

			if sk.Completed != exact.Completed || sk.Dropped != exact.Dropped ||
				sk.Unfinished != exact.Unfinished || sk.Preemptions != exact.Preemptions {
				t.Fatalf("request partition differs: sketch %d/%d/%d/%d, exact %d/%d/%d/%d",
					sk.Completed, sk.Dropped, sk.Unfinished, sk.Preemptions,
					exact.Completed, exact.Dropped, exact.Unfinished, exact.Preemptions)
			}
			if sk.TotalTokens != exact.TotalTokens || sk.MakespanSec != exact.MakespanSec ||
				sk.TokensPerSec != exact.TokensPerSec {
				t.Fatalf("token/throughput figures differ: sketch %d/%g/%g, exact %d/%g/%g",
					sk.TotalTokens, sk.MakespanSec, sk.TokensPerSec,
					exact.TotalTokens, exact.MakespanSec, exact.TokensPerSec)
			}
			if sk.SwapOuts != exact.SwapOuts || sk.SwapIns != exact.SwapIns ||
				sk.EvictedBlocks != exact.EvictedBlocks || sk.PeakKVBlocksInUse != exact.PeakKVBlocksInUse {
				t.Fatalf("KV counters differ between modes")
			}
			if sk.GoodRequests != exact.GoodRequests || sk.GoodOutputTokens != exact.GoodOutputTokens ||
				sk.CompletedOutputTokens != exact.CompletedOutputTokens {
				t.Fatalf("goodput counters differ: sketch %d/%d/%d, exact %d/%d/%d",
					sk.GoodRequests, sk.GoodOutputTokens, sk.CompletedOutputTokens,
					exact.GoodRequests, exact.GoodOutputTokens, exact.CompletedOutputTokens)
			}
			if sk.GoodputTokensPerSec != exact.GoodputTokensPerSec || sk.SLOAttainment() != exact.SLOAttainment() {
				t.Fatalf("goodput rates differ: %g vs %g", sk.GoodputTokensPerSec, exact.GoodputTokensPerSec)
			}

			var ttfts, tpots, lats []float64
			for _, m := range exact.Requests {
				ttfts = append(ttfts, m.TTFT)
				lats = append(lats, m.Latency)
				if m.OutputTokens > 1 {
					tpots = append(tpots, m.TPOT)
				}
			}
			for _, c := range []struct {
				name    string
				samples []float64
				sk      *stats.Sketch
				mean    float64
			}{
				{"TTFT", ttfts, sk.TTFTSketch, sk.TTFT.Mean},
				{"TPOT", tpots, sk.TPOTSketch, sk.TPOT.Mean},
				{"latency", lats, sk.LatencySketch, sk.Latency.Mean},
			} {
				sort.Float64s(c.samples)
				if int64(len(c.samples)) != c.sk.Count() {
					t.Fatalf("%s: sketch saw %d samples, exact run has %d", c.name, c.sk.Count(), len(c.samples))
				}
				for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
					want := exactRankOf(c.samples, q)
					got := c.sk.Quantile(q)
					if rel := math.Abs(got-want) / want; rel > sk.SketchAlpha+1e-9 {
						t.Errorf("%s p%g: sketch %g vs exact %g (rel err %.4g > alpha %g)",
							c.name, 100*q, got, want, rel, sk.SketchAlpha)
					}
				}
				wantMean := stats.Mean(c.samples)
				if math.Abs(c.mean-wantMean) > 1e-9*wantMean {
					t.Errorf("%s mean: sketch %g vs exact %g", c.name, c.mean, wantMean)
				}
			}
		})
	}
}

// TestStreamedConservation drives the streamed runner directly and checks
// the physical conservation laws the sharded handoff must preserve: the
// request partition sums to the submissions, every KV block is accounted
// for (refcount conservation via CheckConservation), and nothing leaks
// across epoch boundaries.
func TestStreamedConservation(t *testing.T) {
	for _, tc := range []struct {
		name string
		rate float64
		n    int
	}{
		{"underload", 30, 400},
		{"overload", 600, 500}, // drops + preemptions cross epoch seams
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tinyConfig(tc.rate, tc.n)
			cfg.QuantileMode = QuantileSketch
			if err := cfg.normalize(); err != nil {
				t.Fatal(err)
			}
			be := cpuBackend(tee.TDX())
			noise := newNoise(be, cfg.Seed)
			s, err := newScheduler(be, cfg, sim.NewEngine(), noise)
			if err != nil {
				t.Fatal(err)
			}
			rep, _, err := runStreamed(s, cfg, noise, 32)
			if err != nil {
				t.Fatal(err)
			}
			if got := rep.Completed + rep.Dropped + rep.Unfinished; got != tc.n {
				t.Fatalf("request partition %d+%d+%d = %d, want %d submissions",
					rep.Completed, rep.Dropped, rep.Unfinished, got, tc.n)
			}
			if err := s.kv.CheckConservation(); err != nil {
				t.Fatalf("KV refcount conservation broken after epoch handoffs: %v", err)
			}
			if rep.Unfinished == 0 && rep.KVBlocksInUseAtEnd != 0 {
				t.Fatalf("leaked %d KV blocks with no unfinished requests", rep.KVBlocksInUseAtEnd)
			}
			if rep.Completed > 0 && (rep.TotalTokens < rep.Completed || rep.TTFTSketch.Count() != int64(rep.Completed)) {
				t.Fatalf("token/sketch ledgers inconsistent: tokens %d, completed %d, sketch count %d",
					rep.TotalTokens, rep.Completed, rep.TTFTSketch.Count())
			}
		})
	}
}

// TestFleetSketchMatchesExact: a sketched fleet run dispatches identically
// to the exact one (same event stream), its per-replica and merged
// counters match, and the merged sketch quantiles stay within the error
// bound of the exact aggregate's order statistics.
func TestFleetSketchMatchesExact(t *testing.T) {
	cfg := tinyConfig(60, 300)
	fcfg := FleetConfig{Replicas: 3, Policy: LeastLoaded}
	exact, err := RunFleet(cpuBackend(tee.TDX()), cfg, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	skCfg := cfg
	skCfg.QuantileMode = QuantileSketch
	sketched, err := RunFleet(cpuBackend(tee.TDX()), skCfg, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sketched.Dispatch, exact.Dispatch) {
		t.Fatalf("dispatch differs: %v vs %v", sketched.Dispatch, exact.Dispatch)
	}
	for i := range exact.PerReplica {
		e, s := exact.PerReplica[i], sketched.PerReplica[i]
		if !s.Sketched {
			t.Fatalf("replica %d report not sketched", i)
		}
		if s.Completed != e.Completed || s.TotalTokens != e.TotalTokens || s.MakespanSec != e.MakespanSec {
			t.Fatalf("replica %d counters differ between modes", i)
		}
	}
	ea, sa := exact.Aggregate, sketched.Aggregate
	if !sa.Sketched {
		t.Fatal("merged aggregate not sketched")
	}
	if sa.Completed != ea.Completed || sa.TotalTokens != ea.TotalTokens ||
		sa.GoodRequests != ea.GoodRequests || sa.GoodOutputTokens != ea.GoodOutputTokens ||
		sa.GoodputTokensPerSec != ea.GoodputTokensPerSec {
		t.Fatalf("aggregate counters differ: sketch %+v, exact %+v", sa, ea)
	}
	var lats []float64
	for _, m := range ea.Requests {
		lats = append(lats, m.Latency)
	}
	sort.Float64s(lats)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		want := exactRankOf(lats, q)
		got := sa.LatencySketch.Quantile(q)
		if rel := math.Abs(got-want) / want; rel > sa.SketchAlpha+1e-9 {
			t.Errorf("merged latency p%g: sketch %g vs exact %g (rel err %.4g)", 100*q, got, want, rel)
		}
	}
	// Mixed merge: one sketched replica report plus one exact one still
	// yields a sketched aggregate with conserved counters.
	mixed := MergeReports(cfg.Rate, []*Report{sketched.PerReplica[0], exact.PerReplica[1]})
	if !mixed.Sketched {
		t.Fatal("mixed merge lost sketch mode")
	}
	if want := exact.PerReplica[0].Completed + exact.PerReplica[1].Completed; mixed.Completed != want {
		t.Fatalf("mixed merge completed %d, want %d", mixed.Completed, want)
	}
	if want := int64(len(exact.PerReplica[0].Requests) + len(exact.PerReplica[1].Requests)); mixed.LatencySketch.Count() != want {
		t.Fatalf("mixed merge latency sketch holds %d samples, want %d", mixed.LatencySketch.Count(), want)
	}
}

// heapHighWater samples HeapAlloc while fn runs and returns the peak.
func heapHighWater(fn func()) uint64 {
	var peak atomic.Uint64
	done := make(chan struct{})
	go func() {
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			for {
				old := peak.Load()
				if ms.HeapAlloc <= old || peak.CompareAndSwap(old, ms.HeapAlloc) {
					break
				}
			}
			select {
			case <-done:
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()
	fn()
	close(done)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > peak.Load() {
		peak.Store(ms.HeapAlloc)
	}
	return peak.Load()
}

// TestSketchModeFlatMemory is the bounded-memory regression gate: growing
// the request count 10× in sketch mode must not grow the heap high-water
// mark materially — the whole point of the tentpole. The exact mode's
// per-request ledger grows linearly; the sketch mode's must not. Set
// CLLM_FLATMEM_LARGE=1 to extend the check to 10⁷ requests.
func TestSketchModeFlatMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory regression check is not -short friendly")
	}
	run := func(n int) {
		cfg := tinyConfig(50, n)
		cfg.QuantileMode = QuantileSketch
		rep, err := Run(cpuBackend(tee.Baremetal()), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Completed+rep.Dropped+rep.Unfinished != n {
			t.Fatalf("lost requests: %+v", rep)
		}
	}
	sizes := []int{100_000, 1_000_000}
	if os.Getenv("CLLM_FLATMEM_LARGE") != "" {
		sizes = append(sizes, 10_000_000)
	}
	peaks := make([]uint64, len(sizes))
	for i, n := range sizes {
		runtime.GC()
		peaks[i] = heapHighWater(func() { run(n) })
		t.Logf("%d requests: heap high-water %.1f MiB", n, float64(peaks[i])/(1<<20))
	}
	// Allow generous slack for GC timing jitter: what must NOT happen is
	// the linear growth a retained per-request ledger (~100 B/req, i.e.
	// ~10× per size step here) would show.
	const slackBytes = 32 << 20
	for i := 1; i < len(peaks); i++ {
		if peaks[i] > 2*peaks[0]+slackBytes {
			t.Fatalf("heap high-water grew with request count: %v bytes across %v requests", peaks, sizes)
		}
	}
}

// BenchmarkServeSchedulerSketch mirrors BenchmarkServeScheduler on the
// bounded-memory path, so the bench ledger tracks the streaming runner's
// throughput alongside the exact one's.
func BenchmarkServeSchedulerSketch(b *testing.B) {
	cfg := tinyConfig(50, 2000)
	cfg.QuantileMode = QuantileSketch
	be := cpuBackend(tee.TDX())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(be, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
