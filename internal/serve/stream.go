package serve

import (
	"fmt"
	"math/rand"

	"cllm/internal/sim"
	"cllm/internal/stats"
)

// This file is the epoch-sharded runner behind Config.QuantileMode ==
// QuantileSketch (and Config.EpochRequests > 0 in exact mode): instead of
// materializing every arrival and retaining every request's state, the
// run schedules arrivals one epoch at a time, drains the engine to the
// epoch's last arrival, hands the warm scheduler/KV/prefix-cache state to
// the next epoch, and streams completed requests into bounded-memory
// quantile sketches. Memory is then independent of the request count —
// the ROADMAP's 10⁸-request "millions of users" run fits in a flat heap.
//
// Determinism contract, pinned by stream_test.go:
//
//   - Exact mode with EpochRequests set is byte-identical to the
//     monolithic run: arrivals are generated from the same noise-stream
//     RNG in the same order, and sim.Engine.ScheduleAt places mid-run
//     arrivals at bit-exact times.
//   - Sketch mode replays the arrival stream from a second RNG seeded
//     identically, after burning the monolithic run's arrival draws out
//     of the noise stream — so every event time, counter and the
//     admission order match the exact run bit for bit (for trace and
//     Poisson loads; scenario streams draw shapes interleaved with times,
//     a different-but-equally-valid sample path from the same seed).
//   - Results are invariant to the epoch size.

// arrivalSource yields the offered load one request at a time, in
// nondecreasing arrival order.
type arrivalSource struct {
	emit func() (Request, bool)
}

func (a *arrivalSource) next() (Request, bool) { return a.emit() }

// newArrivalSource builds the streaming form of genArrivals over cfg's
// load: the explicit trace, a scenario generator, or the Poisson
// synthesizer. Epoch sharding drains the engine up to each scheduled
// batch's last arrival, which silently reorders an out-of-order trace —
// so sharded runs require traces sorted by arrival time.
func newArrivalSource(cfg Config, rng *rand.Rand) (*arrivalSource, error) {
	switch {
	case len(cfg.Trace) > 0:
		if err := validateTrace(cfg); err != nil {
			return nil, err
		}
		for i := 1; i < len(cfg.Trace); i++ {
			if cfg.Trace[i].ArrivalSec < cfg.Trace[i-1].ArrivalSec {
				return nil, fmt.Errorf("serve: epoch-sharded runs require a trace sorted by arrival time (request %d at %gs after %gs)",
					cfg.Trace[i].ID, cfg.Trace[i].ArrivalSec, cfg.Trace[i-1].ArrivalSec)
			}
		}
		i := 0
		return &arrivalSource{emit: func() (Request, bool) {
			if i >= len(cfg.Trace) {
				return Request{}, false
			}
			r := cfg.Trace[i]
			i++
			return r, true
		}}, nil
	case cfg.Scenario != nil:
		gen, err := cfg.Scenario.Stream(rng)
		if err != nil {
			return nil, err
		}
		i := 0
		return &arrivalSource{emit: func() (Request, bool) {
			if i >= cfg.Requests {
				return Request{}, false
			}
			wr := gen.Next()
			r := clampToContext(Request{
				ID: i, ArrivalSec: wr.ArrivalSec,
				InputLen: wr.InputLen, OutputLen: wr.OutputLen,
				PrefixID: wr.PrefixID, PrefixLen: wr.PrefixLen,
				Class: classOfShape(wr.Shape),
			}, cfg.Workload.Model.ContextLen)
			i++
			return r, true
		}}, nil
	default:
		g := newPoissonGen(cfg, rng)
		return &arrivalSource{emit: g.next}, nil
	}
}

// streamAccum is the scheduler's streaming outcome ledger: completed
// requests fold into the current epoch's sketches as they finish, and
// rotate() merges each finished epoch into the cumulative summaries —
// the sketch merge path is thereby exercised by every sharded run, not
// just fleet aggregation.
type streamAccum struct {
	alpha float64
	// Current-epoch sketches, merged into the cumulative ones at each
	// epoch boundary and reset in place.
	epochTTFT, epochTPOT, epochLat *stats.Sketch
	ttft, tpot, lat                *stats.Sketch
	// Float sums accumulated in completion order, independent of epoch
	// boundaries: the report's Mean fields come from these so results are
	// invariant to the epoch size (per-epoch sketch sums would regroup
	// float additions when the epoch size changes).
	ttftSum, tpotSum, latSum float64
	tpotCount                int64

	completed, dropped                    int
	goodReqs, goodTokens, completedTokens int
	completedByClass                      [NumClasses]int
	goodTokensByClass                     [NumClasses]int
}

func newStreamAccum(alpha float64) *streamAccum {
	mk := func() *stats.Sketch {
		sk, err := stats.NewSketch(alpha)
		if err != nil {
			// alpha was validated by Config.normalize; an error here is a
			// programming bug, not a runtime condition.
			panic(err)
		}
		return sk
	}
	return &streamAccum{
		alpha:     alpha,
		epochTTFT: mk(), epochTPOT: mk(), epochLat: mk(),
		ttft: mk(), tpot: mk(), lat: mk(),
	}
}

// observe folds one finished request into the current epoch, with the
// same SLO arithmetic report() applies to retained states.
func (a *streamAccum) observe(st *reqState, ttftSLO, tpotSLO float64) {
	ttft := st.firstTokenAt - st.req.ArrivalSec
	lat := st.finishedAt - st.req.ArrivalSec
	// Simulated times are finite by construction, so Add cannot fail.
	_ = a.epochTTFT.Add(ttft)
	_ = a.epochLat.Add(lat)
	a.ttftSum += ttft
	a.latSum += lat
	// Single-token requests have no decode phase: TPOT is undefined for
	// them, so they neither join the TPOT sketch nor can fail its SLO.
	tpotOK := true
	if st.generated > 1 {
		tpot := (st.finishedAt - st.firstTokenAt) / float64(st.generated-1)
		tpotOK = tpot <= tpotSLO
		_ = a.epochTPOT.Add(tpot)
		a.tpotSum += tpot
		a.tpotCount++
	}
	a.completed++
	a.completedTokens += st.generated
	a.completedByClass[st.req.Class]++
	if ttft <= ttftSLO && tpotOK {
		a.goodReqs++
		a.goodTokens += st.generated
		a.goodTokensByClass[st.req.Class] += st.generated
	}
}

// rotate merges the finished epoch's sketches into the cumulative ones
// and resets them for the next epoch. Bucket counts are integers, so the
// cumulative quantiles are bit-identical whatever the epoch size.
func (a *streamAccum) rotate() {
	for _, p := range [...][2]*stats.Sketch{
		{a.ttft, a.epochTTFT}, {a.tpot, a.epochTPOT}, {a.lat, a.epochLat},
	} {
		if p[1].Count() == 0 {
			continue
		}
		if err := p[0].Merge(p[1]); err != nil {
			panic(err) // same alpha by construction
		}
		p[1].Reset()
	}
}

// meanOr returns sum/count as the sketch-mode Mean (0 on empty).
func meanOr(sum float64, count int64) float64 {
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// buildStreamReport assembles a sketched report from the sink after the
// engine has drained. submitted is how many requests entered the run.
func (s *scheduler) buildStreamReport(a *streamAccum, submitted int) *Report {
	a.rotate()
	makespan := float64(s.eng.Now())
	if s.failEnabled && s.lastProgress < makespan {
		// See report(): crash/recovery events outlive the last request
		// outcome; throughput is measured to the last progress instant.
		makespan = s.lastProgress
	}
	rep := &Report{
		Platform:              s.be.platformName(),
		OfferedRate:           offeredRate(s.cfg),
		Completed:             a.completed,
		Dropped:               a.dropped,
		Unfinished:            submitted - a.completed - a.dropped,
		DroppedByReason:       s.drops,
		Sheds:                 s.sheds,
		Retries:               s.retries,
		Crashes:               s.crashes,
		DowntimeSec:           s.downtimeSec,
		HandoffsOut:           s.handoffsOut,
		HandoffsIn:            s.handoffsIn,
		HandoffFallbacks:      s.handoffFallbacks,
		HandoffTokens:         s.handoffTokens,
		HandoffBytes:          s.handoffBytes,
		CompletedByClass:      a.completedByClass,
		GoodTokensByClass:     a.goodTokensByClass,
		Preemptions:           s.preemptions,
		MakespanSec:           makespan,
		TotalTokens:           s.producedTot,
		KVBlocksTotal:         s.kv.TotalBlocks(),
		PeakKVBlocksInUse:     s.kv.PeakInUse(),
		KVBlocksInUseAtEnd:    s.kv.InUse(),
		KVBlocksCachedAtEnd:   s.kv.CachedBlocks(),
		PrefixCacheHitTokens:  s.kv.HitTokens(),
		PrefixCacheMissTokens: s.kv.MissTokens(),
		EvictedBlocks:         s.kv.EvictedBlocks(),
		SwapOuts:              s.swapOuts,
		SwapIns:               s.swapIns,
		SwapPoolBlocks:        s.kv.SwapPoolBlocks(),
		PeakSwapBlocksInUse:   s.kv.PeakSwapBlocks(),
		SwapBlocksAtEnd:       s.kv.SwappedBlocks(),
		Sketched:              true,
		SketchAlpha:           a.alpha,
		GoodRequests:          a.goodReqs,
		GoodOutputTokens:      a.goodTokens,
		CompletedOutputTokens: a.completedTokens,
		TTFTSketch:            a.ttft,
		TPOTSketch:            a.tpot,
		LatencySketch:         a.lat,
	}
	if rep.MakespanSec > 0 {
		rep.TokensPerSec = float64(rep.TotalTokens) / rep.MakespanSec
		rep.GoodputTokensPerSec = float64(a.goodTokens) / rep.MakespanSec
		rep.GoodRequestsPerSec = float64(a.goodReqs) / rep.MakespanSec
	}
	rep.TTFT = sketchQuantiles(a.ttft)
	rep.TPOT = sketchQuantiles(a.tpot)
	rep.Latency = sketchQuantiles(a.lat)
	// Epoch-size-invariant means (see streamAccum): override the sketch
	// accumulators' grouping-dependent sums.
	rep.TTFT.Mean = meanOr(a.ttftSum, a.ttft.Count())
	rep.TPOT.Mean = meanOr(a.tpotSum, a.tpotCount)
	rep.Latency.Mean = meanOr(a.latSum, a.lat.Count())
	return rep
}

// reportSketched is the retained-states counterpart of buildStreamReport:
// fleet replicas keep per-request states for dispatch, but under sketch
// mode their reports fold those states into sketches instead of carrying
// a Requests slice, so MergeReports can aggregate fleets of any size
// without concatenating per-request samples.
func (s *scheduler) reportSketched(states []*reqState) *Report {
	a := newStreamAccum(s.cfg.SketchAlpha)
	for _, st := range states {
		switch st.phase {
		case phaseFinished:
			a.observe(st, s.cfg.TTFTSLOSec, s.cfg.TPOTSLOSec)
		case phaseDropped:
			a.dropped++
		}
	}
	return s.buildStreamReport(a, len(states))
}

// runSharded is RunAudited's epoch-sharded path. cfg is already
// normalized and the backend socket-defaulted.
func runSharded(be Backend, cfg Config) (*Report, AdmitOrder, error) {
	epoch := cfg.EpochRequests
	if epoch <= 0 {
		epoch = DefaultEpochRequests
	}
	noise := newNoise(be, cfg.Seed)
	s, err := newScheduler(be, cfg, sim.NewEngine(), noise)
	if err != nil {
		return nil, nil, err
	}
	if cfg.QuantileMode == QuantileSketch {
		return runStreamed(s, cfg, noise, epoch)
	}
	return runShardedExact(s, cfg, noise, epoch)
}

// runShardedExact runs the epochs over fully materialized arrivals and
// retained states: same memory profile as the monolithic path, byte-
// identical report and admission order (the golden test for the sharding
// machinery — sketch mode reuses the same epoch loop with the buffers
// swapped out for sketches).
func runShardedExact(s *scheduler, cfg Config, noise *sim.Noise, epoch int) (*Report, AdmitOrder, error) {
	arrivals, err := genArrivals(cfg, noise.RNG())
	if err != nil {
		return nil, nil, err
	}
	if len(cfg.Trace) > 0 {
		for i := 1; i < len(arrivals); i++ {
			if arrivals[i].ArrivalSec < arrivals[i-1].ArrivalSec {
				return nil, nil, fmt.Errorf("serve: epoch-sharded runs require a trace sorted by arrival time (request %d at %gs after %gs)",
					arrivals[i].ID, arrivals[i].ArrivalSec, arrivals[i-1].ArrivalSec)
			}
		}
	}
	s.admitOrder = make([]int, 0, len(arrivals))
	states := make([]*reqState, len(arrivals))
	stateBlock := make([]reqState, len(arrivals)) // one allocation, not one per request
	lastArrival := 0.0
	for start := 0; start < len(arrivals); start += epoch {
		end := start + epoch
		if end > len(arrivals) {
			end = len(arrivals)
		}
		for i := start; i < end; i++ {
			st := &stateBlock[i]
			st.req = arrivals[i]
			states[i] = st
			if st.req.ArrivalSec > lastArrival {
				lastArrival = st.req.ArrivalSec
			}
			s.eng.ScheduleAt(sim.Time(st.req.ArrivalSec), func(*sim.Engine) {
				s.submit(st)
			})
		}
		if _, err := s.eng.RunUntil(sim.Time(lastArrival), cfg.MaxSteps); err != nil {
			return nil, nil, err
		}
		if s.err != nil {
			return nil, nil, s.err
		}
	}
	if _, err := s.eng.RunUntil(sim.Time(lastArrival+cfg.HorizonSec), cfg.MaxSteps); err != nil {
		return nil, nil, err
	}
	if s.err != nil {
		return nil, nil, s.err
	}
	return s.report(states), AdmitOrder(s.admitOrder), nil
}

// runStreamed is the bounded-memory runner: lazy arrival generation, no
// retained request states, no admission audit, outcomes streamed into
// sketches. It returns a nil AdmitOrder — the audit trail is exactly the
// per-request memory this mode exists to avoid.
func runStreamed(s *scheduler, cfg Config, noise *sim.Noise, epoch int) (*Report, AdmitOrder, error) {
	// Burn the arrival-synthesis draws out of the noise stream: the
	// monolithic run draws every arrival from the noise RNG before the
	// first simulated step, so its step-noise samples start that far into
	// the stream. Draining a throwaway source here, then replaying the
	// same draws lazily from a second RNG seeded identically, keeps every
	// event time bit-identical to the exact run while generating arrivals
	// epoch by epoch.
	burn, err := newArrivalSource(cfg, noise.RNG())
	if err != nil {
		return nil, nil, err
	}
	for {
		if _, ok := burn.next(); !ok {
			break
		}
	}
	src, err := newArrivalSource(cfg, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, nil, err
	}
	s.sink = newStreamAccum(cfg.SketchAlpha)
	s.noAudit = true
	submitted := 0
	lastArrival := 0.0
	for {
		n := 0
		for n < epoch {
			req, ok := src.next()
			if !ok {
				break
			}
			st := &reqState{req: req}
			if req.ArrivalSec > lastArrival {
				lastArrival = req.ArrivalSec
			}
			s.eng.ScheduleAt(sim.Time(req.ArrivalSec), func(*sim.Engine) {
				s.submit(st)
			})
			submitted++
			n++
		}
		if n == 0 {
			break
		}
		if _, err := s.eng.RunUntil(sim.Time(lastArrival), cfg.MaxSteps); err != nil {
			return nil, nil, err
		}
		if s.err != nil {
			return nil, nil, s.err
		}
		s.sink.rotate()
	}
	if _, err := s.eng.RunUntil(sim.Time(lastArrival+cfg.HorizonSec), cfg.MaxSteps); err != nil {
		return nil, nil, err
	}
	if s.err != nil {
		return nil, nil, s.err
	}
	return s.buildStreamReport(s.sink, submitted), nil, nil
}
