package serve

import (
	"fmt"
	"reflect"
	"testing"

	"cllm/internal/par"
	"cllm/internal/tee"
)

// disaggTopology is the canonical two-stage test fleet: one baremetal
// prefill replica handing KV off to two TDX decode replicas.
func disaggTopology() Topology {
	return Topology{Groups: []RoleGroup{
		{Role: RolePrefill, Backend: cpuBackend(tee.Baremetal()), Replicas: 1},
		{Role: RoleDecode, Backend: cpuBackend(tee.TDX()), Replicas: 2},
	}}
}

func runDisagg(t *testing.T, cfg Config) *FleetReport {
	t.Helper()
	f, err := NewFleet(disaggTopology())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestUnifiedFleetMatchesPrePRGolden pins the refactored construction
// path (NewFleet/Fleet.Run, buildReplica) to the exact output the
// pre-topology RunFleet produced at commit afa540b: the digest below was
// recorded by running that commit's RunFleet with this backend and
// config. Any drift in replica seeding, arrival generation order or
// dispatch breaks this test before it breaks a downstream sweep.
func TestUnifiedFleetMatchesPrePRGolden(t *testing.T) {
	f, err := NewFleet(Unified(cpuBackend(tee.TDX()), FleetConfig{Replicas: 3, Policy: LeastLoaded}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.Run(tinyConfig(30, 30))
	if err != nil {
		t.Fatal(err)
	}
	a := rep.Aggregate
	got := fmt.Sprintf("completed=%d dropped=%d unfinished=%d tokens=%d preempt=%d peakKV=%d "+
		"ttftP50=%.17g ttftP99=%.17g tpotMean=%.17g latP99=%.17g makespan=%.17g dispatch=%v",
		a.Completed, a.Dropped, a.Unfinished, a.TotalTokens, a.Preemptions, a.PeakKVBlocksInUse,
		a.TTFT.P50, a.TTFT.P99, a.TPOT.Mean, a.Latency.P99, a.MakespanSec, rep.Dispatch)
	want := "completed=30 dropped=0 unfinished=0 tokens=232 preempt=0 peakKV=10 " +
		"ttftP50=0.00072557843283221901 ttftP99=0.00074294991151118816 " +
		"tpotMean=0.00073151788845103257 latP99=0.0092407346048520647 " +
		"makespan=1.0563287221053284 dispatch=[28 2 0]"
	if got != want {
		t.Fatalf("unified fleet diverged from the pre-PR RunFleet golden:\n got  %s\n want %s", got, want)
	}
}

// TestRunFleetIsUnifiedTopology pins the thin-wrapper contract: RunFleet
// and the explicit one-group unified topology produce deeply equal
// reports.
func TestRunFleetIsUnifiedTopology(t *testing.T) {
	be := cpuBackend(tee.TDX())
	cfg := tinyConfig(25, 24)
	old, err := RunFleet(be, cfg, FleetConfig{Replicas: 2, Policy: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(Unified(be, FleetConfig{Replicas: 2, Policy: RoundRobin}))
	if err != nil {
		t.Fatal(err)
	}
	via, err := f.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old, via) {
		t.Fatalf("RunFleet and NewFleet(Unified).Run diverge:\n%+v\nvs\n%+v", old.Aggregate, via.Aggregate)
	}
}

// TestHandoffKVConservationAcrossRoles drains a disaggregated run and
// checks the paged-pool invariants on every replica — prefill replicas
// must release every drained block, decode replicas must retire every
// staged copy — plus the fleet-level handoff ledger.
func TestHandoffKVConservationAcrossRoles(t *testing.T) {
	checked := 0
	fleetTestHook = func(reps []*scheduler, roles []Role) {
		for i, s := range reps {
			if err := s.kv.CheckConservation(); err != nil {
				t.Errorf("replica %d (%s): %v", i, roles[i], err)
			}
			checked++
		}
	}
	defer func() { fleetTestHook = nil }()

	cfg := tinyConfig(25, 40)
	cfg.Workload.OutputLen = 16
	cfg.LengthJitter = -1 // exact lengths, so the token ledger is exact arithmetic
	rep := runDisagg(t, cfg)
	if checked != 3 {
		t.Fatalf("conservation hook saw %d replicas, want 3", checked)
	}
	a := rep.Aggregate
	if a.Completed != 40 || a.Dropped != 0 || a.Unfinished != 0 {
		t.Fatalf("completed/dropped/unfinished = %d/%d/%d, want 40/0/0", a.Completed, a.Dropped, a.Unfinished)
	}
	if a.HandoffsOut == 0 {
		t.Fatal("disaggregated run launched no handoffs")
	}
	if a.HandoffsIn+a.HandoffFallbacks != a.HandoffsOut {
		t.Fatalf("handoff ledger broken: %d launched, %d ingested + %d fallbacks",
			a.HandoffsOut, a.HandoffsIn, a.HandoffFallbacks)
	}
	if a.KVBlocksInUseAtEnd != 0 {
		t.Fatalf("leaked %d KV blocks across the handoff edge", a.KVBlocksInUseAtEnd)
	}
	if a.SwapBlocksAtEnd != 0 {
		t.Fatalf("leaked %d staging-pool blocks after ingest", a.SwapBlocksAtEnd)
	}
	// Every prefill-side request drains exactly InputLen+1 tokens of KV.
	if want := a.HandoffsOut * (cfg.Workload.InputLen + 1); a.HandoffTokens != want {
		t.Fatalf("handoff tokens %d, want %d (%d handoffs × %d tokens)",
			a.HandoffTokens, want, a.HandoffsOut, cfg.Workload.InputLen+1)
	}
	if a.HandoffBytes <= 0 {
		t.Fatal("handoff transfers carried no bytes")
	}
}

// TestDisaggDeterminism pins handoff routing: the same disaggregated
// config must produce deeply equal fleet reports run after run, whether
// runs execute serially or concurrently under internal/par worker pools
// of any width, and in sketch mode as well as exact mode.
func TestDisaggDeterminism(t *testing.T) {
	cfg := tinyConfig(30, 32)
	base := runDisagg(t, cfg)
	if again := runDisagg(t, cfg); !reflect.DeepEqual(base, again) {
		t.Fatalf("back-to-back disaggregated runs diverge:\n%+v\nvs\n%+v", base.Aggregate, again.Aggregate)
	}
	for _, workers := range []int{2, 4, 8} {
		const runs = 8
		reps := make([]*FleetReport, runs)
		err := par.For(workers, runs, func(j int) error {
			f, err := NewFleet(disaggTopology())
			if err != nil {
				return err
			}
			reps[j], err = f.Run(cfg)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		for j, rep := range reps {
			if !reflect.DeepEqual(base, rep) {
				t.Fatalf("workers=%d run %d diverges from the serial run:\n%+v\nvs\n%+v",
					workers, j, base.Aggregate, rep.Aggregate)
			}
		}
	}

	skCfg := cfg
	skCfg.QuantileMode = QuantileSketch
	skA := runDisagg(t, skCfg)
	skB := runDisagg(t, skCfg)
	if !reflect.DeepEqual(skA, skB) {
		t.Fatalf("sketch-mode disaggregated runs diverge:\n%+v\nvs\n%+v", skA.Aggregate, skB.Aggregate)
	}
	if skA.Aggregate.HandoffsOut != base.Aggregate.HandoffsOut ||
		skA.Aggregate.HandoffsIn != base.Aggregate.HandoffsIn ||
		skA.Aggregate.HandoffTokens != base.Aggregate.HandoffTokens {
		t.Fatalf("sketch mode changed handoff routing: %d/%d/%d vs exact %d/%d/%d",
			skA.Aggregate.HandoffsOut, skA.Aggregate.HandoffsIn, skA.Aggregate.HandoffTokens,
			base.Aggregate.HandoffsOut, base.Aggregate.HandoffsIn, base.Aggregate.HandoffTokens)
	}
}
