package serve

// Fault injection: deterministic, seeded replica failures with TEE-priced
// recovery. A crash destroys the replica's device state — the running
// batch's KV entries, parked swap copies and the prefix cache all die with
// the TEE whose keys sealed them — and the replica is down for the
// platform's full cold start (ColdStartSec: boot + weight load + TD
// accept/enclave build + attestation RTT), so the same MTBF costs SGX, TDX
// and cGPU fleets visibly different unavailability. Crash times come from
// a scripted plan or a per-replica Poisson process on a private RNG
// stream: failure timing never perturbs arrival or step-noise draws, and
// the schedule is identical whatever the worker count or epoch size.

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"cllm/internal/sim"
)

// FailurePolicy selects what happens to in-flight requests when their
// replica crashes.
type FailurePolicy int

const (
	// FailRequeue (default): the victims lose their KV state but rejoin
	// the queue front and recompute after recovery — the client held its
	// connection across the failover.
	FailRequeue FailurePolicy = iota
	// FailLost: the victims are lost with the replica — they re-enter
	// through the retry path when they have budget, and otherwise leave
	// the run as failure-lost drops.
	FailLost
)

// String names the policy as the CLI spells it.
func (p FailurePolicy) String() string {
	switch p {
	case FailRequeue:
		return "requeue"
	case FailLost:
		return "lost"
	}
	return fmt.Sprintf("FailurePolicy(%d)", int(p))
}

// ParseFailurePolicy resolves a CLI failure-policy name.
func ParseFailurePolicy(s string) (FailurePolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "requeue", "":
		return FailRequeue, nil
	case "lost":
		return FailLost, nil
	}
	return 0, fmt.Errorf("serve: unknown failure policy %q (requeue|lost)", s)
}

// FailPoint is one scripted crash: replica Replica fails at TimeSec on the
// simulated clock. Points naming a replica that is already down are
// absorbed by the ongoing recovery.
type FailPoint struct {
	Replica int
	TimeSec float64
}

// ParseFailPlan parses the CLI crash script: comma-separated
// "replica@seconds" points ("0@30,1@45.5"); a bare "seconds" crashes
// replica 0.
func ParseFailPlan(s string) ([]FailPoint, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var plan []FailPoint
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		rep, at := 0, tok
		if i := strings.IndexByte(tok, '@'); i >= 0 {
			r, err := strconv.Atoi(strings.TrimSpace(tok[:i]))
			if err != nil || r < 0 {
				return nil, fmt.Errorf("serve: bad fail-plan replica in %q (want replica@seconds)", tok)
			}
			rep, at = r, strings.TrimSpace(tok[i+1:])
		}
		sec, err := strconv.ParseFloat(at, 64)
		if err != nil || math.IsNaN(sec) || math.IsInf(sec, 0) || sec < 0 {
			return nil, fmt.Errorf("serve: bad fail-plan time in %q (want replica@seconds)", tok)
		}
		plan = append(plan, FailPoint{Replica: rep, TimeSec: sec})
	}
	return plan, nil
}

// armFailures schedules this replica's crash stream. It is called lazily
// from the first submit — after the replica index is assigned on every
// construction path — and the first arrival time is deterministic, so the
// schedule is too.
func (s *scheduler) armFailures() {
	if s.failArmed {
		return
	}
	s.failArmed = true
	if len(s.cfg.Faults.Plan) > 0 {
		now := float64(s.eng.Now())
		for _, fp := range s.cfg.Faults.Plan {
			if fp.Replica != s.replica || fp.TimeSec < now {
				continue
			}
			s.eng.ScheduleAt(sim.Time(fp.TimeSec), func(*sim.Engine) { s.crash() })
		}
		return
	}
	s.failRNG = rand.New(rand.NewSource(int64(mix64(uint64(s.cfg.Seed)*0x9e3779b97f4a7c15 + uint64(s.replica) + 1))))
	s.scheduleNextCrash()
}

// scheduleNextCrash draws the next Poisson failure from the private
// failure stream. One crash is pending at a time; recovery draws the next.
func (s *scheduler) scheduleNextCrash() {
	dt := s.failRNG.ExpFloat64() * s.cfg.Faults.MTBFSec
	s.eng.Schedule(sim.Time(dt), func(*sim.Engine) { s.crash() })
}

// crash fails the replica now: the running batch is evicted with its KV
// state destroyed, parked swap copies and the prefix cache are discarded,
// and the replica is down until the cold-start recovery completes.
func (s *scheduler) crash() {
	if s.down || s.err != nil {
		return
	}
	s.down = true
	s.crashes++
	s.downtimeSec += s.recoverySec
	if s.obs != nil {
		s.event(Event{Kind: EvCrash, ReqID: -1, Tokens: len(s.running), XferSec: s.recoverySec})
	}
	if s.iterating {
		// The in-flight round dies with the device: finishIteration will
		// discard its commits, but the attribution stream still needs the
		// round boundary, so close the interval with an empty round here.
		s.abortRound = true
		if s.obs != nil {
			s.event(Event{Kind: EvDecodeRound, ReqID: -1, Tokens: 0})
		}
	}
	// Evict the running batch through the normal preemption machinery
	// (events, counters, front-requeue) with the swap path bypassed — the
	// device KV cannot be parked off a dead replica.
	lost := len(s.running)
	for len(s.running) > 0 {
		s.preempt(s.running[len(s.running)-1], ReasonCrash)
	}
	// Parked swap copies and the prefix cache die with the TEE: the keys
	// that sealed them are gone after the rebuild.
	for i := 0; i < s.queue.Len(); i++ {
		st := s.queue.At(i)
		if !st.swapped {
			continue
		}
		s.kv.SwapIn(st.req.ID)
		st.swapped, st.swappedTokens = false, 0
		st.prefilled, st.prefillTarget = 0, 0
	}
	s.kv.FlushCache()
	if s.cfg.Faults.Policy == FailLost {
		// The crash-preempted victims sit at the queue front; under
		// FailLost they leave the queue for the retry path or the
		// failure-lost drop.
		for ; lost > 0; lost-- {
			st := s.queue.PopFront()
			if st.attempt < s.cfg.Faults.RetryMax {
				s.scheduleRetry(st)
				continue
			}
			s.dropQueued(st, DropFailureLost, st.ctxTokens())
		}
	}
	s.eng.Schedule(sim.Time(s.recoverySec), func(*sim.Engine) { s.recoverReplica() })
}

// recoverReplica completes the cold start: the replica is servable again,
// and under Poisson failures the next crash is drawn.
func (s *scheduler) recoverReplica() {
	if s.err != nil {
		return
	}
	s.down = false
	if s.obs != nil {
		s.event(Event{Kind: EvRecover, ReqID: -1, XferSec: s.recoverySec})
	}
	if len(s.cfg.Faults.Plan) == 0 && s.cfg.Faults.MTBFSec > 0 {
		s.scheduleNextCrash()
	}
	s.kick()
}

// scheduleRetry re-enters a shed or failure-lost request into the arrival
// stream after its exponential backoff. The retry restarts from scratch:
// produced tokens are wasted work (still counted in TotalTokens via
// wastedTokens) and the computed state is gone. Jitter is deterministic
// per (request, attempt) — no shared RNG stream, so retries never perturb
// noise or arrival draws.
func (s *scheduler) scheduleRetry(st *reqState) {
	st.attempt++
	st.phase = phaseWaiting
	s.wastedTokens += st.generated
	st.generated = 0
	st.prefilled, st.prefillTarget = 0, 0
	st.firstTokenAt = 0
	back := s.cfg.Faults.RetryBackoffSec * math.Pow(2, float64(st.attempt-1))
	j := float64(mix64(uint64(st.req.ID)*0x9e3779b97f4a7c15+uint64(st.attempt))>>11) / float64(uint64(1)<<53)
	back *= 1 + 0.5*j
	s.eng.Schedule(sim.Time(back), func(*sim.Engine) { s.resubmit(st) })
}

// resubmit is the backoff's completion: the request rejoins the queue as a
// fresh arrival (EvRetry rather than EvArrive, so offered-request counts
// stay one per request) with its deadline renewed from the re-entry time.
func (s *scheduler) resubmit(st *reqState) {
	if s.err != nil || st.phase != phaseWaiting {
		return
	}
	s.retries++
	if s.cfg.Faults.Admission != AdmitFIFO {
		st.deadline = float64(s.eng.Now()) + st.req.Class.deadlineMult()*s.cfg.DeadlineSec
	}
	if s.obs != nil {
		s.event(Event{Kind: EvRetry, ReqID: st.req.ID, Tokens: st.req.InputLen, Hist: st.attempt})
	}
	s.queue.PushBack(st)
	s.progress()
	s.kick()
}

// progress records the last request-outcome instant. With failures
// enabled the engine keeps ticking on crash/recovery events long after the
// last request left the run; the report measures throughput to the last
// progress instant instead of the last engine event.
func (s *scheduler) progress() {
	if s.failEnabled {
		s.lastProgress = float64(s.eng.Now())
	}
}
