package mem

import (
	"testing"
	"testing/quick"
)

func TestPageSizeString(t *testing.T) {
	if Page4K.String() != "4K" || Page2M.String() != "2M" || Page1G.String() != "1G" {
		t.Error("page size names wrong")
	}
	if PageSize(123).String() == "" {
		t.Error("unknown page size empty")
	}
}

func TestTLBPenaltyZeroWithinReach(t *testing.T) {
	// 2048 entries × 1G pages cover 2 TiB: any realistic working set fits.
	if p := TLBPenalty(100e9, PolicyFullHuge, 2048, 1); p != 0 {
		t.Errorf("1G penalty = %g, want 0", p)
	}
	// 2048 × 2M = 4 GiB; a 1 GiB working set fits.
	if p := TLBPenalty(1e9, PolicyTransparentHuge, 2048, 1); p != 0 {
		t.Errorf("2M penalty for 1GB = %g, want 0", p)
	}
}

func TestTLBPenaltyOrdering(t *testing.T) {
	// Same working set (14 GB ≈ Llama2-7B bf16): 4K worse than 2M worse
	// than 1G.
	ws := 14e9
	p4 := TLBPenalty(ws, PolicyBase, 2048, 1)
	p2 := TLBPenalty(ws, PolicyTransparentHuge, 2048, 1)
	p1 := TLBPenalty(ws, PolicyFullHuge, 2048, 1)
	if !(p4 > p2 && p2 > p1) {
		t.Errorf("penalties not ordered: 4K=%g 2M=%g 1G=%g", p4, p2, p1)
	}
}

func TestTLBWalkAmplification(t *testing.T) {
	ws := 14e9
	native := TLBPenalty(ws, PolicyTransparentHuge, 2048, 1)
	nested := TLBPenalty(ws, PolicyTransparentHuge, 2048, 2)
	tdx := TLBPenalty(ws, PolicyTransparentHuge, 2048, 2.4)
	if nested <= native || tdx <= nested {
		t.Errorf("walk amplification not monotone: %g %g %g", native, nested, tdx)
	}
	// Amplification below 1 is clamped.
	if got := TLBPenalty(ws, PolicyTransparentHuge, 2048, 0.5); got != native {
		t.Errorf("walkAmp<1 not clamped: %g vs %g", got, native)
	}
}

func TestTDXPolicyDegradesTo2M(t *testing.T) {
	if PolicyTDX.Requested != Page1G || PolicyTDX.Effective != Page2M {
		t.Errorf("PolicyTDX = %+v", PolicyTDX)
	}
	// TDX's effective penalty equals a 2M policy's, not a 1G policy's.
	ws := 30e9
	if TLBPenalty(ws, PolicyTDX, 2048, 2.4) != TLBPenalty(ws, PolicyTransparentHuge, 2048, 2.4) {
		t.Error("TDX policy does not walk like 2M")
	}
}

func TestTLBPenaltyProperties(t *testing.T) {
	if err := quick.Check(func(wsRaw uint32, entRaw uint16) bool {
		ws := float64(wsRaw) * 1e6
		entries := int(entRaw%4096) + 1
		p := TLBPenalty(ws, PolicyTransparentHuge, entries, 2)
		// Penalty is bounded by basePenalty × amplification and non-negative.
		return p >= 0 && p <= 0.042*2+1e-12
	}, nil); err != nil {
		t.Error(err)
	}
	if TLBPenalty(-5, PolicyBase, 100, 1) != 0 {
		t.Error("negative working set not guarded")
	}
	if TLBPenalty(1e9, PolicyBase, 0, 1) != 0 {
		t.Error("zero entries not guarded")
	}
}

func TestRemoteFractionSingleSocketZero(t *testing.T) {
	for p := NUMABound; p <= NUMASubNUMAMisplaced; p++ {
		if f := RemoteFraction(p, 1); f != 0 {
			t.Errorf("%v on 1 socket: remote %g, want 0", p, f)
		}
	}
}

func TestRemoteFractionOrdering(t *testing.T) {
	// Paper ordering (Fig 5, §IV-A.1): bound < TDX broken < SNC-misplaced ≤
	// unbound < SGX single-node.
	b := RemoteFraction(NUMABound, 2)
	tdx := RemoteFraction(NUMABrokenTDX, 2)
	nb := RemoteFraction(NUMAUnbound, 2)
	snc := RemoteFraction(NUMASubNUMAMisplaced, 2)
	sgx := RemoteFraction(NUMASingleNodeSGX, 2)
	if !(b < tdx && tdx < snc && snc <= nb && nb < sgx) {
		t.Errorf("remote fractions out of order: %g %g %g %g %g", b, tdx, snc, nb, sgx)
	}
}

func TestNUMAPolicyString(t *testing.T) {
	for p := NUMABound; p <= NUMASubNUMAMisplaced; p++ {
		if p.String() == "" {
			t.Errorf("policy %d has empty name", p)
		}
	}
	if NUMAPolicy(42).String() == "" {
		t.Error("unknown policy empty name")
	}
}

func TestEPCPaging(t *testing.T) {
	e := DefaultEPC()
	if f := e.PagingPenalty(1e9); f != 1 {
		t.Errorf("small ws penalty = %g, want 1", f)
	}
	if f := e.PagingPenalty(float64(e.Size)); f != 1 {
		t.Errorf("exact-fit penalty = %g, want 1", f)
	}
	over := e.PagingPenalty(2 * float64(e.Size))
	if over <= 1 {
		t.Errorf("2x oversubscription penalty = %g, want > 1", over)
	}
	way := e.PagingPenalty(20 * float64(e.Size))
	if way <= over {
		t.Error("penalty not monotone in oversubscription")
	}
	if way > e.PageInCostFactor {
		t.Errorf("penalty %g exceeds the page-in cost factor bound", way)
	}
	// Disabled EPC (size 0) never penalizes.
	if f := (EPC{}).PagingPenalty(1e15); f != 1 {
		t.Errorf("zero-size EPC penalty = %g", f)
	}
}
