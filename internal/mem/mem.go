// Package mem models the memory-system mechanisms behind the paper's CPU
// TEE overheads: TLB reach as a function of page size (4K / 2M transparent /
// 1G), page-walk amplification under nested paging (VM EPT, TDX secure EPT),
// NUMA placement policies including the broken bindings of the TDX/SGX
// drivers (Insight 6), sub-NUMA clustering misplacement, and the SGX enclave
// page cache (EPC) with its paging penalty.
package mem

import (
	"fmt"

	"cllm/internal/hw"
)

// PageSize is a virtual-memory page size in bytes.
type PageSize int64

// Supported page sizes.
const (
	Page4K PageSize = 4 << 10
	Page2M PageSize = 2 << 20
	Page1G PageSize = 1 << 30
)

// String renders the conventional name.
func (p PageSize) String() string {
	switch p {
	case Page4K:
		return "4K"
	case Page2M:
		return "2M"
	case Page1G:
		return "1G"
	default:
		return fmt.Sprintf("PageSize(%d)", int64(p))
	}
}

// basePenalty is the fractional memory-time penalty when the working set
// fully escapes TLB reach at this page size (single-level walk cost).
func (p PageSize) basePenalty() float64 {
	switch p {
	case Page4K:
		return hw.TLBMissPenalty4K
	case Page2M:
		return hw.TLBMissPenalty2M
	case Page1G:
		return hw.TLBMissPenalty1G
	default:
		return hw.TLBMissPenalty4K
	}
}

// PagePolicy captures requested versus effective page handling. TDX ignores
// manually reserved 1G hugepages and silently uses 2M transparent hugepages
// (Insight 7); Effective records what the hardware actually walks.
type PagePolicy struct {
	Requested PageSize
	Effective PageSize
}

// Policy constructors matching the paper's VM variants.
var (
	// PolicyFullHuge is a VM backed by preallocated 1G pages (VM FH).
	PolicyFullHuge = PagePolicy{Requested: Page1G, Effective: Page1G}
	// PolicyTransparentHuge is 2M transparent hugepages (VM TH).
	PolicyTransparentHuge = PagePolicy{Requested: Page2M, Effective: Page2M}
	// PolicyTDX requests 1G but the TDX module degrades to 2M THP.
	PolicyTDX = PagePolicy{Requested: Page1G, Effective: Page2M}
	// PolicyBase is regular 4K paging.
	PolicyBase = PagePolicy{Requested: Page4K, Effective: Page4K}
)

// TLBPenalty returns the fractional extra memory time caused by TLB misses
// for a working set of ws bytes under the given effective page size, TLB
// entry count, and page-walk amplification (1 = native, ~2 = nested EPT,
// ~2.4 = TDX secure EPT with integrity verification).
func TLBPenalty(ws float64, p PagePolicy, entries int, walkAmp float64) float64 {
	if ws <= 0 || entries <= 0 {
		return 0
	}
	coverage := float64(entries) * float64(p.Effective)
	if ws <= coverage {
		return 0
	}
	escape := 1 - coverage/ws
	if walkAmp < 1 {
		walkAmp = 1
	}
	return p.Effective.basePenalty() * escape * walkAmp
}

// NUMAPolicy selects how memory is placed across sockets.
type NUMAPolicy int

const (
	// NUMABound pins memory node-local (QEMU bindings honoured): VM B.
	NUMABound NUMAPolicy = iota
	// NUMAUnbound lets allocations land anywhere: VM NB.
	NUMAUnbound
	// NUMABrokenTDX models the TDX KVM driver ignoring provided bindings.
	NUMABrokenTDX
	// NUMASingleNodeSGX models SGX presenting all memory as one node, so
	// allocations pile onto one socket (the paper's 230% SGX case).
	NUMASingleNodeSGX
	// NUMASubNUMAMisplaced models sub-NUMA clustering confusing TEE
	// drivers' placement (~5% → ~42% overhead, §IV-A.1).
	NUMASubNUMAMisplaced
)

// String names the policy.
func (n NUMAPolicy) String() string {
	switch n {
	case NUMABound:
		return "bound"
	case NUMAUnbound:
		return "unbound"
	case NUMABrokenTDX:
		return "tdx-broken-binding"
	case NUMASingleNodeSGX:
		return "sgx-single-node"
	case NUMASubNUMAMisplaced:
		return "snc-misplaced"
	default:
		return fmt.Sprintf("NUMAPolicy(%d)", int(n))
	}
}

// RemoteFraction returns the fraction of memory traffic that crosses the
// socket interconnect for the policy on the given socket count. On a single
// socket there is no remote traffic regardless of policy.
func RemoteFraction(p NUMAPolicy, sockets int) float64 {
	if sockets <= 1 {
		return 0
	}
	switch p {
	case NUMABound:
		// Well-partitioned tensor-parallel runs still exchange activations.
		return 0.05
	case NUMAUnbound:
		return 0.22
	case NUMABrokenTDX:
		return 0.07
	case NUMASingleNodeSGX:
		// All memory on one node: the other socket's cores are fully remote
		// and even local cores contend on one controller.
		return 0.50
	case NUMASubNUMAMisplaced:
		return hw.SNCMisplacementRemoteFraction
	default:
		return 0.22
	}
}

// EPC models the SGX enclave page cache.
type EPC struct {
	// Size is the protected memory capacity in bytes.
	Size int64
	// PageInCostFactor is the slowdown multiplier applied to the escaping
	// fraction of traffic when the working set exceeds the EPC (each page-in
	// requires eviction, re-encryption and verification).
	PageInCostFactor float64
}

// DefaultEPC returns the Emerald Rapids configuration: 512 GiB per socket of
// protected memory (SGX2), paging ~25x slower than a direct access.
func DefaultEPC() EPC {
	return EPC{Size: 512 << 30, PageInCostFactor: 25}
}

// PagingPenalty returns the multiplicative memory-time factor for a resident
// working set of ws bytes: 1 when it fits, growing with the thrashing
// fraction when it does not.
func (e EPC) PagingPenalty(ws float64) float64 {
	if e.Size <= 0 || ws <= float64(e.Size) {
		return 1
	}
	escape := 1 - float64(e.Size)/ws
	return 1 + escape*(e.PageInCostFactor-1)
}
