// Package autoscale simulates elastic heterogeneous TEE fleets: replica
// classes (backend × instance price × cold-start latency) behind a cost-
// and load-aware dispatcher, with a reactive target-tracking scaler that
// activates and drains replicas as the arrival process moves. Its question
// extends the paper's: confidentiality is priced not only per served token
// at steady state, but per *elastic* token — scaling a confidential fleet
// reactively pays TEE-specific cold starts (enclave/TD memory preparation
// plus the attestation round-trip) that non-confidential fleets do not,
// which forces overprovisioning to hold an SLO under bursty load.
//
// The control loop runs on the same discrete-event engine as the serving
// schedulers (one shared simulated clock), so queueing during a cold start
// is in the numbers, not assumed away.
package autoscale

import (
	"fmt"
	"math"
	"sort"

	"cllm/internal/par"
	"cllm/internal/serve"
	"cllm/internal/sim"
	"cllm/internal/trace"
)

// Class is one replica flavor of a heterogeneous fleet: a backend
// (hardware × TEE), its rental price, its cold-start latency, and the
// replica-count bounds the operator allows.
type Class struct {
	// Name labels the class in reports (e.g. "tdx", "cgpu").
	Name string
	// Backend is the hardware/TEE combination replicas of this class run.
	Backend serve.Backend
	// HourlyUSD is the rental price of one replica.
	HourlyUSD float64
	// ColdStartSec is activation-to-servable latency: instance boot, TEE
	// memory preparation, weight provisioning and the attestation
	// round-trip. Use ColdStartSec() to derive it from the platform
	// mechanisms; zero means instantly servable (the counterfactual
	// baseline the harness compares against).
	ColdStartSec float64
	// Min/Max bound the active replica count. Min replicas start warm at
	// t=0 (the standing fleet); the scaler may activate up to Max.
	Min, Max int
	// CapacityReqPerSec is one replica's saturated completion rate for the
	// experiment's request shape, used by cost-aware dispatch weighting
	// and the target-tracking scaler. Zero means "probe it": Run measures
	// it with ProbeCapacity before simulating.
	CapacityReqPerSec float64
}

// ColdStartSec models provisioning a fresh replica of the backend for a
// workload. It delegates to serve.ColdStartSec — the same formula prices
// failure recovery in the scheduler's fault injector, so elasticity and
// recovery share one cold-start model.
func ColdStartSec(be serve.Backend, w trace.Workload) float64 {
	return serve.ColdStartSec(be, w)
}

// Dispatch selects how arrivals are routed across the active fleet.
type Dispatch int

const (
	// Uniform routes each arrival to the active replica with the fewest
	// outstanding requests, blind to class capability or price — the
	// policy a homogeneous-fleet balancer would apply unchanged.
	Uniform Dispatch = iota
	// CostAware routes by normalized load — outstanding work relative to
	// the class's service capacity — so slow (cheap) replicas receive only
	// what they can serve within SLO, and breaks ties toward the cheaper
	// class per unit capacity.
	CostAware
)

// String names the policy as the CLI spells it.
func (d Dispatch) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case CostAware:
		return "cost-aware"
	}
	return fmt.Sprintf("Dispatch(%d)", int(d))
}

// ParseDispatch resolves a CLI dispatch name.
func ParseDispatch(s string) (Dispatch, error) {
	switch s {
	case "uniform", "":
		return Uniform, nil
	case "cost-aware", "cost", "ca":
		return CostAware, nil
	}
	return 0, fmt.Errorf("autoscale: unknown dispatch %q (uniform|cost-aware)", s)
}

// Config tunes one autoscaling simulation.
type Config struct {
	// Serve carries the workload (model, datatype, SLOs) and the offered
	// load — a Scenario, a Trace, or plain Poisson Rate/Requests — shared
	// by every replica. Per-replica knobs (MaxBatch, chunking, prefix
	// sharing) apply to each replica individually.
	Serve serve.Config
	// Dispatch is the routing policy (default Uniform).
	Dispatch Dispatch
	// IntervalSec is the control-loop period (default 15 s).
	IntervalSec float64
	// TargetUtil is the utilization the scaler tracks: it provisions
	// capacity = demand / TargetUtil (default 0.7). Lower values mean more
	// headroom — the knob operators turn to absorb cold-start lag.
	TargetUtil float64
	// ScaleDownHoldSec is how long the fleet must stay above the desired
	// size before surplus replicas start draining (default 2 intervals) —
	// hysteresis against flapping on burst edges.
	ScaleDownHoldSec float64
	// DemandAlpha is the EWMA smoothing factor for the scaler's demand
	// estimate, in (0, 1]: estimate = alpha*instant + (1-alpha)*previous.
	// 0 means the default 1 — the pure one-window reactive estimator,
	// bit-identical to the pre-smoothing behavior. Values below 1 damp
	// burst edges: fewer cold starts and less capacity flapping, at the
	// cost of reacting a window or two late to sustained shifts.
	DemandAlpha float64
	// Workers bounds concurrent evaluation of independent sub-simulations —
	// the per-class capacity probes, each on its own engine with its own
	// seed. Probe results are assigned by class index and any error is
	// reported for the lowest erroring class, so every worker count
	// produces the identical report (tests assert serial/parallel equality).
	// Default (<= 1) keeps everything on the caller's goroutine.
	Workers int
}

func (c *Config) normalize() error {
	if c.IntervalSec <= 0 {
		c.IntervalSec = 15
	}
	if c.TargetUtil == 0 {
		c.TargetUtil = 0.7
	}
	if c.TargetUtil < 0 || c.TargetUtil > 1 {
		return fmt.Errorf("autoscale: target utilization %g outside (0, 1]", c.TargetUtil)
	}
	if c.ScaleDownHoldSec <= 0 {
		c.ScaleDownHoldSec = 2 * c.IntervalSec
	}
	if c.DemandAlpha == 0 {
		c.DemandAlpha = 1
	}
	if c.DemandAlpha < 0 || c.DemandAlpha > 1 {
		return fmt.Errorf("autoscale: demand EWMA alpha %g outside (0, 1]", c.DemandAlpha)
	}
	switch c.Dispatch {
	case Uniform, CostAware:
	default:
		return fmt.Errorf("autoscale: unknown dispatch policy %d", int(c.Dispatch))
	}
	return nil
}

// Window is one control-loop interval of the run's time series.
type Window struct {
	// StartSec is the window's start on the simulated clock.
	StartSec float64
	// Arrivals counts requests that arrived during the window.
	Arrivals int
	// Backlog is the queued+running total across the fleet at window end.
	Backlog int
	// Active is the per-class count of billed replicas (including ones
	// still cold-starting) at window end; Available counts only servable
	// ones.
	Active, Available []int
	// DemandReqPerSec is the scaler's demand estimate for the window.
	DemandReqPerSec float64
}

// ClassUsage aggregates one class's consumption over the run.
type ClassUsage struct {
	Name string
	// ReplicaHours integrates billed (active) replicas over simulated time.
	ReplicaHours float64
	// CostUSD prices those hours at the class rate.
	CostUSD float64
	// PeakActive is the maximum simultaneously billed replicas.
	PeakActive int
	// Dispatched counts requests routed to the class.
	Dispatched int
	// ColdStarts counts activations that paid the class cold start.
	ColdStarts int
	// ColdStartSec echoes the class's configured cold-start latency.
	ColdStartSec float64
}

// Report is the outcome of one autoscaling simulation.
type Report struct {
	// Dispatch names the routing policy.
	Dispatch string
	// Aggregate merges every replica's serving report (see
	// serve.MergeReports): fleet-wide latency quantiles, goodput, SLO
	// counters.
	Aggregate *serve.Report
	// Windows is the control-loop time series.
	Windows []Window
	// Usage is per-class consumption, in class order.
	Usage []ClassUsage
	// ReplicaHours and CostUSD total the usage across classes.
	ReplicaHours float64
	CostUSD      float64
	// USDPerMTok prices the run: total rental cost over SLO-compliant
	// served tokens. Infinite when nothing was served within SLO.
	USDPerMTok float64
	// ColdStarts counts replica activations that paid a cold start.
	ColdStarts int
}

// SLOAttainment returns the fraction of offered requests served within SLO.
func (r *Report) SLOAttainment() float64 { return r.Aggregate.SLOAttainment() }

// ProbeCapacity measures one replica's saturated completion rate for the
// config's request shape: a closed burst (every probe request arrives at
// t=0) is served to completion and the rate is completed/makespan. The
// scaler and cost-aware dispatch consume this as the class's capacity.
func ProbeCapacity(be serve.Backend, scfg serve.Config) (float64, error) {
	cfg := scfg
	inLen, outLen := cfg.Workload.InputLen, cfg.Workload.OutputLen
	if cfg.Scenario != nil {
		inLen = cfg.Scenario.Mix.MeanInputLen()
		outLen = cfg.Scenario.Mix.MeanOutputLen()
	}
	if inLen <= 0 {
		inLen = 128
	}
	if outLen <= 1 {
		outLen = 32
	}
	if ctx := cfg.Workload.Model.ContextLen; ctx > 0 && inLen+outLen > ctx {
		inLen = ctx - outLen
		if inLen < 1 {
			inLen, outLen = 1, ctx-1
		}
	}
	cfg.Scenario = nil
	// Probes are synthetic side-simulations, possibly run concurrently
	// (Workers > 1): never feed them to the run's observer — it is not
	// safe for concurrent use and its timeline should hold only the real
	// fleet's events.
	cfg.Observer = nil
	// A capacity probe measures the healthy saturated rate: fault injection,
	// admission shedding and retries would contaminate it with downtime and
	// turned-away load, so the probe twin runs failure-free and open-door.
	cfg.Faults = serve.FaultConfig{}
	cfg.FailMTBFSec, cfg.FailPlan = 0, nil
	cfg.Admission, cfg.RetryMax = serve.AdmitFIFO, 0
	// Probes need only Completed and MakespanSec. Sketch mode skips the
	// per-request ledger and its quantile sort; a trace run's event stream
	// is identical in both modes, so the measured rate is unchanged.
	cfg.QuantileMode = serve.QuantileSketch
	// The burst must overfill the batch, or the "saturated" rate would
	// reflect a part-empty batch plus ramp-down tail and understate the
	// class for deep-batch configs.
	mb := cfg.MaxBatch
	if mb <= 0 {
		mb = 32 // serve's normalize default
	}
	probes := 2 * mb
	if probes < 24 {
		probes = 24
	}
	probe := make([]serve.Request, probes)
	for i := range probe {
		probe[i] = serve.Request{ID: i, ArrivalSec: 0, InputLen: inLen, OutputLen: outLen}
	}
	cfg.Trace = probe
	rep, err := serve.Run(be, cfg)
	if err != nil {
		return 0, err
	}
	if rep.Completed == 0 || rep.MakespanSec <= 0 {
		return 0, fmt.Errorf("autoscale: capacity probe on %s completed nothing", rep.Platform)
	}
	return float64(rep.Completed) / rep.MakespanSec, nil
}

// probeCapacities fills missing per-class capacities, probing classes
// concurrently when cfg.Workers > 1. Each probe is an independent
// simulation on its own engine; results land by class index and the error
// reported is the lowest erroring class's, so the outcome is identical at
// any worker count.
func probeCapacities(cls []Class, cfg Config) error {
	need := make([]int, 0, len(cls))
	for i := range cls {
		if cls[i].CapacityReqPerSec <= 0 {
			need = append(need, i)
		}
	}
	if len(need) == 0 {
		return nil
	}
	return par.For(cfg.Workers, len(need), func(j int) error {
		i := need[j]
		cap, err := ProbeCapacity(cls[i].Backend, cfg.Serve)
		if err != nil {
			return fmt.Errorf("autoscale: class %s: %w", cls[i].Name, err)
		}
		cls[i].CapacityReqPerSec = cap
		return nil
	})
}

// slot is one provisionable replica instance. Its scheduler (rep) is
// built lazily on first activation — a class's Max bounds the fleet, it
// should not cost Max schedulers' state when the load never needs them.
type slot struct {
	class int   // index into classes
	idx   int   // fleet-wide slot index; labels observer events
	seed  int64 // decorrelates this slot's noise stream
	rep   *serve.Replica
	// active means billed (operator pays from activation to drain-done).
	active bool
	// availableAt is when the slot can first serve (activation + cold
	// start); meaningful while active.
	availableAt float64
	// draining means no new dispatches; deactivates when it empties.
	draining bool
	// billStart is the activation instant of the current billing span.
	billStart float64
	// billedHours accumulates completed billing spans.
	billedHours float64
	dispatched  int
}

func (s *slot) servable(now float64) bool {
	return s.active && !s.draining && s.availableAt <= now+1e-12
}

// Run simulates the offered load against an elastic fleet of the given
// classes. Class Min replicas start warm; the control loop activates (with
// cold start) and drains replicas every IntervalSec to track demand.
func Run(classes []Class, cfg Config) (*Report, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("autoscale: no replica classes")
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	cls := append([]Class(nil), classes...)
	totalMin := 0
	for i := range cls {
		c := &cls[i]
		if c.Name == "" {
			return nil, fmt.Errorf("autoscale: class %d needs a name", i)
		}
		if c.Max <= 0 {
			return nil, fmt.Errorf("autoscale: class %s needs Max >= 1, got %d", c.Name, c.Max)
		}
		if c.Min < 0 || c.Min > c.Max {
			return nil, fmt.Errorf("autoscale: class %s Min %d outside [0, %d]", c.Name, c.Min, c.Max)
		}
		if !(c.HourlyUSD > 0) || math.IsInf(c.HourlyUSD, 0) {
			return nil, fmt.Errorf("autoscale: class %s hourly price %g must be positive and finite", c.Name, c.HourlyUSD)
		}
		if c.ColdStartSec < 0 {
			return nil, fmt.Errorf("autoscale: class %s cold start %g is negative", c.Name, c.ColdStartSec)
		}
		if c.Backend.Coster == nil {
			// All replicas of a class run the same backend: share one
			// memoized costing table across its slots (and its capacity
			// probe below), so a step shape costed anywhere in the fleet is
			// a table hit everywhere else.
			coster, err := serve.NewStepCoster(c.Backend, cfg.Serve)
			if err != nil {
				return nil, fmt.Errorf("autoscale: class %s: %w", c.Name, err)
			}
			c.Backend.Coster = coster
		}
		totalMin += c.Min
	}
	if err := probeCapacities(cls, cfg); err != nil {
		return nil, err
	}
	if totalMin == 0 {
		// An empty standing fleet would queue the first arrivals behind a
		// cold start forever under zero demand estimate; keep one warm
		// replica of the cheapest-per-capacity class.
		cheapest := 0
		for i := range cls {
			if cls[i].HourlyUSD/cls[i].CapacityReqPerSec < cls[cheapest].HourlyUSD/cls[cheapest].CapacityReqPerSec {
				cheapest = i
			}
		}
		cls[cheapest].Min = 1
	}

	arrivals, err := serve.Arrivals(cfg.Serve)
	if err != nil {
		return nil, err
	}
	// Normalize a local copy the replicas share (NewReplica normalizes
	// again idempotently; this fixes defaults like HorizonSec up front).
	scfg := cfg.Serve
	if err := scfg.Normalize(); err != nil {
		return nil, err
	}

	eng := sim.NewEngine()
	f := &fleet{
		classes: cls, cfg: cfg, scfg: scfg, eng: eng,
		totalArrivals: len(arrivals),
		coldStarts:    make([]int, len(cls)),
		overSince:     make([]float64, len(cls)),
	}
	for ci := range cls {
		f.overSince[ci] = -1
		for j := 0; j < cls[ci].Max; j++ {
			s := &slot{class: ci, idx: len(f.slots), seed: scfg.Seed + int64(len(f.slots))*7919 + 104729}
			s.active = j < cls[ci].Min // warm standing fleet
			f.slots = append(f.slots, s)
			// Construct warm slots now, plus one probe slot per class, so
			// backend misconfigurations fail at Run time, not mid-event.
			if (s.active || j == 0) && !f.ensureReplica(s) {
				return nil, f.err
			}
		}
	}
	lastArrival := 0.0
	for _, req := range arrivals {
		req := req
		if req.ArrivalSec > lastArrival {
			lastArrival = req.ArrivalSec
		}
		eng.Schedule(sim.Time(req.ArrivalSec), func(*sim.Engine) { f.dispatch(req) })
	}
	eng.Schedule(sim.Time(cfg.IntervalSec), f.tick)

	horizon := sim.Time(lastArrival + scfg.HorizonSec)
	if _, err := eng.RunUntil(horizon, scfg.MaxSteps); err != nil {
		return nil, err
	}
	return f.report()
}

// fleet is the mutable state of one autoscaling run.
type fleet struct {
	classes []Class
	cfg     Config
	scfg    serve.Config
	slots   []*slot
	eng     *sim.Engine

	pending        []serve.Request // arrivals waiting for a servable slot
	windowArrivals int
	totalArrivals  int
	dispatchedN    int
	windows        []Window
	// prevDemand / haveDemand hold the EWMA state of the demand estimator
	// across control windows (see Config.DemandAlpha).
	prevDemand float64
	haveDemand bool
	// lastSheds is the fleet-wide admission-shed total at the previous tick;
	// the per-window delta feeds the demand estimate (shed requests are
	// offered load the fleet turned away — invisible to the backlog signal).
	lastSheds  int
	coldStarts []int // per class
	// overSince tracks, per class, when it started exceeding its desired
	// count (scale-down hysteresis); -1 means not currently over.
	overSince []float64
	done      bool
	// err records a mid-simulation replica-construction failure; it halts
	// the loop and fails the run.
	err error
}

// ensureReplica lazily constructs a slot's scheduler. A failure (backend
// misconfiguration) is recorded and halts the control loop.
func (f *fleet) ensureReplica(s *slot) bool {
	if s.rep != nil {
		return true
	}
	rep, err := serve.NewReplica(f.classes[s.class].Backend, f.scfg, f.eng, s.seed)
	if err != nil {
		f.err = err
		f.done = true
		return false
	}
	rep.SetIndex(s.idx) // observer events carry the fleet-wide slot index
	s.rep = rep
	return true
}

// dispatch routes one arrival (or a flushed pending request) to a replica.
func (f *fleet) dispatch(req serve.Request) {
	now := float64(f.eng.Now())
	f.windowArrivals++
	best := f.pick(now)
	if best == nil {
		f.pending = append(f.pending, req)
		return
	}
	f.submit(best, req)
}

// submit hands a request to a chosen slot.
func (f *fleet) submit(s *slot, req serve.Request) {
	s.rep.Submit(req)
	s.dispatched++
	f.dispatchedN++
}

// pick selects the dispatch target among servable slots, or nil.
func (f *fleet) pick(now float64) *slot {
	var best *slot
	var bestKey [2]float64
	for _, s := range f.slots {
		if !s.servable(now) {
			continue
		}
		if s.rep.Down() {
			// Crashed mid-recovery (fault injection): still billed, not a
			// dispatch target until its TEE cold start completes.
			continue
		}
		var key [2]float64
		c := f.classes[s.class]
		switch f.cfg.Dispatch {
		case CostAware:
			// Normalized load first, then dollars per unit capacity: a
			// slow cheap replica only wins while it is genuinely idle
			// relative to its service rate.
			key = [2]float64{
				(float64(s.rep.Outstanding()) + 1) / c.CapacityReqPerSec,
				c.HourlyUSD / c.CapacityReqPerSec,
			}
		default:
			key = [2]float64{float64(s.rep.Outstanding()), 0}
		}
		if best == nil || key[0] < bestKey[0] || (key[0] == bestKey[0] && key[1] < bestKey[1]) {
			best, bestKey = s, key
		}
	}
	return best
}

// flushPending re-dispatches queued arrivals once a slot becomes servable.
func (f *fleet) flushPending() {
	if len(f.pending) == 0 {
		return
	}
	now := float64(f.eng.Now())
	queued := f.pending
	f.pending = nil
	for i, req := range queued {
		best := f.pick(now)
		if best == nil {
			f.pending = append(f.pending, queued[i:]...)
			return
		}
		f.submit(best, req)
	}
}

// outstanding is fleet-wide queued+running load including undispatched
// pending arrivals.
func (f *fleet) outstanding() int {
	n := len(f.pending)
	for _, s := range f.slots {
		if s.rep != nil {
			n += s.rep.Outstanding()
		}
	}
	return n
}

// tick is one control-loop round: estimate demand, reconcile the fleet
// toward the desired per-class counts, retire drained slots, record the
// window, and reschedule until the run is over.
func (f *fleet) tick(*sim.Engine) {
	if f.done {
		return
	}
	now := float64(f.eng.Now())
	interval := f.cfg.IntervalSec

	backlog := f.outstanding()
	arrived := f.windowArrivals
	f.windowArrivals = 0
	// Demand: sustain the window's arrival rate and drain the backlog
	// within one control interval. With DemandAlpha < 1 the instantaneous
	// estimate is EWMA-smoothed across windows; alpha = 1 branches to the
	// raw value so the default stays bit-identical to the unsmoothed loop.
	demand := float64(arrived)/interval + float64(backlog)/interval
	// Shed requests left neither queue nor batch, so backlog cannot see
	// them — count the window's sheds as demand the fleet failed to carry.
	// Without admission control the delta is always zero.
	totalSheds := 0
	for _, s := range f.slots {
		if s.rep != nil {
			totalSheds += s.rep.Sheds()
		}
	}
	if d := totalSheds - f.lastSheds; d > 0 {
		demand += float64(d) / interval
	}
	f.lastSheds = totalSheds
	if f.cfg.DemandAlpha < 1 && f.haveDemand {
		demand = f.cfg.DemandAlpha*demand + (1-f.cfg.DemandAlpha)*f.prevDemand
	}
	f.prevDemand, f.haveDemand = demand, true
	needCapacity := demand / f.cfg.TargetUtil

	desired := f.desiredCounts(needCapacity)
	f.reconcile(now, desired)
	f.retireDrained(now)

	w := Window{
		StartSec:        now - interval,
		Arrivals:        arrived,
		Backlog:         backlog,
		Active:          make([]int, len(f.classes)),
		Available:       make([]int, len(f.classes)),
		DemandReqPerSec: demand,
	}
	for _, s := range f.slots {
		if s.active {
			w.Active[s.class]++
			if s.servable(now) {
				w.Available[s.class]++
			}
		}
	}
	f.windows = append(f.windows, w)

	// The loop ends once every arrival is dispatched and served; replicas
	// still active then are billed to the clock in report().
	if f.dispatchedN == f.totalArrivals && backlog == 0 {
		f.done = true
		return
	}
	f.eng.Schedule(sim.Time(interval), f.tick)
}

// desiredCounts allocates replicas to cover needCapacity at minimum rental
// cost: every class keeps its Min; extra replicas go to classes in
// cost-per-capacity order.
func (f *fleet) desiredCounts(needCapacity float64) []int {
	desired := make([]int, len(f.classes))
	remaining := needCapacity
	for i, c := range f.classes {
		desired[i] = c.Min
		remaining -= float64(c.Min) * c.CapacityReqPerSec
	}
	order := make([]int, len(f.classes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := f.classes[order[a]], f.classes[order[b]]
		return ca.HourlyUSD/ca.CapacityReqPerSec < cb.HourlyUSD/cb.CapacityReqPerSec
	})
	for _, i := range order {
		c := f.classes[i]
		for remaining > 0 && desired[i] < c.Max {
			desired[i]++
			remaining -= c.CapacityReqPerSec
		}
	}
	return desired
}

// reconcile moves the fleet toward the desired per-class counts:
// activations pay the class cold start immediately; drains wait out the
// scale-down hysteresis.
func (f *fleet) reconcile(now float64, desired []int) {
	for ci := range f.classes {
		activeN := 0
		for _, s := range f.slots {
			if s.class == ci && s.active && !s.draining {
				activeN++
			}
		}
		switch {
		case activeN < desired[ci]:
			f.overSince[ci] = -1
			need := desired[ci] - activeN
			// Prefer un-draining (still warm, no cold start) over cold
			// activation; an un-drained replica is servable immediately,
			// so queued arrivals flush onto it right away.
			for _, s := range f.slots {
				if need == 0 {
					break
				}
				if s.class == ci && s.active && s.draining {
					s.draining = false
					f.flushPending()
					need--
				}
			}
			for _, s := range f.slots {
				if need == 0 {
					break
				}
				if s.class == ci && !s.active {
					if !f.ensureReplica(s) {
						return
					}
					s.active = true
					s.billStart = now
					s.availableAt = now + f.classes[ci].ColdStartSec
					if f.classes[ci].ColdStartSec > 0 {
						f.coldStarts[ci]++
						availAt := s.availableAt
						f.eng.Schedule(sim.Time(availAt-now), func(*sim.Engine) { f.flushPending() })
					} else {
						f.flushPending()
					}
					need--
				}
			}
		case activeN > desired[ci]:
			// Per-class hysteresis: the class must stay over-provisioned
			// for the whole hold before its surplus drains, so burst-edge
			// flapping does not buy extra cold starts.
			if f.overSince[ci] < 0 {
				f.overSince[ci] = now
				break
			}
			if now-f.overSince[ci] < f.cfg.ScaleDownHoldSec {
				break
			}
			surplus := activeN - desired[ci]
			// Drain the emptiest slots first (they finish draining soonest).
			cands := make([]*slot, 0, activeN)
			for _, s := range f.slots {
				if s.class == ci && s.active && !s.draining {
					cands = append(cands, s)
				}
			}
			sort.SliceStable(cands, func(a, b int) bool {
				return cands[a].rep.Outstanding() < cands[b].rep.Outstanding()
			})
			for i := 0; i < surplus && i < len(cands); i++ {
				cands[i].draining = true
			}
		default:
			f.overSince[ci] = -1
		}
	}
}

// retireDrained deactivates drained slots and closes their billing span.
func (f *fleet) retireDrained(now float64) {
	for _, s := range f.slots {
		if s.active && s.draining && s.rep.Outstanding() == 0 {
			s.active = false
			s.draining = false
			s.billedHours += (now - s.billStart) / 3600
		}
	}
}

// report assembles the run outcome, billing still-active slots to the
// final clock.
func (f *fleet) report() (*Report, error) {
	if f.err != nil {
		return nil, f.err
	}
	now := float64(f.eng.Now())
	usage := make([]ClassUsage, len(f.classes))
	var reps []*serve.Report
	for i, c := range f.classes {
		usage[i] = ClassUsage{Name: c.Name, ColdStarts: f.coldStarts[i], ColdStartSec: c.ColdStartSec}
	}
	for _, s := range f.slots {
		if s.rep == nil {
			continue // never activated (lazily constructed on demand)
		}
		if err := s.rep.Err(); err != nil {
			return nil, err
		}
		hours := s.billedHours
		if s.active {
			hours += (now - s.billStart) / 3600
		}
		u := &usage[s.class]
		u.ReplicaHours += hours
		u.Dispatched += s.dispatched
		if s.rep.Submitted() > 0 || hours > 0 {
			reps = append(reps, s.rep.Report())
		}
	}
	// Peak active per class from the window series.
	for _, w := range f.windows {
		for ci, n := range w.Active {
			if n > usage[ci].PeakActive {
				usage[ci].PeakActive = n
			}
		}
	}
	out := &Report{
		Dispatch:   f.cfg.Dispatch.String(),
		Aggregate:  serve.MergeReports(f.scfg.OfferedRate(), reps),
		Windows:    f.windows,
		Usage:      usage,
		ColdStarts: sum(f.coldStarts),
	}
	// Undispatched pending arrivals (horizon hit mid-cold-start) are
	// offered-but-unserved; account them so attainment cannot overcount.
	out.Aggregate.Unfinished += len(f.pending)
	goodTokens := out.Aggregate.GoodOutputTokens
	if !out.Aggregate.Sketched {
		// Exact aggregates re-derive goodput from the request ledger (the
		// counter may be unset on reports from older producers).
		goodTokens = 0
		for _, m := range out.Aggregate.Requests {
			if m.SLOMet {
				goodTokens += m.OutputTokens
			}
		}
	}
	for i, c := range f.classes {
		usage[i].CostUSD = usage[i].ReplicaHours * c.HourlyUSD
		out.ReplicaHours += usage[i].ReplicaHours
		out.CostUSD += usage[i].CostUSD
	}
	if goodTokens > 0 {
		out.USDPerMTok = out.CostUSD / (float64(goodTokens) / 1e6)
	} else {
		out.USDPerMTok = math.Inf(1)
	}
	return out, nil
}

func sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
