package autoscale

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"cllm/internal/dtype"
	"cllm/internal/gramine"
	"cllm/internal/hw"
	"cllm/internal/model"
	"cllm/internal/obs"
	"cllm/internal/perf"
	"cllm/internal/serve"
	"cllm/internal/tee"
	"cllm/internal/trace"
	"cllm/internal/workload"
)

func testBackend(p tee.Platform) serve.Backend {
	return serve.Backend{CPU: perf.CPURun{CPU: hw.EMR1(), Platform: p, Sockets: 1, AMX: true}}
}

func gpuBackend(p tee.Platform) serve.Backend {
	return serve.Backend{IsGPU: true, GPU: perf.GPURun{GPU: hw.H100NVL(), Platform: p}}
}

func testWorkload(t *testing.T) trace.Workload {
	t.Helper()
	m, err := model.Lookup("llama2-7b")
	if err != nil {
		t.Fatal(err)
	}
	return trace.Workload{Model: m, Kind: dtype.BF16}
}

// testServeConfig is a bursty scenario over a chat-like mix, small enough
// for CI.
func testServeConfig(t *testing.T, requests int) serve.Config {
	sc := workload.Scenario{
		Arrivals: workload.Bursty(3),
		Mix:      workload.Mix{{Name: "chat", Weight: 1, InputLen: 128, OutputLen: 24, LengthJitter: 0.2}},
	}
	return serve.Config{
		Workload: testWorkload(t),
		Scenario: &sc,
		Requests: requests,
		Seed:     1,
		MaxBatch: 16,
	}
}

func TestColdStartSecMechanisms(t *testing.T) {
	w := testWorkload(t)
	bm := ColdStartSec(testBackend(tee.Baremetal()), w)
	tdx := ColdStartSec(testBackend(tee.TDX()), w)
	if tdx <= bm {
		t.Errorf("TDX cold start %.2fs not above baremetal %.2fs", tdx, bm)
	}
	// The protected delta must include at least the attestation RTT plus
	// the TD page-acceptance pass over the weights.
	weights := trace.WeightFootprint(w)
	if minDelta := tee.AttestationRTTSec + weights/tee.TDXAcceptBytesPerSec; tdx-bm < minDelta*0.99 {
		t.Errorf("TDX cold-start delta %.2fs below mechanism floor %.2fs", tdx-bm, minDelta)
	}
	sgxPlat, err := sgxPlatform()
	if err != nil {
		t.Fatal(err)
	}
	sgx := ColdStartSec(testBackend(sgxPlat), w)
	if sgx <= tdx {
		t.Errorf("SGX cold start %.2fs not above TDX %.2fs (EADD+EEXTEND is slower than TD accept)", sgx, tdx)
	}
	gpu := ColdStartSec(gpuBackend(tee.GPU()), w)
	cgpu := ColdStartSec(gpuBackend(tee.CGPU()), w)
	if cgpu <= gpu {
		t.Errorf("cGPU cold start %.2fs not above GPU %.2fs (bounce-buffered weight upload)", cgpu, gpu)
	}
}

func TestProbeCapacityOrdersBackends(t *testing.T) {
	cfg := testServeConfig(t, 16)
	cpu, err := ProbeCapacity(testBackend(tee.TDX()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := ProbeCapacity(gpuBackend(tee.CGPU()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cpu <= 0 || gpu <= 0 {
		t.Fatalf("non-positive capacities: cpu %g, gpu %g", cpu, gpu)
	}
	if gpu <= cpu {
		t.Errorf("cGPU capacity %.2f req/s not above TDX %.2f", gpu, cpu)
	}
}

func TestRunConservesRequestsAndBills(t *testing.T) {
	cfg := Config{Serve: testServeConfig(t, 96), IntervalSec: 10, TargetUtil: 0.6}
	classes := []Class{{
		Name: "tdx", Backend: testBackend(tee.TDX()), HourlyUSD: 0.83,
		ColdStartSec: 12, Min: 1, Max: 4,
	}}
	rep, err := Run(classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg := rep.Aggregate
	if got := agg.Completed + agg.Dropped + agg.Unfinished; got != 96 {
		t.Errorf("request conservation: %d completed + %d dropped + %d unfinished = %d, want 96",
			agg.Completed, agg.Dropped, agg.Unfinished, got)
	}
	if rep.ReplicaHours <= 0 || rep.CostUSD <= 0 {
		t.Errorf("no billing recorded: %v hours, $%v", rep.ReplicaHours, rep.CostUSD)
	}
	if len(rep.Windows) == 0 {
		t.Error("no control windows recorded")
	}
	if len(rep.Usage) != 1 || rep.Usage[0].Name != "tdx" {
		t.Fatalf("usage = %+v", rep.Usage)
	}
	if rep.Usage[0].Dispatched != 96 {
		t.Errorf("dispatched %d, want 96", rep.Usage[0].Dispatched)
	}
	// A 3 req/s bursty stream cannot be held by one TDX replica: the
	// scaler must have activated someone (paying the cold start).
	if rep.ColdStarts == 0 {
		t.Error("bursty load never triggered a scale-up")
	}
	if att := rep.SLOAttainment(); att <= 0 || att > 1 {
		t.Errorf("attainment %g outside (0, 1]", att)
	}
	if math.IsNaN(rep.USDPerMTok) {
		t.Error("USDPerMTok is NaN")
	}
	// The billed fleet never exceeds Max and never drops below Min.
	for _, w := range rep.Windows {
		if w.Active[0] < 1 || w.Active[0] > 4 {
			t.Fatalf("window at %.0fs has %d active replicas outside [1, 4]", w.StartSec, w.Active[0])
		}
	}
}

func TestRunDeterministicUnderSeed(t *testing.T) {
	cfg := Config{Serve: testServeConfig(t, 48), IntervalSec: 10}
	classes := []Class{{
		Name: "tdx", Backend: testBackend(tee.TDX()), HourlyUSD: 0.83,
		ColdStartSec: 12, Min: 1, Max: 3,
	}}
	a, err := Run(classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(classes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ReplicaHours != b.ReplicaHours || a.CostUSD != b.CostUSD ||
		a.SLOAttainment() != b.SLOAttainment() || a.ColdStarts != b.ColdStarts {
		t.Errorf("not deterministic: %+v vs %+v", a, b)
	}
}

func TestColdStartDegradesAttainment(t *testing.T) {
	mk := func(coldStart float64) *Report {
		cfg := Config{Serve: testServeConfig(t, 96), IntervalSec: 10, TargetUtil: 0.8}
		rep, err := Run([]Class{{
			Name: "tdx", Backend: testBackend(tee.TDX()), HourlyUSD: 0.83,
			ColdStartSec: coldStart, Min: 1, Max: 4,
		}}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	warm := mk(0)
	cold := mk(25)
	if warm.ColdStarts != 0 {
		t.Errorf("zero-cold-start run recorded %d cold starts", warm.ColdStarts)
	}
	if cold.SLOAttainment() > warm.SLOAttainment() {
		t.Errorf("cold start improved attainment: %.3f cold vs %.3f warm",
			cold.SLOAttainment(), warm.SLOAttainment())
	}
}

func TestHeterogeneousDispatchPolicies(t *testing.T) {
	classes := func() []Class {
		return []Class{
			{Name: "tdx", Backend: testBackend(tee.TDX()), HourlyUSD: 0.83, Min: 2, Max: 2},
			{Name: "cgpu", Backend: gpuBackend(tee.CGPU()), HourlyUSD: 6.20, Min: 1, Max: 1},
		}
	}
	run := func(d Dispatch) *Report {
		cfg := Config{Serve: testServeConfig(t, 96), Dispatch: d, IntervalSec: 10}
		rep, err := Run(classes(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	uni := run(Uniform)
	ca := run(CostAware)
	if uni.Usage[1].Dispatched == 0 || ca.Usage[1].Dispatched == 0 {
		t.Fatalf("cGPU class starved: uniform %d, cost-aware %d",
			uni.Usage[1].Dispatched, ca.Usage[1].Dispatched)
	}
	// Cost-aware dispatch weighs load by capacity: the fast cGPU replica
	// must receive a larger traffic share than blind least-outstanding
	// gives it.
	if ca.Usage[1].Dispatched <= uni.Usage[1].Dispatched {
		t.Errorf("cost-aware routed %d to cGPU, uniform %d — capacity weighting had no effect",
			ca.Usage[1].Dispatched, uni.Usage[1].Dispatched)
	}
}

func TestRunValidation(t *testing.T) {
	scfg := testServeConfig(t, 8)
	if _, err := Run(nil, Config{Serve: scfg}); err == nil {
		t.Error("empty class list accepted")
	}
	bad := []Class{{Name: "x", Backend: testBackend(tee.TDX()), HourlyUSD: 0, Max: 1}}
	if _, err := Run(bad, Config{Serve: scfg}); err == nil {
		t.Error("zero hourly price accepted")
	}
	bad[0].HourlyUSD = 1
	bad[0].Max = 0
	if _, err := Run(bad, Config{Serve: scfg}); err == nil {
		t.Error("zero Max accepted")
	}
	bad[0].Max = 1
	bad[0].ColdStartSec = -1
	if _, err := Run(bad, Config{Serve: scfg}); err == nil {
		t.Error("negative cold start accepted")
	}
	if _, err := ParseDispatch("nope"); err == nil {
		t.Error("unknown dispatch accepted")
	}
}

// sgxPlatform builds the default Gramine-SGX platform.
func sgxPlatform() (tee.Platform, error) {
	return tee.SGX(gramine.DefaultManifest("/models/llama2.bin", 192<<30, 64))
}

// TestRunParallelProbesMatchSerial: probing class capacities on a worker
// pool must produce the identical report a serial run does — probes are
// independent simulations assigned by class index.
func TestRunParallelProbesMatchSerial(t *testing.T) {
	classes := []Class{
		{Name: "tdx", Backend: testBackend(tee.TDX()), HourlyUSD: 0.83, ColdStartSec: 12, Min: 1, Max: 3},
		{Name: "bm", Backend: testBackend(tee.Baremetal()), HourlyUSD: 1.1, Min: 0, Max: 2},
	}
	serial, err := Run(classes, Config{Serve: testServeConfig(t, 48), IntervalSec: 10, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(classes, Config{Serve: testServeConfig(t, 48), IntervalSec: 10, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel-probed report differs from serial:\nserial  %+v\nparallel %+v",
			serial.Aggregate, parallel.Aggregate)
	}
}

// TestDemandAlphaDefaultBitIdentical: DemandAlpha 0 (default) and an
// explicit 1 are the pure reactive estimator — the whole report must be
// bit-identical to a run that never heard of smoothing.
func TestDemandAlphaDefaultBitIdentical(t *testing.T) {
	classes := []Class{{
		Name: "tdx", Backend: testBackend(tee.TDX()), HourlyUSD: 0.83,
		ColdStartSec: 12, Min: 1, Max: 3,
	}}
	base, err := Run(classes, Config{Serve: testServeConfig(t, 48), IntervalSec: 10})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(classes, Config{Serve: testServeConfig(t, 48), IntervalSec: 10, DemandAlpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, one) {
		t.Fatalf("DemandAlpha=1 changed the report:\ndefault %+v\nalpha=1 %+v", base.Aggregate, one.Aggregate)
	}
}

// TestDemandAlphaSmoothsDemand checks the estimator's recurrence against
// the recorded control windows: each window carries the arrivals and
// backlog the instantaneous estimate is built from, so the smoothed series
// must satisfy d_i = alpha*raw_i + (1-alpha)*d_{i-1} exactly — and differ
// from the raw series on a bursty stream.
func TestDemandAlphaSmoothsDemand(t *testing.T) {
	const alpha, interval = 0.3, 10.0
	classes := []Class{{
		Name: "tdx", Backend: testBackend(tee.TDX()), HourlyUSD: 0.83,
		ColdStartSec: 12, Min: 1, Max: 4,
	}}
	rep, err := Run(classes, Config{Serve: testServeConfig(t, 96), IntervalSec: interval, DemandAlpha: alpha})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Windows) < 2 {
		t.Fatalf("need several control windows, got %d", len(rep.Windows))
	}
	prev := 0.0
	smoothedDiffers := false
	for i, w := range rep.Windows {
		raw := float64(w.Arrivals)/interval + float64(w.Backlog)/interval
		want := raw
		if i > 0 {
			want = alpha*raw + (1-alpha)*prev
		}
		if w.DemandReqPerSec != want {
			t.Fatalf("window %d: demand %g, EWMA recurrence gives %g (raw %g)", i, w.DemandReqPerSec, want, raw)
		}
		if w.DemandReqPerSec != raw {
			smoothedDiffers = true
		}
		prev = w.DemandReqPerSec
	}
	if !smoothedDiffers {
		t.Fatal("smoothed demand never departed from the raw estimate on a bursty stream")
	}
}

func TestDemandAlphaValidation(t *testing.T) {
	classes := []Class{{Name: "tdx", Backend: testBackend(tee.TDX()), HourlyUSD: 0.83, Max: 2}}
	for _, alpha := range []float64{-0.5, 1.5} {
		if _, err := Run(classes, Config{Serve: testServeConfig(t, 8), DemandAlpha: alpha}); err == nil {
			t.Errorf("alpha %g accepted", alpha)
		}
	}
}

// TestAutoscaleObserver: the serve-layer observer threads through the
// autoscaler's replicas — events carry per-slot replica labels and the
// merged aggregate is reconstructed exactly by the recorded stream.
func TestAutoscaleObserver(t *testing.T) {
	rec := obs.NewRecorder()
	scfg := testServeConfig(t, 96)
	scfg.Observer = rec
	classes := []Class{{
		Name: "tdx", Backend: testBackend(tee.TDX()), HourlyUSD: 0.83,
		ColdStartSec: 1, Min: 2, Max: 4,
	}}
	rep, err := Run(classes, Config{Serve: scfg, IntervalSec: 10, TargetUtil: 0.6, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if bad := obs.ReconcileReport(rec.Events(), rep.Aggregate); len(bad) != 0 {
		t.Fatalf("autoscale event stream does not reconstruct the aggregate:\n%s", strings.Join(bad, "\n"))
	}
	replicas := map[int]bool{}
	for _, ev := range rec.Events() {
		replicas[ev.Replica] = true
	}
	if len(replicas) < 2 {
		t.Fatalf("bursty scale-up should involve several slots, events saw %d", len(replicas))
	}
}

// TestAutoscalePhaseConservation: latency attribution holds across the
// autoscaler's dynamic replica set — every completed request's five phases
// sum to its latency exactly even when slots come and go, and the refolded
// stream reconciles against the merged aggregate.
func TestAutoscalePhaseConservation(t *testing.T) {
	rec := obs.NewRecorder()
	a, err := obs.NewAttribution(0, false)
	if err != nil {
		t.Fatal(err)
	}
	scfg := testServeConfig(t, 96)
	scfg.Observer = obs.Multi(rec, a)
	classes := []Class{{
		Name: "tdx", Backend: testBackend(tee.TDX()), HourlyUSD: 0.83,
		ColdStartSec: 1, Min: 2, Max: 4,
	}}
	rep, err := Run(classes, Config{Serve: scfg, IntervalSec: 10, TargetUtil: 0.6, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	arep := a.Report("autoscaled")
	if len(arep.Violations) != 0 {
		t.Fatalf("autoscaled conservation violations:\n%s", strings.Join(arep.Violations, "\n"))
	}
	if int(arep.Completed) != rep.Aggregate.Completed {
		t.Fatalf("attribution finalized %d requests, aggregate completed %d", arep.Completed, rep.Aggregate.Completed)
	}
	if bad := obs.ReconcilePhases(rec.Events(), rep.Aggregate); len(bad) != 0 {
		t.Fatalf("autoscaled phase reconciliation failed:\n%s", strings.Join(bad, "\n"))
	}
}
