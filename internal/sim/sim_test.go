package sim

import (
	"math"
	"math/rand"
	"testing"

	"cllm/internal/stats"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func(*Engine) { order = append(order, 3) })
	e.Schedule(1, func(*Engine) { order = append(order, 1) })
	e.Schedule(2, func(*Engine) { order = append(order, 2) })
	if err := e.Run(-1); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now = %g, want 3", float64(e.Now()))
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(1, func(*Engine) { order = append(order, i) })
	}
	if err := e.Run(-1); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineChainedEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func(*Engine)
	tick = func(en *Engine) {
		count++
		if count < 10 {
			en.Schedule(0.5, tick)
		}
	}
	e.Schedule(0, tick)
	if err := e.Run(-1); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
	if math.Abs(float64(e.Now())-4.5) > 1e-12 {
		t.Errorf("Now = %g, want 4.5", float64(e.Now()))
	}
}

func TestEngineStepLimit(t *testing.T) {
	e := NewEngine()
	var tick func(*Engine)
	tick = func(en *Engine) { en.Schedule(1, tick) } // infinite chain
	e.Schedule(0, tick)
	if err := e.Run(100); err == nil {
		t.Error("unbounded run with step limit succeeded")
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(5, func(en *Engine) {
		en.Schedule(-3, func(*Engine) { ran = true })
	})
	if err := e.Run(-1); err != nil {
		t.Fatal(err)
	}
	if !ran || e.Now() != 5 {
		t.Errorf("negative delay handling broken: ran=%v now=%g", ran, float64(e.Now()))
	}
}

func TestNoiseDeterminism(t *testing.T) {
	a := NewNoise(7, 0.01, 0.02, 0.005, 5)
	b := NewNoise(7, 0.01, 0.02, 0.005, 5)
	for i := 0; i < 100; i++ {
		if a.Sample(1, true) != b.Sample(1, true) {
			t.Fatal("noise not deterministic for equal seeds")
		}
	}
}

func TestNoiseUnbiasedAndPositive(t *testing.T) {
	n := NewNoise(3, 0.02, 0, 0, 0)
	var xs []float64
	for i := 0; i < 20000; i++ {
		v := n.Sample(10, false)
		if v <= 0 {
			t.Fatal("noise produced non-positive sample")
		}
		xs = append(xs, v)
	}
	m := stats.Mean(xs)
	if math.Abs(m-10)/10 > 0.01 {
		t.Errorf("noise mean = %g, want ~10", m)
	}
}

func TestNoiseTEEOutlierTail(t *testing.T) {
	n := NewNoise(11, 0.005, 0.01, 0.0064, 4)
	var teeSamples []float64
	for i := 0; i < 50000; i++ {
		teeSamples = append(teeSamples, n.Sample(1, true))
	}
	_, removed := stats.FilterZScore(teeSamples, 3)
	frac := float64(removed) / float64(len(teeSamples))
	// Paper reports ≈0.64% of samples at Z>3; accept a generous band.
	if frac < 0.001 || frac > 0.03 {
		t.Errorf("outlier fraction = %.4f, want ~0.0064", frac)
	}
	// Baseline (non-TEE) samples should have (almost) no such tail.
	n2 := NewNoise(12, 0.005, 0.01, 0.0064, 4)
	var base []float64
	for i := 0; i < 50000; i++ {
		base = append(base, n2.Sample(1, false))
	}
	_, removedBase := stats.FilterZScore(base, 3)
	if removedBase > removed {
		t.Errorf("baseline has more outliers (%d) than TEE (%d)", removedBase, removed)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []int
	for i := 1; i <= 5; i++ {
		i := i
		e.Schedule(Time(i), func(*Engine) { fired = append(fired, i) })
	}
	remaining, err := e.RunUntil(3, -1)
	if err != nil {
		t.Fatal(err)
	}
	if remaining != 2 || e.Pending() != 2 {
		t.Fatalf("remaining = %d (pending %d), want 2", remaining, e.Pending())
	}
	if len(fired) != 3 || fired[2] != 3 {
		t.Fatalf("fired = %v, want [1 2 3]", fired)
	}
	if e.Now() != 3 {
		t.Errorf("Now = %g, want horizon 3", float64(e.Now()))
	}
	// The queued tail survives and runs on a later call.
	remaining, err = e.RunUntil(10, -1)
	if err != nil {
		t.Fatal(err)
	}
	if remaining != 0 || len(fired) != 5 {
		t.Fatalf("after second pass: remaining %d, fired %v", remaining, fired)
	}
	if e.Now() != 5 {
		t.Errorf("Now = %g, want last event time 5", float64(e.Now()))
	}
}

func TestEngineRunUntilStepLimit(t *testing.T) {
	e := NewEngine()
	var reschedule func(*Engine)
	reschedule = func(*Engine) { e.Schedule(1, reschedule) }
	e.Schedule(1, reschedule)
	if _, err := e.RunUntil(1e18, 100); err == nil {
		t.Fatal("runaway event chain not stopped by step limit")
	}
}

func TestEngineRunUntilNeverRewinds(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func(*Engine) {})
	if err := e.Run(-1); err != nil {
		t.Fatal(err)
	}
	e.Schedule(10, func(*Engine) {}) // fires at t=15
	if _, err := e.RunUntil(2, -1); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 5 {
		t.Errorf("clock rewound to %g; must stay at 5", float64(e.Now()))
	}
}

// TestEngineHeapRandomizedOrdering stresses the 4-ary value heap: many
// events with colliding times, scheduled both up front and from inside
// callbacks, must fire in strict (time, scheduling-sequence) order.
func TestEngineHeapRandomizedOrdering(t *testing.T) {
	eng := NewEngine()
	rng := rand.New(rand.NewSource(42))
	type fired struct {
		at  Time
		idx int
	}
	var got []fired
	idx := 0
	var schedule func(depth int)
	schedule = func(depth int) {
		n := 40
		if depth > 0 {
			n = 4
		}
		for i := 0; i < n; i++ {
			// Coarse-grained delays force plenty of equal-time ties.
			delay := Time(rng.Intn(8)) / 4
			id := idx
			idx++
			eng.Schedule(delay, func(e *Engine) {
				got = append(got, fired{at: e.Now(), idx: id})
				if depth < 2 && rng.Intn(3) == 0 {
					schedule(depth + 1)
				}
			})
		}
	}
	schedule(0)
	if err := eng.Run(-1); err != nil {
		t.Fatal(err)
	}
	if len(got) < 40 {
		t.Fatalf("only %d events fired", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].at < got[i-1].at {
			t.Fatalf("time went backwards at %d: %v after %v", i, got[i].at, got[i-1].at)
		}
	}
	// Among events scheduled before the run started (same scheduling pass,
	// ascending seq), equal times must fire in scheduling order.
	seen := map[Time]int{}
	for _, f := range got {
		if f.idx >= 40 {
			continue // scheduled mid-run at a later Now; ordering vs batch 0 differs
		}
		if prev, ok := seen[f.at]; ok && f.idx < prev {
			t.Fatalf("tie at t=%v fired out of scheduling order: %d before %d", f.at, prev, f.idx)
		}
		seen[f.at] = f.idx
	}
}

func TestEngineScheduleAt(t *testing.T) {
	eng := NewEngine()
	var fired []Time
	record := func(e *Engine) { fired = append(fired, e.Now()) }
	// An absolute time survives clock advancement bit-exactly: 0.1+0.2
	// style drift from now+(at-now) arithmetic must not occur.
	const target = Time(0.30000000000000004) // 0.1 + 0.2 in float64
	eng.Schedule(0.05, func(e *Engine) {
		e.ScheduleAt(target, record)
		e.ScheduleAt(0.01, record) // in the past: clamps to now (0.05)
	})
	if err := eng.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if fired[0] != 0.05 {
		t.Errorf("past-time event fired at %v, want clamped 0.05", fired[0])
	}
	if fired[1] != target {
		t.Errorf("event fired at %v, want exactly %v", fired[1], target)
	}
}
