// Package sim provides the discrete-event simulation core shared by the
// performance engine and the RAG pipeline: a virtual clock with an event
// queue, deterministic RNG streams, and the noise/outlier models that give
// TEE runs their characteristic variability (the paper's memory-encryption
// jitter and Z>3 outliers).
package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// Time is simulated time in seconds.
type Time float64

// Event is a scheduled callback.
type Event struct {
	At  Time
	Fn  func(*Engine)
	seq int64 // tie-breaker for deterministic ordering
}

// before is the engine's total event order: time, then scheduling sequence.
// seq is unique per engine, so the order is strict — pop order is the same
// whatever heap shape holds the events.
func (ev Event) before(other Event) bool {
	if ev.At != other.At {
		return ev.At < other.At
	}
	return ev.seq < other.seq
}

// Engine is a discrete-event simulator. The pending events live in a typed
// 4-ary heap stored by value: scheduling an event is one slice append (no
// per-event box through an interface{} heap), and the shallow 4-ary tree
// trades slightly more comparisons per level for ~half the swap depth —
// both of which matter to the serving scheduler, which pushes and pops one
// event per iteration for millions of iterations in a sweep.
type Engine struct {
	now    Time
	events []Event // 4-ary min-heap ordered by Event.before
	nextID int64
	// Steps counts processed events, a cheap progress/liveness metric.
	Steps int64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Schedule queues fn to run after delay. Negative delays are clamped to 0.
func (e *Engine) Schedule(delay Time, fn func(*Engine)) {
	if delay < 0 {
		delay = 0
	}
	e.nextID++
	e.push(Event{At: e.now + delay, Fn: fn, seq: e.nextID})
}

// ScheduleAt queues fn at the absolute instant at, clamped to the current
// time when it lies in the past. Epoch-sharded runs use it to place
// arrivals scheduled mid-run at their exact recorded times: Schedule would
// compute now + (at − now), which is not bit-identical to at once the
// clock has advanced, and bit-stable event times are what keeps sharded
// runs byte-identical to monolithic ones.
func (e *Engine) ScheduleAt(at Time, fn func(*Engine)) {
	if at < e.now {
		at = e.now
	}
	e.nextID++
	e.push(Event{At: at, Fn: fn, seq: e.nextID})
}

// push appends the event and sifts it up the 4-ary heap.
func (e *Engine) push(ev Event) {
	e.events = append(e.events, ev)
	i := len(e.events) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !e.events[i].before(e.events[parent]) {
			break
		}
		e.events[i], e.events[parent] = e.events[parent], e.events[i]
		i = parent
	}
}

// pop removes and returns the earliest event, sifting the displaced tail
// element down the 4-ary heap.
func (e *Engine) pop() Event {
	top := e.events[0]
	n := len(e.events) - 1
	e.events[0] = e.events[n]
	e.events[n] = Event{} // drop the Fn reference so the closure can be collected
	e.events = e.events[:n]
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if e.events[c].before(e.events[min]) {
				min = c
			}
		}
		if !e.events[min].before(e.events[i]) {
			break
		}
		e.events[i], e.events[min] = e.events[min], e.events[i]
		i = min
	}
	return top
}

// Run processes events until the queue is empty or the step limit is hit.
func (e *Engine) Run(maxSteps int64) error {
	_, err := e.RunUntil(Time(math.Inf(1)), maxSteps)
	return err
}

// RunUntil processes events whose time does not exceed horizon, subject to
// the same step limit as Run. Events scheduled beyond the horizon stay
// queued; the clock advances to the horizon if any work was pending past it.
// It returns the number of events left unprocessed. Open-loop serving
// simulations use this to bound runaway backlogs deterministically.
func (e *Engine) RunUntil(horizon Time, maxSteps int64) (remaining int, err error) {
	for len(e.events) > 0 {
		if e.events[0].At > horizon {
			if horizon > e.now { // never rewind the clock
				e.now = horizon
			}
			return len(e.events), nil
		}
		if maxSteps >= 0 && e.Steps >= maxSteps {
			return len(e.events), fmt.Errorf("sim: step limit %d reached at t=%g", maxSteps, float64(e.now))
		}
		ev := e.pop()
		e.now = ev.At
		e.Steps++
		ev.Fn(e)
	}
	return 0, nil
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Noise generates the latency jitter observed on real systems. TEE runs get
// extra multiplicative jitter plus rare heavy-tail outliers caused by
// memory-encryption engine contention, as the paper reports (§III-D:
// ≈0.64% of samples beyond Z>3 under SGX/TDX).
type Noise struct {
	rng *rand.Rand
	// Base is the relative stddev of baseline jitter (e.g. 0.01 = 1%).
	Base float64
	// TEEJitter is additional relative stddev under a TEE.
	TEEJitter float64
	// OutlierProb is the probability of a heavy-tail outlier sample.
	OutlierProb float64
	// OutlierScale multiplies the sample when an outlier fires.
	OutlierScale float64
}

// NewNoise returns a Noise source seeded deterministically.
func NewNoise(seed int64, base, teeJitter, outlierProb, outlierScale float64) *Noise {
	return &Noise{
		rng:          rand.New(rand.NewSource(seed)),
		Base:         base,
		TEEJitter:    teeJitter,
		OutlierProb:  outlierProb,
		OutlierScale: outlierScale,
	}
}

// Sample perturbs the value v. When tee is true the TEE jitter and outlier
// tail are applied in addition to baseline jitter.
func (n *Noise) Sample(v float64, tee bool) float64 {
	sigma := n.Base
	if tee {
		sigma = math.Sqrt(n.Base*n.Base + n.TEEJitter*n.TEEJitter)
	}
	// Lognormal multiplicative jitter keeps samples positive.
	f := math.Exp(n.rng.NormFloat64()*sigma - sigma*sigma/2)
	out := v * f
	if tee && n.rng.Float64() < n.OutlierProb {
		out *= n.OutlierScale * (1 + n.rng.Float64())
	}
	return out
}

// RNG exposes the underlying generator for callers needing raw randomness.
func (n *Noise) RNG() *rand.Rand { return n.rng }
