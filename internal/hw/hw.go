// Package hw describes the hardware the paper evaluates: two dual-socket
// Emerald Rapids Xeon systems (EMR1: Gold 6530, EMR2: Platinum 8580) and an
// NVIDIA H100 NVL GPU. Each description carries the roofline parameters
// (compute rates per datatype with and without AMX, memory bandwidths, TLB
// reach, interconnect characteristics) that the performance engine combines
// with TEE mechanisms to produce latencies.
//
// All calibration constants live in calibration.go with the paper evidence
// they were fitted against.
package hw

import (
	"fmt"

	"cllm/internal/dtype"
)

// CPU describes one CPU system (possibly multi-socket).
type CPU struct {
	// Name identifies the system, e.g. "EMR1".
	Name string
	// Sockets is the number of CPU packages.
	Sockets int
	// CoresPerSocket is the physical core count per package.
	CoresPerSocket int
	// FreqHz is the sustained all-core frequency.
	FreqHz float64
	// HasAMX reports Advanced Matrix Extension tile units.
	HasAMX bool
	// MemBWPerSocket is sustained DRAM bandwidth per socket (bytes/s).
	MemBWPerSocket float64
	// UPIBandwidth is sustained cross-socket bandwidth (bytes/s, per direction).
	UPIBandwidth float64
	// LLCBytes is last-level cache per socket.
	LLCBytes int64
	// DTLBEntries is the (simplified, unified) data-TLB entry count used by
	// the page-reach model.
	DTLBEntries int
	// MemPerSocketBytes is installed DRAM per socket.
	MemPerSocketBytes int64
	// ListPriceUSD is the per-CPU list price (the paper quotes $2130 for the
	// Gold 6530 and $10710 for the Platinum 8580).
	ListPriceUSD float64
}

// FlopsPerCycle returns the per-core FLOPs/cycle for a datatype, with or
// without AMX. The no-AMX int8 path models IPEX's missing AVX int8 kernels
// (the paper measures ~95% throughput loss there, Insight 8).
func (c CPU) FlopsPerCycle(kind dtype.Kind, amx bool) float64 {
	if amx && c.HasAMX {
		switch kind {
		case dtype.BF16:
			return AMXBF16FlopsPerCycle
		case dtype.I8:
			return AMXInt8FlopsPerCycle
		default:
			return AVX512F32FlopsPerCycle // AMX has no f32 tiles
		}
	}
	switch kind {
	case dtype.BF16:
		return AVX512BF16FlopsPerCycle
	case dtype.I8:
		return NoAMXInt8FlopsPerCycle
	default:
		return AVX512F32FlopsPerCycle
	}
}

// SocketFlops returns sustained FLOP/s for `cores` cores of one socket.
func (c CPU) SocketFlops(kind dtype.Kind, amx bool, cores int) float64 {
	if cores <= 0 || cores > c.CoresPerSocket {
		cores = c.CoresPerSocket
	}
	return float64(cores) * c.FreqHz * c.FlopsPerCycle(kind, amx) * ComputeEfficiency
}

// TotalMemBW returns aggregate DRAM bandwidth over the given socket count.
func (c CPU) TotalMemBW(sockets int) float64 {
	if sockets <= 0 || sockets > c.Sockets {
		sockets = c.Sockets
	}
	return float64(sockets) * c.MemBWPerSocket
}

// GPU describes an accelerator.
type GPU struct {
	// Name identifies the device, e.g. "H100-NVL".
	Name string
	// HBMBytes is device memory capacity.
	HBMBytes int64
	// HBMBandwidth is sustained device-memory bandwidth (bytes/s).
	HBMBandwidth float64
	// TensorFlops is sustained dense tensor-core FLOP/s for bf16.
	TensorFlops float64
	// PCIeBandwidth is host link bandwidth (bytes/s).
	PCIeBandwidth float64
	// KernelLaunchSec is the base cost of one kernel launch.
	KernelLaunchSec float64
	// KernelsPerBlock approximates fused kernels per decoder block.
	KernelsPerBlock int
	// ListPriceUSD is the device list price (~$30k for H100 NVL).
	ListPriceUSD float64
}

// EMR1 returns the paper's first testbed: dual Xeon Gold 6530
// (2×32 cores, 16×32 GiB DDR5-4800 per system).
func EMR1() CPU {
	return CPU{
		Name:              "EMR1",
		Sockets:           2,
		CoresPerSocket:    32,
		FreqHz:            2.1e9,
		HasAMX:            true,
		MemBWPerSocket:    EMRMemBWPerSocket,
		UPIBandwidth:      EMRUPIBandwidth,
		LLCBytes:          160 << 20,
		DTLBEntries:       EMRDTLBEntries,
		MemPerSocketBytes: 256 << 30,
		ListPriceUSD:      2130,
	}
}

// EMR2 returns the paper's second testbed: dual Xeon Platinum 8580
// (2×60 cores, 16×32 GiB DDR5-4800 per system).
func EMR2() CPU {
	return CPU{
		Name:              "EMR2",
		Sockets:           2,
		CoresPerSocket:    60,
		FreqHz:            2.0e9,
		HasAMX:            true,
		MemBWPerSocket:    EMRMemBWPerSocket,
		UPIBandwidth:      EMRUPIBandwidth,
		LLCBytes:          300 << 20,
		DTLBEntries:       EMRDTLBEntries,
		MemPerSocketBytes: 256 << 30,
		ListPriceUSD:      10710,
	}
}

// SPR returns a Sapphire Rapids alternative system (§V-D.2): the previous
// Xeon generation rents at roughly half the price and performs up to ~40%
// worse on this memory-bound workload — an even cheaper seat for
// low-intensity confidential inference.
func SPR() CPU {
	return CPU{
		Name:              "SPR",
		Sockets:           2,
		CoresPerSocket:    56,
		FreqHz:            1.9e9,
		HasAMX:            true, // AMX debuted on Sapphire Rapids
		MemBWPerSocket:    SPRMemBWPerSocket,
		UPIBandwidth:      80e9,
		LLCBytes:          105 << 20,
		DTLBEntries:       EMRDTLBEntries,
		MemPerSocketBytes: 256 << 30,
		ListPriceUSD:      5340, // Platinum 8480+ class
	}
}

// H100NVL returns the paper's GPU testbed: H100 NVL 94 GB rented from Azure
// (NCCads_H100_v5 confidential / NCads_H100_v5 non-confidential).
func H100NVL() GPU {
	return GPU{
		Name:            "H100-NVL",
		HBMBytes:        94 << 30,
		HBMBandwidth:    H100HBMBandwidth,
		TensorFlops:     H100TensorFlops,
		PCIeBandwidth:   H100PCIeBandwidth,
		KernelLaunchSec: H100KernelLaunchSec,
		KernelsPerBlock: 8,
		ListPriceUSD:    30000,
	}
}

// Lookup returns a CPU system by name.
func Lookup(name string) (CPU, error) {
	switch name {
	case "EMR1", "emr1":
		return EMR1(), nil
	case "EMR2", "emr2":
		return EMR2(), nil
	case "SPR", "spr":
		return SPR(), nil
	}
	return CPU{}, fmt.Errorf("hw: unknown CPU system %q", name)
}
