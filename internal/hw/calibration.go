package hw

// Calibration constants for the mechanistic performance model.
//
// These are the ONLY tuned numbers in the repository. Each is a physical
// rate or cost with a documented source: either a published hardware
// parameter or a value fitted so that the *mechanism* reproduces an
// overhead band the paper reports. The experiments never consume paper
// percentages directly — they consume these rates, and the percentages
// emerge from the roofline/TLB/NUMA/crypto mechanics.
const (
	// --- CPU compute rates (per core, per cycle) ---

	// AMXBF16FlopsPerCycle is the sustained bf16 FLOPs/cycle/core with AMX
	// tiles (peak 2048 on a 16x16x32 TMUL; ~50% sustained in GEMMs).
	AMXBF16FlopsPerCycle = 1024
	// AMXInt8FlopsPerCycle doubles bf16 (8-bit tiles are twice as dense).
	AMXInt8FlopsPerCycle = 2048
	// AVX512F32FlopsPerCycle: two 512-bit FMA pipes × 16 lanes × 2.
	AVX512F32FlopsPerCycle = 64
	// AVX512BF16FlopsPerCycle: VDPBF16PS doubles f32 throughput.
	AVX512BF16FlopsPerCycle = 128
	// NoAMXInt8FlopsPerCycle models IPEX lacking AVX int8 kernels: the
	// fallback dequantizes to f32 scalar-ishly. Fitted to the paper's
	// 86–96% int8 no-AMX throughput loss (Fig 8).
	NoAMXInt8FlopsPerCycle = 12
	// ComputeEfficiency derates peak to sustained GEMM efficiency.
	ComputeEfficiency = 0.45

	// --- CPU memory system ---

	// EMRMemBWPerSocket is sustained socket DRAM bandwidth: 8 channels of
	// DDR5-4800 (307 GB/s peak) at ~80% sustained.
	EMRMemBWPerSocket = 250e9
	// SPRMemBWPerSocket: Sapphire Rapids' 8 channels of DDR5-4400 at a
	// lower sustained fraction (older memory controller).
	SPRMemBWPerSocket = 185e9
	// EMRUPIBandwidth is sustained cross-socket bandwidth per direction
	// (3×UPI 2.0 links at 16 GT/s, ~75% sustained).
	EMRUPIBandwidth = 90e9
	// EMRDTLBEntries approximates the unified second-level TLB.
	EMRDTLBEntries = 2048
	// TLBMissPenalty4K/2M are the fractional memory-time penalties when the
	// working set fully escapes TLB reach at that page size; scaled by the
	// escape fraction and the platform's page-walk amplification. Fitted to
	// the paper's VM TH vs VM FH gap (3.19–5.20%, Insight 7).
	TLBMissPenalty4K = 0.14
	TLBMissPenalty2M = 0.032
	TLBMissPenalty1G = 0.004

	// --- TEE mechanism costs (CPU) ---

	// MemEncryptBWFactor is the DRAM bandwidth retained under the in-line
	// memory encryption engine (TDX/SGX TME-MK). Fitted to the TDX-over-VM
	// gap of 3.0–7.0% (Fig 4) net of page-walk effects.
	MemEncryptBWFactor = 0.975
	// MemEncryptJitter is the extra relative latency stddev memory
	// encryption adds (drives the paper's Z>3 outliers, §III-D).
	MemEncryptJitter = 0.012
	// VMComputeTax is the virtualization compute derating of a KVM guest
	// (scheduling, interrupt virtualization). Paper: VM costs 1.8–5.4%.
	VMComputeTax = 0.045
	// VMPageWalkAmplification: EPT nested walks roughly double walk cost.
	VMPageWalkAmplification = 1.6
	// TDXPageWalkAmplification: secure-EPT walks with integrity checks.
	TDXPageWalkAmplification = 1.9
	// SGXExitCostSec is one synchronous enclave exit (EEXIT/EENTER +
	// cache/TLB flush), ~8 µs on Gramine.
	SGXExitCostSec = 8e-6
	// SGXExitsPerToken is the Gramine-emulated-syscall exit rate per
	// generated token in a steady-state IPEX loop (futexes, clock reads).
	SGXExitsPerToken = 6
	// SGXEPCBWFactor is bandwidth retained on the EPC integrity-protected
	// path. SGX total (4.8–6.2%) sits between VM and TDX per Fig 4.
	SGXEPCBWFactor = 0.955
	// UPIEncryptBWFactor is cross-socket link bandwidth retained when the
	// UPI crypto engine is active (multi-socket SGX/TDX, §IV-A.1).
	UPIEncryptBWFactor = 0.82
	// SNCMisplacementRemoteFraction is the remote-access fraction when
	// sub-NUMA clustering confuses TEE memory placement (paper: overhead
	// jumps ~5% → ~42%).
	SNCMisplacementRemoteFraction = 0.20

	// --- Extension platforms (projections, §V-A / §V-D discussions) ---

	// SEVMemEncryptBWFactor: AMD SME-class inline encryption, slightly
	// costlier per line than Intel TME-MK in published microbenchmarks.
	SEVMemEncryptBWFactor = 0.970
	// SEVPageWalkAmplification: nested walks with RMP checks, a bit cheaper
	// than TDX's secure-EPT verification.
	SEVPageWalkAmplification = 1.8
	// B100HBMEncryptBWFactor: projected HBM bandwidth retained once
	// Blackwell encrypts device memory (scaled from the CPU engines').
	B100HBMEncryptBWFactor = 0.965
	// B100PCIeBWFactor: TDISP/PCIe-IDE link encryption replaces the H100's
	// software bounce buffer, retaining most of the link.
	B100PCIeBWFactor = 0.85

	// --- GPU ---

	// H100HBMBandwidth: 3.9 TB/s peak HBM3 on NVL; vLLM's decode path
	// sustains well under half of peak (paged-KV gather, sampling sync).
	H100HBMBandwidth = 1.5e12
	// H100TensorFlops: 989 TFLOPS dense bf16 peak, ~60% sustained in vLLM.
	H100TensorFlops = 600e12
	// H100PCIeBandwidth: PCIe Gen5 x16 sustained.
	H100PCIeBandwidth = 55e9
	// H100KernelLaunchSec is the base launch latency per kernel.
	H100KernelLaunchSec = 4e-6
	// CGPULaunchExtraSec is the added launch cost with confidential compute
	// (encrypted command buffers through the bounce buffer). Fitted to the
	// 4.4–7.9% cGPU overhead band of Fig 11.
	CGPULaunchExtraSec = 1.3e-6
	// CGPUPCIeBWFactor is PCIe goodput retained when transfers are
	// AES-GCM-protected through the bounce buffer (~3 GB/s of 40 GB/s for
	// large transfers per §V-D.4 — but small inference transfers pipeline
	// better; this factor applies to the per-step host traffic).
	CGPUPCIeBWFactor = 0.12
	// GPUStepOverheadSec is per-decode-step scheduler/runtime cost (vLLM).
	GPUStepOverheadSec = 180e-6
	// CGPUStepExtraSec is the fixed per-step confidential-compute cost
	// (bounce-buffer doorbells, encrypted synchronization) that keeps the
	// cGPU overhead floor near 4-5% at large batches (Fig 11).
	CGPUStepExtraSec = 450e-6

	// --- Framework (backend) efficiency factors, Fig 3 ---
	// Fraction of the roofline each CPU framework achieves; IPEX is the
	// reference the roofline efficiency constants above embody.

	EffIPEX     = 1.00
	EffVLLMCPU  = 0.66 // paper: vLLM ≈ 50% slower than IPEX
	EffHF       = 0.50 // paper: HF ≈ 100% slower
	EffLlamaCpp = 0.58 // mixed-precision llama.cpp sits between vLLM and HF

	// CPUPrefillEfficiency further derates CPU compute during the prompt
	// pass: prefill interleaves GEMMs with softmax/layout work that the AMX
	// pipeline cannot hide, so CPUs fall further behind GPUs as input length
	// grows — the mechanism behind Fig 13's cost collapse.
	CPUPrefillEfficiency = 0.42
	// CPUOpDispatchSec is the per-operator dispatch cost of the eager CPU
	// runtime (kernel selection, thread wake-up). It floors tiny ops like
	// layer norms, which is why their *relative* TEE overheads are the
	// largest in Fig 7 while contributing little absolute time.
	CPUOpDispatchSec = 8e-6
	// CPUPerSeqStepCost is the per-sequence per-step framework overhead of
	// the CPU serving stack (PyTorch/IPEX batching, sampling, cache
	// management); it is why CPU throughput saturates near batch 64-512
	// instead of scaling linearly (Fig 9).
	CPUPerSeqStepCost = 0.4e-3
	// GPUPerSeqStepCost is vLLM's per-sequence sampling/scheduling cost.
	GPUPerSeqStepCost = 20e-6

	// HostSwapBytesPerSec is the DRAM copy bandwidth a serving process can
	// devote to KV swap-to-host traffic while the inference loop keeps
	// running: a couple of copy threads streaming pinned buffers, well below
	// the socket's full STREAM rate (the model must keep decoding). CPU TEEs
	// scale it by their memory-encryption bandwidth factor (the same inline
	// engine that taxes every other DRAM access); GPUs cross PCIe instead
	// (see tee.Platform.SwapBWFactor).
	HostSwapBytesPerSec = 24e9

	// NICBytesPerSec is the sustained cross-replica interconnect bandwidth
	// a KV handoff transfer sees between two serving nodes: 200 GbE
	// datacenter Ethernet (25 GB/s raw) at ~88% achievable goodput after
	// framing and congestion control. Disaggregated prefill→decode serving
	// prices the inter-node leg of every handoff against it; the TEE-side
	// drain and ingest legs are priced separately by each endpoint's swap
	// bandwidth (perf.StepCoster.SwapTime).
	NICBytesPerSec = 22e9
	// NICHandoffSetupSec is the fixed per-transfer setup cost of a
	// cross-replica KV handoff: rendezvous and connection reuse plus the
	// TLS record layer bound to the attestation-derived session keys both
	// TEEs insist on before moving cache state.
	NICHandoffSetupSec = 50e-6

	// NoiseBase is the baseline relative latency jitter of a bare-metal run.
	NoiseBase = 0.008
	// OutlierProb/OutlierScale parameterize TEE heavy-tail samples.
	OutlierProb  = 0.0064
	OutlierScale = 3.5
)
