package hw

import (
	"testing"

	"cllm/internal/dtype"
)

func TestSystems(t *testing.T) {
	e1, e2 := EMR1(), EMR2()
	if e1.Sockets != 2 || e1.CoresPerSocket != 32 {
		t.Errorf("EMR1 = %+v", e1)
	}
	if e2.Sockets != 2 || e2.CoresPerSocket != 60 {
		t.Errorf("EMR2 = %+v", e2)
	}
	// The paper quotes $2130 for the Gold 6530 and $10710 for the 8580.
	if e1.ListPriceUSD != 2130 || e2.ListPriceUSD != 10710 {
		t.Error("CPU list prices do not match the paper")
	}
	if !e1.HasAMX || !e2.HasAMX {
		t.Error("Emerald Rapids must have AMX")
	}
}

func TestLookup(t *testing.T) {
	for _, n := range []string{"EMR1", "emr1", "EMR2", "emr2", "SPR", "spr"} {
		if _, err := Lookup(n); err != nil {
			t.Errorf("Lookup(%q): %v", n, err)
		}
	}
	if _, err := Lookup("GNR"); err == nil {
		t.Error("unknown system resolved")
	}
}

func TestFlopsPerCycle(t *testing.T) {
	c := EMR1()
	// AMX: int8 doubles bf16; both far above AVX512.
	if c.FlopsPerCycle(dtype.I8, true) != 2*c.FlopsPerCycle(dtype.BF16, true) {
		t.Error("AMX int8 must double bf16")
	}
	if c.FlopsPerCycle(dtype.BF16, true) <= c.FlopsPerCycle(dtype.BF16, false) {
		t.Error("AMX bf16 must beat AVX512 bf16")
	}
	// f32 has no AMX tiles.
	if c.FlopsPerCycle(dtype.F32, true) != c.FlopsPerCycle(dtype.F32, false) {
		t.Error("f32 should not change with AMX")
	}
	// No-AMX int8 is the broken IPEX path: slower than AVX f32.
	if c.FlopsPerCycle(dtype.I8, false) >= c.FlopsPerCycle(dtype.F32, false) {
		t.Error("no-AMX int8 should be the slowest path")
	}
	// A CPU without AMX never uses tile rates.
	noAMX := c
	noAMX.HasAMX = false
	if noAMX.FlopsPerCycle(dtype.BF16, true) != noAMX.FlopsPerCycle(dtype.BF16, false) {
		t.Error("HasAMX=false must ignore the amx flag")
	}
}

func TestSocketFlopsClamping(t *testing.T) {
	c := EMR2()
	full := c.SocketFlops(dtype.BF16, true, 60)
	if c.SocketFlops(dtype.BF16, true, 0) != full {
		t.Error("cores=0 should mean all cores")
	}
	if c.SocketFlops(dtype.BF16, true, 100) != full {
		t.Error("cores beyond capacity should clamp")
	}
	if half := c.SocketFlops(dtype.BF16, true, 30); half*2 != full {
		t.Error("socket flops not linear in cores")
	}
}

func TestTotalMemBW(t *testing.T) {
	c := EMR1()
	if c.TotalMemBW(2) != 2*c.MemBWPerSocket {
		t.Error("two-socket bandwidth wrong")
	}
	if c.TotalMemBW(0) != 2*c.MemBWPerSocket {
		t.Error("sockets=0 should mean all sockets")
	}
	if c.TotalMemBW(1) != c.MemBWPerSocket {
		t.Error("one-socket bandwidth wrong")
	}
}

func TestSPRSlower(t *testing.T) {
	spr, emr := SPR(), EMR2()
	if spr.MemBWPerSocket >= emr.MemBWPerSocket {
		t.Error("SPR memory bandwidth should trail EMR")
	}
	if spr.FreqHz >= emr.FreqHz {
		t.Error("SPR frequency should trail EMR")
	}
	if !spr.HasAMX {
		t.Error("Sapphire Rapids introduced AMX; must have it")
	}
}

func TestH100(t *testing.T) {
	g := H100NVL()
	if g.HBMBytes != 94<<30 {
		t.Errorf("H100 NVL HBM = %d, want 94 GiB", g.HBMBytes)
	}
	if g.TensorFlops <= 0 || g.HBMBandwidth <= 0 || g.KernelsPerBlock <= 0 {
		t.Errorf("H100 parameters incomplete: %+v", g)
	}
	if g.ListPriceUSD != 30000 {
		t.Error("H100 NVL list price should be ~$30k per the paper")
	}
}
