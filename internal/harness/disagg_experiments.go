package harness

// Disaggregated prefill/decode serving across the TEE boundary: the
// tentpole question of the topology API. A cGPU prefills long prompts two
// orders of magnitude faster than a CPU TEE but rents for ~13x the price;
// decode is memory-bound, where a TDX host's $/(GB/s) is competitive.
// Splitting the stages — cGPU prefill, TDX decode, an explicitly priced
// KV handoff over the NIC between them — should therefore win exactly
// when prompts are long (prefill compute dominates, and the handoff
// amortizes over thousands of prefilled tokens) and lose when prompts are
// short (the handoff drain + NIC transfer costs more than the prefill it
// saves, and a homogeneous fleet skips it entirely).

import (
	"fmt"

	"cllm/internal/cloud"
	"cllm/internal/dtype"
	"cllm/internal/hw"
	"cllm/internal/perf"
	"cllm/internal/serve"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "disagg",
		Title: "Disaggregated prefill/decode across the TEE boundary: $/Mtok vs homogeneous fleets (7B)",
		Paper: "Extension: the paper prices whole platforms against each other; a role-aware topology lets each serving stage rent the TEE it is efficient on — cGPU prefill + TDX decode beats every homogeneous fleet on long-prompt RAG $/Mtok at equal SLOs, and loses on short contexts where the KV-handoff tax dominates",
		Run:   runDisaggregated,
	})
}

// disaggCandidate is one fleet shape priced for a regime: a topology plus
// its total hourly rent (mixed fleets mix rental rates, so the fleet is
// priced as a whole).
type disaggCandidate struct {
	name      string
	topo      serve.Topology
	hourlyUSD float64
	mixed     bool // the disaggregated candidate under test
}

// disaggOutcome is one candidate's simulated result.
type disaggOutcome struct {
	cand    disaggCandidate
	rep     *serve.FleetReport
	sloMet  bool
	usdMTok float64
}

// cgpuServeBackend is the confidential-H100 serving backend.
func cgpuServeBackend() serve.Backend {
	return serve.Backend{IsGPU: true, GPU: perf.GPURun{GPU: hw.H100NVL(), Platform: tee.CGPU()}}
}

// disaggHourly prices a topology: cGPU replicas at the confidential-GPU
// instance rate, CPU-TEE replicas at the calibrated vCPU+memory rate for
// the testbed's socket.
func disaggHourly(topo serve.Topology) (float64, error) {
	prices := cloud.DefaultPrices()
	cpuHourly, err := prices.HourlyCost(cloud.CPUInstance{VCPUs: hw.EMR1().CoresPerSocket, MemGiB: 128})
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, g := range topo.Groups {
		per := cpuHourly
		if g.Backend.IsGPU {
			per = prices.CGPUHour
		}
		total += per * float64(g.Replicas)
	}
	return total, nil
}

// unifiedN is an N-replica homogeneous fleet of the backend.
func unifiedN(be serve.Backend, n int) serve.Topology {
	return serve.Unified(be, serve.FleetConfig{Replicas: n, Policy: serve.RoundRobin})
}

// prefillDecode is the mixed topology: nPre cGPU prefill replicas feeding
// nDec TDX decode replicas over the priced KV-handoff edge.
func prefillDecode(nPre, nDec int) serve.Topology {
	return serve.Topology{Groups: []serve.RoleGroup{
		{Role: serve.RolePrefill, Backend: cgpuServeBackend(), Replicas: nPre},
		{Role: serve.RoleDecode, Backend: chunkedBackend(tee.TDX()), Replicas: nDec},
	}}
}

// runDisaggCandidates simulates every candidate fleet against one offered
// load (in parallel under -workers; each run is independently seeded, so
// the merge order is deterministic).
func runDisaggCandidates(o Options, cands []disaggCandidate, cfg serve.Config) ([]disaggOutcome, error) {
	outs := make([]disaggOutcome, len(cands))
	err := parallelFor(o.workers(), len(cands), func(i int) error {
		fleet, err := serve.NewFleet(cands[i].topo)
		if err != nil {
			return err
		}
		rep, err := fleet.Run(cfg)
		if err != nil {
			return err
		}
		outs[i] = disaggOutcome{cand: cands[i], rep: rep, sloMet: rep.SLOAttainment() >= 1}
		if usd, err := rep.CostPerMTokTotal(cands[i].hourlyUSD); err == nil {
			outs[i].usdMTok = usd
		}
		return nil
	})
	return outs, err
}

func runDisaggregated(o Options) (*Result, error) {
	res := &Result{ID: "disagg", Title: "Disaggregated prefill/decode vs homogeneous fleets (extension)",
		Header: []string{"regime", "fleet", "$/h", "SLO%", "TTFT p99(s)", "TPOT p99(s)", "goodput(tok/s)", "handoffs", "$/Mtok"}}

	model := mustModel("llama2-7b")
	// The run must be long enough that (a) the saturated single-cGPU
	// fleet's queue actually grows past the TTFT SLO and (b) the decode
	// tail after the last arrival amortizes, or makespan-based goodput
	// would punish the slow-decoding mixed fleet for the final batch. The
	// whole experiment is discrete-event and runs in well under a second,
	// so Quick mode gets the same fidelity.
	const requests = 768
	mkCfg := func(rate float64, inLen, outLen int) serve.Config {
		return serve.Config{
			Workload:   trace.Workload{Model: model, Kind: dtype.BF16, InputLen: inLen, OutputLen: outLen},
			Rate:       rate,
			Requests:   requests,
			Seed:       o.Seed,
			MaxBatch:   32,
			TTFTSLOSec: 1.0,
			TPOTSLOSec: 0.25,
		}
	}
	mkCands := func(specs []struct {
		name  string
		topo  serve.Topology
		mixed bool
	}) ([]disaggCandidate, error) {
		cands := make([]disaggCandidate, len(specs))
		for i, s := range specs {
			hourly, err := disaggHourly(s.topo)
			if err != nil {
				return nil, err
			}
			cands[i] = disaggCandidate{name: s.name, topo: s.topo, hourlyUSD: hourly, mixed: s.mixed}
		}
		return cands, nil
	}

	type regime struct {
		name  string
		cfg   serve.Config
		cands []disaggCandidate
	}
	longCands, err := mkCands([]struct {
		name  string
		topo  serve.Topology
		mixed bool
	}{
		{"cgpu:1=prefill,tdx:16=decode", prefillDecode(1, 16), true},
		{"cgpu:1", unifiedN(cgpuServeBackend(), 1), false},
		{"cgpu:2", unifiedN(cgpuServeBackend(), 2), false},
		{"cgpu:3", unifiedN(cgpuServeBackend(), 3), false},
		{"tdx:12", unifiedN(chunkedBackend(tee.TDX()), 12), false},
	})
	if err != nil {
		return nil, err
	}
	shortCands, err := mkCands([]struct {
		name  string
		topo  serve.Topology
		mixed bool
	}{
		{"cgpu:1=prefill,tdx:1=decode", prefillDecode(1, 1), true},
		{"tdx:2", unifiedN(chunkedBackend(tee.TDX()), 2), false},
	})
	if err != nil {
		return nil, err
	}
	regimes := []regime{
		// Long-prompt RAG: 3072-token documents, answer-length decode. A
		// single cGPU saturates on prefill compute at this rate; a CPU TEE
		// cannot prefill a document inside the TTFT SLO at any fleet size.
		{"long-rag", mkCfg(9, 3072, 128), longCands},
		// Short context: chat-like turns. Prefill is trivial everywhere,
		// so the mixed fleet's handoff drain + NIC transfer is pure tax.
		{"short-chat", mkCfg(8, 64, 32), shortCands},
	}

	outcomes := make(map[string][]disaggOutcome, len(regimes))
	for _, rg := range regimes {
		outs, err := runDisaggCandidates(o, rg.cands, rg.cfg)
		if err != nil {
			return nil, err
		}
		outcomes[rg.name] = outs
		for _, out := range outs {
			a := out.rep.Aggregate
			usd := "-"
			if out.sloMet {
				usd = fmt.Sprintf("%.2f", out.usdMTok)
			}
			res.Rows = append(res.Rows, []string{
				rg.name, out.cand.name,
				fmt.Sprintf("%.2f", out.cand.hourlyUSD),
				fmt.Sprintf("%.0f%%", out.rep.SLOAttainment()*100),
				fmt.Sprintf("%.3f", a.TTFT.P99),
				fmt.Sprintf("%.3f", a.TPOT.P99),
				fmt.Sprintf("%.1f", a.GoodputTokensPerSec),
				fmt.Sprintf("%d", a.HandoffsOut),
				usd,
			})
		}
	}

	long := outcomes["long-rag"]
	short := outcomes["short-chat"]
	mixedLong, mixedShort := long[0], short[0]

	// Long-prompt regime: the mixed fleet meets both SLOs and undercuts
	// every homogeneous fleet that also meets them; the CPU-only fleet
	// misses the TTFT SLO outright (document prefill is slower than the
	// deadline at any size), and a single cGPU saturates.
	cheapestHomog := ""
	worst := 0.0
	homogBeaten := true
	for _, out := range long[1:] {
		if !out.sloMet {
			continue
		}
		if cheapestHomog == "" || out.usdMTok < worst {
			cheapestHomog, worst = out.cand.name, out.usdMTok
		}
		if out.usdMTok <= mixedLong.usdMTok {
			homogBeaten = false
		}
	}
	res.Checks = append(res.Checks, Check{
		Name: "long-prompt RAG: mixed cGPU-prefill + TDX-decode meets both SLOs",
		Pass: mixedLong.sloMet,
		Detail: fmt.Sprintf("SLO attainment %.0f%%, TTFT p99 %.3fs, TPOT p99 %.3fs",
			mixedLong.rep.SLOAttainment()*100, mixedLong.rep.Aggregate.TTFT.P99, mixedLong.rep.Aggregate.TPOT.P99),
	}, Check{
		Name: "long-prompt RAG: mixed beats every SLO-compliant homogeneous fleet on $/Mtok",
		Pass: mixedLong.sloMet && cheapestHomog != "" && homogBeaten,
		Detail: fmt.Sprintf("mixed %.2f $/Mtok vs cheapest compliant homogeneous %s at %.2f",
			mixedLong.usdMTok, cheapestHomog, worst),
	})
	for _, out := range long[1:] {
		switch out.cand.name {
		case "cgpu:1":
			res.Checks = append(res.Checks, Check{
				Name:   "long-prompt RAG: a single cGPU saturates on prefill compute",
				Pass:   !out.sloMet,
				Detail: fmt.Sprintf("cgpu:1 SLO attainment %.0f%%", out.rep.SLOAttainment()*100),
			})
		case "tdx:12":
			res.Checks = append(res.Checks, Check{
				Name: "long-prompt RAG: CPU-only fleets miss the TTFT SLO at any size (document prefill outlasts the deadline)",
				Pass: !out.sloMet,
				Detail: fmt.Sprintf("tdx:12 TTFT p99 %.2fs against a %.0fs SLO",
					out.rep.Aggregate.TTFT.P99, 1.0),
			})
		}
	}

	// Short-context regime: the homogeneous CPU fleet wins — the handoff
	// (source drain through the cGPU's encrypted bounce buffer, the NIC
	// transfer, decode-side ingest) costs more than the trivial prefill it
	// offloads, and the mixed fleet still rents the cGPU.
	tdxShort := short[1]
	res.Checks = append(res.Checks, Check{
		Name: "short-context: homogeneous TDX beats the mixed fleet on $/Mtok (handoff tax dominates)",
		Pass: tdxShort.sloMet && mixedShort.sloMet && tdxShort.usdMTok < mixedShort.usdMTok,
		Detail: fmt.Sprintf("tdx:2 %.2f $/Mtok vs mixed %.2f at equal SLOs",
			tdxShort.usdMTok, mixedShort.usdMTok),
	})
	// The handoff ledger must conserve across both regimes: every launched
	// transfer is ingested (no staging-pool fallbacks at these sizes), one
	// per completed request.
	ledgerOK := true
	detail := ""
	for _, rg := range regimes {
		a := outcomes[rg.name][0].rep.Aggregate
		if a.HandoffsOut != a.Completed || a.HandoffsIn != a.HandoffsOut || a.HandoffFallbacks != 0 {
			ledgerOK = false
		}
		detail += fmt.Sprintf("%s: %d handoffs / %d ingested / %d fallbacks / %d completed; ",
			rg.name, a.HandoffsOut, a.HandoffsIn, a.HandoffFallbacks, a.Completed)
	}
	res.Checks = append(res.Checks, Check{
		Name:   "KV-handoff ledger conserves: launched == ingested == completed, no fallbacks",
		Pass:   ledgerOK,
		Detail: detail,
	})

	res.Notes = append(res.Notes,
		"Handoff pricing per request: drain the prefilled KV at the source's swap bandwidth (the cGPU pays its encrypted PCIe bounce buffer), then a NIC transfer (setup + bytes at the calibrated NIC rate), then decode-side ingest from the staging pool.",
		"Fleets are simulated (not extrapolated) and priced as a whole: mixed fleets sum per-platform rental rates, and only SLO-compliant tokens count toward $/Mtok.",
		fmt.Sprintf("SLOs: TTFT ≤ 1s, TPOT ≤ 0.25s/token; %d requests per fleet.", requests))
	return res, nil
}
