package harness

// Latency-attribution experiment: the streaming phase decomposition plus
// the counterfactual clear-hardware costing must reproduce the paper's
// overhead shapes as a live output of ordinary serving runs. Three
// deployments pin down three different dominant costs: a swap-heavy
// confidential-GPU slice pays its TEE tax through the AES-GCM bounce
// buffer, a decode-heavy SGX enclave pays it through memory-bandwidth-
// bound decode, and a saturated TDX deployment hides everything behind
// queue wait — while every run conserves exactly (phases sum to latency)
// and the clear-hardware counterfactual of a protected run is the
// unprotected run, byte for byte.

import (
	"fmt"
	"reflect"

	"cllm/internal/dtype"
	"cllm/internal/gramine"
	"cllm/internal/hw"
	"cllm/internal/obs"
	"cllm/internal/perf"
	"cllm/internal/serve"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "attrib",
		Title: "Latency attribution: phase breakdowns and counterfactual TEE-tax accounting (7B)",
		Paper: "Fig. 5/6 shape: cGPU pays the TEE tax through bounce-buffer swap transfers, CPU TEEs through memory-bandwidth-bound decode; near saturation queue wait dominates every overhead",
		Run:   runAttribution,
	})
}

// attribScenario is one (backend, trace) deployment to attribute.
type attribScenario struct {
	name string
	be   serve.Backend
	cfg  serve.Config
}

// attribOutcome carries one scenario's attributed run.
type attribOutcome struct {
	rep  *serve.Report
	arep *obs.AttribReport
	csv  []byte
}

// runAttrib executes one scenario with an attribution engine and the
// clear-hardware counterfactual coster attached.
func runAttrib(sc attribScenario) (*attribOutcome, error) {
	a, err := obs.NewAttribution(0, true)
	if err != nil {
		return nil, err
	}
	cfg := sc.cfg
	cfg.Observer = a
	if cfg.ClearCoster, err = serve.NewClearStepCoster(sc.be, cfg); err != nil {
		return nil, err
	}
	rep, err := serve.Run(sc.be, cfg)
	if err != nil {
		return nil, err
	}
	arep := a.Report(rep.Platform)
	return &attribOutcome{rep: rep, arep: arep, csv: arep.PhaseCSV()}, nil
}

// phaseByName indexes a report's stat rows by phase name.
func phaseByName(stats []obs.PhaseStat) map[string]obs.PhaseStat {
	m := make(map[string]obs.PhaseStat, len(stats))
	for _, p := range stats {
		m[p.Phase] = p
	}
	return m
}

// dominant returns the stat row with the largest TotalSec.
func dominant(stats []obs.PhaseStat) obs.PhaseStat {
	best := stats[0]
	for _, p := range stats[1:] {
		if p.TotalSec > best.TotalSec {
			best = p
		}
	}
	return best
}

func runAttribution(o Options) (*Result, error) {
	res := &Result{
		ID:     "attrib",
		Title:  "Phase attribution and counterfactual TEE-tax accounting (extension)",
		Header: []string{"scenario", "done", "lat p50(s)", "queue", "prefill", "decode", "stall", "swap", "tax p50", "dominant tax"},
	}

	m := mustModel("llama2-7b")
	wl := trace.Workload{Model: m, Kind: dtype.BF16}
	weights := int64(trace.WeightFootprint(wl))
	perToken := m.KVCacheBytesPerToken(2)

	// cGPU swap-heavy: a MIG-style confidential-GPU slice (weights plus
	// ~240 KV tokens) under a short-request burst, forced onto the swap
	// path — every preemption round-trips KV through the AES-GCM bounce
	// buffer at ~12% of PCIe, so the swap-transfer tax towers over the
	// few-percent compute overheads.
	gpu := hw.H100NVL()
	gpu.HBMBytes = weights + 800*perToken
	shortTrace := make([]serve.Request, 16)
	for i := range shortTrace {
		shortTrace[i] = serve.Request{ID: i, ArrivalSec: float64(i) * 0.05, InputLen: 384, OutputLen: 32}
	}
	cgpuSwap := attribScenario{
		name: "cGPU/swap-heavy",
		be:   serve.Backend{IsGPU: true, GPU: perf.GPURun{GPU: gpu, Platform: tee.CGPU()}},
		cfg: serve.Config{
			Workload: wl, Trace: shortTrace, Seed: o.Seed, MaxBatch: 4,
			PreemptPolicy: serve.PreemptSwap,
		},
	}

	// CPU-TEE equivalent of the same pressure: an SGX enclave whose KV
	// pool preempts constantly, but whose swaps ride the inline memory
	// encryption engine at near-native memcpy speed — the tax share of
	// end-to-end latency stays far below the cGPU slice's.
	sgx, err := tee.SGX(gramine.DefaultManifest("/models/llama2.bin", weights+6144*perToken, 64))
	if err != nil {
		return nil, err
	}
	longTrace := make([]serve.Request, 24)
	for i := range longTrace {
		longTrace[i] = serve.Request{ID: i, ArrivalSec: float64(i) * 0.05, InputLen: 1024, OutputLen: 256}
	}
	sgxSwap := attribScenario{
		name: "SGX/swap-heavy",
		be:   serve.Backend{CPU: perf.CPURun{CPU: hw.EMR1(), Platform: sgx, Sockets: 1, AMX: true}},
		cfg: serve.Config{
			Workload: wl, Trace: longTrace, Seed: o.Seed, MaxBatch: 8,
			PreemptPolicy: serve.PreemptSwap,
		},
	}

	// SGX decode-heavy: short prompts, long generations, no KV pressure —
	// nearly all attributed time is memory-bandwidth-bound decode, and the
	// enclave's MemBWFactor makes decode the dominant tax component.
	decTrace := make([]serve.Request, 8)
	for i := range decTrace {
		decTrace[i] = serve.Request{ID: i, ArrivalSec: float64(i) * 0.1, InputLen: 32, OutputLen: o.tokens(512)}
	}
	sgxDecode := attribScenario{
		name: "SGX/decode-heavy",
		be:   sgxSwap.be,
		cfg:  serve.Config{Workload: wl, Trace: decTrace, Seed: o.Seed, MaxBatch: 8},
	}

	// TDX near saturation: arrivals outpace a batch-limited server, so
	// queue wait swamps every other phase — including the TEE tax.
	satTrace := make([]serve.Request, 32)
	for i := range satTrace {
		satTrace[i] = serve.Request{ID: i, ArrivalSec: float64(i) * 0.01, InputLen: 256, OutputLen: 64}
	}
	tdxSat := attribScenario{
		name: "TDX/saturated",
		be:   serve.Backend{CPU: perf.CPURun{CPU: hw.EMR1(), Platform: tee.TDX(), Sockets: 1, AMX: true}},
		cfg:  serve.Config{Workload: wl, Trace: satTrace, Seed: o.Seed, MaxBatch: 2},
	}

	// The cGPU scenario runs twice: attribution artifacts must be
	// deterministic — byte-identical phase CSVs from repeated runs.
	scenarios := []attribScenario{cgpuSwap, sgxSwap, sgxDecode, tdxSat, cgpuSwap}
	outs := make([]*attribOutcome, len(scenarios))
	err = parallelFor(o.workers(), len(scenarios), func(i int) error {
		out, err := runAttrib(scenarios[i])
		if err != nil {
			return err
		}
		outs[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	cgpuOut, sgxOut, decOut, satOut, cgpuRepeat := outs[0], outs[1], outs[2], outs[3], outs[4]

	for i, out := range outs[:4] {
		ph := phaseByName(out.arep.Phases)
		row := []string{scenarios[i].name,
			fmt.Sprintf("%d", out.arep.Completed),
			fmt.Sprintf("%.3f", out.arep.LatencyP50Sec)}
		for _, name := range []string{"queue", "prefill", "decode", "preempt-stall", "swap-transfer"} {
			row = append(row, fmt.Sprintf("%.1f%%", ph[name].Share*100))
		}
		row = append(row,
			fmt.Sprintf("%.1f%%", out.arep.TaxShareP50*100),
			dominant(out.arep.Tax).Phase)
		res.Rows = append(res.Rows, row)
	}

	// Conservation: every scenario's phases sum to measured latency for
	// every request, exactly — the engine records violations otherwise.
	violations := ""
	for i, out := range outs {
		if len(out.arep.Violations) > 0 {
			violations += fmt.Sprintf(" %s: %s;", scenarios[i].name, out.arep.Violations[0])
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:   "phase conservation holds exactly in every scenario",
		Pass:   violations == "",
		Detail: fmt.Sprintf("violations:%s", orNone(violations)),
	})

	// Both swap-heavy deployments must actually swap.
	res.Checks = append(res.Checks, Check{
		Name: "swap-heavy scenarios exercise the swap path",
		Pass: cgpuOut.rep.SwapOuts > 0 && sgxOut.rep.SwapOuts > 0,
		Detail: fmt.Sprintf("cGPU %d swap-outs, SGX %d swap-outs",
			cgpuOut.rep.SwapOuts, sgxOut.rep.SwapOuts),
	})

	// Headline shape 1: the TEE-tax share of p50 latency is strictly
	// larger on the cGPU swap-heavy run than on the CPU-TEE equivalent —
	// the bounce buffer is the expensive path, the inline encryption
	// engine nearly free.
	res.Checks = append(res.Checks, Check{
		Name: "TEE-tax share of p50 latency: cGPU swap-heavy > CPU-TEE swap-heavy",
		Pass: cgpuOut.arep.TaxShareP50 > sgxOut.arep.TaxShareP50,
		Detail: fmt.Sprintf("cGPU %.1f%% vs SGX %.1f%%",
			cgpuOut.arep.TaxShareP50*100, sgxOut.arep.TaxShareP50*100),
	})

	// Headline shape 2: on the cGPU slice the bounce-buffer transfer tax
	// dominates — it exceeds the whole compute delta (prefill + decode
	// tax combined), and the transfer phase itself is mostly tax: at ~12%
	// of PCIe, over half of every encrypted KV round-trip is TEE detour.
	cgpuTax := phaseByName(cgpuOut.arep.Tax)
	cgpuPh := phaseByName(cgpuOut.arep.Phases)
	res.Checks = append(res.Checks, Check{
		Name: "cGPU swap-heavy: bounce-buffer transfer tax dominates the compute delta; transfers are mostly tax",
		Pass: dominant(cgpuOut.arep.Tax).Phase == "swap-transfer" &&
			cgpuTax["swap-transfer"].TotalSec > cgpuTax["prefill"].TotalSec+cgpuTax["decode"].TotalSec &&
			cgpuTax["swap-transfer"].TotalSec > 0.5*cgpuPh["swap-transfer"].TotalSec,
		Detail: fmt.Sprintf("swap tax %.3fs vs decode tax %.3fs + prefill tax %.3fs; swap phase %.3fs (tax %.0f%% of it)",
			cgpuTax["swap-transfer"].TotalSec, cgpuTax["decode"].TotalSec,
			cgpuTax["prefill"].TotalSec, cgpuPh["swap-transfer"].TotalSec,
			100*cgpuTax["swap-transfer"].TotalSec/cgpuPh["swap-transfer"].TotalSec),
	})

	// Headline shape 3: decode-heavy SGX pays its tax through
	// memory-bandwidth-bound decode.
	decTax := phaseByName(decOut.arep.Tax)
	res.Checks = append(res.Checks, Check{
		Name: "SGX decode-heavy: memory-bandwidth decode tax dominates the compute delta",
		Pass: dominant(decOut.arep.Tax).Phase == "decode" &&
			decTax["decode"].TotalSec > decTax["prefill"].TotalSec,
		Detail: fmt.Sprintf("decode tax %.3fs vs prefill tax %.3fs, swap tax %.3fs",
			decTax["decode"].TotalSec, decTax["prefill"].TotalSec, decTax["swap-transfer"].TotalSec),
	})

	// Headline shape 4: near saturation, queue wait dominates every other
	// phase — and dwarfs the entire TEE tax.
	satPh := phaseByName(satOut.arep.Phases)
	res.Checks = append(res.Checks, Check{
		Name: "near saturation: queue wait dominates every phase and the whole TEE tax",
		Pass: dominant(satOut.arep.Phases).Phase == "queue" &&
			satPh["queue"].TotalSec > satOut.arep.TaxTotalSec,
		Detail: fmt.Sprintf("queue %.3fs (%.1f%% share) vs decode %.3fs, total tax %.3fs",
			satPh["queue"].TotalSec, satPh["queue"].Share*100,
			satPh["decode"].TotalSec, satOut.arep.TaxTotalSec),
	})

	// The counterfactual is honest: running the protected config on its
	// clear-hardware twin reproduces the unprotected run byte for byte
	// (only the platform label differs).
	clearBE := cgpuSwap.be
	clearBE.GPU.Platform = tee.CGPU().Clear()
	bareBE := cgpuSwap.be
	bareBE.GPU.Platform = tee.GPU()
	clearRep, err := serve.Run(clearBE, cgpuSwap.cfg)
	if err != nil {
		return nil, err
	}
	bareRep, err := serve.Run(bareBE, cgpuSwap.cfg)
	if err != nil {
		return nil, err
	}
	norm := *clearRep
	norm.Platform = bareRep.Platform
	res.Checks = append(res.Checks, Check{
		Name:   "clear-hardware twin run is identical to the unprotected run",
		Pass:   reflect.DeepEqual(&norm, bareRep),
		Detail: fmt.Sprintf("%s vs %s: reports deep-equal after label normalization", clearRep.Platform, bareRep.Platform),
	})

	// Determinism: repeated attributed runs export byte-identical CSVs.
	res.Checks = append(res.Checks, Check{
		Name:   "attribution artifacts are deterministic across repeated runs",
		Pass:   string(cgpuOut.csv) == string(cgpuRepeat.csv),
		Detail: fmt.Sprintf("phase CSV %dB, byte-identical on re-run", len(cgpuOut.csv)),
	})

	res.Notes = append(res.Notes,
		"Tax is the per-round clamp max(0, confidential − clear) of each costed component, so platform noise tails are never booked as TEE overhead; unprotected platforms price to exactly zero tax.",
		"Phase vectors are exact in int64 nanoseconds (queue + prefill + decode + preempt-stall + swap-transfer == finish − arrival, bit-exact per request); aggregates fold into DDSketches, so 10⁸-request epoch-sharded runs stay bounded-memory.",
		"The clear-hardware coster neutralizes tee.Platform factors (bounce-buffer bandwidth, MemBWFactor, paging, kernel-launch and VM-exit overheads) while keeping hardware-architectural ones, and is memoized per session like the confidential coster.")
	return res, nil
}
