package harness

// Elasticity experiments: heterogeneous TEE fleets and attestation-aware
// autoscaling. The paper prices confidentiality per served token at steady
// state; these ask what it costs to *track* a non-stationary arrival
// process — where dispatch must respect class capability and price, and
// every reactive scale-up of a confidential replica pays enclave/TD build
// plus the attestation round-trip before it can serve.

import (
	"fmt"
	"math"

	"cllm/internal/autoscale"
	"cllm/internal/cloud"
	"cllm/internal/dtype"
	"cllm/internal/hw"
	"cllm/internal/perf"
	"cllm/internal/serve"
	"cllm/internal/tee"
	"cllm/internal/trace"
	"cllm/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "hetero",
		Title: "Heterogeneous TDX+cGPU fleet: cost-aware vs uniform dispatch (7B)",
		Paper: "Extension: the paper prices each platform alone (Fig 12); a mixed fleet needs dispatch that weighs per-class capability — blind least-loaded overloads the slow cheap class and pays the same rent for less SLO-compliant output",
		Run:   runHetero,
	})
	register(Experiment{
		ID:    "autoscale",
		Title: "Attestation-aware autoscaling under bursty load: cold start vs free elasticity (7B, TDX)",
		Paper: "Extension: reactive scale-up of a confidential replica pays TD build + attestation before serving; holding an SLO under bursts therefore needs strictly more replica-hours than a zero-cold-start fleet — the elasticity tax of confidentiality",
		Run:   runAutoscale,
	})
}

// heteroChatMix is the shared request shape of both elasticity experiments:
// chat-length prompts, CI-sized generations.
func heteroChatMix(outLen int) workload.Mix {
	return workload.Mix{{Name: "chat", Weight: 1, InputLen: 128, OutputLen: outLen, LengthJitter: 0.2}}
}

// gpuServeBackend is the cGPU serving deployment.
func gpuServeBackend(p tee.Platform) serve.Backend {
	return serve.Backend{IsGPU: true, GPU: perf.GPURun{GPU: hw.H100NVL(), Platform: p}}
}

func runHetero(o Options) (*Result, error) {
	res := &Result{ID: "hetero", Title: "Heterogeneous fleet dispatch: cost-aware vs uniform (extension)",
		Header: []string{"dispatch", "SLO%", "goodput(tok/s)", "$/Mtok", "tdx share", "cgpu share", "TTFT p99(s)"}}

	prices := cloud.DefaultPrices()
	tdxHourly, err := prices.HourlyCost(cloud.CPUInstance{VCPUs: hw.EMR1().CoresPerSocket, MemGiB: 128})
	if err != nil {
		return nil, err
	}
	scfg := serve.Config{
		Workload: trace.Workload{Model: mustModel("llama2-7b"), Kind: dtype.BF16},
		// The offered rate sits inside the fleet's capacity when routed
		// well (the cGPU serves ~9 req/s, the TDX replicas ~1 each) but
		// above what blind dispatch can manage: any sustained overrouting
		// to the slow class queues past the SLO there.
		Scenario: &workload.Scenario{
			Arrivals: workload.Poisson{Rate: 9},
			Mix:      heteroChatMix(o.tokens(32)),
		},
		Requests: 240,
		Seed:     o.Seed,
		// Shallow per-replica batches keep the TDX replicas' headroom
		// bounded so misrouted traffic actually queues there.
		MaxBatch: 4,
		// A tight TTFT SLO makes queueing on an overloaded slow replica an
		// attainment miss rather than invisible slack.
		TTFTSLOSec: 1.5,
	}
	if o.Quick {
		scfg.Requests = 160
	}
	// Probe once; autoscale.Run copies the class slice, so both policies
	// can share it. A fixed fleet (Min == Max): the experiment isolates
	// dispatch, so both policies rent the identical hardware all run. The
	// two probes are independent simulations — run them on the worker pool,
	// sharing each backend's costing table with the policy runs below.
	tdxBE := chunkedBackend(tee.TDX())
	cgpuBE := gpuServeBackend(tee.CGPU())
	bes := []*serve.Backend{&tdxBE, &cgpuBE}
	caps := make([]float64, len(bes))
	err = parallelFor(o.workers(), len(bes), func(i int) error {
		coster, err := serve.NewStepCoster(*bes[i], scfg)
		if err != nil {
			return err
		}
		bes[i].Coster = coster
		cap, err := autoscale.ProbeCapacity(*bes[i], scfg)
		if err != nil {
			return err
		}
		caps[i] = cap
		return nil
	})
	if err != nil {
		return nil, err
	}
	classes := []autoscale.Class{
		{Name: "tdx", Backend: tdxBE, HourlyUSD: tdxHourly, Min: 2, Max: 2, CapacityReqPerSec: caps[0]},
		{Name: "cgpu", Backend: cgpuBE, HourlyUSD: prices.CGPUHour, Min: 1, Max: 1, CapacityReqPerSec: caps[1]},
	}

	type outcome struct {
		att, goodput, usd, ttftP99 float64
		share                      [2]float64
	}
	// Both dispatch policies simulate the identical rented fleet on
	// independent engines: evaluate them concurrently, merge in policy
	// order.
	dispatches := []autoscale.Dispatch{autoscale.Uniform, autoscale.CostAware}
	outs := make([]outcome, len(dispatches))
	err = parallelFor(o.workers(), len(dispatches), func(i int) error {
		rep, err := autoscale.Run(classes, autoscale.Config{Serve: scfg, Dispatch: dispatches[i], IntervalSec: 10})
		if err != nil {
			return err
		}
		total := rep.Usage[0].Dispatched + rep.Usage[1].Dispatched
		out := outcome{
			att: rep.SLOAttainment(), goodput: rep.Aggregate.GoodputTokensPerSec,
			usd: rep.USDPerMTok, ttftP99: rep.Aggregate.TTFT.P99,
		}
		if total > 0 {
			out.share[0] = float64(rep.Usage[0].Dispatched) / float64(total)
			out.share[1] = float64(rep.Usage[1].Dispatched) / float64(total)
		}
		outs[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, d := range dispatches {
		out := outs[i]
		res.Rows = append(res.Rows, []string{
			d.String(),
			fmt.Sprintf("%.0f%%", out.att*100),
			fmt.Sprintf("%.1f", out.goodput),
			fmt.Sprintf("%.2f", out.usd),
			fmt.Sprintf("%.0f%%", out.share[0]*100),
			fmt.Sprintf("%.0f%%", out.share[1]*100),
			fmt.Sprintf("%.2f", out.ttftP99),
		})
	}
	uni, ca := outs[0], outs[1]

	res.Checks = append(res.Checks, Check{
		Name:   "cost-aware SLO attainment at least matches uniform",
		Pass:   ca.att >= uni.att,
		Detail: fmt.Sprintf("cost-aware %.1f%% vs uniform %.1f%%", ca.att*100, uni.att*100),
	}, Check{
		Name:   "cost-aware $/Mtok <= uniform at equal rented fleet",
		Pass:   ca.usd <= uni.usd && !math.IsInf(ca.usd, 1),
		Detail: fmt.Sprintf("cost-aware $%.2f vs uniform $%.2f per Mtok", ca.usd, uni.usd),
	}, Check{
		Name: "capacity weighting shifts traffic toward the fast class",
		Pass: ca.share[1] > uni.share[1],
		Detail: fmt.Sprintf("cGPU share %.0f%% cost-aware vs %.0f%% uniform",
			ca.share[1]*100, uni.share[1]*100),
	})
	res.Notes = append(res.Notes,
		"Both policies rent the identical fixed fleet (2×TDX + 1×cGPU); only routing differs, so the $/Mtok gap is pure goodput.",
		"Uniform least-outstanding treats a queued request on a ~1 req/s TDX replica like one on a ~9 req/s cGPU; cost-aware dispatch normalizes queue depth by probed class capacity.")
	return res, nil
}

// autoscaleSweep holds one scaler-policy operating point.
type autoscaleSweep struct {
	minFloor int
	util     float64
}

func runAutoscale(o Options) (*Result, error) {
	res := &Result{ID: "autoscale", Title: "Cold-start-aware scaling cost under bursty load (extension)",
		Header: []string{"coldstart(s)", "policy(min,util)", "SLO%", "replica-hrs", "cost($)", "coldstarts", "TTFT p99(s)"}}

	const sloTarget = 0.85
	tdxBE := chunkedBackend(tee.TDX())
	wl := trace.Workload{Model: mustModel("llama2-7b"), Kind: dtype.BF16}
	scfg := serve.Config{
		Workload: wl,
		Scenario: &workload.Scenario{
			Arrivals: workload.Poisson{Rate: 1}, // placeholder; set from the probe below
			Mix:      heteroChatMix(o.tokens(24)),
		},
		Requests: 320,
		Seed:     o.Seed,
		// A shallow batch keeps one replica's headroom bounded: deep
		// batching would quietly absorb any burst and no scaling (hence no
		// cold start) would ever be exercised.
		MaxBatch: 4,
		// A 4 s TTFT SLO gives a warm fleet's reaction lag (one control
		// interval) room to pass while a 13 s cold start still blows it.
		TTFTSLOSec: 4,
	}
	if o.Quick {
		scfg.Requests = 224
	}
	hourly, err := cloud.DefaultPrices().HourlyCost(cloud.CPUInstance{VCPUs: hw.EMR1().CoresPerSocket, MemGiB: 128})
	if err != nil {
		return nil, err
	}
	// Share one costing table across the probe and the whole policy sweep:
	// every cell simulates the same backend and workload shape, so the
	// sweep's later cells run almost entirely on table hits.
	coster, err := serve.NewStepCoster(tdxBE, scfg)
	if err != nil {
		return nil, err
	}
	tdxBE.Coster = coster
	capacity, err := autoscale.ProbeCapacity(tdxBE, scfg)
	if err != nil {
		return nil, err
	}
	// The burst structure is defined relative to one replica's saturated
	// rate: lulls fit one replica at 80% utilization, bursts of ~20 s need
	// almost three — so holding the SLO requires scaling into each burst
	// (or standing capacity), and a cold start eats most of a burst.
	scfg.Scenario.Arrivals = workload.MMPP{
		LowRate: 0.8 * capacity, HighRate: 5 * capacity,
		LowHoldSec: 60, HighHoldSec: 20,
	}
	coldStart := autoscale.ColdStartSec(tdxBE, wl)

	const maxReplicas = 4
	sweeps := []autoscaleSweep{
		{1, 0.9}, {1, 0.6}, {1, 0.4}, {1, 0.3},
		{2, 0.6}, {2, 0.4}, {3, 0.6}, {maxReplicas, 0.6},
	}
	run := func(cold float64, sw autoscaleSweep) (*autoscale.Report, error) {
		return autoscale.Run([]autoscale.Class{{
			Name: "tdx", Backend: tdxBE, HourlyUSD: hourly,
			ColdStartSec: cold, Min: sw.minFloor, Max: maxReplicas,
			CapacityReqPerSec: capacity,
		}}, autoscale.Config{Serve: scfg, IntervalSec: 5, TargetUtil: sw.util})
	}

	// The (cold-start × policy) sweep cells are independent autoscaling
	// simulations: evaluate the whole grid on the worker pool, then fold
	// rows and winners in sweep order — identical output at any worker
	// count.
	colds := []float64{0, coldStart}
	reports := make([]*autoscale.Report, len(colds)*len(sweeps))
	err = parallelFor(o.workers(), len(reports), func(i int) error {
		rep, err := run(colds[i/len(sweeps)], sweeps[i%len(sweeps)])
		if err != nil {
			return err
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}

	// For each cold-start setting, the cheapest policy (fewest replica-
	// hours) that holds the SLO target. Equal-policy attainments are kept
	// for the degradation check.
	type best struct {
		hours, cost float64
		sw          autoscaleSweep
		found       bool
	}
	attainAt := map[bool]float64{} // equal-policy reference: {1, 0.6}
	bests := map[bool]best{}
	for ci, cold := range colds {
		isCold := cold > 0
		b := best{hours: math.Inf(1)}
		for si, sw := range sweeps {
			rep := reports[ci*len(sweeps)+si]
			att := rep.SLOAttainment()
			if sw.minFloor == 1 && sw.util == 0.6 {
				attainAt[isCold] = att
			}
			res.Rows = append(res.Rows, []string{
				fmt.Sprintf("%.1f", cold),
				fmt.Sprintf("(%d, %.1f)", sw.minFloor, sw.util),
				fmt.Sprintf("%.0f%%", att*100),
				fmt.Sprintf("%.4f", rep.ReplicaHours),
				fmt.Sprintf("%.4f", rep.CostUSD),
				fmt.Sprintf("%d", rep.ColdStarts),
				fmt.Sprintf("%.2f", rep.Aggregate.TTFT.P99),
			})
			if att >= sloTarget && rep.ReplicaHours < b.hours {
				b = best{hours: rep.ReplicaHours, cost: rep.CostUSD, sw: sw, found: true}
			}
		}
		bests[isCold] = b
	}

	warm, cold := bests[false], bests[true]
	res.Checks = append(res.Checks, Check{
		Name: "cold start cannot improve SLO attainment at equal policy",
		Pass: attainAt[false] >= attainAt[true],
		Detail: fmt.Sprintf("policy (1, 0.6): %.1f%% warm vs %.1f%% with %.1fs cold start",
			attainAt[false]*100, attainAt[true]*100, coldStart),
	}, Check{
		Name:   "both settings can hold the SLO somewhere in the policy sweep",
		Pass:   warm.found && cold.found,
		Detail: fmt.Sprintf("target %.0f%%: warm found=%v, cold found=%v", sloTarget*100, warm.found, cold.found),
	})
	if warm.found && cold.found {
		res.Checks = append(res.Checks, Check{
			Name: "attestation cold start strictly increases replica-hours needed to hold the SLO",
			Pass: cold.hours > warm.hours,
			Detail: fmt.Sprintf("cheapest SLO-holding policy: %.4f hrs (min=%d, util=%.1f) with cold start vs %.4f hrs (min=%d, util=%.1f) without",
				cold.hours, cold.sw.minFloor, cold.sw.util, warm.hours, warm.sw.minFloor, warm.sw.util),
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("TDX cold start %.1fs = base boot + weight streaming + TD page acceptance over the %.1f GB image + attestation RTT (constants in internal/tee, internal/gramine).", coldStart, trace.WeightFootprint(wl)/1e9),
		"The sweep varies the standing floor (min replicas) and the utilization target; the zero-cold-start fleet holds the SLO reactively, the confidential fleet must overprovision — the difference is the elasticity tax of attestation.")
	return res, nil
}
