package harness

import (
	"fmt"

	"cllm/internal/backend"
	"cllm/internal/dtype"
	"cllm/internal/gramine"
	"cllm/internal/hw"
	"cllm/internal/model"
	"cllm/internal/perf"
	"cllm/internal/stats"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

// sgxPlatform builds the standard SGX deployment used across experiments:
// a Gramine manifest with a 192 GiB enclave (ample for 7B/13B weights).
func sgxPlatform() (tee.Platform, error) {
	return tee.SGX(gramine.DefaultManifest("/models/llama2.bin", 192<<30, 64))
}

func mustModel(name string) model.Config {
	cfg, err := model.Lookup(name)
	if err != nil {
		panic(err)
	}
	return cfg
}

func runCPU(p tee.Platform, cpu hw.CPU, wl trace.Workload, sockets, cores int, amx bool, eff float64, seed int64) (*perf.Result, error) {
	return perf.RunCPU(perf.CPURun{
		CPU: cpu, Platform: p, Workload: wl,
		Sockets: sockets, CoresPerSocket: cores, AMX: amx,
		BackendEfficiency: eff, Seed: seed,
	})
}

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "Framework comparison: Llama2-7B, 1024 in / 128 out, batch=beam=1, EMR1 bare metal",
		Paper: "IPEX fastest; vLLM ≈50% slower; HF ≈100% slower; bf16 beats f32 (Fig 3, Insight 3)",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Single-socket TEE overheads: Llama2-{7B,13B} × {bf16,int8} on EMR1",
		Paper: "SGX 4.80-6.15%, TDX 5.51-10.68%, VM 1.82-5.38%; SGX between VM and TDX (Fig 4, Insights 4-5)",
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Two-socket 70B NUMA bindings: VM B vs TDX vs VM NB on EMR1",
		Paper: "TDX between VM B and VM NB; VM NB ≈ +62% latency; 200ms budget broken (Fig 5, Insight 6)",
		Run:   runFig5,
	})
	register(Experiment{
		ID:    "fig6",
		Title: "Two-socket hugepage strategies: baremetal, VM FH, VM TH, TDX on EMR1",
		Paper: "VM TH costs 3.19-5.20% over VM FH; TDX-over-VM-TH stays 4-10% (Fig 6, Insight 7)",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Per-decoder-block layer durations and TDX overheads (7B, batch 4, EMR2)",
		Paper: "Self-attention and linear-SiLU dominate block time; layer norms show the largest relative TDX overheads (Fig 7)",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "AMX vs no-AMX across batch sizes (7B, VM/TDX, EMR2)",
		Paper: "AMX advantage grows with batch to 100s of %; no-AMX int8 loses 85-96%; AMX lowers TDX overheads (Fig 8, Insight 8)",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Batch-size scaling 1-512 (7B, EMR2, single socket throughput / two-socket latency)",
		Paper: "TDX throughput overheads 7-10% dropping to 4-7% at saturation; int8 saturates earlier (Fig 9, Insight 9)",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Input-size scaling 32-2048 (7B, batch 64, EMR2)",
		Paper: "TDX overhead decreases with input size until ~2048 where cache/TLB pressure raises it again (Fig 10)",
		Run:   runFig10,
	})
}

func runFig3(o Options) (*Result, error) {
	res := &Result{ID: "fig3", Title: "Framework comparison (Fig 3)",
		Header: []string{"backend", "dtype", "time(s)", "vs IPEX bf16"}}
	cfg := mustModel("llama2-7b")
	type cell struct {
		name string
		kind dtype.Kind
		b    backend.Backend
	}
	cells := []cell{
		{"IPEX", dtype.BF16, backend.IPEX()},
		{"vLLM", dtype.BF16, backend.VLLM()},
		{"Llama.cpp", dtype.BF16, backend.LlamaCpp()},
		{"HF", dtype.BF16, backend.HuggingFace()},
		{"IPEX", dtype.F32, backend.IPEX()},
		{"vLLM", dtype.F32, backend.VLLM()},
		{"HF", dtype.F32, backend.HuggingFace()},
	}
	out := o.tokens(128)
	times := make([]float64, len(cells))
	for i, c := range cells {
		wl := trace.Workload{Model: cfg, Kind: c.kind, Batch: 1, Beam: 1, InputLen: 1024, OutputLen: out}
		r, err := runCPU(tee.Baremetal(), hw.EMR1(), wl, 1, 0, c.b.UsesAMX, c.b.Efficiency, o.Seed)
		if err != nil {
			return nil, err
		}
		// Scale to the full 128-token run for comparability in Quick mode.
		times[i] = r.PrefillSec + r.MeanTokenLatency()*128
	}
	for i, c := range cells {
		res.Rows = append(res.Rows, []string{c.name, c.kind.String(),
			fmt.Sprintf("%.1f", times[i]), fmt.Sprintf("%.2fx", times[i]/times[0])})
	}
	// Paper ordering: strictly increasing in this cell order.
	rev := make([]float64, len(times))
	for i := range times {
		rev[i] = -times[i]
	}
	labels := make([]string, len(cells))
	for i, c := range cells {
		labels[i] = c.name + "/" + c.kind.String()
	}
	res.Checks = append(res.Checks, ordering("Fig3 ordering (fastest first)", labels, rev))
	res.Checks = append(res.Checks, band("vLLM bf16 vs IPEX bf16 (≈1.5x)", times[1]/times[0], 1.25, 1.9))
	res.Checks = append(res.Checks, band("HF bf16 vs IPEX bf16 (≈2x)", times[3]/times[0], 1.6, 2.6))
	return res, nil
}

func runFig4(o Options) (*Result, error) {
	res := &Result{ID: "fig4", Title: "Single-socket TEE overheads (Fig 4)",
		Header: []string{"model", "dtype", "metric", "baremetal", "VM", "TDX", "SGX", "paper TDX", "paper SGX"}}
	sgx, err := sgxPlatform()
	if err != nil {
		return nil, err
	}
	paperTput := map[string][2]float64{ // paper's TDX/SGX throughput overheads
		"llama2-7b/bf16":  {7.01, 4.84},
		"llama2-13b/bf16": {5.17, 5.23},
		"llama2-7b/int8":  {3.76, 4.92},
		"llama2-13b/int8": {3.02, 6.15},
	}
	paperLat := map[string][2]float64{
		"llama2-7b/bf16":  {6.95, 5.58},
		"llama2-13b/bf16": {6.56, 4.80},
		"llama2-7b/int8":  {10.68, 5.43},
		"llama2-13b/int8": {9.37, 5.19},
	}
	var tdxT, sgxT, tdxL, sgxL []float64
	out := o.tokens(64)
	for _, name := range []string{"llama2-7b", "llama2-13b"} {
		cfg := mustModel(name)
		for _, kind := range []dtype.Kind{dtype.BF16, dtype.I8} {
			key := name + "/" + kind.String()
			// Throughput: batch 6, beam 4.
			wlT := trace.Workload{Model: cfg, Kind: kind, Batch: 6, Beam: 4, InputLen: 1024, OutputLen: out}
			// Latency: batch 1, beam 1.
			wlL := trace.Workload{Model: cfg, Kind: kind, Batch: 1, Beam: 1, InputLen: 1024, OutputLen: out}
			plats := []tee.Platform{tee.Baremetal(), tee.VM(tee.VMFullHuge), tee.TDX(), sgx}
			var tputs, lats []float64
			for _, p := range plats {
				rT, err := runCPU(p, hw.EMR1(), wlT, 1, 0, true, 1, o.Seed)
				if err != nil {
					return nil, err
				}
				rL, err := runCPU(p, hw.EMR1(), wlL, 1, 0, true, 1, o.Seed)
				if err != nil {
					return nil, err
				}
				tputs = append(tputs, rT.DecodeThroughput())
				lats = append(lats, rL.MeanTokenLatency())
			}
			ovT := func(i int) float64 { return stats.ThroughputOverheadPct(tputs[0], tputs[i]) }
			ovL := func(i int) float64 { return stats.OverheadPct(lats[0], lats[i]) }
			res.Rows = append(res.Rows, []string{name, kind.String(), "tput(tok/s)",
				fmt.Sprintf("%.1f", tputs[0]), pct(ovT(1)), pct(ovT(2)), pct(ovT(3)),
				pct(paperTput[key][0]), pct(paperTput[key][1])})
			res.Rows = append(res.Rows, []string{name, kind.String(), "latency(ms)",
				fmt.Sprintf("%.1f", lats[0]*1e3), pct(ovL(1)), pct(ovL(2)), pct(ovL(3)),
				pct(paperLat[key][0]), pct(paperLat[key][1])})
			tdxT = append(tdxT, ovT(2))
			sgxT = append(sgxT, ovT(3))
			tdxL = append(tdxL, ovL(2))
			sgxL = append(sgxL, ovL(3))
			// Insight 5 ordering per cell: VM faster than SGX faster than TDX.
			res.Checks = append(res.Checks, ordering("VM > SGX > TDX throughput ("+key+")",
				[]string{"VM", "SGX", "TDX"}, []float64{tputs[1], tputs[3], tputs[2]}))
		}
	}
	res.Checks = append(res.Checks,
		band("TDX throughput overhead range", stats.Mean(tdxT), 3, 11),
		band("SGX throughput overhead range", stats.Mean(sgxT), 3, 8),
		band("TDX latency overhead range", stats.Mean(tdxL), 4, 12),
		band("SGX latency overhead range", stats.Mean(sgxL), 3, 8),
	)
	res.Notes = append(res.Notes, "Insight 4: TEE overheads stay within ~4-10% for throughput and <20% for latency.")
	return res, nil
}

func runFig5(o Options) (*Result, error) {
	res := &Result{ID: "fig5", Title: "70B two-socket NUMA bindings (Fig 5)",
		Header: []string{"dtype", "metric", "VM B", "TDX", "VM NB", "paper TDX", "paper VM NB"}}
	cfg := mustModel("llama2-70b")
	out := o.tokens(32)
	paperLat := map[string][2]float64{"bf16": {21.46, 61.81}, "int8": {14.73, 44.20}}
	for _, kind := range []dtype.Kind{dtype.BF16, dtype.I8} {
		wl := trace.Workload{Model: cfg, Kind: kind, Batch: 1, Beam: 1, InputLen: 1024, OutputLen: out}
		plats := []tee.Platform{tee.VM(tee.VMTransparentHuge), tee.TDX(), tee.VM(tee.VMNoBinding)}
		var lats, tputs []float64
		for _, p := range plats {
			r, err := runCPU(p, hw.EMR1(), wl, 2, 0, true, 1, o.Seed)
			if err != nil {
				return nil, err
			}
			lats = append(lats, r.MeanTokenLatency())
			tputs = append(tputs, r.DecodeThroughput())
		}
		ovL := func(i int) float64 { return stats.OverheadPct(lats[0], lats[i]) }
		res.Rows = append(res.Rows, []string{kind.String(), "latency(ms)",
			fmt.Sprintf("%.0f", lats[0]*1e3), pct(ovL(1)), pct(ovL(2)),
			pct(paperLat[kind.String()][0]), pct(paperLat[kind.String()][1])})
		res.Rows = append(res.Rows, []string{kind.String(), "tput(tok/s)",
			fmt.Sprintf("%.2f", tputs[0]), pct(stats.ThroughputOverheadPct(tputs[0], tputs[1])),
			pct(stats.ThroughputOverheadPct(tputs[0], tputs[2])), "-", "-"})
		res.Checks = append(res.Checks, ordering("VM B > TDX > VM NB throughput ("+kind.String()+")",
			[]string{"VM-B", "TDX", "VM-NB"}, tputs))
		if kind == dtype.BF16 {
			res.Checks = append(res.Checks,
				band("TDX latency overhead vs VM B", ovL(1), 10, 40),
				band("VM NB latency overhead vs VM B", ovL(2), 40, 85),
				Check{Name: "200ms budget broken for 70B", Pass: lats[0] > 0.2,
					Detail: fmt.Sprintf("VM B latency %.0fms", lats[0]*1e3)})
		}
	}
	return res, nil
}

func runFig6(o Options) (*Result, error) {
	res := &Result{ID: "fig6", Title: "Two-socket hugepage strategies (Fig 6)",
		Header: []string{"model", "dtype", "baremetal tok/s", "VM FH", "VM TH", "TDX", "paper TDX"}}
	out := o.tokens(64)
	paperTDX := map[string]float64{
		"llama2-7b/bf16": 15.12, "llama2-13b/bf16": 13.82,
		"llama2-7b/int8": 15.59, "llama2-13b/int8": 12.43,
	}
	var gaps []float64
	for _, name := range []string{"llama2-7b", "llama2-13b"} {
		cfg := mustModel(name)
		for _, kind := range []dtype.Kind{dtype.BF16, dtype.I8} {
			key := name + "/" + kind.String()
			wl := trace.Workload{Model: cfg, Kind: kind, Batch: 6, Beam: 4, InputLen: 1024, OutputLen: out}
			plats := []tee.Platform{tee.Baremetal(), tee.VM(tee.VMFullHuge), tee.VM(tee.VMTransparentHuge), tee.TDX()}
			var tputs []float64
			for _, p := range plats {
				r, err := runCPU(p, hw.EMR1(), wl, 2, 0, true, 1, o.Seed)
				if err != nil {
					return nil, err
				}
				tputs = append(tputs, r.DecodeThroughput())
			}
			ov := func(i int) float64 { return stats.ThroughputOverheadPct(tputs[0], tputs[i]) }
			res.Rows = append(res.Rows, []string{name, kind.String(),
				fmt.Sprintf("%.1f", tputs[0]), pct(ov(1)), pct(ov(2)), pct(ov(3)), pct(paperTDX[key])})
			gaps = append(gaps, stats.ThroughputOverheadPct(tputs[1], tputs[2]))
			res.Checks = append(res.Checks, ordering("bm > FH > TH > TDX ("+key+")",
				[]string{"bm", "FH", "TH", "TDX"}, tputs))
		}
	}
	res.Checks = append(res.Checks, band("VM TH over VM FH gap (Insight 7: 3.19-5.20%)", stats.Mean(gaps), 1.5, 7))
	return res, nil
}

func runFig7(o Options) (*Result, error) {
	res := &Result{ID: "fig7", Title: "Per-decoder-block breakdown (Fig 7)",
		Header: []string{"layer", "baremetal(us)", "TDX(us)", "overhead", "paper overhead"}}
	cfg := mustModel("llama2-7b")
	wl := trace.Workload{Model: cfg, Kind: dtype.BF16, Batch: 4, Beam: 1, InputLen: 128, OutputLen: 128}
	base, err := perf.DecoderBlockBreakdown(perf.CPURun{
		CPU: hw.EMR2(), Platform: tee.Baremetal(), Workload: wl, Sockets: 1, AMX: true}, 128)
	if err != nil {
		return nil, err
	}
	tdx, err := perf.DecoderBlockBreakdown(perf.CPURun{
		CPU: hw.EMR2(), Platform: tee.TDX(), Workload: wl, Sockets: 1, AMX: true}, 128)
	if err != nil {
		return nil, err
	}
	paper := map[string]float64{
		"input_layernorm": 53.94, "self_attn": 9.94, "mha_linear_add": 6.14,
		"post_attention_layernorm": 10.62, "linear_silu_mul": 4.93, "mlp_linear_add": 6.88,
	}
	var normOv, gemmOv []float64
	durations := map[string]float64{}
	for i := range base {
		name := base[i].Kind.String()
		ov := stats.OverheadPct(base[i].Seconds, tdx[i].Seconds)
		durations[name] = base[i].Seconds
		res.Rows = append(res.Rows, []string{name,
			fmt.Sprintf("%.1f", base[i].Seconds*1e6), fmt.Sprintf("%.1f", tdx[i].Seconds*1e6),
			pct(ov), pct(paper[name])})
		switch name {
		case "input_layernorm", "post_attention_layernorm":
			normOv = append(normOv, ov)
		case "self_attn", "linear_silu_mul", "mlp_linear_add":
			gemmOv = append(gemmOv, ov)
		}
	}
	res.Checks = append(res.Checks,
		Check{Name: "norm layers show largest relative overheads",
			Pass:   stats.Mean(normOv) > stats.Mean(gemmOv),
			Detail: fmt.Sprintf("norm mean %.1f%% vs GEMM mean %.1f%%", stats.Mean(normOv), stats.Mean(gemmOv))},
		Check{Name: "self_attn and linear_silu_mul dominate block time",
			Pass: durations["self_attn"] > durations["input_layernorm"] &&
				durations["linear_silu_mul"] > durations["post_attention_layernorm"] &&
				durations["self_attn"]+durations["linear_silu_mul"] >
					durations["mha_linear_add"]+durations["mlp_linear_add"],
			Detail: fmt.Sprintf("attn=%.0fus silu=%.0fus", durations["self_attn"]*1e6, durations["linear_silu_mul"]*1e6)},
	)
	return res, nil
}

func runFig8(o Options) (*Result, error) {
	res := &Result{ID: "fig8", Title: "AMX ablation across batch size (Fig 8)",
		Header: []string{"dtype", "batch", "VM+AMX tok/s", "TDX+AMX", "VM noAMX", "TDX noAMX"}}
	cfg := mustModel("llama2-7b")
	out := o.tokens(32)
	batches := []int{1, 8, 32, 128}
	var noAMXLossBF, noAMXLossI8 []float64
	var tdxOvAMX, tdxOvNoAMX []float64
	for _, kind := range []dtype.Kind{dtype.BF16, dtype.I8} {
		for _, bs := range batches {
			wl := trace.Workload{Model: cfg, Kind: kind, Batch: bs, Beam: 1, InputLen: 128, OutputLen: out}
			get := func(p tee.Platform, amx bool) float64 {
				r, err := runCPU(p, hw.EMR2(), wl, 1, 0, amx, 1, o.Seed)
				if err != nil {
					panic(err)
				}
				return r.DecodeThroughput()
			}
			vmA := get(tee.VM(tee.VMFullHuge), true)
			tdxA := get(tee.TDX(), true)
			vmN := get(tee.VM(tee.VMFullHuge), false)
			tdxN := get(tee.TDX(), false)
			res.Rows = append(res.Rows, []string{kind.String(), fmt.Sprintf("%d", bs),
				fmt.Sprintf("%.1f", vmA), pct(stats.ThroughputOverheadPct(vmA, tdxA)),
				pct(stats.ThroughputOverheadPct(vmA, vmN)), pct(stats.ThroughputOverheadPct(vmA, tdxN))})
			if bs == 128 {
				if kind == dtype.BF16 {
					noAMXLossBF = append(noAMXLossBF, stats.ThroughputOverheadPct(vmA, vmN))
				} else {
					noAMXLossI8 = append(noAMXLossI8, stats.ThroughputOverheadPct(vmA, vmN))
				}
			}
			if kind == dtype.BF16 {
				tdxOvAMX = append(tdxOvAMX, stats.ThroughputOverheadPct(vmA, tdxA))
				tdxOvNoAMX = append(tdxOvNoAMX, stats.ThroughputOverheadPct(vmN, tdxN))
			}
		}
	}
	res.Checks = append(res.Checks,
		band("no-AMX bf16 loss at batch 128 (paper ≈66%)", stats.Mean(noAMXLossBF), 40, 80),
		band("no-AMX int8 loss at batch 128 (paper ≈86-96%)", stats.Mean(noAMXLossI8), 85, 99.5),
		// The paper reports AMX lowering TDX throughput overheads by up to
		// ~2%; our mechanistic model keeps the two within a small band but
		// can tip slightly the other way (see EXPERIMENTS.md).
		Check{Name: "TDX overhead comparable with and without AMX (Insight 8, |Δ|≤3.5%)",
			Pass:   absf(stats.Mean(tdxOvAMX)-stats.Mean(tdxOvNoAMX)) <= 3.5,
			Detail: fmt.Sprintf("TDX overhead with AMX %.2f%% vs without %.2f%%", stats.Mean(tdxOvAMX), stats.Mean(tdxOvNoAMX))},
	)
	return res, nil
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func runFig9(o Options) (*Result, error) {
	res := &Result{ID: "fig9", Title: "Batch-size scaling (Fig 9)",
		Header: []string{"dtype", "batch", "baremetal tok/s", "VM", "TDX", "lat bm(ms)", "lat TDX"}}
	cfg := mustModel("llama2-7b")
	out := o.tokens(32)
	batches := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	type point struct{ tdxOv float64 }
	series := map[dtype.Kind][]point{}
	for _, kind := range []dtype.Kind{dtype.BF16, dtype.I8} {
		for _, bs := range batches {
			wl := trace.Workload{Model: cfg, Kind: kind, Batch: bs, Beam: 1, InputLen: 128, OutputLen: out}
			bm, err := runCPU(tee.Baremetal(), hw.EMR2(), wl, 1, 0, true, 1, o.Seed)
			if err != nil {
				return nil, err
			}
			vm, err := runCPU(tee.VM(tee.VMFullHuge), hw.EMR2(), wl, 1, 0, true, 1, o.Seed)
			if err != nil {
				return nil, err
			}
			tdx, err := runCPU(tee.TDX(), hw.EMR2(), wl, 1, 0, true, 1, o.Seed)
			if err != nil {
				return nil, err
			}
			// Latency on two sockets, as the paper measures.
			bm2, err := runCPU(tee.Baremetal(), hw.EMR2(), wl, 2, 0, true, 1, o.Seed)
			if err != nil {
				return nil, err
			}
			tdx2, err := runCPU(tee.TDX(), hw.EMR2(), wl, 2, 0, true, 1, o.Seed)
			if err != nil {
				return nil, err
			}
			ovT := stats.ThroughputOverheadPct(bm.DecodeThroughput(), tdx.DecodeThroughput())
			res.Rows = append(res.Rows, []string{kind.String(), fmt.Sprintf("%d", bs),
				fmt.Sprintf("%.1f", bm.DecodeThroughput()),
				pct(stats.ThroughputOverheadPct(bm.DecodeThroughput(), vm.DecodeThroughput())),
				pct(ovT),
				fmt.Sprintf("%.1f", bm2.MeanTokenLatency()*1e3),
				pct(stats.OverheadPct(bm2.MeanTokenLatency(), tdx2.MeanTokenLatency()))})
			series[kind] = append(series[kind], point{tdxOv: ovT})
		}
	}
	bf := series[dtype.BF16]
	i8 := series[dtype.I8]
	res.Checks = append(res.Checks,
		Check{Name: "TDX bf16 overhead drops at saturation (Insight 9)",
			Pass:   bf[len(bf)-1].tdxOv < bf[4].tdxOv,
			Detail: fmt.Sprintf("bs16 %.2f%% → bs512 %.2f%%", bf[4].tdxOv, bf[len(bf)-1].tdxOv)},
		Check{Name: "int8 saturates earlier than bf16",
			Pass:   i8[6].tdxOv < bf[6].tdxOv+1,
			Detail: fmt.Sprintf("bs64: int8 %.2f%% vs bf16 %.2f%%", i8[6].tdxOv, bf[6].tdxOv)},
		band("TDX overhead at small batch", bf[2].tdxOv, 5, 11),
	)
	return res, nil
}

func runFig10(o Options) (*Result, error) {
	res := &Result{ID: "fig10", Title: "Input-size scaling (Fig 10)",
		Header: []string{"dtype", "input", "baremetal tok/s", "VM", "TDX", "paper TDX"}}
	cfg := mustModel("llama2-7b")
	out := o.tokens(32)
	inputs := []int{32, 64, 128, 256, 512, 1024, 2048}
	paperTDX := map[string]map[int]float64{
		"bf16": {32: 5.03, 64: 6.75, 128: 5.88, 256: 4.42, 512: 2.32, 1024: 2.06, 2048: 9.30},
		"int8": {32: 5.63, 64: 8.82, 128: 8.71, 256: 6.99, 512: 2.08, 1024: -1.37, 2048: 10.18},
	}
	for _, kind := range []dtype.Kind{dtype.BF16, dtype.I8} {
		var ovs []float64
		for _, in := range inputs {
			wl := trace.Workload{Model: cfg, Kind: kind, Batch: 64, Beam: 1, InputLen: in, OutputLen: out}
			bm, err := runCPU(tee.Baremetal(), hw.EMR2(), wl, 1, 0, true, 1, o.Seed)
			if err != nil {
				return nil, err
			}
			vm, err := runCPU(tee.VM(tee.VMFullHuge), hw.EMR2(), wl, 1, 0, true, 1, o.Seed)
			if err != nil {
				return nil, err
			}
			tdx, err := runCPU(tee.TDX(), hw.EMR2(), wl, 1, 0, true, 1, o.Seed)
			if err != nil {
				return nil, err
			}
			ov := stats.ThroughputOverheadPct(bm.Throughput(), tdx.Throughput())
			ovs = append(ovs, ov)
			res.Rows = append(res.Rows, []string{kind.String(), fmt.Sprintf("%d", in),
				fmt.Sprintf("%.1f", bm.Throughput()),
				pct(stats.ThroughputOverheadPct(bm.Throughput(), vm.Throughput())),
				pct(ov), pct(paperTDX[kind.String()][in])})
		}
		res.Checks = append(res.Checks, Check{
			Name:   "TDX overhead shrinks as input grows to 1024 (" + kind.String() + ")",
			Pass:   ovs[5] < ovs[1],
			Detail: fmt.Sprintf("in64 %.2f%% → in1024 %.2f%%", ovs[1], ovs[5]),
		})
	}
	return res, nil
}
