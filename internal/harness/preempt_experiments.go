package harness

// Preemption-policy experiment: swap-to-host versus vLLM-style recompute,
// priced per TEE backend. The paper's characterization decides the winner:
// CPU TEEs swap at near-native memcpy speed (the inline encryption engine
// costs a few percent) but re-prefill slowly, so parking a long context is
// far cheaper than recomputing it; cGPU recomputes on fast tensor cores but
// swaps through the AES-GCM bounce buffer at ~12% of PCIe, so short
// contexts are cheaper to recompute than to round-trip over the host link.

import (
	"fmt"

	"cllm/internal/dtype"
	"cllm/internal/gramine"
	"cllm/internal/hw"
	"cllm/internal/perf"
	"cllm/internal/serve"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "preempt",
		Title: "Preemption policy: swap-to-host vs recompute per TEE backend (7B)",
		Paper: "Extension: swap wins on CPU TEEs and long contexts (memcpy beats slow prefill), recompute wins on cGPU short contexts (bounce-buffer bandwidth dominates); auto picks per preemption",
		Run:   runPreemptPolicies,
	})
}

// preemptPolicies is the sweep order; indexes are shared by both backends.
var preemptPolicies = []serve.PreemptPolicy{serve.PreemptRecompute, serve.PreemptSwap, serve.PreemptAuto}

func runPreemptPolicies(o Options) (*Result, error) {
	res := &Result{ID: "preempt", Title: "Swap-to-host vs recompute preemption per TEE backend (extension)",
		Header: []string{"platform", "policy", "TTFT p50(s)", "TTFT p99(s)", "TPOT p99(s)", "goodput(tok/s)", "preempt", "swaps(out/in)", "tokens"}}

	m := mustModel("llama2-7b")
	wl := trace.Workload{Model: m, Kind: dtype.BF16}
	weights := int64(trace.WeightFootprint(wl))
	perToken := m.KVCacheBytesPerToken(2)

	// CPU-TEE side: an enclave-bounded SGX deployment serving long-context
	// RAG-style requests — the KV pool holds ~6k tokens, so a batch of
	// 1024-token prompts with long answers preempts constantly, and every
	// recompute re-prefills a >1k context on slow CPU prefill.
	sgx, err := tee.SGX(gramine.DefaultManifest("/models/llama2.bin", weights+6144*perToken, 64))
	if err != nil {
		return nil, err
	}
	sgxBE := serve.Backend{CPU: perf.CPURun{CPU: hw.EMR1(), Platform: sgx, Sockets: 1, AMX: true}}
	longTrace := make([]serve.Request, 24)
	for i := range longTrace {
		longTrace[i] = serve.Request{ID: i, ArrivalSec: float64(i) * 0.05, InputLen: 1024, OutputLen: 256}
	}
	sgxCfg := serve.Config{
		Workload: wl, Trace: longTrace, Seed: o.Seed, MaxBatch: 8,
		TTFTSLOSec: 120, TPOTSLOSec: 2,
	}

	// cGPU side: a memory-constrained confidential-GPU partition (MIG-style
	// slice: weights plus ~240 tokens of KV) serving short chat requests —
	// preemptions are frequent but each victim's context is ~130 tokens,
	// recomputed in milliseconds on tensor cores while a swap round-trips
	// the encrypted bounce buffer.
	gpu := hw.H100NVL()
	gpu.HBMBytes = weights + 240*perToken
	cgpuBE := serve.Backend{IsGPU: true, GPU: perf.GPURun{GPU: gpu, Platform: tee.CGPU()}}
	shortTrace := make([]serve.Request, 24)
	for i := range shortTrace {
		shortTrace[i] = serve.Request{ID: i, ArrivalSec: float64(i) * 0.01, InputLen: 96, OutputLen: 32}
	}
	cgpuCfg := serve.Config{
		Workload: wl, Trace: shortTrace, Seed: o.Seed, MaxBatch: 8,
		TTFTSLOSec: 30, TPOTSLOSec: 2,
	}

	type side struct {
		name string
		be   serve.Backend
		cfg  serve.Config
	}
	sides := []side{{"SGX", sgxBE, sgxCfg}, {"cGPU", cgpuBE, cgpuCfg}}
	// Share one costing table per backend across its three policy runs; the
	// (side × policy) cells are independent simulations on the worker pool,
	// merged in sweep order.
	for i := range sides {
		coster, err := serve.NewStepCoster(sides[i].be, sides[i].cfg)
		if err != nil {
			return nil, err
		}
		sides[i].be.Coster = coster
	}
	reports := make([][]*serve.Report, len(sides))
	for i := range reports {
		reports[i] = make([]*serve.Report, len(preemptPolicies))
	}
	err = parallelFor(o.workers(), len(sides)*len(preemptPolicies), func(i int) error {
		si, pi := i/len(preemptPolicies), i%len(preemptPolicies)
		cfg := sides[si].cfg
		cfg.PreemptPolicy = preemptPolicies[pi]
		rep, err := serve.Run(sides[si].be, cfg)
		if err != nil {
			return err
		}
		reports[si][pi] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}

	for si, sd := range sides {
		for pi, pol := range preemptPolicies {
			rep := reports[si][pi]
			res.Rows = append(res.Rows, []string{
				sd.name, pol.String(),
				fmt.Sprintf("%.3f", rep.TTFT.P50), fmt.Sprintf("%.3f", rep.TTFT.P99),
				fmt.Sprintf("%.4f", rep.TPOT.P99),
				fmt.Sprintf("%.1f", rep.GoodputTokensPerSec),
				fmt.Sprintf("%d", rep.Preemptions),
				fmt.Sprintf("%d/%d", rep.SwapOuts, rep.SwapIns),
				fmt.Sprintf("%d", rep.TotalTokens),
			})
		}
	}

	const rec, swp, auto = 0, 1, 2
	sgxR, cgpuR := reports[0], reports[1]

	// Both sides must actually exercise the mechanism under test.
	res.Checks = append(res.Checks, Check{
		Name: "both backends preempt under KV pressure",
		Pass: sgxR[rec].Preemptions > 0 && cgpuR[rec].Preemptions > 0 &&
			sgxR[swp].SwapOuts > 0 && cgpuR[swp].SwapOuts > 0,
		Detail: fmt.Sprintf("SGX %d preemptions (%d swaps), cGPU %d preemptions (%d swaps)",
			sgxR[rec].Preemptions, sgxR[swp].SwapOuts, cgpuR[rec].Preemptions, cgpuR[swp].SwapOuts),
	})

	// Headline shape 1: on the CPU TEE with long contexts, swap strictly
	// beats recompute on p99 TTFT at equal load.
	res.Checks = append(res.Checks, Check{
		Name: "swap beats recompute on CPU-TEE long contexts (p99 TTFT)",
		Pass: sgxR[swp].TTFT.P99 < sgxR[rec].TTFT.P99,
		Detail: fmt.Sprintf("SGX swap %.3fs vs recompute %.3fs",
			sgxR[swp].TTFT.P99, sgxR[rec].TTFT.P99),
	})

	// Headline shape 2: on cGPU short contexts, recompute is no worse than
	// swap — the bounce buffer makes the KV round-trip the expensive path.
	res.Checks = append(res.Checks, Check{
		Name: "recompute no worse than swap on cGPU short contexts (p99 TTFT)",
		Pass: cgpuR[rec].TTFT.P99 <= cgpuR[swp].TTFT.P99,
		Detail: fmt.Sprintf("cGPU recompute %.3fs vs swap %.3fs",
			cgpuR[rec].TTFT.P99, cgpuR[swp].TTFT.P99),
	})

	// Auto lands on the right side of the trade on both backends: it swaps
	// on the CPU TEE and keeps pace with the better policy everywhere.
	res.Checks = append(res.Checks, Check{
		Name: "auto swaps on the CPU TEE and recomputes on cGPU",
		Pass: sgxR[auto].SwapOuts > 0 && cgpuR[auto].SwapOuts == 0,
		Detail: fmt.Sprintf("SGX auto %d swap-outs, cGPU auto %d",
			sgxR[auto].SwapOuts, cgpuR[auto].SwapOuts),
	}, Check{
		Name: "auto p99 TTFT within 5% of the better fixed policy on both backends",
		Pass: sgxR[auto].TTFT.P99 <= min(sgxR[rec].TTFT.P99, sgxR[swp].TTFT.P99)*1.05 &&
			cgpuR[auto].TTFT.P99 <= min(cgpuR[rec].TTFT.P99, cgpuR[swp].TTFT.P99)*1.05,
		Detail: fmt.Sprintf("SGX auto %.3fs (best %.3fs), cGPU auto %.3fs (best %.3fs)",
			sgxR[auto].TTFT.P99, min(sgxR[rec].TTFT.P99, sgxR[swp].TTFT.P99),
			cgpuR[auto].TTFT.P99, min(cgpuR[rec].TTFT.P99, cgpuR[swp].TTFT.P99)),
	})

	// The policy changes when tokens arrive, never what is produced.
	tokensEqual := true
	for _, side := range reports {
		if side[swp].TotalTokens != side[rec].TotalTokens || side[auto].TotalTokens != side[rec].TotalTokens {
			tokensEqual = false
		}
	}
	res.Checks = append(res.Checks, Check{
		Name: "all policies serve the identical token totals at equal load",
		Pass: tokensEqual,
		Detail: fmt.Sprintf("SGX %d/%d/%d, cGPU %d/%d/%d tokens (recompute/swap/auto)",
			sgxR[rec].TotalTokens, sgxR[swp].TotalTokens, sgxR[auto].TotalTokens,
			cgpuR[rec].TotalTokens, cgpuR[swp].TotalTokens, cgpuR[auto].TotalTokens),
	})

	res.Notes = append(res.Notes,
		"Swap transfers are priced mechanistically: cGPU rounds KV through the AES-GCM bounce buffer (PCIe × 0.12), CPU TEEs memcpy behind the inline encryption engine (hw.HostSwapBytesPerSec × MemBWFactor); recompute re-prefills the victim's whole context through the roofline.",
		"The cGPU deployment is a MIG-style memory slice (weights + ~240 KV tokens) so short-context preemption pressure exists at all; the SGX enclave caps the pool at ~6k tokens against 1024-token prompts.",
		"auto decides per preemption from the shared memoized coster: 2×transfer(computed tokens) vs re-prefill(context) — bit-identical across runs and worker counts.")
	return res, nil
}
