package harness

import (
	"fmt"

	"cllm/internal/cloud"
	"cllm/internal/dtype"
	"cllm/internal/hw"
	"cllm/internal/mem"
	"cllm/internal/perf"
	"cllm/internal/scale"
	"cllm/internal/stats"
	"cllm/internal/tee"
	"cllm/internal/trace"
)

// Extension experiments: deployments the paper discusses (§III, §V-A,
// §V-D) but could not measure on its testbed, built from the same
// mechanisms and clearly labeled as projections, plus the mechanism
// ablation DESIGN.md calls out.

func init() {
	register(Experiment{
		ID:    "sev",
		Title: "AMD SEV-SNP projection vs Intel TDX (single socket, Llama2-7B)",
		Paper: "§III: AMD's TEE stack relies on similar mechanisms to TDX, resulting in close benchmark overheads [Misono et al.]",
		Run:   runSEV,
	})
	register(Experiment{
		ID:    "b100",
		Title: "Projected B100 confidential GPU: HBM encryption + protected NVLink",
		Paper: "§V-A/§V-D.3: B100 closes H100's security gaps; the paper expects a non-negligible added overhead since memory encryption is a significant cost on CPUs",
		Run:   runB100,
	})
	register(Experiment{
		ID:    "scaleout",
		Title: "Multi-GPU scale-up/out: 70B on 2×H100 under NVLink vs confidential host routing vs IPsec",
		Paper: "§V-D.4: confidential instances lack RDMA/GPUdirect, capping inter-GPU traffic at ~3 GB/s vs 40 GB/s; IPsec adds up to 90%",
		Run:   runScaleout,
	})
	register(Experiment{
		ID:    "hybrid",
		Title: "Hybrid CPU-GPU offload: weight streaming over (encrypted) PCIe vs pure CPU TEE",
		Paper: "§V-D.1: when parts of the model offload to host memory, AMX CPUs outperform GPUs — more so under CC, where PCIe transfers pay the bounce buffer",
		Run:   runHybrid,
	})
	register(Experiment{
		ID:    "spr",
		Title: "Sapphire Rapids cost alternative (≈2x cheaper, up to 40% slower)",
		Paper: "§V-D.2: renting an almost 2x cheaper Sapphire Rapids performing up to 40% worse provides an even more affordable alternative",
		Run:   runSPR,
	})
	register(Experiment{
		ID:    "ablation",
		Title: "TDX overhead decomposition: one mechanism disabled at a time",
		Paper: "DESIGN.md ablation: attributes the TDX overhead to memory encryption, secure-EPT walks + 2M pages, broken NUMA bindings, virtualization tax and per-op costs",
		Run:   runAblation,
	})
}

func runSEV(o Options) (*Result, error) {
	res := &Result{ID: "sev", Title: "SEV-SNP projection vs TDX",
		Header: []string{"dtype", "metric", "baremetal", "TDX", "SEV-SNP (projected)"}}
	cfg := mustModel("llama2-7b")
	out := o.tokens(64)
	var tdxOvs, sevOvs []float64
	for _, kind := range []dtype.Kind{dtype.BF16, dtype.I8} {
		wl := trace.Workload{Model: cfg, Kind: kind, Batch: 6, Beam: 4, InputLen: 1024, OutputLen: out}
		bm, err := runCPU(tee.Baremetal(), hw.EMR1(), wl, 1, 0, true, 1, o.Seed)
		if err != nil {
			return nil, err
		}
		tdx, err := runCPU(tee.TDX(), hw.EMR1(), wl, 1, 0, true, 1, o.Seed)
		if err != nil {
			return nil, err
		}
		sev, err := runCPU(tee.SEVSNP(), hw.EMR1(), wl, 1, 0, true, 1, o.Seed)
		if err != nil {
			return nil, err
		}
		ovT := stats.ThroughputOverheadPct(bm.DecodeThroughput(), tdx.DecodeThroughput())
		ovS := stats.ThroughputOverheadPct(bm.DecodeThroughput(), sev.DecodeThroughput())
		tdxOvs = append(tdxOvs, ovT)
		sevOvs = append(sevOvs, ovS)
		res.Rows = append(res.Rows, []string{kind.String(), "tput(tok/s)",
			fmt.Sprintf("%.1f", bm.DecodeThroughput()), pct(ovT), pct(ovS)})
	}
	diff := stats.Mean(tdxOvs) - stats.Mean(sevOvs)
	res.Checks = append(res.Checks,
		Check{Name: "SEV-SNP within 3 points of TDX",
			Pass:   absf(diff) <= 3,
			Detail: fmt.Sprintf("TDX %.2f%% vs SEV %.2f%%", stats.Mean(tdxOvs), stats.Mean(sevOvs))},
		band("SEV-SNP overhead in the VM-TEE band", stats.Mean(sevOvs), 3, 11),
	)
	return res, nil
}

func runB100(o Options) (*Result, error) {
	res := &Result{ID: "b100", Title: "Projected B100 confidential GPU",
		Header: []string{"batch", "B100 tok/s", "cB100 tok/s", "overhead", "H100 cGPU overhead"}}
	cfg := mustModel("llama2-7b")
	out := o.tokens(32)
	var b100Ovs, h100Ovs []float64
	for _, bs := range []int{1, 16, 128} {
		wl := trace.Workload{Model: cfg, Kind: dtype.BF16, Batch: bs, Beam: 1, InputLen: 128, OutputLen: out}
		open, err := perf.RunGPU(perf.GPURun{GPU: hw.H100NVL(), Platform: tee.B100(), Workload: wl, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		cb, err := perf.RunGPU(perf.GPURun{GPU: hw.H100NVL(), Platform: tee.B100CC(), Workload: wl, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		g, c, err := runGPUPair(wl, o.Seed)
		if err != nil {
			return nil, err
		}
		ovB := stats.ThroughputOverheadPct(open.DecodeThroughput(), cb.DecodeThroughput())
		ovH := stats.ThroughputOverheadPct(g.DecodeThroughput(), c.DecodeThroughput())
		b100Ovs = append(b100Ovs, ovB)
		h100Ovs = append(h100Ovs, ovH)
		res.Rows = append(res.Rows, []string{fmt.Sprintf("%d", bs),
			fmt.Sprintf("%.0f", open.DecodeThroughput()), fmt.Sprintf("%.0f", cb.DecodeThroughput()),
			pct(ovB), pct(ovH)})
	}
	res.Checks = append(res.Checks,
		Check{Name: "HBM encryption adds overhead at large batch (memory-bound)",
			Pass:   b100Ovs[2] > h100Ovs[2],
			Detail: fmt.Sprintf("bs128: cB100 %.2f%% vs H100 cGPU %.2f%%", b100Ovs[2], h100Ovs[2])},
		band("projected cB100 overhead stays single-digit", stats.Mean(b100Ovs), 1, 10),
	)
	res.Notes = append(res.Notes,
		"Projection: B100 encrypts HBM and protects NVLink; its decode path inherits a memory-encryption cost H100 avoids by leaving HBM plain.")
	return res, nil
}

func runScaleout(o Options) (*Result, error) {
	res := &Result{ID: "scaleout", Title: "70B on 2×H100: interconnect options",
		Header: []string{"deployment", "scheme", "tok/s", "vs NVLink"}}
	cfg := mustModel("llama2-70b")
	out := o.tokens(16)
	wl := trace.Workload{Model: cfg, Kind: dtype.BF16, Batch: 32, Beam: 1, InputLen: 512, OutputLen: out}
	type row struct {
		name   string
		c      scale.Cluster
		scheme scale.Parallelism
	}
	rows := []row{
		{"GPU (NVLink)", scale.Cluster{GPU: hw.H100NVL(), Platform: tee.GPU(), NGPUs: 2, Scheme: scale.TensorParallel}, scale.TensorParallel},
		{"cGPU (host-routed)", scale.Cluster{GPU: hw.H100NVL(), Platform: tee.CGPU(), NGPUs: 2, Scheme: scale.TensorParallel}, scale.TensorParallel},
		{"cGPU (pipeline)", scale.Cluster{GPU: hw.H100NVL(), Platform: tee.CGPU(), NGPUs: 2, Scheme: scale.PipelineParallel}, scale.PipelineParallel},
		{"cB100 (protected NVLink)", scale.Cluster{GPU: hw.H100NVL(), Platform: tee.B100CC(), NGPUs: 2, Scheme: scale.TensorParallel}, scale.TensorParallel},
		{"GPU cross-node (IPsec)", scale.Cluster{GPU: hw.H100NVL(), Platform: tee.GPU(), NGPUs: 2, Scheme: scale.TensorParallel, CrossNode: true}, scale.TensorParallel},
	}
	var tputs []float64
	for _, r := range rows {
		tp, err := r.c.DecodeThroughput(wl)
		if err != nil {
			return nil, err
		}
		tputs = append(tputs, tp)
	}
	for i, r := range rows {
		res.Rows = append(res.Rows, []string{r.name, r.scheme.String(),
			fmt.Sprintf("%.1f", tputs[i]), pct(stats.ThroughputOverheadPct(tputs[0], tputs[i]))})
	}
	res.Checks = append(res.Checks,
		Check{Name: "host routing cripples confidential scale-up",
			Pass:   tputs[1] < tputs[0]*0.55,
			Detail: fmt.Sprintf("cGPU %.1f vs NVLink %.1f tok/s", tputs[1], tputs[0])},
		Check{Name: "pipeline parallelism recovers some of the loss",
			Pass:   tputs[2] > tputs[1],
			Detail: fmt.Sprintf("PP %.1f vs TP %.1f tok/s", tputs[2], tputs[1])},
		Check{Name: "protected NVLink (B100) restores scale-up",
			Pass:   tputs[3] > tputs[0]*0.75,
			Detail: fmt.Sprintf("cB100 %.1f vs NVLink %.1f tok/s", tputs[3], tputs[0])},
		Check{Name: "IPsec costs cross-node deployments",
			Pass:   tputs[4] < tputs[0],
			Detail: fmt.Sprintf("IPsec %.1f vs local %.1f tok/s", tputs[4], tputs[0])},
	)
	return res, nil
}

func runHybrid(o Options) (*Result, error) {
	res := &Result{ID: "hybrid", Title: "Weight-streaming offload over (encrypted) PCIe",
		Header: []string{"offload", "GPU tok/s", "cGPU tok/s", "TDX CPU tok/s"}}
	cfg := mustModel("llama2-13b")
	out := o.tokens(16)
	wl := trace.Workload{Model: cfg, Kind: dtype.BF16, Batch: 4, Beam: 1, InputLen: 256, OutputLen: out}
	cpuRes, err := runCPU(tee.TDX(), hw.EMR2(), wl, 1, 0, true, 1, o.Seed)
	if err != nil {
		return nil, err
	}
	cpuTput := cpuRes.DecodeThroughput()
	var confAtHalf, openAtHalf float64
	for _, f := range []float64{0, 0.25, 0.5, 0.75} {
		open := scale.HybridOffload{GPU: hw.H100NVL(), Platform: tee.GPU(), OffloadFraction: f}
		conf := scale.HybridOffload{GPU: hw.H100NVL(), Platform: tee.CGPU(), OffloadFraction: f}
		to, err := open.DecodeThroughput(wl)
		if err != nil {
			return nil, err
		}
		tc, err := conf.DecodeThroughput(wl)
		if err != nil {
			return nil, err
		}
		if f == 0.5 {
			confAtHalf, openAtHalf = tc, to
		}
		res.Rows = append(res.Rows, []string{fmt.Sprintf("%.0f%%", f*100),
			fmt.Sprintf("%.1f", to), fmt.Sprintf("%.1f", tc), fmt.Sprintf("%.1f", cpuTput)})
	}
	res.Checks = append(res.Checks,
		Check{Name: "CPU TEE beats the offloaded confidential GPU (§V-D.1)",
			Pass:   cpuTput > confAtHalf,
			Detail: fmt.Sprintf("TDX %.1f vs cGPU@50%% offload %.1f tok/s", cpuTput, confAtHalf)},
		Check{Name: "bounce buffer amplifies the offload penalty",
			Pass:   openAtHalf > 4*confAtHalf,
			Detail: fmt.Sprintf("open %.1f vs confidential %.1f tok/s at 50%% offload", openAtHalf, confAtHalf)},
	)
	return res, nil
}

func runSPR(o Options) (*Result, error) {
	res := &Result{ID: "spr", Title: "Sapphire Rapids as the budget confidential host",
		Header: []string{"system", "TDX tok/s", "slowdown vs EMR2", "$/hr (32 vCPU)", "$/Mtok"}}
	cfg := mustModel("llama2-7b")
	wl := trace.Workload{Model: cfg, Kind: dtype.BF16, Batch: 4, Beam: 1, InputLen: 128, OutputLen: 128}
	prices := cloud.DefaultPrices()

	emr, err := runCPU(tee.TDX(), hw.EMR2(), wl, 1, 32, true, 1, o.Seed)
	if err != nil {
		return nil, err
	}
	spr, err := runCPU(tee.TDX(), hw.SPR(), wl, 1, 32, true, 1, o.Seed)
	if err != nil {
		return nil, err
	}
	emrHourly, err := prices.HourlyCost(cloud.CPUInstance{VCPUs: 32, MemGiB: 128})
	if err != nil {
		return nil, err
	}
	sprHourly := 32*prices.VCPUHour*prices.SapphireRapidsDiscount + 128*prices.MemGiBHour
	emrCost, err := cloud.CostPerMTokens(emrHourly, emr.Throughput())
	if err != nil {
		return nil, err
	}
	sprCost, err := cloud.CostPerMTokens(sprHourly, spr.Throughput())
	if err != nil {
		return nil, err
	}
	slow := stats.ThroughputOverheadPct(emr.Throughput(), spr.Throughput())
	res.Rows = append(res.Rows,
		[]string{"EMR2 (Emerald Rapids)", fmt.Sprintf("%.1f", emr.Throughput()), "0%",
			fmt.Sprintf("$%.3f", emrHourly), fmt.Sprintf("$%.2f", emrCost)},
		[]string{"SPR (Sapphire Rapids)", fmt.Sprintf("%.1f", spr.Throughput()), pct(slow),
			fmt.Sprintf("$%.3f", sprHourly), fmt.Sprintf("$%.2f", sprCost)},
	)
	res.Checks = append(res.Checks,
		band("SPR slowdown (paper: up to 40% worse)", slow, 5, 45),
		Check{Name: "SPR is the cheaper seat per token (§V-D.2)",
			Pass:   sprCost < emrCost,
			Detail: fmt.Sprintf("SPR $%.2f vs EMR $%.2f per Mtok", sprCost, emrCost)},
	)
	return res, nil
}

// ablationVariant runs TDX with one mechanism reverted to its unprotected
// behaviour, attributing the total overhead to its sources.
func runAblation(o Options) (*Result, error) {
	res := &Result{ID: "ablation", Title: "TDX overhead source decomposition (two sockets, 7B bf16)",
		Header: []string{"configuration", "tok/s", "overhead", "recovered"}}
	cfg := mustModel("llama2-7b")
	out := o.tokens(48)
	wl := trace.Workload{Model: cfg, Kind: dtype.BF16, Batch: 6, Beam: 4, InputLen: 1024, OutputLen: out}
	run := func(p tee.Platform) (float64, error) {
		r, err := runCPU(p, hw.EMR2(), wl, 2, 0, true, 1, o.Seed)
		if err != nil {
			return 0, err
		}
		return r.DecodeThroughput(), nil
	}
	base, err := run(tee.Baremetal())
	if err != nil {
		return nil, err
	}
	full := tee.TDX()
	fullTput, err := run(full)
	if err != nil {
		return nil, err
	}
	fullOv := stats.ThroughputOverheadPct(base, fullTput)
	res.Rows = append(res.Rows, []string{"TDX (all mechanisms)", fmt.Sprintf("%.1f", fullTput), pct(fullOv), "-"})

	variants := []struct {
		name string
		mod  func(tee.Platform) tee.Platform
	}{
		{"- memory encryption", func(p tee.Platform) tee.Platform { p.MemBWFactor = 1; return p }},
		{"- secure-EPT walks & 2M pages", func(p tee.Platform) tee.Platform {
			p.PageWalkAmp = 1
			p.Pages = mem.PolicyFullHuge
			return p
		}},
		{"- broken NUMA bindings", func(p tee.Platform) tee.Platform { p.NUMA = mem.NUMABound; return p }},
		{"- UPI encryption", func(p tee.Platform) tee.Platform { p.UPIEncrypted = false; return p }},
		{"- virtualization tax", func(p tee.Platform) tee.Platform { p.ComputeTax = 0; return p }},
		{"- per-op TEE cost", func(p tee.Platform) tee.Platform { p.PerOpCostSec = 0; return p }},
	}
	var recovered []float64
	for _, v := range variants {
		tput, err := run(v.mod(full))
		if err != nil {
			return nil, err
		}
		ov := stats.ThroughputOverheadPct(base, tput)
		rec := fullOv - ov
		recovered = append(recovered, rec)
		res.Rows = append(res.Rows, []string{v.name, fmt.Sprintf("%.1f", tput), pct(ov),
			fmt.Sprintf("%.2f pts", rec)})
	}
	var sum float64
	memRelated := recovered[0] + recovered[1] + recovered[2] + recovered[3]
	for _, r := range recovered {
		sum += r
	}
	res.Checks = append(res.Checks,
		Check{Name: "memory-path mechanisms dominate the TDX overhead",
			Pass:   memRelated > recovered[4]+recovered[5],
			Detail: fmt.Sprintf("memory-related %.2f pts vs compute-related %.2f pts", memRelated, recovered[4]+recovered[5])},
		Check{Name: "single-mechanism recoveries roughly compose to the total",
			Pass:   sum > fullOv*0.6 && sum < fullOv*1.6,
			Detail: fmt.Sprintf("sum of recoveries %.2f pts vs total %.2f%%", sum, fullOv)},
	)
	res.Notes = append(res.Notes,
		"Each row disables exactly one mechanism; 'recovered' is the overhead attributable to it (interactions make the sum inexact).")
	return res, nil
}
